// Package nearestpeer reproduces "On The Difficulty of Finding the Nearest
// Peer in P2P Systems" (Vishnumurthy & Francis, IMC 2008) as a Go library:
// a generative last-hop Internet model, the paper's measurement toolkit
// (ping, rockettrace, TCP-ping, King), the full set of nearest-peer
// algorithms it analyses (Meridian, Karger-Ruhl, Tapestry, Tiers, Vivaldi,
// PIC, beacon schemes), the Section 5 mitigations (multicast, rendezvous,
// UCL and IP-prefix DHT hints over Chord), and a harness regenerating every
// table and figure of the evaluation.
//
// See README.md for a package tour and the quick-start commands. The root
// package holds the repository-level benchmark suite (bench_test.go), one
// benchmark per table and figure.
package nearestpeer
