module nearestpeer

go 1.24
