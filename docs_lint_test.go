package nearestpeer

// Documentation lint: doc drift fails the build. Two checks ride in CI's
// docs-lint step (alongside go vet):
//
//   - every exported symbol in the packages listed below carries a doc
//     comment (golint's rule, enforced only where this repository has
//     committed to full coverage);
//   - docs/REPRODUCTION.md names every experiment cmd/figures can run, so
//     adding a figure without documenting how to reproduce it is an error.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"
)

// docCoveredPackages are the directories whose exported symbols must all be
// documented.
var docCoveredPackages = []string{
	"internal/engine",
	"internal/experiments",
	"internal/latency",
	"internal/obs",
	"internal/p2p",
	"internal/sim",
	"internal/overlay",
	"internal/rng",
}

func TestDocCommentsOnExportedSymbols(t *testing.T) {
	for _, dir := range docCoveredPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDecl(t, fset, path, decl)
				}
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, path string, decl ast.Decl) {
	t.Helper()
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, what)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && !isExportedMethodOfUnexported(d) {
			report(d.Pos(), "function "+d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the grouped decl covers the group (const/var
		// blocks); individual specs may document themselves.
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(name.Pos(), "value "+name.Name)
					}
				}
			}
		}
	}
}

// isExportedMethodOfUnexported reports whether d is an exported method on
// an unexported receiver type (interface satisfaction plumbing like
// eventQueue.Len; not part of the package surface).
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}

// TestReproductionDocCoversEveryFigure extracts the experiment names the
// figures command registers and requires each to appear in
// docs/REPRODUCTION.md.
func TestReproductionDocCoversEveryFigure(t *testing.T) {
	src, err := os.ReadFile("cmd/figures/main.go")
	if err != nil {
		t.Fatal(err)
	}
	// Experiment registrations look like: {"fig8", func() string {...
	re := regexp.MustCompile(`\{"([a-z0-9]+)",\s*func\(\)`)
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 15 {
		t.Fatalf("found only %d experiment registrations in cmd/figures; extraction regex drifted?", len(matches))
	}
	doc, err := os.ReadFile("docs/REPRODUCTION.md")
	if err != nil {
		t.Fatalf("docs/REPRODUCTION.md missing: %v", err)
	}
	for _, m := range matches {
		name := m[1]
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("docs/REPRODUCTION.md does not document experiment %q", name)
		}
	}
}

// TestReadmeLinksResolve keeps the README's docs/ links from rotting.
func TestReadmeLinksResolve(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`\]\((docs/[^)#]+)\)`)
	links := re.FindAllStringSubmatch(string(readme), -1)
	if len(links) == 0 {
		t.Fatal("README links to no docs/ files; architecture and reproduction guides must be linked")
	}
	for _, l := range links {
		if _, err := os.Stat(l[1]); err != nil {
			t.Errorf("README links to missing file %s", l[1])
		}
	}
}
