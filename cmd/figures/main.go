// Command figures regenerates every table and figure of the paper, writing
// each to stdout and (with -out) to a results directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's full population sizes (slow)")
	seed := flag.Int64("seed", 1, "experiment seed")
	outDir := flag.String("out", "", "directory to write per-figure text files")
	only := flag.String("only", "", "run a single experiment (e.g. fig8, table1, a3, s1)")
	workers := flag.Int("workers", 0, "engine worker-pool width (0 = GOMAXPROCS); figures are byte-identical at any width")
	shards := flag.Int("shards", 1, "intra-trial kernel shards for the scale-study wire cells; figures are byte-identical at any count")
	flag.Parse()

	engine.SetWorkers(*workers)
	engine.SetShards(*shards)
	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}

	type experiment struct {
		name string
		run  func() string
	}
	env := func() *experiments.Env { return experiments.SharedEnv(scale, *seed) }
	// s1's and v1's wall-clock views are printed to the terminal but never
	// written to the figure file: elapsed time is not deterministic, and
	// figure files must be byte-identical across -workers.
	var s1Timing, v1Timing, o1Timing, r1Timing, g1Timing string
	list := []experiment{
		{"table1", func() string { return experiments.Table1(env()).Render() }},
		{"fig3", func() string { return experiments.Fig3(env()).Render() }},
		{"fig4", func() string { return experiments.Fig4(env()).Render() }},
		{"fig5", func() string { return experiments.Fig5(env()).Render() }},
		{"fig6", func() string { return experiments.Fig6(env()).Render() }},
		{"fig7", func() string { return experiments.Fig7(env()).Render() }},
		{"fig8", func() string { return experiments.Fig8(scale, *seed).Render() }},
		{"fig9", func() string { return experiments.Fig9(scale, *seed).Render() }},
		{"fig10", func() string { return experiments.Fig10(env()).Render() }},
		{"fig11", func() string { return experiments.Fig11(env()).Render() }},
		{"a1", func() string { return experiments.AblationHypervolume(scale, *seed).Render() }},
		{"a2", func() string { return experiments.AblationBetaSweep(scale, *seed).Render() }},
		{"a3", func() string { return experiments.AblationAlgorithmComparison(scale, *seed).Render() }},
		{"a4", func() string { return experiments.AblationUCLDepth(scale, *seed).Render() }},
		{"a5", func() string { return experiments.AblationComposite(scale, *seed).Render() }},
		{"a6", func() string { return experiments.AblationRingSize(scale, *seed).Render() }},
		{"c1", func() string { return experiments.ChurnStudy(scale, *seed).Render() }},
		{"c2", func() string { return experiments.MitigationStudy(scale, *seed).Render() }},
		{"s1", func() string {
			r := experiments.ScaleStudy(scale, *seed)
			s1Timing = r.RenderTiming()
			return r.Render()
		}},
		{"v1", func() string {
			r := experiments.VivaldiStudy(scale, *seed)
			v1Timing = r.RenderTiming()
			return r.Render()
		}},
		{"o1", func() string {
			r := experiments.ObsStudy(scale, *seed)
			o1Timing = r.RenderTiming()
			return r.Render()
		}},
		{"r1", func() string {
			r := experiments.FaultStudy(scale, *seed)
			r1Timing = r.RenderTiming()
			return r.Render()
		}},
		{"g1", func() string {
			r := experiments.GrandStudy(scale, *seed)
			g1Timing = r.RenderTiming()
			return r.Render()
		}},
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range list {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		text := e.run()
		fmt.Printf("==== %s (scale=%s, %v) ====\n%s\n", e.name, scale, time.Since(start).Round(time.Millisecond), text)
		if e.name == "s1" && s1Timing != "" {
			fmt.Println(s1Timing)
		}
		if e.name == "v1" && v1Timing != "" {
			fmt.Println(v1Timing)
		}
		if e.name == "o1" && o1Timing != "" {
			fmt.Println(o1Timing)
		}
		if e.name == "r1" && r1Timing != "" {
			fmt.Println(r1Timing)
		}
		if e.name == "g1" && g1Timing != "" {
			fmt.Println(g1Timing)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, e.name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
