// Command benchscale runs the repository's hot-path smoke benchmarks
// programmatically (testing.Benchmark — no `go test` harness needed) and
// emits a machine-readable BENCH_scale.json so the performance trajectory
// of the wire hot path is tracked run over run. CI runs it as a smoke
// step; the JSON is the artifact a regression diff reads.
//
// The suite is intentionally small and fixed, and every workload is the
// shared body from internal/benchhot — the same code the per-package
// `go test -bench` benchmarks of the same names run, so the CI numbers
// and local bench runs stay comparable by construction: the send→deliver
// path bare and with the observability layer attached, a multicast round
// and a Vivaldi gossip round (all with their
// zero-allocs-per-op claims), the netmodel pricing fast path and pair
// cache, the kernel's typed-event loop, and the 1k-host slice of the s1
// scale study with its events/sec throughput.
//
// Usage:
//
//	benchscale [-out BENCH_scale.json] [-benchtime 1s] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"testing"
	"time"

	"nearestpeer/internal/benchhot"
	"nearestpeer/internal/engine"
	"nearestpeer/internal/experiments"
	"nearestpeer/internal/netmodel"
)

// Row is one benchmark's result in the JSON output.
type Row struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EventsPerSec is kernel events executed per wall-clock second, the
	// simulator's headline throughput. Only the scale-study row fills it.
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	N            int     `json:"n"`
}

// Output is the BENCH_scale.json schema.
type Output struct {
	// Schema names the layout so downstream tooling can evolve with it.
	Schema string `json:"schema"`
	// GOMAXPROCS records the parallelism the suite actually had: the sharded
	// scale rows measure real speedup only when it exceeds the shard count
	// (on a 1-CPU runner they measure the sharding overhead instead, which
	// is worth tracking too — honestly labelled).
	GOMAXPROCS int   `json:"gomaxprocs"`
	Rows       []Row `json:"rows"`
}

func rowOf(name string, r testing.BenchmarkResult) Row {
	return Row{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		N:           r.N,
	}
}

func main() {
	testing.Init() // registers test.* flags so -benchtime can be plumbed
	out := flag.String("out", "BENCH_scale.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
	flag.Parse()
	if f := flag.Lookup("test.benchtime"); f != nil {
		_ = f.Value.Set(benchtime.String())
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchscale:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchscale:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchscale:", err)
				return
			}
			defer f.Close()
			goruntime.GC() // settle the heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchscale:", err)
			}
		}()
	}

	var rows []Row
	run := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		row := rowOf(name, res)
		rows = append(rows, row)
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
			name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}

	top := netmodel.Generate(netmodel.DefaultConfig(), 1)
	run("send_deliver", benchhot.SendDeliver)
	run("obs_send_deliver", benchhot.ObsSendDeliver)
	run("request_reply", benchhot.RequestReply)
	run("multicast_round", benchhot.MulticastRound)
	run("vivaldi_gossip_round", benchhot.VivaldiGossipRound)
	run("tree_one_way_ms", func(b *testing.B) { benchhot.TreeOneWayMs(b, top) })
	run("rtt_cache_hit", func(b *testing.B) { benchhot.RTTCacheHit(b, top) })
	run("kernel_handler_cascade", benchhot.KernelHandlerCascade)

	// The s1 smoke slice: 1k hosts, all three algorithms, at kernel shard
	// counts 1 and 4. events/sec is kernel events executed per wall second
	// across the wire cells. The two rows are the sharded kernel's
	// throughput trajectory; the figures they produce are byte-identical
	// (the determinism tests pin that), so any delta is pure wall-clock.
	s1Smoke := func(name string, shards int) {
		prev := engine.SetShards(shards)
		defer engine.SetShards(prev)
		var events uint64
		var elapsed time.Duration
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				r := experiments.ScaleStudyAt([]int{1000}, 20, 1)
				elapsed += time.Since(start)
				for _, c := range r.Cells {
					events += c.Events
				}
			}
		})
		row := rowOf(name, res)
		if elapsed > 0 {
			row.EventsPerSec = float64(events) / elapsed.Seconds()
		}
		rows = append(rows, row)
		fmt.Printf("%-28s %12.1f ns/op %27.0f events/sec\n", row.Name, row.NsPerOp, row.EventsPerSec)
	}
	s1Smoke("scale_study_smoke_1k", 1)
	s1Smoke("scale_study_smoke_1k_sh4", 4)

	data, err := json.MarshalIndent(Output{
		Schema:     "nearestpeer/bench_scale/v1",
		GOMAXPROCS: goruntime.GOMAXPROCS(0),
		Rows:       rows,
	}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscale:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchscale:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
