// Command npsim runs parameterised nearest-peer simulations on the Section
// 4 clustered latency matrices: pick an algorithm, cluster geometry and
// query count, and get exact-closest / correct-cluster rates with probe
// costs — the interactive companion to Figures 8 and 9. With -runtime the
// Meridian search runs as a message protocol on internal/p2p instead of
// as function calls, and -loss / -churn put the wire in the way. With
// -scale N the s1 scale study runs all three scale algorithms at an
// N-host population, fanned out over -workers engine workers. With
// -trace FILE a runtime run attaches the flight recorder and dumps every
// lookup hop (message type, RTT, outcome) as JSON; -cpuprofile and
// -memprofile write pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/pprof"

	"nearestpeer/internal/azureus"
	"nearestpeer/internal/beacon"
	"nearestpeer/internal/engine"
	"nearestpeer/internal/experiments"
	"nearestpeer/internal/faults"
	"nearestpeer/internal/kargerruhl"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/pic"
	"nearestpeer/internal/rendezvous"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/tapestry"
	"nearestpeer/internal/tiers"
	"nearestpeer/internal/vivaldi"
)

func main() {
	algo := flag.String("algo", "meridian",
		"algorithm: meridian | kargerruhl | tapestry | tiers | vivaldi | pic | guyton | beaconing | azureus | rendezvous; with -runtime any registry scheme: those plus expanding | chord | ucl | ipprefix")
	ens := flag.Int("ens", 125, "end-networks per cluster")
	peers := flag.Int("peers", 2500, "total peer population")
	delta := flag.Float64("delta", 0.2, "intra-cluster latency variation δ")
	queries := flag.Int("queries", 2000, "number of closest-peer queries")
	beta := flag.Float64("beta", 0.5, "Meridian β acceptance threshold")
	ringSize := flag.Int("ring", 16, "Meridian nodes per ring")
	noise := flag.Float64("noise", 0, "probe jitter fraction (0 = noiseless, as in the paper's simulations)")
	seed := flag.Int64("seed", 1, "simulation seed")
	runtime := flag.Bool("runtime", false, "run over the internal/p2p message runtime (meridian, ucl, ipprefix, chord)")
	loss := flag.Float64("loss", 0, "one-way packet loss probability (requires -runtime)")
	churn := flag.Bool("churn", false, "drive membership churn during queries (requires -runtime)")
	scaleN := flag.Int("scale", 0, "run the s1 scale study at this host population (all three algorithms) and exit")
	workers := flag.Int("workers", 0, "engine worker-pool width (0 = GOMAXPROCS); results are byte-identical at any width")
	shards := flag.Int("shards", 1, "intra-trial kernel shards for the scale-study wire cells; results are byte-identical at any count")
	tracePath := flag.String("trace", "", "write a flight-recorder JSON dump of the run's lookup hops to this file (requires -runtime)")
	faultSpec := flag.String("faults", "", `deterministic fault plan for the runtime wire, e.g. "seed=7;burst:at=30s,for=1m,prob=0.4" (requires -runtime; see internal/faults)`)
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "npsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "npsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "npsim:", err)
				return
			}
			defer f.Close()
			goruntime.GC() // settle the heap so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "npsim:", err)
			}
		}()
	}

	engine.SetWorkers(*workers)
	engine.SetShards(*shards)
	if *tracePath != "" && !*runtime {
		fmt.Fprintln(os.Stderr, "-trace requires -runtime (the flight recorder hooks the message runtime's lookup paths)")
		os.Exit(2)
	}
	var plan *faults.Plan
	if *faultSpec != "" {
		if !*runtime {
			fmt.Fprintln(os.Stderr, "-faults requires -runtime (the fault plane hooks the message transports)")
			os.Exit(2)
		}
		var err error
		if plan, err = faults.Parse(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, "npsim:", err)
			os.Exit(2)
		}
	}
	var rec *obs.Recorder
	if *tracePath != "" {
		rec = obs.NewRecorder(traceCapacity)
	}
	if *scaleN > 0 {
		algoSet := false
		flag.Visit(func(f *flag.Flag) { algoSet = algoSet || f.Name == "algo" })
		if *runtime || *loss != 0 || *churn || algoSet {
			fmt.Fprintln(os.Stderr, "-scale runs its own fixed algorithm set; -algo/-runtime/-loss/-churn do not apply")
			os.Exit(2)
		}
		runScaleStudy(*scaleN, *queries, *seed)
		return
	}

	if *runtime {
		if *loss < 0 || *loss > 1 {
			fmt.Fprintf(os.Stderr, "-loss %v outside [0,1]\n", *loss)
			os.Exit(2)
		}
		if *noise > 0 {
			fmt.Fprintln(os.Stderr, "-noise applies to the static probe model; the runtime measures true wire RTTs")
			os.Exit(2)
		}
		switch *algo {
		case "meridian", "chord":
			// Both run on the clustered matrix built below.
		default:
			// Every other registry scheme runs on the measurement
			// topology: dispatch before the (large, unused here)
			// clustered matrix is built. Unknown names get the
			// registry's roster error.
			runWireMitigation(*algo, *peers, *queries, *loss, *churn, *seed, rec, plan)
			writeTrace(rec, *tracePath)
			return
		}
	}

	cfg := latency.DefaultClusteredConfig()
	cfg.ENsPerCluster = *ens
	cfg.TotalPeers = *peers
	cfg.Delta = *delta
	m, gt := latency.BuildClustered(cfg, *seed)

	if *runtime {
		if *algo == "chord" {
			runWireChord(m, *peers, *queries, *loss, *churn, *seed, rec, plan)
			writeTrace(rec, *tracePath)
			return
		}
		members, targets := overlay.Split(m.N(), 100, *seed+1)
		fmt.Printf("algo=meridian/p2p peers=%d ENs/cluster=%d (clusters=%d) δ=%.2f queries=%d β=%.2f ring=%d loss=%.0f%% churn=%v\n",
			m.N(), *ens, gt.NumClusters, *delta, *queries, *beta, *ringSize, *loss*100, *churn)
		row := experiments.RunMessageMeridian(m, gt, members, targets, experiments.RuntimeOpts{
			Loss: *loss, Beta: *beta, RingSize: *ringSize,
			Churn: *churn, Queries: *queries, Seed: *seed,
			Recorder: rec, Faults: plan,
		})
		fmt.Printf("\nP(exact closest peer)   = %.3f\n", row.PExact)
		fmt.Printf("P(correct cluster)      = %.3f\n", row.PCluster)
		fmt.Printf("completed before deadline = %.2f\n", row.Done)
		fmt.Printf("mean probes per query   = %.1f\n", row.MeanProbes)
		fmt.Printf("mean messages per query = %.1f (maintenance included)\n", row.MeanMsgs)
		fmt.Printf("mean hops per query     = %.1f\n", row.MeanHops)
		fmt.Printf("mean virtual ms/query   = %.0f\n", row.MeanMs)
		fmt.Printf("RPC timeouts            = %d\n", row.Timeouts)
		if *churn {
			fmt.Printf("churn                   = %d leaves, %d joins\n", row.Leaves, row.Joins)
		}
		writeTrace(rec, *tracePath)
		return
	}
	if *loss > 0 || *churn {
		fmt.Fprintln(os.Stderr, "-loss and -churn require -runtime")
		os.Exit(2)
	}
	net := overlay.NewNetwork(m)
	if *noise > 0 {
		net.SetNoise(*noise, 0.3, *seed+11)
	}
	members, targets := overlay.Split(m.N(), 100, *seed+1)

	var finder overlay.Finder
	switch *algo {
	case "meridian":
		mc := meridian.DefaultConfig()
		mc.Beta = *beta
		mc.RingSize = *ringSize
		mc.CandidatesPerNode = len(members)
		finder = meridian.New(net, members, mc, *seed+2)
	case "kargerruhl":
		finder = kargerruhl.New(net, members, kargerruhl.DefaultConfig(), *seed+2)
	case "tapestry":
		finder = tapestry.New(net, members, tapestry.DefaultConfig(), *seed+2)
	case "tiers":
		finder = tiers.New(net, members, tiers.DefaultConfig(), *seed+2)
	case "vivaldi":
		sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), *seed+2)
		finder = &vivaldi.Finder{Sys: sys, PlacementProbes: 16, VerifyTop: 8}
	case "pic":
		sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), *seed+2)
		finder = pic.New(sys, pic.DefaultConfig(), *seed+3)
	case "guyton":
		finder = &beacon.GuytonSchwartz{Inf: beacon.New(net, members, beacon.DefaultConfig(), *seed+2)}
	case "beaconing":
		finder = &beacon.Beaconing{Inf: beacon.New(net, members, beacon.DefaultConfig(), *seed+2)}
	case "azureus":
		finder = azureus.NewFinder(net, members, azureus.DefaultFinderConfig(), *seed+2)
	case "rendezvous":
		finder = rendezvous.NewDirectory(net, members, func(m int) int { return gt.ENOf[m] })
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q (see -algo usage for the roster)\n", *algo)
		os.Exit(2)
	}

	fmt.Printf("algo=%s peers=%d ENs/cluster=%d (clusters=%d) δ=%.2f queries=%d noise=%.0f%%\n",
		*algo, m.N(), *ens, gt.NumClusters, *delta, *queries, *noise*100)
	fmt.Printf("overlay build: %d maintenance probes\n", net.MaintProbes())

	src := rng.New(*seed + 4)
	exact, inCluster := 0, 0
	var probes, hops int64
	net.ResetQueryProbes()
	for q := 0; q < *queries; q++ {
		tgt := targets[src.Intn(len(targets))]
		res := finder.FindNearest(tgt)
		probes += res.Probes
		hops += int64(res.Hops)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer {
			exact++
		}
		if res.Peer >= 0 && gt.SameCluster(res.Peer, tgt) {
			inCluster++
		}
	}
	n := float64(*queries)
	fmt.Printf("\nP(exact closest peer)   = %.3f\n", float64(exact)/n)
	fmt.Printf("P(correct cluster)      = %.3f\n", float64(inCluster)/n)
	fmt.Printf("mean probes per query   = %.1f\n", float64(probes)/n)
	fmt.Printf("mean hops per query     = %.1f\n", float64(hops)/n)
}

// runScaleStudy runs the s1 scale study at one population: the static
// Meridian walk, the expanding-ring search and the wire Chord DHT over one
// generated topology, fanned out across the engine worker pool.
func runScaleStudy(hosts, queries int, seed int64) {
	const maxQueries = 500
	if queries > maxQueries {
		fmt.Fprintf(os.Stderr, "note: -queries capped at %d for -scale runs (asked for %d)\n", maxQueries, queries)
		queries = maxQueries
	}
	fmt.Printf("s1 scale study: %d hosts (nominal), %d queries/algorithm, %d workers\n\n",
		hosts, queries, engine.Workers(0))
	r := experiments.ScaleStudyAt([]int{hosts}, queries, seed)
	fmt.Println(r.Render())
	fmt.Println(r.RenderTiming())
}

// runWireMitigation resolves nearest-peer queries through any scheme in
// the experiments registry — the Section 5 hint schemes (UCL, IP-prefix,
// over the message-level Chord DHT), the Vivaldi coordinate gossip, and
// the wired algorithm zoo (guyton, beaconing, tiers, pic, tapestry,
// azureus, kargerruhl, rendezvous, expanding) — on the measurement
// topology (the hint schemes need routers and IP prefixes, which the
// synthetic clustered matrix does not have). The publish column reports
// each scheme's bring-up bill; lookups and hops count its own RPCs.
// traceCapacity bounds the -trace flight-recorder ring; when a run records
// more hops than this, the oldest are overwritten and reported as dropped.
const traceCapacity = 1 << 16

// writeTrace dumps the flight recorder as JSON. No-op without -trace.
func writeTrace(rec *obs.Recorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(1)
	}
	fmt.Printf("\nflight recorder         = %d hop records kept (%d recorded, %d dropped) -> %s\n",
		rec.Len(), rec.Recorded(), rec.Dropped(), path)
}

func runWireMitigation(scheme string, peers, queries int, loss float64, churn bool, seed int64, rec *obs.Recorder, plan *faults.Plan) {
	const maxPeers, maxQueries = 600, 300
	if peers > maxPeers {
		peers = maxPeers
	}
	if queries > maxQueries {
		queries = maxQueries
	}
	env := experiments.SharedEnv(experiments.Quick, seed)
	peerSet := experiments.MitigationPeers(env, peers)
	fmt.Printf("algo=%s/p2p peers=%d (measurement topology; -ens/-delta do not apply; capped at %d peers, %d queries) queries=%d loss=%.0f%% churn=%v\n",
		scheme, len(peerSet), maxPeers, maxQueries, queries, loss*100, churn)
	row, err := experiments.RunWireMitigation(env, peerSet, experiments.MitigationOpts{
		Scheme: scheme, Loss: loss, Churn: churn, Queries: queries, Seed: seed,
		Recorder: rec, Faults: plan,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "npsim:", err)
		os.Exit(2)
	}
	fmt.Printf("\nfound any peer          = %.2f\n", row.Found)
	fmt.Printf("P(peer within 10 ms)    = %.3f (over %d queries with a live near peer)\n", row.PNear, row.NearDenom)
	fmt.Printf("mean RTT of found peer  = %.1f ms\n", row.MeanFoundMs)
	fmt.Printf("mean probes per query   = %.1f (%d timed out: stale hints or loss)\n", row.MeanProbes, row.DeadProbes)
	fmt.Printf("mean DHT lookups/query  = %.1f (%.1f routing hops/query, %d lookup failures)\n", row.MeanLookups, row.MeanHops, row.LookupFails)
	fmt.Printf("mean messages per query = %.1f (maintenance included)\n", row.MeanMsgs)
	fmt.Printf("publish cost            = %.1f msgs/peer\n", row.PubMsgsPerPeer)
	fmt.Printf("RPC timeouts            = %d\n", row.Timeouts)
	if churn {
		fmt.Printf("churn                   = %d leaves, %d joins\n", row.Leaves, row.Joins)
	}
}

// runWireChord exercises the message-level Chord substrate by itself on
// the clustered matrix: sequential Put+Get pairs from random live nodes.
func runWireChord(m latency.Matrix, peers, queries int, loss float64, churn bool, seed int64, rec *obs.Recorder, plan *faults.Plan) {
	const maxOps = 500
	if queries > maxOps {
		queries = maxOps
	}
	fmt.Printf("algo=chord/p2p ops=%d (Put+Get pairs; capped at %d) loss=%.0f%% churn=%v\n",
		queries, maxOps, loss*100, churn)
	row := experiments.RunWireChord(m, experiments.WireChordOpts{
		Nodes: peers, Ops: queries, Loss: loss, Churn: churn, Seed: seed,
		Recorder: rec, Faults: plan,
	})
	fmt.Printf("\nring size               = %d nodes\n", row.Nodes)
	fmt.Printf("put acknowledged        = %.3f\n", row.PutOK)
	fmt.Printf("get returned the value  = %.3f\n", row.GetOK)
	fmt.Printf("mean routing hops/op    = %.1f (%.1f re-routed after timeout)\n", row.MeanHops, row.MeanRetries)
	fmt.Printf("mean messages per op    = %.1f (maintenance included)\n", row.MeanMsgs)
	fmt.Printf("RPC timeouts            = %d, lookup failures = %d\n", row.Timeouts, row.LookupFails)
	if churn {
		fmt.Printf("churn                   = %d leaves, %d joins\n", row.Leaves, row.Joins)
	}
}
