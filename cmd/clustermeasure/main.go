// Command clustermeasure runs the paper's Section 3.2 measurement pipeline
// end to end on a synthetic Azureus-style population: vantage-point
// traceroutes, unique-upstream filtering, clustering by upstream router,
// hub-latency estimation and factor-1.5 pruning — printing the attrition
// funnel and the resulting cluster-size distribution.
package main

import (
	"flag"
	"fmt"

	"nearestpeer/internal/azureus"
	"nearestpeer/internal/cluster"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func main() {
	n := flag.Int("n", 20000, "population size (paper: 156658)")
	homeFrac := flag.Float64("home", 0.85, "fraction of home-broadband addresses")
	factor := flag.Float64("prune", 1.5, "pruning factor for hub-to-peer latencies")
	full := flag.Bool("fullnet", false, "use the full measurement-scale topology")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := netmodel.DefaultConfig()
	if *full {
		cfg = netmodel.MeasurementConfig()
	}
	top := netmodel.Generate(cfg, *seed)
	tools := measure.NewTools(top, measure.DefaultConfig(), *seed+1)
	vantages, err := measure.SelectVantages(top, 7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("topology: %d hosts, %d routers, %d PoPs\n", len(top.Hosts), len(top.Routers), len(top.PoPs))
	fmt.Println("vantage points:")
	for _, v := range vantages {
		fmt.Printf("  %-34s -> %s\n", v.Name, v.City)
	}

	pop := azureus.Sample(top, *n, *homeFrac, *seed+2)
	fmt.Printf("\npopulation: %d addresses (%.0f%% home)\n", len(pop.Hosts), *homeFrac*100)

	ccfg := cluster.DefaultConfig()
	ccfg.PruneFactor = *factor
	res := cluster.Run(tools, vantages, pop.Hosts, ccfg)

	fmt.Printf("\nattrition funnel (paper: 156,658 -> 22,796 -> 5,904):\n")
	fmt.Printf("  addresses          %8d\n", res.Candidates)
	fmt.Printf("  responsive         %8d (%.1f%%)\n", res.Responsive,
		100*float64(res.Responsive)/float64(res.Candidates))
	fmt.Printf("  unique upstream    %8d (%.1f%% of responsive)\n", res.UniqueUpstream,
		100*float64(res.UniqueUpstream)/float64(res.Responsive))

	unpruned := cluster.SizeDistribution(res.Clusters)
	pruned := cluster.SizeDistribution(res.Pruned)
	show := func(name string, sizes []int) {
		top5 := sizes
		if len(top5) > 5 {
			top5 = top5[:5]
		}
		fmt.Printf("  %-9s clusters=%4d largest=%v\n", name, len(sizes), top5)
	}
	fmt.Println("\nclusters (size >= 2):")
	show("unpruned", unpruned)
	show("pruned", pruned)
	fmt.Printf("\nfraction of peers in pruned clusters >=25: %.1f%% (paper: ~16%%)\n",
		100*cluster.FractionInClustersOfAtLeast(res.Pruned, res.UniqueUpstream, 25))
}
