// Command npnode serves nearest-peer protocol nodes over the UDP
// transport and talks to them: the deployable face of the reproduction's
// protocol stack. The same chord and runtime code that produces the
// simulated figures runs here over real datagrams.
//
//	npnode serve    -ids 0-9 -addr-template 127.0.0.1:77%02d ...   # daemon
//	npnode put      -as 10 -ids 0-9 ... <key> <value>              # store
//	npnode get      -as 10 -ids 0-9 ... <key>                      # fetch
//	npnode nearest  -as 10 -ids 0-9 ...                            # closest peer by RTT sweep
//	npnode oracle   -matrix m.json -from 10 -ids 0-9               # static ground truth
//	npnode genmatrix -n 12 -seed 5                                 # emit a latency matrix
//
// Addressing: -addr-template is a fmt pattern with one %d (the node ID)
// producing the full "host:port" of that node — "127.0.0.1:77%02d" for an
// in-process cluster on one machine, "node-%d:7000" for a docker-compose
// network. With -matrix and -delay, the transport prices an artificial
// receive-side delay from the matrix, so a cluster on the loopback
// interface exhibits the matrix's RTTs and `nearest` can be cross-checked
// against `oracle` (the CI live smoke does exactly that).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "put", "get", "nearest":
		err = cmdClient(os.Args[1], os.Args[2:])
	case "oracle":
		err = cmdOracle(os.Args[2:])
	case "genmatrix":
		err = cmdGenMatrix(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("npnode %s: %v", os.Args[1], err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: npnode <serve|put|get|nearest|oracle|genmatrix> [flags] [args]
Run "npnode <verb> -h" for the verb's flags.`)
}

// matrixFile is the on-disk latency matrix: symmetric RTTs in ms.
type matrixFile struct {
	N   int         `json:"n"`
	RTT [][]float64 `json:"rtt"`
}

func loadMatrix(path string) (*latency.Dense, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var mf matrixFile
	if err := json.Unmarshal(b, &mf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if mf.N <= 0 || len(mf.RTT) != mf.N {
		return nil, fmt.Errorf("%s: bad matrix dimensions", path)
	}
	m := latency.NewDense(mf.N)
	for i := 0; i < mf.N; i++ {
		if len(mf.RTT[i]) != mf.N {
			return nil, fmt.Errorf("%s: row %d has %d entries, want %d", path, i, len(mf.RTT[i]), mf.N)
		}
		for j := i + 1; j < mf.N; j++ {
			m.Set(i, j, mf.RTT[i][j])
		}
	}
	return m, nil
}

// parseIDs parses "0-9,12,15" into a sorted list of node IDs.
func parseIDs(spec string) ([]p2p.NodeID, error) {
	var out []p2p.NodeID
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b || a < 0 {
				return nil, fmt.Errorf("bad id range %q", part)
			}
			for i := a; i <= b; i++ {
				out = append(out, p2p.NodeID(i))
			}
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, p2p.NodeID(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty id list %q", spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// clusterFlags are the flags every networked verb shares.
type clusterFlags struct {
	ids        string
	n          int
	addrTmpl   string
	matrixPath string
	delay      bool
	rpcTimeout time.Duration
	seed       int64
}

func (c *clusterFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.ids, "ids", "", "cluster member node IDs, e.g. 0-9 or 0,3,7")
	fs.IntVar(&c.n, "n", 0, "ID-space bound (defaults to the matrix size, or max id+1)")
	fs.StringVar(&c.addrTmpl, "addr-template", "127.0.0.1:77%02d", "fmt pattern with one %d mapping a node ID to host:port")
	fs.StringVar(&c.matrixPath, "matrix", "", "latency matrix JSON (see genmatrix)")
	fs.BoolVar(&c.delay, "delay", false, "price artificial receive delays from -matrix")
	fs.DurationVar(&c.rpcTimeout, "rpc-timeout", 2*time.Second, "per-RPC timeout")
	fs.Int64Var(&c.seed, "seed", 1, "rng seed (loss model, protocol draws)")
}

// build resolves the shared flags: member list, population, and an
// optional delay matrix.
func (c *clusterFlags) build(extra ...p2p.NodeID) (members []p2p.NodeID, pop int, dm *latency.Dense, err error) {
	if c.ids == "" {
		return nil, 0, nil, fmt.Errorf("-ids is required")
	}
	members, err = parseIDs(c.ids)
	if err != nil {
		return nil, 0, nil, err
	}
	max := members[len(members)-1]
	for _, id := range extra {
		if id > max {
			max = id
		}
	}
	pop = c.n
	if c.matrixPath != "" {
		if dm, err = loadMatrix(c.matrixPath); err != nil {
			return nil, 0, nil, err
		}
		if pop == 0 {
			pop = dm.N()
		}
	}
	if pop == 0 {
		pop = int(max) + 1
	}
	if int(max) >= pop {
		return nil, 0, nil, fmt.Errorf("id %d outside population %d", max, pop)
	}
	if c.delay && dm == nil {
		return nil, 0, nil, fmt.Errorf("-delay requires -matrix")
	}
	return members, pop, dm, nil
}

// addrOf applies the address template to a node ID.
func (c *clusterFlags) addrOf(id p2p.NodeID) string {
	return fmt.Sprintf(c.addrTmpl, int(id))
}

// newTransport stands a UDP transport up: sockets for the local IDs,
// peer-table entries for everyone else. listenOverride, when non-empty,
// is the bind address of the (single) local ID — the docker deployment
// binds 0.0.0.0 while peers reach it by service name.
func (c *clusterFlags) newTransport(members, local []p2p.NodeID, pop int, dm *latency.Dense, listenOverride string) (*p2p.UDP, error) {
	u := p2p.NewUDP(pop, p2p.Config{RPCTimeout: c.rpcTimeout}, c.seed)
	if c.delay {
		u.SetDelayMatrix(dm)
	}
	localSet := make(map[p2p.NodeID]bool, len(local))
	for _, id := range local {
		bind := c.addrOf(id)
		if listenOverride != "" {
			bind = listenOverride
		}
		addr, err := u.Listen(id, bind)
		if err != nil {
			u.Close()
			return nil, err
		}
		localSet[id] = true
		log.Printf("node %d listening on %s", id, addr)
	}
	for _, id := range members {
		if localSet[id] {
			continue
		}
		// Peers may not resolve yet (containers racing up): log and move
		// on — addresses are also learned from incoming datagrams, and
		// chord's stabilize retries through the membership.
		if err := u.AddPeer(id, c.addrOf(id)); err != nil {
			log.Printf("peer %d: %v (will rely on learned addresses)", id, err)
		}
	}
	return u, nil
}

// chordConfig is the deployment's chord tuning.
func chordConfig(stabilize, rpcTimeout time.Duration) p2p.ChordConfig {
	cfg := p2p.DefaultChordConfig()
	cfg.StabilizeEvery = stabilize
	cfg.RPCTimeout = rpcTimeout
	return cfg
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var cf clusterFlags
	cf.register(fs)
	serveIDs := fs.String("serve-ids", "", "IDs served by this process (default: all of -ids)")
	listen := fs.String("listen", "", "bind address override (single served ID only)")
	stabilize := fs.Duration("stabilize", 200*time.Millisecond, "chord stabilize period")
	faultSpec := fs.String("faults", "", `deterministic fault plan over the UDP wire, e.g. "seed=7;burst:at=10s,for=30s,prob=0.3" (see internal/faults; time counts from transport start)`)
	status := fs.Duration("status", 2*time.Second, "status log period (0 disables)")
	fs.Parse(args)

	members, pop, dm, err := cf.build()
	if err != nil {
		return err
	}
	local := members
	if *serveIDs != "" {
		if local, err = parseIDs(*serveIDs); err != nil {
			return err
		}
	}
	if *listen != "" && len(local) != 1 {
		return fmt.Errorf("-listen needs exactly one served ID, got %d", len(local))
	}

	u, err := cf.newTransport(members, local, pop, dm, *listen)
	if err != nil {
		return err
	}
	defer u.Close()
	if *faultSpec != "" {
		plan, perr := faults.Parse(*faultSpec)
		if perr != nil {
			return perr
		}
		p2p.NewFaultTransport(u, plan)
		log.Printf("fault plan armed: %s", plan)
	}

	ch := p2p.NewChord(u, chordConfig(*stabilize, cf.rpcTimeout), cf.seed)
	u.Do(func() {
		localSet := make(map[p2p.NodeID]bool, len(local))
		for _, id := range local {
			localSet[id] = true
		}
		var remote []p2p.NodeID
		for _, id := range members {
			if !localSet[id] {
				remote = append(remote, id)
			}
		}
		// Remote members enter the bootstrap handout; local ones enter it
		// by joining, so an in-process cluster bootstraps off itself.
		ch.Bootstrap(remote...)
		for _, id := range local {
			ch.Join(id)
			log.Printf("node %d joined the ring (ring id %016x)", id, ch.RingIDOf(id))
		}
	})

	// Log once when every locally served node agrees with the ring order
	// of the full membership — the same convergence criterion the
	// differential test gates on. Scripts (scripts/livesmoke.sh) wait for
	// this line before running client operations: a put racing the initial
	// join churn can land at a transient owner and strand the key.
	go func() {
		for range time.Tick(100 * time.Millisecond) {
			converged := false
			u.Do(func() { converged = ringConverged(ch, members, local) })
			if converged {
				log.Printf("ring converged (%d members)", len(members))
				return
			}
		}
	}()

	if *status > 0 {
		go func() {
			for range time.Tick(*status) {
				u.Do(func() {
					for _, id := range local {
						succ, sok := ch.SuccessorOf(id)
						pred, pok := ch.PredecessorOf(id)
						m := u.SerialMetrics()
						log.Printf("node %d: succ=%v(%v) pred=%v(%v) members=%d sent=%d delivered=%d timeouts=%d",
							id, succ, sok, pred, pok, ch.NumMembers(), m.MsgsSent, m.MsgsDelivered, m.Timeouts)
					}
				})
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("caught %v: leaving the ring", s)
	// Graceful departure: each served node hands its keys to its successor
	// and stops, so a key stored here survives this process's shutdown as
	// long as the successor is in another process (the live smoke's
	// restart round gates on exactly that).
	u.Do(func() {
		for _, id := range local {
			ch.Leave(id, true)
			log.Printf("node %d left the ring (graceful handoff)", id)
		}
	})
	// Let the handoff datagrams drain before the sockets close.
	time.Sleep(500 * time.Millisecond)
	log.Printf("shutdown complete")
	return nil
}

// ringConverged reports whether every locally served node's successor
// matches the successor implied by the members' ring IDs — a pure
// function of the (static) membership, so it needs no global view.
func ringConverged(ch *p2p.Chord, members, local []p2p.NodeID) bool {
	if len(members) < 2 {
		return true
	}
	for _, id := range local {
		succ, ok := ch.SuccessorOf(id)
		if !ok || succ != ringSuccessor(ch, members, id) {
			return false
		}
	}
	return true
}

// ringSuccessor computes successor(id) over the membership by ring IDs:
// the member at the smallest clockwise ring distance from id.
func ringSuccessor(ch *p2p.Chord, members []p2p.NodeID, id p2p.NodeID) p2p.NodeID {
	self := ch.RingIDOf(id)
	best := p2p.NoNode
	var bestDist uint64
	for _, m := range members {
		if m == id {
			continue
		}
		d := ch.RingIDOf(m) - self // wrapping clockwise distance
		if best == p2p.NoNode || d < bestDist {
			best, bestDist = m, d
		}
	}
	return best
}

func cmdClient(verb string, args []string) error {
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	var cf clusterFlags
	cf.register(fs)
	as := fs.Int("as", -1, "client node ID (a matrix row when -delay is used)")
	opTimeout := fs.Duration("op-timeout", 15*time.Second, "whole-operation deadline")
	fs.Parse(args)
	if *as < 0 {
		return fmt.Errorf("-as is required")
	}
	client := p2p.NodeID(*as)

	members, pop, dm, err := cf.build(client)
	if err != nil {
		return err
	}
	for _, m := range members {
		if m == client {
			return fmt.Errorf("-as %d is a cluster member; pick a spare ID", client)
		}
	}

	u, err := cf.newTransport(members, nil, pop, dm, "")
	if err != nil {
		return err
	}
	defer u.Close()
	// The client binds an ephemeral port; daemons learn its address from
	// its datagrams.
	if _, err := u.Listen(client, "127.0.0.1:0"); err != nil {
		return err
	}

	done := make(chan error, 1)
	switch verb {
	case "put":
		if fs.NArg() != 2 {
			return fmt.Errorf("usage: npnode put [flags] <key> <value>")
		}
		key, val := fs.Arg(0), fs.Arg(1)
		ch := p2p.NewChord(u, chordConfig(time.Second, cf.rpcTimeout), cf.seed)
		u.Do(func() {
			ch.Bootstrap(members...)
			ch.Put(client, key, []byte(val), func(res p2p.OpResult) {
				if !res.OK {
					done <- fmt.Errorf("put %s failed (hops=%d retries=%d lookupFails=%d)", key, res.Hops, res.Retries, res.LookupFails)
					return
				}
				fmt.Printf("put %s ok hops=%d\n", key, res.Hops)
				done <- nil
			})
		})
	case "get":
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: npnode get [flags] <key>")
		}
		key := fs.Arg(0)
		ch := p2p.NewChord(u, chordConfig(time.Second, cf.rpcTimeout), cf.seed)
		u.Do(func() {
			ch.Bootstrap(members...)
			ch.Get(client, key, func(res p2p.OpResult) {
				if !res.OK || len(res.Vals) == 0 {
					done <- fmt.Errorf("get %s failed or empty (hops=%d retries=%d)", key, res.Hops, res.Retries)
					return
				}
				fmt.Printf("get %s = %s hops=%d\n", key, res.Vals[0], res.Hops)
				done <- nil
			})
		})
	case "nearest":
		if fs.NArg() != 0 {
			return fmt.Errorf("usage: npnode nearest [flags]")
		}
		u.Do(func() {
			n := u.Node(client)
			n.SweepPing(members, cf.rpcTimeout, func(s p2p.PingSweep) {
				if !s.Found {
					done <- fmt.Errorf("nearest: no peer answered (%d probes, %d dead)", s.Probes, s.Dead)
					return
				}
				fmt.Printf("nearest %d rtt_ms %.3f probes %d dead %d\n", s.Best, s.BestRTT, s.Probes, s.Dead)
				done <- nil
			})
		})
	}
	select {
	case err := <-done:
		return err
	case <-time.After(*opTimeout):
		return fmt.Errorf("%s timed out after %v", verb, *opTimeout)
	}
}

func cmdOracle(args []string) error {
	fs := flag.NewFlagSet("oracle", flag.ExitOnError)
	matrixPath := fs.String("matrix", "", "latency matrix JSON")
	from := fs.Int("from", -1, "client matrix row")
	ids := fs.String("ids", "", "candidate node IDs")
	fs.Parse(args)
	if *matrixPath == "" || *from < 0 || *ids == "" {
		return fmt.Errorf("-matrix, -from and -ids are required")
	}
	m, err := loadMatrix(*matrixPath)
	if err != nil {
		return err
	}
	cands, err := parseIDs(*ids)
	if err != nil {
		return err
	}
	if *from >= m.N() {
		return fmt.Errorf("-from %d outside matrix of %d", *from, m.N())
	}
	best, bestRTT := -1, 0.0
	for _, id := range cands {
		if int(id) == *from || int(id) >= m.N() {
			continue
		}
		if rtt := m.LatencyMs(*from, int(id)); best < 0 || rtt < bestRTT {
			best, bestRTT = int(id), rtt
		}
	}
	if best < 0 {
		return fmt.Errorf("no candidates inside the matrix")
	}
	fmt.Printf("nearest %d rtt_ms %.3f\n", best, bestRTT)
	return nil
}

func cmdGenMatrix(args []string) error {
	fs := flag.NewFlagSet("genmatrix", flag.ExitOnError)
	n := fs.Int("n", 12, "matrix size (cluster nodes plus spare client rows)")
	seed := fs.Int64("seed", 5, "rng seed")
	fs.Parse(args)
	if *n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	// Every pair gets a distinct RTT (5 + 2k ms over a seeded shuffle of
	// the pair index), so argmin comparisons — the oracle cross-check —
	// are never decided by sub-millisecond measurement noise.
	type pair struct{ i, j int }
	var pairs []pair
	for i := 0; i < *n; i++ {
		for j := i + 1; j < *n; j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	perm := rng.New(*seed).Split("matrix").Perm(len(pairs))
	mf := matrixFile{N: *n, RTT: make([][]float64, *n)}
	for i := range mf.RTT {
		mf.RTT[i] = make([]float64, *n)
	}
	for p, pr := range pairs {
		rtt := 5 + 2*float64(perm[p])
		mf.RTT[pr.i][pr.j] = rtt
		mf.RTT[pr.j][pr.i] = rtt
	}
	out, err := json.Marshal(mf)
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}
