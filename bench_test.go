package nearestpeer

// The repository benchmark suite: one benchmark per table and figure of the
// paper, plus the A1-A6 ablations. Each benchmark computes its figure
// from scratch per iteration (the shared topology is built once, outside
// the timer) and prints the rendered figure once, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation. Set NEARESTPEER_BENCH_SCALE=full to
// run at the paper's population sizes (slow); the default quick scale keeps
// every effect visible at a fraction of the cost.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"nearestpeer/internal/experiments"
)

const benchSeed = 1

func benchScale() experiments.Scale {
	if os.Getenv("NEARESTPEER_BENCH_SCALE") == "full" {
		return experiments.Full
	}
	return experiments.Quick
}

var printOnce sync.Map

// report prints a figure's rendered output once per process.
func report(name, text string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n==== %s ====\n%s\n", name, text)
	}
}

func BenchmarkTable1VantagePoints(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(env)
		if i == 0 {
			report("table1", r.Render())
		}
	}
}

func BenchmarkFig3PredictionMeasureCDF(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study := experiments.ComputeDNSStudy(env)
		r := experiments.Fig3From(study)
		if i == 0 {
			report("fig3", r.Render())
			b.ReportMetric(r.FractionIn05_2, "frac_in_0.5_2")
		}
	}
}

func BenchmarkFig4PredictionVsPredictedLatency(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	study := experiments.ComputeDNSStudy(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4From(study)
		if i == 0 {
			report("fig4", r.Render())
		}
	}
}

func BenchmarkFig5IntraVsInterDomain(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	study := experiments.ComputeDNSStudy(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5From(study)
		if i == 0 {
			report("fig5", r.Render())
		}
	}
}

func BenchmarkFig6ClusterSizes(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.ComputeAzureusStudy(env)
		r := experiments.Fig6From(res)
		if i == 0 {
			report("fig6", r.Render())
			b.ReportMetric(r.FracPruned25, "frac_pruned_ge25")
		}
	}
}

func BenchmarkFig7IntraClusterLatencies(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	res := experiments.ComputeAzureusStudy(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7From(res)
		if i == 0 {
			report("fig7", r.Render())
		}
	}
}

func BenchmarkFig8MeridianVsClusterSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchScale(), benchSeed)
		if i == 0 {
			report("fig8", r.Render())
		}
	}
}

func BenchmarkFig9MeridianVsDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchScale(), benchSeed)
		if i == 0 {
			report("fig9", r.Render())
		}
	}
}

func BenchmarkFig10UCLHopsVsLatency(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	g := experiments.TraceGraph(env) // graph shared; analysis is the subject
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10From(env, g)
		if i == 0 {
			report("fig10", r.Render())
		}
	}
}

func BenchmarkFig11PrefixErrorRates(b *testing.B) {
	env := experiments.SharedEnv(benchScale(), benchSeed)
	g := experiments.TraceGraph(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11From(env, g)
		if i == 0 {
			report("fig11", r.Render())
		}
	}
}

func BenchmarkAblationHypervolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationHypervolume(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a1", r.Render())
		}
	}
}

func BenchmarkAblationBetaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBetaSweep(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a2", r.Render())
		}
	}
}

func BenchmarkAblationAlgorithmComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationAlgorithmComparison(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a3", r.Render())
		}
	}
}

func BenchmarkAblationUCLDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationUCLDepth(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a4", r.Render())
		}
	}
}

func BenchmarkAblationComposite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationComposite(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a5", r.Render())
		}
	}
}

func BenchmarkAblationRingSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationRingSize(benchScale(), benchSeed)
		if i == 0 {
			report("ablation-a6", r.Render())
		}
	}
}

func BenchmarkChurnStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ChurnStudy(benchScale(), benchSeed)
		if i == 0 {
			report("churn-c1", r.Render())
		}
	}
}

func BenchmarkMitigationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.MitigationStudy(benchScale(), benchSeed)
		if i == 0 {
			report("mitigation-c2", r.Render())
		}
	}
}

func BenchmarkScaleStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ScaleStudy(benchScale(), benchSeed)
		if i == 0 {
			report("scale-s1", r.Render())
		}
	}
}

// BenchmarkScaleStudySmoke is the CI smoke slice of s1: a 1k-host
// population, all three algorithms, few queries. CI runs it at
// -benchtime=1x so a regression in the engine or any scale algorithm
// fails the build without paying for the full sweep.
func BenchmarkScaleStudySmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ScaleStudyAt([]int{1000}, 20, benchSeed)
		if i == 0 {
			report("scale-s1-smoke", r.Render())
		}
	}
}

func BenchmarkVivaldiStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.VivaldiStudy(benchScale(), benchSeed)
		if i == 0 {
			report("vivaldi-v1", r.Render())
		}
	}
}

// BenchmarkVivaldiStudySmoke is the CI smoke slice of v1: one 400-host
// population, all five conditions of the grid (the mitigation-companion
// rows ride along at quick scale), few searches. CI runs it at
// -benchtime=1x so a regression in the wire Vivaldi protocol or the study
// fails the build without paying for the full sweep.
func BenchmarkVivaldiStudySmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.VivaldiStudyAt([]int{400}, 10, experiments.Quick, benchSeed)
		if i == 0 {
			report("vivaldi-v1-smoke", r.Render())
		}
	}
}

// BenchmarkObsStudySmoke is the CI smoke slice of o1: a small clustered
// population through all twelve (scheme, condition) cells with the
// observability layer attached. CI runs it at -benchtime=1x so a
// regression in the obs hooks or the study itself fails the build without
// paying for the full figure.
func BenchmarkObsStudySmoke(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ObsStudyAt(120, 12, 6, benchSeed, false)
		if i == 0 {
			report("obs-o1-smoke", r.Render())
		}
	}
}
