package nearestpeer

// Repository-level integration tests: the full stack — topology,
// measurement, DHT-backed hints, Meridian fallback — exercised together,
// including failure injection (dark peers, anonymous routers everywhere,
// churn in the hint DHT).

import (
	"testing"

	"nearestpeer/internal/core"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/ucl"
)

func buildStack(t *testing.T, topoSeed int64, mutate func(*netmodel.Config)) (*netmodel.Topology, *measure.Tools, []netmodel.HostID) {
	t.Helper()
	cfg := netmodel.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	top := netmodel.Generate(cfg, topoSeed)
	tools := measure.NewTools(top, measure.DefaultConfig(), topoSeed+1)
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	return top, tools, peers
}

func TestEndToEndCascadeBeatsLatencyOnly(t *testing.T) {
	top, tools, peers := buildStack(t, 31, nil)
	if len(peers) > 700 {
		peers = peers[:700]
	}
	var queriers []netmodel.HostID
	for _, p := range peers {
		for _, q := range peers {
			if q != p && top.SameEN(p, q) {
				queriers = append(queriers, p)
				break
			}
		}
		if len(queriers) == 30 {
			break
		}
	}
	if len(queriers) < 10 {
		t.Skip("insufficient same-EN pairs")
	}

	full := core.NewService(top, tools, peers, core.DefaultConfig(), 5)
	merOnly := core.DefaultConfig()
	merOnly.UseMulticast, merOnly.UseUCL, merOnly.UsePrefix = false, false, false
	meridianSvc := core.NewService(top, tools, peers, merOnly, 5)

	fullHits, merHits := 0, 0
	for _, q := range queriers {
		if r := full.FindNearest(q); r.Peer >= 0 && top.SameEN(q, r.Peer) {
			fullHits++
		}
		if r := meridianSvc.FindNearest(q); r.Peer >= 0 && top.SameEN(q, r.Peer) {
			merHits++
		}
	}
	if fullHits <= merHits {
		t.Fatalf("cascade (%d/%d) did not beat Meridian-only (%d/%d)",
			fullHits, len(queriers), merHits, len(queriers))
	}
	if fullHits < len(queriers)*3/4 {
		t.Fatalf("cascade hit rate too low: %d/%d", fullHits, len(queriers))
	}
}

func TestUCLSurvivesAnonymousRouters(t *testing.T) {
	// Failure injection: half of all routers refuse traceroute. UCLs get
	// thinner but the mechanism must keep working for visible chains.
	top, tools, peers := buildStack(t, 33, func(c *netmodel.Config) {
		c.AnonymousRouterProb = 0.5
	})
	if len(peers) > 400 {
		peers = peers[:400]
	}
	nodes := make([]string, len(peers))
	for i, p := range peers {
		nodes[i] = top.Host(p).IP.String()
	}
	vs, err := measure.SelectVantages(top, 3)
	if err != nil {
		t.Fatal(err)
	}
	anchors := []netmodel.HostID{vs[0].Host, vs[1].Host, vs[2].Host}
	sys := ucl.New(tools, nodes, anchors, ucl.DefaultConfig())
	for _, p := range peers {
		sys.Join(p)
	}
	found := 0
	for _, p := range peers[:80] {
		if res := sys.FindNearest(p); res.Peer >= 0 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("UCL found nothing with 50% anonymous routers")
	}
}

func TestCascadeWithDarkPopulation(t *testing.T) {
	// Failure injection: almost nobody answers probes. The cascade must
	// degrade gracefully (no panics, sane accounting), not succeed.
	top, tools, peers := buildStack(t, 35, func(c *netmodel.Config) {
		c.TCPRespProbHome, c.TCPRespProbCorp = 0.02, 0.02
		c.PingRespProbHome, c.PingRespProbCorp = 0.01, 0.01
	})
	if len(peers) < 10 {
		t.Skip("population too dark to form a service")
	}
	svc := core.NewService(top, tools, peers, core.DefaultConfig(), 5)
	for _, p := range peers[:min(20, len(peers))] {
		res := svc.FindNearest(p)
		if res.Probes < 0 || res.Messages < 0 {
			t.Fatal("negative accounting")
		}
	}
}

func TestUCLChurn(t *testing.T) {
	// Peers leave; their mappings must disappear from query results.
	top, tools, peers := buildStack(t, 37, nil)
	if len(peers) > 300 {
		peers = peers[:300]
	}
	nodes := make([]string, len(peers))
	for i, p := range peers {
		nodes[i] = top.Host(p).IP.String()
	}
	vs, err := measure.SelectVantages(top, 3)
	if err != nil {
		t.Fatal(err)
	}
	anchors := []netmodel.HostID{vs[0].Host, vs[1].Host, vs[2].Host}
	sys := ucl.New(tools, nodes, anchors, ucl.DefaultConfig())
	for _, p := range peers {
		sys.Join(p)
	}
	// Everyone leaves except one peer; queries must never return departed
	// peers.
	for _, p := range peers[1:] {
		sys.Leave(p)
	}
	res := sys.FindNearest(peers[1])
	if res.Peer >= 0 && res.Peer != peers[0] {
		t.Fatalf("query returned departed peer %d", res.Peer)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
