// Filesharing: the paper's bandwidth-cost motivation. A swarm distributes
// a file; each peer downloads from its discovered nearest peer. Transfers
// that stay inside an end-network are an order of magnitude faster and cost
// the organisation nothing at the network boundary. This example measures
// cross-boundary bytes and effective swarm throughput with and without the
// UCL hint.
package main

import (
	"fmt"

	"nearestpeer/internal/core"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// transferMBps converts an RTT to an effective TCP throughput in MB/s with
// a toy model: throughput ~ window / RTT, LAN floor 100 MB/s.
func transferMBps(rttMs float64) float64 {
	if rttMs <= 0.5 {
		return 100
	}
	const windowKB = 256
	mbps := windowKB / rttMs // KB per ms == MB per s
	if mbps > 100 {
		mbps = 100
	}
	return mbps
}

func main() {
	top := netmodel.Generate(netmodel.DefaultConfig(), 21)
	tools := measure.NewTools(top, measure.DefaultConfig(), 22)

	var swarm []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			swarm = append(swarm, netmodel.HostID(i))
		}
	}
	fmt.Printf("swarm: %d peers, 1 GiB payload each\n\n", len(swarm))

	downloaders := swarm
	if len(downloaders) > 80 {
		downloaders = downloaders[:80]
	}

	run := func(name string, cfg core.Config) {
		svc := core.NewService(top, tools, swarm, cfg, 23)
		var crossBoundaryGiB float64
		var sumMBps float64
		served := 0
		for _, p := range downloaders {
			res := svc.FindNearest(p)
			if res.Peer < 0 {
				continue
			}
			served++
			sumMBps += transferMBps(res.RTTms)
			if !top.SameEN(p, res.Peer) {
				crossBoundaryGiB += 1.0 // the whole payload crosses the boundary
			}
		}
		fmt.Printf("%-12s peers-served=%d mean-throughput=%.1f MB/s cross-boundary traffic=%.0f GiB\n",
			name, served, sumMBps/float64(served), crossBoundaryGiB)
	}

	meridianOnly := core.DefaultConfig()
	meridianOnly.UseMulticast, meridianOnly.UseUCL, meridianOnly.UsePrefix = false, false, false
	run("meridian", meridianOnly)
	run("composite", core.DefaultConfig())

	fmt.Println("\nevery download the composite keeps inside an end-network is a gigabyte the")
	fmt.Println("campus uplink never carries — the paper's 'significant savings in bandwidth costs'")
}
