// Quickstart: generate a small Internet, stand up the composite
// nearest-peer service over a peer population, and find the nearest peer
// for a few joining hosts — comparing each answer against the simulator's
// ground truth.
package main

import (
	"fmt"

	"nearestpeer/internal/core"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func main() {
	// 1. A synthetic Internet: ISPs, PoPs, end-networks, broadband homes.
	top := netmodel.Generate(netmodel.DefaultConfig(), 42)
	tools := measure.NewTools(top, measure.DefaultConfig(), 43)
	fmt.Printf("generated internet: %d hosts, %d routers, %d PoPs, %d end-networks\n",
		len(top.Hosts), len(top.Routers), len(top.PoPs), len(top.ENs))

	// 2. A P2P population: every host that accepts connections.
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	fmt.Printf("p2p population: %d peers\n", len(peers))

	// 3. The composite service: multicast -> UCL -> IP-prefix -> Meridian.
	svc := core.NewService(top, tools, peers, core.DefaultConfig(), 44)

	// 4. New peers join and look for their nearest peer.
	fmt.Printf("\n%8s %12s %12s %10s %-10s %s\n",
		"peer", "found RTT", "oracle RTT", "probes", "method", "same end-network?")
	shown := 0
	for _, p := range peers {
		res := svc.FindNearest(p)
		if res.Peer < 0 {
			continue
		}
		_, oracleLat := svc.TrueNearest(p)
		fmt.Printf("%8d %9.3fms %9.3fms %10d %-10s %v\n",
			p, res.RTTms, oracleLat, res.Probes, res.Method, top.SameEN(p, res.Peer))
		shown++
		if shown == 10 {
			break
		}
	}

	// 5. The clustering-condition detector from Section 2.1.
	rep := svc.DetectClusteringCondition(peers[0], 40, 7)
	fmt.Printf("\nclustering-condition check from peer %d: %s\n", peers[0], rep)
}
