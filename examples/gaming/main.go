// Gaming: the paper's opening motivation. First-person-shooter latency
// tolerances are tens of milliseconds; peers on the same extended LAN see
// sub-millisecond latencies. This example runs matchmaking for a lobby of
// players twice — once with latency-only search (Meridian) and once with
// the composite cascade — and reports how many players end up paired with
// a same-network opponent, and what the median game RTT is.
package main

import (
	"fmt"
	"sort"

	"nearestpeer/internal/core"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func main() {
	top := netmodel.Generate(netmodel.DefaultConfig(), 7)
	tools := measure.NewTools(top, measure.DefaultConfig(), 8)

	// Players: TCP-reachable hosts. Campus hosts matter most — they are
	// the ones with a LAN-party partner to find.
	var players []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			players = append(players, netmodel.HostID(i))
		}
	}
	fmt.Printf("lobby: %d players\n", len(players))

	// Players who actually have a same-network opponent available.
	var withPartner []netmodel.HostID
	for _, p := range players {
		for _, q := range players {
			if q != p && top.SameEN(p, q) {
				withPartner = append(withPartner, p)
				break
			}
		}
	}
	fmt.Printf("players with a same-LAN opponent available: %d\n\n", len(withPartner))
	if len(withPartner) > 60 {
		withPartner = withPartner[:60]
	}

	type outcome struct {
		name      string
		sameLAN   int
		under20ms int
		rtts      []float64
		probes    int64
	}
	run := func(name string, cfg core.Config) outcome {
		svc := core.NewService(top, tools, players, cfg, 9)
		o := outcome{name: name}
		for _, p := range withPartner {
			res := svc.FindNearest(p)
			if res.Peer < 0 {
				continue
			}
			o.probes += res.Probes
			o.rtts = append(o.rtts, res.RTTms)
			if top.SameEN(p, res.Peer) {
				o.sameLAN++
			}
			if res.RTTms <= 20 {
				o.under20ms++
			}
		}
		return o
	}

	meridianOnly := core.DefaultConfig()
	meridianOnly.UseMulticast, meridianOnly.UseUCL, meridianOnly.UsePrefix = false, false, false

	results := []outcome{
		run("meridian-only", meridianOnly),
		run("composite", core.DefaultConfig()),
	}

	fmt.Printf("%-14s %10s %12s %14s %14s\n",
		"matchmaking", "same-LAN", "RTT<=20ms", "median RTT", "probes/player")
	for _, o := range results {
		sort.Float64s(o.rtts)
		med := 0.0
		if len(o.rtts) > 0 {
			med = o.rtts[len(o.rtts)/2]
		}
		fmt.Printf("%-14s %7d/%2d %9d/%2d %11.3fms %14.1f\n",
			o.name, o.sameLAN, len(withPartner), o.under20ms, len(withPartner),
			med, float64(o.probes)/float64(len(withPartner)))
	}
	fmt.Println("\nthe composite cascade pairs players with their LAN opponents; latency-only")
	fmt.Println("matchmaking strands them with ~10-30 ms strangers — the paper's opportunity cost")
}
