// Measurement: a walk through the paper's Section 3 toolkit on the
// simulated Internet — rockettrace a DNS server, locate its closest
// upstream PoP, predict the latency between two servers of one PoP from
// pings around their deepest common router, then check the prediction with
// King. This is the methodology of Figures 2-5 in miniature.
package main

import (
	"fmt"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func main() {
	top := netmodel.Generate(netmodel.DefaultConfig(), 77)
	tools := measure.NewTools(top, measure.DefaultConfig(), 78)
	vs, err := measure.SelectVantages(top, 1)
	if err != nil {
		panic(err)
	}
	mh := vs[0].Host
	fmt.Printf("measurement host: %s (%s)\n\n", vs[0].Name, vs[0].City)

	// Find two DNS servers behind one PoP, different domains.
	servers := top.DNSServers()
	var a, b netmodel.HostID = -1, -1
	for i := 0; i < len(servers) && a < 0; i++ {
		for j := i + 1; j < len(servers); j++ {
			sa, sb := servers[i], servers[j]
			if top.HostEN(sa).PoP == top.HostEN(sb).PoP &&
				top.Hosts[sa].EN != top.Hosts[sb].EN &&
				!tools.SameDomain(sa, sb) {
				a, b = sa, sb
				break
			}
		}
	}
	if a < 0 {
		fmt.Println("no same-PoP DNS pair in this topology; re-seed")
		return
	}

	fmt.Printf("server A: %s  server B: %s (same PoP, different end-networks)\n\n",
		top.Host(a).IP, top.Host(b).IP)

	// Rockettrace to A: annotated route.
	fmt.Println("rockettrace to A:")
	for i, hop := range tools.Rockettrace(mh, a) {
		if !hop.Valid {
			fmt.Printf("  %2d  *\n", i+1)
			continue
		}
		note := ""
		if hop.Annotated {
			note = fmt.Sprintf("  [AS%d %s]", top.ASOf(hop.AS).Number, top.City(hop.City).Code)
		}
		fmt.Printf("  %2d  %-40s %7.2fms%s\n", i+1, hop.Name, netmodel.Ms(hop.RTT), note)
	}
	key, _, beyond, ok := tools.ClosestUpstreamPoP(mh, a)
	if ok {
		fmt.Printf("closest upstream PoP: AS%d in %s, server %d hops beyond it\n\n",
			top.ASOf(key.AS).Number, top.City(key.City).Name, beyond)
	}

	// Deepest common router of the two traces.
	ta := tools.Rockettrace(mh, a)
	tb := tools.Rockettrace(mh, b)
	r, _, _, belowPoP, ok := measure.DeepestCommonRouter(ta, tb)
	if !ok {
		fmt.Println("no common router visible; aborting")
		return
	}
	fmt.Printf("deepest common router: %s (below the PoP: %v)\n", top.Router(r).Name, belowPoP)

	// Predict: (ping A - ping R) + (ping B - ping R).
	pa, _ := tools.Ping(mh, a)
	pb, _ := tools.Ping(mh, b)
	pr, err := tools.PingRouter(mh, r)
	if err != nil {
		fmt.Println("common router does not answer pings; aborting")
		return
	}
	predicted := (netmodel.Ms(pa) - netmodel.Ms(pr)) + (netmodel.Ms(pb) - netmodel.Ms(pr))
	fmt.Printf("predicted A<->B latency: %.2f ms\n", predicted)

	// Measure with King.
	if d, err := tools.King(mh, a, b); err == nil {
		measured := netmodel.Ms(d)
		fmt.Printf("King-measured A<->B:     %.2f ms\n", measured)
		fmt.Printf("prediction measure:      %.2f (Figure 3's x-axis)\n", predicted/measured)
	} else {
		fmt.Printf("King failed: %v\n", err)
	}
	fmt.Printf("true A<->B RTT:          %.2f ms\n", top.RTTms(a, b))
}
