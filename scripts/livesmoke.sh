#!/usr/bin/env bash
# Live-cluster smoke: boot a 10-node UDP cluster in one process, run
# put/get/nearest through the npnode CLI as an ephemeral client, and
# cross-check nearest against the static oracle's argmin over the same
# latency matrix. Node logs land in $LOGDIR (CI uploads them as an
# artifact). Exits nonzero on any mismatch.
set -euo pipefail

LOGDIR="${LOGDIR:-livesmoke-logs}"
BIN="${BIN:-$LOGDIR/npnode}"
MATRIX="$LOGDIR/matrix.json"
CLUSTER=(-ids 0-9 -n 12)
CLIENT=10 # a spare matrix row, not a cluster member

mkdir -p "$LOGDIR"
go build -o "$BIN" ./cmd/npnode

"$BIN" genmatrix -n 12 -seed 5 > "$MATRIX"

"$BIN" serve "${CLUSTER[@]}" -matrix "$MATRIX" -delay -status 5s \
  > "$LOGDIR/cluster.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

# Ready when the daemon reports ring convergence — a put racing the join
# churn can land at a transient owner and strand the key.
for i in $(seq 1 60); do
  if grep -q 'ring converged' "$LOGDIR/cluster.log"; then
    break
  fi
  if [ "$i" = 60 ]; then
    echo "ring never converged; cluster log tail:" >&2
    tail -20 "$LOGDIR/cluster.log" >&2
    exit 1
  fi
  sleep 0.5
done

# put/get round trips through separate client processes.
for k in alpha beta gamma; do
  "$BIN" put -as "$CLIENT" "${CLUSTER[@]}" "key-$k" "val-$k" | tee -a "$LOGDIR/client.log"
done
for k in alpha beta gamma; do
  got=$("$BIN" get -as "$CLIENT" "${CLUSTER[@]}" "key-$k" | tee -a "$LOGDIR/client.log")
  case "$got" in
    "get key-$k = val-$k"*) ;;
    *) echo "FAIL: get key-$k returned: $got" >&2; exit 1 ;;
  esac
done

# nearest over real datagrams vs the oracle's static argmin: the measured
# RTTs are the matrix's artificial delays plus sub-millisecond overhead,
# and genmatrix spaces every pair ≥2 ms apart, so the argmins must agree.
live=$("$BIN" nearest -as "$CLIENT" "${CLUSTER[@]}" -matrix "$MATRIX" -delay | tee -a "$LOGDIR/client.log")
want=$("$BIN" oracle -matrix "$MATRIX" -from "$CLIENT" -ids 0-9 | tee -a "$LOGDIR/client.log")
live_id=$(echo "$live" | awk '{print $2}')
want_id=$(echo "$want" | awk '{print $2}')
if [ "$live_id" != "$want_id" ]; then
  echo "FAIL: live nearest picked node $live_id, oracle says $want_id" >&2
  echo "  live:   $live" >&2
  echo "  oracle: $want" >&2
  exit 1
fi

echo "livesmoke OK: put/get round-tripped, nearest == oracle argmin (node $live_id)"
