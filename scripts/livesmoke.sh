#!/usr/bin/env bash
# Live-cluster smoke: boot a 10-node UDP cluster split across two daemon
# processes, run put/get/nearest through the npnode CLI as an ephemeral
# client, and cross-check nearest against the static oracle's argmin over
# the same latency matrix. Then the restart round: SIGTERM the second
# daemon (its node gracefully leaves the ring, handing its keys to its
# successor in the surviving process), check every key is still readable,
# restart the daemon, and check the rejoined ring still answers. Node logs
# land in $LOGDIR (CI uploads them as an artifact). Exits nonzero on any
# mismatch.
set -euo pipefail

LOGDIR="${LOGDIR:-livesmoke-logs}"
BIN="${BIN:-$LOGDIR/npnode}"
MATRIX="$LOGDIR/matrix.json"
CLUSTER=(-ids 0-9 -n 12)
CLIENT=10 # a spare matrix row, not a cluster member
KEYS=(alpha beta gamma delta epsilon zeta)

mkdir -p "$LOGDIR"
go build -o "$BIN" ./cmd/npnode

"$BIN" genmatrix -n 12 -seed 5 > "$MATRIX"

# Two processes so a graceful shutdown has somewhere to hand keys off to:
# A serves nodes 0-8, B serves node 9.
"$BIN" serve "${CLUSTER[@]}" -serve-ids 0-8 -matrix "$MATRIX" -delay -status 5s \
  > "$LOGDIR/cluster-a.log" 2>&1 &
SERVE_A=$!
"$BIN" serve "${CLUSTER[@]}" -serve-ids 9 -matrix "$MATRIX" -delay -status 5s \
  > "$LOGDIR/cluster-b.log" 2>&1 &
SERVE_B=$!
trap 'kill "$SERVE_A" "$SERVE_B" 2>/dev/null || true' EXIT

# Ready when both daemons report ring convergence — a put racing the join
# churn can land at a transient owner and strand the key.
wait_converged() { # logfile
  for i in $(seq 1 60); do
    if grep -q 'ring converged' "$1"; then
      return 0
    fi
    sleep 0.5
  done
  echo "ring never converged; $1 tail:" >&2
  tail -20 "$1" >&2
  return 1
}
wait_converged "$LOGDIR/cluster-a.log"
wait_converged "$LOGDIR/cluster-b.log"

# put/get round trips through separate client processes.
for k in "${KEYS[@]}"; do
  "$BIN" put -as "$CLIENT" "${CLUSTER[@]}" "key-$k" "val-$k" | tee -a "$LOGDIR/client.log"
done

check_get() { # key (retries around transient ring repair)
  local k="$1" got
  for i in $(seq 1 5); do
    if got=$("$BIN" get -as "$CLIENT" "${CLUSTER[@]}" "key-$k" 2>/dev/null); then
      case "$got" in
        "get key-$k = val-$k"*) echo "$got" >> "$LOGDIR/client.log"; return 0 ;;
      esac
    fi
    sleep 1
  done
  echo "FAIL: get key-$k returned: ${got:-<error>}" >&2
  return 1
}
for k in "${KEYS[@]}"; do
  check_get "$k"
done

# nearest over real datagrams vs the oracle's static argmin: the measured
# RTTs are the matrix's artificial delays plus sub-millisecond overhead,
# and genmatrix spaces every pair ≥2 ms apart, so the argmins must agree.
check_nearest() {
  local live want live_id want_id
  live=$("$BIN" nearest -as "$CLIENT" "${CLUSTER[@]}" -matrix "$MATRIX" -delay | tee -a "$LOGDIR/client.log")
  want=$("$BIN" oracle -matrix "$MATRIX" -from "$CLIENT" -ids 0-9 | tee -a "$LOGDIR/client.log")
  live_id=$(echo "$live" | awk '{print $2}')
  want_id=$(echo "$want" | awk '{print $2}')
  if [ "$live_id" != "$want_id" ]; then
    echo "FAIL: live nearest picked node $live_id, oracle says $want_id" >&2
    echo "  live:   $live" >&2
    echo "  oracle: $want" >&2
    return 1
  fi
  echo "nearest == oracle argmin (node $live_id)"
}
check_nearest

# --- restart round -----------------------------------------------------
# SIGTERM daemon B: node 9 must leave gracefully, handing its keys to its
# successor inside daemon A, so every key stays readable while B is down.
kill -TERM "$SERVE_B"
wait "$SERVE_B" 2>/dev/null || true
if ! grep -q 'left the ring (graceful handoff)' "$LOGDIR/cluster-b.log"; then
  echo "FAIL: daemon B shut down without a graceful leave; log tail:" >&2
  tail -10 "$LOGDIR/cluster-b.log" >&2
  exit 1
fi
echo "daemon B left gracefully; checking keys survived the handoff"
for k in "${KEYS[@]}"; do
  check_get "$k"
done

# Restart B: node 9 rejoins off the surviving members and the full ring
# converges again; keys and nearest must still answer.
"$BIN" serve "${CLUSTER[@]}" -serve-ids 9 -matrix "$MATRIX" -delay -status 5s \
  > "$LOGDIR/cluster-b2.log" 2>&1 &
SERVE_B=$!
trap 'kill "$SERVE_A" "$SERVE_B" 2>/dev/null || true' EXIT
wait_converged "$LOGDIR/cluster-b2.log"
echo "daemon B rejoined; ring reconverged"
for k in "${KEYS[@]}"; do
  check_get "$k"
done
check_nearest

echo "livesmoke OK: put/get round-tripped, handoff survived a restart, nearest == oracle argmin"
