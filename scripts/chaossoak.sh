#!/usr/bin/env bash
# Chaos soak: a 10-node UDP cluster (one race-instrumented daemon, ten
# sockets, real datagrams) runs under a deterministic fault plan — a 15 s
# bidirectional partition splitting the cluster 5/5 with a crash+restart of
# node 7 nested inside it — while a client keeps best-effort traffic
# flowing. The gates all sit PAST the heal: every key readable, nearest
# matching the static oracle's argmin, and the daemon still up (any data
# race killed it long ago — the binary is built with -race). Node logs land
# in $LOGDIR for the CI artifact. Exits nonzero on any gate.
set -euo pipefail

LOGDIR="${LOGDIR:-chaossoak-logs}"
BIN="$LOGDIR/npnode"
MATRIX="$LOGDIR/matrix.json"
CLUSTER=(-ids 0-9 -n 12)
CLIENT=10 # a spare matrix row, not a cluster member
KEYS=(alpha beta gamma delta epsilon zeta)

# The plan, measured from the daemon's transport start: quiet bring-up
# until t=20s, partition 0-4 | 5-9 during [20s,35s), node 7 down during
# [25s,35s). Healed from t=35s on.
PLAN='seed=3;partition:at=20s,for=15s,a=0-4,b=5-9;crash:at=25s,for=10s,nodes=7'
HEAL_AT=40 # seconds from daemon start: plan over, plus settle margin

mkdir -p "$LOGDIR"
go build -race -o "$BIN" ./cmd/npnode

"$BIN" genmatrix -n 12 -seed 5 > "$MATRIX"

"$BIN" serve "${CLUSTER[@]}" -serve-ids 0-9 -matrix "$MATRIX" -delay -status 5s \
  -faults "$PLAN" > "$LOGDIR/cluster.log" 2>&1 &
SERVE=$!
START=$SECONDS
trap 'kill "$SERVE" 2>/dev/null || true' EXIT

for i in $(seq 1 60); do
  grep -q 'ring converged' "$LOGDIR/cluster.log" && break
  sleep 0.5
done
grep -q 'ring converged' "$LOGDIR/cluster.log" || {
  echo "ring never converged; log tail:" >&2
  tail -20 "$LOGDIR/cluster.log" >&2
  exit 1
}
grep -q 'fault plan armed' "$LOGDIR/cluster.log" || {
  echo "FAIL: daemon did not arm the fault plan" >&2
  exit 1
}

# Seed the keys during the quiet window (retried: a put racing the tail of
# join churn can transiently miss).
put_key() { # key
  local k="$1"
  for i in $(seq 1 5); do
    if "$BIN" put -as "$CLIENT" "${CLUSTER[@]}" "key-$k" "val-$k" >> "$LOGDIR/client.log" 2>&1; then
      return 0
    fi
    sleep 1
  done
  echo "FAIL: put key-$k never succeeded" >&2
  return 1
}
for k in "${KEYS[@]}"; do
  put_key "$k"
done
echo "seeded ${#KEYS[@]} keys at t=$((SECONDS - START))s; letting the fault plan play out"

# Chaos window: keep best-effort traffic flowing so the partition and the
# crash are exercised by real lookups, not just stabilize rounds. Failures
# here are expected and only logged.
ok=0 fail=0
while [ $((SECONDS - START)) -lt "$HEAL_AT" ]; do
  for k in "${KEYS[@]}"; do
    if "$BIN" get -as "$CLIENT" "${CLUSTER[@]}" "key-$k" >> "$LOGDIR/client.log" 2>&1; then
      ok=$((ok + 1))
    else
      fail=$((fail + 1))
    fi
  done
  sleep 2
done
echo "chaos window over: $ok best-effort gets succeeded, $fail failed (failures expected mid-fault)"

# --- post-heal gates ---------------------------------------------------
kill -0 "$SERVE" 2>/dev/null || {
  echo "FAIL: daemon died during the soak; log tail:" >&2
  tail -30 "$LOGDIR/cluster.log" >&2
  exit 1
}

check_get() { # key (retried across the tail of ring repair)
  local k="$1" got
  for i in $(seq 1 10); do
    if got=$("$BIN" get -as "$CLIENT" "${CLUSTER[@]}" "key-$k" 2>/dev/null); then
      case "$got" in
        "get key-$k = val-$k"*) echo "$got" >> "$LOGDIR/client.log"; return 0 ;;
      esac
    fi
    sleep 1
  done
  echo "FAIL: post-heal get key-$k returned: ${got:-<error>}" >&2
  return 1
}
for k in "${KEYS[@]}"; do
  check_get "$k"
done
echo "all ${#KEYS[@]} keys readable post-heal"

# nearest over real datagrams vs the oracle's static argmin, post-heal
# (retried: node 7's coordinate may still be settling right at the gate).
check_nearest() {
  local live want live_id want_id
  for i in $(seq 1 5); do
    live=$("$BIN" nearest -as "$CLIENT" "${CLUSTER[@]}" -matrix "$MATRIX" -delay | tee -a "$LOGDIR/client.log")
    want=$("$BIN" oracle -matrix "$MATRIX" -from "$CLIENT" -ids 0-9 | tee -a "$LOGDIR/client.log")
    live_id=$(echo "$live" | awk '{print $2}')
    want_id=$(echo "$want" | awk '{print $2}')
    if [ "$live_id" = "$want_id" ]; then
      echo "nearest == oracle argmin (node $live_id)"
      return 0
    fi
    sleep 2
  done
  echo "FAIL: live nearest picked node $live_id, oracle says $want_id" >&2
  echo "  live:   $live" >&2
  echo "  oracle: $want" >&2
  return 1
}
check_nearest

echo "chaossoak OK: partition+crash healed, keys intact, nearest == oracle argmin"
