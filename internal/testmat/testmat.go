// Package testmat provides shared latency-matrix fixtures for algorithm
// tests: a well-behaved Euclidean space where every nearest-peer scheme
// should do well, and a strongly clustered space where the paper predicts
// they all fail to find the exact closest peer.
package testmat

import (
	"math"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
)

// Euclidean returns an n-node matrix with points uniform in a 100×100 box
// and latency = Euclidean distance + 0.01 ms.
func Euclidean(n int, seed int64) *latency.Dense {
	src := rng.New(seed)
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{src.Uniform(0, 100), src.Uniform(0, 100)}
	}
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := pts[i][0]-pts[j][0], pts[i][1]-pts[j][1]
			m.Set(i, j, math.Hypot(dx, dy)+0.01)
		}
	}
	return m
}

// Clustered returns a Section 4 matrix with the given end-networks per
// cluster and total peers, δ=0.2.
func Clustered(ensPerCluster, totalPeers int, seed int64) (*latency.Dense, *latency.GroundTruth) {
	cfg := latency.DefaultClusteredConfig()
	cfg.ENsPerCluster = ensPerCluster
	cfg.TotalPeers = totalPeers
	return latency.BuildClustered(cfg, seed)
}
