package faults

import (
	"testing"
	"time"
)

func TestSetContains(t *testing.T) {
	cases := []struct {
		s    Set
		id   int
		want bool
	}{
		{Everyone(), 0, true},
		{Everyone(), 99, true},
		{Range(2, 5), 2, true},
		{Range(2, 5), 5, true},
		{Range(2, 5), 6, false},
		{List(1, 3), 3, true},
		{List(1, 3), 2, false},
		{Set{}, 0, false}, // empty
	}
	for i, c := range cases {
		if got := c.s.Contains(c.id); got != c.want {
			t.Errorf("case %d: Contains(%d) = %v, want %v", i, c.id, got, c.want)
		}
	}
	if !(Set{}).Empty() || Everyone().Empty() || Range(0, 3).Empty() || List(7).Empty() {
		t.Error("Empty misclassifies")
	}
}

// TestDecideDeterminism: Decide is a pure function — identical plans give
// identical verdicts regardless of call order or repetition, and different
// seeds give different burst patterns.
func TestDecideDeterminism(t *testing.T) {
	mk := func(seed int64) *Plan {
		return &Plan{Seed: seed, Window: 100 * time.Millisecond, Rules: []Rule{
			{Kind: LossBurst, At: 0, For: 10 * time.Second, Prob: 0.5, Src: Everyone(), Dst: Everyone()},
		}}
	}
	a, b := mk(7), mk(7)
	diff := 0
	for w := 0; w < 50; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		for src := 0; src < 4; src++ {
			for dst := 0; dst < 4; dst++ {
				d1 := a.Decide(src, dst, now)
				d2 := b.Decide(src, dst, now+33*time.Millisecond) // same window
				if d1 != d2 {
					t.Fatalf("same plan disagrees at (src=%d dst=%d win=%d)", src, dst, w)
				}
				if d1 != mk(8).Decide(src, dst, now) {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Error("seeds 7 and 8 produced identical burst patterns")
	}
}

// TestDecideBurstRate: the per-window loss draws hit the configured
// probability within sampling tolerance.
func TestDecideBurstRate(t *testing.T) {
	p := &Plan{Seed: 3, Window: time.Millisecond, Rules: []Rule{
		{Kind: LossBurst, At: 0, For: time.Hour, Prob: 0.3, Src: Everyone(), Dst: Everyone()},
	}}
	drops := 0
	const trials = 20000
	for w := 0; w < trials; w++ {
		if p.Decide(1, 2, time.Duration(w)*time.Millisecond).Drop {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("burst rate %.3f, want ≈0.30", rate)
	}
}

func TestDecideScopes(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{
		{Kind: Blackhole, At: time.Second, For: time.Second, Src: List(1), Dst: List(2)},
		{Kind: Partition, At: 10 * time.Second, For: time.Second, Src: Range(0, 1), Dst: Range(2, 3)},
		{Kind: DelaySpike, At: 20 * time.Second, For: time.Second, ExtraMs: 50, Src: Everyone(), Dst: Everyone()},
		{Kind: Duplicate, At: 30 * time.Second, For: time.Second, Src: Everyone(), Dst: Everyone()},
	}}
	mid := 1500 * time.Millisecond
	if !p.Decide(1, 2, mid).Drop {
		t.Error("blackhole 1→2 not dropped")
	}
	if p.Decide(2, 1, mid).Drop {
		t.Error("blackhole dropped the reverse direction (must be asymmetric)")
	}
	if p.Decide(1, 2, 500*time.Millisecond).Drop || p.Decide(1, 2, 2*time.Second).Drop {
		t.Error("blackhole active outside its interval")
	}
	pm := 10500 * time.Millisecond
	if !p.Decide(0, 3, pm).Drop || !p.Decide(3, 0, pm).Drop {
		t.Error("partition must drop both directions")
	}
	if p.Decide(0, 1, pm).Drop || p.Decide(2, 3, pm).Drop {
		t.Error("partition dropped intra-side traffic")
	}
	if d := p.Decide(0, 1, 20500*time.Millisecond); d.ExtraMs != 50 {
		t.Errorf("spike extra = %v, want 50", d.ExtraMs)
	}
	if d := p.Decide(0, 1, 30500*time.Millisecond); !d.Dup {
		t.Error("duplicate window not flagged")
	}
	if d := p.Decide(0, 1, 25*time.Second); d != (Decision{}) {
		t.Errorf("quiet time got verdict %+v", d)
	}
	var nilPlan *Plan
	if d := nilPlan.Decide(0, 1, time.Second); d != (Decision{}) {
		t.Errorf("nil plan got verdict %+v", d)
	}
}

func TestNodeEvents(t *testing.T) {
	p := &Plan{Rules: []Rule{
		{Kind: Crash, At: 2 * time.Second, For: time.Second, Nodes: List(3, 1)},
		{Kind: Crash, At: time.Second, For: 5 * time.Second, Nodes: Range(7, 7)},
	}}
	evs := p.NodeEvents(10)
	want := []NodeEvent{
		{time.Second, 7, false},
		{2 * time.Second, 1, false},
		{2 * time.Second, 3, false},
		{3 * time.Second, 1, true},
		{3 * time.Second, 3, true},
		{6 * time.Second, 7, true},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
	if (*Plan)(nil).NodeEvents(10) != nil {
		t.Error("nil plan must have no node events")
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7;window=250ms;burst:at=5s,for=3s,prob=0.5,src=*,dst=*;partition:at=10s,for=5s,a=0-4,b=5-9;crash:at=16s,for=4s,nodes=7;spike:at=1s,for=2s,extra=80,src=1.3.5,dst=0-9"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Window != 250*time.Millisecond || len(p.Rules) != 4 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Rules[1].Kind != Partition || !p.Rules[1].Src.Contains(4) || p.Rules[1].Src.Contains(5) {
		t.Errorf("partition rule parsed wrong: %+v", p.Rules[1])
	}
	if p.Rules[3].Kind != DelaySpike || p.Rules[3].ExtraMs != 80 || !p.Rules[3].Src.Contains(3) || p.Rules[3].Src.Contains(2) {
		t.Errorf("spike rule parsed wrong: %+v", p.Rules[3])
	}
	rt, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", p.String(), err)
	}
	if rt.String() != p.String() {
		t.Errorf("round trip changed the plan:\n  %s\n  %s", p.String(), rt.String())
	}
	// Round-tripped plans decide identically.
	for w := 0; w < 100; w++ {
		now := time.Duration(w) * 100 * time.Millisecond
		if p.Decide(1, 6, now) != rt.Decide(1, 6, now) {
			t.Fatalf("round-tripped plan disagrees at %v", now)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus",
		"seed=x",
		"tornado:at=1s,for=1s",
		"burst:at=1s,for=1s,prob=1.5",
		"burst:at=1s",                  // missing for
		"crash:at=1s,for=1s",           // empty node set
		"partition:at=1s,for=1s,a=0-4", // empty side b
		"spike:at=1s,for=1s,extra=-3",
		"burst:at=1s,for=1s,src=9-2",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad plan", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Plan{Rules: []Rule{{Kind: LossBurst, At: 0, For: time.Second, Prob: 0.2, Src: Everyone(), Dst: Everyone()}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	badKind := &Plan{Rules: []Rule{{Kind: Kind(99), At: 0, For: time.Second}}}
	if err := badKind.Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
}
