// Package faults is the deterministic fault plane: a seeded Plan of
// scheduled network and node faults (loss bursts, delay spikes,
// duplication, reordering, asymmetric link black-holes, bidirectional
// partitions, node crash/restart) that every transport in internal/p2p can
// run under — the simulation kernel in virtual time, the loopback and UDP
// transports in wall-clock time — with the identical fault sequence.
//
// Determinism rule: every probabilistic decision is a pure function of
// (plan seed, rule index, src, dst, time window). Time is quantized into
// Window-sized buckets counted from the transport's own zero (virtual zero
// on the simulator, transport start on the live transports), and the draw
// for a bucket is a stateless hash mix — no RNG state, no draw order. Two
// transports running the same plan therefore agree on every decision no
// matter how their deliveries interleave, which is what the differential
// sim-vs-loopback test pins. Decisions are per (src, dst, window): a loss
// burst that afflicts a link drops the whole window's traffic on it, the
// burstiness real networks exhibit and a flat per-message coin cannot.
//
// The package deliberately depends on nothing inside the repository, so
// internal/p2p can import it without cycles.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault types a Rule can schedule.
type Kind uint8

const (
	// LossBurst drops every message on an afflicted (src, dst, window)
	// with probability Prob per window — bursty loss, not a per-message coin.
	LossBurst Kind = iota
	// DelaySpike adds ExtraMs of one-way delay on afflicted
	// (src, dst, window) tuples, drawn with probability Prob per window
	// (Prob 0 means every window in the active interval spikes).
	DelaySpike
	// Duplicate delivers every message on an afflicted (src, dst, window)
	// twice, drawn with probability Prob per window. The receiver's
	// inflight correlation must drop the extra copy.
	Duplicate
	// Reorder holds messages on afflicted (src, dst, window) tuples back by
	// ExtraMs, drawn with probability Prob per window — delaying a subset
	// of windows reorders their traffic relative to later sends.
	Reorder
	// Blackhole drops everything src→dst while active: an asymmetric link
	// failure (the reverse direction still flows).
	Blackhole
	// Partition drops everything between host set A and host set B, both
	// directions, while active: a clean bidirectional network split.
	Partition
	// Crash stops every node in Nodes at At and restarts it at At+For — a
	// process crash with a later supervisor restart.
	Crash
)

// String names a Kind the way Parse spells it.
func (k Kind) String() string {
	switch k {
	case LossBurst:
		return "burst"
	case DelaySpike:
		return "spike"
	case Duplicate:
		return "dup"
	case Reorder:
		return "reorder"
	case Blackhole:
		return "blackhole"
	case Partition:
		return "partition"
	case Crash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Set selects hosts by ID: everything, an inclusive range, or an explicit
// list. The zero Set selects nothing; build sets with Everyone, Range and
// List.
type Set struct {
	// All selects every host (the "*" spec).
	All bool
	// Ranged enables the inclusive ID range [Lo, Hi]. Without it the Lo/Hi
	// fields are ignored, so the zero Set selects nobody.
	Ranged bool
	// Lo, Hi bound the inclusive ID range when Ranged is set.
	Lo, Hi int
	// IDs selects an explicit ID list.
	IDs []int
}

// Everyone returns the wildcard set.
func Everyone() Set { return Set{All: true} }

// Range returns the inclusive ID range [lo, hi].
func Range(lo, hi int) Set { return Set{Ranged: true, Lo: lo, Hi: hi} }

// List returns an explicit ID set.
func List(ids ...int) Set { return Set{IDs: ids} }

// Contains reports whether the set selects id.
func (s Set) Contains(id int) bool {
	if s.All {
		return true
	}
	for _, v := range s.IDs {
		if v == id {
			return true
		}
	}
	return s.Ranged && id >= s.Lo && id <= s.Hi
}

// Empty reports whether the set selects no host at all.
func (s Set) Empty() bool { return !s.All && len(s.IDs) == 0 && !s.Ranged }

// spec renders the set in Parse's syntax.
func (s Set) spec() string {
	if s.All {
		return "*"
	}
	if len(s.IDs) > 0 {
		parts := make([]string, len(s.IDs))
		for i, id := range s.IDs {
			parts[i] = strconv.Itoa(id)
		}
		return strings.Join(parts, ".")
	}
	if s.Hi == s.Lo {
		return strconv.Itoa(s.Lo)
	}
	return fmt.Sprintf("%d-%d", s.Lo, s.Hi)
}

// Rule is one scheduled fault: a Kind, the active interval [At, At+For),
// the hosts it afflicts, and the kind-specific knobs.
type Rule struct {
	// Kind is the fault type.
	Kind Kind
	// At is when the fault becomes active, measured from the transport's
	// zero; For is how long it stays active.
	At, For time.Duration
	// Prob is the per-(src,dst,window) draw probability for the
	// probabilistic kinds (LossBurst, DelaySpike, Duplicate, Reorder).
	// 0 on DelaySpike/Duplicate/Reorder means "every window".
	Prob float64
	// ExtraMs is the added one-way delay for DelaySpike and Reorder.
	ExtraMs float64
	// Src and Dst scope link faults: a message src→dst is afflicted when
	// src ∈ Src and dst ∈ Dst (Partition also afflicts the reverse
	// direction). Empty sets never match; use Everyone() for wildcards.
	Src, Dst Set
	// Nodes scopes Crash rules.
	Nodes Set
}

// active reports whether the rule's interval covers now.
func (r Rule) active(now time.Duration) bool {
	return now >= r.At && now < r.At+r.For
}

// Plan is a seeded, scheduled set of fault rules. The zero Plan (or a nil
// *Plan) injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw; two transports running plans
	// with equal seeds, windows and rules make identical decisions.
	Seed int64
	// Window is the decision quantum for probabilistic draws. Non-positive
	// uses DefaultWindow.
	Window time.Duration
	// Rules is the fault schedule.
	Rules []Rule
}

// DefaultWindow is the decision quantum used when a plan does not set one:
// coarse enough that wall-clock scheduling jitter cannot move a send
// across a window boundary in the differential tests, fine enough that
// bursts and spikes churn within one experiment phase.
const DefaultWindow = 250 * time.Millisecond

// Decision is the fault plane's verdict for one message send.
type Decision struct {
	// Drop discards the message (counted, never delivered).
	Drop bool
	// Dup delivers a second copy of the message.
	Dup bool
	// ExtraMs is added one-way delay.
	ExtraMs float64
}

// window returns the plan's decision quantum.
func (p *Plan) window() time.Duration {
	if p.Window > 0 {
		return p.Window
	}
	return DefaultWindow
}

// Decide returns the fault verdict for a message src→dst sent at now
// (time measured from the transport's zero). It is a pure function of the
// plan and its arguments: no state, no draw order, identical in virtual
// and wall-clock time.
func (p *Plan) Decide(src, dst int, now time.Duration) Decision {
	var d Decision
	if p == nil {
		return d
	}
	win := int64(now / p.window())
	for i := range p.Rules {
		r := &p.Rules[i]
		if !r.active(now) {
			continue
		}
		switch r.Kind {
		case Blackhole:
			if r.Src.Contains(src) && r.Dst.Contains(dst) {
				d.Drop = true
			}
		case Partition:
			if (r.Src.Contains(src) && r.Dst.Contains(dst)) ||
				(r.Src.Contains(dst) && r.Dst.Contains(src)) {
				d.Drop = true
			}
		case LossBurst:
			if r.Src.Contains(src) && r.Dst.Contains(dst) && p.draw(i, src, dst, win) < r.Prob {
				d.Drop = true
			}
		case DelaySpike, Reorder:
			if r.Src.Contains(src) && r.Dst.Contains(dst) &&
				(r.Prob <= 0 || p.draw(i, src, dst, win) < r.Prob) {
				d.ExtraMs += r.ExtraMs
			}
		case Duplicate:
			if r.Src.Contains(src) && r.Dst.Contains(dst) &&
				(r.Prob <= 0 || p.draw(i, src, dst, win) < r.Prob) {
				d.Dup = true
			}
		}
		if d.Drop {
			return Decision{Drop: true}
		}
	}
	return d
}

// draw is the stateless per-(rule, src, dst, window) uniform draw in
// [0, 1): a splitmix64-style finalizer folded over the tuple, seeded by the
// plan seed. The +1 offsets keep distinct zero-valued fields from
// colliding.
func (p *Plan) draw(rule, src, dst int, win int64) float64 {
	x := uint64(p.Seed) ^ 0x9e3779b97f4a7c15
	for _, v := range [4]uint64{uint64(rule) + 1, uint64(src) + 1, uint64(dst) + 1, uint64(win) + 1} {
		x ^= v * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 30)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}

// NodeEvent is one scheduled node transition: at At, the node goes down
// (Up false) or comes back up (Up true).
type NodeEvent struct {
	// At is when the transition happens, from the transport's zero.
	At time.Duration
	// Node is the afflicted host ID.
	Node int
	// Up is false for the crash, true for the restart.
	Up bool
}

// NodeEvents expands the plan's Crash rules over a population into a
// schedule of down/up transitions, sorted by time (ties: node ID, down
// before up). pop bounds the IDs a wildcard or range set expands to.
func (p *Plan) NodeEvents(pop int) []NodeEvent {
	if p == nil {
		return nil
	}
	var evs []NodeEvent
	for _, r := range p.Rules {
		if r.Kind != Crash {
			continue
		}
		for id := 0; id < pop; id++ {
			if !r.Nodes.Contains(id) {
				continue
			}
			evs = append(evs, NodeEvent{At: r.At, Node: id, Up: false})
			evs = append(evs, NodeEvent{At: r.At + r.For, Node: id, Up: true})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		if evs[i].Node != evs[j].Node {
			return evs[i].Node < evs[j].Node
		}
		return !evs[i].Up && evs[j].Up
	})
	return evs
}

// Validate checks the plan's rules for out-of-range knobs.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.Window < 0 {
		return fmt.Errorf("faults: negative window %v", p.Window)
	}
	for i, r := range p.Rules {
		if r.At < 0 || r.For <= 0 {
			return fmt.Errorf("faults: rule %d (%s): interval at=%v for=%v", i, r.Kind, r.At, r.For)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("faults: rule %d (%s): probability %v out of [0,1]", i, r.Kind, r.Prob)
		}
		if r.ExtraMs < 0 {
			return fmt.Errorf("faults: rule %d (%s): negative extra delay %v ms", i, r.Kind, r.ExtraMs)
		}
		switch r.Kind {
		case Crash:
			if r.Nodes.Empty() {
				return fmt.Errorf("faults: rule %d (crash): empty node set", i)
			}
		case LossBurst, DelaySpike, Duplicate, Reorder, Blackhole, Partition:
			if r.Src.Empty() || r.Dst.Empty() {
				return fmt.Errorf("faults: rule %d (%s): empty src or dst set", i, r.Kind)
			}
		default:
			return fmt.Errorf("faults: rule %d: unknown kind %d", i, int(r.Kind))
		}
	}
	return nil
}

// String renders the plan in Parse's syntax (a plan round-trips through
// Parse(plan.String())).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.Window > 0 {
		parts = append(parts, fmt.Sprintf("window=%s", p.Window))
	}
	for _, r := range p.Rules {
		kv := []string{fmt.Sprintf("at=%s", r.At), fmt.Sprintf("for=%s", r.For)}
		if r.Prob > 0 {
			kv = append(kv, fmt.Sprintf("prob=%v", r.Prob))
		}
		if r.ExtraMs > 0 {
			kv = append(kv, fmt.Sprintf("extra=%v", r.ExtraMs))
		}
		switch r.Kind {
		case Crash:
			kv = append(kv, "nodes="+r.Nodes.spec())
		case Partition:
			kv = append(kv, "a="+r.Src.spec(), "b="+r.Dst.spec())
		default:
			kv = append(kv, "src="+r.Src.spec(), "dst="+r.Dst.spec())
		}
		parts = append(parts, fmt.Sprintf("%s:%s", r.Kind, strings.Join(kv, ",")))
	}
	return strings.Join(parts, ";")
}

// Parse reads the CLI plan syntax: semicolon-separated segments, each
// either a plan-level "seed=N" / "window=DUR" assignment or a rule
// "kind:key=val,key=val,...". Host sets are "*" (everyone), "lo-hi"
// (inclusive range), a single ID, or a dot-separated list "1.3.5".
//
//	seed=7;burst:at=5s,for=3s,prob=0.5,src=*,dst=*;partition:at=10s,for=5s,a=0-4,b=5-9;crash:at=16s,for=4s,nodes=7
//
// Rule keys: at, for (durations); prob (float); extra (ms, float);
// src, dst (link scope); a, b (partition sides); nodes (crash scope).
// Omitted src/dst default to "*".
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if kind, body, ok := strings.Cut(seg, ":"); ok {
			r, err := parseRule(kind, body)
			if err != nil {
				return nil, err
			}
			p.Rules = append(p.Rules, r)
			continue
		}
		key, val, ok := strings.Cut(seg, "=")
		if !ok {
			return nil, fmt.Errorf("faults: segment %q is neither key=val nor kind:...", seg)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %w", val, err)
			}
			p.Seed = n
		case "window":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faults: window %q: %w", val, err)
			}
			p.Window = d
		default:
			return nil, fmt.Errorf("faults: unknown plan key %q", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseRule reads one "kind:key=val,..." rule segment.
func parseRule(kind, body string) (Rule, error) {
	var r Rule
	switch kind {
	case "burst":
		r.Kind = LossBurst
	case "spike":
		r.Kind = DelaySpike
	case "dup":
		r.Kind = Duplicate
	case "reorder":
		r.Kind = Reorder
	case "blackhole":
		r.Kind = Blackhole
	case "partition":
		r.Kind = Partition
	case "crash":
		r.Kind = Crash
	default:
		return r, fmt.Errorf("faults: unknown rule kind %q", kind)
	}
	if r.Kind != Partition && r.Kind != Crash {
		// Partition sides and crash sets must be explicit; link faults
		// default to afflicting every link.
		r.Src, r.Dst = Everyone(), Everyone()
	}
	for _, kv := range strings.Split(body, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return r, fmt.Errorf("faults: rule %s: bad key=val %q", kind, kv)
		}
		var err error
		switch key {
		case "at":
			r.At, err = time.ParseDuration(val)
		case "for":
			r.For, err = time.ParseDuration(val)
		case "prob":
			r.Prob, err = strconv.ParseFloat(val, 64)
		case "extra":
			r.ExtraMs, err = strconv.ParseFloat(val, 64)
		case "src", "a":
			r.Src, err = parseSet(val)
		case "dst", "b":
			r.Dst, err = parseSet(val)
		case "nodes":
			r.Nodes, err = parseSet(val)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return r, fmt.Errorf("faults: rule %s: %s=%q: %w", kind, key, val, err)
		}
	}
	return r, nil
}

// parseSet reads the host-set syntax: "*", "lo-hi", "id", or "1.3.5".
func parseSet(spec string) (Set, error) {
	if spec == "*" {
		return Everyone(), nil
	}
	if lo, hi, ok := strings.Cut(spec, "-"); ok {
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || a > b || a < 0 {
			return Set{}, fmt.Errorf("bad range %q", spec)
		}
		return Range(a, b), nil
	}
	if strings.Contains(spec, ".") {
		var ids []int
		for _, part := range strings.Split(spec, ".") {
			v, err := strconv.Atoi(part)
			if err != nil || v < 0 {
				return Set{}, fmt.Errorf("bad id %q in list %q", part, spec)
			}
			ids = append(ids, v)
		}
		return List(ids...), nil
	}
	v, err := strconv.Atoi(spec)
	if err != nil || v < 0 {
		return Set{}, fmt.Errorf("bad id %q", spec)
	}
	return Range(v, v), nil
}
