// Package core is the library's public face: a NearestPeer service that
// deploys the paper's recommended combination of mechanisms over a P2P
// population — multicast search inside the end-network, the UCL and
// IP-prefix DHT hints, and a Meridian overlay as the latency-only fallback
// — plus a clustering-condition detector implementing the Section 2.1
// definition, so an application can tell when latency-only search is going
// to struggle.
//
// The paper's conclusion, made executable: "the three approaches would be
// used in conjunction with existing near-peer finding algorithms (and with
// one another) to obtain maximum accuracy in finding the nearest peer."
package core

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/multicast"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/ucl"

	"nearestpeer/internal/ipprefix"
)

// Method identifies which mechanism produced a result.
type Method string

// The methods a Service composes.
const (
	MethodMulticast Method = "multicast"
	MethodUCL       Method = "ucl"
	MethodPrefix    Method = "ipprefix"
	MethodMeridian  Method = "meridian"
	MethodNone      Method = "none"
)

// Config assembles the composite service.
type Config struct {
	// UseMulticast / UseUCL / UsePrefix / UseMeridian toggle stages.
	UseMulticast bool
	UseUCL       bool
	UsePrefix    bool
	UseMeridian  bool
	// SatisfiedMs stops the cascade early once a peer at or under this
	// RTT is found (same-extended-LAN latencies are sub-millisecond).
	SatisfiedMs float64

	Multicast multicast.Config
	UCL       ucl.Config
	Prefix    ipprefix.Config
	Meridian  meridian.Config
}

// DefaultConfig enables the full cascade.
func DefaultConfig() Config {
	return Config{
		UseMulticast: true,
		UseUCL:       true,
		UsePrefix:    true,
		UseMeridian:  true,
		SatisfiedMs:  1.0,
		Multicast:    multicast.DefaultConfig(),
		UCL:          ucl.DefaultConfig(),
		Prefix:       ipprefix.DefaultConfig(),
		Meridian:     meridian.DefaultConfig(),
	}
}

// Result is the composite outcome.
type Result struct {
	// Peer is the nearest peer found (-1 when every stage failed).
	Peer netmodel.HostID
	// RTTms is the measured RTT to Peer.
	RTTms float64
	// Method is the stage that produced Peer.
	Method Method
	// Probes is the total number of latency measurements across stages.
	Probes int64
	// Messages counts multicast messages and DHT lookups.
	Messages int64
	// StagesRun lists the methods attempted, in order.
	StagesRun []Method
}

// Service is the composite nearest-peer service over a peer population.
type Service struct {
	cfg   Config
	top   *netmodel.Topology
	tools *measure.Tools
	peers []netmodel.HostID

	searcher *multicast.Searcher
	uclSys   *ucl.System
	prefix   *ipprefix.System
	mer      *meridian.Overlay
	merNet   *overlay.Network
}

// NewService deploys the configured mechanisms over the given peers. The
// peers are registered in every enabled subsystem (multicast groups, UCL
// and prefix DHT mappings, the Meridian overlay).
func NewService(top *netmodel.Topology, tools *measure.Tools, peers []netmodel.HostID, cfg Config, seed int64) *Service {
	if len(peers) == 0 {
		panic("core: no peers")
	}
	s := &Service{
		cfg:   cfg,
		top:   top,
		tools: tools,
		peers: append([]netmodel.HostID(nil), peers...),
	}
	src := rng.New(seed)

	if cfg.UseMulticast {
		reg := multicast.NewRegistry(top, s.peers)
		s.searcher = multicast.NewSearcher(top, reg, cfg.Multicast, src.Split("multicast").Seed())
	}
	if cfg.UseUCL || cfg.UsePrefix {
		// The peers themselves host the DHT.
		nodes := make([]string, 0, len(s.peers))
		for _, p := range s.peers {
			nodes = append(nodes, top.Host(p).IP.String())
		}
		anchors := pickAnchors(top, s.peers, 5, src.Split("anchors"))
		if cfg.UseUCL {
			s.uclSys = ucl.New(tools, nodes, anchors, cfg.UCL)
			for _, p := range s.peers {
				s.uclSys.Join(p)
			}
		}
		if cfg.UsePrefix {
			s.prefix = ipprefix.New(tools, nodes, cfg.Prefix)
			for _, p := range s.peers {
				s.prefix.Join(p)
			}
		}
	}
	if cfg.UseMeridian {
		s.merNet = overlay.NewNetwork(&latency.FullTopologyMatrix{Top: top})
		members := make([]int, len(s.peers))
		for i, p := range s.peers {
			members[i] = int(p)
		}
		s.mer = meridian.New(s.merNet, members, cfg.Meridian, src.Split("meridian").Seed())
	}
	return s
}

// pickAnchors selects well-spread hosts to serve as traceroute anchors.
func pickAnchors(top *netmodel.Topology, peers []netmodel.HostID, n int, src *rng.Source) []netmodel.HostID {
	var anchors []netmodel.HostID
	usedCity := make(map[netmodel.CityID]bool)
	perm := src.Perm(top.NumHosts())
	for _, idx := range perm {
		h := netmodel.HostID(idx)
		city := top.PoP(top.HostEN(h).PoP).City
		if usedCity[city] {
			continue
		}
		usedCity[city] = true
		anchors = append(anchors, h)
		if len(anchors) == n {
			break
		}
	}
	if len(anchors) == 0 {
		anchors = append(anchors, peers[0])
	}
	return anchors
}

// FindNearest runs the cascade for a joining peer (not necessarily a
// current member) and returns the best peer found with full cost
// accounting.
func (s *Service) FindNearest(target netmodel.HostID) Result {
	res := Result{Peer: -1, RTTms: math.Inf(1), Method: MethodNone}
	better := func(peer netmodel.HostID, rtt float64, m Method) {
		if peer >= 0 && peer != target && rtt < res.RTTms {
			res.Peer, res.RTTms, res.Method = peer, rtt, m
		}
	}

	if s.searcher != nil {
		res.StagesRun = append(res.StagesRun, MethodMulticast)
		r := s.searcher.Search(target)
		res.Messages += int64(r.Messages)
		better(r.Peer, r.RTTms, MethodMulticast)
		if res.RTTms <= s.cfg.SatisfiedMs {
			return res
		}
	}
	if s.uclSys != nil {
		res.StagesRun = append(res.StagesRun, MethodUCL)
		r := s.uclSys.FindNearest(target)
		res.Probes += int64(r.Probes)
		res.Messages += int64(r.Lookups)
		better(r.Peer, r.RTTms, MethodUCL)
		if res.RTTms <= s.cfg.SatisfiedMs {
			return res
		}
	}
	if s.prefix != nil {
		res.StagesRun = append(res.StagesRun, MethodPrefix)
		r := s.prefix.FindNearest(target)
		res.Probes += int64(r.Probes)
		res.Messages += int64(r.Lookups)
		better(r.Peer, r.RTTms, MethodPrefix)
		if res.RTTms <= s.cfg.SatisfiedMs {
			return res
		}
	}
	if s.mer != nil {
		res.StagesRun = append(res.StagesRun, MethodMeridian)
		r := s.mer.FindNearest(int(target))
		res.Probes += r.Probes
		better(netmodel.HostID(r.Peer), r.LatencyMs, MethodMeridian)
	}
	return res
}

// Peers returns the registered population.
func (s *Service) Peers() []netmodel.HostID { return s.peers }

// TrueNearest returns the ground-truth nearest member to target, which
// only the simulator can know.
func (s *Service) TrueNearest(target netmodel.HostID) (netmodel.HostID, float64) {
	best, bestLat := netmodel.HostID(-1), math.Inf(1)
	for _, p := range s.peers {
		if p == target {
			continue
		}
		if l := s.top.RTTms(target, p); l < bestLat {
			best, bestLat = p, l
		}
	}
	return best, bestLat
}

// ClusterReport is the output of the clustering-condition detector.
type ClusterReport struct {
	// Sampled is the number of peers probed.
	Sampled int
	// MedianMs is the median RTT to the sampled peers.
	MedianMs float64
	// BandFraction is the fraction of sampled peers within a factor-1.5
	// latency band around the median — Section 3.2's indistinguishability
	// criterion.
	BandFraction float64
	// Suspected is true when the population looks like a cluster: many
	// peers, most in the band, at non-LAN latencies.
	Suspected bool
}

// String renders the report.
func (r ClusterReport) String() string {
	return fmt.Sprintf("sampled=%d median=%.2fms band=%.0f%% suspected=%v",
		r.Sampled, r.MedianMs, r.BandFraction*100, r.Suspected)
}

// DetectClusteringCondition probes up to sampleSize random peers from the
// population and checks the Section 2.1 criteria: a large number of peers
// at about the same (non-LAN) latency from the observer. Applications can
// use this to decide whether a latency-only search is worth running.
func (s *Service) DetectClusteringCondition(from netmodel.HostID, sampleSize int, seed int64) ClusterReport {
	src := rng.New(seed)
	var lats []float64
	perm := src.Perm(len(s.peers))
	for _, i := range perm {
		p := s.peers[i]
		if p == from {
			continue
		}
		d, err := s.tools.LatencyTo(from, p)
		if err != nil {
			continue
		}
		lats = append(lats, netmodel.Ms(d))
		if len(lats) >= sampleSize {
			break
		}
	}
	rep := ClusterReport{Sampled: len(lats)}
	if len(lats) == 0 {
		return rep
	}
	sort.Float64s(lats)
	med := lats[len(lats)/2]
	rep.MedianMs = med
	inBand := 0
	for _, l := range lats {
		if l >= med/1.5 && l <= med*1.5 {
			inBand++
		}
	}
	rep.BandFraction = float64(inBand) / float64(len(lats))
	rep.Suspected = rep.Sampled >= 10 && rep.BandFraction >= 0.5 && med > 2
	return rep
}
