package core

import (
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func fixture(t *testing.T, cfg Config) (*netmodel.Topology, *Service, []netmodel.HostID) {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 12)
	tools := measure.NewTools(top, measure.DefaultConfig(), 9)
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	if len(peers) > 600 {
		peers = peers[:600]
	}
	svc := NewService(top, tools, peers, cfg, 5)
	return top, svc, peers
}

func TestCascadeFindsSameENPeers(t *testing.T) {
	top, svc, peers := fixture(t, DefaultConfig())
	attempts, hits := 0, 0
	for _, p := range peers {
		partner := false
		for _, q := range peers {
			if q != p && top.SameEN(p, q) {
				partner = true
				break
			}
		}
		if !partner {
			continue
		}
		attempts++
		res := svc.FindNearest(p)
		if res.Peer >= 0 && top.SameEN(p, res.Peer) {
			hits++
		}
		if attempts >= 25 {
			break
		}
	}
	if attempts < 5 {
		t.Skip("insufficient eligible peers")
	}
	if frac := float64(hits) / float64(attempts); frac < 0.7 {
		t.Fatalf("composite hit rate %.2f (%d/%d)", frac, hits, attempts)
	}
}

func TestCascadeStopsWhenSatisfied(t *testing.T) {
	top, svc, peers := fixture(t, DefaultConfig())
	for _, p := range peers[:40] {
		res := svc.FindNearest(p)
		if res.Peer < 0 {
			continue
		}
		if res.RTTms <= svc.cfg.SatisfiedMs && len(res.StagesRun) == 4 {
			// Satisfied results must have short-circuited unless the
			// last stage produced them.
			if res.Method == MethodMeridian {
				continue
			}
			t.Fatalf("satisfied result (%.3f ms via %s) ran all stages", res.RTTms, res.Method)
		}
		_ = top
	}
}

func TestMeridianOnlyFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseMulticast = false
	cfg.UseUCL = false
	cfg.UsePrefix = false
	_, svc, peers := fixture(t, cfg)
	res := svc.FindNearest(peers[0])
	if res.Method != MethodMeridian && res.Peer >= 0 {
		t.Fatalf("method = %s", res.Method)
	}
	if len(res.StagesRun) != 1 || res.StagesRun[0] != MethodMeridian {
		t.Fatalf("stages = %v", res.StagesRun)
	}
}

func TestResultAgainstOracle(t *testing.T) {
	top, svc, peers := fixture(t, DefaultConfig())
	worse := 0
	n := 0
	for _, p := range peers[:30] {
		res := svc.FindNearest(p)
		if res.Peer < 0 {
			continue
		}
		n++
		_, oracleLat := svc.TrueNearest(p)
		if res.RTTms > 10*oracleLat+5 {
			worse++
		}
	}
	if n == 0 {
		t.Fatal("no results")
	}
	if worse > n/2 {
		t.Fatalf("%d/%d results far from oracle", worse, n)
	}
	_ = top
}

func TestDetectClusteringCondition(t *testing.T) {
	top, svc, peers := fixture(t, DefaultConfig())
	// A home peer behind a busy PoP should see many peers at similar
	// latencies; the report must be well-formed either way.
	rep := svc.DetectClusteringCondition(peers[0], 40, 7)
	if rep.Sampled == 0 {
		t.Skip("no responsive sample")
	}
	if rep.BandFraction < 0 || rep.BandFraction > 1 {
		t.Fatalf("band fraction %v", rep.BandFraction)
	}
	if rep.MedianMs <= 0 {
		t.Fatalf("median %v", rep.MedianMs)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	_ = top
}

func TestEmptyPeersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewService(nil, nil, nil, DefaultConfig(), 1)
}
