package overlay

import (
	"testing"
	"testing/quick"

	"nearestpeer/internal/latency"
)

func TestSplitPartitions(t *testing.T) {
	members, targets := Split(100, 10, 1)
	if len(members) != 90 || len(targets) != 10 {
		t.Fatalf("sizes %d/%d", len(members), len(targets))
	}
	seen := make(map[int]bool)
	for _, x := range append(append([]int(nil), members...), targets...) {
		if x < 0 || x >= 100 || seen[x] {
			t.Fatalf("bad element %d", x)
		}
		seen[x] = true
	}
	if len(seen) != 100 {
		t.Fatal("split does not cover population")
	}
}

func TestSplitDeterministic(t *testing.T) {
	m1, t1 := Split(50, 5, 9)
	m2, t2 := Split(50, 5, 9)
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("members differ")
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("targets differ")
		}
	}
}

func TestSplitPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Split(5, 5, 1)
}

func TestSplitProperty(t *testing.T) {
	err := quick.Check(func(nRaw, tRaw uint8, seed int64) bool {
		n := int(nRaw%200) + 2
		nT := int(tRaw) % (n - 1)
		if nT == 0 {
			nT = 1
		}
		members, targets := Split(n, nT, seed)
		return len(members)+len(targets) == n
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeAccounting(t *testing.T) {
	m := latency.NewDense(4)
	m.Set(0, 1, 5)
	net := NewNetwork(m)
	if got := net.Probe(0, 1); got != 5 {
		t.Fatalf("probe = %v", got)
	}
	net.MaintProbe(0, 1)
	net.MaintProbe(1, 2)
	if net.QueryProbes() != 1 || net.MaintProbes() != 2 {
		t.Fatalf("counts %d/%d", net.QueryProbes(), net.MaintProbes())
	}
	net.ResetQueryProbes()
	if net.QueryProbes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestNoiseBoundedAndDeterministic(t *testing.T) {
	m := latency.NewDense(2)
	m.Set(0, 1, 100)
	a := NewNetwork(m)
	a.SetNoise(0.05, 0.5, 3)
	b := NewNetwork(m)
	b.SetNoise(0.05, 0.5, 3)
	for i := 0; i < 100; i++ {
		va, vb := a.Probe(0, 1), b.Probe(0, 1)
		if va != vb {
			t.Fatal("noise not deterministic per seed")
		}
		if va < 50 || va > 150 {
			t.Fatalf("noise implausibly large: %v", va)
		}
	}
}

func TestTrueNearest(t *testing.T) {
	m := latency.NewDense(5)
	m.Set(0, 1, 10)
	m.Set(0, 2, 3)
	m.Set(0, 3, 7)
	res := TrueNearest(m, 0, []int{1, 2, 3})
	if res.Peer != 2 || res.LatencyMs != 3 {
		t.Fatalf("oracle = %+v", res)
	}
	// Target excluded from its own candidates.
	res = TrueNearest(m, 0, []int{0, 1})
	if res.Peer != 1 {
		t.Fatalf("oracle includes target: %+v", res)
	}
}
