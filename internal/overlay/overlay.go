// Package overlay provides the plumbing every nearest-peer algorithm in
// this repository shares: a probe-counting view of a latency matrix, the
// member/target split of the paper's Section 4 methodology, and the common
// result type. Probe accounting matters because the paper's core claim is a
// cost claim — under the clustering condition a search degenerates into
// brute-force probing of the cluster — so every algorithm reports exactly
// how many latency measurements it issued.
package overlay

import (
	"fmt"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
)

// Network is a probe-counting view over a latency matrix. Algorithms must
// measure latencies only through Probe (query-time measurements, the cost
// the paper bounds) or MaintProbe (overlay construction/maintenance
// measurements, accounted separately).
//
// A Network can optionally add measurement noise (SetNoise). The Section 4
// reproduction runs noiseless, like the paper's Meridian simulations; the
// algorithm-comparison ablations run with realistic jitter, because schemes
// that rank peers by sub-millisecond latency differences (beacon
// triangulation in particular) would otherwise exploit the simulator's
// infinite precision — precision the paper's clustering condition expressly
// denies them ("latencies close enough that the algorithm cannot reliably
// distinguish the peers").
type Network struct {
	m           latency.Matrix
	queryProbes int64
	maintProbes int64
	jitterFrac  float64
	floorMs     float64
	noiseSrc    *rng.Source
}

// NewNetwork wraps a matrix.
func NewNetwork(m latency.Matrix) *Network { return &Network{m: m} }

// SetNoise enables multiplicative jitter (standard deviation jitterFrac)
// plus a uniform additive floor on every probe.
func (n *Network) SetNoise(jitterFrac, floorMs float64, seed int64) {
	n.jitterFrac = jitterFrac
	n.floorMs = floorMs
	n.noiseSrc = rng.New(seed)
}

// N returns the node population size.
func (n *Network) N() int { return n.m.N() }

func (n *Network) observe(ms float64) float64 {
	if n.noiseSrc == nil {
		return ms
	}
	ms *= 1 + n.jitterFrac*n.noiseSrc.NormFloat64()
	ms += n.noiseSrc.Float64() * n.floorMs
	if ms < 0.01 {
		ms = 0.01
	}
	return ms
}

// Probe measures the latency between two nodes as part of query execution.
func (n *Network) Probe(i, j int) float64 {
	n.queryProbes++
	return n.observe(n.m.LatencyMs(i, j))
}

// MaintProbe measures a latency during overlay construction/maintenance.
func (n *Network) MaintProbe(i, j int) float64 {
	n.maintProbes++
	return n.observe(n.m.LatencyMs(i, j))
}

// QueryProbes returns the number of query-time probes issued so far.
func (n *Network) QueryProbes() int64 { return n.queryProbes }

// MaintProbes returns the number of maintenance probes issued so far.
func (n *Network) MaintProbes() int64 { return n.maintProbes }

// ResetQueryProbes zeroes the query-probe counter (per-experiment hygiene).
func (n *Network) ResetQueryProbes() { n.queryProbes = 0 }

// Result is the outcome of one nearest-peer query.
type Result struct {
	// Peer is the member the algorithm returned as closest to the target
	// (-1 when the query failed outright).
	Peer int
	// LatencyMs is the true latency between target and Peer.
	LatencyMs float64
	// Probes is the number of query-time latency measurements used.
	Probes int64
	// Hops is the number of overlay nodes that handled the query.
	Hops int
}

// Finder is a nearest-peer algorithm bound to an overlay of members.
type Finder interface {
	// FindNearest locates the member closest to target (a node index in
	// the underlying matrix; the target itself need not be a member).
	FindNearest(target int) Result
}

// Split partitions the population [0, n) into overlay members and held-out
// targets, mirroring the paper's setup: ~2,400 of ~2,500 peers join the
// overlay, the remaining 100 serve as query targets. The permutation is
// deterministic in seed.
func Split(n, nTargets int, seed int64) (members, targets []int) {
	if nTargets >= n {
		panic(fmt.Sprintf("overlay: nTargets %d >= population %d", nTargets, n))
	}
	perm := permute(n, seed)
	targets = perm[:nTargets]
	members = perm[nTargets:]
	return members, targets
}

// permute is a Fisher-Yates shuffle with splitmix64 steps, independent of
// math/rand so the split stays stable even if stdlib internals change.
func permute(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	x := uint64(seed) ^ 0x9E3779B97F4A7C15
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TrueNearest returns the member with the smallest true latency to target —
// the oracle every algorithm is scored against.
func TrueNearest(m latency.Matrix, target int, members []int) Result {
	best, bestLat := -1, 0.0
	for _, c := range members {
		if c == target {
			continue
		}
		l := m.LatencyMs(target, c)
		if best < 0 || l < bestLat {
			best, bestLat = c, l
		}
	}
	return Result{Peer: best, LatencyMs: bestLat}
}
