package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// trialWork is a deliberately stateful trial: it burns randomness and runs
// a small event cascade on the trial kernel, so any cross-trial sharing or
// order dependence would show up as different numbers.
func trialWork(t *Trial) string {
	total := 0.0
	for i := 0; i < 100; i++ {
		total += t.RNG.Float64()
	}
	events := 0
	var tick func()
	tick = func() {
		events++
		if events < 50 {
			t.Kernel.After(time.Duration(1+t.RNG.Intn(5))*time.Millisecond, tick)
		}
	}
	t.Kernel.After(0, tick)
	end := t.Kernel.Run()
	return fmt.Sprintf("trial=%d seed=%d sum=%.6f events=%d end=%v", t.Index, t.Seed, total, events, end)
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	serial := Run(Config{Workers: 1, Seed: 42}, n, trialWork)
	parallel := Run(Config{Workers: 8, Seed: 42}, n, trialWork)
	wide := Run(Config{Workers: 32, Seed: 42}, n, trialWork)
	for i := 0; i < n; i++ {
		if serial[i] != parallel[i] || serial[i] != wide[i] {
			t.Fatalf("trial %d diverged across worker counts:\n  w=1:  %s\n  w=8:  %s\n  w=32: %s",
				i, serial[i], parallel[i], wide[i])
		}
	}
}

func TestRunSeedChangesResults(t *testing.T) {
	a := Run(Config{Workers: 4, Seed: 1}, 8, trialWork)
	b := Run(Config{Workers: 4, Seed: 2}, 8, trialWork)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical trials")
	}
}

func TestTrialStreamsIndependent(t *testing.T) {
	draws := Run(Config{Workers: 4, Seed: 7}, 16, func(tr *Trial) float64 {
		return tr.RNG.Float64()
	})
	seen := map[float64]int{}
	for i, d := range draws {
		if j, dup := seen[d]; dup {
			t.Fatalf("trials %d and %d drew the same first value %v", j, i, d)
		}
		seen[d] = i
	}
}

func TestLabelSplitsStreams(t *testing.T) {
	a := Run(Config{Workers: 1, Seed: 7, Label: "alpha"}, 4, func(tr *Trial) float64 { return tr.RNG.Float64() })
	b := Run(Config{Workers: 1, Seed: 7, Label: "beta"}, 4, func(tr *Trial) float64 { return tr.RNG.Float64() })
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestMapPreservesItemOrder(t *testing.T) {
	items := []int{10, 20, 30, 40, 50, 60, 70, 80}
	out := Map(Config{Workers: 4, Seed: 1}, items, func(tr *Trial, item int) int {
		return item + tr.Index // item i must pair with trial index i
	})
	for i, v := range out {
		if v != items[i]+i {
			t.Fatalf("out[%d] = %d, want %d", i, v, items[i]+i)
		}
	}
}

func TestRunZeroTrials(t *testing.T) {
	if out := Run(Config{Seed: 1}, 0, trialWork); out != nil {
		t.Fatalf("0 trials returned %v", out)
	}
	if out := Map(Config{Seed: 1}, []int(nil), func(*Trial, int) int { return 0 }); out != nil {
		t.Fatalf("empty Map returned %v", out)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		tp, ok := r.(*TrialPanic)
		if !ok {
			t.Fatalf("panic value is %T, want *TrialPanic (original value must stay inspectable)", r)
		}
		// The lowest-index failing trial is reported, as a serial run
		// would have hit it first; the original value and the trial's own
		// stack both survive.
		if tp.Index != 3 || tp.Value != "boom 3" {
			t.Fatalf("unexpected panic payload: %+v", tp)
		}
		if !strings.Contains(string(tp.Stack), "engine_test") {
			t.Fatalf("trial stack lost:\n%s", tp.Stack)
		}
		if msg := tp.Error(); !strings.Contains(msg, "trial 3 panicked") || !strings.Contains(msg, "boom") {
			t.Fatalf("unexpected panic message: %s", msg)
		}
	}()
	Run(Config{Workers: 4, Seed: 1}, 16, func(tr *Trial) int {
		if tr.Index == 3 || tr.Index == 11 {
			panic(fmt.Sprintf("boom %d", tr.Index))
		}
		return tr.Index
	})
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count not honoured")
	}
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers(0) != 3 {
		t.Fatal("SetWorkers default not used")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit count must beat the default")
	}
	SetWorkers(0)
	if Workers(0) < 1 {
		t.Fatal("GOMAXPROCS fallback returned < 1")
	}
}

func TestSetWorkersAffectsRun(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	a := Run(Config{Seed: 5}, 32, trialWork) // Workers 0 → default 8
	SetWorkers(1)
	b := Run(Config{Seed: 5}, 32, trialWork)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between default-8 and default-1 pools", i)
		}
	}
}
