// Package engine fans independent simulation trials out across a worker
// pool and merges their results deterministically.
//
// Every experiment in this repository is a batch of independent trials — a
// (matrix, overlay, query-stream) simulation per figure point, a wire
// condition per study row, an (algorithm, population) cell of the scale
// study. Trials share nothing mutable: each gets its own random stream
// (split from the run seed by trial index), its own discrete-event kernel,
// and whatever matrix or topology handle the caller passes in, which must be
// read-only (the netmodel Topology and the latency matrices are).
//
// Determinism is the contract: results land in a slice indexed by trial,
// a trial's randomness derives only from data the trial was handed —
// either the Trial's own (seed, index)-derived stream, or per-trial seeds
// the study computes from its experiment parameters (the ported figures do
// the latter to stay byte-compatible with their serial versions; both
// styles are schedule-independent) — and nothing a trial computes depends
// on which worker ran it or in what order trials finished. The same seed
// therefore produces byte-identical figures at -workers=1 and -workers=64;
// the worker count buys wall-clock time, never different numbers.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Trial is the per-trial context handed to a trial function: everything a
// trial needs that must not be shared with its siblings.
type Trial struct {
	// Index is the trial's position in the batch, [0, n).
	Index int
	// Seed is the per-trial seed, derived from (run seed, Index). New
	// trial code should seed its sub-systems (a topology build, a
	// protocol instance) from it; studies ported from serial loops may
	// instead keep their historical per-trial seed arithmetic — equally
	// deterministic, and byte-compatible with their pre-engine output.
	Seed int64
	// RNG is an independent random stream for the trial, split from the
	// run seed by Index. Two trials' streams never overlap.
	RNG *rng.Source
	// Kernel is a fresh discrete-event kernel owned by this trial alone.
	// The sim kernel is not safe for concurrent use, so a trial must never
	// touch another trial's kernel — this one exists so it never has to.
	Kernel *sim.Sim
}

// Config parameterises one Run: how wide to fan out and which seed the
// per-trial streams derive from.
type Config struct {
	// Workers is the worker-pool width. 0 means the package default (see
	// SetWorkers), which itself defaults to GOMAXPROCS. The pool is always
	// clamped to the trial count; 1 runs the batch inline on the calling
	// goroutine.
	Workers int
	// Seed is the run seed every per-trial stream derives from.
	Seed int64
	// Label namespaces the per-trial rng split (default "trial"), so two
	// engine runs inside one study with the same seed still draw
	// independent streams.
	Label string
}

// defaultWorkers is the process-wide pool width used when Config.Workers is
// zero; 0 here means GOMAXPROCS. cmd/npsim and cmd/figures set it from
// their -workers flag.
var defaultWorkers atomic.Int64

// SetWorkers sets the process-wide default pool width used when a Config
// leaves Workers zero. n <= 0 restores the GOMAXPROCS default. It returns
// the previous setting (0 when the default was GOMAXPROCS).
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// Workers resolves a requested pool width: explicit > 0 wins, then the
// SetWorkers default, then GOMAXPROCS.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// defaultShards is the process-wide intra-trial shard count for studies
// whose cells run on a sharded kernel; 1 (the zero default) keeps cells
// single-shard. cmd/npsim and cmd/figures set it from their -shards flag.
var defaultShards atomic.Int64

// SetShards sets the process-wide shard count. n <= 1 restores the
// single-shard default. It returns the previous setting.
func SetShards(n int) int {
	if n < 1 {
		n = 1
	}
	prev := int(defaultShards.Swap(int64(n)))
	if prev < 1 {
		prev = 1
	}
	return prev
}

// Shards returns the process-wide shard count (at least 1). The figure
// bytes are shard-count-invariant by the sharded kernel's determinism
// contract; only wall-clock changes.
func Shards() int {
	if d := int(defaultShards.Load()); d > 1 {
		return d
	}
	return 1
}

// TrialPanic is what Run re-raises on the calling goroutine when a trial
// panics: the original panic value plus the failing trial's stack, so
// neither the value's type (callers may type-switch in recover) nor the
// file/line inside the trial is lost to the worker goroutine.
type TrialPanic struct {
	// Index is the failing trial's index.
	Index int
	// Value is the original panic value, unmodified.
	Value any
	// Stack is the failing goroutine's stack captured at recover time.
	Stack []byte
}

// Error formats the panic with the trial's own stack trace.
func (p *TrialPanic) Error() string {
	return fmt.Sprintf("engine: trial %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Run executes n independent trials of fn across the configured worker pool
// and returns their results in trial order. fn must be a pure function of
// its Trial (plus read-only shared state closed over by the caller): it runs
// concurrently with its siblings and must not touch their state. A panic in
// any trial is re-raised on the calling goroutine after the pool drains, so
// a failing trial cannot be silently swallowed by a worker goroutine.
func Run[T any](cfg Config, n int, fn func(*Trial) T) []T {
	if n <= 0 {
		return nil
	}
	label := cfg.Label
	if label == "" {
		label = "trial"
	}
	src := rng.New(cfg.Seed)
	newTrial := func(i int) *Trial {
		s := src.SplitN(label, i)
		return &Trial{Index: i, Seed: s.Seed(), RNG: s, Kernel: sim.New()}
	}
	results := make([]T, n)
	workers := Workers(cfg.Workers)
	if s := Shards(); s > 1 {
		// Sharded cells run s kernel goroutines inside one trial; splitting
		// the pool keeps total concurrency near the workers budget instead
		// of multiplying it.
		workers = workers / s
		if workers < 1 {
			workers = 1
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(newTrial(i))
		}
		return results
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked *TrialPanic
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							stack := debug.Stack()
							panicMu.Lock()
							// Keep the lowest-index panic: it is the one a
							// serial run would have hit first. Trials are
							// claimed in index order, so any lower-index
							// panic is already in flight and will be
							// captured before wg.Wait returns.
							if panicked == nil || i < panicked.Index {
								panicked = &TrialPanic{Index: i, Value: r, Stack: stack}
							}
							panicMu.Unlock()
							// Cancel unclaimed trials: finishing a
							// multi-minute batch after a trial has already
							// failed only delays the re-panic.
							next.Store(int64(n))
						}
					}()
					results[i] = fn(newTrial(i))
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return results
}

// Map runs fn once per item across the worker pool and returns the outputs
// in item order: the fan-out shape every ported study uses (conditions in,
// rows out). The determinism contract of Run applies unchanged.
func Map[In, Out any](cfg Config, items []In, fn func(*Trial, In) Out) []Out {
	return Run(cfg, len(items), func(t *Trial) Out {
		return fn(t, items[t.Index])
	})
}
