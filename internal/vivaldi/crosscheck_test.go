package vivaldi

// Seed-matrix cross-check: the static embedding, driven once by RTT
// samples collected over the message runtime and once by the same samples
// read straight off the latency matrix, must converge to the same median
// relative error. The wire prices every ping through the netmodel hot path
// (TreeOneWayMs / the pair RTT cache) and the floor/ceil one-way split, so
// any silent pricing drift between those paths and Matrix.LatencyMs shows
// up here as diverging samples long before it would surface in a figure.

import (
	"math"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// crossCheckSchedule is a deterministic gossip schedule: rounds × members ×
// picks of (observer, observed) pairs, the shape Build runs.
func crossCheckSchedule(nHosts, rounds, picks int, seed int64) (a, b []int) {
	src := rng.New(seed)
	for r := 0; r < rounds; r++ {
		for m := 0; m < nHosts; m++ {
			for k := 0; k < picks; k++ {
				n := src.Intn(nHosts)
				if n == m {
					continue
				}
				a = append(a, m)
				b = append(b, n)
			}
		}
	}
	return a, b
}

// embedWithSamples replays the static update rule over the schedule with
// the given RTT samples and returns the median |pred-true|/true against the
// matrix.
func embedWithSamples(m latency.Matrix, obsA, obsB []int, rtts []float64, dims int, seed int64) float64 {
	cfg := DefaultConfig()
	cfg.Dimensions = dims
	src := rng.New(seed)
	coords := make([]*Coord, m.N())
	for i := range coords {
		coords[i] = NewCoord(dims)
	}
	for i := range obsA {
		coords[obsA[i]].Update(coords[obsB[i]], rtts[i], cfg, src)
	}
	var errs []float64
	esrc := rng.New(seed + 1)
	for k := 0; k < 400; k++ {
		a, b := esrc.Intn(m.N()), esrc.Intn(m.N())
		actual := m.LatencyMs(a, b)
		if a == b || actual <= 0 {
			continue
		}
		pred := coords[a].DistanceMs(coords[b])
		errs = append(errs, math.Abs(pred-actual)/actual)
	}
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j] < errs[j-1]; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
	return errs[len(errs)/2]
}

// TestWireSamplesMatchMatrixEmbedding collects the schedule's RTTs twice —
// as runtime pings over a TopologyMatrix (the wire studies' cached pricing
// path) and as direct matrix reads — and checks (a) each wire sample
// matches its matrix value to the transport's nanosecond rounding, and (b)
// the two sample sets drive the static embedding to the same median
// relative error within a tight tolerance.
func TestWireSamplesMatchMatrixEmbedding(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 5)
	const nHosts = 40
	hosts := make([]netmodel.HostID, nHosts)
	for i := range hosts {
		hosts[i] = netmodel.HostID(i * 7) // spread across the topology
	}
	m := (&latency.TopologyMatrix{Top: top, Hosts: hosts}).EnableRTTCache(0)

	obsA, obsB := crossCheckSchedule(nHosts, 40, 3, 11)

	// Matrix-fed samples: the ground truth the static simulator sees.
	matrixRTTs := make([]float64, len(obsA))
	for i := range obsA {
		matrixRTTs[i] = m.LatencyMs(obsA[i], obsB[i])
	}

	// Wire-collected samples: the same pairs pinged over the runtime.
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.Config{RPCTimeout: time.Second}, 1)
	for i := 0; i < nHosts; i++ {
		rt.AddNode(p2p.NodeID(i))
	}
	wireRTTs := make([]float64, len(obsA))
	for i := range obsA {
		i := i
		rt.Node(p2p.NodeID(obsA[i])).Ping(p2p.NodeID(obsB[i]), 0, true, func(ms float64, ok bool) {
			if !ok {
				t.Errorf("lossless ping %d timed out", i)
			}
			wireRTTs[i] = ms
		})
	}
	kernel.Run()

	// (a) Per-sample agreement: the transport rounds each RTT to the
	// nearest nanosecond (durOf), so wire and matrix may differ by at most
	// half a nanosecond — anything larger is pricing drift.
	const nsMs = 1e-6
	for i := range wireRTTs {
		if d := math.Abs(wireRTTs[i] - matrixRTTs[i]); d > nsMs {
			t.Fatalf("sample %d (%d→%d): wire %.9f ms vs matrix %.9f ms (Δ %.3g ms > 1 ns)",
				i, obsA[i], obsB[i], wireRTTs[i], matrixRTTs[i], d)
		}
	}

	// (b) End-to-end: both sample sets converge the embedding to the same
	// quality. The tolerance absorbs the nanosecond rounding propagating
	// through the spring iteration; real drift (a mispriced path, a lost
	// leg) moves the median by orders of magnitude more.
	wireMed := embedWithSamples(m, obsA, obsB, wireRTTs, 5, 21)
	matMed := embedWithSamples(m, obsA, obsB, matrixRTTs, 5, 21)
	if d := math.Abs(wireMed - matMed); d > 0.01 {
		t.Fatalf("median rel err diverged: wire-fed %.4f vs matrix-fed %.4f (Δ %.4f > 0.01)", wireMed, matMed, d)
	}
	if wireMed > 0.8 {
		t.Fatalf("embedding did not converge: median rel err %.3f", wireMed)
	}
}
