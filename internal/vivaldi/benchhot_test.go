package vivaldi_test

import (
	"testing"

	"nearestpeer/internal/benchhot"
)

// Delegates to internal/benchhot so `go test -bench` and cmd/benchscale
// (which writes CI's BENCH_scale.json) measure the exact same workload —
// the numbers stay comparable by construction.

func BenchmarkVivaldiGossipRound(b *testing.B) { benchhot.VivaldiGossipRound(b) }
