// Package vivaldi implements Vivaldi network coordinates (Dabek, Cox,
// Kaashoek, Morris — SIGCOMM 2004) with the height-vector model: each node
// holds a Euclidean coordinate plus a height capturing its access-link
// delay. Coordinates adapt by a spring-relaxation update with adaptive
// timestep, exactly as in the paper (and as deployed in serf/consul).
//
// In this repository Vivaldi serves two roles: the representative
// coordinate system of the paper's Section 2.2 low-dimensionality
// discussion, and the substrate for the PIC-style greedy-walk finder. Under
// the clustering condition the embedding collapses all cluster peers onto
// nearly one point — the paper's argument made executable.
package vivaldi

import (
	"fmt"
	"math"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// MaxDimensions bounds Config.Dimensions. The spring update keeps its
// direction vector in a fixed-size stack buffer of this length so that one
// update is allocation-free — the wire gossip protocol (wire.go) applies it
// on every coordinate sample and must not allocate in steady state.
const MaxDimensions = 16

// Config holds the Vivaldi tuning constants from the paper.
type Config struct {
	// Dimensions of the Euclidean part of the coordinate.
	Dimensions int
	// CE is the adaptive-timestep constant c_e (paper: 0.25).
	CE float64
	// CC is the error-damping constant c_c (paper: 0.25).
	CC float64
	// Rounds is how many all-node update rounds the system runs.
	Rounds int
	// NeighborsPerRound is how many random neighbours each node samples
	// per round.
	NeighborsPerRound int
	// HeightModel enables the height-vector variant.
	HeightModel bool
}

// DefaultConfig matches the Vivaldi paper's recommended constants.
func DefaultConfig() Config {
	return Config{
		Dimensions:        5,
		CE:                0.25,
		CC:                0.25,
		Rounds:            60,
		NeighborsPerRound: 4,
		HeightModel:       true,
	}
}

// Coord is a Vivaldi coordinate.
type Coord struct {
	Vec    []float64
	Height float64
	// Err is the node's current error estimate (starts at 1).
	Err float64
}

// NewCoord returns the origin coordinate with maximal error.
func NewCoord(dims int) *Coord {
	return &Coord{Vec: make([]float64, dims), Err: 1}
}

// Clone deep-copies the coordinate.
func (c *Coord) Clone() *Coord {
	out := &Coord{Vec: append([]float64(nil), c.Vec...), Height: c.Height, Err: c.Err}
	return out
}

// DistanceMs predicts the RTT between two coordinates.
func (c *Coord) DistanceMs(o *Coord) float64 {
	var ss float64
	for i := range c.Vec {
		d := c.Vec[i] - o.Vec[i]
		ss += d * d
	}
	return math.Sqrt(ss) + c.Height + o.Height
}

// Update applies one Vivaldi spring update: node c observed RTT rtt (in
// milliseconds) to a node currently at coordinate other. It is the single
// update rule shared by the static System (Build, PlaceTarget) and the
// wire-level gossip protocol (Wire), so the two deployments cannot drift
// apart. The update is allocation-free: the direction scratch lives on the
// stack (see MaxDimensions), which is what lets the gossip hot path apply
// it per sample without allocating.
func (c *Coord) Update(other *Coord, rtt float64, cfg Config, src *rng.Source) {
	if rtt <= 0 {
		rtt = 0.01
	}
	dist := c.DistanceMs(other)
	// Sample weight balances local and remote error.
	w := c.Err / (c.Err + other.Err)
	es := math.Abs(dist-rtt) / rtt
	c.Err = es*cfg.CE*w + c.Err*(1-cfg.CE*w)
	if c.Err > 1 {
		c.Err = 1
	}
	if c.Err < 0.01 {
		c.Err = 0.01
	}
	delta := cfg.CC * w * (rtt - dist)

	// Unit vector from other to c; random direction when coincident.
	var dirBuf [MaxDimensions]float64
	dir := dirBuf[:len(c.Vec)]
	var norm float64
	for i := range dir {
		dir[i] = c.Vec[i] - other.Vec[i]
		norm += dir[i] * dir[i]
	}
	norm = math.Sqrt(norm)
	if norm < 1e-9 {
		for i := range dir {
			dir[i] = src.NormFloat64()
		}
		norm = 0
		for _, d := range dir {
			norm += d * d
		}
		norm = math.Sqrt(norm)
	}
	for i := range c.Vec {
		c.Vec[i] += delta * dir[i] / norm
	}
	if cfg.HeightModel {
		c.Height += delta * 0.1
		if c.Height < 0 {
			c.Height = 0
		}
	}
}

// System is a converged (or converging) set of coordinates over members.
type System struct {
	cfg     Config
	net     *overlay.Network
	members []int
	coords  map[int]*Coord
	src     *rng.Source
}

// Build runs the Vivaldi protocol: Rounds rounds in which every member
// samples NeighborsPerRound random peers, measures RTT (maintenance
// probes), and applies the spring update.
func Build(net *overlay.Network, members []int, cfg Config, seed int64) *System {
	if cfg.Dimensions <= 0 || cfg.Dimensions > MaxDimensions || cfg.Rounds <= 0 {
		panic(fmt.Sprintf("vivaldi: invalid config %+v", cfg))
	}
	s := &System{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		coords:  make(map[int]*Coord, len(members)),
		src:     rng.New(seed),
	}
	for _, m := range members {
		s.coords[m] = NewCoord(cfg.Dimensions)
	}
	for round := 0; round < cfg.Rounds; round++ {
		for _, m := range members {
			for k := 0; k < cfg.NeighborsPerRound; k++ {
				n := members[s.src.Intn(len(members))]
				if n == m {
					continue
				}
				rtt := s.net.MaintProbe(m, n)
				s.coords[m].Update(s.coords[n], rtt, s.cfg, s.src)
			}
		}
	}
	return s
}

// CoordOf returns a member's coordinate.
func (s *System) CoordOf(id int) *Coord { return s.coords[id] }

// Members returns the member set.
func (s *System) Members() []int { return s.members }

// Net returns the underlying probe-counting network.
func (s *System) Net() *overlay.Network { return s.net }

// PlaceTarget computes a coordinate for a non-member target by probing
// nProbes random members (query probes) and running update iterations
// against them — how a freshly joining peer obtains its coordinate.
func (s *System) PlaceTarget(target, nProbes int) (*Coord, int64) {
	sample := s.SamplePlacement(target, nProbes)
	obs := make([]PlacementObservation, 0, len(sample))
	var probes int64
	for _, m := range sample {
		obs = append(obs, PlacementObservation{Coord: s.coords[m], RTTms: s.net.Probe(target, m)})
		probes++
	}
	return s.PlaceObservations(obs), probes
}

// PlacementObservation pairs a member's coordinate with the RTT a placing
// node measured to it — one input of the placement iteration.
type PlacementObservation struct {
	Coord *Coord
	RTTms float64
}

// SamplePlacement draws the member sample PlaceTarget would probe,
// consuming the system's stream exactly as PlaceTarget's probe loop does
// (self-draws are skipped and cost nothing). Wire deployments use it to
// issue the same placement probes as real pings.
func (s *System) SamplePlacement(target, nProbes int) []int {
	out := make([]int, 0, nProbes)
	for i := 0; i < nProbes; i++ {
		m := s.members[s.src.Intn(len(s.members))]
		if m == target {
			continue
		}
		out = append(out, m)
	}
	return out
}

// PlaceObservations runs the placement iteration over a fixed observation
// set — PlaceTarget's second half, consuming the stream identically.
func (s *System) PlaceObservations(obs []PlacementObservation) *Coord {
	c := NewCoord(s.cfg.Dimensions)
	for iter := 0; iter < 30; iter++ {
		for _, o := range obs {
			c.Update(o.Coord, o.RTTms, s.cfg, s.src)
		}
	}
	return c
}

// MedianAbsRelErr reports the embedding quality over a random sample of
// member pairs: median |predicted - actual| / actual. It issues maintenance
// probes for the actual values.
func (s *System) MedianAbsRelErr(samples int) float64 {
	errs := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		a := s.members[s.src.Intn(len(s.members))]
		b := s.members[s.src.Intn(len(s.members))]
		if a == b {
			continue
		}
		actual := s.net.MaintProbe(a, b)
		if actual <= 0 {
			continue
		}
		pred := s.coords[a].DistanceMs(s.coords[b])
		errs = append(errs, math.Abs(pred-actual)/actual)
	}
	if len(errs) == 0 {
		return math.NaN()
	}
	// Median by partial insertion sort (small samples).
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j] < errs[j-1]; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
	return errs[len(errs)/2]
}

// Finder is the coordinate-only nearest-peer baseline: place the target,
// then return the member whose coordinate is closest to the target's. The
// only network cost is placing the target; member selection is free — and
// under the clustering condition, hopeless, because all cluster members
// collapse to the same coordinates.
type Finder struct {
	Sys *System
	// PlacementProbes is how many members the target probes to position
	// itself (default 16).
	PlacementProbes int
	// VerifyTop probes the true latency of the k best members and returns
	// the best of those (0 disables verification).
	VerifyTop int
}

// FindNearest implements overlay.Finder.
func (f *Finder) FindNearest(target int) overlay.Result {
	nProbes := f.PlacementProbes
	if nProbes <= 0 {
		nProbes = 16
	}
	tc, probes := f.Sys.PlaceTarget(target, nProbes)

	type scored struct {
		id   int
		pred float64
	}
	best := make([]scored, 0, f.VerifyTop+1)
	insert := func(sc scored) {
		best = append(best, sc)
		for i := len(best) - 1; i > 0 && best[i].pred < best[i-1].pred; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		limit := f.VerifyTop
		if limit < 1 {
			limit = 1
		}
		if len(best) > limit {
			best = best[:limit]
		}
	}
	for _, m := range f.Sys.members {
		if m == target {
			continue
		}
		insert(scored{id: m, pred: tc.DistanceMs(f.Sys.coords[m])})
	}
	choice, lat := -1, math.Inf(1)
	if f.VerifyTop > 0 {
		for _, sc := range best {
			l := f.Sys.net.Probe(target, sc.id)
			probes++
			if l < lat {
				choice, lat = sc.id, l
			}
		}
	} else {
		choice = best[0].id
		lat = f.Sys.net.Probe(target, choice)
		probes++
	}
	return overlay.Result{Peer: choice, LatencyMs: lat, Probes: probes, Hops: 0}
}
