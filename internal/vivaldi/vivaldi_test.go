package vivaldi

import (
	"math"
	"testing"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
)

func TestCoordDistanceSymmetric(t *testing.T) {
	a, b := NewCoord(3), NewCoord(3)
	a.Vec = []float64{1, 2, 3}
	a.Height = 2
	b.Vec = []float64{4, 6, 3}
	b.Height = 1
	want := 5.0 + 3
	if d := a.DistanceMs(b); math.Abs(d-want) > 1e-12 {
		t.Fatalf("distance = %v, want %v", d, want)
	}
	if a.DistanceMs(b) != b.DistanceMs(a) {
		t.Fatal("distance not symmetric")
	}
}

func TestClone(t *testing.T) {
	a := NewCoord(2)
	a.Vec[0] = 5
	c := a.Clone()
	c.Vec[0] = 9
	if a.Vec[0] != 5 {
		t.Fatal("clone aliases the original")
	}
}

func TestEmbeddingConvergesEuclidean(t *testing.T) {
	// A genuinely low-dimensional space must embed well: median relative
	// error clearly under 30%.
	m := testmat.Euclidean(150, 1)
	net := overlay.NewNetwork(m)
	members := make([]int, m.N())
	for i := range members {
		members[i] = i
	}
	sys := Build(net, members, DefaultConfig(), 7)
	if err := sys.MedianAbsRelErr(400); err > 0.30 {
		t.Fatalf("median relative error %v in Euclidean space", err)
	}
}

func TestClusterPeersCollapse(t *testing.T) {
	// The paper's Section 2.2 low-dimensionality failure, stated
	// precisely: the height model can represent the *star* structure of a
	// cluster (heights absorb hub latencies), but it cannot give each
	// end-network its own position — so (a) the 0.1 ms same-EN pairs are
	// predicted at roughly full cluster latency, and (b) from any peer,
	// the predicted distances to its cluster peers are nearly uniform:
	// the peers are indistinguishable by coordinates.
	m, gt := testmat.Clustered(60, 600, 3)
	net := overlay.NewNetwork(m)
	members := make([]int, m.N())
	for i := range members {
		members[i] = i
	}
	sys := Build(net, members, DefaultConfig(), 7)

	// (a) Same-EN predicted distances are wild overestimates.
	var ratioSum float64
	nPairs := 0
	for _, ps := range gt.PeersInEN {
		if len(ps) < 2 {
			continue
		}
		pred := sys.CoordOf(ps[0]).DistanceMs(sys.CoordOf(ps[1]))
		ratioSum += pred / m.LatencyMs(ps[0], ps[1])
		nPairs++
	}
	if nPairs == 0 {
		t.Fatal("no same-EN pairs")
	}
	if avg := ratioSum / float64(nPairs); avg < 5 {
		t.Fatalf("same-EN predicted/actual = %v; expected coordinates unable to express 100µs pairs", avg)
	}

	// (b) From a peer, predicted distances to its cluster's other peers
	// barely vary relative to what telling ENs apart would require: the
	// coefficient of variation stays small.
	probe := 0
	var dists []float64
	for j := 0; j < m.N(); j++ {
		if j != probe && gt.SameCluster(probe, j) && !gt.SameEN(probe, j) {
			dists = append(dists, sys.CoordOf(probe).DistanceMs(sys.CoordOf(j)))
		}
	}
	if len(dists) < 10 {
		t.Fatal("insufficient cluster peers")
	}
	var mean float64
	for _, d := range dists {
		mean += d
	}
	mean /= float64(len(dists))
	var ss float64
	for _, d := range dists {
		ss += (d - mean) * (d - mean)
	}
	cv := math.Sqrt(ss/float64(len(dists))) / mean
	if cv > 0.5 {
		t.Fatalf("coefficient of variation %v; cluster peers should look indistinguishable", cv)
	}
}

func TestPlaceTargetProbes(t *testing.T) {
	m := testmat.Euclidean(100, 2)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(100, 10, 1)
	sys := Build(net, members, DefaultConfig(), 3)
	net.ResetQueryProbes()
	_, probes := sys.PlaceTarget(targets[0], 12)
	if probes != 12 {
		t.Fatalf("probes = %d, want 12", probes)
	}
	if net.QueryProbes() != probes {
		t.Fatal("probe accounting mismatch")
	}
}

func TestFinderEuclidean(t *testing.T) {
	m := testmat.Euclidean(300, 5)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(300, 30, 2)
	sys := Build(net, members, DefaultConfig(), 3)
	f := &Finder{Sys: sys, PlacementProbes: 16, VerifyTop: 8}

	good := 0
	for _, tgt := range targets {
		res := f.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer || res.LatencyMs <= 2*oracle.LatencyMs+0.5 {
			good++
		}
		if res.Probes < 16 {
			t.Fatalf("probes = %d, expected at least the placement probes", res.Probes)
		}
	}
	if good < len(targets)*2/3 {
		t.Fatalf("only %d/%d queries near-optimal in Euclidean space", good, len(targets))
	}
}

func TestFinderNoVerify(t *testing.T) {
	m := testmat.Euclidean(120, 9)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(120, 5, 2)
	sys := Build(net, members, DefaultConfig(), 3)
	f := &Finder{Sys: sys}
	res := f.FindNearest(targets[0])
	if res.Peer < 0 {
		t.Fatal("no peer returned")
	}
}

func TestErrStaysBounded(t *testing.T) {
	m := testmat.Euclidean(80, 11)
	net := overlay.NewNetwork(m)
	members := make([]int, m.N())
	for i := range members {
		members[i] = i
	}
	sys := Build(net, members, DefaultConfig(), 5)
	for _, id := range members {
		c := sys.CoordOf(id)
		if c.Err < 0.01-1e-12 || c.Err > 1+1e-12 {
			t.Fatalf("error estimate %v out of bounds", c.Err)
		}
		if c.Height < 0 {
			t.Fatalf("negative height %v", c.Height)
		}
		for _, v := range c.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("coordinate diverged")
			}
		}
	}
}
