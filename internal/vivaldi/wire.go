// Wire deployment of Vivaldi: the same spring-relaxation coordinates as the
// static System, but run as a gossip protocol over the message-level
// runtime (internal/p2p). Each member keeps a bounded neighbor set and
// periodically gossips with one random neighbor: a one-way request whose
// one-way answer carries the neighbor's coordinate snapshot, with the
// round-trip virtual time as the RTT sample — so every sample can be lost,
// delayed, or go unanswered by a churned-out peer, and the embedding has to
// survive it. On top of the coordinates sits a coordinate-guided
// nearest-peer search: a greedy walk over the members' advertised
// coordinates with an RTT-verified final candidate set, the classic
// coordinate alternative to the paper's Section 5 hint schemes.
//
// The gossip hot path follows the runtime's allocation discipline: requests
// and replies are one-way sends correlated by echoed MsgID (no inflight
// closures), coordinate snapshots park in a free-list slab of reusable
// buffers reclaimed by typed kernel events, ticks are typed kernel events
// carrying a packed (epoch, node) word, and the spring update itself keeps
// its scratch on the stack — zero allocations per gossip round in steady
// state, enforced by TestWireGossipZeroAlloc.
//
// Knowledge discipline matches the Chord port: members learn coordinates
// only from messages. The out-of-band channel is bootstrap choice — a
// joining (or neighbor-starved) member is handed random live members to
// gossip with, standing in for the rendezvous every deployed system needs;
// everything else (coordinates, neighbor discovery) travels on the wire.

package vivaldi

import (
	"fmt"
	"slices"
	"time"

	"nearestpeer/internal/obs"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Vivaldi wire message types.
const (
	// MsgGossip is the periodic coordinate-exchange request (one-way, no
	// payload); MsgGossipOK is the one-way answer carrying the responder's
	// coordinate snapshot with the request's MsgID echoed for correlation.
	MsgGossip   = "v_gossip"
	MsgGossipOK = "v_gossip_ok"
	// MsgProbe is a query-time request for a member's coordinate; the
	// round-trip time doubles as the RTT measurement (a ping that also
	// returns a coordinate). MsgProbeOK answers.
	MsgProbe   = "v_probe"
	MsgProbeOK = "v_probe_ok"
	// MsgWalk asks a member for the best next hop toward a target
	// coordinate: the member answers with whichever of itself and its
	// cached neighbor coordinates predicts closest. MsgWalkOK answers.
	MsgWalk   = "v_walk"
	MsgWalkOK = "v_walk_ok"
)

// init registers the wire payloads with the UDP codec so the gossip and
// walk messages survive a trip through real datagrams.
func init() {
	p2p.RegisterPayload("v_snap", &gossipSnap{})
	p2p.RegisterPayload("v_walk", walkMsg{})
	p2p.RegisterPayload("v_walk_ok", walkOKMsg{})
}

// nbrFailLimit evicts a neighbor after this many consecutive unanswered
// gossips. One miss must not evict — under packet loss a healthy neighbor
// misses ~2·loss of its exchanges — but two in a row is overwhelmingly a
// dead peer, mirroring the Chord port's suspicion rule.
const nbrFailLimit = 2

// WireConfig parameterises the gossip protocol and the coordinate-guided
// search.
type WireConfig struct {
	// Vivaldi holds the spring-update constants (Dimensions, CE, CC,
	// HeightModel). Rounds and NeighborsPerRound are the static build's
	// schedule and are unused on the wire — pacing comes from GossipEvery.
	Vivaldi Config
	// GossipEvery is the per-member gossip period; each member adds up to
	// 25% per-tick jitter so rounds do not run in lockstep.
	GossipEvery time.Duration
	// Neighbors bounds the per-member neighbor set.
	Neighbors int
	// SnapshotTTL is how long a coordinate snapshot buffer stays parked
	// before its slot is reclaimed. It must exceed the largest one-way
	// delay; a too-small TTL cannot corrupt memory, but a recycled slot's
	// stale echo makes the late reply drop (counted in Metrics.Late).
	SnapshotTTL time.Duration
	// RPCTimeout bounds each query-time probe and walk RPC; 0 uses the
	// runtime default.
	RPCTimeout time.Duration
	// PlacementProbes is how many members a non-member target probes to
	// position itself before the walk.
	PlacementProbes int
	// VerifyTop is how many of the best candidates the search RTT-verifies
	// with real pings before answering.
	VerifyTop int
	// MaxWalkHops caps the greedy walk, a loop backstop.
	MaxWalkHops int
	// Horizon, when > 0, stops scheduling gossip ticks past this virtual
	// time so a test kernel's queue can drain. 0 gossips forever — drive
	// the kernel with RunUntil or Stop in that case.
	Horizon time.Duration
	// Retry is the per-RPC retry policy applied to placement probes and
	// walk hops; it also arms the search's graceful degradation (suspect
	// candidates verify last, and a walk that collected no live candidate
	// falls back to a ring search over known members). The zero value
	// (the default) disables all of it, reproducing the historical
	// behavior bit for bit.
	Retry p2p.Policy
}

// DefaultWireConfig returns the wire protocol defaults: the paper's update
// constants, a 2 s gossip period (240 samples per member over the studies'
// 8-minute warm-up, matching the static build's 60×4 sample budget), and
// the static Finder's placement/verification budgets.
func DefaultWireConfig() WireConfig {
	return WireConfig{
		Vivaldi:         DefaultConfig(),
		GossipEvery:     2 * time.Second,
		Neighbors:       16,
		SnapshotTTL:     2 * time.Second,
		RPCTimeout:      500 * time.Millisecond,
		PlacementProbes: 16,
		VerifyTop:       8,
		MaxWalkHops:     16,
	}
}

// WireMetrics aggregates protocol-level counters (wire- and probe-level
// costs live in the runtime's Metrics).
type WireMetrics struct {
	// Gossips counts gossip requests issued; Samples the coordinate
	// updates applied (answered gossips).
	Gossips, Samples int64
	// Late counts gossip answers dropped because a newer gossip was
	// already outstanding (the echoed MsgID no longer matched).
	Late int64
	// Evictions counts neighbors dropped after consecutive unanswered
	// gossips.
	Evictions int64
}

// gossipSnap is one coordinate snapshot in flight: the responder's
// coordinate copied at answer time, plus the request MsgID echoed for
// correlation and one of the responder's neighbors for discovery. Snapshots
// are pooled — the Vec buffer is allocated once per slab slot and reused,
// and a typed kernel event returns the slot after SnapshotTTL, by which
// time the envelope has been delivered or dropped.
type gossipSnap struct {
	Echo        uint64
	Vec         []float64
	Height, Err float64
	Sample      p2p.NodeID
}

// wireNeighbor is one entry of a member's bounded neighbor set: the peer
// and the last coordinate heard from it (the advertised coordinate the
// greedy walk routes on).
type wireNeighbor struct {
	id    p2p.NodeID
	coord Coord
	known bool // coord has been heard at least once
	fails int  // consecutive unanswered gossips
}

// wireState is one member incarnation's protocol state. Neighbor slots are
// allocated once at Join (including their coordinate buffers) and reused by
// eviction/discovery, so steady-state membership maintenance never
// allocates.
type wireState struct {
	epoch uint32
	coord Coord
	src   *rng.Source
	nbrs  []wireNeighbor // fixed length cfg.Neighbors; first nNbrs in use
	nNbrs int
	// pendingMsgID correlates the one outstanding gossip (0 = none).
	pendingMsgID uint64
	pendingTo    p2p.NodeID
	sentAt       time.Duration
}

// Wire runs the Vivaldi gossip protocol and the coordinate-guided search
// over a p2p.Runtime.
type Wire struct {
	rt  p2p.Transport
	cfg WireConfig
	src *rng.Source
	// qsrc drives query-time randomness (placement member picks), split
	// from the protocol stream so queries never perturb the gossip draws.
	qsrc    *rng.Source
	states  []*wireState // dense by NodeID; nil = not a member
	epochs  []uint32     // per-node incarnation counter
	members []p2p.NodeID // sorted live member list (the bootstrap handout)

	tickH    sim.HandlerID
	reclaimH sim.HandlerID
	snaps    []*gossipSnap
	snapFree []uint32

	// scratch receives a reply's snapshot before the spring update reads
	// it (the kernel is single-threaded, so one buffer serves all members).
	scratch Coord

	metrics WireMetrics
}

// NewWire creates the protocol instance (with no members yet).
func NewWire(rt p2p.Transport, cfg WireConfig, seed int64) *Wire {
	v := cfg.Vivaldi
	if v.Dimensions <= 0 || v.Dimensions > MaxDimensions || v.CE <= 0 || v.CC <= 0 ||
		cfg.GossipEvery <= 0 || cfg.Neighbors <= 0 || cfg.SnapshotTTL <= 0 ||
		cfg.PlacementProbes <= 0 || cfg.MaxWalkHops <= 0 {
		panic(fmt.Sprintf("vivaldi: invalid wire config %+v", cfg))
	}
	if err := cfg.Retry.Validate(); err != nil {
		panic(err)
	}
	n := rt.Population()
	w := &Wire{
		rt:      rt,
		cfg:     cfg,
		src:     rng.New(seed).Split("vivaldi"),
		states:  make([]*wireState, n),
		epochs:  make([]uint32, n),
		scratch: Coord{Vec: make([]float64, v.Dimensions)},
	}
	w.qsrc = w.src.Split("query")
	w.tickH = rt.RegisterHandler(w.tick)
	w.reclaimH = rt.RegisterHandler(w.reclaimSnap)
	return w
}

// Transport returns the transport the protocol runs on.
func (w *Wire) Transport() p2p.Transport { return w.rt }

// Metrics returns the protocol counters.
func (w *Wire) Metrics() WireMetrics { return w.metrics }

// state returns the member state for id, or nil.
func (w *Wire) state(id p2p.NodeID) *wireState {
	if int(id) < 0 || int(id) >= len(w.states) {
		return nil
	}
	return w.states[id]
}

// CoordOf returns a member's live coordinate (nil for non-members). The
// returned coordinate is the protocol's working state: callers must treat
// it as read-only, and experiments use it only as the measurement oracle.
func (w *Wire) CoordOf(id p2p.NodeID) *Coord {
	st := w.state(id)
	if st == nil {
		return nil
	}
	return &st.coord
}

// NumMembers returns the live member count.
func (w *Wire) NumMembers() int { return len(w.members) }

// LiveMembers returns the current membership (sorted, a copy).
func (w *Wire) LiveMembers() []p2p.NodeID {
	return append([]p2p.NodeID(nil), w.members...)
}

// Join brings a node up as a coordinate-system member: a fresh origin
// coordinate, a bootstrap sample of current members as its neighbor set,
// and a gossip tick chain for this incarnation. Idempotent for a live
// member; a previously stopped node is restarted (the explicit protocol
// re-entry, as with Chord.Join).
func (w *Wire) Join(id p2p.NodeID) {
	if w.state(id) != nil {
		return
	}
	n := w.rt.AddNode(id)
	if !n.Alive() {
		n.Restart()
	}
	w.epochs[id]++
	dims := w.cfg.Vivaldi.Dimensions
	st := &wireState{
		epoch:     w.epochs[id],
		coord:     Coord{Vec: make([]float64, dims), Err: 1},
		src:       w.src.SplitN("member", int(id)),
		nbrs:      make([]wireNeighbor, w.cfg.Neighbors),
		pendingTo: p2p.NoNode,
	}
	for i := range st.nbrs {
		st.nbrs[i].coord = Coord{Vec: make([]float64, dims), Err: 1}
	}
	// Bootstrap handout: a random sample of current members to start
	// gossiping with. Discovery (the Sample field of gossip answers) and
	// the per-tick top-up keep the set filled from here on.
	for tries := 0; tries < 4*w.cfg.Neighbors && st.nNbrs < w.cfg.Neighbors && len(w.members) > 0; tries++ {
		m := w.members[st.src.Intn(len(w.members))]
		if m != id && st.findNbr(m) < 0 {
			st.addNbr(m)
		}
	}
	w.states[id] = st
	w.insertMember(id)
	n.Handle(MsgGossip, w.handleGossip)
	n.Handle(MsgGossipOK, w.handleGossipOK)
	n.Handle(MsgProbe, w.handleProbe)
	n.Handle(MsgWalk, w.handleWalk)
	w.scheduleTick(id, st)
}

// Leave takes a member down. Coordinates are soft state refreshed by
// gossip, so graceful and crash departures look the same on the wire: the
// node just goes silent and its neighbors evict it by unanswered gossips.
func (w *Wire) Leave(id p2p.NodeID, graceful bool) {
	_ = graceful
	st := w.state(id)
	if st == nil {
		return
	}
	w.states[id] = nil
	w.removeMember(id)
	if n := w.rt.Node(id); n != nil {
		n.Stop()
	}
}

func (w *Wire) insertMember(id p2p.NodeID) {
	if i, ok := slices.BinarySearch(w.members, id); !ok {
		w.members = slices.Insert(w.members, i, id)
	}
}

func (w *Wire) removeMember(id p2p.NodeID) {
	if i, ok := slices.BinarySearch(w.members, id); ok {
		w.members = slices.Delete(w.members, i, i+1)
	}
}

// ---- neighbor-set bookkeeping (fixed slots, no steady-state allocation) ----

// findNbr returns the index of id in the in-use neighbor slots, or -1. The
// set is bounded (≤ Neighbors, default 16), so a linear scan beats any
// index structure and allocates nothing.
func (st *wireState) findNbr(id p2p.NodeID) int {
	for i := 0; i < st.nNbrs; i++ {
		if st.nbrs[i].id == id {
			return i
		}
	}
	return -1
}

// addNbr takes over the next free slot for id (caller guarantees room and
// no duplicate). The slot's coordinate buffer is reused; known=false marks
// the cached coordinate as not-yet-heard.
func (st *wireState) addNbr(id p2p.NodeID) {
	nb := &st.nbrs[st.nNbrs]
	nb.id = id
	nb.known = false
	nb.fails = 0
	nb.coord.Height, nb.coord.Err = 0, 1
	for i := range nb.coord.Vec {
		nb.coord.Vec[i] = 0
	}
	st.nNbrs++
}

// evictNbr removes slot i by swapping the last in-use slot in (the
// wireNeighbor structs swap wholesale, carrying their coordinate buffers
// with them).
func (st *wireState) evictNbr(i int) {
	st.nNbrs--
	if i != st.nNbrs {
		st.nbrs[i], st.nbrs[st.nNbrs] = st.nbrs[st.nNbrs], st.nbrs[i]
	}
}

// sampleNbr returns a uniformly random in-use neighbor for discovery
// gossip, or NoNode when the set is empty.
func (st *wireState) sampleNbr() p2p.NodeID {
	if st.nNbrs == 0 {
		return p2p.NoNode
	}
	return st.nbrs[st.src.Intn(st.nNbrs)].id
}

// ---- gossip: ticks, requests, answers ----

// packTick packs a member incarnation into a typed-event argument. sim
// events carry 48 usable bits; 16 of epoch and 32 of node id fit with room
// to spare (node ids are matrix indices, far below 2^32).
func packTick(epoch uint32, id p2p.NodeID) uint64 {
	return uint64(epoch&0xFFFF)<<32 | uint64(uint32(id))
}

// scheduleTick schedules the member's next gossip as a typed kernel event —
// no closure per tick. The chain dies with the incarnation (epoch check in
// tick) and at the configured horizon.
func (w *Wire) scheduleTick(id p2p.NodeID, st *wireState) {
	d := w.cfg.GossipEvery + time.Duration(st.src.Int63n(int64(w.cfg.GossipEvery)/4+1))
	if h := w.cfg.Horizon; h > 0 && w.rt.Now(id)+d > h {
		return
	}
	w.rt.AfterHandler(d, w.tickH, packTick(st.epoch, id))
}

// tick is the registered gossip-tick handler: one gossip for the member if
// it is up, then the next tick. A tick whose incarnation has been replaced
// (leave, or leave+rejoin) is a dead chain and simply stops; a member that
// is down without having left (a crash the protocol has not observed)
// pauses but keeps its chain.
func (w *Wire) tick(arg uint64) {
	id := p2p.NodeID(uint32(arg))
	epoch := uint32(arg>>32) & 0xFFFF
	st := w.state(id)
	if st == nil || st.epoch&0xFFFF != epoch {
		return
	}
	if w.rt.Alive(id) {
		w.gossipOnce(id, st)
	}
	w.scheduleTick(id, st)
}

// gossipOnce issues one gossip: charge the previous unanswered exchange to
// its neighbor (evicting after nbrFailLimit consecutive misses), top the
// neighbor set up from the membership when it has thinned, then send a
// coordinate-exchange request to one random neighbor. The request is a
// one-way nil-payload send; the answer correlates by echoed MsgID.
func (w *Wire) gossipOnce(id p2p.NodeID, st *wireState) {
	if st.pendingMsgID != 0 {
		if i := st.findNbr(st.pendingTo); i >= 0 {
			st.nbrs[i].fails++
			if st.nbrs[i].fails >= nbrFailLimit {
				st.evictNbr(i)
				w.metrics.Evictions++
			}
		}
		st.pendingMsgID = 0
	}
	if st.nNbrs < (len(st.nbrs)+1)/2 && len(w.members) > 1 {
		// Re-bootstrap: one random member per tick (the rendezvous
		// handout, as at Join). Discovery fills the rest.
		m := w.members[st.src.Intn(len(w.members))]
		if m != id && st.findNbr(m) < 0 && st.nNbrs < len(st.nbrs) {
			st.addNbr(m)
		}
	}
	if st.nNbrs == 0 {
		return // alone in the overlay
	}
	to := st.nbrs[st.src.Intn(st.nNbrs)].id
	n := w.rt.Node(id)
	w.rt.SerialMetrics().MaintProbes++ // a gossip is a maintenance RTT measurement
	st.pendingMsgID = n.Send(to, MsgGossip, nil)
	st.pendingTo = to
	st.sentAt = w.rt.Now(id)
	w.metrics.Gossips++
}

// snapGet pops a snapshot buffer from the pool (allocating a new slot only
// until the pool reaches the workload's high-water mark) and schedules its
// reclaim as a typed kernel event.
func (w *Wire) snapGet() *gossipSnap {
	var slot uint32
	if n := len(w.snapFree); n > 0 {
		slot = w.snapFree[n-1]
		w.snapFree = w.snapFree[:n-1]
	} else {
		w.snaps = append(w.snaps, &gossipSnap{Vec: make([]float64, w.cfg.Vivaldi.Dimensions)})
		slot = uint32(len(w.snaps) - 1)
	}
	w.rt.AfterHandler(w.cfg.SnapshotTTL, w.reclaimH, uint64(slot))
	return w.snaps[slot]
}

// reclaimSnap is the registered handler returning a snapshot slot to the
// pool. By reclaim time the snapshot's envelope has been delivered or
// dropped (SnapshotTTL exceeds any one-way delay), so the buffer is free.
func (w *Wire) reclaimSnap(arg uint64) {
	w.snapFree = append(w.snapFree, uint32(arg))
}

// fillSnap copies a member's current coordinate into a pooled snapshot.
func (w *Wire) fillSnap(st *wireState, echo uint64) *gossipSnap {
	s := w.snapGet()
	s.Echo = echo
	copy(s.Vec, st.coord.Vec)
	s.Height, s.Err = st.coord.Height, st.coord.Err
	s.Sample = st.sampleNbr()
	return s
}

// handleGossip answers a coordinate-exchange request with a one-way
// snapshot. A node that is no longer a member stays silent, so the asker
// charges the miss to it and eventually evicts it.
func (w *Wire) handleGossip(n *p2p.Node, env p2p.Envelope) {
	st := w.state(n.ID)
	if st == nil {
		return
	}
	n.Send(env.From, MsgGossipOK, w.fillSnap(st, env.MsgID))
}

// handleGossipOK applies a gossip answer: correlate by echoed MsgID (a
// stale echo means a newer gossip superseded this one — the sample is
// dropped because its send time is no longer known), measure the RTT as
// round-trip virtual time, cache the neighbor's advertised coordinate, run
// the spring update, and adopt the discovery sample when there is room.
func (w *Wire) handleGossipOK(n *p2p.Node, env p2p.Envelope) {
	st := w.state(n.ID)
	if st == nil {
		return
	}
	s, ok := env.Payload.(*gossipSnap)
	if !ok {
		return
	}
	if st.pendingMsgID == 0 || s.Echo != st.pendingMsgID || env.From != st.pendingTo {
		w.metrics.Late++
		return
	}
	st.pendingMsgID = 0
	rtt := float64(w.rt.Now(n.ID)-st.sentAt) / float64(time.Millisecond)
	copy(w.scratch.Vec, s.Vec)
	w.scratch.Height, w.scratch.Err = s.Height, s.Err
	st.coord.Update(&w.scratch, rtt, w.cfg.Vivaldi, st.src)
	w.metrics.Samples++
	if i := st.findNbr(env.From); i >= 0 {
		nb := &st.nbrs[i]
		nb.fails = 0
		nb.known = true
		copy(nb.coord.Vec, s.Vec)
		nb.coord.Height, nb.coord.Err = s.Height, s.Err
	}
	if s.Sample != p2p.NoNode && s.Sample != n.ID && st.nNbrs < len(st.nbrs) && st.findNbr(s.Sample) < 0 {
		st.addNbr(s.Sample)
	}
}

// ---- query path: probe, greedy walk, RTT verification ----

// walkMsg carries the target coordinate a walk step routes toward.
type walkMsg struct {
	Vec    []float64
	Height float64
}

// walkOKMsg answers a walk step: the best predicted candidate among the
// answering member and its cached neighbor coordinates, a few runner-up
// alternates (they feed the walker's verification pool, as Chord's Alts
// feed its retry frontier), plus the member's own prediction (so the
// walker can keep the answerer as a candidate too).
type walkOKMsg struct {
	Best     p2p.NodeID
	BestPred float64
	SelfPred float64
	Alts     []p2p.NodeID
	AltPreds []float64
}

// walkAlts is how many runner-up candidates a walk answer carries.
const walkAlts = 3

// handleProbe answers a query-time coordinate probe (the round trip is the
// caller's RTT measurement). Replies reuse the snapshot pool; the Echo
// field is unused on this correlated path.
func (w *Wire) handleProbe(n *p2p.Node, env p2p.Envelope) {
	st := w.state(n.ID)
	if st == nil {
		return
	}
	n.Reply(env, MsgProbeOK, w.fillSnap(st, 0))
}

// handleWalk answers one greedy-walk step against the member's local view:
// its own coordinate and the advertised coordinates it has cached for its
// neighbors. The asker (env.From — always the querying client, since walk
// RPCs are issued by the client directly) is never a valid answer: the
// query wants its nearest other peer, and a member client walking from
// itself would otherwise terminate immediately on "me". Ties break toward
// the lower node ID so the walk is deterministic.
func (w *Wire) handleWalk(n *p2p.Node, env p2p.Envelope) {
	st := w.state(n.ID)
	if st == nil {
		return
	}
	m := env.Payload.(walkMsg)
	target := Coord{Vec: m.Vec, Height: m.Height}
	selfPred := st.coord.DistanceMs(&target)
	cands := make([]walkCand, 0, st.nNbrs+1)
	if n.ID != env.From {
		cands = append(cands, walkCand{id: n.ID, pred: selfPred})
	}
	for i := 0; i < st.nNbrs; i++ {
		nb := &st.nbrs[i]
		if nb.known && nb.id != env.From {
			cands = append(cands, walkCand{id: nb.id, pred: nb.coord.DistanceMs(&target)})
		}
	}
	sortWalkCands(cands)
	if len(cands) > 1+walkAlts {
		cands = cands[:1+walkAlts]
	}
	reply := walkOKMsg{Best: p2p.NoNode, SelfPred: selfPred}
	if len(cands) > 0 {
		reply.Best, reply.BestPred = cands[0].id, cands[0].pred
		for _, c := range cands[1:] {
			reply.Alts = append(reply.Alts, c.id)
			reply.AltPreds = append(reply.AltPreds, c.pred)
		}
	}
	n.Reply(env, MsgWalkOK, reply)
}

// sortWalkCands orders candidates by (predicted distance, id) ascending —
// the deterministic walk order. Candidate sets are neighbor-set sized, so
// an insertion sort suffices.
func sortWalkCands(cands []walkCand) {
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].pred > c.pred || (cands[j].pred == c.pred && cands[j].id > c.id)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
}

// WireResult reports one coordinate-guided nearest-peer search.
type WireResult struct {
	// Peer is the closest RTT-verified candidate (NoNode if none answered).
	Peer p2p.NodeID
	// RTTms is the wire-measured RTT to Peer.
	RTTms float64
	// Probes counts query-time RTT measurements issued (placement probes
	// plus verification pings); Dead the ones that timed out.
	Probes, Dead int
	// Hops counts greedy-walk steps taken.
	Hops int
	// Candidates is how many distinct members the walk collected before
	// verification.
	Candidates int
	// RingFallback reports that the greedy walk collected no live
	// candidate and the search degraded to a ring sweep over known
	// members (only possible with a retry policy enabled).
	RingFallback bool
	// Found reports whether any verified candidate answered.
	Found bool
}

// walkCand is one candidate the greedy walk collected.
type walkCand struct {
	id   p2p.NodeID
	pred float64
}

// FindNearest runs the coordinate-guided search from client: place the
// client in coordinate space (members use their own live coordinate;
// non-members probe PlacementProbes random members and iterate the update
// rule over the answers, as the static PlaceTarget does), greedy-walk over
// advertised coordinates toward the client's coordinate, then RTT-verify
// the VerifyTop best candidates with real pings and return the closest
// responder. done fires exactly once (the issuing node is assumed to stay
// up for the query).
func (w *Wire) FindNearest(client p2p.NodeID, done func(WireResult)) {
	n := w.rt.AddNode(client)
	res := WireResult{Peer: p2p.NoNode}
	var lseq uint64
	if rec := w.rt.FlightRecorder(); rec != nil {
		lseq = rec.Begin()
	}
	if st := w.state(client); st != nil {
		// A member already has a coordinate; walk from itself.
		tc := st.coord.Clone()
		w.walk(n, client, lseq, tc, client, &res, done)
		return
	}
	w.place(n, client, lseq, &res, done)
}

// place positions a non-member: sequential coordinate probes against
// random members, then the static placement iteration over the collected
// (coordinate, RTT) observations.
func (w *Wire) place(n *p2p.Node, client p2p.NodeID, lseq uint64, res *WireResult, done func(WireResult)) {
	type placeObs struct {
		from  p2p.NodeID
		coord *Coord
		rtt   float64
	}
	var targets []p2p.NodeID
	for tries := 0; tries < 4*w.cfg.PlacementProbes && len(targets) < w.cfg.PlacementProbes && len(w.members) > 0; tries++ {
		m := w.members[w.qsrc.Intn(len(w.members))]
		if m == client || containsID(targets, m) {
			continue
		}
		targets = append(targets, m)
	}
	var observations []placeObs
	var step func(i int)
	step = func(i int) {
		if i >= len(targets) {
			if len(observations) == 0 {
				done(*res)
				return
			}
			tc := NewCoord(w.cfg.Vivaldi.Dimensions)
			psrc := w.qsrc.Split("place")
			for iter := 0; iter < 30; iter++ {
				for _, o := range observations {
					tc.Update(o.coord, o.rtt, w.cfg.Vivaldi, psrc)
				}
			}
			// Walk from the closest-measured responder.
			best := observations[0]
			for _, o := range observations[1:] {
				if o.rtt < best.rtt {
					best = o
				}
			}
			w.walk(n, client, lseq, tc, best.from, res, done)
			return
		}
		w.rt.SerialMetrics().QueryProbes++
		res.Probes++
		start := w.rt.Now(n.ID)
		n.RequestPolicy(targets[i], MsgProbe, nil, w.cfg.RPCTimeout, w.cfg.Retry,
			func(env p2p.Envelope) {
				rtt := float64(w.rt.Now(n.ID)-start) / float64(time.Millisecond)
				if rec := w.rt.FlightRecorder(); rec != nil {
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "vivaldi", Type: MsgProbe,
						From: int(n.ID), To: int(targets[i]), At: start, RTTms: rtt, Outcome: obs.HopOK})
				}
				if s, ok := env.Payload.(*gossipSnap); ok {
					c := &Coord{Vec: append([]float64(nil), s.Vec...), Height: s.Height, Err: s.Err}
					observations = append(observations, placeObs{from: targets[i], coord: c, rtt: rtt})
				}
				step(i + 1)
			},
			func() {
				if rec := w.rt.FlightRecorder(); rec != nil {
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "vivaldi", Type: MsgProbe,
						From: int(n.ID), To: int(targets[i]), At: start, Outcome: obs.HopTimeout})
				}
				res.Dead++
				step(i + 1)
			})
	}
	step(0)
}

// containsID reports whether list contains id.
func containsID(list []p2p.NodeID, id p2p.NodeID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// walk runs the greedy descent from start toward the target coordinate tc,
// collecting every answered candidate, then hands off to verification.
func (w *Wire) walk(n *p2p.Node, client p2p.NodeID, lseq uint64, tc *Coord, start p2p.NodeID, res *WireResult, done func(WireResult)) {
	var cands []walkCand
	addCand := func(id p2p.NodeID, pred float64) {
		if id == client || id == p2p.NoNode {
			return
		}
		for i := range cands {
			if cands[i].id == id {
				if pred < cands[i].pred {
					cands[i].pred = pred
				}
				return
			}
		}
		cands = append(cands, walkCand{id: id, pred: pred})
	}
	visited := map[p2p.NodeID]bool{}
	payload := walkMsg{Vec: tc.Vec, Height: tc.Height}
	cur := start
	var step func()
	step = func() {
		if res.Hops >= w.cfg.MaxWalkHops || visited[cur] {
			w.verify(n, cands, res, done)
			return
		}
		visited[cur] = true
		hopStart := w.rt.Now(n.ID)
		hopTo := cur
		n.RequestPolicy(cur, MsgWalk, payload, w.cfg.RPCTimeout, w.cfg.Retry,
			func(env p2p.Envelope) {
				if rec := w.rt.FlightRecorder(); rec != nil {
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "vivaldi", Type: MsgWalk,
						From: int(n.ID), To: int(hopTo), At: hopStart,
						RTTms:   float64(w.rt.Now(n.ID)-hopStart) / float64(time.Millisecond),
						Outcome: obs.HopOK})
				}
				ok := env.Payload.(walkOKMsg)
				addCand(env.From, ok.SelfPred)
				addCand(ok.Best, ok.BestPred)
				for i, alt := range ok.Alts {
					addCand(alt, ok.AltPreds[i])
				}
				if ok.Best == env.From || ok.Best == client || ok.Best == p2p.NoNode || visited[ok.Best] {
					w.verify(n, cands, res, done)
					return
				}
				res.Hops++
				cur = ok.Best
				step()
			},
			func() {
				if rec := w.rt.FlightRecorder(); rec != nil {
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "vivaldi", Type: MsgWalk,
						From: int(n.ID), To: int(hopTo), At: hopStart, Outcome: obs.HopTimeout})
				}
				// Dead or lost hop: verify what the walk has so far.
				w.verify(n, cands, res, done)
			})
	}
	step()
}

// verify ranks the walk's candidates by predicted distance, RTT-verifies
// the VerifyTop best with real pings, and answers with the closest
// responder.
func (w *Wire) verify(n *p2p.Node, cands []walkCand, res *WireResult, done func(WireResult)) {
	res.Candidates = len(cands)
	if len(cands) == 0 && w.cfg.Retry.Enabled() && len(w.members) > 0 {
		w.ringFallback(n, res, done)
		return
	}
	sortWalkCands(cands)
	// Suspect candidates (repeated exhausted retries) verify last, so the
	// ping budget goes to peers that have been answering. A no-op with
	// retries disabled: Suspect is then always false.
	if w.cfg.Retry.Enabled() && len(cands) > 1 {
		ordered := make([]walkCand, 0, len(cands))
		for _, c := range cands {
			if !n.Suspect(c.id, w.cfg.Retry) {
				ordered = append(ordered, c)
			}
		}
		for _, c := range cands {
			if n.Suspect(c.id, w.cfg.Retry) {
				ordered = append(ordered, c)
			}
		}
		cands = ordered
	}
	limit := w.cfg.VerifyTop
	if limit < 1 {
		limit = 1
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}
	ids := make([]p2p.NodeID, len(cands))
	for i, c := range cands {
		ids[i] = c.id
	}
	n.SweepPing(ids, w.cfg.RPCTimeout, func(s p2p.PingSweep) {
		res.Probes += s.Probes
		res.Dead += s.Dead
		if s.Found {
			res.Found = true
			res.Peer, res.RTTms = s.Best, s.BestRTT
		}
		done(*res)
	})
}

// ringFallback is the search's graceful degradation: when the greedy walk
// exhausted every alternate without collecting one live candidate, sweep-
// ping a random sample of known members so the query still answers with
// the best reachable peer instead of failing outright. Reached only with
// a retry policy enabled; the probe budget is twice VerifyTop.
func (w *Wire) ringFallback(n *p2p.Node, res *WireResult, done func(WireResult)) {
	res.RingFallback = true
	budget := 2 * w.cfg.VerifyTop
	if budget < 2 {
		budget = 2
	}
	var targets []p2p.NodeID
	for tries := 0; tries < 4*budget && len(targets) < budget; tries++ {
		m := w.members[w.qsrc.Intn(len(w.members))]
		if m == n.ID || containsID(targets, m) || n.Suspect(m, w.cfg.Retry) {
			continue
		}
		targets = append(targets, m)
	}
	n.SweepPing(targets, w.cfg.RPCTimeout, func(s p2p.PingSweep) {
		res.Probes += s.Probes
		res.Dead += s.Dead
		if s.Found {
			res.Found = true
			res.Peer, res.RTTms = s.Best, s.BestRTT
		}
		done(*res)
	})
}
