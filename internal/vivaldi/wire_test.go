package vivaldi

import (
	"math"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
)

// wireLineMatrix builds a dense matrix with rtt(i,j) = 10*|i-j| ms — a
// 1-D-embeddable geometry the spring relaxation can fit well.
func wireLineMatrix(n int) *latency.Dense {
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 10*float64(j-i))
		}
	}
	return m
}

// newTestWire stands up a wire with all of 1..n-1 joined as members (node 0
// is left free as a non-member client).
func newTestWire(n int, loss float64, seed int64) (*sim.Sim, *p2p.Runtime, *Wire) {
	kernel := sim.New()
	rt := p2p.New(kernel, wireLineMatrix(n), p2p.Config{LossProb: loss, RPCTimeout: time.Second}, seed)
	w := NewWire(rt, DefaultWireConfig(), seed)
	for i := 1; i < n; i++ {
		w.Join(p2p.NodeID(i))
	}
	return kernel, rt, w
}

// wireMedianErr computes the embedding's median |pred-true|/true over all
// live member pairs.
func wireMedianErr(w *Wire, m latency.Matrix) float64 {
	members := w.LiveMembers()
	var errs []float64
	for i, a := range members {
		for _, b := range members[i+1:] {
			actual := m.LatencyMs(int(a), int(b))
			if actual <= 0 {
				continue
			}
			pred := w.CoordOf(a).DistanceMs(w.CoordOf(b))
			errs = append(errs, math.Abs(pred-actual)/actual)
		}
	}
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j] < errs[j-1]; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
	return errs[len(errs)/2]
}

// TestWireGossipConverges: after a few hundred samples per member the wire
// embedding predicts the line matrix well, and the protocol counters add up
// (every applied sample came from an answered gossip).
func TestWireGossipConverges(t *testing.T) {
	kernel, rt, w := newTestWire(33, 0, 1)
	kernel.RunUntil(10 * time.Minute)
	if err := wireMedianErr(w, wireLineMatrix(33)); err > 0.25 {
		t.Fatalf("median abs rel err %.3f after 10 virtual minutes, want <= 0.25", err)
	}
	m := w.Metrics()
	if m.Gossips == 0 || m.Samples == 0 || m.Samples > m.Gossips {
		t.Fatalf("metrics %+v: want 0 < Samples <= Gossips", m)
	}
	if rt.Metrics.MaintProbes != m.Gossips {
		t.Fatalf("MaintProbes %d != Gossips %d: gossip cost not accounted as maintenance",
			rt.Metrics.MaintProbes, m.Gossips)
	}
}

// TestWireGossipZeroAlloc mirrors TestSendDeliverZeroAlloc for the gossip
// round: once the slabs, queues and neighbor sets are warm, advancing the
// kernel through a full gossip period (every member gossips once, every
// answer applies a spring update) must not allocate. A failing test, not a
// bench note — the claim cannot silently regress.
func TestWireGossipZeroAlloc(t *testing.T) {
	kernel, _, w := newTestWire(33, 0, 1)
	// Warm: slab and queue high-water marks, neighbor sets filled, all
	// coordinates away from the origin (no coincident-point paths left).
	kernel.RunUntil(2 * time.Minute)
	period := w.cfg.GossipEvery + w.cfg.GossipEvery/4
	if avg := testing.AllocsPerRun(200, func() {
		kernel.RunUntil(kernel.Now() + period)
	}); avg != 0 {
		t.Fatalf("gossip round allocates %v per period, want 0", avg)
	}
}

// TestWireGossipDeterministic: same seed, same bytes — coordinates,
// neighbor sets and counters all replay exactly.
func TestWireGossipDeterministic(t *testing.T) {
	run := func() ([]Coord, WireMetrics, p2p.Metrics) {
		kernel, rt, w := newTestWire(24, 0.05, 7)
		kernel.RunUntil(5 * time.Minute)
		var coords []Coord
		for _, id := range w.LiveMembers() {
			coords = append(coords, *w.CoordOf(id).Clone())
		}
		return coords, w.Metrics(), rt.Metrics
	}
	c1, wm1, rm1 := run()
	c2, wm2, rm2 := run()
	if wm1 != wm2 || rm1 != rm2 {
		t.Fatalf("same seed diverged: %+v/%+v vs %+v/%+v", wm1, rm1, wm2, rm2)
	}
	for i := range c1 {
		if c1[i].Height != c2[i].Height || c1[i].Err != c2[i].Err {
			t.Fatalf("coord %d diverged: %+v vs %+v", i, c1[i], c2[i])
		}
		for d := range c1[i].Vec {
			if c1[i].Vec[d] != c2[i].Vec[d] {
				t.Fatalf("coord %d dim %d diverged: %v vs %v", i, d, c1[i].Vec[d], c2[i].Vec[d])
			}
		}
	}
}

// TestWireFindNearestNonMember: a non-member client places itself and the
// coordinate-guided walk plus RTT verification lands on a truly nearby
// member (node 0's nearest member on the line is node 1 at 10 ms).
func TestWireFindNearestNonMember(t *testing.T) {
	kernel, _, w := newTestWire(64, 0, 3)
	kernel.RunUntil(10 * time.Minute)
	var res WireResult
	fired := 0
	w.FindNearest(0, func(r WireResult) { res = r; fired++ })
	// Gossip ticks reschedule forever (no Horizon here), so drive by
	// deadline instead of draining the queue.
	kernel.RunUntil(kernel.Now() + 2*time.Minute)
	if fired != 1 {
		t.Fatalf("done fired %d times", fired)
	}
	if !res.Found {
		t.Fatalf("search failed: %+v", res)
	}
	if res.RTTms > 30 {
		t.Fatalf("found peer %d at %.0f ms; want within 30 ms of the true 10 ms nearest (%+v)",
			res.Peer, res.RTTms, res)
	}
	if res.Probes == 0 {
		t.Fatalf("search issued no probes: %+v", res)
	}
}

// TestWireFindNearestMember: a member client uses its own live coordinate
// (no placement probes) and must find its immediate line neighbor.
func TestWireFindNearestMember(t *testing.T) {
	kernel, _, w := newTestWire(64, 0, 3)
	kernel.RunUntil(10 * time.Minute)
	var res WireResult
	w.FindNearest(32, func(r WireResult) { res = r })
	kernel.RunUntil(kernel.Now() + 2*time.Minute)
	if !res.Found || res.RTTms != 10 {
		t.Fatalf("member search found %d at %.0f ms, want an adjacent member at exactly 10 ms (%+v)",
			res.Peer, res.RTTms, res)
	}
	if res.Peer != 31 && res.Peer != 33 {
		t.Fatalf("member search found %d, want 31 or 33", res.Peer)
	}
}

// TestWireLeaveRejoin: a member that leaves goes silent (its neighbors
// evict it by unanswered gossips), and a rejoin starts a fresh incarnation
// whose ticks resume — the old incarnation's chain must not double-drive
// the node.
func TestWireLeaveRejoin(t *testing.T) {
	kernel, rt, w := newTestWire(17, 0, 5)
	kernel.RunUntil(2 * time.Minute)
	w.Leave(8, false)
	if rt.Alive(8) {
		t.Fatal("left member still alive")
	}
	if w.CoordOf(8) != nil {
		t.Fatal("left member still has a coordinate")
	}
	gossipsAtLeave := w.Metrics().Gossips
	kernel.RunUntil(4 * time.Minute)
	if w.Metrics().Evictions == 0 {
		t.Fatal("no neighbor evicted the silent member")
	}
	w.Join(8)
	kernel.RunUntil(8 * time.Minute)
	if w.CoordOf(8) == nil {
		t.Fatal("rejoined member has no coordinate")
	}
	if w.Metrics().Gossips == gossipsAtLeave {
		t.Fatal("gossip stalled after leave/rejoin")
	}
	// The rejoined incarnation gossips again and its coordinate moves off
	// the origin.
	c := w.CoordOf(8)
	var norm float64
	for _, v := range c.Vec {
		norm += v * v
	}
	if norm == 0 && c.Height == 0 {
		t.Fatalf("rejoined member never applied a sample: %+v", c)
	}
}

// TestWireLossDropsSamples: under heavy loss, gossips outnumber applied
// samples and the embedding still converges (more slowly).
func TestWireLossDropsSamples(t *testing.T) {
	kernel, _, w := newTestWire(24, 0.3, 9)
	kernel.RunUntil(10 * time.Minute)
	m := w.Metrics()
	if m.Samples >= m.Gossips {
		t.Fatalf("loss=0.3 but samples %d >= gossips %d", m.Samples, m.Gossips)
	}
	if err := wireMedianErr(w, wireLineMatrix(24)); err > 0.5 {
		t.Fatalf("median err %.3f under loss, want <= 0.5", err)
	}
}
