package experiments

import (
	"fmt"
	"strings"

	"nearestpeer/internal/beacon"
	"nearestpeer/internal/core"
	"nearestpeer/internal/kargerruhl"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/pic"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/tapestry"
	"nearestpeer/internal/tiers"
	"nearestpeer/internal/ucl"
	"nearestpeer/internal/vivaldi"
)

// This file implements the ablation benches A1-A6: the
// design-choice studies the paper motivates but does not tabulate.

// ablationClusterCfg is the shared clustering-condition configuration:
// strong clustering, the paper's Figure 9 default.
func ablationClusterCfg(scale Scale) latency.ClusteredConfig {
	cfg := latency.DefaultClusteredConfig()
	cfg.ENsPerCluster = 125
	if scale == Full {
		cfg.TotalPeers = 2500
	} else {
		cfg.TotalPeers = 1200
	}
	return cfg
}

// AblationRow is one configuration's scores.
type AblationRow struct {
	Name       string
	PExact     float64
	PCluster   float64
	MeanProbes float64
}

// AblationResult is a set of rows with a title.
type AblationResult struct {
	Title string
	Note  string
	Rows  []AblationRow
}

// Render prints the table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-24s %10s %12s %12s\n", "configuration", "P(exact)", "P(cluster)", "probes/query")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %10.3f %12.3f %12.1f\n", row.Name, row.PExact, row.PCluster, row.MeanProbes)
	}
	if r.Note != "" {
		fmt.Fprintf(&b, "%s\n", r.Note)
	}
	return b.String()
}

// scoreFinder runs nQueries queries of a finder over a clustered matrix and
// scores exact/cluster hits and probe cost.
func scoreFinder(f overlay.Finder, m latency.Matrix, gt *latency.GroundTruth, members, targets []int, nQueries int, seed int64) AblationRow {
	src := rng.New(seed)
	exact, inCluster := 0, 0
	var probes int64
	for q := 0; q < nQueries; q++ {
		tgt := targets[src.Intn(len(targets))]
		res := f.FindNearest(tgt)
		probes += res.Probes
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer {
			exact++
		}
		if res.Peer >= 0 && gt.SameCluster(res.Peer, tgt) {
			inCluster++
		}
	}
	return AblationRow{
		PExact:     float64(exact) / float64(nQueries),
		PCluster:   float64(inCluster) / float64(nQueries),
		MeanProbes: float64(probes) / float64(nQueries),
	}
}

// AblationHypervolume (A1) compares Meridian's ring-selection strategies
// under the clustering condition.
func AblationHypervolume(scale Scale, seed int64) *AblationResult {
	cfg := ablationClusterCfg(scale)
	_, _, queries, _ := scaleParams(scale)
	m, gt := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), 60, seed+1)
	out := &AblationResult{
		Title: "Ablation A1: Meridian ring-member selection under clustering (125 ENs/cluster)",
		Note:  "paper §2.3: hypervolume maximisation cannot help when the space is not doubling —\nall selections should score alike here",
	}
	for _, sel := range []meridian.RingSelection{meridian.SelectHypervolume, meridian.SelectMaxMin, meridian.SelectRandom} {
		mc := meridian.DefaultConfig()
		mc.Selection = sel
		net := overlay.NewNetwork(m)
		o := meridian.New(net, members, mc, seed+2)
		row := scoreFinder(o, m, gt, members, targets, queries, seed+3)
		row.Name = sel.String()
		out.Rows = append(out.Rows, row)
	}
	return out
}

// AblationBetaSweep (A2) sweeps Meridian's β threshold: accuracy vs probes.
func AblationBetaSweep(scale Scale, seed int64) *AblationResult {
	cfg := ablationClusterCfg(scale)
	_, _, queries, _ := scaleParams(scale)
	m, gt := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), 60, seed+1)
	out := &AblationResult{
		Title: "Ablation A2: Meridian β sweep under clustering",
		Note:  "β trades probes for accuracy (the paper's footnote 5); no β escapes the\nclustering condition",
	}
	for _, beta := range []float64{0.25, 0.5, 0.75, 0.9} {
		mc := meridian.DefaultConfig()
		mc.Beta = beta
		net := overlay.NewNetwork(m)
		o := meridian.New(net, members, mc, seed+2)
		row := scoreFinder(o, m, gt, members, targets, queries, seed+3)
		row.Name = fmt.Sprintf("beta=%.2f", beta)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// AblationRingSize (A6) sweeps nodes per ring.
func AblationRingSize(scale Scale, seed int64) *AblationResult {
	cfg := ablationClusterCfg(scale)
	_, _, queries, _ := scaleParams(scale)
	m, gt := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), 60, seed+1)
	out := &AblationResult{
		Title: "Ablation A6: Meridian ring size under clustering",
		Note:  "bigger rings probe more of the cluster per hop — brute force in disguise",
	}
	for _, k := range []int{8, 16, 32} {
		mc := meridian.DefaultConfig()
		mc.RingSize = k
		net := overlay.NewNetwork(m)
		o := meridian.New(net, members, mc, seed+2)
		row := scoreFinder(o, m, gt, members, targets, queries, seed+3)
		row.Name = fmt.Sprintf("ring=%d", k)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// AblationAlgorithmComparison (A3) scores every implemented nearest-peer
// algorithm on one clustered matrix, with realistic probe jitter.
func AblationAlgorithmComparison(scale Scale, seed int64) *AblationResult {
	cfg := ablationClusterCfg(scale)
	_, _, queries, _ := scaleParams(scale)
	queries /= 2 // several algorithms probe heavily
	m, gt := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), 60, seed+1)
	out := &AblationResult{
		Title: "Ablation A3: all algorithms under the clustering condition (125 ENs/cluster, 3% probe jitter)",
		Note:  "paper §2.3/§6: every latency-only scheme fails to find the exact (same-EN) peer",
	}

	mkNet := func() *overlay.Network {
		net := overlay.NewNetwork(m)
		net.SetNoise(0.03, 0.3, seed+7)
		return net
	}

	finders := []struct {
		name  string
		build func() overlay.Finder
	}{
		{"meridian", func() overlay.Finder {
			return meridian.New(mkNet(), members, meridian.DefaultConfig(), seed+2)
		}},
		{"karger-ruhl", func() overlay.Finder {
			return kargerruhl.New(mkNet(), members, kargerruhl.DefaultConfig(), seed+2)
		}},
		{"tapestry", func() overlay.Finder {
			return tapestry.New(mkNet(), members, tapestry.DefaultConfig(), seed+2)
		}},
		{"tiers", func() overlay.Finder {
			return tiers.New(mkNet(), members, tiers.DefaultConfig(), seed+2)
		}},
		{"vivaldi-coords", func() overlay.Finder {
			sys := vivaldi.Build(mkNet(), members, vivaldi.DefaultConfig(), seed+2)
			return &vivaldi.Finder{Sys: sys, PlacementProbes: 16, VerifyTop: 8}
		}},
		{"pic", func() overlay.Finder {
			sys := vivaldi.Build(mkNet(), members, vivaldi.DefaultConfig(), seed+2)
			return pic.New(sys, pic.DefaultConfig(), seed+3)
		}},
		{"guyton-schwartz", func() overlay.Finder {
			return &beacon.GuytonSchwartz{Inf: beacon.New(mkNet(), members, beacon.DefaultConfig(), seed+2)}
		}},
		{"beaconing", func() overlay.Finder {
			return &beacon.Beaconing{Inf: beacon.New(mkNet(), members, beacon.DefaultConfig(), seed+2)}
		}},
	}
	for _, f := range finders {
		row := scoreFinder(f.build(), m, gt, members, targets, queries, seed+4)
		row.Name = f.name
		out.Rows = append(out.Rows, row)
	}
	return out
}

// UCLDepthRow is one tracked-router-count configuration.
type UCLDepthRow struct {
	Depth int
	// FoundUnder5ms is the fraction of queries that found a peer under
	// 5 ms RTT (the paper: 3 routers → 50%, ~6 → 75%, among pairs that
	// have such a peer).
	FoundUnder5ms float64
	// SameEN is the fraction that found a same-end-network peer when one
	// exists.
	SameEN float64
	// MeanProbes is the mean probes per query.
	MeanProbes float64
}

// UCLDepthResult is the A4 ablation output.
type UCLDepthResult struct {
	Queries int
	Rows    []UCLDepthRow
}

// AblationUCLDepth (A4) sweeps the number of routers each peer tracks.
func AblationUCLDepth(scale Scale, seed int64) *UCLDepthResult {
	env := SharedEnv(scale, seed)
	peers := env.ResponsivePeers()
	if len(peers) > 2500 {
		peers = peers[:2500]
	}
	nodes := make([]string, len(peers))
	for i, p := range peers {
		nodes[i] = env.Top.Host(p).IP.String()
	}
	anchors := env.VantageHosts()

	// Queriers: peers that have a same-EN partner among the peers (the
	// population where the UCL should shine).
	var queriers []netmodel.HostID
	for _, p := range peers {
		for _, q := range peers {
			if q != p && env.Top.SameEN(p, q) {
				queriers = append(queriers, p)
				break
			}
		}
		if len(queriers) >= 120 {
			break
		}
	}
	out := &UCLDepthResult{Queries: len(queriers)}
	for _, depth := range []int{1, 2, 3, 4, 6, 8} {
		cfg := ucl.DefaultConfig()
		cfg.TrackDepth = depth
		sys := ucl.New(env.Tools, nodes, anchors, cfg)
		for _, p := range peers {
			sys.Join(p)
		}
		var under5, sameEN, probes int
		for _, q := range queriers {
			res := sys.FindNearest(q)
			probes += res.Probes
			if res.Peer >= 0 && res.RTTms < 5 {
				under5++
			}
			if res.Peer >= 0 && env.Top.SameEN(q, res.Peer) {
				sameEN++
			}
		}
		n := float64(len(queriers))
		out.Rows = append(out.Rows, UCLDepthRow{
			Depth:         depth,
			FoundUnder5ms: float64(under5) / n,
			SameEN:        float64(sameEN) / n,
			MeanProbes:    float64(probes) / n,
		})
	}
	return out
}

// Render prints the depth sweep.
func (r *UCLDepthResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A4: UCL tracked-router depth (queriers with a same-EN partner, n=%d)\n", r.Queries)
	fmt.Fprintf(&b, "%8s %14s %10s %12s\n", "depth", "found <5ms", "same-EN", "probes/query")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.2f %10.2f %12.1f\n", row.Depth, row.FoundUnder5ms, row.SameEN, row.MeanProbes)
	}
	b.WriteString("paper §5: ~3 routers give a 50% chance of discovering peers under 5 ms, ~6 give 75%\n")
	return b.String()
}

// CompositeRow scores one composite-service configuration.
type CompositeRow struct {
	Name       string
	SameEN     float64
	MedianRTT  float64
	MeanProbes float64
}

// CompositeResult is the A5 ablation output.
type CompositeResult struct {
	Queries int
	Rows    []CompositeRow
}

// AblationComposite (A5) compares the full cascade against Meridian-only on
// the generated Internet, for joining peers that have a same-EN partner.
func AblationComposite(scale Scale, seed int64) *CompositeResult {
	env := SharedEnv(scale, seed)
	peers := env.ResponsivePeers()
	if len(peers) > 1500 {
		peers = peers[:1500]
	}
	var queriers []netmodel.HostID
	for _, p := range peers {
		for _, q := range peers {
			if q != p && env.Top.SameEN(p, q) {
				queriers = append(queriers, p)
				break
			}
		}
		if len(queriers) >= 60 {
			break
		}
	}
	out := &CompositeResult{Queries: len(queriers)}

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"meridian-only", func() core.Config {
			c := core.DefaultConfig()
			c.UseMulticast, c.UseUCL, c.UsePrefix = false, false, false
			return c
		}()},
		{"ucl-only", func() core.Config {
			c := core.DefaultConfig()
			c.UseMulticast, c.UsePrefix, c.UseMeridian = false, false, false
			return c
		}()},
		{"full-cascade", core.DefaultConfig()},
	}
	for _, cc := range configs {
		svc := core.NewService(env.Top, env.Tools, peers, cc.cfg, seed+5)
		var sameEN int
		var probes int64
		var rtts []float64
		for _, q := range queriers {
			res := svc.FindNearest(q)
			probes += res.Probes
			if res.Peer >= 0 {
				rtts = append(rtts, res.RTTms)
				if env.Top.SameEN(q, res.Peer) {
					sameEN++
				}
			}
		}
		out.Rows = append(out.Rows, CompositeRow{
			Name:       cc.name,
			SameEN:     float64(sameEN) / float64(len(queriers)),
			MedianRTT:  medianFloat(rtts),
			MeanProbes: float64(probes) / float64(len(queriers)),
		})
	}
	return out
}

// Render prints the comparison.
func (r *CompositeResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A5: composite cascade vs Meridian-only (queriers with same-EN partner, n=%d)\n", r.Queries)
	fmt.Fprintf(&b, "%-16s %10s %14s %14s\n", "configuration", "same-EN", "median RTT(ms)", "probes/query")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.2f %14.3f %14.1f\n", row.Name, row.SameEN, row.MedianRTT, row.MeanProbes)
	}
	b.WriteString("paper §5: the hints find same-LAN peers that latency-only search misses\n")
	return b.String()
}
