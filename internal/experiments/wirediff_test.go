package experiments

import (
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rendezvous"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// TestWireFindersMatchStaticLossless is the differential acceptance test of
// the wired algorithm zoo: at 0% loss with no churn, every wired finder
// must return the exact peer its static oracle returns for the same query
// stream — the wire may charge messages and virtual time, but it must not
// change the answer. Each scheme gets two same-seed base structures over
// the same matrix (one queried statically, one driven through its registry
// wire deployment), so per-query RNG draws align and any divergence is a
// protocol bug, not noise.
func TestWireFindersMatchStaticLossless(t *testing.T) {
	env := SharedEnv(Quick, 1)
	peers := MitigationPeers(env, 80)
	const queries = 12
	const seed = int64(1)

	members := make([]int, len(peers))
	for i := range peers {
		members[i] = i
	}
	targets := make([]int, queries)
	src := rng.New(seed + 3)
	for i := range targets {
		targets[i] = src.Intn(len(peers))
	}

	type diffCase struct {
		name   string
		deploy func(m latency.Matrix, rt *p2p.Runtime) (static overlay.Finder, d wireDeployment)
	}
	var cases []diffCase
	for _, name := range []string{"guyton", "beaconing", "tiers", "pic", "tapestry", "azureus", "kargerruhl"} {
		leg, ok := finderLegs[name]
		if !ok {
			t.Fatalf("scheme %q is not a finderScheme entry", name)
		}
		cases = append(cases, diffCase{name, func(m latency.Matrix, rt *p2p.Runtime) (overlay.Finder, wireDeployment) {
			static := leg.build(overlay.NewNetwork(m), members, seed)
			return static, leg.wire(rt, leg.build(overlay.NewNetwork(m), members, seed))
		}})
	}
	// rendezvous is not a finderScheme (its directory keys on end networks
	// and its wire has a registration bring-up), so mirror its registry
	// deploy by hand.
	cases = append(cases, diffCase{"rendezvous", func(m latency.Matrix, rt *p2p.Runtime) (overlay.Finder, wireDeployment) {
		static := rendezvous.NewDirectory(overlay.NewNetwork(m), members, rendezvousENOf(env, peers))
		w := rendezvous.NewWire(rt, rendezvous.NewDirectory(overlay.NewNetwork(m), members, rendezvousENOf(env, peers)))
		return static, wireDeployment{
			join: w.Join,
			bringup: func(done func()) {
				var next func(i int)
				next = func(i int) {
					if i >= len(members) {
						done()
						return
					}
					w.Register(p2p.NodeID(members[i]), func(bool) { next(i + 1) })
				}
				next(0)
			},
			find: w.FindNearest,
		}
	}})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
			kernel := sim.New()
			rt := p2p.New(kernel, m, p2p.Config{}, seed)
			static, d := tc.deploy(m, rt)
			for i := range members {
				d.join(p2p.NodeID(i))
			}

			wirePeer := make([]int, queries)
			q := 0
			var step func()
			step = func() {
				if q >= queries {
					kernel.Stop()
					return
				}
				slot := q
				q++
				d.find(p2p.NodeID(targets[slot]), func(r p2p.FindResult) {
					wirePeer[slot] = -1
					if r.Found {
						wirePeer[slot] = int(r.Peer)
					}
					kernel.After(100*time.Millisecond, step)
				})
			}
			kernel.At(wireFinderBringup, func() {
				if d.bringup != nil {
					d.bringup(step)
					return
				}
				step()
			})
			kernel.At(time.Hour, kernel.Stop) // watchdog
			kernel.Run()
			if q < queries {
				t.Fatalf("wire run stalled after %d/%d queries", q, queries)
			}

			for i, idx := range targets {
				res := static.FindNearest(idx)
				want := -1
				if res.Peer >= 0 {
					want = res.Peer
				}
				if wirePeer[i] != want {
					t.Errorf("query %d (from member %d): wire returned peer %d, static oracle returned %d",
						i, idx, wirePeer[i], want)
				}
			}
		})
	}
}
