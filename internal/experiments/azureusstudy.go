package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nearestpeer/internal/cluster"
	"nearestpeer/internal/stats"
)

// This file reproduces the Section 3.2 Azureus study behind Figures 6 and
// 7: the vantage-point pipeline over the synthetic peer population.

var (
	azMu    sync.Mutex
	azCache = map[*Env]*cluster.Result{}
)

// AzureusStudy runs (cached) the clustering pipeline over the environment's
// population.
func AzureusStudy(env *Env) *cluster.Result {
	azMu.Lock()
	defer azMu.Unlock()
	if r, ok := azCache[env]; ok {
		return r
	}
	r := cluster.Run(env.Tools, env.Vantages, env.Population.Hosts, cluster.DefaultConfig())
	azCache[env] = r
	return r
}

// ComputeAzureusStudy runs the pipeline without caching (benchmarks time it).
func ComputeAzureusStudy(env *Env) *cluster.Result {
	return cluster.Run(env.Tools, env.Vantages, env.Population.Hosts, cluster.DefaultConfig())
}

// Fig6Result is the Figure 6 reproduction: the distribution of cluster
// sizes before and after pruning.
type Fig6Result struct {
	Candidates     int
	Responsive     int
	UniqueUpstream int
	// SizesUnpruned and SizesPruned are cluster sizes, descending.
	SizesUnpruned []int
	SizesPruned   []int
	// FracPruned25 is the fraction of surviving peers in pruned clusters
	// of size >= 25 (paper: ~16%).
	FracPruned25 float64
}

// Fig6 computes the figure.
func Fig6(env *Env) *Fig6Result { return Fig6From(AzureusStudy(env)) }

// Fig6From computes the figure from an existing pipeline result.
func Fig6From(res *cluster.Result) *Fig6Result {
	out := &Fig6Result{
		Candidates:     res.Candidates,
		Responsive:     res.Responsive,
		UniqueUpstream: res.UniqueUpstream,
		SizesUnpruned:  cluster.SizeDistribution(res.Clusters),
		SizesPruned:    cluster.SizeDistribution(res.Pruned),
		FracPruned25:   cluster.FractionInClustersOfAtLeast(res.Pruned, res.UniqueUpstream, 25),
	}
	return out
}

// cumulativeAtSizes renders the paper's axis: for each size threshold, the
// number of peers in clusters of size <= threshold.
func cumulativeAtSizes(sizes []int, thresholds []int) []int {
	asc := append([]int(nil), sizes...)
	sort.Ints(asc)
	out := make([]int, len(thresholds))
	for ti, th := range thresholds {
		total := 0
		for _, s := range asc {
			if s <= th {
				total += s
			}
		}
		out[ti] = total
	}
	return out
}

// Render prints the cumulative cluster-size distribution.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: cluster sizes before/after pruning\n")
	fmt.Fprintf(&b, "pipeline: %d addresses -> %d responsive -> %d unique-upstream\n",
		r.Candidates, r.Responsive, r.UniqueUpstream)
	fmt.Fprintf(&b, "(paper: 156,658 -> 22,796 responsive -> 5,904 unique-upstream)\n")
	thresholds := []int{1, 2, 5, 10, 25, 50, 100, 200, 500}
	unp := cumulativeAtSizes(r.SizesUnpruned, thresholds)
	pru := cumulativeAtSizes(r.SizesPruned, thresholds)
	fmt.Fprintf(&b, "%10s %18s %18s\n", "size<=", "peers (unpruned)", "peers (pruned)")
	for i, th := range thresholds {
		fmt.Fprintf(&b, "%10d %18d %18d\n", th, unp[i], pru[i])
	}
	fmt.Fprintf(&b, "fraction of peers in pruned clusters >=25: %.1f%% (paper: ~16%%)\n",
		r.FracPruned25*100)
	return b.String()
}

// Fig7Result is the Figure 7 reproduction: hub-to-peer latency
// distributions of the five largest pruned clusters.
type Fig7Result struct {
	// Sizes of the five clusters, descending.
	Sizes []int
	// CDFs of hub-to-peer latencies, parallel to Sizes.
	CDFs []*stats.CDF
}

// Fig7 computes the figure.
func Fig7(env *Env) *Fig7Result { return Fig7From(AzureusStudy(env)) }

// Fig7From computes the figure from an existing pipeline result.
func Fig7From(res *cluster.Result) *Fig7Result {
	clusters := append([]cluster.Cluster(nil), res.Pruned...)
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i].Peers) > len(clusters[j].Peers) })
	n := 5
	if n > len(clusters) {
		n = len(clusters)
	}
	out := &Fig7Result{}
	for _, c := range clusters[:n] {
		lats := make([]float64, len(c.Peers))
		for i, p := range c.Peers {
			lats[i] = p.HubLatMs
		}
		out.Sizes = append(out.Sizes, len(c.Peers))
		out.CDFs = append(out.CDFs, stats.NewCDF(lats))
	}
	return out
}

// Render prints the five distributions as cumulative counts.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: hub-to-peer latency distribution, 5 largest pruned clusters\n")
	fmt.Fprintf(&b, "cluster sizes: %v (paper: 235, 139, 113, 79, 73)\n", r.Sizes)
	fmt.Fprintf(&b, "%10s", "lat(ms)<=")
	for i := range r.CDFs {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("c%d(n=%d)", i+1, r.Sizes[i]))
	}
	b.WriteByte('\n')
	for _, x := range []float64{5, 10, 20, 50, 100} {
		fmt.Fprintf(&b, "%10.0f", x)
		for _, c := range r.CDFs {
			fmt.Fprintf(&b, " %9d", c.CountAtMost(x))
		}
		b.WriteByte('\n')
	}
	b.WriteString("paper: most cluster peers sit at 10-100 ms from the hub, i.e. in distinct end-networks\n")
	return b.String()
}

// Table1Result reproduces Table 1: the vantage points.
type Table1Result struct {
	Rows [][3]string // name, paper location, simulated city
}

// Table1 lists the vantage points.
func Table1(env *Env) *Table1Result {
	out := &Table1Result{}
	for _, v := range env.Vantages {
		out.Rows = append(out.Rows, [3]string{v.Name, v.Location, v.City})
	}
	return out
}

// Render prints the table.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: vantage points (paper's PlanetLab nodes -> simulated cities)\n")
	fmt.Fprintf(&b, "%-34s %-20s %-16s\n", "Vantage Point", "Location (paper)", "Simulated City")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-34s %-20s %-16s\n", row[0], row[1], row[2])
	}
	return b.String()
}
