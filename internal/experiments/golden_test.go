package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nearestpeer/internal/engine"
)

// The golden figure files pin the deterministic quick-scale output of the
// wire studies byte for byte. They exist so that performance work on the
// hot paths underneath them — the event representation in internal/sim,
// the latency pricing in internal/netmodel, the send path and multicast
// index in internal/p2p — cannot change a single figure byte without the
// diff showing up here. Regenerate with
//
//	go test ./internal/experiments -run TestGoldenQuickFigures -update
//
// and commit the diff only when a figure change is intended.
var updateGolden = flag.Bool("update", false, "rewrite the golden figure files")

func goldenPath(name string) string {
	return filepath.Join("testdata", name)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden output.\nIf the figure change is intended, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenQuickFigures asserts the quick-scale c1, c2 and s1 figures are
// byte-identical to the goldens captured before the allocation-free wire
// hot path landed: the typed-payload event representation, the SoA latency
// table, the pair RTT cache and the multicast sender index must be
// invisible in every figure byte. c1 additionally runs at two worker
// counts, so the goldens also witness the engine's schedule-independence
// contract end to end (s1 has its own cross-worker test).
func TestGoldenQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale studies are too heavy for -short")
	}
	t.Run("c1", func(t *testing.T) {
		prev := engine.SetWorkers(1)
		defer engine.SetWorkers(prev)
		serial := ChurnStudy(Quick, 1).Render()
		engine.SetWorkers(8)
		parallel := ChurnStudy(Quick, 1).Render()
		if serial != parallel {
			t.Fatalf("c1 differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", serial, parallel)
		}
		checkGolden(t, "golden_c1_quick.txt", serial)
	})
	t.Run("c2", func(t *testing.T) {
		checkGolden(t, "golden_c2_quick.txt", MitigationStudy(Quick, 1).Render())
	})
	t.Run("s1", func(t *testing.T) {
		checkGolden(t, "golden_s1_quick.txt", ScaleStudy(Quick, 1).Render())
	})
	// o1 runs at two worker counts like c1/v1: the observability layer
	// must not perturb the schedule, so the figure it reads off the runs
	// is held to the same byte-identical bar.
	t.Run("o1", func(t *testing.T) {
		prev := engine.SetWorkers(1)
		defer engine.SetWorkers(prev)
		serial := ObsStudy(Quick, 1).Render()
		engine.SetWorkers(8)
		parallel := ObsStudy(Quick, 1).Render()
		if serial != parallel {
			t.Fatalf("o1 differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", serial, parallel)
		}
		checkGolden(t, "golden_o1_quick.txt", serial)
	})
	// r1 runs at two worker counts as well: the robustness figure is the
	// acceptance artifact of the fault plane, and every fault decision is
	// a stateless hash, so the figure must not move by a byte across
	// -workers (each cell is one serial kernel, so -shards is trivially
	// invariant too).
	t.Run("r1", func(t *testing.T) {
		prev := engine.SetWorkers(1)
		defer engine.SetWorkers(prev)
		serial := FaultStudy(Quick, 1).Render()
		engine.SetWorkers(8)
		parallel := FaultStudy(Quick, 1).Render()
		if serial != parallel {
			t.Fatalf("r1 differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", serial, parallel)
		}
		checkGolden(t, "golden_r1_quick.txt", serial)
	})
	// g1 runs at two worker counts as well: the grand table is the
	// acceptance artifact of the scheme registry — every registered scheme
	// through one methodology — and each row is one serial kernel, so the
	// figure must not move by a byte across -workers (or -shards, which
	// only touches scale-study cells).
	t.Run("g1", func(t *testing.T) {
		prev := engine.SetWorkers(1)
		defer engine.SetWorkers(prev)
		serial := GrandStudy(Quick, 1).Render()
		engine.SetWorkers(8)
		parallel := GrandStudy(Quick, 1).Render()
		if serial != parallel {
			t.Fatalf("g1 differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", serial, parallel)
		}
		checkGolden(t, "golden_g1_quick.txt", serial)
	})
	// v1 runs at two worker counts like c1: the acceptance bar for the
	// Vivaldi study is byte-identical output across -workers, witnessed by
	// the same golden.
	t.Run("v1", func(t *testing.T) {
		prev := engine.SetWorkers(1)
		defer engine.SetWorkers(prev)
		serial := VivaldiStudy(Quick, 1).Render()
		engine.SetWorkers(8)
		parallel := VivaldiStudy(Quick, 1).Render()
		if serial != parallel {
			t.Fatalf("v1 differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", serial, parallel)
		}
		checkGolden(t, "golden_v1_quick.txt", serial)
	})
}
