// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the A1-A6 ablations. Each experiment is a
// pure function of (Scale, seed) returning a result with a Render method
// that prints the same rows/series the paper reports; cmd/figures writes
// them to results/, and bench_test.go wraps each one in a testing.B
// benchmark.
package experiments

import (
	"sync"

	"nearestpeer/internal/azureus"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// Scale selects experiment sizing. Quick keeps unit tests and benchmarks
// fast; Full reproduces the paper's population sizes (156,658 Azureus
// addresses, ~20k DNS servers, ~2.5k-peer Meridian overlays with 5,000
// queries × 3 runs).
type Scale int

// The two scales.
const (
	Quick Scale = iota
	Full
)

// String names the scale for figure headers and flags.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Env is the shared measurement environment for the Section 3 and Section
// 5 experiments: one generated Internet, the measurement toolkit, seven
// vantage points and a measurement host.
type Env struct {
	Scale    Scale
	Seed     int64
	Top      *netmodel.Topology
	Tools    *measure.Tools
	Vantages []measure.Vantage
	// MH is the single measurement host used for rockettrace and King
	// (the paper ran those from one machine).
	MH netmodel.HostID
	// Population is the Azureus-style address list.
	Population azureus.Population
}

// quickTopoConfig is a mid-size topology for Quick scale: big enough to
// show every effect, small enough for tests.
func quickTopoConfig() netmodel.Config {
	c := netmodel.MeasurementConfig()
	c.NCities = 16
	c.NASes = 7
	c.ASCityCoverage = 0.4
	c.MinENsPerPoP, c.MaxENsPerPoP = 6, 24
	c.MeanHomesPerPoP = 250
	c.HomesCapMult = 18
	c.BRASCapacity = 5000
	return c
}

// populationSize returns the Azureus address-list size per scale.
func populationSize(s Scale) int {
	if s == Full {
		return azureus.PaperPopulationSize
	}
	return 12000
}

// NewEnv builds an environment. Environments are immutable once built;
// experiments must not mutate the topology.
func NewEnv(scale Scale, seed int64) *Env {
	cfg := quickTopoConfig()
	if scale == Full {
		cfg = netmodel.MeasurementConfig()
	}
	top := netmodel.Generate(cfg, seed)
	tools := measure.NewTools(top, measure.DefaultConfig(), seed+1)
	vs, err := measure.SelectVantages(top, 7)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return &Env{
		Scale:      scale,
		Seed:       seed,
		Top:        top,
		Tools:      tools,
		Vantages:   vs,
		MH:         vs[2].Host, // the Cornell node, as in the paper's DNS study
		Population: azureus.Sample(top, populationSize(scale), 0.85, seed+2),
	}
}

// VantageHosts returns the vantage host IDs.
func (e *Env) VantageHosts() []netmodel.HostID {
	out := make([]netmodel.HostID, len(e.Vantages))
	for i, v := range e.Vantages {
		out[i] = v.Host
	}
	return out
}

// ResponsivePeers returns the population members that yield a latency to a
// TCP ping or traceroute — the paper's 22,796-peer Section 5 set.
func (e *Env) ResponsivePeers() []netmodel.HostID {
	var out []netmodel.HostID
	for _, p := range e.Population.Hosts {
		h := e.Top.Host(p)
		if h.RespondsTCP || h.RespondsPing {
			out = append(out, p)
		}
	}
	return out
}

// Shared environments are expensive (the Full topology alone is ~half a
// million hosts), so experiments within one process share them per
// (scale, seed).
var (
	envMu    sync.Mutex
	envCache = map[[2]int64]*Env{}
)

// SharedEnv returns a cached environment for (scale, seed).
func SharedEnv(scale Scale, seed int64) *Env {
	envMu.Lock()
	defer envMu.Unlock()
	key := [2]int64{int64(scale), seed}
	if e, ok := envCache[key]; ok {
		return e
	}
	e := NewEnv(scale, seed)
	envCache[key] = e
	return e
}
