package experiments

import (
	"fmt"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/stats"
)

// This file is the robustness study (figure r1): the nearest-peer schemes
// under the deterministic fault plane of internal/faults, with and without
// the retry-with-backoff policy layer. Every cell runs one scheme
// (Meridian walk, Chord lookup, Vivaldi coordinate search) under one fault
// condition — no faults, a loss burst, a delay spike, a 20% bidirectional
// partition, or a crash-and-restart of a tenth of the overlay — and the
// query stream is paced on a fixed virtual-time cadence so the queries
// sample the timeline before, during and after the fault window. The
// figure reports the success rate, the latency the fault adds at the tail
// (cell p99 minus the same scheme-and-policy no-fault p99), the stretch of
// the returned peer against the matrix oracle, and the fault plane's own
// accounting (drops, delays, retries, timeouts). Every fault decision is a
// stateless hash of (plan seed, rule, src, dst, window), and every cell is
// one serial-kernel engine trial, so the figure is byte-identical at any
// -workers and any -shards.

// faultStudyHorizon caps a cell's virtual time as a watchdog and bounds
// the protocols' own maintenance schedules.
const faultStudyHorizon = 30 * time.Minute

// faultQueryEvery is the query cadence: one lookup per tick, timed from
// the scheme's query start, so the fault window (anchored a quarter of the
// way into the stream and lasting half of it) is sampled on both edges.
const faultQueryEvery = 10 * time.Second

// faultRetryPolicy is the "retry on" column: three attempts with
// exponentially backed-off, jittered spacing. The backoff is wider than
// the plan's decision window, so a retried attempt lands in a fresh
// window and gets a fresh loss draw — the recovery the figure measures.
func faultRetryPolicy() p2p.Policy {
	return p2p.Policy{Attempts: 3, BaseBackoff: 300 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}
}

// FaultCell is one (scheme, condition, retry) cell of the r1 figure.
type FaultCell struct {
	// Scheme is "meridian", "chord" or "vivaldi"; Cond names the fault
	// condition; Retry reports whether the retry policy layer was armed.
	Scheme, Cond string
	Retry        bool
	// Peers is the matrix population; Members the overlay membership;
	// Lookups the queries issued.
	Peers, Members, Lookups int
	// Done is the fraction of lookups that completed with a positive
	// answer.
	Done float64
	// P50/P99 are lookup-latency quantiles in virtual milliseconds over
	// every reported lookup, failures included (a failure's latency is the
	// timeout budget it burned — exactly the tail the fault inflates).
	P50, P99 float64
	// AddP99 is P99 minus the same scheme-and-policy no-fault P99: the
	// latency the fault condition adds at the tail.
	AddP99 float64
	// Stretch is the median ratio of the returned peer's true matrix RTT
	// to the oracle-nearest member's, over successful lookups (the v1
	// convention). Negative means not applicable (Chord resolves keys, not
	// proximity) or no successes.
	Stretch float64
	// Retries/Dropped/Delayed/Duplicated/Timeouts are the run's transport
	// totals: extra attempts charged by the policy layer, messages the
	// fault plane ate, delayed or duplicated, and RPC timeouts.
	Retries, Dropped, Delayed, Duplicated, Timeouts int64
	// WallMs is the only non-deterministic field, reported by RenderTiming
	// and excluded from Render.
	WallMs float64
}

// FaultStudyResult is the figure r1 output.
type FaultStudyResult struct {
	Seed           int64
	Peers, Targets int
	Lookups        int
	Cells          []FaultCell
}

// faultStudyParams returns (peers, targets, lookups) per scale.
func faultStudyParams(s Scale) (peers, targets, lookups int) {
	if s == Full {
		return 1000, 60, 100
	}
	return 100, 12, 30
}

// faultCondition is one column of the fault sweep: a name and a plan
// builder anchored to the cell's query phase (start) and stream length
// (span). A nil plan is the no-fault baseline.
type faultCondition struct {
	name string
	plan func(start, span time.Duration, peers int, members []int) *faults.Plan
}

// faultStudyConditions is the condition sweep. Every fault window opens a
// quarter of the way into the query stream and closes three quarters in,
// so the stream measures healthy, afflicted and healed traffic in one run.
func faultStudyConditions() []faultCondition {
	window := func(start, span time.Duration) (at, dur time.Duration) {
		return start + span/4, span / 2
	}
	return []faultCondition{
		{"no faults", func(time.Duration, time.Duration, int, []int) *faults.Plan { return nil }},
		{"burst loss 30%", func(start, span time.Duration, _ int, _ []int) *faults.Plan {
			at, dur := window(start, span)
			return &faults.Plan{Seed: 11, Rules: []faults.Rule{
				{Kind: faults.LossBurst, At: at, For: dur, Prob: 0.3,
					Src: faults.Everyone(), Dst: faults.Everyone()},
			}}
		}},
		{"delay spike 250ms", func(start, span time.Duration, _ int, _ []int) *faults.Plan {
			at, dur := window(start, span)
			return &faults.Plan{Seed: 11, Rules: []faults.Rule{
				{Kind: faults.DelaySpike, At: at, For: dur, ExtraMs: 250,
					Src: faults.Everyone(), Dst: faults.Everyone()},
			}}
		}},
		{"partition 20%", func(start, span time.Duration, peers int, _ []int) *faults.Plan {
			at, dur := window(start, span)
			return &faults.Plan{Seed: 11, Rules: []faults.Rule{
				{Kind: faults.Partition, At: at, For: dur,
					Src: faults.Range(0, peers/5-1), Dst: faults.Range(peers/5, peers-1)},
			}}
		}},
		{"crash+restart 10%", func(start, span time.Duration, _ int, members []int) *faults.Plan {
			at, dur := window(start, span)
			down := members[:len(members)/10]
			return &faults.Plan{Seed: 11, Rules: []faults.Rule{
				{Kind: faults.Crash, At: at, For: dur, Nodes: faults.List(down...)},
			}}
		}},
	}
}

// faultStudySchemes is the scheme sweep.
var faultStudySchemes = []string{"meridian", "chord", "vivaldi"}

// FaultStudy runs the study at the scale's default sizing.
func FaultStudy(scale Scale, seed int64) *FaultStudyResult {
	p, t, l := faultStudyParams(scale)
	return FaultStudyAt(p, t, l, seed)
}

// FaultStudyAt runs the study at an explicit sizing. The clustered matrix,
// the member/target split and the per-target oracle are built once and
// shared read-only; the (scheme, condition, retry) grid fans out across
// the engine pool, each cell on its own serial kernel.
func FaultStudyAt(peers, nTargets, lookups int, seed int64) *FaultStudyResult {
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = peers
	m, _ := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), nTargets, seed+1)

	// The stretch oracle: each target's true RTT to the nearest member of
	// the initial overlay. Crash and partition windows do not move it — the
	// oracle is the static ground truth the paper's Section 3 measures
	// against, not a live membership view.
	oracleMs := make(map[int]float64, len(targets))
	for _, tgt := range targets {
		oracleMs[tgt] = overlay.TrueNearest(m, tgt, members).LatencyMs
	}

	out := &FaultStudyResult{Seed: seed, Peers: m.N(), Targets: len(targets), Lookups: lookups}
	type cellSpec struct {
		scheme string
		cond   faultCondition
		retry  bool
	}
	var specs []cellSpec
	for _, s := range faultStudySchemes {
		for _, c := range faultStudyConditions() {
			for _, retry := range []bool{false, true} {
				specs = append(specs, cellSpec{s, c, retry})
			}
		}
	}
	out.Cells = engine.Map(engine.Config{Seed: seed, Label: "r1"}, specs,
		func(_ *engine.Trial, s cellSpec) FaultCell {
			start := time.Now()
			cell := faultCell(m, s.scheme, s.cond, s.retry, members, targets, oracleMs, lookups, seed)
			cell.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
			return cell
		})

	// AddP99 is a pure function of the finished cells: each row against its
	// own scheme-and-policy no-fault baseline.
	base := make(map[string]float64)
	for _, c := range out.Cells {
		if c.Cond == "no faults" {
			base[fmt.Sprintf("%s/%v", c.Scheme, c.Retry)] = c.P99
		}
	}
	for i := range out.Cells {
		c := &out.Cells[i]
		c.AddP99 = c.P99 - base[fmt.Sprintf("%s/%v", c.Scheme, c.Retry)]
	}
	return out
}

// faultCell stands one scheme up over the shared matrix, installs the
// condition's fault plan anchored at the scheme's query start, runs the
// cadenced query stream and reads the figure's numbers off the per-query
// records and the transport counters.
func faultCell(m latency.Matrix, scheme string, cond faultCondition, retry bool,
	members, targets []int, oracleMs map[int]float64, lookups int, seed int64) FaultCell {
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.DefaultConfig(), seed)

	var pol p2p.Policy
	if retry {
		pol = faultRetryPolicy()
	}

	ids := make([]p2p.NodeID, len(members))
	for i, id := range members {
		ids[i] = p2p.NodeID(id)
	}

	// Scheme bring-up via the registry: setup.issue runs one lookup,
	// reporting success plus the returned peer (-1 when there is none to
	// judge) and the issuing target so stretch can be scored against its
	// oracle; setup.queryStart is when the cadenced stream begins.
	origin := make([]int, lookups)
	for i := range origin {
		origin[i] = -1
	}
	s, err := schemeFor(scheme)
	if err != nil || s.Lookup == nil {
		panic("faultCell: unknown scheme " + scheme)
	}
	setup := s.Lookup(&lookupEnv{
		kernel: kernel, rt: rt, ids: ids, targets: targets,
		src: rng.New(seed + 3), horizon: faultStudyHorizon, retry: pol,
		opLabel: "r1", seed: seed,
	})
	queryStart := setup.queryStart

	span := time.Duration(lookups) * faultQueryEvery
	plan := cond.plan(queryStart, span, m.N(), members)
	if plan != nil {
		p2p.NewFaultTransport(rt, plan)
	}

	// The cadenced query stream. Each op reports exactly once: through the
	// scheme callback, or through the deadline watchdog (an issuing node
	// crashed by the plan takes its callbacks down with it — the op then
	// scores as a failure that burned the whole deadline).
	type opRec struct {
		reported, ok bool
		ms           float64
		peer         int
	}
	recs := make([]opRec, lookups)
	for op := 0; op < lookups; op++ {
		op := op
		kernel.At(queryStart+time.Duration(op)*faultQueryEvery, func() {
			issueAt := kernel.Now()
			report := func(ok bool, peer int) {
				r := &recs[op]
				if r.reported {
					return
				}
				r.reported, r.ok, r.peer = true, ok, peer
				r.ms = float64(kernel.Now()-issueAt) / float64(time.Millisecond)
			}
			kernel.After(wireOpDeadline, func() { report(false, -1) })
			origin[op] = setup.issue(op, report)
		})
	}
	kernel.At(queryStart+span+2*time.Minute, kernel.Stop)
	kernel.At(faultStudyHorizon, kernel.Stop)
	kernel.Run()

	cell := FaultCell{
		Scheme: scheme, Cond: cond.name, Retry: retry,
		Peers: m.N(), Members: len(members), Lookups: lookups,
		Stretch: -1,
	}
	done := 0
	var lat, stretches []float64
	for op, r := range recs {
		if !r.reported {
			continue
		}
		lat = append(lat, r.ms)
		if !r.ok {
			continue
		}
		done++
		if r.peer < 0 || origin[op] < 0 || r.peer == origin[op] {
			continue // chord (keys, not proximity) or nothing to judge
		}
		if oracle := oracleMs[origin[op]]; oracle > 0 {
			stretches = append(stretches, m.LatencyMs(origin[op], r.peer)/oracle)
		}
	}
	if len(stretches) > 0 {
		cell.Stretch = stats.Median(stretches)
	}
	cell.Done = float64(done) / float64(lookups)
	cell.P50 = stats.Quantile(lat, 0.50)
	cell.P99 = stats.Quantile(lat, 0.99)

	tm := rt.TotalMetrics()
	cell.Retries = tm.Retries
	cell.Dropped = tm.FaultDropped
	cell.Delayed = tm.FaultDelayed
	cell.Duplicated = tm.FaultDuplicated
	cell.Timeouts = tm.Timeouts
	return cell
}

// Render prints the deterministic figure (wall-clock lives in
// RenderTiming, as with s1/v1/o1).
func (r *FaultStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness study r1: nearest-peer search under the deterministic fault plane (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "%d peers, %d lookups/cell on a %s cadence; fault window opens 1/4 into the stream, closes 3/4 in;\n",
		r.Peers, r.Lookups, faultQueryEvery)
	b.WriteString("retry policy: 3 attempts, 300ms base backoff, x2, 20% jitter; +p99 is against the same row's no-fault\n" +
		"baseline; stretch = found/oracle RTT (median, v1 convention) — the clustered matrix's co-located members\n" +
		"make the oracle sub-millisecond, which is exactly the paper's hardness argument\n\n")
	fmt.Fprintf(&b, "%-9s %-19s %-5s %5s %9s %9s %9s %8s %8s %8s %8s %8s\n",
		"scheme", "condition", "retry", "done", "p50ms", "p99ms", "+p99ms",
		"stretch", "retries", "drops", "delays", "timeouts")
	for _, c := range r.Cells {
		retry := "off"
		if c.Retry {
			retry = "on"
		}
		stretch := "-"
		if c.Stretch >= 0 {
			stretch = fmt.Sprintf("%.2f", c.Stretch)
		}
		fmt.Fprintf(&b, "%-9s %-19s %-5s %5.2f %9.1f %9.1f %9.1f %8s %8d %8d %8d %8d\n",
			c.Scheme, c.Cond, retry, c.Done, c.P50, c.P99, c.AddP99,
			stretch, c.Retries, c.Dropped, c.Delayed, c.Timeouts)
	}
	b.WriteString("\nreading: the fault plane prices each failure mode differently, and retry is not a free\n" +
		"lunch — it recovers success where a failed lookup is cheap to re-ask (chord and the\n" +
		"vivaldi walk climb back toward their no-fault done rates, paying +p99 in backoff), but\n" +
		"a deadline-bounded walk that already routes around loss (meridian) spends its time\n" +
		"budget on retries instead; a delay spike that clears the RPC timeout behaves like\n" +
		"loss no matter how often it is retried, and a partition only heals by healing\n")
	return b.String()
}

// RenderTiming prints the wall-clock view (non-deterministic; printed to
// the terminal but never written into the figure file).
func (r *FaultStudyResult) RenderTiming() string {
	var b strings.Builder
	b.WriteString("r1 wall-clock (non-deterministic; excluded from the figure):\n")
	fmt.Fprintf(&b, "%-9s %-19s %-5s %12s\n", "scheme", "condition", "retry", "wall")
	for _, c := range r.Cells {
		retry := "off"
		if c.Retry {
			retry = "on"
		}
		fmt.Fprintf(&b, "%-9s %-19s %-5s %12s\n",
			c.Scheme, c.Cond, retry, time.Duration(c.WallMs*float64(time.Millisecond)).Round(time.Millisecond))
	}
	return b.String()
}
