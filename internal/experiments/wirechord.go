package experiments

import (
	"fmt"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// This file exercises the message-level Chord DHT by itself (no hint
// scheme on top): stand a ring up over a latency matrix, run sequential
// Put+Get pairs, and price the routing — the npsim `-runtime -algo chord`
// view of the substrate the Section 5 mitigations stand on.

// WireChordOpts configures one Chord exercise run.
type WireChordOpts struct {
	// Nodes caps the ring size (min with the matrix population).
	Nodes int
	// Ops is the number of sequential Put+Get pairs.
	Ops int
	// Loss is the one-way packet loss probability.
	Loss float64
	// Churn enables the membership process.
	Churn    bool
	ChurnCfg p2p.ChurnConfig
	// Seed drives the whole run.
	Seed int64
	// Horizon caps virtual time as a watchdog (default 2 h).
	Horizon time.Duration
	// Chord overrides the protocol configuration when non-zero (detected
	// by StabilizeEvery > 0). The scale study stretches the stabilize
	// period with ring size: maintenance cost per virtual second is
	// nodes/period, and a 100k ring on the 1 s default would spend the
	// whole run stabilizing.
	Chord p2p.ChordConfig
	// JoinSpacing staggers the join ramp (default 10 ms between joins).
	// Large rings shrink it so bring-up stays a bounded slice of the run.
	JoinSpacing time.Duration
	// Settle is the post-ramp convergence window before traffic starts
	// (default 20 s). Rings with a stretched stabilize period need a few
	// periods here.
	Settle time.Duration
	// Recorder, when non-nil, is attached to the runtime as the lookup
	// flight recorder (npsim -trace). It is passive: results are
	// byte-identical with or without it.
	Recorder *obs.Recorder
	// Faults, when non-nil, installs the deterministic fault plan on the
	// runtime (npsim -faults). Link-fault plans work on the sharded path
	// too; crash rules are serial-only (the transport rejects them).
	Faults *faults.Plan
	// Shards, when >= 1, runs the ring on a sharded kernel with that many
	// shards (Top required; loss, churn and the recorder are serial-only).
	// Results are byte-identical at every shard count — including 1, which
	// runs the same windowed path — but differ from the Shards == 0 legacy
	// serial path, whose op pacing has no cross-shard handoff delay.
	Shards int
	// Top is the topology whose PoP structure partitions the hosts and
	// whose cross-PoP latency floor sets the lookahead window. Required
	// when Shards >= 1; the matrix positions must be Top's host IDs.
	Top *netmodel.Topology
}

// WireChordRow reports the run.
type WireChordRow struct {
	Nodes, Ops int
	// PutOK and GetOK are the fractions of operations that were
	// acknowledged / returned the value just written.
	PutOK, GetOK float64
	// MeanHops and MeanRetries are routing RPCs and re-routed hops per
	// operation (lookup plus store/fetch fallbacks).
	MeanHops, MeanRetries float64
	// MeanMsgs is wire messages per operation, maintenance included.
	MeanMsgs float64
	// Timeouts and LookupFails total over the run.
	Timeouts    int64
	LookupFails int64
	// Leaves and Joins count churn events.
	Leaves, Joins int
	// Events is the total kernel events executed, bring-up and maintenance
	// included — the run's simulation cost.
	Events uint64
}

// RunWireChord joins nodes into a ring over the matrix, lets it converge,
// then drives sequential Put+Get pairs (each from a random live node)
// under the asked-for loss and churn.
func RunWireChord(m latency.Matrix, opts WireChordOpts) WireChordRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	if opts.Shards >= 1 {
		return runWireChordSharded(opts)
	}
	n := opts.Nodes
	if n <= 0 || n > m.N() {
		n = m.N()
	}
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	ccfg := opts.Chord
	if ccfg.StabilizeEvery <= 0 {
		ccfg = p2p.DefaultChordConfig()
	}
	ccfg.Horizon = opts.Horizon
	chord := p2p.NewChord(rt, ccfg, opts.Seed+1)
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = p2p.NodeID(i)
	}
	joinEnd := chordJoinRamp(kernel, chord, ids, opts.JoinSpacing)
	settle := opts.Settle
	if settle <= 0 {
		settle = chordSettle
	}

	var churn *p2p.Churn
	if opts.Churn {
		cc := opts.ChurnCfg
		if cc.MeanSession == 0 {
			cc = experimentChurnConfig()
		}
		cc.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, cc, opts.Seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { chord.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) { chord.Join(id) }
	}

	row := WireChordRow{Nodes: n}
	src := rng.New(opts.Seed + 3)
	putOK, getOK := 0, 0
	var hops, retries int64
	var msgsStart int64
	liveNode := func() p2p.NodeID {
		id := ids[src.Intn(len(ids))]
		for tries := 0; tries < 20 && !rt.Alive(id); tries++ {
			id = ids[src.Intn(len(ids))]
		}
		return id
	}
	startSeq, issued := sequenceOps(kernel, opts.Ops, func(op int, live func() bool, complete func(apply func())) {
		key := fmt.Sprintf("bench/%d", op)
		val := []byte(key)
		chord.Put(liveNode(), key, val, func(pr p2p.OpResult) {
			if !live() {
				return
			}
			hops += int64(pr.Hops)
			retries += int64(pr.Retries)
			row.LookupFails += int64(pr.LookupFails)
			if pr.OK {
				putOK++
			}
			chord.Get(liveNode(), key, func(gr p2p.OpResult) {
				complete(func() {
					hops += int64(gr.Hops)
					retries += int64(gr.Retries)
					row.LookupFails += int64(gr.LookupFails)
					if gr.OK {
						for _, v := range gr.Vals {
							if string(v) == key {
								getOK++
								break
							}
						}
					}
				})
			})
		})
	})
	kernel.At(joinEnd+settle, func() {
		if churn != nil {
			churn.Drive(ids)
		}
		msgsStart = rt.Metrics.MsgsSent
		startSeq()
	})
	kernel.At(opts.Horizon, kernel.Stop)
	kernel.Run()

	nOps := float64(*issued)
	if *issued == 0 {
		nOps = 1
	}
	row.Ops = *issued
	row.PutOK = float64(putOK) / nOps
	row.GetOK = float64(getOK) / nOps
	row.MeanHops = float64(hops) / nOps
	row.MeanRetries = float64(retries) / nOps
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-msgsStart) / nOps
	row.Timeouts = rt.Metrics.Timeouts
	row.Events = kernel.Executed
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// runWireChordSharded is the Shards >= 1 path: the same ring exercise on a
// sharded kernel. Hosts are partitioned PoP-atomically (every cross-shard
// pair is cross-PoP), the lookahead window is the topology's cross-PoP
// one-way floor, and each shard prices through its own RTT-cached matrix
// view. The sequential op chain hops between issuing nodes with Handoff
// delays that are topology constants, and the run is cut in virtual time
// (StopAt) when the last op completes — every coordinate the schedule
// depends on is shard-count-invariant, so the row is byte-identical at any
// Shards value (the determinism test pins 1 == 2 == 4).
func runWireChordSharded(opts WireChordOpts) WireChordRow {
	top := opts.Top
	if top == nil {
		panic("experiments: sharded wire chord needs a topology")
	}
	if opts.Loss != 0 || opts.Churn || opts.Recorder != nil {
		panic("experiments: loss, churn and the flight recorder are serial-only")
	}
	k := opts.Shards
	pop := top.NumHosts()
	n := opts.Nodes
	if n <= 0 || n > pop {
		n = pop
	}
	window := netmodel.Duration(top.MinCrossPoPOneWayMs())
	shk := sim.NewSharded(k, window)
	ms := make([]latency.Matrix, k)
	for s := range ms {
		ms[s] = (&latency.FullTopologyMatrix{Top: top}).EnableRTTCache(0)
	}
	rt := p2p.NewSharded(shk, ms, p2p.Config{}, opts.Seed, top.ShardByPoP(k))
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	ccfg := opts.Chord
	if ccfg.StabilizeEvery <= 0 {
		ccfg = p2p.DefaultChordConfig()
	}
	ccfg.Horizon = opts.Horizon
	chord := p2p.NewChord(rt, ccfg, opts.Seed+1)
	ids := make([]p2p.NodeID, n)
	for i := range ids {
		ids[i] = p2p.NodeID(i)
	}
	driver := shk.Shard(p2p.DriverShard)
	joinEnd := chordJoinRamp(driver, chord, ids, opts.JoinSpacing)
	settle := opts.Settle
	if settle <= 0 {
		settle = chordSettle
	}
	opsStart := joinEnd + settle

	row := WireChordRow{Nodes: n}
	src := rng.New(opts.Seed + 3)
	putOK, getOK := 0, 0
	var hops, retries int64
	issued := 0
	liveNode := func() p2p.NodeID { return ids[src.Intn(len(ids))] }
	// The handoff delays are topology constants (>= the lookahead window at
	// any realistic topology; max() covers degenerate ones), never functions
	// of the shard count — the op chain's virtual times must not move with K.
	delta := rt.HandoffDelay()
	opGap := 100 * time.Millisecond
	if opGap < delta {
		opGap = delta
	}
	// step issues the next Put+Get pair; it runs as an event on fromShard
	// (the shard the previous op completed on, or the driver at start).
	var step func(fromShard int)
	step = func(fromShard int) {
		if issued >= opts.Ops {
			// Cut the run in virtual time: no window starting after the
			// last completion runs, and stabilize events already inside the
			// final windows execute on every K alike.
			shk.StopAt(shk.Shard(fromShard).Now())
			return
		}
		issued++
		key := fmt.Sprintf("bench/%d", issued)
		val := []byte(key)
		pfrom := liveNode()
		rt.Handoff(fromShard, pfrom, opGap, func() {
			chord.Put(pfrom, key, val, func(pr p2p.OpResult) {
				hops += int64(pr.Hops)
				retries += int64(pr.Retries)
				row.LookupFails += int64(pr.LookupFails)
				if pr.OK {
					putOK++
				}
				gfrom := liveNode()
				rt.Handoff(rt.ShardOf(pfrom), gfrom, delta, func() {
					chord.Get(gfrom, key, func(gr p2p.OpResult) {
						hops += int64(gr.Hops)
						retries += int64(gr.Retries)
						row.LookupFails += int64(gr.LookupFails)
						if gr.OK {
							for _, v := range gr.Vals {
								if string(v) == key {
									getOK++
									break
								}
							}
						}
						step(rt.ShardOf(gfrom))
					})
				})
			})
		})
	}
	// Per-shard maintenance-message snapshots at the traffic start time:
	// each shard reads its own counter at its local clock, so no shard ever
	// peeks at another's metrics mid-run. Scheduled at setup, the snapshot
	// sorts before any same-instant runtime event on its shard.
	msgsStartSh := make([]int64, k)
	for s := 0; s < k; s++ {
		s := s
		shk.Shard(s).At(opsStart, func() { msgsStartSh[s] = rt.ShardMetrics(s).MsgsSent })
	}
	driver.At(opsStart, func() { step(p2p.DriverShard) })
	shk.RunUntil(opts.Horizon)

	var msgsStart int64
	for _, v := range msgsStartSh {
		msgsStart += v
	}
	total := rt.TotalMetrics()
	nOps := float64(issued)
	if issued == 0 {
		nOps = 1
	}
	row.Ops = issued
	row.PutOK = float64(putOK) / nOps
	row.GetOK = float64(getOK) / nOps
	row.MeanHops = float64(hops) / nOps
	row.MeanRetries = float64(retries) / nOps
	row.MeanMsgs = float64(total.MsgsSent-msgsStart) / nOps
	row.Timeouts = total.Timeouts
	// The k snapshot events above are measurement scaffolding, not model
	// events; excluding them keeps the figure-visible count K-invariant.
	row.Events = shk.Executed() - uint64(k)
	return row
}
