package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// This file is the scale study (figure s1): the paper's cost claim pushed
// toward production populations. Three search mechanisms — the Section 4
// Meridian walk (static function calls), the Section 5 expanding-ring
// search (as a message protocol), and the wire-level Chord DHT the hint
// schemes stand on — run over lazily-priced topology matrices
// (latency.FullTopologyMatrix: nothing is materialised, so a 100k-host
// population costs memory O(hosts), not O(hosts²)) at growing host counts.
// Every (population, algorithm) cell is one engine trial, so the grid
// saturates the worker pool; per-cell wall-clock and throughput are
// reported separately from the deterministic figure (see RenderTiming).

// scaleAlgos is the cell order within one population size.
var scaleAlgos = []string{"meridian", "expanding", "chord"}

// ScaleCell is one (population, algorithm) cell of the scale study.
type ScaleCell struct {
	// Algo is "meridian", "expanding" or "chord".
	Algo string
	// Nominal is the requested population; Hosts the generated topology's
	// actual host count (the generator overshoots the target slightly).
	Nominal, Hosts int
	// Members is the searchable population (overlay members, multicast
	// subscribers, or ring size).
	Members int
	// Queries is the number of scored operations.
	Queries int
	// Success is the cell's quality score: P(exact closest peer) for
	// meridian and expanding, P(Get returned the value) for chord.
	Success float64
	// CostPerQuery is the algorithm's own per-operation cost unit: latency
	// probes (meridian), multicast copies (expanding), routing RPCs
	// (chord).
	CostPerQuery float64
	// MsgsPerQuery is wire messages per operation, maintenance included
	// (0 for the static meridian baseline, which has no wire).
	MsgsPerQuery float64
	// Events is the kernel events the cell executed (0 static).
	Events uint64
	// WallMs and QPS report the cell's real elapsed time and operation
	// throughput. They are the only non-deterministic fields and are
	// excluded from Render — figures must be byte-identical across
	// -workers — appearing only in RenderTiming.
	WallMs float64
	QPS    float64
}

// ScaleStudyResult is the figure s1 grid.
type ScaleStudyResult struct {
	Seed    int64
	Queries int
	Cells   []ScaleCell
}

// scaleStudySizes returns the population sweep per scale. Quick stays
// within CI budgets; Full reaches past the 100k-host regime where the
// related survey work says overlay costs diverge, up to the 1M-host trial
// the sharded kernel exists for.
func scaleStudySizes(s Scale) []int {
	if s == Full {
		return []int{1000, 10000, 100000, 1000000}
	}
	return []int{1000, 2500, 5000}
}

// scaleStudyQueries returns the scored operations per cell.
func scaleStudyQueries(s Scale) int {
	if s == Full {
		return 200
	}
	return 60
}

// ScaleStudy runs the study at the scale's default population sweep.
func ScaleStudy(scale Scale, seed int64) *ScaleStudyResult {
	return ScaleStudyAt(scaleStudySizes(scale), scaleStudyQueries(scale), seed)
}

// scaleTopoConfig sizes a netmodel configuration to produce at least target
// hosts: geography (cities, ASes) grows sublinearly as real deployments do,
// per-PoP population carries the rest. Host counts land a few percent over
// target — the study reports the actual count.
func scaleTopoConfig(target int) netmodel.Config {
	if target < 64 {
		target = 64
	}
	c := netmodel.DefaultConfig()
	cities := int(math.Round(6 * math.Cbrt(float64(target)/1000)))
	c.NCities = clampInt(cities, 8, 48)
	c.NASes = clampInt(c.NCities/3, 4, 14)
	c.ASCityCoverage = 0.5
	pops := float64(c.NCities) * float64(c.NASes) * c.ASCityCoverage
	// Overshoot ~10% so Pareto variance in per-PoP home counts cannot
	// undershoot the target.
	perPoP := 1.1 * float64(target) / pops
	// 60% broadband homes, 40% corporate end-network hosts (≈7 hosts/EN
	// with the default Min/MaxHostsPerEN of 2..12). The generator draws
	// per-PoP homes from a capped Pareto; a tighter cap than the
	// measurement default keeps one tail draw from inflating a whole
	// size class, and the realised mean (~1.25× the parameter under this
	// cap) is divided out so the budget lands near target.
	c.HomesCapMult = 5
	c.MeanHomesPerPoP = 0.6 * perPoP / 1.25
	meanENs := 0.4 * perPoP / 7
	c.MinENsPerPoP = clampInt(int(0.6*meanENs), 1, 1<<20)
	c.MaxENsPerPoP = clampInt(int(1.4*meanENs)+1, c.MinENsPerPoP+1, 1<<20)
	if c.BRASCapacity < int(c.MeanHomesPerPoP) {
		c.BRASCapacity = int(c.MeanHomesPerPoP)
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// scaleChordConfig stretches the Chord maintenance knobs with ring size:
// per virtual second the ring pays nodes/StabilizeEvery stabilize rounds,
// so a 100k ring on the 1 s default would do nothing but stabilize.
func scaleChordConfig(n int) (cfg p2p.ChordConfig, joinSpacing time.Duration, settle time.Duration) {
	cfg = p2p.DefaultChordConfig()
	cfg.StabilizeEvery = time.Duration(clampInt(n/2000, 1, 30)) * time.Second
	// The ramp stays a bounded slice of the run regardless of ring size.
	joinSpacing = time.Duration(clampInt(int(120*time.Second)/n, int(200*time.Microsecond), int(10*time.Millisecond)))
	settle = 24 * cfg.StabilizeEvery
	if settle < 20*time.Second {
		settle = 20 * time.Second
	}
	return cfg, joinSpacing, settle
}

// scaleSplit carves targets out of a population: at most 100, at least 1,
// never more than a twentieth of the hosts.
func scaleSplit(n int, seed int64) (members, targets []int) {
	nTargets := clampInt(n/20, 1, 100)
	return overlay.Split(n, nTargets, seed)
}

// ScaleStudyAt runs the study over explicit population sizes. Topologies
// are generated once per size and shared read-only; the (size, algorithm)
// grid then fans out across the engine pool. Everything in the result
// except WallMs/QPS is a pure function of (sizes, queries, seed).
func ScaleStudyAt(sizes []int, queries int, seed int64) *ScaleStudyResult {
	tops := engine.Map(engine.Config{Seed: seed, Label: "s1-topo"}, sizes,
		func(_ *engine.Trial, target int) *netmodel.Topology {
			return netmodel.Generate(scaleTopoConfig(target), seed+int64(target))
		})

	type cellSpec struct {
		algo    string
		nominal int
		top     *netmodel.Topology
	}
	var specs []cellSpec
	for i, target := range sizes {
		for _, algo := range scaleAlgos {
			specs = append(specs, cellSpec{algo, target, tops[i]})
		}
	}
	out := &ScaleStudyResult{Seed: seed, Queries: queries}
	out.Cells = engine.Map(engine.Config{Seed: seed, Label: "s1"}, specs,
		func(_ *engine.Trial, s cellSpec) ScaleCell {
			// Each cell owns its matrices and therefore its RTT caches: the
			// topology is shared read-only, the caches are trial-private
			// (cached values are bit-identical to direct pricing, so the
			// figure cannot depend on them). The wire cells run on the
			// sharded kernel at the process shard count — the figure is
			// byte-identical at every -shards value by the kernel's
			// determinism contract.
			start := time.Now()
			var cell ScaleCell
			if sch, err := schemeFor(s.algo); err == nil && sch.Scale != nil {
				cell = sch.Scale(s.top, queries, seed)
			}
			cell.Algo = s.algo
			cell.Nominal = s.nominal
			cell.Hosts = s.top.NumHosts()
			cell.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
			if cell.WallMs > 0 && cell.Queries > 0 {
				// Throughput counts the operations the cell actually
				// issued (a horizon watchdog can cut a cell short), never
				// the nominal count.
				cell.QPS = float64(cell.Queries) / (cell.WallMs / 1000)
			}
			return cell
		})
	return out
}

// scaleMeridianCell runs the static Section 4 Meridian walk: the overlay
// is built from a 192-candidate gossip sample per node with the
// SelectRandom ring policy — the same policy the message-level port uses,
// and the only one whose build cost stays linear in the population.
func scaleMeridianCell(m latency.Matrix, queries int, seed int64) ScaleCell {
	members, targets := scaleSplit(m.N(), seed+1)
	net := overlay.NewNetwork(m)
	cfg := meridian.DefaultConfig()
	cfg.Selection = meridian.SelectRandom
	o := meridian.New(net, members, cfg, seed+2)
	src := rng.New(seed + 3)
	exact := 0
	net.ResetQueryProbes()
	for q := 0; q < queries; q++ {
		tgt := targets[src.Intn(len(targets))]
		res := o.FindNearest(tgt)
		if res.Peer == overlay.TrueNearest(m, tgt, members).Peer {
			exact++
		}
	}
	n := float64(queries)
	return ScaleCell{
		Members:      len(members),
		Queries:      queries,
		Success:      float64(exact) / n,
		CostPerQuery: float64(net.QueryProbes()) / n,
	}
}

// scaleExpandingCell runs the Section 5 expanding-ring search as a message
// protocol: every member subscribes to the well-known group, each query
// multicasts growing latency scopes from a held-out target until the first
// member answers. It runs on the sharded kernel at the process shard count:
// the query chain is strictly sequential (search q+1 starts only after q
// resolved), so the target draws and score counters are causally ordered —
// the window barrier gives the happens-before — and the cell is
// byte-identical at every -shards value. Oracles and sender indexes are
// precomputed at setup: both mutate state shared across shards (an RTT
// cache, the group's sender map), which only the single-threaded setup
// phase may touch.
func scaleExpandingCell(top *netmodel.Topology, queries int, seed int64) ScaleCell {
	members, targets := scaleSplit(top.NumHosts(), seed+1)
	k := engine.Shards()
	shk := sim.NewSharded(k, netmodel.Duration(top.MinCrossPoPOneWayMs()))
	ms := make([]latency.Matrix, k)
	for s := range ms {
		ms[s] = (&latency.FullTopologyMatrix{Top: top}).EnableRTTCache(0)
	}
	rt := p2p.NewSharded(shk, ms, p2p.Config{}, seed, top.ShardByPoP(k))
	ex := p2p.NewExpanding(rt, p2p.DefaultExpandConfig())
	for _, id := range members {
		ex.Register(p2p.NodeID(id))
	}
	om := (&latency.FullTopologyMatrix{Top: top}).EnableRTTCache(0)
	oracle := make(map[int]int, len(targets))
	for _, id := range targets {
		rt.AddNode(p2p.NodeID(id))
		rt.WarmSenderIndex(p2p.ExpandGroup, p2p.NodeID(id))
		oracle[id] = overlay.TrueNearest(om, id, members).Peer
	}

	src := rng.New(seed + 3)
	exact := 0
	var copies int64
	q := 0
	gap := 100 * time.Millisecond
	if d := rt.HandoffDelay(); gap < d {
		gap = d
	}
	// step issues the next search; it runs as an event on fromShard (the
	// shard the previous search's client lives on, or the driver at start).
	var step func(fromShard int)
	step = func(fromShard int) {
		if q >= queries {
			shk.StopAt(shk.Shard(fromShard).Now())
			return
		}
		q++
		tgt := targets[src.Intn(len(targets))]
		rt.Handoff(fromShard, p2p.NodeID(tgt), gap, func() {
			ex.Search(p2p.NodeID(tgt), func(res p2p.ExpandResult) {
				copies += int64(res.Messages)
				if res.Found && res.Peer == oracle[tgt] {
					exact++
				}
				step(rt.ShardOf(p2p.NodeID(tgt)))
			})
		})
	}
	shk.Shard(p2p.DriverShard).At(0, func() { step(p2p.DriverShard) })
	shk.Run()

	n := float64(queries)
	return ScaleCell{
		Members:      len(members),
		Queries:      queries,
		Success:      float64(exact) / n,
		CostPerQuery: float64(copies) / n,
		MsgsPerQuery: float64(rt.TotalMetrics().MsgsSent) / n,
		Events:       shk.Executed(),
	}
}

// scaleChordCell exercises the wire Chord substrate at ring size ≈ hosts:
// sequential Put+Get pairs after a scale-tuned join ramp and settle, on the
// sharded kernel at the process shard count.
func scaleChordCell(top *netmodel.Topology, queries int, seed int64) ScaleCell {
	ccfg, spacing, settle := scaleChordConfig(top.NumHosts())
	row := RunWireChord(nil, WireChordOpts{
		Ops: queries, Seed: seed,
		Chord: ccfg, JoinSpacing: spacing, Settle: settle,
		Horizon: 4 * time.Hour,
		Shards:  engine.Shards(), Top: top,
	})
	// Queries is the operations actually issued: a run the horizon cut
	// short reports what it did (possibly 0), never the nominal count.
	return ScaleCell{
		Members:      row.Nodes,
		Queries:      row.Ops,
		Success:      row.GetOK,
		CostPerQuery: row.MeanHops,
		MsgsPerQuery: row.MeanMsgs,
		Events:       row.Events,
	}
}

// Render prints the deterministic figure: cost and success per
// (population, algorithm). Wall-clock throughput deliberately lives in
// RenderTiming — the engine's contract is byte-identical figures at any
// worker count, and elapsed time can never satisfy it.
func (r *ScaleStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale study s1: nearest-peer search cost vs population (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "meridian = static Section 4 walk (cost unit: probes/query)\n")
	fmt.Fprintf(&b, "expanding = Section 5 expanding-ring over internal/p2p (cost unit: multicast copies/query)\n")
	fmt.Fprintf(&b, "chord = wire Chord Put+Get over internal/p2p (cost unit: routing RPCs/op)\n\n")
	fmt.Fprintf(&b, "%10s %8s %10s %8s %9s %8s %10s %12s\n",
		"algo", "N(req)", "hosts", "queries", "success", "cost/q", "msgs/q", "events")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%10s %8d %10d %8d %9.3f %8.1f %10.1f %12d\n",
			c.Algo, c.Nominal, c.Hosts, c.Queries, c.Success, c.CostPerQuery, c.MsgsPerQuery, c.Events)
	}
	b.WriteString("\nreading: the paper's claim survives scale — the walk's probe bill and the\n" +
		"expanding search's copy bill grow with the population near the target, while\n" +
		"DHT routing pays its logarithmic hops in maintenance traffic instead\n")
	return b.String()
}

// RenderTiming prints the wall-clock view: per-cell elapsed time and
// operation throughput. Non-deterministic by nature; cmd/figures prints it
// to the terminal but never writes it into the figure file.
func (r *ScaleStudyResult) RenderTiming() string {
	var b strings.Builder
	b.WriteString("s1 wall-clock (non-deterministic; excluded from the figure):\n")
	fmt.Fprintf(&b, "%10s %8s %12s %12s\n", "algo", "N(req)", "wall", "ops/sec")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%10s %8d %12s %12.1f\n",
			c.Algo, c.Nominal, time.Duration(c.WallMs*float64(time.Millisecond)).Round(time.Millisecond), c.QPS)
	}
	return b.String()
}
