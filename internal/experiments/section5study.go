package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/stats"
	"nearestpeer/internal/trace"
)

// This file reproduces the Section 5 evaluation behind Figures 10 and 11:
// the traceroute-derived adjacency graph over responsive peers, Dijkstra
// closest-peer sets, UCL hop-length analysis and IP-prefix error rates.

var (
	graphMu    sync.Mutex
	graphCache = map[*Env]*trace.Graph{}
)

// TraceGraph builds (cached) the traceroute graph over the environment's
// responsive peers.
func TraceGraph(env *Env) *trace.Graph {
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[env]; ok {
		return g
	}
	g := trace.Build(env.Tools, env.VantageHosts(), env.ResponsivePeers())
	graphCache[env] = g
	return g
}

// Fig10Result reproduces Figure 10: inter-peer router hop-length as a
// function of inter-peer latency, for close (<10 ms) peer pairs.
type Fig10Result struct {
	Peers int
	Pairs int
	Bins  []stats.PercentileBin
}

// Fig10 computes the figure over the traceroute graph.
func Fig10(env *Env) *Fig10Result { return Fig10From(env, TraceGraph(env)) }

// Fig10From computes the figure from an existing graph.
func Fig10From(env *Env, g *trace.Graph) *Fig10Result {
	peers := env.ResponsivePeers()
	var lats, hops []float64
	pairs := g.AllPairsWithin(10)
	for _, pd := range pairs {
		lats = append(lats, pd.RTTms)
		hops = append(hops, float64(pd.RouterHops))
	}
	return &Fig10Result{
		Peers: len(peers),
		Pairs: len(pairs),
		Bins:  stats.BinnedPercentiles(lats, hops, 10),
	}
}

// Render prints the binned percentile table.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: inter-peer router hops vs latency (UCL reach analysis)\n")
	fmt.Fprintf(&b, "%d responsive peers, %d pairs under 10 ms\n", r.Peers, r.Pairs)
	fmt.Fprintf(&b, "%10s %8s %8s %8s %8s %8s %8s\n",
		"lat(ms)", "n", "p5", "p25", "median", "p75", "p95")
	for _, bin := range r.Bins {
		fmt.Fprintf(&b, "%10.2f %8d %8.0f %8.0f %8.0f %8.0f %8.0f\n",
			bin.X, bin.Count, bin.P5, bin.P25, bin.Median, bin.P75, bin.P95)
	}
	b.WriteString("tracking n routers discovers peers 2n hops away: the paper reads \"median 4 hops\nat ~4 ms\" as 2 tracked routers reaching the median such pair\n")
	return b.String()
}

// Fig11Point is one prefix length of Figure 11.
type Fig11Point struct {
	Bits int
	FP   float64 // median false-positive rate
	FN   float64 // median false-negative rate
}

// Fig11Result reproduces Figure 11.
type Fig11Result struct {
	ThresholdMs float64
	// NearPopulation is the number of peers with at least one other peer
	// within the threshold (paper: ~2,400).
	NearPopulation int
	Points         []Fig11Point
}

// Fig11 computes median false-positive and false-negative rates of the
// IP-prefix heuristic as a function of prefix length, using shortest-path
// latencies over the traceroute graph (exactly the paper's method).
func Fig11(env *Env) *Fig11Result { return Fig11From(env, TraceGraph(env)) }

// Fig11From computes the figure from an existing graph.
func Fig11From(env *Env, g *trace.Graph) *Fig11Result {
	peers := env.ResponsivePeers()
	const threshold = 10.0

	// near[p] = set of peers within threshold of p.
	near := make(map[netmodel.HostID]map[netmodel.HostID]bool, len(peers))
	for _, p := range peers {
		for _, pd := range g.ClosestPeers(p, threshold) {
			if near[p] == nil {
				near[p] = make(map[netmodel.HostID]bool)
			}
			near[p][pd.Peer] = true
			if near[pd.Peer] == nil {
				near[pd.Peer] = make(map[netmodel.HostID]bool)
			}
			near[pd.Peer][p] = true
		}
	}
	out := &Fig11Result{ThresholdMs: threshold, NearPopulation: len(near)}

	for bits := 8; bits <= 24; bits += 2 {
		// Bucket peers by prefix for O(1) same-prefix totals.
		bucket := make(map[netmodel.IPv4]int)
		for _, p := range peers {
			bucket[env.Top.Host(p).IP.Prefix(bits)]++
		}
		var fps, fns []float64
		for _, p := range peers {
			ip := env.Top.Host(p).IP
			sameTotal := bucket[ip.Prefix(bits)] - 1
			nearSet := near[p]
			nearSame, nearDiff := 0, 0
			for q := range nearSet {
				if env.Top.Host(q).IP.SharesPrefix(ip, bits) {
					nearSame++
				} else {
					nearDiff++
				}
			}
			farSame := sameTotal - nearSame
			farTotal := len(peers) - 1 - len(nearSet)
			if farTotal > 0 {
				fps = append(fps, float64(farSame)/float64(farTotal))
			}
			if len(nearSet) > 0 {
				fns = append(fns, float64(nearDiff)/float64(len(nearSet)))
			}
		}
		out.Points = append(out.Points, Fig11Point{
			Bits: bits,
			FP:   medianFloat(fps),
			FN:   medianFloat(fns),
		})
	}
	return out
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

// Render prints the two error-rate curves.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: IP-prefix heuristic error rates vs prefix length (threshold %.0f ms)\n", r.ThresholdMs)
	fmt.Fprintf(&b, "peers with a <%.0f ms neighbour: %d (paper: ~2,400)\n", r.ThresholdMs, r.NearPopulation)
	fmt.Fprintf(&b, "%8s %16s %16s\n", "bits", "false-positive", "false-negative")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %16.4f %16.4f\n", p.Bits, p.FP, p.FN)
	}
	b.WriteString("paper: FP falls and FN rises with prefix length; no sweet spot exists\n")
	return b.String()
}
