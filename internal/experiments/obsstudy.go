package experiments

import (
	"fmt"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/stats"
)

// This file is the observability study (figure o1): the tail of the
// nearest-peer search, read off the runs themselves instead of recomputed
// by each experiment. Every cell runs one scheme (Meridian walk, Chord
// lookup, Vivaldi coordinate search) under one wire condition with the
// internal/obs layer attached — the metrics registry counts every send
// and delivery per node and per message type, the lookup histogram
// collects per-query latencies, and the health sampler reads inflight and
// event-queue depth on a fixed virtual-time cadence. The figure reports
// lookup-latency quantiles (p50/p99/p999), the per-node message-load
// distribution, the message mix and the peak health readings. The
// registry, histogram and sampler are passive with respect to the
// experiment's randomness, so every cell is one engine trial and the
// figure is byte-identical at any -workers; the optional flight recorder
// (trace mode) is likewise passive and must not change a single byte.

// obsStudyHorizon caps a cell's virtual time as a watchdog.
const obsStudyHorizon = 2 * time.Hour

// obsSampleEvery is the health sampler's virtual-time cadence; sampling
// starts with the query phase (the bring-up drain would otherwise tick the
// clock to the horizon before the first query).
const obsSampleEvery = 2 * time.Second

// obsSampleCapacity bounds the sampler ring; older samples are overwritten.
const obsSampleCapacity = 512

// obsTraceCapacity bounds the per-cell flight-recorder ring in trace mode.
const obsTraceCapacity = 4096

// ObsCell is one (scheme, condition) cell of the o1 figure.
type ObsCell struct {
	// Scheme is "meridian", "chord" or "vivaldi"; Cond names the wire
	// condition.
	Scheme, Cond string
	// Peers is the matrix population; Members the overlay membership;
	// Lookups the searches actually issued.
	Peers, Members, Lookups int
	// Done is the fraction of lookups that completed with a positive
	// answer (resolved owner / completed walk / verified peer).
	Done float64
	// P50/P99/P999 are lookup-latency quantiles in virtual milliseconds,
	// read from the registry's log-spaced histogram. A lookup whose
	// issuing node churns away mid-operation never reports and is not
	// observed; Done carries that loss.
	P50, P99, P999 float64
	// LoadP50/LoadP99/LoadMax summarise messages sent per overlay member
	// across the whole run, maintenance included.
	LoadP50, LoadP99, LoadMax float64
	// MsgMix is the top message types by send count ("type:n type:n ...").
	MsgMix string
	// Samples is how often the health sampler ticked; MaxInflight and
	// MaxQueue are the peak parked-envelope and event-queue depths it
	// observed (over the retained ring); QueueHW is the kernel's own
	// high-water mark, bring-up included.
	Samples               int
	MaxInflight, MaxQueue int
	QueueHW               int
	// Timeouts totals RPC timeouts; Leaves/Joins count churn events.
	Timeouts      int64
	Leaves, Joins int
	// Trace is the cell's flight recorder in trace mode (nil otherwise).
	// Its contents never appear in Render.
	Trace *obs.Recorder
	// WallMs is the only non-deterministic field, reported by RenderTiming
	// and excluded from Render.
	WallMs float64
}

// ObsStudyResult is the figure o1 output.
type ObsStudyResult struct {
	Seed           int64
	Peers, Targets int
	Lookups        int
	ENsPerCluster  int
	Delta          float64
	Cells          []ObsCell
}

// obsStudyParams returns (peers, targets, lookups) per scale.
func obsStudyParams(s Scale) (peers, targets, lookups int) {
	if s == Full {
		return 2000, 100, 200
	}
	return 240, 24, 16
}

// obsStudyConditions is the condition sweep: the c1/v1 wire table minus
// the static baseline (there is no wire to observe without messages).
func obsStudyConditions() []wireCondition {
	return []wireCondition{
		{name: "messages, loss=0%"},
		{name: "messages, loss=5%", loss: 0.05},
		{name: "messages, churn", churn: true},
		{name: "messages, loss=5% + churn", loss: 0.05, churn: true},
	}
}

// obsStudySchemes is the scheme sweep.
var obsStudySchemes = []string{"meridian", "chord", "vivaldi"}

// ObsStudy runs the study at the scale's default sizing, without tracing.
func ObsStudy(scale Scale, seed int64) *ObsStudyResult {
	p, t, l := obsStudyParams(scale)
	return ObsStudyAt(p, t, l, seed, false)
}

// ObsStudyAt runs the study at an explicit sizing. The clustered matrix
// and the member/target split are built once and shared read-only; the
// (scheme, condition) grid fans out across the engine pool. With trace
// set, every cell attaches a flight recorder and keeps it in the result —
// Render is byte-identical either way (the recorder is passive).
func ObsStudyAt(peers, nTargets, lookups int, seed int64, trace bool) *ObsStudyResult {
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = peers
	m, _ := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), nTargets, seed+1)

	out := &ObsStudyResult{
		Seed: seed, Peers: m.N(), Targets: len(targets), Lookups: lookups,
		ENsPerCluster: cfg.ENsPerCluster, Delta: cfg.Delta,
	}
	type cellSpec struct {
		scheme string
		cond   wireCondition
	}
	var specs []cellSpec
	for _, s := range obsStudySchemes {
		for _, c := range obsStudyConditions() {
			specs = append(specs, cellSpec{s, c})
		}
	}
	out.Cells = engine.Map(engine.Config{Seed: seed, Label: "o1"}, specs,
		func(_ *engine.Trial, s cellSpec) ObsCell {
			start := time.Now()
			cell := obsCell(m, s.scheme, s.cond, members, targets, lookups, seed, trace)
			cell.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
			return cell
		})
	return out
}

// obsCell stands one scheme up over the shared matrix under one wire
// condition, runs the sequential lookup stream with the obs layer
// attached, and reads the figure's numbers off the registry, the sampler
// and the kernel.
func obsCell(m latency.Matrix, scheme string, cond wireCondition, members, targets []int, lookups int, seed int64, trace bool) ObsCell {
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.Config{LossProb: cond.loss}, seed)
	reg := obs.NewRegistry(m.N())
	rt.EnableObs(reg)
	var rec *obs.Recorder
	if trace {
		rec = obs.NewRecorder(obsTraceCapacity)
		rt.AttachRecorder(rec)
	}

	ids := make([]p2p.NodeID, len(members))
	for i, id := range members {
		ids[i] = p2p.NodeID(id)
	}

	// Scheme bring-up via the registry: setup.issue runs one lookup and
	// reports whether it succeeded; setup.queryStart is when the
	// measurement phase begins.
	s, err := schemeFor(scheme)
	if err != nil || s.Lookup == nil {
		panic("obsCell: unknown scheme " + scheme)
	}
	setup := s.Lookup(&lookupEnv{
		kernel: kernel, rt: rt, ids: ids, targets: targets,
		src: rng.New(seed + 3), horizon: obsStudyHorizon,
		opLabel: "o1", seed: seed,
	})
	queryStart := setup.queryStart

	var churn *p2p.Churn
	if cond.churn {
		ccfg := experimentChurnConfig()
		ccfg.Horizon = obsStudyHorizon
		churn = p2p.NewChurn(rt, ccfg, seed+2)
		churn.OnLeave = setup.onLeave
		churn.OnJoin = setup.onJoin
	}

	done := 0
	startSeq, issued := sequenceOps(kernel, lookups, func(op int, _ func() bool, complete func(apply func())) {
		issueAt := kernel.Now()
		setup.issue(op, func(ok bool, _ int) {
			complete(func() {
				reg.ObserveLookupMs(float64(kernel.Now()-issueAt) / float64(time.Millisecond))
				if ok {
					done++
				}
			})
		})
	})
	var samp *obs.Sampler
	startPhase := func() {
		samp = rt.StartHealthSampler(obsSampleEvery, obsStudyHorizon, obsSampleCapacity)
		startSeq()
	}
	kernel.At(queryStart, func() {
		if churn != nil {
			// Let the membership process bite before measuring: the lookup
			// stream is short, and an untouched overlay would make the churn
			// rows read like the loss-only ones.
			churn.Drive(ids)
			kernel.After(time.Minute, startPhase)
			return
		}
		startPhase()
	})
	kernel.At(obsStudyHorizon, kernel.Stop)
	kernel.Run()

	cell := ObsCell{
		Scheme: scheme, Cond: cond.name,
		Peers: m.N(), Members: len(members), Lookups: *issued,
		Trace: rec,
	}
	n := float64(*issued)
	if *issued == 0 {
		n = 1
	}
	cell.Done = float64(done) / n
	cell.P50 = reg.LookupQuantileMs(0.50)
	cell.P99 = reg.LookupQuantileMs(0.99)
	cell.P999 = reg.LookupQuantileMs(0.999)

	sent := reg.SentByNode()
	loads := make([]float64, 0, len(members))
	for _, id := range members {
		loads = append(loads, float64(sent[id]))
	}
	cell.LoadP50 = stats.Quantile(loads, 0.50)
	cell.LoadP99 = stats.Quantile(loads, 0.99)
	for _, l := range loads {
		if l > cell.LoadMax {
			cell.LoadMax = l
		}
	}
	var mix []string
	for _, tt := range reg.TopTypes(3) {
		mix = append(mix, fmt.Sprintf("%s:%d", tt.Type, tt.Count))
	}
	cell.MsgMix = strings.Join(mix, " ")

	if samp != nil {
		cell.Samples = int(samp.Count())
		for _, s := range samp.Samples() {
			if s.Inflight > cell.MaxInflight {
				cell.MaxInflight = s.Inflight
			}
			if s.Queue > cell.MaxQueue {
				cell.MaxQueue = s.Queue
			}
		}
	}
	cell.QueueHW = kernel.QueueHighWater()
	cell.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		cell.Leaves, cell.Joins = churn.Leaves, churn.Joins
	}
	return cell
}

// Render prints the deterministic figure (wall-clock lives in
// RenderTiming, as with s1/v1).
func (r *ObsStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability study o1: lookup tail latency and per-node load, read off the runs (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "%d peers, %d lookups/cell, clustered matrix (%d ENs/cluster, δ=%.1f); quantiles from the registry's log-spaced histogram\n\n",
		r.Peers, r.Lookups, r.ENsPerCluster, r.Delta)
	fmt.Fprintf(&b, "%-9s %-26s %5s %8s %8s %8s %7s %7s %7s %6s %6s %6s %8s  %s\n",
		"scheme", "condition", "done", "p50ms", "p99ms", "p999ms",
		"ld50", "ld99", "ldmax", "inflt", "queue", "ticks", "timeouts", "msg mix")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9s %-26s %5.2f %8.1f %8.1f %8.1f %7.0f %7.0f %7.0f %6d %6d %6d %8d  %s",
			c.Scheme, c.Cond, c.Done, c.P50, c.P99, c.P999,
			c.LoadP50, c.LoadP99, c.LoadMax,
			c.MaxInflight, c.MaxQueue, c.Samples, c.Timeouts, c.MsgMix)
		if c.Leaves > 0 || c.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", c.Leaves, c.Joins)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nreading: the median lookup hides what the registry's histogram shows — loss pushes the\n" +
		"p99/p999 out by whole timeout periods, churn adds rejoin maintenance to every node's\n" +
		"send bill, and the load tail (ld99/ldmax vs ld50) shows the brute-force probing the\n" +
		"paper predicts concentrating on cluster gateways rather than spreading evenly\n")
	return b.String()
}

// RenderTiming prints the wall-clock view (non-deterministic; printed to
// the terminal but never written into the figure file).
func (r *ObsStudyResult) RenderTiming() string {
	var b strings.Builder
	b.WriteString("o1 wall-clock (non-deterministic; excluded from the figure):\n")
	fmt.Fprintf(&b, "%-9s %-26s %12s\n", "scheme", "condition", "wall")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-9s %-26s %12s\n",
			c.Scheme, c.Cond, time.Duration(c.WallMs*float64(time.Millisecond)).Round(time.Millisecond))
	}
	return b.String()
}
