package experiments

import (
	"fmt"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/faults"
	"nearestpeer/internal/ipprefix"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/ucl"
)

// This file re-measures the Section 5 mitigation claims with the network in
// the way: the UCL and IP-prefix hint schemes, which elsewhere run as
// synchronous function calls against a dht.Ring, here publish and resolve
// their hints over the message-level Chord DHT (internal/p2p) — iterative
// lookups with per-hop timeouts, loss, churn, stale hints whose publishers
// have gone dark, and probe costs paid on the wire. The static deployments
// on the same topology and peer set are the baseline, so every figure is
// "what does the wire charge for the same mitigation?".

// mitigationNearMs is the success threshold: a query succeeds when the
// returned peer's true RTT is under this bound (the Section 5 close-peer
// threshold used by Figures 10 and 11).
const mitigationNearMs = 10.0

// The wire studies (this file and wirechord.go) share their bring-up and
// pacing knobs so the c2 rows and the npsim chord exercise stay
// comparable: joins staggered below the stabilize rate, a settle window
// before traffic, and a per-operation deadline that keeps the sequential
// driver going when an issuing node churns out mid-operation.
const (
	chordJoinSpacing = 10 * time.Millisecond
	chordSettle      = 20 * time.Second
	wireOpDeadline   = time.Minute
)

// chordJoinRamp schedules the staggered joins and returns the virtual time
// of the last one. spacing <= 0 uses the default chordJoinSpacing.
func chordJoinRamp(kernel *sim.Sim, chord *p2p.Chord, ids []p2p.NodeID, spacing time.Duration) time.Duration {
	if spacing <= 0 {
		spacing = chordJoinSpacing
	}
	for i := range ids {
		id := ids[i]
		kernel.After(time.Duration(i)*spacing, func() { chord.Join(id) })
	}
	return time.Duration(len(ids)) * spacing
}

// sequenceOps is the shared sequential-operation driver of the wire
// studies: each op is issued with its 1-based index, given wireOpDeadline
// to complete (an issuing node that churns out mid-operation takes its
// callbacks with it — the deadline keeps the stream going and the op
// scores as failed), and the next op starts 100 ms after completion. live
// reports whether the op is still current (for intermediate accounting);
// complete(apply) runs apply and advances iff the deadline has not fired.
// Call the returned start function when the measurement phase begins; the
// kernel stops after the last op. issued counts ops actually started,
// which is what results must be normalised by when a watchdog cuts the
// run short.
func sequenceOps(kernel *sim.Sim, count int, issue func(op int, live func() bool, complete func(apply func()))) (start func(), issued *int) {
	issued = new(int)
	var step func()
	step = func() {
		if *issued >= count {
			kernel.Stop()
			return
		}
		*issued++
		op := *issued
		fired := false
		advance := func() { kernel.After(100*time.Millisecond, step) }
		kernel.After(wireOpDeadline, func() {
			if !fired {
				fired = true
				advance()
			}
		})
		issue(op, func() bool { return !fired }, func(apply func()) {
			if fired {
				return
			}
			fired = true
			if apply != nil {
				apply()
			}
			advance()
		})
	}
	return step, issued
}

// MitigationOpts configures one wire mitigation run.
type MitigationOpts struct {
	// Scheme is any registered scheme name (see SchemeNames): the hint
	// schemes "ucl" and "ipprefix", the coordinate scheme "vivaldi", the
	// substrate legs "meridian", "expanding" and "chord", and the wired
	// finders "guyton", "beaconing", "tiers", "pic", "tapestry",
	// "azureus", "kargerruhl" and "rendezvous".
	Scheme string
	// Loss is the one-way packet loss probability.
	Loss float64
	// Churn enables the membership process (with ChurnCfg, or the
	// experiment default when zero).
	Churn    bool
	ChurnCfg p2p.ChurnConfig
	// Queries is the number of sequential nearest-peer queries.
	Queries int
	// Seed drives the whole run.
	Seed int64
	// Horizon caps virtual time as a watchdog (default 2 h).
	Horizon time.Duration
	// Tools overrides the measurement toolkit (probe noise stream). Leave
	// nil to use the environment's shared toolkit; MitigationStudy gives
	// every row its own so rows never contend for one noise stream and can
	// run as parallel engine trials.
	Tools *measure.Tools
	// Recorder, when non-nil, is attached to the runtime as the lookup
	// flight recorder (npsim -trace). It is passive: results are
	// byte-identical with or without it.
	Recorder *obs.Recorder
	// Faults, when non-nil, installs the deterministic fault plan on the
	// runtime (npsim -faults). A nil plan injects nothing.
	Faults *faults.Plan
}

// MitigationRow is one condition's scores, static or message-level.
type MitigationRow struct {
	Name string
	// Found is the fraction of queries returning any peer.
	Found float64
	// PNear is the fraction of queries returning a peer whose true RTT is
	// under the threshold, among the NearDenom queries where a live such
	// peer existed at issue time.
	PNear     float64
	NearDenom int
	// MeanFoundMs is the mean true RTT of returned peers.
	MeanFoundMs float64
	// MeanProbes is candidate probes per query; DeadProbes counts the ones
	// that timed out (stale hints, loss) across the run.
	MeanProbes float64
	DeadProbes int64
	// MeanLookups and MeanHops price the DHT: lookups per query and
	// routing hops per query (static: ring hops; wire: routing RPCs).
	MeanLookups float64
	MeanHops    float64
	// LookupFails counts wire lookups that never resolved an owner.
	LookupFails int64
	// PubMsgsPerPeer is the wire cost of publishing one peer's hints
	// (maintenance traffic during the publish phase included); MeanMsgs is
	// wire messages per query, maintenance included. Static rows have no
	// wire: both are 0.
	PubMsgsPerPeer float64
	MeanMsgs       float64
	// Timeouts is the total RPC timeouts across the run.
	Timeouts int64
	// Leaves and Joins count churn events during the run.
	Leaves, Joins int
}

// MitigationPeers picks the study's peer population: the first n responsive
// peers of the environment (deterministic, so static and wire runs see the
// same membership).
func MitigationPeers(env *Env, n int) []netmodel.HostID {
	peers := env.ResponsivePeers()
	if len(peers) > n {
		peers = peers[:n]
	}
	return peers
}

// mitigationParams returns (peers, queries) per scale.
func mitigationParams(s Scale) (peers, queries int) {
	if s == Full {
		return 2000, 400
	}
	return 240, 60
}

// RunStaticMitigation runs the function-call baseline for a scheme on the
// environment's topology: one probe-counting query per target, scored
// against the true nearest peer. Probes draw from the environment's shared
// toolkit; see runStaticMitigationTools for a caller-supplied one. An
// unknown scheme (or one with no static leg) returns an error naming the
// registry's roster.
func RunStaticMitigation(env *Env, scheme string, peers []netmodel.HostID, queries int, seed int64) (MitigationRow, error) {
	return runStaticMitigationTools(env, env.Tools, scheme, peers, queries, seed)
}

// runStaticMitigationTools is RunStaticMitigation with an explicit
// measurement toolkit, so parallel study rows each own their noise stream.
// Dispatch goes through the scheme registry.
func runStaticMitigationTools(env *Env, tools *measure.Tools, scheme string, peers []netmodel.HostID, queries int, seed int64) (MitigationRow, error) {
	s, err := schemeFor(scheme)
	if err != nil {
		return MitigationRow{}, err
	}
	if s.Static == nil {
		return MitigationRow{}, fmt.Errorf("experiments: scheme %q has no static leg", scheme)
	}
	return s.Static(env, tools, peers, queries, seed), nil
}

// staticUCLMitigation is the ucl scheme's registry Static leg.
func staticUCLMitigation(env *Env, tools *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
	return runStaticHintMitigation(env, tools, "ucl", peers, queries, seed,
		func(tools *measure.Tools, addrs []string) hintStatic {
			sys := ucl.New(tools, addrs, env.VantageHosts(), ucl.DefaultConfig())
			for _, p := range peers {
				sys.Join(p)
			}
			return hintStatic{
				find: func(p netmodel.HostID) (bool, netmodel.HostID, int, int) {
					r := sys.FindNearest(p)
					return r.Peer >= 0, r.Peer, r.Probes, r.Lookups
				},
				hops: func() int64 { return sys.Ring().Hops },
			}
		})
}

// staticIPPrefixMitigation is the ipprefix scheme's registry Static leg.
func staticIPPrefixMitigation(env *Env, tools *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
	return runStaticHintMitigation(env, tools, "ipprefix", peers, queries, seed,
		func(tools *measure.Tools, addrs []string) hintStatic {
			sys := ipprefix.New(tools, addrs, ipprefix.DefaultConfig())
			for _, p := range peers {
				sys.Join(p)
			}
			return hintStatic{
				find: func(p netmodel.HostID) (bool, netmodel.HostID, int, int) {
					r := sys.FindNearest(p)
					return r.Peer >= 0, r.Peer, r.Probes, r.Lookups
				},
				hops: func() int64 { return sys.Ring().Hops },
			}
		})
}

// hintStatic is what a hint scheme's static setup returns: run one query;
// read the ring's cumulative hop counter.
type hintStatic struct {
	find func(p netmodel.HostID) (found bool, peer netmodel.HostID, probes, lookups int)
	hops func() int64
}

// runStaticHintMitigation is the shared static harness of the DHT hint
// schemes: setup builds the scheme over the peers' addresses, then one
// probe-counting query per draw, scored against the close-peer threshold.
func runStaticHintMitigation(env *Env, tools *measure.Tools, scheme string, peers []netmodel.HostID, queries int, seed int64,
	setup func(tools *measure.Tools, addrs []string) hintStatic) MitigationRow {
	addrs := make([]string, len(peers))
	for i, p := range peers {
		addrs[i] = env.Top.Host(p).IP.String()
	}
	row := MitigationRow{Found: 0}
	hs := setup(tools, addrs)
	find, hops := hs.find, hs.hops

	src := rng.New(seed + 3)
	hopsAtStart := hops()
	found, near, nearDenom := 0, 0, 0
	var probes, lookups int64
	var foundMs float64
	alive := func(netmodel.HostID) bool { return true }
	for q := 0; q < queries; q++ {
		target := peers[src.Intn(len(peers))]
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		ok, peer, p, l := find(target)
		probes += int64(p)
		lookups += int64(l)
		if ok {
			found++
			trueMs := env.Top.RTTms(target, peer)
			foundMs += trueMs
			if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
				near++
			}
		}
	}
	n := float64(queries)
	row.Name = scheme + " static (function calls)"
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	row.MeanLookups = float64(lookups) / n
	row.MeanHops = float64(hops()-hopsAtStart) / n
	return row
}

// nearestLivePeerMs returns the true RTT to the nearest live peer other
// than target (the oracle a query is scored against).
func nearestLivePeerMs(env *Env, peers []netmodel.HostID, target netmodel.HostID, alive func(netmodel.HostID) bool) float64 {
	best := -1.0
	for _, p := range peers {
		if p == target || !alive(p) {
			continue
		}
		if d := env.Top.RTTms(target, p); best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return mitigationNearMs + 1 // nobody live: no near peer exists
	}
	return best
}

// RunWireMitigation stands a scheme up over the message runtime and runs
// sequential queries in virtual time under the asked-for loss and churn.
// Dispatch goes through the scheme registry: the hint schemes publish over
// a Chord ring of all peers, vivaldi gossips coordinates, the wired
// finders (guyton, beaconing, tiers, pic, tapestry, azureus, kargerruhl,
// rendezvous) drive their probes and control RPCs through the shared
// FindResult harness. An unknown scheme (or one with no wire deployment)
// returns an error naming the registry's roster.
func RunWireMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts) (MitigationRow, error) {
	s, err := schemeFor(opts.Scheme)
	if err != nil {
		return MitigationRow{}, err
	}
	if s.Wire == nil {
		return MitigationRow{}, fmt.Errorf("experiments: scheme %q has no wire deployment", opts.Scheme)
	}
	return s.Wire(env, peers, opts), nil
}

// wireUCLMitigation is the ucl scheme's registry Wire leg.
func wireUCLMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
	return runWireHintMitigation(env, peers, opts,
		func(tools *measure.Tools, chord *p2p.Chord) hintWire {
			w := ucl.NewWire(tools, chord, peers, env.VantageHosts(), ucl.DefaultConfig())
			return hintWire{
				publish: func(h netmodel.HostID, done func()) {
					w.Publish(h, func(int) {
						if done != nil {
							done()
						}
					})
				},
				find: func(h netmodel.HostID, done func(hintFindScore)) {
					w.FindNearest(h, func(r ucl.WireResult) {
						done(hintFindScore{r.Found, r.Peer, r.Probes, r.DeadProbes, r.Lookups, r.Hops, r.LookupFails})
					})
				},
			}
		})
}

// wireIPPrefixMitigation is the ipprefix scheme's registry Wire leg.
func wireIPPrefixMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
	return runWireHintMitigation(env, peers, opts,
		func(tools *measure.Tools, chord *p2p.Chord) hintWire {
			w := ipprefix.NewWire(tools, chord, peers, ipprefix.DefaultConfig())
			return hintWire{
				publish: func(h netmodel.HostID, done func()) {
					w.Publish(h, func(bool) {
						if done != nil {
							done()
						}
					})
				},
				find: func(h netmodel.HostID, done func(hintFindScore)) {
					w.FindNearest(h, func(r ipprefix.WireResult) {
						done(hintFindScore{r.Found, r.Peer, r.Probes, r.DeadProbes, r.Lookups, r.Hops, r.LookupFails})
					})
				},
			}
		})
}

// hintFindScore is one hint-scheme wire query's outcome — the shared shape
// of ucl.WireResult and ipprefix.WireResult.
type hintFindScore struct {
	found                              bool
	peer                               netmodel.HostID
	probes, dead, lookups, hops, fails int
}

// hintWire is what a hint scheme's wire setup returns: publish one peer's
// hints; run one query.
type hintWire struct {
	publish func(h netmodel.HostID, done func())
	find    func(h netmodel.HostID, done func(hintFindScore))
}

// runWireHintMitigation is the shared wire harness of the DHT hint
// schemes: a Chord ring of all peers, hint publishing as wire Puts, then
// sequential queries in virtual time — under the asked-for loss and churn.
// Peers that churn back in republish their hints (soft state); hints of
// departed peers stay behind and cost dead probes.
func runWireHintMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts,
	setup func(tools *measure.Tools, chord *p2p.Chord) hintWire) MitigationRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	tools := opts.Tools
	if tools == nil {
		tools = env.Tools
	}
	kernel := sim.New()
	// The run owns its matrix, so the RTT cache is private to this kernel;
	// chord stabilize re-prices the same successor pairs every round and
	// hits it almost always.
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	ccfg := p2p.DefaultChordConfig()
	ccfg.Horizon = opts.Horizon
	chord := p2p.NewChord(rt, ccfg, opts.Seed+1)

	// Scheme adapters: publish one peer's hints; run one query.
	hw := setup(tools, chord)
	publish, find := hw.publish, hw.find

	index := make(map[netmodel.HostID]p2p.NodeID, len(peers))
	ids := make([]p2p.NodeID, len(peers))
	for i, h := range peers {
		index[h] = p2p.NodeID(i)
		ids[i] = p2p.NodeID(i)
	}
	joinEnd := chordJoinRamp(kernel, chord, ids, 0)

	var churn *p2p.Churn
	if opts.Churn {
		ccfg := opts.ChurnCfg
		if ccfg.MeanSession == 0 {
			ccfg = experimentChurnConfig()
		}
		ccfg.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, ccfg, opts.Seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { chord.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) {
			chord.Join(id)
			publish(peers[int(id)], nil) // soft state: republish on rejoin
		}
	}

	row := MitigationRow{}
	src := rng.New(opts.Seed + 3)
	alive := func(h netmodel.HostID) bool { return rt.Alive(index[h]) }
	var pubMsgsStart, queryMsgsStart int64
	found, near, nearDenom := 0, 0, 0
	var probes, dead, lookups, hops, fails int64
	var foundMs float64

	startSeq, issued := sequenceOps(kernel, opts.Queries, func(_ int, _ func() bool, complete func(apply func())) {
		target := peers[src.Intn(len(peers))]
		for tries := 0; tries < 20 && !alive(target); tries++ {
			target = peers[src.Intn(len(peers))]
		}
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		find(target, func(r hintFindScore) {
			complete(func() {
				probes += int64(r.probes)
				dead += int64(r.dead)
				lookups += int64(r.lookups)
				hops += int64(r.hops)
				fails += int64(r.fails)
				if r.found {
					found++
					trueMs := env.Top.RTTms(target, r.peer)
					foundMs += trueMs
					if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
						near++
					}
				}
			})
		})
	})

	startQueries := func() {
		queryMsgsStart = rt.Metrics.MsgsSent
		startSeq()
	}
	afterPublish := func() {
		row.PubMsgsPerPeer = float64(rt.Metrics.MsgsSent-pubMsgsStart) / float64(len(peers))
		if churn != nil {
			churn.Drive(ids)
			// Let the membership process bite before measuring queries.
			kernel.After(30*time.Second, startQueries)
			return
		}
		startQueries()
	}
	kernel.At(joinEnd+chordSettle, func() {
		pubMsgsStart = rt.Metrics.MsgsSent
		var pub func(i int)
		pub = func(i int) {
			if i >= len(peers) {
				afterPublish()
				return
			}
			publish(peers[i], func() { pub(i + 1) })
		}
		pub(0)
	})
	kernel.At(opts.Horizon, kernel.Stop) // watchdog against a stalled chain
	kernel.Run()

	// Normalise by the queries actually issued: if the watchdog fired
	// first, the unissued remainder must not be scored as failures.
	n := float64(*issued)
	if *issued == 0 {
		n = 1
	}
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	row.DeadProbes = dead
	row.MeanLookups = float64(lookups) / n
	row.MeanHops = float64(hops) / n
	row.LookupFails = fails
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-queryMsgsStart) / n
	row.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// MitigationStudyResult compares static and message-level hint schemes
// across wire conditions.
type MitigationStudyResult struct {
	Peers, Queries int
	ThresholdMs    float64
	Rows           []MitigationRow
}

// MitigationStudy runs the comparison for both hint schemes on the shared
// environment's topology. Each of the ten (scheme, condition) rows is one
// engine trial with its own kernel, runtime, Chord ring and measurement
// toolkit (every row's toolkit replays the same noise stream, so rows stay
// independent of one another's draw order); the topology is shared
// read-only. Rows merge in (scheme, condition) order regardless of the
// worker count.
func MitigationStudy(scale Scale, seed int64) *MitigationStudyResult {
	env := SharedEnv(scale, seed)
	nPeers, queries := mitigationParams(scale)
	peers := MitigationPeers(env, nPeers)
	out := &MitigationStudyResult{Peers: len(peers), Queries: queries, ThresholdMs: mitigationNearMs}
	type mitigationCell struct {
		scheme string
		cond   wireCondition
	}
	var cells []mitigationCell
	for _, scheme := range []string{"ucl", "ipprefix"} {
		// The static baseline names itself inside runStaticMitigationTools.
		cells = append(cells, mitigationCell{scheme, wireCondition{static: true}})
		for _, c := range []wireCondition{
			{name: "messages, loss=0%"},
			{name: "messages, loss=5%", loss: 0.05},
			{name: "messages, churn", churn: true},
			{name: "messages, loss=5% + churn", loss: 0.05, churn: true},
		} {
			cells = append(cells, mitigationCell{scheme, c})
		}
	}
	out.Rows = engine.Map(engine.Config{Seed: seed, Label: "mitigationstudy"}, cells,
		func(_ *engine.Trial, c mitigationCell) MitigationRow {
			tools := measure.NewTools(env.Top, measure.DefaultConfig(), seed+1)
			if c.cond.static {
				row, err := runStaticMitigationTools(env, tools, c.scheme, peers, queries, seed)
				if err != nil {
					panic(err) // the study's roster is registry-known
				}
				return row
			}
			row, err := RunWireMitigation(env, peers, MitigationOpts{
				Scheme: c.scheme, Loss: c.cond.loss, Churn: c.cond.churn,
				Queries: queries, Seed: seed, Tools: tools,
			})
			if err != nil {
				panic(err) // the study's roster is registry-known
			}
			row.Name = c.scheme + " " + c.cond.name
			return row
		})
	return out
}

// Render prints the comparison table.
func (r *MitigationStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mitigation study: Section 5 hint schemes over the message-level DHT (internal/p2p)\n")
	fmt.Fprintf(&b, "%d peers on the measurement topology, %d queries, near threshold %.0f ms\n\n",
		r.Peers, r.Queries, r.ThresholdMs)
	fmt.Fprintf(&b, "%-36s %6s %8s %8s %9s %10s %8s %10s %9s\n",
		"condition", "found", "p(near)", "rtt(ms)", "probes/q", "lookups/q", "msgs/q", "pub-m/peer", "timeouts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %6.2f %8.3f %8.1f %9.1f %10.1f %8.1f %10.1f %9d",
			row.Name, row.Found, row.PNear, row.MeanFoundMs,
			row.MeanProbes, row.MeanLookups, row.MeanMsgs, row.PubMsgsPerPeer, row.Timeouts)
		if row.Leaves > 0 || row.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", row.Leaves, row.Joins)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nreading: in a lossless static world the hint schemes are cheap; the wire adds\n" +
		"DHT routing per publish and per query, loss turns hops into timeouts, and churn\n" +
		"leaves stale hints behind that cost dead probes before a live candidate answers\n")
	return b.String()
}
