package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/stats"
	"nearestpeer/internal/vivaldi"
)

// This file is the Vivaldi study (figure v1): do synthetic coordinates
// survive the wire? The static internal/vivaldi embedding — an oracle that
// reads every RTT noiselessly off the matrix — is compared against
// vivaldi.Wire, the gossip deployment over internal/p2p, under 0%/5% loss
// and churn at growing host counts. Two views: a (population, condition)
// grid scoring embedding error and nearest-peer stretch on scale-study
// topologies, and a mitigation-companion table running the coordinate
// search through the exact c2 methodology so vivaldi sits beside the UCL
// and IP-prefix rows. Every cell and row is one engine trial; the figure is
// byte-identical at any -workers (wall-clock lives in RenderTiming).

// vivaldiWarmup is the wire runs' gossip warm-up: at the default 2 s gossip
// period each member collects ~240 samples, the static build's 60×4 budget.
const vivaldiWarmup = 8 * time.Minute

// vivaldiStudyHorizon caps a cell's virtual time as a watchdog.
const vivaldiStudyHorizon = 4 * time.Hour

// VivaldiCell is one (population, condition) cell of the v1 grid.
type VivaldiCell struct {
	// Cond names the wire condition ("static (function calls)",
	// "messages, loss=5%", ...).
	Cond string
	// Nominal is the requested population; Hosts the generated topology's
	// actual host count; Members the coordinate-system membership.
	Nominal, Hosts, Members int
	// Queries is the number of nearest-peer searches actually issued.
	Queries int
	// MedianErr is the embedding quality at end of run: median
	// |predicted-true|/true over sampled live member pairs.
	MedianErr float64
	// PExact is P(found peer is the true nearest live member); Found the
	// fraction of searches returning any peer; MedianStretch the median of
	// found-RTT / true-nearest-RTT over found searches.
	PExact, Found, MedianStretch float64
	// MeanProbes is query-time RTT measurements per search (placement plus
	// verification); MeanMsgs wire messages per search, maintenance
	// included; GossipMsgsPerNode the warm-up gossip bill. Static cells
	// have no wire: all three are 0 except MeanProbes.
	MeanProbes, MeanMsgs, GossipMsgsPerNode float64
	// Timeouts totals RPC timeouts; Leaves/Joins count churn events;
	// Events is the kernel events the cell executed (0 static).
	Timeouts      int64
	Leaves, Joins int
	Events        uint64
	// WallMs and QPS are the only non-deterministic fields, reported by
	// RenderTiming and excluded from Render.
	WallMs, QPS float64
}

// VivaldiStudyResult is the figure v1 output: the grid plus the
// mitigation-companion rows.
type VivaldiStudyResult struct {
	Seed    int64
	Queries int
	Cells   []VivaldiCell
	// MitPeers/MitQueries size the companion table; MitRows are the c2
	// methodology's rows for the vivaldi scheme (static + four wire
	// conditions).
	MitPeers, MitQueries int
	MitThresholdMs       float64
	MitRows              []MitigationRow
}

// vivaldiStudySizes returns the population sweep per scale: Full reaches
// the 1k/10k hosts the study quotes; Quick stays inside CI budgets.
func vivaldiStudySizes(s Scale) []int {
	if s == Full {
		return []int{1000, 10000}
	}
	return []int{400, 1000}
}

// vivaldiStudyQueries returns the searches per cell.
func vivaldiStudyQueries(s Scale) int {
	if s == Full {
		return 100
	}
	return 40
}

// vivaldiStudyConditions is the shared condition list (the c1/c2 table).
func vivaldiStudyConditions() []wireCondition {
	return []wireCondition{
		{name: "static (function calls)", static: true},
		{name: "messages, loss=0%"},
		{name: "messages, loss=5%", loss: 0.05},
		{name: "messages, churn", churn: true},
		{name: "messages, loss=5% + churn", loss: 0.05, churn: true},
	}
}

// VivaldiStudy runs the study at the scale's default sweep.
func VivaldiStudy(scale Scale, seed int64) *VivaldiStudyResult {
	return VivaldiStudyAt(vivaldiStudySizes(scale), vivaldiStudyQueries(scale), scale, seed)
}

// VivaldiStudyAt runs the study over explicit population sizes. Topologies
// are generated once per size and shared read-only; the (size, condition)
// grid and the mitigation-companion rows then fan out across the engine
// pool. Everything in the result except WallMs/QPS is a pure function of
// (sizes, queries, scale, seed).
func VivaldiStudyAt(sizes []int, queries int, scale Scale, seed int64) *VivaldiStudyResult {
	tops := engine.Map(engine.Config{Seed: seed, Label: "v1-topo"}, sizes,
		func(_ *engine.Trial, target int) *netmodel.Topology {
			return netmodel.Generate(scaleTopoConfig(target), seed+int64(target))
		})

	type cellSpec struct {
		cond    wireCondition
		nominal int
		top     *netmodel.Topology
	}
	var specs []cellSpec
	for i, target := range sizes {
		for _, c := range vivaldiStudyConditions() {
			specs = append(specs, cellSpec{c, target, tops[i]})
		}
	}
	out := &VivaldiStudyResult{Seed: seed, Queries: queries}
	out.Cells = engine.Map(engine.Config{Seed: seed, Label: "v1"}, specs,
		func(_ *engine.Trial, s cellSpec) VivaldiCell {
			// Each cell owns its matrix and therefore its RTT cache; the
			// topology is shared read-only.
			m := (&latency.FullTopologyMatrix{Top: s.top}).EnableRTTCache(0)
			start := time.Now()
			var cell VivaldiCell
			if s.cond.static {
				cell = vivaldiStaticCell(m, queries, seed)
			} else {
				cell = vivaldiWireCell(m, s.cond, queries, seed)
			}
			cell.Cond = s.cond.name
			cell.Nominal = s.nominal
			cell.Hosts = m.N()
			cell.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
			if cell.WallMs > 0 && cell.Queries > 0 {
				cell.QPS = float64(cell.Queries) / (cell.WallMs / 1000)
			}
			return cell
		})

	// Mitigation companion: the coordinate search through the exact c2
	// methodology (same peers, same query stream, same scoring), so the
	// vivaldi rows read side by side with the ucl/ipprefix rows of c2.
	env := SharedEnv(scale, seed)
	nPeers, mitQueries := mitigationParams(scale)
	peers := MitigationPeers(env, nPeers)
	out.MitPeers, out.MitQueries, out.MitThresholdMs = len(peers), mitQueries, mitigationNearMs
	out.MitRows = engine.Map(engine.Config{Seed: seed, Label: "v1-mit"}, vivaldiStudyConditions(),
		func(_ *engine.Trial, c wireCondition) MitigationRow {
			if c.static {
				return runStaticVivaldiMitigation(env, peers, mitQueries, seed)
			}
			row, err := RunWireMitigation(env, peers, MitigationOpts{
				Scheme: "vivaldi", Loss: c.loss, Churn: c.churn,
				Queries: mitQueries, Seed: seed,
			})
			if err != nil {
				panic(err) // "vivaldi" is registry-known
			}
			row.Name = "vivaldi " + c.name
			return row
		})
	return out
}

// embeddingMedianErr scores an embedding against the matrix: median
// |predicted-true|/true over randomly sampled member pairs whose
// coordinates exist.
func embeddingMedianErr(src *rng.Source, members []int, coordOf func(int) *vivaldi.Coord, m latency.Matrix, samples int) float64 {
	var errs []float64
	for i := 0; i < samples; i++ {
		a := members[src.Intn(len(members))]
		b := members[src.Intn(len(members))]
		if a == b {
			continue
		}
		ca, cb := coordOf(a), coordOf(b)
		actual := m.LatencyMs(a, b)
		if ca == nil || cb == nil || actual <= 0 {
			continue
		}
		errs = append(errs, math.Abs(ca.DistanceMs(cb)-actual)/actual)
	}
	if len(errs) == 0 {
		return math.NaN()
	}
	return stats.Median(errs)
}

// vivaldiEmbeddingSamples is the pair-sample budget of the embedding-error
// measurement.
const vivaldiEmbeddingSamples = 600

// vivaldiStaticCell runs the matrix-fed oracle: Build over the members
// (maintenance probes), then the static coordinate Finder per query.
func vivaldiStaticCell(m latency.Matrix, queries int, seed int64) VivaldiCell {
	members, targets := scaleSplit(m.N(), seed+1)
	net := overlay.NewNetwork(m)
	sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), seed+2)
	f := &vivaldi.Finder{Sys: sys, PlacementProbes: 16, VerifyTop: 8}
	src := rng.New(seed + 3)
	exact, found := 0, 0
	var probes int64
	var stretches []float64
	net.ResetQueryProbes()
	for q := 0; q < queries; q++ {
		tgt := targets[src.Intn(len(targets))]
		oracle := overlay.TrueNearest(m, tgt, members)
		res := f.FindNearest(tgt)
		probes += res.Probes
		if res.Peer >= 0 {
			found++
			trueMs := m.LatencyMs(tgt, res.Peer)
			if res.Peer == oracle.Peer {
				exact++
			}
			if oracle.LatencyMs > 0 {
				stretches = append(stretches, trueMs/oracle.LatencyMs)
			}
		}
	}
	n := float64(queries)
	cell := VivaldiCell{
		Members:    len(members),
		Queries:    queries,
		PExact:     float64(exact) / n,
		Found:      float64(found) / n,
		MeanProbes: float64(probes) / n,
		MedianErr: embeddingMedianErr(rng.New(seed+4), members,
			func(id int) *vivaldi.Coord { return sys.CoordOf(id) }, m, vivaldiEmbeddingSamples),
	}
	if len(stretches) > 0 {
		cell.MedianStretch = stats.Median(stretches)
	}
	return cell
}

// vivaldiWireCell runs the gossip deployment: members join the coordinate
// overlay, gossip through the warm-up, then sequential coordinate-guided
// searches from held-out targets under the asked-for loss and churn. The
// embedding is scored at end of run over the members still live.
func vivaldiWireCell(m latency.Matrix, cond wireCondition, queries int, seed int64) VivaldiCell {
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.Config{LossProb: cond.loss}, seed)
	wcfg := vivaldi.DefaultWireConfig()
	wcfg.Horizon = vivaldiStudyHorizon
	w := vivaldi.NewWire(rt, wcfg, seed+1)
	members, targets := scaleSplit(m.N(), seed+1)
	ids := make([]p2p.NodeID, len(members))
	for i, id := range members {
		ids[i] = p2p.NodeID(id)
		w.Join(p2p.NodeID(id))
	}
	for _, id := range targets {
		rt.AddNode(p2p.NodeID(id))
	}

	var churn *p2p.Churn
	if cond.churn {
		ccfg := experimentChurnConfig()
		ccfg.Horizon = vivaldiStudyHorizon
		churn = p2p.NewChurn(rt, ccfg, seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { w.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) { w.Join(id) }
	}

	cell := VivaldiCell{Members: len(members)}
	src := rng.New(seed + 3)
	exact, found := 0, 0
	var stretches []float64
	// queryMsgsStart doubles as the warm-up gossip bill: everything sent
	// before the first query is maintenance.
	var queryMsgsStart, queryProbesStart int64
	q := 0
	var step func()
	step = func() {
		if q >= queries {
			kernel.Stop()
			return
		}
		q++
		tgt := targets[src.Intn(len(targets))]
		live := w.LiveMembers()
		liveInts := make([]int, len(live))
		for i, id := range live {
			liveInts[i] = int(id)
		}
		oracle := overlay.TrueNearest(m, tgt, liveInts)
		w.FindNearest(p2p.NodeID(tgt), func(r vivaldi.WireResult) {
			if r.Found {
				found++
				trueMs := m.LatencyMs(tgt, int(r.Peer))
				if int(r.Peer) == oracle.Peer {
					exact++
				}
				if oracle.Peer >= 0 && oracle.LatencyMs > 0 {
					stretches = append(stretches, trueMs/oracle.LatencyMs)
				}
			}
			kernel.After(100*time.Millisecond, step)
		})
	}
	startQueries := func() {
		queryMsgsStart = rt.Metrics.MsgsSent
		queryProbesStart = rt.Metrics.QueryProbes
		step()
	}
	kernel.At(vivaldiWarmup, func() {
		if churn != nil {
			churn.Drive(ids)
			// Let the membership process bite before measuring queries.
			kernel.After(30*time.Second, startQueries)
			return
		}
		startQueries()
	})
	kernel.At(vivaldiStudyHorizon, kernel.Stop)
	kernel.Run()

	n := float64(q)
	if q == 0 {
		n = 1
	}
	cell.Queries = q
	cell.PExact = float64(exact) / n
	cell.Found = float64(found) / n
	if len(stretches) > 0 {
		cell.MedianStretch = stats.Median(stretches)
	}
	cell.MeanProbes = float64(rt.Metrics.QueryProbes-queryProbesStart) / n
	cell.MeanMsgs = float64(rt.Metrics.MsgsSent-queryMsgsStart) / n
	cell.GossipMsgsPerNode = float64(queryMsgsStart) / float64(len(members))
	cell.Timeouts = rt.Metrics.Timeouts
	cell.Events = kernel.Executed
	if churn != nil {
		cell.Leaves, cell.Joins = churn.Leaves, churn.Joins
	}
	live := w.LiveMembers()
	liveInts := make([]int, len(live))
	for i, id := range live {
		liveInts[i] = int(id)
	}
	if len(liveInts) > 1 {
		cell.MedianErr = embeddingMedianErr(rng.New(seed+4), liveInts,
			func(id int) *vivaldi.Coord { return w.CoordOf(p2p.NodeID(id)) }, m, vivaldiEmbeddingSamples)
	} else {
		cell.MedianErr = math.NaN()
	}
	return cell
}

// runStaticVivaldiMitigation is the c2 methodology's static baseline for
// the coordinate scheme: a matrix-fed Build over the mitigation peers, the
// static Finder per query, scored against the close-peer threshold.
func runStaticVivaldiMitigation(env *Env, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	net := overlay.NewNetwork(m)
	members := make([]int, len(peers))
	for i := range peers {
		members[i] = i
	}
	sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), seed+1)
	f := &vivaldi.Finder{Sys: sys, PlacementProbes: 16, VerifyTop: 8}
	src := rng.New(seed + 3)
	alive := func(netmodel.HostID) bool { return true }
	row := MitigationRow{Name: "vivaldi static (function calls)"}
	found, near, nearDenom := 0, 0, 0
	var probes int64
	var foundMs float64
	for q := 0; q < queries; q++ {
		idx := src.Intn(len(peers))
		target := peers[idx]
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		res := f.FindNearest(idx)
		probes += res.Probes
		if res.Peer >= 0 {
			found++
			trueMs := env.Top.RTTms(target, peers[res.Peer])
			foundMs += trueMs
			if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
				near++
			}
		}
	}
	n := float64(queries)
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	return row
}

// runWireVivaldiMitigation is the wire leg of the c2 methodology for the
// coordinate scheme: the gossip overlay over the mitigation peers, queries
// issued by the peers themselves (members use their own live coordinate —
// no placement probes), with the warm-up gossip bill reported in the
// publish column (coordinates ARE the scheme's published state). Walk
// steps land in the hops column and each search counts as one lookup, so
// the row reads like its ucl/ipprefix neighbors.
func runWireVivaldiMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	kernel := sim.New()
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	wcfg := vivaldi.DefaultWireConfig()
	wcfg.Horizon = opts.Horizon
	w := vivaldi.NewWire(rt, wcfg, opts.Seed+1)
	index := make(map[netmodel.HostID]p2p.NodeID, len(peers))
	ids := make([]p2p.NodeID, len(peers))
	for i := range peers {
		index[peers[i]] = p2p.NodeID(i)
		ids[i] = p2p.NodeID(i)
		w.Join(p2p.NodeID(i))
	}

	var churn *p2p.Churn
	if opts.Churn {
		ccfg := opts.ChurnCfg
		if ccfg.MeanSession == 0 {
			ccfg = experimentChurnConfig()
		}
		ccfg.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, ccfg, opts.Seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { w.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) { w.Join(id) }
	}

	row := MitigationRow{}
	src := rng.New(opts.Seed + 3)
	alive := func(h netmodel.HostID) bool { return rt.Alive(index[h]) }
	found, near, nearDenom := 0, 0, 0
	var probes, dead, hops, lookups int64
	var foundMs float64
	var queryMsgsStart int64

	startSeq, issued := sequenceOps(kernel, opts.Queries, func(_ int, _ func() bool, complete func(apply func())) {
		target := peers[src.Intn(len(peers))]
		for tries := 0; tries < 20 && !alive(target); tries++ {
			target = peers[src.Intn(len(peers))]
		}
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		w.FindNearest(index[target], func(r vivaldi.WireResult) {
			complete(func() {
				probes += int64(r.Probes)
				dead += int64(r.Dead)
				hops += int64(r.Hops)
				lookups++
				if r.Found {
					found++
					trueMs := env.Top.RTTms(target, peers[int(r.Peer)])
					foundMs += trueMs
					if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
						near++
					}
				}
			})
		})
	})

	startQueries := func() {
		queryMsgsStart = rt.Metrics.MsgsSent
		startSeq()
	}
	kernel.At(vivaldiWarmup, func() {
		// The warm-up gossip is the scheme's publish phase: coordinates
		// are the published (and continuously republished) state.
		row.PubMsgsPerPeer = float64(rt.Metrics.MsgsSent) / float64(len(peers))
		if churn != nil {
			churn.Drive(ids)
			kernel.After(30*time.Second, startQueries)
			return
		}
		startQueries()
	})
	kernel.At(opts.Horizon, kernel.Stop)
	kernel.Run()

	n := float64(*issued)
	if *issued == 0 {
		n = 1
	}
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	row.DeadProbes = dead
	row.MeanLookups = float64(lookups) / n
	row.MeanHops = float64(hops) / n
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-queryMsgsStart) / n
	row.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// Render prints the deterministic figure (wall-clock lives in
// RenderTiming, as with s1).
func (r *VivaldiStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Vivaldi study v1: wire-level coordinates (gossip over internal/p2p) vs the static oracle (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "grid: %d searches/cell; mederr = median |pred-true|/true over live pairs; stretch = found/oracle RTT (median)\n\n", r.Queries)
	fmt.Fprintf(&b, "%-26s %7s %7s %8s %7s %9s %8s %6s %9s %8s %9s %9s\n",
		"condition", "N(req)", "hosts", "members", "mederr", "P(exact)", "stretch", "found", "probes/q", "msgs/q", "gossip/n", "timeouts")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-26s %7d %7d %8d %7.3f %9.3f %8.2f %6.2f %9.1f %8.1f %9.1f %9d",
			c.Cond, c.Nominal, c.Hosts, c.Members, c.MedianErr, c.PExact, c.MedianStretch, c.Found,
			c.MeanProbes, c.MeanMsgs, c.GossipMsgsPerNode, c.Timeouts)
		if c.Leaves > 0 || c.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", c.Leaves, c.Joins)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nmitigation companion: the coordinate search through the c2 methodology, beside ucl/ipprefix\n")
	fmt.Fprintf(&b, "%d peers on the measurement topology, %d queries, near threshold %.0f ms\n\n",
		r.MitPeers, r.MitQueries, r.MitThresholdMs)
	fmt.Fprintf(&b, "%-36s %6s %8s %8s %9s %10s %8s %10s %9s\n",
		"condition", "found", "p(near)", "rtt(ms)", "probes/q", "lookups/q", "msgs/q", "pub-m/peer", "timeouts")
	for _, row := range r.MitRows {
		fmt.Fprintf(&b, "%-36s %6.2f %8.3f %8.1f %9.1f %10.1f %8.1f %10.1f %9d",
			row.Name, row.Found, row.PNear, row.MeanFoundMs,
			row.MeanProbes, row.MeanLookups, row.MeanMsgs, row.PubMsgsPerPeer, row.Timeouts)
		if row.Leaves > 0 || row.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", row.Leaves, row.Joins)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nreading: the matrix-fed oracle sets the floor; the wire pays a continuous gossip\n" +
		"bill for the same embedding, loss slows convergence and turns verification pings\n" +
		"into dead probes, and churn resets coordinates whose rebuild lags the membership —\n" +
		"the coordinate route to a nearest peer degrades the same way the hint schemes do\n")
	return b.String()
}

// RenderTiming prints the wall-clock view of the grid (non-deterministic;
// cmd/figures prints it to the terminal but never writes it into the
// figure file).
func (r *VivaldiStudyResult) RenderTiming() string {
	var b strings.Builder
	b.WriteString("v1 wall-clock (non-deterministic; excluded from the figure):\n")
	fmt.Fprintf(&b, "%-26s %7s %12s %12s\n", "condition", "N(req)", "wall", "searches/sec")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-26s %7d %12s %12.1f\n",
			c.Cond, c.Nominal, time.Duration(c.WallMs*float64(time.Millisecond)).Round(time.Millisecond), c.QPS)
	}
	return b.String()
}
