package experiments

import (
	"strings"
	"testing"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
)

// testEnv is a process-shared Quick environment for experiment tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	return SharedEnv(Quick, 1)
}

func TestTable1(t *testing.T) {
	r := Table1(testEnv(t))
	if len(r.Rows) != 7 {
		t.Fatalf("got %d vantage rows", len(r.Rows))
	}
	out := r.Render()
	if !strings.Contains(out, "planetlab5.cs.cornell.edu") {
		t.Fatal("Cornell vantage missing")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3(testEnv(t))
	if r.Pairs < 500 {
		t.Fatalf("only %d pairs measured", r.Pairs)
	}
	// A majority — but not all — of predictions land within a factor 2,
	// as in the paper.
	if r.FractionIn05_2 < 0.5 || r.FractionIn05_2 > 0.98 {
		t.Fatalf("fraction in [0.5,2] = %v", r.FractionIn05_2)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig4Trend(t *testing.T) {
	r := Fig4(testEnv(t))
	if len(r.Bins) < 4 {
		t.Fatalf("only %d bins", len(r.Bins))
	}
	// The paper's trend: the prediction measure rises with predicted
	// latency. Compare the low and high thirds by median.
	lo := r.Bins[len(r.Bins)/6].Median
	hi := r.Bins[len(r.Bins)-1].Median
	if hi <= lo {
		t.Fatalf("prediction measure does not rise: low=%v high=%v", lo, hi)
	}
}

func TestFig5OrderOfMagnitude(t *testing.T) {
	r := Fig5(testEnv(t))
	if r.IntraMax10.N() < 20 || r.InterKing.N() < 500 {
		t.Fatalf("samples %d/%d", r.IntraMax10.N(), r.InterKing.N())
	}
	intra := r.IntraMax10.Quantile(0.5)
	inter := r.InterKing.Quantile(0.5)
	if intra*4 > inter {
		t.Fatalf("intra-domain median %v not well below inter %v", intra, inter)
	}
}

func TestFig6Funnel(t *testing.T) {
	r := Fig6(testEnv(t))
	if !(r.Candidates > r.Responsive && r.Responsive > r.UniqueUpstream) {
		t.Fatalf("funnel broken: %d/%d/%d", r.Candidates, r.Responsive, r.UniqueUpstream)
	}
	frac := float64(r.Responsive) / float64(r.Candidates)
	if frac < 0.08 || frac > 0.25 {
		t.Fatalf("responsiveness %v, want ~0.15", frac)
	}
	if r.FracPruned25 <= 0 || r.FracPruned25 > 0.6 {
		t.Fatalf("fraction in big pruned clusters = %v", r.FracPruned25)
	}
	// Pruning can only shrink clusters.
	if len(r.SizesPruned) > 0 && len(r.SizesUnpruned) > 0 &&
		r.SizesPruned[0] > r.SizesUnpruned[0] {
		t.Fatal("pruned clusters larger than unpruned")
	}
}

func TestFig7LatencyRange(t *testing.T) {
	r := Fig7(testEnv(t))
	if len(r.CDFs) == 0 {
		t.Fatal("no clusters")
	}
	// Hub-to-peer latencies of the biggest cluster are broadband-scale
	// (several to ~100 ms), indicating distinct end-networks.
	med := r.CDFs[0].Quantile(0.5)
	if med < 3 || med > 120 {
		t.Fatalf("largest cluster median hub latency %v ms", med)
	}
}

func TestFig10HopGrowth(t *testing.T) {
	r := Fig10(testEnv(t))
	if r.Pairs < 200 {
		t.Fatalf("only %d pairs", r.Pairs)
	}
	if len(r.Bins) < 4 {
		t.Fatalf("only %d bins", len(r.Bins))
	}
	first, last := r.Bins[0], r.Bins[len(r.Bins)-1]
	if last.Median <= first.Median {
		t.Fatalf("hop count does not grow with latency: %v -> %v", first.Median, last.Median)
	}
}

func TestFig11Monotonicity(t *testing.T) {
	r := Fig11(testEnv(t))
	if len(r.Points) < 5 {
		t.Fatalf("only %d points", len(r.Points))
	}
	// FP falls (weakly) and FN rises (weakly) with prefix length.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].FP > r.Points[i-1].FP+0.05 {
			t.Fatalf("FP rose at %d bits: %v -> %v", r.Points[i].Bits, r.Points[i-1].FP, r.Points[i].FP)
		}
		if r.Points[i].FN < r.Points[i-1].FN-0.05 {
			t.Fatalf("FN fell at %d bits: %v -> %v", r.Points[i].Bits, r.Points[i-1].FN, r.Points[i].FN)
		}
	}
	if r.Points[0].FP < 0.5 {
		t.Fatalf("short-prefix FP %v, expected high", r.Points[0].FP)
	}
	if r.Points[len(r.Points)-1].FP > 0.1 {
		t.Fatalf("long-prefix FP %v, expected low", r.Points[len(r.Points)-1].FP)
	}
}

func TestMeridianSimulationScoring(t *testing.T) {
	// One small simulation exercises the Figure 8/9 machinery end to end.
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = 600
	cfg.ENsPerCluster = 25
	run := simulateMeridian(cfg, meridian.DefaultConfig(), 40, 200, 7)
	if run.pExact < 0 || run.pExact > 1 || run.pCluster < run.pExact {
		t.Fatalf("scores implausible: %+v", run)
	}
	if run.meanProbes <= 0 {
		t.Fatal("no probes accounted")
	}
}

func TestScaleParams(t *testing.T) {
	p, tg, q, r := scaleParams(Full)
	if p != 2500 || tg != 100 || q != 5000 || r != 3 {
		t.Fatalf("full params %d/%d/%d/%d", p, tg, q, r)
	}
	if Full.String() != "full" || Quick.String() != "quick" {
		t.Fatal("scale strings")
	}
}

func TestSharedEnvCached(t *testing.T) {
	a := SharedEnv(Quick, 1)
	b := SharedEnv(Quick, 1)
	if a != b {
		t.Fatal("shared env not cached")
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{3, 1, 2})
	if s.min != 1 || s.med != 2 || s.max != 3 {
		t.Fatalf("summary %+v", s)
	}
}

func TestChurnStudy(t *testing.T) {
	r := ChurnStudy(Quick, 1)
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows, want 5 (static + 4 wire conditions)", len(r.Rows))
	}
	static := r.Rows[0]
	if static.Done != 1 || static.MeanProbes <= 0 || static.MeanMsgs != 0 {
		t.Fatalf("static baseline implausible: %+v", static)
	}
	lossless := r.Rows[1]
	if lossless.Done != 1 || lossless.Timeouts != 0 {
		t.Fatalf("lossless wire run lost queries: %+v", lossless)
	}
	// The lossless message protocol walks the same algorithm: its probe
	// cost must land in the static baseline's neighbourhood.
	if ratio := lossless.MeanProbes / static.MeanProbes; ratio < 0.5 || ratio > 2 {
		t.Fatalf("probe cost diverged from static by %.2fx", ratio)
	}
	lossy := r.Rows[2]
	if lossy.Timeouts == 0 || lossy.Done >= 1 {
		t.Fatalf("5%% loss run shows no wire effects: %+v", lossy)
	}
	for _, row := range r.Rows[3:] {
		if row.Leaves == 0 || row.Joins == 0 {
			t.Fatalf("churn condition %q saw no churn", row.Name)
		}
	}
	out := r.Render()
	for _, want := range []string{"loss=5%", "churn", "probes/q", "leaves"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMitigationWireMatchesStaticLossless(t *testing.T) {
	env := SharedEnv(Quick, 1)
	peers := MitigationPeers(env, 80)
	static, err := RunStaticMitigation(env, "ipprefix", peers, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := RunWireMitigation(env, peers, MitigationOpts{Scheme: "ipprefix", Queries: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wire.Timeouts != 0 || wire.LookupFails != 0 || wire.DeadProbes != 0 {
		t.Fatalf("lossless wire run shows wire failures: %+v", wire)
	}
	// The wire runs the same hint scheme over the same entries: success
	// must land beside the static baseline (probe noise can flip a
	// borderline candidate, so allow a small gap).
	if diff := wire.Found - static.Found; diff < -0.15 || diff > 0.15 {
		t.Fatalf("wire found %v vs static %v", wire.Found, static.Found)
	}
	if wire.MeanMsgs <= 0 || wire.PubMsgsPerPeer <= 0 {
		t.Fatalf("wire run priced no messages: %+v", wire)
	}
	if static.MeanMsgs != 0 || static.PubMsgsPerPeer != 0 {
		t.Fatalf("static baseline has wire costs: %+v", static)
	}
}

func TestMitigationWireUnderLossAndChurn(t *testing.T) {
	env := SharedEnv(Quick, 1)
	peers := MitigationPeers(env, 80)
	row, err := RunWireMitigation(env, peers, MitigationOpts{Scheme: "ucl", Loss: 0.05, Churn: true, Queries: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Leaves == 0 || row.Joins == 0 {
		t.Fatalf("churn condition saw no churn: %+v", row)
	}
	if row.Timeouts == 0 {
		t.Fatalf("5%% loss run recorded no timeouts: %+v", row)
	}
}

func TestWireChordExercise(t *testing.T) {
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = 120
	m, _ := latency.BuildClustered(cfg, 1)
	row := RunWireChord(m, WireChordOpts{Nodes: 100, Ops: 20, Seed: 1})
	if row.PutOK != 1 || row.GetOK != 1 {
		t.Fatalf("lossless chord ops failed: %+v", row)
	}
	if row.MeanHops <= 0 || row.MeanMsgs <= 0 {
		t.Fatalf("chord ops priced nothing: %+v", row)
	}
	churned := RunWireChord(m, WireChordOpts{Nodes: 100, Ops: 20, Loss: 0.05, Churn: true, Seed: 1})
	if churned.Leaves == 0 || churned.Timeouts == 0 {
		t.Fatalf("churned chord run shows no wire effects: %+v", churned)
	}
	if churned.GetOK < 0.5 {
		t.Fatalf("chord collapsed under mild churn: %+v", churned)
	}
}

func TestMitigationStudyRender(t *testing.T) {
	r := &MitigationStudyResult{
		Peers: 10, Queries: 5, ThresholdMs: 10,
		Rows: []MitigationRow{
			{Name: "ucl static (function calls)", Found: 1, PNear: 0.5},
			{Name: "ucl messages, loss=5% + churn", Found: 0.5, MeanMsgs: 12, Timeouts: 3, Leaves: 2, Joins: 1},
		},
	}
	out := r.Render()
	for _, want := range []string{"loss=5%", "p(near)", "msgs/q", "leaves"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
