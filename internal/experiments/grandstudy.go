package experiments

import (
	"fmt"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/measure"
)

// This file is the grand table (figure g1): every registered scheme through
// the one c2 methodology — the static function-call oracle beside the
// message-level deployment at 0% and 5% loss, with and without churn — so
// the paper's whole algorithm zoo reads off a single table with identical
// peers, query stream and scoring. The rows come straight from the scheme
// registry; adding a scheme there adds its rows here. Each row is one
// engine trial with its own kernel, runtime and measurement toolkit, and
// the figure is byte-identical at any -workers/-shards (wall-clock lives in
// RenderTiming).

// GrandRow is one (scheme, condition) row of the grand table: the c2 scores
// plus the row's wall-clock (non-deterministic; excluded from Render).
type GrandRow struct {
	MitigationRow
	WallMs float64
}

// GrandStudyResult is the figure g1 output.
type GrandStudyResult struct {
	Seed           int64
	Peers, Queries int
	ThresholdMs    float64
	Rows           []GrandRow
}

// grandParams returns (peers, queries) per scale: smaller than c2 because
// the grand table multiplies every scheme by every condition.
func grandParams(s Scale) (peers, queries int) {
	if s == Full {
		return 1000, 200
	}
	return 100, 20
}

// GrandSchemes is the g1 roster in table order: the walk schemes first,
// then the substrates, the DHT-hint mitigations, coordinates, and the wired
// finder zoo. The golden figure pins this order.
func GrandSchemes() []string {
	return []string{
		"meridian", "expanding", "chord", "ucl", "ipprefix", "vivaldi",
		"guyton", "beaconing", "tiers", "pic", "tapestry",
		"azureus", "kargerruhl", "rendezvous",
	}
}

// GrandStudy runs the grand table on the shared environment's topology:
// every GrandSchemes entry under every c1/c2 wire condition. Rows merge in
// (scheme, condition) order regardless of the worker count.
func GrandStudy(scale Scale, seed int64) *GrandStudyResult {
	env := SharedEnv(scale, seed)
	nPeers, queries := grandParams(scale)
	peers := MitigationPeers(env, nPeers)
	out := &GrandStudyResult{Seed: seed, Peers: len(peers), Queries: queries, ThresholdMs: mitigationNearMs}
	type grandCell struct {
		scheme string
		cond   wireCondition
	}
	var cells []grandCell
	for _, scheme := range GrandSchemes() {
		for _, c := range vivaldiStudyConditions() {
			cells = append(cells, grandCell{scheme, c})
		}
	}
	out.Rows = engine.Map(engine.Config{Seed: seed, Label: "g1"}, cells,
		func(_ *engine.Trial, c grandCell) GrandRow {
			// Every row owns its measurement toolkit, so rows never contend
			// for one noise stream and parallel trials stay deterministic.
			tools := measure.NewTools(env.Top, measure.DefaultConfig(), seed+1)
			start := time.Now()
			var row MitigationRow
			var err error
			if c.cond.static {
				// The static baseline names itself "<scheme> static
				// (function calls)" inside the registry leg.
				row, err = runStaticMitigationTools(env, tools, c.scheme, peers, queries, seed)
			} else {
				row, err = RunWireMitigation(env, peers, MitigationOpts{
					Scheme: c.scheme, Loss: c.cond.loss, Churn: c.cond.churn,
					Queries: queries, Seed: seed, Tools: tools,
				})
				row.Name = c.scheme + " " + c.cond.name
			}
			if err != nil {
				panic(err) // GrandSchemes is registry-known
			}
			return GrandRow{MitigationRow: row,
				WallMs: float64(time.Since(start)) / float64(time.Millisecond)}
		})
	return out
}

// Render prints the deterministic grand table (wall-clock lives in
// RenderTiming, as with s1/v1).
func (r *GrandStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Grand table g1: every registered scheme through the c2 methodology (seed %d)\n", r.Seed)
	fmt.Fprintf(&b, "%d peers on the measurement topology, %d queries/row, near threshold %.0f ms\n",
		r.Peers, r.Queries, r.ThresholdMs)
	fmt.Fprintf(&b, "static rows are the function-call oracle; message rows run real RPCs over internal/p2p\n\n")
	fmt.Fprintf(&b, "%-38s %6s %8s %8s %9s %10s %7s %8s %10s %9s\n",
		"scheme / condition", "found", "p(near)", "rtt(ms)", "probes/q", "lookups/q", "hops/q", "msgs/q", "pub-m/peer", "timeouts")
	perScheme := len(vivaldiStudyConditions())
	for i, row := range r.Rows {
		if i > 0 && i%perScheme == 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-38s %6.2f %8.3f %8.1f %9.1f %10.1f %7.1f %8.1f %10.1f %9d",
			row.Name, row.Found, row.PNear, row.MeanFoundMs,
			row.MeanProbes, row.MeanLookups, row.MeanHops, row.MeanMsgs, row.PubMsgsPerPeer, row.Timeouts)
		if row.Leaves > 0 || row.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", row.Leaves, row.Joins)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nreading: no scheme is free — the oracle rows show what each algorithm could do\n" +
		"with perfect measurements, the wire rows what the same structure earns once every\n" +
		"probe is a message that can be lost and every hint can outlive its publisher; the\n" +
		"chord rows price the raw substrate, whose owner is a hash, not a neighbor\n")
	return b.String()
}

// RenderTiming prints the wall-clock view of the table (non-deterministic;
// cmd/figures prints it to the terminal but never writes it into the
// figure file).
func (r *GrandStudyResult) RenderTiming() string {
	var b strings.Builder
	b.WriteString("g1 wall-clock (non-deterministic; excluded from the figure):\n")
	fmt.Fprintf(&b, "%-38s %12s\n", "scheme / condition", "wall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-38s %12s\n",
			row.Name, time.Duration(row.WallMs*float64(time.Millisecond)).Round(time.Millisecond))
	}
	return b.String()
}
