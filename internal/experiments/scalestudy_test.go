package experiments

import (
	"strings"
	"testing"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/netmodel"
)

// TestScaleStudyDeterministicAcrossWorkers is the engine's contract at
// study level: the rendered figure must be byte-identical whether the
// (size, algorithm) grid runs on one worker or eight.
func TestScaleStudyDeterministicAcrossWorkers(t *testing.T) {
	sizes := []int{300, 700}
	prev := engine.SetWorkers(1)
	defer engine.SetWorkers(prev)
	serial := ScaleStudyAt(sizes, 8, 1)
	engine.SetWorkers(8)
	parallel := ScaleStudyAt(sizes, 8, 1)
	if a, b := serial.Render(), parallel.Render(); a != b {
		t.Fatalf("figure differs between -workers=1 and -workers=8:\n--- w=1 ---\n%s\n--- w=8 ---\n%s", a, b)
	}
	// The per-cell deterministic fields must match exactly, not just the
	// formatted table.
	for i := range serial.Cells {
		a, b := serial.Cells[i], parallel.Cells[i]
		a.WallMs, a.QPS = 0, 0
		b.WallMs, b.QPS = 0, 0
		if a != b {
			t.Fatalf("cell %d differs across worker counts:\n  w=1: %+v\n  w=8: %+v", i, a, b)
		}
	}
}

// TestScaleStudyShardInvariance is the sharded kernel's contract at study
// level: the rendered figure — and every deterministic cell field — must be
// byte-identical at every -shards value. Run with -race in CI, this is also
// the cross-shard mailbox and barrier stress for the full p2p stack.
func TestScaleStudyShardInvariance(t *testing.T) {
	sizes := []int{300, 700}
	atShards := func(k int) *ScaleStudyResult {
		prev := engine.SetShards(k)
		defer engine.SetShards(prev)
		return ScaleStudyAt(sizes, 8, 1)
	}
	base := atShards(1)
	for _, k := range []int{2, 4} {
		got := atShards(k)
		if a, b := base.Render(), got.Render(); a != b {
			t.Fatalf("figure differs between -shards=1 and -shards=%d:\n--- k=1 ---\n%s\n--- k=%d ---\n%s", k, a, k, b)
		}
		for i := range base.Cells {
			a, b := base.Cells[i], got.Cells[i]
			a.WallMs, a.QPS = 0, 0
			b.WallMs, b.QPS = 0, 0
			if a != b {
				t.Fatalf("cell %d differs across shard counts:\n  k=1: %+v\n  k=%d: %+v", i, a, k, b)
			}
		}
	}
}

func TestScaleStudyCellsWellFormed(t *testing.T) {
	r := ScaleStudyAt([]int{400}, 6, 2)
	if len(r.Cells) != len(scaleAlgos) {
		t.Fatalf("%d cells, want %d", len(r.Cells), len(scaleAlgos))
	}
	for i, c := range r.Cells {
		if c.Algo != scaleAlgos[i] {
			t.Fatalf("cell %d algo %q, want %q (merge order broken)", i, c.Algo, scaleAlgos[i])
		}
		if c.Success < 0 || c.Success > 1 {
			t.Fatalf("%s success %v outside [0,1]", c.Algo, c.Success)
		}
		if c.CostPerQuery <= 0 {
			t.Fatalf("%s accounted no cost: %+v", c.Algo, c)
		}
		if c.Hosts < 200 || c.Members <= 0 || c.Members > c.Hosts {
			t.Fatalf("%s population implausible: %+v", c.Algo, c)
		}
	}
	static, expand, chord := r.Cells[0], r.Cells[1], r.Cells[2]
	if static.MsgsPerQuery != 0 || static.Events != 0 {
		t.Fatalf("static meridian priced wire traffic: %+v", static)
	}
	if expand.MsgsPerQuery <= 0 || expand.Events == 0 {
		t.Fatalf("expanding search priced no wire traffic: %+v", expand)
	}
	if chord.MsgsPerQuery <= 0 || chord.Events == 0 {
		t.Fatalf("chord priced no wire traffic: %+v", chord)
	}
	out := r.Render()
	for _, want := range []string{"meridian", "expanding", "chord", "cost/q", "events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall") {
		t.Fatal("Render leaked wall-clock fields; they belong to RenderTiming only")
	}
	if timing := r.RenderTiming(); !strings.Contains(timing, "ops/sec") {
		t.Fatalf("timing render missing throughput:\n%s", timing)
	}
}

// TestScaleTopoConfigLandsNearTarget pins the generator calibration: the
// realised host count must stay within a modest band of the request, and
// the 10k-and-up classes must not undershoot (the study's claims name
// those populations).
func TestScaleTopoConfigLandsNearTarget(t *testing.T) {
	for _, target := range []int{1000, 10000} {
		top := netmodel.Generate(scaleTopoConfig(target), 1+int64(target))
		got := top.NumHosts()
		lo, hi := int(0.75*float64(target)), int(1.6*float64(target))
		if got < lo || got > hi {
			t.Fatalf("target %d generated %d hosts, outside [%d, %d]", target, got, lo, hi)
		}
		if target >= 10000 && got < target {
			t.Fatalf("target %d undershot: %d hosts", target, got)
		}
	}
}
