package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/stats"
)

// This file reproduces the Section 3.1 DNS-server study behind Figures 3,
// 4 and 5: cluster ~22k recursive DNS servers by closest upstream PoP
// (rockettrace), predict pair latencies from ping triangulation around the
// deepest common router, measure them with King, and compare.

// dnsPair is one measured DNS-server pair.
type dnsPair struct {
	a, b        netmodel.HostID
	predictedMs float64
	measuredMs  float64
	sameDomain  bool
	// hopsA/hopsB are the servers' hop distances beyond the common router.
	hopsA, hopsB int
}

// DNSStudyResult carries the raw pair measurements all three figures draw
// from, plus the attrition accounting the paper reports.
type DNSStudyResult struct {
	Servers        int
	Clusters       int
	PairsTried     int
	DiscardNeg     int // negative latency after subtraction
	DiscardHops    int // > MaxHops from the common router
	DiscardFar     int // predicted > 100 ms
	DiscardKing    int // King failed (same domain or otherwise)
	Pairs          []dnsPair
	IntraDomain    []dnsPair // same-domain pairs (predicted only)
	MaxHops        int
	PredCutoffMs   float64
	PairsPerServer int
}

// runDNSStudy executes the shared pipeline.
func runDNSStudy(env *Env) *DNSStudyResult {
	res := &DNSStudyResult{MaxHops: 10, PredCutoffMs: 100, PairsPerServer: 4}

	servers := env.Top.DNSServers()
	if env.Scale == Quick && len(servers) > 4000 {
		servers = servers[:4000]
	}
	res.Servers = len(servers)

	// Step 1: rockettrace every server once from the measurement host,
	// cache the trace, and map it to its closest upstream PoP.
	traces := make(map[netmodel.HostID][]measure.AnnotatedHop, len(servers))
	clusters := make(map[measure.PoPKey][]netmodel.HostID)
	for _, s := range servers {
		tr := env.Tools.Rockettrace(env.MH, s)
		traces[s] = tr
		key, _, _, ok := env.Tools.ClosestUpstreamPoP(env.MH, s)
		if !ok {
			continue
		}
		clusters[key] = append(clusters[key], s)
	}
	res.Clusters = len(clusters)

	// Step 2: pair servers within clusters, ~PairsPerServer pairs each.
	src := rng.New(env.Seed + 1003)
	type pairKey [2]netmodel.HostID
	seen := make(map[pairKey]bool)
	var pairs []pairKey
	keys := make([]measure.PoPKey, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].AS != keys[j].AS {
			return keys[i].AS < keys[j].AS
		}
		return keys[i].City < keys[j].City
	})
	for _, k := range keys {
		members := clusters[k]
		if len(members) < 2 {
			continue
		}
		for _, a := range members {
			for t := 0; t < res.PairsPerServer; t++ {
				b := members[src.Intn(len(members))]
				if b == a {
					continue
				}
				pk := pairKey{a, b}
				if b < a {
					pk = pairKey{b, a}
				}
				if !seen[pk] {
					seen[pk] = true
					pairs = append(pairs, pk)
				}
			}
		}
	}

	// Step 3: predict and measure each pair.
	pingCache := make(map[netmodel.HostID]float64)
	ping := func(h netmodel.HostID) (float64, bool) {
		if v, ok := pingCache[h]; ok {
			return v, v >= 0
		}
		d, err := env.Tools.Ping(env.MH, h)
		if err != nil {
			pingCache[h] = -1
			return 0, false
		}
		ms := netmodel.Ms(d)
		pingCache[h] = ms
		return ms, true
	}
	routerPing := make(map[netmodel.RouterID]float64)
	pingR := func(r netmodel.RouterID) (float64, bool) {
		if v, ok := routerPing[r]; ok {
			return v, v >= 0
		}
		d, err := env.Tools.PingRouter(env.MH, r)
		if err != nil {
			routerPing[r] = -1
			return 0, false
		}
		ms := netmodel.Ms(d)
		routerPing[r] = ms
		return ms, true
	}

	for _, pk := range pairs {
		a, b := pk[0], pk[1]
		res.PairsTried++
		ta, tb := traces[a], traces[b]
		r, idxA, idxB, _, ok := measure.DeepestCommonRouter(ta, tb)
		if !ok {
			continue
		}
		hopsA := len(ta) - idxA
		hopsB := len(tb) - idxB
		sameDom := env.Tools.SameDomain(a, b)

		pa, okA := ping(a)
		pb, okB := ping(b)
		pr, okR := pingR(r)
		if !okA || !okB || !okR {
			continue
		}
		latA, latB := pa-pr, pb-pr
		if latA < 0 || latB < 0 {
			res.DiscardNeg++
			continue
		}
		predicted := latA + latB
		p := dnsPair{a: a, b: b, predictedMs: predicted, sameDomain: sameDom, hopsA: hopsA, hopsB: hopsB}

		if sameDom {
			// King is unusable; keep for the intra-domain distribution
			// (hop filters applied at render time).
			res.IntraDomain = append(res.IntraDomain, p)
			continue
		}
		if hopsA > res.MaxHops || hopsB > res.MaxHops {
			res.DiscardHops++
			continue
		}
		if predicted > res.PredCutoffMs {
			res.DiscardFar++
			continue
		}
		d, err := env.Tools.King(env.MH, a, b)
		if err != nil {
			res.DiscardKing++
			continue
		}
		p.measuredMs = netmodel.Ms(d)
		res.Pairs = append(res.Pairs, p)
	}
	return res
}

// dnsStudyCache shares the study across Figures 3-5 in one process.
var (
	dnsMu    sync.Mutex
	dnsCache = map[*Env]*DNSStudyResult{}
)

// DNSStudy returns the (cached) Section 3.1 study for an environment.
func DNSStudy(env *Env) *DNSStudyResult {
	dnsMu.Lock()
	defer dnsMu.Unlock()
	if r, ok := dnsCache[env]; ok {
		return r
	}
	r := runDNSStudy(env)
	dnsCache[env] = r
	return r
}

// ComputeDNSStudy runs the study without caching (benchmarks time it).
func ComputeDNSStudy(env *Env) *DNSStudyResult { return runDNSStudy(env) }

// Fig3Result is the Figure 3 reproduction: the cumulative distribution of
// the prediction measure (predicted / measured latency).
type Fig3Result struct {
	Pairs          int
	FractionIn05_2 float64
	CDF            *stats.CDF
}

// Fig3 computes the figure.
func Fig3(env *Env) *Fig3Result { return Fig3From(DNSStudy(env)) }

// Fig3From computes the figure from an existing study.
func Fig3From(study *DNSStudyResult) *Fig3Result {
	ratios := make([]float64, 0, len(study.Pairs))
	for _, p := range study.Pairs {
		ratios = append(ratios, p.predictedMs/p.measuredMs)
	}
	cdf := stats.NewCDF(ratios)
	return &Fig3Result{
		Pairs:          len(ratios),
		FractionIn05_2: cdf.FractionWithin(0.5, 2),
		CDF:            cdf,
	}
}

// Render prints the figure's series: cumulative count of pairs vs ratio.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: CDF of prediction measure (predicted/measured latency)\n")
	fmt.Fprintf(&b, "%d DNS-server pairs; %.0f%% within [0.5, 2] (paper: ~65%% of 18,019 pairs)\n",
		r.Pairs, r.FractionIn05_2*100)
	fmt.Fprintf(&b, "%12s %20s\n", "ratio", "cumulative pairs")
	for _, x := range []float64{0.25, 0.5, 0.7, 1.0, 1.4, 2.0, 4.0, 8.0} {
		fmt.Fprintf(&b, "%12.2f %20d\n", x, r.CDF.CountAtMost(x))
	}
	return b.String()
}

// Fig4Result is the Figure 4 reproduction: prediction measure vs predicted
// latency, binned percentiles.
type Fig4Result struct {
	Bins []stats.PercentileBin
}

// Fig4 computes the figure.
func Fig4(env *Env) *Fig4Result { return Fig4From(DNSStudy(env)) }

// Fig4From computes the figure from an existing study.
func Fig4From(study *DNSStudyResult) *Fig4Result {
	var xs, ys []float64
	for _, p := range study.Pairs {
		xs = append(xs, p.predictedMs)
		ys = append(ys, p.predictedMs/p.measuredMs)
	}
	return &Fig4Result{Bins: stats.BinnedPercentiles(xs, ys, 12)}
}

// Render prints the binned percentile table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: prediction measure vs predicted latency (binned percentiles)\n")
	fmt.Fprintf(&b, "%12s %8s %8s %8s %8s %8s %8s\n",
		"pred(ms)", "n", "p5", "p25", "median", "p75", "p95")
	for _, bin := range r.Bins {
		fmt.Fprintf(&b, "%12.2f %8d %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			bin.X, bin.Count, bin.P5, bin.P25, bin.Median, bin.P75, bin.P95)
	}
	b.WriteString("paper: median rises with predicted latency (lag inflates small measurements,\nalternate paths shrink large ones)\n")
	return b.String()
}

// Fig5Result is the Figure 5 reproduction: intra-domain vs inter-domain
// latency CDFs.
type Fig5Result struct {
	IntraMax5  *stats.CDF // same-domain pairs, <=5 hops (predicted)
	IntraMax10 *stats.CDF // same-domain pairs, <=10 hops (predicted)
	InterKing  *stats.CDF // different-domain pairs, King-measured
	InterPred  *stats.CDF // different-domain pairs, predicted
}

// Fig5 computes the figure.
func Fig5(env *Env) *Fig5Result { return Fig5From(DNSStudy(env)) }

// Fig5From computes the figure from an existing study.
func Fig5From(study *DNSStudyResult) *Fig5Result {
	var intra5, intra10, interK, interP []float64
	for _, p := range study.IntraDomain {
		if p.hopsA <= 5 && p.hopsB <= 5 {
			intra5 = append(intra5, p.predictedMs)
		}
		if p.hopsA <= 10 && p.hopsB <= 10 {
			intra10 = append(intra10, p.predictedMs)
		}
	}
	for _, p := range study.Pairs {
		interK = append(interK, p.measuredMs)
		interP = append(interP, p.predictedMs)
	}
	return &Fig5Result{
		IntraMax5:  stats.NewCDF(intra5),
		IntraMax10: stats.NewCDF(intra10),
		InterKing:  stats.NewCDF(interK),
		InterPred:  stats.NewCDF(interP),
	}
}

// Render prints the four CDFs at the paper's x positions.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: intra-domain vs inter-domain latency CDFs\n")
	fmt.Fprintf(&b, "samples: intra5=%d intra10=%d interKing=%d interPred=%d\n",
		r.IntraMax5.N(), r.IntraMax10.N(), r.InterKing.N(), r.InterPred.N())
	fmt.Fprintf(&b, "%10s %12s %12s %12s %12s\n",
		"lat(ms)", "intra(5hop)", "intra(10hop)", "inter(King)", "inter(pred)")
	for _, x := range []float64{0.01, 0.1, 0.3, 1, 3, 10, 30, 100} {
		fmt.Fprintf(&b, "%10.2f %12.3f %12.3f %12.3f %12.3f\n",
			x, r.IntraMax5.At(x), r.IntraMax10.At(x), r.InterKing.At(x), r.InterPred.At(x))
	}
	fmt.Fprintf(&b, "median intra(10hop)=%.3f ms vs inter(King)=%.3f ms (paper: ~an order of magnitude apart)\n",
		r.IntraMax10.Quantile(0.5), r.InterKing.Quantile(0.5))
	return b.String()
}
