package experiments

import (
	"fmt"
	"sort"
	"strings"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// This file reproduces the Section 4 Meridian simulations behind Figures 8
// and 9: ~2.5k peers in clustered latency matrices, ~2.4k in the overlay,
// 100 held-out targets, 5,000 closest-peer queries, three runs per
// configuration, β=0.5 and 16 nodes per ring.

// meridianRun holds one simulation run's scores.
type meridianRun struct {
	pExact   float64 // P(found peer is the correct closest peer)
	pCluster float64 // P(found peer in the target's cluster)
	// meanHubLat is the mean hub latency of found peers when the exact
	// peer was missed (Figure 9's second axis).
	meanHubLat float64
	meanProbes float64
}

// simulateMeridian runs one (matrix, overlay, queries) simulation. Ring
// construction sees the full membership, as the Meridian simulator's gossip
// effectively does.
func simulateMeridian(cfg latency.ClusteredConfig, merCfg meridian.Config, nTargets, nQueries int, seed int64) meridianRun {
	m, gt := latency.BuildClustered(cfg, seed)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(m.N(), nTargets, seed+1)
	merCfg.CandidatesPerNode = len(members)
	o := meridian.New(net, members, merCfg, seed+2)
	src := rng.New(seed + 3)

	exact, inCluster := 0, 0
	var hubLatSum float64
	hubLatN := 0
	var probeSum int64
	for q := 0; q < nQueries; q++ {
		tgt := targets[src.Intn(len(targets))]
		res := o.FindNearest(tgt)
		probeSum += res.Probes
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer {
			exact++
		} else if res.Peer >= 0 {
			hubLatSum += gt.HubLatMs[res.Peer]
			hubLatN++
		}
		if res.Peer >= 0 && gt.SameCluster(res.Peer, tgt) {
			inCluster++
		}
	}
	run := meridianRun{
		pExact:     float64(exact) / float64(nQueries),
		pCluster:   float64(inCluster) / float64(nQueries),
		meanProbes: float64(probeSum) / float64(nQueries),
	}
	if hubLatN > 0 {
		run.meanHubLat = hubLatSum / float64(hubLatN)
	}
	return run
}

// scaleParams returns (total peers, targets, queries, runs) per scale.
func scaleParams(s Scale) (peers, targets, queries, runs int) {
	if s == Full {
		return 2500, 100, 5000, 3
	}
	return 1200, 60, 800, 2
}

// summary3 holds median/min/max over runs.
type summary3 struct{ med, min, max float64 }

func summarize(xs []float64) summary3 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return summary3{med: cp[len(cp)/2], min: cp[0], max: cp[len(cp)-1]}
}

// Fig8Point is one x position of Figure 8.
type Fig8Point struct {
	ENsPerCluster int
	PExact        summary3
	PCluster      summary3
	MeanProbes    float64
}

// Fig8Result reproduces Figure 8.
type Fig8Result struct {
	Points []Fig8Point
	Delta  float64
}

// Fig8 sweeps the number of end-networks per cluster. Every (cluster-size,
// run) pair is one independent simulation — its matrix, overlay and query
// stream derive only from its own seed — so the grid fans out across the
// engine worker pool and the merged figure is identical at any -workers.
func Fig8(scale Scale, seed int64) *Fig8Result {
	peers, targets, queries, runs := scaleParams(scale)
	out := &Fig8Result{Delta: 0.2}
	ensSweep := []int{5, 25, 50, 125, 250}
	type cell struct{ ens, run int }
	var cells []cell
	for _, ens := range ensSweep {
		for r := 0; r < runs; r++ {
			cells = append(cells, cell{ens, r})
		}
	}
	results := engine.Map(engine.Config{Seed: seed, Label: "fig8"}, cells, func(_ *engine.Trial, c cell) meridianRun {
		cfg := latency.DefaultClusteredConfig()
		cfg.ENsPerCluster = c.ens
		cfg.TotalPeers = peers
		cfg.Delta = out.Delta
		return simulateMeridian(cfg, meridian.DefaultConfig(), targets, queries, seed+int64(1000*c.ens+c.run))
	})
	for i, ens := range ensSweep {
		var pe, pc []float64
		var probes float64
		for _, run := range results[i*runs : (i+1)*runs] {
			pe = append(pe, run.pExact)
			pc = append(pc, run.pCluster)
			probes += run.meanProbes
		}
		out.Points = append(out.Points, Fig8Point{
			ENsPerCluster: ens,
			PExact:        summarize(pe),
			PCluster:      summarize(pc),
			MeanProbes:    probes / float64(runs),
		})
	}
	return out
}

// Render prints the figure's two series.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Meridian success vs end-networks per cluster (δ=%.1f, β=0.5, 16/ring, 2 peers/EN)\n", r.Delta)
	fmt.Fprintf(&b, "%8s %28s %28s %10s\n", "#ENs", "P(exact closest) med[min,max]", "P(correct cluster)", "probes/q")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %12.3f [%5.3f,%5.3f] %12.3f [%5.3f,%5.3f] %10.1f\n",
			p.ENsPerCluster,
			p.PExact.med, p.PExact.min, p.PExact.max,
			p.PCluster.med, p.PCluster.min, p.PCluster.max,
			p.MeanProbes)
	}
	b.WriteString("paper: P(exact) peaks near 25 ENs then falls as the clustering condition bites;\nP(correct cluster) rises monotonically toward 1\n")
	return b.String()
}

// Fig9Point is one δ position of Figure 9.
type Fig9Point struct {
	Delta      float64
	PExact     summary3
	HubLat     summary3 // mean hub latency of non-exact found peers, per run
	MeanProbes float64
}

// Fig9Result reproduces Figure 9.
type Fig9Result struct {
	ENsPerCluster int
	Points        []Fig9Point
}

// Fig9 sweeps δ at 125 end-networks per cluster, fanning the (δ, run) grid
// out across the engine pool like Fig8.
func Fig9(scale Scale, seed int64) *Fig9Result {
	peers, targets, queries, runs := scaleParams(scale)
	out := &Fig9Result{ENsPerCluster: 125}
	deltaSweep := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	type cell struct {
		delta float64
		run   int
	}
	var cells []cell
	for _, delta := range deltaSweep {
		for r := 0; r < runs; r++ {
			cells = append(cells, cell{delta, r})
		}
	}
	results := engine.Map(engine.Config{Seed: seed, Label: "fig9"}, cells, func(_ *engine.Trial, c cell) meridianRun {
		cfg := latency.DefaultClusteredConfig()
		cfg.ENsPerCluster = out.ENsPerCluster
		cfg.TotalPeers = peers
		cfg.Delta = c.delta
		return simulateMeridian(cfg, meridian.DefaultConfig(), targets, queries, seed+int64(10000*c.delta)+int64(c.run))
	})
	for i, delta := range deltaSweep {
		var pe, hl []float64
		var probes float64
		for _, run := range results[i*runs : (i+1)*runs] {
			pe = append(pe, run.pExact)
			hl = append(hl, run.meanHubLat)
			probes += run.meanProbes
		}
		out.Points = append(out.Points, Fig9Point{
			Delta:      delta,
			PExact:     summarize(pe),
			HubLat:     summarize(hl),
			MeanProbes: probes / float64(runs),
		})
	}
	return out
}

// Render prints the figure's two series.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: Meridian accuracy vs δ (%d ENs/cluster, β=0.5, 2 peers/EN)\n", r.ENsPerCluster)
	fmt.Fprintf(&b, "%8s %28s %28s %10s\n", "δ", "P(exact closest) med[min,max]", "hub-lat of found (ms)", "probes/q")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.1f %12.3f [%5.3f,%5.3f] %12.2f [%5.2f,%5.2f] %10.1f\n",
			p.Delta,
			p.PExact.med, p.PExact.min, p.PExact.max,
			p.HubLat.med, p.HubLat.min, p.HubLat.max,
			p.MeanProbes)
	}
	b.WriteString("paper: P(exact) rises with δ (the condition weakens); the found peer's hub latency\nfalls because Meridian preferentially lands on peers near the hub\n")
	return b.String()
}
