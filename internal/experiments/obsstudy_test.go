package experiments

import (
	"strings"
	"testing"
)

// TestObsStudyTraceInvariance is the figure's core passivity claim as a
// determinism test: attaching a flight recorder to every cell must not
// change a single byte of the rendered figure — the recorder writes into
// a preallocated ring on paths the schemes already execute, draws no
// randomness and schedules no events. The traced run must also actually
// capture hops, or the invariance would be vacuous.
func TestObsStudyTraceInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("wire study too heavy for -short")
	}
	const peers, targets, lookups = 120, 12, 6
	plain := ObsStudyAt(peers, targets, lookups, 1, false)
	traced := ObsStudyAt(peers, targets, lookups, 1, true)
	if got, want := traced.Render(), plain.Render(); got != want {
		t.Fatalf("figure differs with tracing enabled:\n--- traced ---\n%s\n--- plain ---\n%s", got, want)
	}
	for _, c := range plain.Cells {
		if c.Trace != nil {
			t.Fatalf("untraced cell %s/%s carries a recorder", c.Scheme, c.Cond)
		}
	}
	var hops uint64
	schemes := map[string]bool{}
	for _, c := range traced.Cells {
		if c.Trace == nil {
			t.Fatalf("traced cell %s/%s has no recorder", c.Scheme, c.Cond)
		}
		hops += c.Trace.Recorded()
		for _, h := range c.Trace.Snapshot() {
			schemes[h.Scheme] = true
		}
	}
	if hops == 0 {
		t.Fatal("traced run recorded no hops")
	}
	for _, s := range obsStudySchemes {
		if !schemes[s] {
			t.Errorf("no %s hops in any trace", s)
		}
	}
}

// TestObsStudyFigureContents sanity-checks the rendered figure without
// pinning bytes (the golden does that): every scheme and condition row is
// present and the quantiles are ordered.
func TestObsStudyFigureContents(t *testing.T) {
	if testing.Short() {
		t.Skip("wire study too heavy for -short")
	}
	r := ObsStudyAt(120, 12, 6, 1, false)
	if len(r.Cells) != len(obsStudySchemes)*len(obsStudyConditions()) {
		t.Fatalf("got %d cells", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Lookups == 0 {
			t.Errorf("%s/%s issued no lookups", c.Scheme, c.Cond)
		}
		if c.P50 > c.P99 || c.P99 > c.P999 {
			t.Errorf("%s/%s quantiles out of order: %.1f %.1f %.1f", c.Scheme, c.Cond, c.P50, c.P99, c.P999)
		}
		if c.LoadMax < c.LoadP99 || c.LoadP99 < c.LoadP50 {
			t.Errorf("%s/%s load distribution out of order", c.Scheme, c.Cond)
		}
		if c.MsgMix == "" {
			t.Errorf("%s/%s has no message mix", c.Scheme, c.Cond)
		}
	}
	text := r.Render()
	for _, s := range obsStudySchemes {
		if !strings.Contains(text, s) {
			t.Errorf("figure lacks scheme %s", s)
		}
	}
	if strings.Contains(text, "wall") {
		t.Error("figure leaks wall-clock text (must live in RenderTiming)")
	}
}
