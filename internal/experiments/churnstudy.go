package experiments

import (
	"fmt"
	"strings"
	"time"

	"nearestpeer/internal/engine"
	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// This file re-measures the Section 4 cost claim with the network in the
// way: the same clustered matrices and the same Meridian walk, but run as
// a message protocol on internal/p2p — with packet loss, per-RPC timeouts
// and churn — against the static function-call simulation as the baseline.
// The paper's point is that the clustering condition already forces
// brute-force probing; this study shows what the wire adds on top.

// RuntimeOpts configures one message-level Meridian run.
type RuntimeOpts struct {
	// Loss is the one-way packet loss probability.
	Loss float64
	// Beta overrides the Meridian β acceptance threshold when > 0.
	Beta float64
	// RingSize overrides the nodes-per-ring bound when > 0.
	RingSize int
	// Churn enables the membership process (with ChurnCfg, or the
	// experiment default when zero).
	Churn    bool
	ChurnCfg p2p.ChurnConfig
	// Queries is the number of sequential closest-peer queries.
	Queries int
	// Seed drives the whole run.
	Seed int64
	// Horizon caps virtual time as a watchdog (default 2 h).
	Horizon time.Duration
	// Recorder, when non-nil, is attached to the runtime as the lookup
	// flight recorder (npsim -trace). It is passive: results are
	// byte-identical with or without it.
	Recorder *obs.Recorder
	// Faults, when non-nil, installs the deterministic fault plan on the
	// runtime (npsim -faults). A nil plan injects nothing.
	Faults *faults.Plan
}

// ChurnRow is one condition's scores, static or message-level.
type ChurnRow struct {
	Name string
	// PExact is P(returned peer is the true closest live member).
	PExact float64
	// PCluster is P(returned peer in the target's cluster).
	PCluster float64
	// Done is the fraction of queries that completed before deadline
	// with a peer (always 1 for the static baseline, which cannot fail).
	Done float64
	// MeanProbes is query-time RTT measurements per query.
	MeanProbes float64
	// MeanMsgs is wire messages per query, maintenance included (the
	// static baseline has no wire; its entry is 0).
	MeanMsgs float64
	// MeanHops is overlay hops per query.
	MeanHops float64
	// MeanMs is mean virtual milliseconds per completed query.
	MeanMs float64
	// Timeouts is the total RPC timeouts across the run.
	Timeouts int64
	// Leaves and Joins count churn events during the run.
	Leaves, Joins int
}

// experimentChurnConfig is the churn used by the study: sessions short
// enough that a meaningful slice of the overlay turns over while the
// query batch runs.
func experimentChurnConfig() p2p.ChurnConfig {
	return p2p.ChurnConfig{
		MeanSession:  90 * time.Second,
		SessionSigma: 1,
		MeanOffline:  20 * time.Second,
		GracefulProb: 0.5,
	}
}

// RunMessageMeridian stands up the message-level overlay on a fresh kernel,
// drives the churn process if asked, runs the queries sequentially in
// virtual time, and scores each answer against the true nearest *live*
// member at query issue. gt may be nil (no cluster scoring).
func RunMessageMeridian(m latency.Matrix, gt *latency.GroundTruth, members, targets []int, opts RuntimeOpts) ChurnRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	kernel := sim.New()
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	merCfg := p2p.DefaultMeridianConfig()
	if opts.Beta > 0 {
		merCfg.Beta = opts.Beta
	}
	if opts.RingSize > 0 {
		merCfg.RingSize = opts.RingSize
	}
	mer := p2p.NewMeridian(rt, merCfg, opts.Seed+1)
	for _, id := range members {
		mer.Join(p2p.NodeID(id))
	}
	for _, id := range targets {
		rt.AddNode(p2p.NodeID(id))
	}
	kernel.Run() // drain join traffic: overlay construction completes

	var churn *p2p.Churn
	if opts.Churn {
		ccfg := opts.ChurnCfg
		if ccfg.MeanSession == 0 {
			ccfg = experimentChurnConfig()
		}
		ccfg.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, ccfg, opts.Seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { mer.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) { mer.Join(id) }
		ids := make([]p2p.NodeID, len(members))
		for i, id := range members {
			ids[i] = p2p.NodeID(id)
		}
		churn.Drive(ids)
	}

	row := ChurnRow{}
	src := rng.New(opts.Seed + 3)
	msgsAtQueryStart := rt.Metrics.MsgsSent
	exact, inCluster, done := 0, 0, 0
	var probes, hops int64
	var elapsedMs float64
	q := 0
	var step func()
	step = func() {
		if q >= opts.Queries {
			kernel.Stop()
			return
		}
		q++
		tgt := targets[src.Intn(len(targets))]
		oracle := overlay.TrueNearest(m, tgt, mer.LiveMembers())
		mer.FindNearest(p2p.NodeID(tgt), p2p.NodeID(tgt), func(res p2p.QueryResult) {
			probes += res.Probes
			if res.Completed && res.Peer >= 0 {
				done++
				hops += int64(res.Hops)
				elapsedMs += float64(res.Elapsed) / float64(time.Millisecond)
				if res.Peer == oracle.Peer {
					exact++
				}
				if gt != nil && gt.SameCluster(res.Peer, tgt) {
					inCluster++
				}
			}
			kernel.After(100*time.Millisecond, step)
		})
	}
	kernel.After(0, step)
	kernel.At(opts.Horizon, kernel.Stop) // watchdog against a stalled chain
	kernel.Run()

	// Normalise by the queries actually issued: if the horizon watchdog
	// fired first, the unissued remainder must not be scored as failures.
	n := float64(q)
	if q == 0 {
		n = 1
	}
	row.PExact = float64(exact) / n
	row.PCluster = float64(inCluster) / n
	row.Done = float64(done) / n
	row.MeanProbes = float64(probes) / n
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-msgsAtQueryStart) / n
	row.MeanHops = float64(hops) / n
	if done > 0 {
		row.MeanMs = elapsedMs / float64(done)
	}
	row.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// runStaticMeridian is the function-call baseline on the same matrix,
// membership and query stream.
func runStaticMeridian(m latency.Matrix, gt *latency.GroundTruth, members, targets []int, queries int, seed int64) ChurnRow {
	net := overlay.NewNetwork(m)
	cfg := meridian.DefaultConfig()
	// The message-level port fills rings by reservoir sampling (there is
	// no stable candidate pool under churn), so the baseline uses the
	// matching SelectRandom policy: the comparison isolates the wire,
	// not the ring-selection heuristic.
	cfg.Selection = meridian.SelectRandom
	o := meridian.New(net, members, cfg, seed+1)
	src := rng.New(seed + 3)
	exact, inCluster := 0, 0
	var probes, hops int64
	net.ResetQueryProbes()
	for q := 0; q < queries; q++ {
		tgt := targets[src.Intn(len(targets))]
		res := o.FindNearest(tgt)
		probes += res.Probes
		hops += int64(res.Hops)
		if res.Peer == overlay.TrueNearest(m, tgt, members).Peer {
			exact++
		}
		if gt != nil && res.Peer >= 0 && gt.SameCluster(res.Peer, tgt) {
			inCluster++
		}
	}
	n := float64(queries)
	return ChurnRow{
		PExact:     float64(exact) / n,
		PCluster:   float64(inCluster) / n,
		Done:       1,
		MeanProbes: float64(probes) / n,
		MeanHops:   float64(hops) / n,
	}
}

// ChurnStudyResult compares static and message-level Meridian across wire
// conditions.
type ChurnStudyResult struct {
	Peers, Queries int
	ENsPerCluster  int
	Delta          float64
	Rows           []ChurnRow
}

// churnStudyParams returns (peers, targets, queries) per scale. The
// message-level overlay multiplies every probe into several wire events,
// so the populations sit below the Figure 8/9 sweeps.
func churnStudyParams(s Scale) (peers, targets, queries int) {
	if s == Full {
		return 2500, 100, 1000
	}
	return 600, 40, 120
}

// ChurnStudy runs the comparison on the paper's default clustered matrix.
// The five conditions share the matrix, ground truth and member split —
// all read-only — and otherwise build their own kernel, runtime and
// overlay, so they fan out as engine trials and merge in condition order.
func ChurnStudy(scale Scale, seed int64) *ChurnStudyResult {
	peers, nTargets, queries := churnStudyParams(scale)
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = peers
	m, gt := latency.BuildClustered(cfg, seed)
	members, targets := overlay.Split(m.N(), nTargets, seed+1)

	out := &ChurnStudyResult{
		Peers:         m.N(),
		Queries:       queries,
		ENsPerCluster: cfg.ENsPerCluster,
		Delta:         cfg.Delta,
	}
	conditions := []wireCondition{
		{name: "static (function calls)", static: true},
		{name: "messages, loss=0%"},
		{name: "messages, loss=5%", loss: 0.05},
		{name: "messages, churn", churn: true},
		{name: "messages, loss=5% + churn", loss: 0.05, churn: true},
	}
	out.Rows = engine.Map(engine.Config{Seed: seed, Label: "churnstudy"}, conditions,
		func(_ *engine.Trial, c wireCondition) ChurnRow {
			var row ChurnRow
			if c.static {
				row = runStaticMeridian(m, gt, members, targets, queries, seed)
			} else {
				row = RunMessageMeridian(m, gt, members, targets, RuntimeOpts{
					Loss: c.loss, Churn: c.churn, Queries: queries, Seed: seed,
				})
			}
			row.Name = c.name
			return row
		})
	return out
}

// wireCondition is one study row's wire setting, shared by the c1 and c2
// condition tables.
type wireCondition struct {
	name   string
	static bool
	loss   float64
	churn  bool
}

// Render prints the comparison table.
func (r *ChurnStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Churn study: Meridian as a message protocol (internal/p2p) vs static simulation\n")
	fmt.Fprintf(&b, "%d peers, %d queries, clustered matrix (%d ENs/cluster, δ=%.1f)\n\n",
		r.Peers, r.Queries, r.ENsPerCluster, r.Delta)
	fmt.Fprintf(&b, "%-26s %8s %9s %6s %9s %8s %6s %8s %9s\n",
		"condition", "P(exact)", "P(clust)", "done", "probes/q", "msgs/q", "hops/q", "ms/q", "timeouts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-26s %8.3f %9.3f %6.2f %9.1f %8.1f %6.1f %8.0f %9d",
			row.Name, row.PExact, row.PCluster, row.Done,
			row.MeanProbes, row.MeanMsgs, row.MeanHops, row.MeanMs, row.Timeouts)
		if row.Leaves > 0 || row.Joins > 0 {
			fmt.Fprintf(&b, "  (%d leaves, %d joins)", row.Leaves, row.Joins)
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nreading: under the clustering condition the walk already probes brute-force;\n" +
		"loss converts probes into timeouts and repeat work, and churn adds re-join\n" +
		"maintenance — the wire raises the price of the same degenerate search\n")
	return b.String()
}
