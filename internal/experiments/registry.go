package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nearestpeer/internal/azureus"
	"nearestpeer/internal/beacon"
	"nearestpeer/internal/dht"
	"nearestpeer/internal/kargerruhl"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/meridian"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/pic"
	"nearestpeer/internal/rendezvous"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/tapestry"
	"nearestpeer/internal/tiers"
	"nearestpeer/internal/vivaldi"
)

// This file is the scheme registry: the single dispatch point for every
// nearest-peer scheme the studies exercise. Each registered Scheme bundles
// up to four study legs — the c2 static baseline, the c2 wire deployment,
// the r1/o1 lookup bring-up, and the s1 scale cell — so the study files
// enumerate scheme NAMES and the registry owns the bring-up. The four
// copy-pasted scheme switches this replaced (mitigationstudy, faultstudy,
// obsstudy, scalestudy) each grew independently; a scheme added here is
// available to every study that asks for a leg it implements.

// Scheme is one registered nearest-peer scheme: a bundle of study legs,
// any of which may be nil when the scheme does not support that study.
type Scheme struct {
	// Static runs the function-call baseline through the c2 methodology
	// (one row: probes and hops priced, no wire).
	Static func(env *Env, tools *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow
	// Wire runs the message-level deployment through the c2 methodology
	// (one row: real RPCs over p2p.Runtime under loss/churn/faults).
	Wire func(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow
	// Lookup stands the scheme up for the cadenced lookup studies (r1/o1):
	// bring-up on the cell's runtime, returning the query entry point.
	Lookup func(le *lookupEnv) lookupSetup
	// Scale runs one s1 cell over a (usually large) generated topology.
	Scale func(top *netmodel.Topology, queries int, seed int64) ScaleCell
}

// schemeFor resolves a scheme name, with the full roster in the error.
func schemeFor(name string) (Scheme, error) {
	s, ok := schemes[name]
	if !ok {
		return Scheme{}, fmt.Errorf("experiments: unknown scheme %q (schemes: %s)",
			name, strings.Join(SchemeNames(), ", "))
	}
	return s, nil
}

// SchemeNames lists every registered scheme, sorted.
func SchemeNames() []string {
	out := make([]string, 0, len(schemes))
	for name := range schemes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookupEnv is the per-cell context the lookup studies (r1/o1) hand a
// scheme's Lookup leg: the cell's kernel and runtime, the member/target
// split in matrix-index space, the shared query-time RNG, and the cell's
// horizon and retry policy.
type lookupEnv struct {
	kernel  *sim.Sim
	rt      *p2p.Runtime
	ids     []p2p.NodeID
	targets []int
	src     *rng.Source
	horizon time.Duration
	retry   p2p.Policy
	// opLabel namespaces the DHT keys a lookup scheme writes ("r1", "o1").
	opLabel string
	seed    int64
}

// liveMember draws a member, redrawing up to 20 times while the draw is
// down (under heavy churn everyone may be down; the caller's op then fails
// honestly).
func (le *lookupEnv) liveMember() p2p.NodeID {
	id := le.ids[le.src.Intn(len(le.ids))]
	for tries := 0; tries < 20 && !le.rt.Alive(id); tries++ {
		id = le.ids[le.src.Intn(len(le.ids))]
	}
	return id
}

// lookupSetup is what a Lookup leg returns: when the cadenced stream may
// begin, how to issue one lookup (reporting success, the returned peer or
// -1, and the issuing origin or -1 for stretch scoring), and the churn
// hooks.
type lookupSetup struct {
	queryStart time.Duration
	issue      func(op int, done func(ok bool, peer int)) (origin int)
	onLeave    func(id p2p.NodeID, graceful bool)
	onJoin     func(id p2p.NodeID)
}

// meridianLookup is the r1/o1 bring-up of the message-level Meridian walk.
func meridianLookup(le *lookupEnv) lookupSetup {
	mcfg := p2p.DefaultMeridianConfig()
	mcfg.Retry = le.retry
	mer := p2p.NewMeridian(le.rt, mcfg, le.seed+1)
	for _, id := range le.ids {
		mer.Join(id)
	}
	for _, id := range le.targets {
		le.rt.AddNode(p2p.NodeID(id))
	}
	return lookupSetup{
		// Join traffic drains within virtual seconds; one minute is far
		// past overlay construction.
		queryStart: time.Minute,
		onLeave:    func(id p2p.NodeID, graceful bool) { mer.Leave(id, graceful) },
		onJoin:     func(id p2p.NodeID) { mer.Join(id) },
		issue: func(op int, done func(bool, int)) int {
			tgt := p2p.NodeID(le.targets[le.src.Intn(len(le.targets))])
			mer.FindNearest(tgt, tgt, func(res p2p.QueryResult) {
				done(res.Completed && res.Peer >= 0, res.Peer)
			})
			return int(tgt)
		},
	}
}

// chordLookup is the r1/o1 bring-up of the wire Chord ring: each op is one
// iterative lookup of a fresh key from a live member.
func chordLookup(le *lookupEnv) lookupSetup {
	ccfg := p2p.DefaultChordConfig()
	ccfg.Horizon = le.horizon
	ccfg.Retry = le.retry
	chord := p2p.NewChord(le.rt, ccfg, le.seed+1)
	joinEnd := chordJoinRamp(le.kernel, chord, le.ids, 0)
	return lookupSetup{
		queryStart: joinEnd + chordSettle,
		onLeave:    func(id p2p.NodeID, graceful bool) { chord.Leave(id, graceful) },
		onJoin:     func(id p2p.NodeID) { chord.Join(id) },
		issue: func(op int, done func(bool, int)) int {
			chord.Lookup(le.liveMember(), fmt.Sprintf("%s/%d", le.opLabel, op), func(res p2p.LookupResult) {
				done(res.OK, -1)
			})
			return -1
		},
	}
}

// vivaldiLookup is the r1/o1 bring-up of the gossip coordinate overlay.
func vivaldiLookup(le *lookupEnv) lookupSetup {
	wcfg := vivaldi.DefaultWireConfig()
	wcfg.Horizon = le.horizon
	wcfg.Retry = le.retry
	w := vivaldi.NewWire(le.rt, wcfg, le.seed+1)
	for _, id := range le.ids {
		w.Join(id)
	}
	for _, id := range le.targets {
		le.rt.AddNode(p2p.NodeID(id))
	}
	return lookupSetup{
		queryStart: vivaldiWarmup,
		onLeave:    func(id p2p.NodeID, graceful bool) { w.Leave(id, graceful) },
		onJoin:     func(id p2p.NodeID) { w.Join(id) },
		issue: func(op int, done func(bool, int)) int {
			tgt := p2p.NodeID(le.targets[le.src.Intn(len(le.targets))])
			w.FindNearest(tgt, func(r vivaldi.WireResult) {
				done(r.Found, int(r.Peer))
			})
			return int(tgt)
		},
	}
}

// runStaticFinderMitigation runs an overlay.Finder scheme's function-call
// baseline through the c2 methodology: the finder is built over the
// mitigation peers in matrix-index space (member i is peers[i]), one query
// per draw, scored against the close-peer threshold. build receives the
// row's base seed and must derive its own sub-seeds exactly as the
// scheme's Wire leg does, so the two legs share structure at 0% loss.
func runStaticFinderMitigation(env *Env, name string, peers []netmodel.HostID, queries int, seed int64,
	build func(net *overlay.Network, members []int, seed int64) overlay.Finder) MitigationRow {
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	net := overlay.NewNetwork(m)
	members := make([]int, len(peers))
	for i := range peers {
		members[i] = i
	}
	f := build(net, members, seed)
	src := rng.New(seed + 3)
	alive := func(netmodel.HostID) bool { return true }
	row := MitigationRow{Name: name + " static (function calls)"}
	found, near, nearDenom := 0, 0, 0
	var probes, hops int64
	var foundMs float64
	for q := 0; q < queries; q++ {
		idx := src.Intn(len(peers))
		target := peers[idx]
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		res := f.FindNearest(idx)
		probes += res.Probes
		hops += int64(res.Hops)
		if res.Peer >= 0 {
			found++
			trueMs := env.Top.RTTms(target, peers[res.Peer])
			foundMs += trueMs
			if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
				near++
			}
		}
	}
	n := float64(queries)
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	row.MeanHops = float64(hops) / n
	return row
}

// wireFinderBringup is when the shared wire harness runs a deployment's
// registration chain and starts queries: joins all land at t=0 and their
// traffic drains within virtual seconds.
const wireFinderBringup = time.Minute

// wireDeployment is what a scheme's deploy step hands the shared wire
// harness.
type wireDeployment struct {
	// join brings one member up (required); rejoin handles churn re-entry
	// (nil: join again); leave handles churn exit (nil: no protocol exit —
	// the member's soft state goes stale, as real directories do).
	join   func(id p2p.NodeID)
	rejoin func(id p2p.NodeID)
	leave  func(id p2p.NodeID, graceful bool)
	// bringup runs the post-join registration chain (directory Registers,
	// tracker announces, ...) and must call done exactly once; nil when the
	// scheme has no standing state beyond its handlers.
	bringup func(done func())
	// find runs one nearest-peer query from a member.
	find func(client p2p.NodeID, done func(p2p.FindResult))
}

// runWireFinderMitigation is the shared c2 wire harness for the
// FindResult-reporting scheme deployments: join everyone at t=0, run the
// registration chain at the bring-up mark, bill the standing state to the
// publish column, then the sequential query stream — queries issued by the
// peers themselves — under the asked-for loss, churn and faults. The
// deploy builds the scheme's base structure from opts.Seed exactly as the
// static leg does, so the 0%-loss wire row mirrors the static row's
// structure and draws.
func runWireFinderMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts,
	deploy func(rt *p2p.Runtime, net *overlay.Network, members []int, opts MitigationOpts) wireDeployment) MitigationRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	kernel := sim.New()
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	// The deployment's base structure is built over a noiseless overlay of
	// the same matrix — the identical build the static leg runs.
	net := overlay.NewNetwork(m)
	members := make([]int, len(peers))
	for i := range peers {
		members[i] = i
	}
	d := deploy(rt, net, members, opts)

	index := make(map[netmodel.HostID]p2p.NodeID, len(peers))
	ids := make([]p2p.NodeID, len(peers))
	for i := range peers {
		index[peers[i]] = p2p.NodeID(i)
		ids[i] = p2p.NodeID(i)
		d.join(p2p.NodeID(i))
	}

	var churn *p2p.Churn
	if opts.Churn {
		ccfg := opts.ChurnCfg
		if ccfg.MeanSession == 0 {
			ccfg = experimentChurnConfig()
		}
		ccfg.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, ccfg, opts.Seed+2)
		churn.OnLeave = d.leave
		churn.OnJoin = d.rejoin
		if churn.OnJoin == nil {
			churn.OnJoin = d.join
		}
	}

	row := MitigationRow{}
	src := rng.New(opts.Seed + 3)
	alive := func(h netmodel.HostID) bool { return rt.Alive(index[h]) }
	found, near, nearDenom := 0, 0, 0
	var probes, dead, hops, lookups, fails int64
	var foundMs float64
	var queryMsgsStart int64

	startSeq, issued := sequenceOps(kernel, opts.Queries, func(_ int, _ func() bool, complete func(apply func())) {
		target := peers[src.Intn(len(peers))]
		for tries := 0; tries < 20 && !alive(target); tries++ {
			target = peers[src.Intn(len(peers))]
		}
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		d.find(index[target], func(r p2p.FindResult) {
			complete(func() {
				probes += int64(r.Probes)
				dead += int64(r.DeadProbes)
				hops += int64(r.Hops)
				lookups += int64(r.RPCs)
				fails += int64(r.RPCFails)
				if r.Found {
					found++
					trueMs := env.Top.RTTms(target, peers[int(r.Peer)])
					foundMs += trueMs
					if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
						near++
					}
				}
			})
		})
	})

	startQueries := func() {
		queryMsgsStart = rt.Metrics.MsgsSent
		startSeq()
	}
	kernel.At(wireFinderBringup, func() {
		afterBringup := func() {
			// Everything sent so far is the scheme's standing-state bill:
			// registrations and whatever bring-up cost the runtime charged.
			row.PubMsgsPerPeer = float64(rt.Metrics.MsgsSent) / float64(len(peers))
			if churn != nil {
				churn.Drive(ids)
				// Let the membership process bite before measuring queries.
				kernel.After(30*time.Second, startQueries)
				return
			}
			startQueries()
		}
		if d.bringup != nil {
			d.bringup(afterBringup)
			return
		}
		afterBringup()
	})
	kernel.At(opts.Horizon, kernel.Stop) // watchdog against a stalled chain
	kernel.Run()

	// Normalise by the queries actually issued: if the watchdog fired
	// first, the unissued remainder must not be scored as failures.
	n := float64(*issued)
	if *issued == 0 {
		n = 1
	}
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(probes) / n
	row.DeadProbes = dead
	row.MeanLookups = float64(lookups) / n
	row.MeanHops = float64(hops) / n
	row.LookupFails = fails
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-queryMsgsStart) / n
	row.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// findResultAdapter converts a static-result-shaped outcome into the
// FindResult the wire harness scores, for wires whose protocol types
// predate FindResult (meridian, expanding).
func findResultAdapter(found bool, peer int, rttMs float64, probes, hops int) p2p.FindResult {
	fr := p2p.FindResult{Peer: p2p.NoNode, Probes: probes, Hops: hops}
	if found {
		fr.Peer, fr.RTTms, fr.Found = p2p.NodeID(peer), rttMs, true
	}
	return fr
}

// runStaticExpandingMitigation is the expanding-ring search's function-call
// analogue: per query, grow the multicast scope over the matrix until any
// member sits inside it, charging one copy per in-scope member per round
// (Runtime.Multicast's scope rule: RTT(target, m) <= radius, self
// excluded). The answer is the earliest responder — the scope's
// minimum-RTT member. Copies land in the probes column, rounds in hops.
func runStaticExpandingMitigation(env *Env, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	cfg := p2p.DefaultExpandConfig()
	src := rng.New(seed + 3)
	alive := func(netmodel.HostID) bool { return true }
	row := MitigationRow{Name: "expanding static (function calls)"}
	found, near, nearDenom := 0, 0, 0
	var copies, rounds int64
	var foundMs float64
	for q := 0; q < queries; q++ {
		idx := src.Intn(len(peers))
		target := peers[idx]
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		best, bestMs := -1, 0.0
		radius := cfg.InitialRadiusMs
		for r := 0; r < cfg.Rounds; r++ {
			rounds++
			for j := range peers {
				if j == idx {
					continue
				}
				if d := m.LatencyMs(idx, j); d <= radius {
					copies++
					if best < 0 || d < bestMs {
						best, bestMs = j, d
					}
				}
			}
			if best >= 0 {
				break
			}
			radius *= cfg.RadiusMult
		}
		if best >= 0 {
			found++
			trueMs := env.Top.RTTms(target, peers[best])
			foundMs += trueMs
			if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
				near++
			}
		}
	}
	n := float64(queries)
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanProbes = float64(copies) / n
	row.MeanHops = float64(rounds) / n
	return row
}

// runStaticChordMitigation is the substrate-as-finder baseline: a dht.Ring
// of the peers' addresses, each query one routed resolution of a fresh
// key. The ring resolves keys, not proximity — a query "finds" whichever
// peer owns its key, and the row's p(near) reads like random assignment,
// which is exactly the point the grand table makes about raw DHTs.
func runStaticChordMitigation(env *Env, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
	addrs := make([]string, len(peers))
	byAddr := make(map[string]int, len(peers))
	for i, p := range peers {
		addrs[i] = env.Top.Host(p).IP.String()
		byAddr[addrs[i]] = i
	}
	ring := dht.New(addrs)
	src := rng.New(seed + 3)
	alive := func(netmodel.HostID) bool { return true }
	row := MitigationRow{Name: "chord static (function calls)"}
	hopsAtStart, lookupsAtStart := ring.Hops, ring.Lookups
	found, near, nearDenom := 0, 0, 0
	var foundMs float64
	for q := 0; q < queries; q++ {
		idx := src.Intn(len(peers))
		target := peers[idx]
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		key := fmt.Sprintf("g1/%d", q)
		ring.Get(key) // route to the owner, charging the ring's hop bill
		owner := byAddr[ring.OwnerOf(key)]
		if owner != idx {
			found++
			trueMs := env.Top.RTTms(target, peers[owner])
			foundMs += trueMs
			if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
				near++
			}
		}
	}
	n := float64(queries)
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanLookups = float64(ring.Lookups-lookupsAtStart) / n
	row.MeanHops = float64(ring.Hops-hopsAtStart) / n
	return row
}

// runWireChordMitigation prices the substrate itself through the c2
// methodology: a wire Chord ring of the peers, each query one iterative
// Lookup of a fresh key from a live peer, found meaning the owner resolved
// to somebody else. Same join ramp, settle, churn hooks and scoring as the
// hint schemes — minus their hints.
func runWireChordMitigation(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
	if opts.Horizon <= 0 {
		opts.Horizon = 2 * time.Hour
	}
	kernel := sim.New()
	m := (&latency.TopologyMatrix{Top: env.Top, Hosts: peers}).EnableRTTCache(0)
	rt := p2p.New(kernel, m, p2p.Config{LossProb: opts.Loss}, opts.Seed)
	if opts.Recorder != nil {
		rt.AttachRecorder(opts.Recorder)
	}
	if opts.Faults != nil {
		p2p.NewFaultTransport(rt, opts.Faults)
	}
	ccfg := p2p.DefaultChordConfig()
	ccfg.Horizon = opts.Horizon
	chord := p2p.NewChord(rt, ccfg, opts.Seed+1)

	index := make(map[netmodel.HostID]p2p.NodeID, len(peers))
	ids := make([]p2p.NodeID, len(peers))
	for i, h := range peers {
		index[h] = p2p.NodeID(i)
		ids[i] = p2p.NodeID(i)
	}
	joinEnd := chordJoinRamp(kernel, chord, ids, 0)

	var churn *p2p.Churn
	if opts.Churn {
		ccfg := opts.ChurnCfg
		if ccfg.MeanSession == 0 {
			ccfg = experimentChurnConfig()
		}
		ccfg.Horizon = opts.Horizon
		churn = p2p.NewChurn(rt, ccfg, opts.Seed+2)
		churn.OnLeave = func(id p2p.NodeID, graceful bool) { chord.Leave(id, graceful) }
		churn.OnJoin = func(id p2p.NodeID) { chord.Join(id) }
	}

	row := MitigationRow{}
	src := rng.New(opts.Seed + 3)
	alive := func(h netmodel.HostID) bool { return rt.Alive(index[h]) }
	found, near, nearDenom := 0, 0, 0
	var hops, lookups, fails int64
	var foundMs float64
	var queryMsgsStart int64

	startSeq, issued := sequenceOps(kernel, opts.Queries, func(op int, _ func() bool, complete func(apply func())) {
		target := peers[src.Intn(len(peers))]
		for tries := 0; tries < 20 && !alive(target); tries++ {
			target = peers[src.Intn(len(peers))]
		}
		oracleMs := nearestLivePeerMs(env, peers, target, alive)
		if oracleMs <= mitigationNearMs {
			nearDenom++
		}
		chord.Lookup(index[target], fmt.Sprintf("g1/%d", op), func(res p2p.LookupResult) {
			complete(func() {
				lookups++
				hops += int64(res.Hops)
				if !res.OK {
					fails++
				}
				if res.OK && res.Owner != index[target] {
					found++
					trueMs := env.Top.RTTms(target, peers[int(res.Owner)])
					foundMs += trueMs
					if trueMs <= mitigationNearMs && oracleMs <= mitigationNearMs {
						near++
					}
				}
			})
		})
	})

	startQueries := func() {
		queryMsgsStart = rt.Metrics.MsgsSent
		startSeq()
	}
	kernel.At(joinEnd+chordSettle, func() {
		// The ring's bring-up (joins plus stabilization) is its standing
		// state: there are no hints to publish, the ring IS the state.
		row.PubMsgsPerPeer = float64(rt.Metrics.MsgsSent) / float64(len(peers))
		if churn != nil {
			churn.Drive(ids)
			kernel.After(30*time.Second, startQueries)
			return
		}
		startQueries()
	})
	kernel.At(opts.Horizon, kernel.Stop) // watchdog against a stalled chain
	kernel.Run()

	n := float64(*issued)
	if *issued == 0 {
		n = 1
	}
	row.Found = float64(found) / n
	row.NearDenom = nearDenom
	if nearDenom > 0 {
		row.PNear = float64(near) / float64(nearDenom)
	}
	if found > 0 {
		row.MeanFoundMs = foundMs / float64(found)
	}
	row.MeanLookups = float64(lookups) / n
	row.MeanHops = float64(hops) / n
	row.LookupFails = fails
	row.MeanMsgs = float64(rt.Metrics.MsgsSent-queryMsgsStart) / n
	row.Timeouts = rt.Metrics.Timeouts
	if churn != nil {
		row.Leaves, row.Joins = churn.Leaves, churn.Joins
	}
	return row
}

// finderLeg is one finderScheme entry's build/wire pair, kept in
// finderLegs so the differential tests can drive single queries through
// the exact legs the studies run.
type finderLeg struct {
	build func(net *overlay.Network, members []int, seed int64) overlay.Finder
	wire  func(rt *p2p.Runtime, base overlay.Finder) wireDeployment
}

var finderLegs = map[string]finderLeg{}

// finderScheme builds the common Static+Wire pair for a scheme whose base
// structure implements overlay.Finder and whose wire deployment reports
// FindResult: build constructs the base (deriving sub-seeds from the row
// seed), wire wraps it for the runtime. Both legs call build with the same
// seed over the same matrix, so they share structure and draws.
func finderScheme(name string,
	build func(net *overlay.Network, members []int, seed int64) overlay.Finder,
	wire func(rt *p2p.Runtime, base overlay.Finder) wireDeployment) Scheme {
	finderLegs[name] = finderLeg{build, wire}
	return Scheme{
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			return runStaticFinderMitigation(env, name, peers, queries, seed, build)
		},
		Wire: func(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
			return runWireFinderMitigation(env, peers, opts,
				func(rt *p2p.Runtime, net *overlay.Network, members []int, o MitigationOpts) wireDeployment {
					return wire(rt, build(net, members, o.Seed))
				})
		},
	}
}

// schemes is the registry. Studies enumerate their own scheme lists (the
// golden figures pin row order); this map owns the bring-up.
var schemes = map[string]Scheme{
	"meridian": {
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			return runStaticFinderMitigation(env, "meridian", peers, queries, seed,
				func(net *overlay.Network, members []int, seed int64) overlay.Finder {
					mc := meridian.DefaultConfig()
					mc.CandidatesPerNode = len(members)
					return meridian.New(net, members, mc, seed+1)
				})
		},
		Wire: func(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
			return runWireFinderMitigation(env, peers, opts,
				func(rt *p2p.Runtime, _ *overlay.Network, _ []int, o MitigationOpts) wireDeployment {
					mer := p2p.NewMeridian(rt, p2p.DefaultMeridianConfig(), o.Seed+1)
					return wireDeployment{
						join:   mer.Join,
						rejoin: mer.Join,
						leave:  mer.Leave,
						find: func(client p2p.NodeID, done func(p2p.FindResult)) {
							mer.FindNearest(client, client, func(res p2p.QueryResult) {
								done(findResultAdapter(res.Completed && res.Peer >= 0,
									res.Peer, res.LatencyMs, int(res.Probes), res.Hops))
							})
						},
					}
				})
		},
		Lookup: meridianLookup,
		Scale: func(top *netmodel.Topology, queries int, seed int64) ScaleCell {
			m := (&latency.FullTopologyMatrix{Top: top}).EnableRTTCache(0)
			return scaleMeridianCell(m, queries, seed)
		},
	},
	"expanding": {
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			return runStaticExpandingMitigation(env, peers, queries, seed)
		},
		Wire: func(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
			return runWireFinderMitigation(env, peers, opts,
				func(rt *p2p.Runtime, _ *overlay.Network, _ []int, _ MitigationOpts) wireDeployment {
					ex := p2p.NewExpanding(rt, p2p.DefaultExpandConfig())
					return wireDeployment{
						join: ex.Register,
						find: func(client p2p.NodeID, done func(p2p.FindResult)) {
							ex.Search(client, func(res p2p.ExpandResult) {
								done(findResultAdapter(res.Found, res.Peer, res.RTTms,
									res.Messages, res.Rounds))
							})
						},
					}
				})
		},
		Scale: scaleExpandingCell,
	},
	"chord": {
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			return runStaticChordMitigation(env, peers, queries, seed)
		},
		Wire:   runWireChordMitigation,
		Lookup: chordLookup,
		Scale:  scaleChordCell,
	},
	"ucl": {
		Static: staticUCLMitigation,
		Wire:   wireUCLMitigation,
	},
	"ipprefix": {
		Static: staticIPPrefixMitigation,
		Wire:   wireIPPrefixMitigation,
	},
	"vivaldi": {
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			// The coordinate scheme has no DHT and no measurement toolkit —
			// its baseline reads RTTs off the matrix oracle directly.
			return runStaticVivaldiMitigation(env, peers, queries, seed)
		},
		Wire:   runWireVivaldiMitigation,
		Lookup: vivaldiLookup,
	},
	"guyton": finderScheme("guyton",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return &beacon.GuytonSchwartz{Inf: beacon.New(net, members, beacon.DefaultConfig(), seed+1)}
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := beacon.NewWire(rt, base.(*beacon.GuytonSchwartz).Inf)
			return wireDeployment{join: w.Join, find: w.FindNearestGS}
		}),
	"beaconing": finderScheme("beaconing",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return &beacon.Beaconing{Inf: beacon.New(net, members, beacon.DefaultConfig(), seed+1)}
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := beacon.NewWire(rt, base.(*beacon.Beaconing).Inf)
			return wireDeployment{join: w.Join, find: w.FindNearestBeaconing}
		}),
	"tiers": finderScheme("tiers",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return tiers.New(net, members, tiers.DefaultConfig(), seed+1)
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := tiers.NewWire(rt, base.(*tiers.Hierarchy))
			return wireDeployment{join: w.Join, find: w.FindNearest}
		}),
	"pic": finderScheme("pic",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), seed+1)
			return pic.New(sys, pic.DefaultConfig(), seed+2)
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := pic.NewWire(rt, base.(*pic.Finder))
			return wireDeployment{join: w.Join, find: w.FindNearest}
		}),
	"tapestry": finderScheme("tapestry",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return tapestry.New(net, members, tapestry.DefaultConfig(), seed+1)
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := tapestry.NewWire(rt, base.(*tapestry.Overlay))
			return wireDeployment{join: w.Join, find: w.FindNearest}
		}),
	"azureus": finderScheme("azureus",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return azureus.NewFinder(net, members, azureus.DefaultFinderConfig(), seed+1)
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := azureus.NewWire(rt, base.(*azureus.Finder))
			return wireDeployment{join: w.Join, find: w.FindNearest}
		}),
	"kargerruhl": finderScheme("kargerruhl",
		func(net *overlay.Network, members []int, seed int64) overlay.Finder {
			return kargerruhl.New(net, members, kargerruhl.DefaultConfig(), seed+1)
		},
		func(rt *p2p.Runtime, base overlay.Finder) wireDeployment {
			w := kargerruhl.NewWire(rt, base.(*kargerruhl.Overlay))
			return wireDeployment{join: w.Join, find: w.FindNearest}
		}),
	"rendezvous": {
		Static: func(env *Env, _ *measure.Tools, peers []netmodel.HostID, queries int, seed int64) MitigationRow {
			return runStaticFinderMitigation(env, "rendezvous", peers, queries, seed,
				func(net *overlay.Network, members []int, _ int64) overlay.Finder {
					return rendezvous.NewDirectory(net, members, rendezvousENOf(env, peers))
				})
		},
		Wire: func(env *Env, peers []netmodel.HostID, opts MitigationOpts) MitigationRow {
			return runWireFinderMitigation(env, peers, opts,
				func(rt *p2p.Runtime, net *overlay.Network, members []int, _ MitigationOpts) wireDeployment {
					w := rendezvous.NewWire(rt, rendezvous.NewDirectory(net, members, rendezvousENOf(env, peers)))
					return wireDeployment{
						join: w.Join,
						rejoin: func(id p2p.NodeID) {
							w.Join(id)
							w.Register(id, nil) // soft state: re-register on rejoin
						},
						bringup: func(done func()) {
							// Sequential registration chain: every member
							// records itself with its end network's server.
							var next func(i int)
							next = func(i int) {
								if i >= len(members) {
									done()
									return
								}
								w.Register(p2p.NodeID(members[i]), func(bool) { next(i + 1) })
							}
							next(0)
						},
						find: w.FindNearest,
					}
				})
		},
	},
}

// rendezvousENOf maps a member index to its end-network id on the
// measurement topology — the equality the rendezvous directory keys on.
func rendezvousENOf(env *Env, peers []netmodel.HostID) func(m int) int {
	return func(m int) int { return int(env.Top.Host(peers[m]).EN) }
}
