// Package rng provides deterministic, splittable pseudo-random number
// generation for the simulator and experiment harness.
//
// Every experiment in this repository is driven from a single int64 seed.
// Sub-systems (topology generation, measurement noise, query scheduling,
// per-algorithm randomness) each derive an independent stream with Split, so
// adding randomness to one component never perturbs another component's
// stream. This is what makes `go test` and `cmd/figures` byte-reproducible.
package rng

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It embeds *rand.Rand so call
// sites keep the familiar math/rand API (Float64, Intn, Perm, ...), and adds
// Split for deriving independent child streams.
type Source struct {
	*rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the Source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split derives an independent child stream identified by label. The same
// (seed, label) pair always yields the same stream, regardless of how much
// randomness has been consumed from the parent.
func (s *Source) Split(label string) *Source {
	return New(s.seed ^ hashLabel(label))
}

// SplitN derives an independent child stream identified by a label and an
// index, for per-item streams (per-cluster, per-query, per-run...).
func (s *Source) SplitN(label string, n int) *Source {
	const golden = int64(-0x61C8864680B583EB) // 2^64 / phi, as a signed value
	return New(s.seed ^ hashLabel(label) ^ (int64(n)+1)*golden)
}

// hashLabel is FNV-1a over the label, widened to 64 bits.
func hashLabel(label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return int64(h)
}

// Uniform returns a float64 uniformly distributed in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// LogNormal returns a sample from a log-normal distribution with the given
// location mu and scale sigma (parameters of the underlying normal).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return exp(mu + sigma*s.NormFloat64())
}

// Exponential returns a sample from an exponential distribution with the
// given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.ExpFloat64() * mean
}

// Pareto returns a sample from a Pareto distribution with minimum xm and
// shape alpha. Heavy-tailed sizes (cluster occupancy, swarm membership) use
// this.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return xm / pow(u, 1/alpha)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.Float64() < p }

func exp(x float64) float64    { return math.Exp(x) }
func pow(x, y float64) float64 { return math.Pow(x, y) }
