package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIsStable(t *testing.T) {
	parent := New(7)
	// Consume some randomness from the parent; the child stream must not
	// depend on how much was consumed.
	for i := 0; i < 123; i++ {
		parent.Float64()
	}
	c1 := parent.Split("child").Float64()

	parent2 := New(7)
	c2 := parent2.Split("child").Float64()
	if c1 != c2 {
		t.Fatalf("Split stream depends on parent consumption: %v != %v", c1, c2)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("a")
	b := parent.Split("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("differently-labelled splits produced %d identical draws", same)
	}
}

func TestSplitNDistinct(t *testing.T) {
	parent := New(99)
	seen := make(map[int64]bool)
	for i := 0; i < 200; i++ {
		s := parent.SplitN("x", i)
		if seen[s.Seed()] {
			t.Fatalf("SplitN seed collision at index %d", i)
		}
		seen[s.Seed()] = true
	}
}

func TestUniformRange(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		s := New(seed)
		x := s.Uniform(3, 9)
		return x >= 3 && x < 9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		if x := s.LogNormal(2, 0.5); x <= 0 || math.IsNaN(x) {
			t.Fatalf("LogNormal produced %v", x)
		}
	}
}

func TestLogNormalMedian(t *testing.T) {
	s := New(1)
	const mu = 3.0
	n, below := 10000, 0
	for i := 0; i < n; i++ {
		if s.LogNormal(mu, 0.7) < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("median check failed: %.3f of samples below exp(mu)", frac)
	}
}

func TestParetoMinimum(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		if x := s.Pareto(10, 1.5); x < 10 {
			t.Fatalf("Pareto sample %v below minimum", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += s.Exponential(4)
	}
	mean := sum / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("exponential mean %v, want ~4", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestHashLabelDistinct(t *testing.T) {
	if hashLabel("abc") == hashLabel("abd") {
		t.Fatal("hashLabel collision on near-identical labels")
	}
	if hashLabel("") == hashLabel("a") {
		t.Fatal("hashLabel collision with empty label")
	}
}
