// Package ucl implements the paper's most promising mitigation (Section
// 5): the Upstream Connectivity List. Each peer determines the routers
// within a few hops upstream of itself by running traceroutes toward a
// handful of anchor destinations, and publishes a DHT mapping from each
// upstream router to its own address — annotated with its latency to that
// router, so that a querier can estimate its latency to a candidate as the
// sum of their latencies to the shared router and discard candidates that
// are certainly far, without probing them (the paper's answer to the
// IP-prefix heuristic's false-positive problem).
package ucl

import (
	"encoding/binary"
	"fmt"
	"math"

	"nearestpeer/internal/dht"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// Config tunes the UCL mechanism.
type Config struct {
	// TrackDepth is the number of closest upstream routers each peer
	// tracks (the paper evaluates 3 for a 50% success rate at <5 ms, ~6
	// for 75%).
	TrackDepth int
	// Anchors is the number of distant destinations traced to discover
	// the upstream chain ("running traceroutes to a few different
	// locations in the Internet").
	Anchors int
	// EstimateCutoffMs discards candidates whose estimated latency (sum
	// of latencies to the shared router) exceeds this bound, unprobed.
	EstimateCutoffMs float64
	// MaxProbes caps how many retrieved candidates the querier probes.
	MaxProbes int
}

// DefaultConfig tracks 3 routers, as in the paper's headline evaluation.
func DefaultConfig() Config {
	return Config{TrackDepth: 3, Anchors: 3, EstimateCutoffMs: 20, MaxProbes: 32}
}

// Entry is one published mapping value: a peer and its RTT to the router.
type Entry struct {
	Peer  netmodel.HostID
	RTTms float64
}

func (e Entry) encode() []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint32(buf[:4], uint32(e.Peer))
	binary.BigEndian.PutUint64(buf[4:], math.Float64bits(e.RTTms))
	return buf
}

func decodeEntry(b []byte) (Entry, error) {
	if len(b) != 12 {
		return Entry{}, fmt.Errorf("ucl: malformed entry of %d bytes", len(b))
	}
	return Entry{
		Peer:  netmodel.HostID(binary.BigEndian.Uint32(b[:4])),
		RTTms: math.Float64frombits(binary.BigEndian.Uint64(b[4:])),
	}, nil
}

func routerKey(r netmodel.RouterID) string { return fmt.Sprintf("ucl/router/%d", r) }

// System is a deployed UCL service: a DHT populated with router→peer
// mappings.
type System struct {
	cfg     Config
	tools   *measure.Tools
	ring    *dht.Ring
	anchors []netmodel.HostID
	// joined tracks each member's published (router, entry) pairs so
	// Leave can withdraw the exact bytes it stored.
	joined map[netmodel.HostID][]Published
}

// Published is one (upstream router, entry) pair a peer stores in the DHT.
type Published struct {
	Router netmodel.RouterID
	Entry  Entry
}

// New creates the system. dhtNodes are the addresses hosting the key-value
// map (in a real deployment, the peers themselves); anchors are traceroute
// destinations spread across the topology.
func New(tools *measure.Tools, dhtNodes []string, anchors []netmodel.HostID, cfg Config) *System {
	if cfg.TrackDepth <= 0 || cfg.Anchors <= 0 {
		panic(fmt.Sprintf("ucl: invalid config %+v", cfg))
	}
	if len(anchors) == 0 {
		panic("ucl: need at least one anchor")
	}
	return &System{
		cfg:     cfg,
		tools:   tools,
		ring:    dht.New(dhtNodes),
		anchors: anchors,
		joined:  make(map[netmodel.HostID][]Published),
	}
}

// ComputeUCL determines a peer's upstream connectivity list: the first
// TrackDepth distinct responding routers on traceroutes from the peer
// toward the anchors, with the peer's (measured) RTT to each. Anonymous
// routers are invisible — a real false-negative source the model preserves.
// It is a package-level function because both the static System and the
// message-level Wire deployment compute the list the same way (running a
// traceroute is local to the peer either way; only publishing differs).
func ComputeUCL(tools *measure.Tools, anchors []netmodel.HostID, cfg Config, peer netmodel.HostID) []Published {
	var out []Published
	seen := make(map[netmodel.RouterID]bool)
	for i := 0; i < cfg.Anchors && i < len(anchors); i++ {
		anchor := anchors[i]
		if anchor == peer {
			continue
		}
		for _, hop := range tools.Traceroute(peer, anchor) {
			if len(out) >= cfg.TrackDepth {
				break
			}
			if hop.Router == netmodel.NoRouter || seen[hop.Router] {
				continue
			}
			seen[hop.Router] = true
			out = append(out, Published{
				Router: hop.Router,
				Entry:  Entry{Peer: peer, RTTms: netmodel.Ms(hop.RTT)},
			})
		}
		if len(out) >= cfg.TrackDepth {
			break
		}
	}
	return out
}

// ComputeUCL determines the peer's upstream connectivity list with the
// system's tools, anchors and config.
func (s *System) ComputeUCL(peer netmodel.HostID) []Published {
	return ComputeUCL(s.tools, s.anchors, s.cfg, peer)
}

// Join publishes a peer's UCL mappings into the DHT.
func (s *System) Join(peer netmodel.HostID) {
	pubs := s.ComputeUCL(peer)
	for _, p := range pubs {
		s.ring.Put(routerKey(p.Router), p.Entry.encode())
	}
	s.joined[peer] = pubs
}

// Leave withdraws exactly the mappings a peer published.
func (s *System) Leave(peer netmodel.HostID) {
	for _, p := range s.joined[peer] {
		s.ring.Remove(routerKey(p.Router), p.Entry.encode())
	}
	delete(s.joined, peer)
}

// Result reports a UCL query's outcome and cost.
type Result struct {
	// Peer is the closest responsive candidate found (-1 if none).
	Peer netmodel.HostID
	// RTT is the measured RTT to Peer in milliseconds.
	RTTms float64
	// Candidates is how many distinct peers the DHT returned.
	Candidates int
	// Discarded counts candidates dropped by the latency estimate without
	// probing.
	Discarded int
	// Probes is the number of latency probes the querier issued.
	Probes int
	// Lookups is the number of DHT lookups issued.
	Lookups int
}

// FindNearest runs the UCL query for a (new) peer: compute its UCL, fetch
// all peers sharing any of those routers, estimate latencies via the shared
// router, discard the certainly-far, probe the rest, return the closest.
func (s *System) FindNearest(peer netmodel.HostID) Result {
	own := s.ComputeUCL(peer)
	res := Result{Peer: -1, RTTms: math.Inf(1)}

	best := make(map[netmodel.HostID]float64) // peer -> best estimate
	for _, p := range own {
		vals := s.ring.Get(routerKey(p.Router))
		res.Lookups++
		for _, v := range vals {
			e, err := decodeEntry(v)
			if err != nil || e.Peer == peer {
				continue
			}
			est := e.RTTms + p.Entry.RTTms
			if old, ok := best[e.Peer]; !ok || est < old {
				best[e.Peer] = est
			}
		}
	}
	res.Candidates = len(best)

	// rankHintCands (shared with the wire deployment) applies the cutoff
	// and the est-then-peer order, so the static baseline and the
	// message-level run probe the same candidates in the same order.
	cands := rankHintCands(best, s.cfg)
	res.Discarded = res.Candidates - len(cands)

	limit := s.cfg.MaxProbes
	if limit <= 0 || limit > len(cands) {
		limit = len(cands)
	}
	for _, c := range cands[:limit] {
		d, err := s.tools.LatencyTo(peer, c.peer)
		res.Probes++
		if err != nil {
			continue
		}
		if ms := netmodel.Ms(d); ms < res.RTTms {
			res.Peer = c.peer
			res.RTTms = ms
		}
	}
	return res
}

// Ring exposes the underlying DHT (experiments report its lookup costs).
func (s *System) Ring() *dht.Ring { return s.ring }
