package ucl

import (
	"math"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
)

// wireFixture stands up the same hint population twice: once in the static
// System and once over the message runtime (Chord ring + wire publishes),
// with a zero-noise toolkit so the published entries are bit-identical and
// the candidate machinery can be compared exactly.
type wireFixture struct {
	top    *netmodel.Topology
	kernel *sim.Sim
	rt     *p2p.Runtime
	wire   *Wire
	sys    *System
	peers  []netmodel.HostID
}

func newWireFixture(t *testing.T, loss float64) *wireFixture {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 4)
	tools := measure.NewTools(top, measure.Config{}, 9) // zero noise: entries identical across deployments

	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
		if len(peers) == 72 {
			break
		}
	}
	if len(peers) < 50 {
		t.Fatalf("fixture has only %d responsive peers", len(peers))
	}
	vs, err := measure.SelectVantages(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	anchors := make([]netmodel.HostID, len(vs))
	for i, v := range vs {
		anchors[i] = v.Host
	}

	// Static deployment.
	addrs := make([]string, len(peers))
	for i, p := range peers {
		addrs[i] = top.Host(p).IP.String()
	}
	sys := New(tools, addrs, anchors, DefaultConfig())
	for _, p := range peers {
		sys.Join(p)
	}

	// Message-level deployment over the same hosts.
	kernel := sim.New()
	rt := p2p.New(kernel, &latency.TopologyMatrix{Top: top, Hosts: peers}, p2p.Config{LossProb: loss, RPCTimeout: time.Second}, 1)
	ccfg := p2p.DefaultChordConfig()
	ccfg.StabilizeEvery = 500 * time.Millisecond
	ccfg.Horizon = 30 * time.Second
	chord := p2p.NewChord(rt, ccfg, 7)
	for i := range peers {
		id := p2p.NodeID(i)
		kernel.After(time.Duration(i)*10*time.Millisecond, func() { chord.Join(id) })
	}
	kernel.Run()
	wire := NewWire(tools, chord, peers, anchors, DefaultConfig())
	var publish func(i int)
	publish = func(i int) {
		if i >= len(peers) {
			return
		}
		wire.Publish(peers[i], func(int) { publish(i + 1) })
	}
	publish(0)
	kernel.Run()
	return &wireFixture{top: top, kernel: kernel, rt: rt, wire: wire, sys: sys, peers: peers}
}

func TestWireFindNearestMatchesStaticLossless(t *testing.T) {
	f := newWireFixture(t, 0)
	agreeingQueries := 0
	for _, p := range f.peers[:12] {
		static := f.sys.FindNearest(p)
		var got WireResult
		f.wire.FindNearest(p, func(r WireResult) { got = r })
		f.kernel.Run()
		if got.Candidates != static.Candidates {
			t.Errorf("peer %d: wire saw %d candidates, static %d", p, got.Candidates, static.Candidates)
		}
		if got.Discarded != static.Discarded {
			t.Errorf("peer %d: wire discarded %d, static %d", p, got.Discarded, static.Discarded)
		}
		if got.Found != (static.Peer >= 0) {
			t.Errorf("peer %d: wire found=%v, static peer=%d", p, got.Found, static.Peer)
		}
		if got.LookupFails != 0 || got.DeadProbes != 0 {
			t.Errorf("peer %d: lossless run had %d lookup failures, %d dead probes", p, got.LookupFails, got.DeadProbes)
		}
		if got.Found {
			agreeingQueries++
			// Wire pings measure the matrix RTT at nanosecond resolution.
			if want := f.top.RTTms(p, got.Peer); math.Abs(got.RTTms-want) > 1e-6 {
				t.Errorf("peer %d: wire RTT %v to %d, matrix says %v", p, got.RTTms, got.Peer, want)
			}
		}
	}
	if agreeingQueries == 0 {
		t.Fatal("no query found any candidate — fixture degenerate")
	}
}

func TestWireStaleHintCostsDeadProbe(t *testing.T) {
	f := newWireFixture(t, 0)
	// Find a querier that resolves somebody, then crash that somebody: its
	// published hints stay in the DHT, so the next query still pays a probe
	// for it and must fall through to another candidate (or nothing).
	for _, p := range f.peers[:20] {
		var first WireResult
		f.wire.FindNearest(p, func(r WireResult) { first = r })
		f.kernel.Run()
		if !first.Found {
			continue
		}
		f.rt.Node(f.wire.NodeOf(first.Peer)).Stop()
		var second WireResult
		f.wire.FindNearest(p, func(r WireResult) { second = r })
		f.kernel.Run()
		if second.DeadProbes == 0 {
			t.Fatalf("peer %d: stale hint for crashed %d did not cost a dead probe: %+v", p, first.Peer, second)
		}
		if second.Found && second.Peer == first.Peer {
			t.Fatalf("peer %d: crashed node %d still returned", p, first.Peer)
		}
		return
	}
	t.Skip("no querier resolved a candidate in this fixture")
}
