// Wire deployment of the UCL mitigation: the same upstream-router hint
// scheme as System, but the key-value map is the message-level Chord DHT
// (internal/p2p) hosted by the peers themselves, publishing is a sequence
// of wire Puts, lookups are iterative wire Gets, and candidate probing is
// pings over the runtime — so every cost the static simulation counts as
// one probe or one hop is re-priced by a wire that can lose, delay, and
// time out, and hint entries can go stale when their publisher churns out.

package ucl

import (
	"sort"
	"time"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/p2p"
)

// Wire is a deployed message-level UCL service. The hosts slice fixes the
// HostID ↔ runtime NodeID mapping: node i of the runtime's latency matrix
// is hosts[i]. All hosts are expected to be Chord members; entries naming
// peers outside the mapping are discarded at query time.
type Wire struct {
	cfg     Config
	tools   *measure.Tools
	chord   *p2p.Chord
	hosts   []netmodel.HostID
	index   map[netmodel.HostID]p2p.NodeID
	anchors []netmodel.HostID
	// PingTimeout bounds each candidate probe; 0 uses the runtime default.
	PingTimeout time.Duration
}

// NewWire creates the wire deployment over an existing Chord instance.
func NewWire(tools *measure.Tools, chord *p2p.Chord, hosts []netmodel.HostID, anchors []netmodel.HostID, cfg Config) *Wire {
	if len(anchors) == 0 {
		panic("ucl: need at least one anchor")
	}
	index := make(map[netmodel.HostID]p2p.NodeID, len(hosts))
	for i, h := range hosts {
		index[h] = p2p.NodeID(i)
	}
	return &Wire{cfg: cfg, tools: tools, chord: chord, hosts: hosts, index: index, anchors: anchors}
}

// NodeOf maps a host to its runtime node id.
func (w *Wire) NodeOf(peer netmodel.HostID) p2p.NodeID { return w.index[peer] }

// Publish computes the peer's UCL locally (traceroutes are the peer's own
// business) and stores each router→peer mapping in the DHT as wire Puts.
// done receives how many of the mappings were acknowledged stored.
func (w *Wire) Publish(peer netmodel.HostID, done func(stored int)) {
	pubs := ComputeUCL(w.tools, w.anchors, w.cfg, peer)
	node := w.NodeOf(peer)
	stored := 0
	var next func(i int)
	next = func(i int) {
		if i >= len(pubs) {
			if done != nil {
				done(stored)
			}
			return
		}
		w.chord.Put(node, routerKey(pubs[i].Router), pubs[i].Entry.encode(), func(r p2p.OpResult) {
			if r.OK {
				stored++
			}
			next(i + 1)
		})
	}
	next(0)
}

// WireResult reports a message-level UCL query's outcome and cost.
type WireResult struct {
	// Peer is the closest responsive candidate found (-1 if none).
	Peer netmodel.HostID
	// RTTms is the wire-measured RTT to Peer.
	RTTms float64
	// Candidates is how many distinct peers the DHT returned.
	Candidates int
	// Discarded counts candidates dropped by the latency estimate without
	// probing.
	Discarded int
	// Probes counts candidate pings issued (paid whether or not answered).
	Probes int
	// DeadProbes counts pings that timed out — stale hints whose publisher
	// was down, or probe loss.
	DeadProbes int
	// Lookups counts DHT Gets issued; LookupFails those that never
	// resolved an owner; Hops and Retries aggregate their routing cost.
	Lookups     int
	LookupFails int
	Hops        int
	Retries     int
	// Found reports whether any candidate answered.
	Found bool
}

// FindNearest runs the UCL query for peer over the wire: compute its UCL
// locally, fetch the peers sharing each of those routers from the DHT,
// estimate latencies via the shared router, discard the certainly-far,
// ping the rest over the runtime, return the closest responder. done fires
// exactly once (the issuing node is assumed to stay up for the query).
func (w *Wire) FindNearest(peer netmodel.HostID, done func(WireResult)) {
	own := ComputeUCL(w.tools, w.anchors, w.cfg, peer)
	node := w.NodeOf(peer)
	res := WireResult{Peer: -1}
	best := make(map[netmodel.HostID]float64)

	probe := func(cands []hintCand) {
		ids := make([]p2p.NodeID, len(cands))
		for i, c := range cands {
			ids[i] = w.index[c.peer]
		}
		w.chord.Transport().Node(node).SweepPing(ids, w.PingTimeout, func(s p2p.PingSweep) {
			res.Probes, res.DeadProbes, res.Found = s.Probes, s.Dead, s.Found
			if s.Found {
				res.Peer, res.RTTms = w.hosts[int(s.Best)], s.BestRTT
			}
			done(res)
		})
	}

	var get func(i int)
	get = func(i int) {
		if i >= len(own) {
			res.Candidates = len(best)
			kept := rankHintCands(best, w.cfg)
			res.Discarded = res.Candidates - len(kept)
			if w.cfg.MaxProbes > 0 && len(kept) > w.cfg.MaxProbes {
				kept = kept[:w.cfg.MaxProbes]
			}
			probe(kept)
			return
		}
		p := own[i]
		res.Lookups++
		w.chord.Get(node, routerKey(p.Router), func(r p2p.OpResult) {
			res.Hops += r.Hops
			res.Retries += r.Retries
			res.LookupFails += r.LookupFails
			if r.OK {
				for _, v := range r.Vals {
					e, err := decodeEntry(v)
					if err != nil || e.Peer == peer {
						continue
					}
					if _, known := w.index[e.Peer]; !known {
						continue
					}
					est := e.RTTms + p.Entry.RTTms
					if old, ok := best[e.Peer]; !ok || est < old {
						best[e.Peer] = est
					}
				}
			}
			get(i + 1)
		})
	}
	get(0)
}

// hintCand is one retrieved candidate with its router-sum latency estimate.
type hintCand struct {
	peer netmodel.HostID
	est  float64
}

// rankHintCands applies the estimate cutoff, closest estimate first (the
// probe cap is applied by the caller so it can count the cutoff discards).
func rankHintCands(best map[netmodel.HostID]float64, cfg Config) []hintCand {
	cands := make([]hintCand, 0, len(best))
	for p, est := range best {
		if est > cfg.EstimateCutoffMs {
			continue
		}
		cands = append(cands, hintCand{peer: p, est: est})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].est != cands[j].est {
			return cands[i].est < cands[j].est
		}
		return cands[i].peer < cands[j].peer
	})
	return cands
}
