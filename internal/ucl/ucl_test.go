package ucl

import (
	"fmt"
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

type fixture struct {
	top   *netmodel.Topology
	tools *measure.Tools
	sys   *System
	peers []netmodel.HostID
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 4)
	tools := measure.NewTools(top, measure.DefaultConfig(), 9)

	// Peers: all TCP-responsive hosts (they must answer probes).
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	if len(peers) < 50 {
		t.Fatalf("fixture has only %d responsive peers", len(peers))
	}
	nodes := make([]string, len(peers))
	for i, p := range peers {
		nodes[i] = top.Host(p).IP.String()
	}
	vs, err := measure.SelectVantages(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	anchors := make([]netmodel.HostID, len(vs))
	for i, v := range vs {
		anchors[i] = v.Host
	}
	sys := New(tools, nodes, anchors, cfg)
	for _, p := range peers {
		sys.Join(p)
	}
	return &fixture{top: top, tools: tools, sys: sys, peers: peers}
}

func TestComputeUCLTracksUpstreamChain(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	checked := 0
	for _, p := range f.peers[:20] {
		pubs := f.sys.ComputeUCL(p)
		if len(pubs) == 0 {
			continue // all upstream routers anonymous — possible, rare
		}
		if len(pubs) > DefaultConfig().TrackDepth {
			t.Fatalf("UCL longer than TrackDepth: %d", len(pubs))
		}
		// The first tracked router must lie on the peer's own access
		// chain (or be its PoP core) — it is upstream of the peer.
		en := f.top.HostEN(p)
		first := pubs[0].Router
		onChain := false
		for _, r := range en.Chain {
			if r == first {
				onChain = true
			}
		}
		for _, r := range f.top.PoP(en.PoP).Core {
			if r == first {
				onChain = true
			}
		}
		if !onChain {
			t.Fatalf("peer %d first UCL router %d not upstream", p, first)
		}
		for _, pub := range pubs {
			if pub.Entry.RTTms <= 0 {
				t.Fatalf("non-positive router RTT %v", pub.Entry.RTTms)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no UCLs computed")
	}
}

func TestSameENPeersShareUCLRouters(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	// Find two peers in one end-network with a responding edge router.
	var a, b netmodel.HostID = -1, -1
	for i, p := range f.peers {
		for _, q := range f.peers[i+1:] {
			if f.top.SameEN(p, q) {
				en := f.top.HostEN(p)
				if e := en.EdgeRouter(); e != netmodel.NoRouter && !f.top.Router(e).Anonymous {
					a, b = p, q
					break
				}
			}
		}
		if a >= 0 {
			break
		}
	}
	if a < 0 {
		t.Skip("no same-EN responsive pair with visible edge router")
	}
	ra := map[netmodel.RouterID]bool{}
	for _, pub := range f.sys.ComputeUCL(a) {
		ra[pub.Router] = true
	}
	shared := false
	for _, pub := range f.sys.ComputeUCL(b) {
		if ra[pub.Router] {
			shared = true
		}
	}
	if !shared {
		t.Fatal("same-EN peers share no UCL router")
	}
}

func TestFindNearestDiscoversSameENPeer(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	// For peers that have a same-EN partner with a visible edge router,
	// the UCL query should find a sub-millisecond peer most of the time —
	// the paper's headline claim for this mechanism.
	attempts, hits := 0, 0
	for _, p := range f.peers {
		var partner netmodel.HostID = -1
		for _, q := range f.peers {
			if q != p && f.top.SameEN(p, q) {
				partner = q
				break
			}
		}
		if partner < 0 {
			continue
		}
		en := f.top.HostEN(p)
		if e := en.EdgeRouter(); e == netmodel.NoRouter || f.top.Router(e).Anonymous {
			continue
		}
		attempts++
		res := f.sys.FindNearest(p)
		if res.Peer >= 0 && f.top.SameEN(p, res.Peer) {
			hits++
		}
		if attempts >= 40 {
			break
		}
	}
	if attempts < 5 {
		t.Skipf("only %d eligible peers", attempts)
	}
	if frac := float64(hits) / float64(attempts); frac < 0.6 {
		t.Fatalf("UCL found the same-EN peer only %.0f%% of the time (%d/%d)",
			frac*100, hits, attempts)
	}
}

func TestEstimateDiscardsFarPeers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EstimateCutoffMs = 5
	f := newFixture(t, cfg)
	discarded := 0
	for _, p := range f.peers[:30] {
		res := f.sys.FindNearest(p)
		discarded += res.Discarded
		if res.Probes > cfg.MaxProbes {
			t.Fatalf("probes %d exceed cap", res.Probes)
		}
	}
	if discarded == 0 {
		t.Fatal("estimate-based discarding never triggered with 5ms cutoff")
	}
}

func TestLeaveWithdrawsMappings(t *testing.T) {
	f := newFixture(t, DefaultConfig())
	victim := f.peers[0]
	pubs := f.sys.ComputeUCL(victim)
	if len(pubs) == 0 {
		t.Skip("victim has invisible upstream")
	}
	f.sys.Leave(victim)
	for _, pub := range pubs {
		for _, v := range f.sys.Ring().Get(fmt.Sprintf("ucl/router/%d", pub.Router)) {
			e, err := decodeEntry(v)
			if err == nil && e.Peer == victim {
				t.Fatal("mapping survived Leave")
			}
		}
	}
}

func TestEntryCodec(t *testing.T) {
	e := Entry{Peer: 12345, RTTms: 3.25}
	got, err := decodeEntry(e.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatalf("round-trip %+v != %+v", got, e)
	}
	if _, err := decodeEntry([]byte{1, 2}); err == nil {
		t.Fatal("malformed entry accepted")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.TrackDepth = 0
	New(nil, []string{"a"}, []netmodel.HostID{0}, cfg)
}
