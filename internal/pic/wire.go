// Wire deployment of PIC: placement probes become real pings, and each
// greedy-walk hop becomes an RPC to the current node, which picks the next
// hop from its own neighbour list and its stored neighbour coordinates —
// the state a PIC member actually holds. Endpoint verification is a ping
// sweep. At 0% loss the walks follow the static finder's paths (the wire
// owns a same-seed Finder, so the walk-start draws come from the same
// stream); under faults a dead node is a wall the walk stops at.

package pic

import (
	"sort"
	"time"

	"nearestpeer/internal/p2p"
	"nearestpeer/internal/vivaldi"
)

// Message types of the PIC wire protocol.
const (
	// MsgStep asks a member for the greedy next hop toward a target
	// coordinate (stepMsg/stepOK).
	MsgStep   = "pic_step"
	MsgStepOK = "pic_step_ok"
)

type stepMsg struct {
	Vec    []float64
	Height float64
}
type stepOK struct{ Next int } // -1: local minimum, the walk ends here

func init() {
	p2p.RegisterPayload(MsgStep, stepMsg{})
	p2p.RegisterPayload(MsgStepOK, stepOK{})
}

// Wire is a deployed message-level PIC service. Member indices are runtime
// NodeIDs (the underlying Vivaldi system is built over the runtime's
// latency matrix). The Wire owns its Finder instance; build it with the
// same seeds as a static leg's and the two walk identical paths at 0% loss.
// The coordinate-recomputation variant is not wired (its per-hop
// re-placement would need the walk to carry a probe budget); NewWire
// rejects it.
type Wire struct {
	base *Finder
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy.
	Retry p2p.Policy
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Finder) *Wire {
	if base.cfg.Recompute {
		panic("pic: the recompute variant is not wired")
	}
	return &Wire{base: base, rt: rt}
}

// Join brings a member up on the runtime and installs its next-hop handler.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	n.Handle(MsgStep, func(n *p2p.Node, env p2p.Envelope) {
		sm := env.Payload.(stepMsg)
		tc := &vivaldi.Coord{Vec: sm.Vec, Height: sm.Height}
		cur := int(n.ID)
		curDist := tc.DistanceMs(w.base.sys.CoordOf(cur))
		next, nextDist := -1, curDist
		for _, nb := range w.base.neighbors[cur] {
			if d := tc.DistanceMs(w.base.sys.CoordOf(nb)); d < nextDist {
				next, nextDist = nb, d
			}
		}
		n.Reply(env, MsgStepOK, stepOK{Next: next})
	})
}

// FindNearest runs the PIC query over the wire from client: ping the
// placement sample, embed locally, run the greedy walks as per-hop RPCs,
// sweep-ping the walk endpoints. done fires exactly once unless the client
// dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	sample := w.base.sys.SamplePlacement(int(client), w.base.cfg.Landmarks)
	var obs []vivaldi.PlacementObservation

	var place func(i int)
	place = func(i int) {
		if i >= len(sample) {
			tc := w.base.sys.PlaceObservations(obs)
			w.walk(n, &res, tc, 0, nil, done)
			return
		}
		res.Probes++
		n.Ping(p2p.NodeID(sample[i]), w.Timeout, false, func(rtt float64, ok bool) {
			if !n.Alive() {
				return
			}
			if !ok {
				res.DeadProbes++ // a dead landmark contributes no observation
			} else {
				obs = append(obs, vivaldi.PlacementObservation{Coord: w.base.sys.CoordOf(sample[i]), RTTms: rtt})
			}
			place(i + 1)
		})
	}
	place(0)
}

// walk runs greedy walk number wi, then the next, accumulating endpoints;
// after the last it sweeps the endpoint set.
func (w *Wire) walk(n *p2p.Node, res *p2p.FindResult, tc *vivaldi.Coord, wi int, endpoints []int, done func(p2p.FindResult)) {
	if wi >= w.base.cfg.Walks {
		w.verify(n, res, endpoints, done)
		return
	}
	members := w.base.sys.Members()
	cur := members[w.base.src.Intn(len(members))]
	var hop func(cur, h int)
	hop = func(cur, h int) {
		if h >= w.base.cfg.MaxHops {
			w.walk(n, res, tc, wi+1, appendUnique(endpoints, cur), done)
			return
		}
		res.RPCs++
		n.RequestPolicy(p2p.NodeID(cur), MsgStep, stepMsg{Vec: tc.Vec, Height: tc.Height}, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				next := env.Payload.(stepOK).Next
				if next < 0 {
					w.walk(n, res, tc, wi+1, appendUnique(endpoints, cur), done)
					return
				}
				res.Hops++
				hop(next, h+1)
			},
			func() {
				// The current node is dead: the walk ends where it stands.
				res.RPCFails++
				w.walk(n, res, tc, wi+1, appendUnique(endpoints, cur), done)
			})
	}
	hop(cur, 0)
}

// verify sweep-pings the walk endpoints (sorted, the searcher excluded).
func (w *Wire) verify(n *p2p.Node, res *p2p.FindResult, endpoints []int, done func(p2p.FindResult)) {
	sort.Ints(endpoints)
	ids := make([]p2p.NodeID, 0, len(endpoints))
	for _, id := range endpoints {
		if p2p.NodeID(id) != n.ID {
			ids = append(ids, p2p.NodeID(id))
		}
	}
	n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
		res.Probes += s.Probes
		res.DeadProbes += s.Dead
		if s.Found {
			res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
		}
		done(*res)
	})
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}
