package pic

import (
	"testing"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
	"nearestpeer/internal/vivaldi"
)

func buildSys(t *testing.T, n int, seed int64) (*latency.Dense, *vivaldi.System, []int, []int) {
	t.Helper()
	m := testmat.Euclidean(n, seed)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, n/10, seed+1)
	sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), seed+2)
	return m, sys, members, targets
}

func TestNeighborListsWellFormed(t *testing.T) {
	_, sys, members, _ := buildSys(t, 200, 1)
	f := New(sys, DefaultConfig(), 3)
	for _, m := range members {
		nb := f.neighbors[m]
		if len(nb) == 0 {
			t.Fatalf("member %d has no neighbours", m)
		}
		if len(nb) > DefaultConfig().NeighborsPerNode {
			t.Fatalf("member %d has %d neighbours", m, len(nb))
		}
		seen := map[int]bool{}
		for _, n := range nb {
			if n == m {
				t.Fatal("self in neighbour list")
			}
			if seen[n] {
				t.Fatal("duplicate neighbour")
			}
			seen[n] = true
		}
	}
}

func TestGreedyWalksFindNearPeers(t *testing.T) {
	m, sys, members, targets := buildSys(t, 300, 5)
	f := New(sys, DefaultConfig(), 7)
	good := 0
	for _, tgt := range targets {
		res := f.FindNearest(tgt)
		if res.Peer < 0 {
			t.Fatal("walk returned nothing")
		}
		truth := overlay.TrueNearest(m, tgt, members)
		if res.LatencyMs <= 3*truth.LatencyMs+1 {
			good++
		}
		if res.Probes <= 0 {
			t.Fatal("no probes recorded")
		}
	}
	if good < len(targets)/2 {
		t.Fatalf("only %d/%d walks near-optimal", good, len(targets))
	}
}

func TestRecomputeVariantCostsMore(t *testing.T) {
	_, sys, _, targets := buildSys(t, 200, 9)
	cfg := DefaultConfig()
	cfg.Recompute = true
	recompute := New(sys, cfg, 7)
	plain := New(sys, DefaultConfig(), 7)

	var rProbes, pProbes int64
	for _, tgt := range targets {
		rProbes += recompute.FindNearest(tgt).Probes
		pProbes += plain.FindNearest(tgt).Probes
	}
	if rProbes < pProbes {
		t.Fatalf("recompute variant cheaper than plain: %d vs %d", rProbes, pProbes)
	}
}

func TestClusteredSpaceDefeatsWalks(t *testing.T) {
	// Under the clustering condition coordinates collapse, so the greedy
	// walk cannot single out the same-EN partner: exact-match rate stays
	// low even though every target has a 0.1 ms partner in the overlay.
	m, gt := testmat.Clustered(100, 1000, 3)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(m.N(), 80, 1)
	sys := vivaldi.Build(net, members, vivaldi.DefaultConfig(), 2)
	f := New(sys, DefaultConfig(), 7)

	exact := 0
	for _, tgt := range targets {
		res := f.FindNearest(tgt)
		if res.Peer >= 0 && gt.SameEN(res.Peer, tgt) {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(targets)); frac > 0.35 {
		t.Fatalf("PIC found the same-EN partner %v of the time under clustering; expected failure", frac)
	}
}
