// Package pic implements PIC — Practical Internet Coordinates (Costa,
// Castro, Rowstron, Key — ICDCS 2004) — as a nearest-peer finder: a joining
// peer computes rough multidimensional coordinates from probes to a few
// landmarks, then launches multiple greedy walks; each hop moves to the
// neighbour whose coordinates predict the smallest distance to the target.
// The paper also describes a variant that recomputes the target's
// coordinates at each step of the walk; both are implemented.
package pic

import (
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/vivaldi"
)

// Config parameterises the PIC finder.
type Config struct {
	// Landmarks is the number of members probed to place a coordinate.
	Landmarks int
	// Walks is the number of parallel greedy walks.
	Walks int
	// NeighborsPerNode is each member's neighbour-list size.
	NeighborsPerNode int
	// Recompute enables the coordinate-recomputation variant: at every
	// hop the target re-places itself against the current node's
	// neighbourhood.
	Recompute bool
	// MaxHops bounds each walk.
	MaxHops int
}

// DefaultConfig follows the PIC paper's modest settings.
func DefaultConfig() Config {
	return Config{
		Landmarks:        16,
		Walks:            4,
		NeighborsPerNode: 16,
		Recompute:        false,
		MaxHops:          32,
	}
}

// Finder runs PIC greedy walks over a Vivaldi coordinate system (PIC's own
// embedding is a Simplex-minimisation over probe constraints; the spring
// relaxation converges to the same kind of embedding and shares its failure
// mode under the clustering condition: an impractical number of dimensions
// would be needed to tell cluster peers apart).
type Finder struct {
	cfg       Config
	sys       *vivaldi.System
	neighbors map[int][]int
	src       *rng.Source
}

// New builds the finder: each member's neighbour list holds its
// coordinate-space nearest members plus random entries (PIC maintains both
// for greedy routing).
func New(sys *vivaldi.System, cfg Config, seed int64) *Finder {
	f := &Finder{
		cfg:       cfg,
		sys:       sys,
		neighbors: make(map[int][]int),
		src:       rng.New(seed),
	}
	members := sys.Members()
	half := cfg.NeighborsPerNode / 2
	for _, m := range members {
		// Nearest half by coordinates.
		type cand struct {
			id int
			d  float64
		}
		cands := make([]cand, 0, len(members)-1)
		mc := sys.CoordOf(m)
		for _, n := range members {
			if n == m {
				continue
			}
			cands = append(cands, cand{id: n, d: mc.DistanceMs(sys.CoordOf(n))})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		list := make([]int, 0, cfg.NeighborsPerNode)
		for i := 0; i < half && i < len(cands); i++ {
			list = append(list, cands[i].id)
		}
		// Random half for long-range jumps.
		for len(list) < cfg.NeighborsPerNode && len(list) < len(cands) {
			c := members[f.src.Intn(len(members))]
			if c == m || contains(list, c) {
				continue
			}
			list = append(list, c)
		}
		f.neighbors[m] = list
	}
	return f
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// FindNearest implements overlay.Finder: place the target, run greedy
// walks, verify walk endpoints with real probes, return the best.
func (f *Finder) FindNearest(target int) overlay.Result {
	tc, probes := f.sys.PlaceTarget(target, f.cfg.Landmarks)
	members := f.sys.Members()

	endpoints := make(map[int]bool)
	var hops int
	for w := 0; w < f.cfg.Walks; w++ {
		cur := members[f.src.Intn(len(members))]
		for hop := 0; hop < f.cfg.MaxHops; hop++ {
			if f.cfg.Recompute && hop > 0 {
				// Recompute the target coordinate against the current
				// neighbourhood (costs one probe per neighbour sample).
				nc, p := f.sys.PlaceTarget(target, 4)
				probes += p
				tc = nc
			}
			curDist := tc.DistanceMs(f.sys.CoordOf(cur))
			next, nextDist := -1, curDist
			for _, n := range f.neighbors[cur] {
				if d := tc.DistanceMs(f.sys.CoordOf(n)); d < nextDist {
					next, nextDist = n, d
				}
			}
			if next < 0 {
				break // local minimum in coordinate space
			}
			cur = next
			hops++
		}
		endpoints[cur] = true
	}

	best, bestLat := -1, math.Inf(1)
	ids := make([]int, 0, len(endpoints))
	for id := range endpoints {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if id == target {
			continue // the searcher itself can be a member; it is not a candidate
		}
		l := f.sys.Net().Probe(target, id)
		probes++
		if l < bestLat {
			best, bestLat = id, l
		}
	}
	return overlay.Result{Peer: best, LatencyMs: bestLat, Probes: probes, Hops: hops}
}
