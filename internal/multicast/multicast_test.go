package multicast

import (
	"testing"
	"time"

	"nearestpeer/internal/netmodel"
)

func fixture(t *testing.T) (*netmodel.Topology, []netmodel.HostID) {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 6)
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	return top, peers
}

func TestRegistryGroupsByEN(t *testing.T) {
	top, peers := fixture(t)
	reg := NewRegistry(top, peers)
	total := 0
	for i := range top.ENs {
		members := reg.MembersIn(netmodel.ENID(i))
		total += len(members)
		for _, m := range members {
			if top.Host(m).EN != netmodel.ENID(i) {
				t.Fatal("peer registered in wrong EN")
			}
		}
	}
	if total != len(peers) {
		t.Fatalf("registry holds %d of %d peers", total, len(peers))
	}
}

func TestSearchFindsSameVLANPeer(t *testing.T) {
	top, peers := fixture(t)
	reg := NewRegistry(top, peers)
	s := NewSearcher(top, reg, DefaultConfig(), 3)

	// Find a peer with a same-VLAN same-EN partner.
	var from netmodel.HostID = -1
	for _, p := range peers {
		for _, q := range reg.MembersIn(top.Host(p).EN) {
			if q != p && top.Host(q).VLAN == top.Host(p).VLAN {
				from = p
				break
			}
		}
		if from >= 0 {
			break
		}
	}
	if from < 0 {
		t.Skip("no same-VLAN pair")
	}
	res := s.Search(from)
	if res.Peer < 0 {
		t.Fatal("search found nothing despite same-VLAN partner")
	}
	if !top.SameEN(from, res.Peer) {
		t.Fatal("found peer outside the end-network")
	}
	if res.RTTms > 2 {
		t.Fatalf("same-EN RTT %v ms unexpectedly high", res.RTTms)
	}
	if res.Messages == 0 || res.Elapsed <= 0 {
		t.Fatal("cost accounting missing")
	}
}

func TestVLANBoundaryFailure(t *testing.T) {
	top, peers := fixture(t)
	reg := NewRegistry(top, peers)
	cfg := DefaultConfig()
	cfg.CrossVLANProb = 0 // no end-network routes multicast across VLANs
	s := NewSearcher(top, reg, cfg, 3)

	// A peer whose only same-EN partners are on other VLANs must fail.
	var from netmodel.HostID = -1
	for _, p := range peers {
		sameVLAN, otherVLAN := 0, 0
		for _, q := range reg.MembersIn(top.Host(p).EN) {
			if q == p {
				continue
			}
			if top.Host(q).VLAN == top.Host(p).VLAN {
				sameVLAN++
			} else {
				otherVLAN++
			}
		}
		if sameVLAN == 0 && otherVLAN > 0 {
			from = p
			break
		}
	}
	if from < 0 {
		t.Skip("no cross-VLAN-only peer")
	}
	res := s.Search(from)
	if res.Peer >= 0 {
		t.Fatalf("search crossed a VLAN boundary with CrossVLANProb=0 (found %d)", res.Peer)
	}
}

func TestCrossVLANSucceedsWhenRouted(t *testing.T) {
	top, peers := fixture(t)
	reg := NewRegistry(top, peers)
	cfg := DefaultConfig()
	cfg.CrossVLANProb = 1 // every end-network routes multicast everywhere
	s := NewSearcher(top, reg, cfg, 3)

	// A peer whose same-EN partners are all on other VLANs: the hit can
	// only come from an expanded round.
	var from netmodel.HostID = -1
	for _, p := range peers {
		sameVLAN, otherVLAN := 0, 0
		for _, q := range reg.MembersIn(top.Host(p).EN) {
			if q == p {
				continue
			}
			if top.Host(q).VLAN == top.Host(p).VLAN {
				sameVLAN++
			} else {
				otherVLAN++
			}
		}
		if sameVLAN == 0 && otherVLAN > 0 {
			from = p
			break
		}
	}
	if from < 0 {
		t.Skip("no cross-VLAN-only peer")
	}
	res := s.Search(from)
	if res.Peer < 0 {
		t.Fatal("search failed despite universal multicast routing")
	}
	if res.Rounds < 2 {
		t.Fatalf("cross-VLAN hit in round %d; scope 0 must not cross VLANs", res.Rounds)
	}
}

func TestLonePeerFindsNothing(t *testing.T) {
	top, peers := fixture(t)
	reg := NewRegistry(top, peers)
	s := NewSearcher(top, reg, DefaultConfig(), 3)
	var from netmodel.HostID = -1
	for _, p := range peers {
		if len(reg.MembersIn(top.Host(p).EN)) == 1 {
			from = p
			break
		}
	}
	if from < 0 {
		t.Skip("no lone peer")
	}
	res := s.Search(from)
	if res.Peer >= 0 {
		t.Fatal("lone peer found a same-EN peer")
	}
	if res.Elapsed != time.Duration(DefaultConfig().Rounds)*DefaultConfig().RoundTimeout {
		t.Fatalf("failed search elapsed %v", res.Elapsed)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSearcher(nil, nil, Config{Rounds: 0, RoundTimeout: time.Second}, 1)
}
