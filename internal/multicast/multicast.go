// Package multicast implements the paper's first mitigation (Section 5):
// an expanding IP-multicast search inside an end-network, run on the
// discrete-event kernel. Peers in the P2P system subscribe to a well-known
// multicast group within their network; a searching peer multicasts queries
// with growing scope and collects responses. The failure mode the paper
// flags — "messages multicast from one host may not reach any other host in
// large end-networks composed of multiple LANs or VLANs" — is modelled
// directly: a query only crosses VLAN boundaries when the end-network has
// multicast routing configured across them.
package multicast

import (
	"fmt"
	"math"
	"time"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Config tunes the expanding search.
type Config struct {
	// Rounds is the number of expansion rounds (scope grows per round).
	Rounds int
	// RoundTimeout is how long the searcher waits per round.
	RoundTimeout time.Duration
	// CrossVLANProb is the probability that a given end-network has
	// multicast routing configured across its VLANs.
	CrossVLANProb float64
}

// DefaultConfig uses three rounds of 200 ms.
func DefaultConfig() Config {
	return Config{Rounds: 3, RoundTimeout: 200 * time.Millisecond, CrossVLANProb: 0.4}
}

// Registry tracks which hosts participate in the P2P system, per
// end-network (the multicast group membership).
type Registry struct {
	byEN map[netmodel.ENID][]netmodel.HostID
}

// NewRegistry builds a registry from the participating peers.
func NewRegistry(top *netmodel.Topology, peers []netmodel.HostID) *Registry {
	r := &Registry{byEN: make(map[netmodel.ENID][]netmodel.HostID)}
	for _, p := range peers {
		en := top.Host(p).EN
		r.byEN[en] = append(r.byEN[en], p)
	}
	return r
}

// MembersIn returns the participating peers of an end-network.
func (r *Registry) MembersIn(en netmodel.ENID) []netmodel.HostID { return r.byEN[en] }

// Result reports an expanding search's outcome.
type Result struct {
	// Peer is the closest responding same-network peer (-1 if none).
	Peer netmodel.HostID
	// RTTms is the measured RTT to Peer.
	RTTms float64
	// Messages is the number of multicast data messages delivered.
	Messages int
	// Rounds is how many rounds ran before a response arrived.
	Rounds int
	// Elapsed is the virtual time the search took.
	Elapsed time.Duration
}

// Searcher runs expanding multicast searches.
type Searcher struct {
	top *netmodel.Topology
	reg *Registry
	cfg Config
	src *rng.Source
	// crossVLAN caches the per-EN multicast-routing configuration.
	crossVLAN map[netmodel.ENID]bool
}

// NewSearcher creates a searcher.
func NewSearcher(top *netmodel.Topology, reg *Registry, cfg Config, seed int64) *Searcher {
	if cfg.Rounds <= 0 || cfg.RoundTimeout <= 0 {
		panic(fmt.Sprintf("multicast: invalid config %+v", cfg))
	}
	return &Searcher{
		top: top, reg: reg, cfg: cfg,
		src:       rng.New(seed),
		crossVLAN: make(map[netmodel.ENID]bool),
	}
}

// enCrossesVLANs reports (memoised, deterministic per EN) whether multicast
// crosses the network's VLAN boundaries.
func (s *Searcher) enCrossesVLANs(en netmodel.ENID) bool {
	if v, ok := s.crossVLAN[en]; ok {
		return v
	}
	v := s.src.SplitN("crossvlan", int(en)).Bool(s.cfg.CrossVLANProb)
	s.crossVLAN[en] = v
	return v
}

// Search runs the expanding search from a peer on a fresh simulator:
// round k multicasts with scope k (round 0 reaches the peer's own VLAN,
// later rounds reach the whole end-network where multicast routing
// permits). Respondents unicast back; the searcher takes the earliest
// (therefore closest) response of the first successful round.
func (s *Searcher) Search(from netmodel.HostID) Result {
	kernel := sim.New()
	res := Result{Peer: -1, RTTms: math.Inf(1)}
	en := s.top.Host(from).EN
	members := s.reg.MembersIn(en)
	fromVLAN := s.top.Host(from).VLAN
	crosses := s.enCrossesVLANs(en)

	type response struct {
		peer netmodel.HostID
		rtt  float64
		at   time.Duration
	}
	var got *response
	roundOf := func(at time.Duration) int { return int(at / s.cfg.RoundTimeout) }

	for round := 0; round < s.cfg.Rounds; round++ {
		round := round
		start := time.Duration(round) * s.cfg.RoundTimeout
		kernel.At(start, func() {
			if got != nil && roundOf(got.at) < round {
				return // earlier round already answered; stop expanding
			}
			for _, m := range members {
				if m == from {
					continue
				}
				h := s.top.Host(m)
				reachable := h.VLAN == fromVLAN || (round > 0 && crosses)
				if !reachable {
					continue
				}
				res.Messages++
				m := m
				rtt := s.top.RTTms(from, m)
				kernel.At(start+netmodel.Duration(rtt), func() {
					if got == nil || got.at > kernel.Now() {
						got = &response{peer: m, rtt: rtt, at: kernel.Now()}
					}
				})
			}
		})
	}
	kernel.Run()

	if got != nil {
		res.Peer = got.peer
		res.RTTms = got.rtt
		res.Rounds = roundOf(got.at) + 1
		res.Elapsed = got.at
	} else {
		res.Rounds = s.cfg.Rounds
		res.Elapsed = time.Duration(s.cfg.Rounds) * s.cfg.RoundTimeout
	}
	return res
}
