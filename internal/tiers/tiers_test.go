package tiers

import (
	"testing"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
)

func TestHierarchyShape(t *testing.T) {
	m := testmat.Euclidean(300, 1)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(300, 20, 2)
	h := New(net, members, DefaultConfig(), 3)

	if h.Levels() < 2 {
		t.Fatalf("hierarchy has %d levels", h.Levels())
	}
	if h.ClustersAt(h.Levels()-1) != 1 {
		t.Fatalf("top level has %d clusters", h.ClustersAt(h.Levels()-1))
	}
	// Cluster counts shrink going up.
	for l := 1; l < h.Levels(); l++ {
		if h.ClustersAt(l) > h.ClustersAt(l-1) {
			t.Fatalf("level %d has more clusters (%d) than level %d (%d)",
				l, h.ClustersAt(l), l-1, h.ClustersAt(l-1))
		}
	}
	// Level 0 covers every member exactly once.
	seen := map[int]bool{}
	total := 0
	for _, c := range h.levels[0] {
		for _, p := range c.members {
			if seen[p] {
				t.Fatalf("member %d in two leaf clusters", p)
			}
			seen[p] = true
			total++
		}
	}
	if total != len(members) {
		t.Fatalf("leaf clusters cover %d of %d members", total, len(members))
	}
}

func TestLeafClusterRadius(t *testing.T) {
	m := testmat.Euclidean(200, 5)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(200, 10, 2)
	cfg := DefaultConfig()
	h := New(net, members, cfg, 3)
	for _, c := range h.levels[0] {
		for _, p := range c.members {
			if l := m.LatencyMs(p, c.rep); l > cfg.Radius0Ms+1e-9 {
				t.Fatalf("leaf member at %v from rep, radius %v", l, cfg.Radius0Ms)
			}
		}
	}
}

func TestFindNearestEuclidean(t *testing.T) {
	const n = 300
	m := testmat.Euclidean(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 30, 5)
	h := New(net, members, DefaultConfig(), 9)

	good := 0
	for _, tgt := range targets {
		res := h.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer || res.LatencyMs <= 2*oracle.LatencyMs+0.5 {
			good++
		}
		if res.Probes <= 0 || res.Hops <= 0 {
			t.Fatal("no probes/hops recorded")
		}
	}
	if good < len(targets)/2 {
		t.Fatalf("only %d/%d queries near-optimal", good, len(targets))
	}
}

func TestClusteringDefeatsDescent(t *testing.T) {
	m, gt := testmat.Clustered(100, 1000, 11)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(m.N(), 80, 3)
	h := New(net, members, DefaultConfig(), 5)
	exact := 0
	for _, tgt := range targets {
		res := h.FindNearest(tgt)
		if res.Peer >= 0 && gt.SameEN(res.Peer, tgt) {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(targets)); frac > 0.4 {
		t.Fatalf("Tiers exact rate %v under clustering; expected failure", frac)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.RadiusMult = 1
	New(overlay.NewNetwork(testmat.Euclidean(10, 1)), []int{0, 1}, cfg, 1)
}
