// Package tiers implements the Tiers hierarchical nearest-peer scheme
// (Banerjee, Kommareddy, Bhattacharjee — Global Internet 2002): all peers
// form level-0 clusters of bounded radius; each cluster elects a
// representative that joins the next level, and so on until one top
// cluster remains. A joining peer descends the hierarchy: it probes the
// members of the top cluster, picks the closest, descends into that
// representative's cluster, and repeats; the closest member of the final
// level-0 cluster is returned.
package tiers

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// Config parameterises hierarchy construction.
type Config struct {
	// Radius0Ms is the clustering radius at level 0 (members of a level-0
	// cluster are within this latency of their representative).
	Radius0Ms float64
	// RadiusMult scales the radius per level.
	RadiusMult float64
	// MaxClusterSize bounds cluster membership — Tiers clusters are
	// size-bounded, which is what keeps per-level probing (and therefore
	// query cost) constant, and also what prevents the scheme from
	// degenerating into an exhaustive sweep of a PoP cluster.
	MaxClusterSize int
	// MaxLevels bounds the hierarchy height.
	MaxLevels int
}

// DefaultConfig uses a 4 ms leaf radius doubling per level, with the small
// bounded clusters of the Tiers paper.
func DefaultConfig() Config {
	return Config{Radius0Ms: 4, RadiusMult: 2, MaxClusterSize: 8, MaxLevels: 16}
}

// clusterT is one cluster in the hierarchy.
type clusterT struct {
	rep     int
	members []int
	// children maps a member (a representative at the level below) to its
	// child cluster index at that level; only levels > 0 have children.
	children map[int]int
}

// Hierarchy is a built Tiers hierarchy.
type Hierarchy struct {
	cfg     Config
	net     *overlay.Network
	members []int
	// levels[0] are the leaf clusters; the last level has one cluster.
	levels [][]clusterT
	src    *rng.Source
}

// New builds the hierarchy bottom-up with leader-based clustering: peers
// are scanned in random order; a peer joins the first existing cluster
// whose representative is within the level radius (measured — maintenance
// probes), otherwise it founds a new cluster. Construction cost is the
// O(n·clusters) probing the Tiers paper accepts.
func New(net *overlay.Network, members []int, cfg Config, seed int64) *Hierarchy {
	if cfg.Radius0Ms <= 0 || cfg.RadiusMult <= 1 || cfg.MaxLevels < 1 || cfg.MaxClusterSize < 2 {
		panic(fmt.Sprintf("tiers: invalid config %+v", cfg))
	}
	h := &Hierarchy{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		src:     rng.New(seed),
	}

	current := append([]int(nil), members...)
	radius := cfg.Radius0Ms
	var prevLevel []clusterT
	for level := 0; level < cfg.MaxLevels; level++ {
		h.src.Shuffle(len(current), func(i, j int) { current[i], current[j] = current[j], current[i] })
		var clusters []clusterT
		for _, p := range current {
			placed := false
			for ci := range clusters {
				if len(clusters[ci].members) >= cfg.MaxClusterSize {
					continue
				}
				if h.net.MaintProbe(p, clusters[ci].rep) <= radius {
					clusters[ci].members = append(clusters[ci].members, p)
					placed = true
					break
				}
			}
			if !placed {
				clusters = append(clusters, clusterT{rep: p, members: []int{p}})
			}
		}
		// Wire child links: each member of a level>0 cluster represents a
		// cluster one level down.
		if level > 0 {
			childIdx := make(map[int]int, len(prevLevel))
			for ci := range prevLevel {
				childIdx[prevLevel[ci].rep] = ci
			}
			for ci := range clusters {
				clusters[ci].children = make(map[int]int)
				for _, m := range clusters[ci].members {
					clusters[ci].children[m] = childIdx[m]
				}
			}
		}
		h.levels = append(h.levels, clusters)
		if len(clusters) == 1 {
			break
		}
		next := make([]int, 0, len(clusters))
		for _, c := range clusters {
			next = append(next, c.rep)
		}
		current = next
		radius *= cfg.RadiusMult
		prevLevel = clusters
	}
	// Force a single top cluster if MaxLevels ran out: its members are the
	// representatives of the previous top level, and its child links point
	// back into that level.
	top := h.levels[len(h.levels)-1]
	if len(top) > 1 {
		merged := clusterT{rep: top[0].rep, children: make(map[int]int)}
		for ci, c := range top {
			merged.members = append(merged.members, c.rep)
			merged.children[c.rep] = ci
		}
		h.levels = append(h.levels, []clusterT{merged})
	}
	return h
}

// Levels returns the number of hierarchy levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// ClustersAt returns the number of clusters at a level.
func (h *Hierarchy) ClustersAt(level int) int { return len(h.levels[level]) }

// FindNearest implements overlay.Finder: descend the hierarchy, probing
// each visited cluster's members and following the closest representative.
func (h *Hierarchy) FindNearest(target int) overlay.Result {
	var probes int64
	hops := 0
	best, bestLat := -1, math.Inf(1)

	level := len(h.levels) - 1
	ci := 0
	for {
		c := &h.levels[level][ci]
		members := append([]int(nil), c.members...)
		sort.Ints(members)
		minID, minLat := -1, math.Inf(1)
		for _, m := range members {
			if m == target {
				continue // the searcher itself can be a member; it is not a candidate
			}
			l := h.net.Probe(m, target)
			probes++
			if l < minLat {
				minID, minLat = m, l
			}
			if l < bestLat {
				best, bestLat = m, l
			}
		}
		hops++
		if level == 0 || minID < 0 {
			break
		}
		next, ok := c.children[minID]
		if !ok {
			break
		}
		ci = next
		level--
	}
	return overlay.Result{Peer: best, LatencyMs: bestLat, Probes: probes, Hops: hops}
}
