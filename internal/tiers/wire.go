// Wire deployment of the Tiers hierarchy: the same bounded clusters as the
// static Hierarchy, but each representative serves its own cluster's member
// list as an RPC and the querier's per-cluster probing is real pings over
// the runtime. The descent is therefore priced end to end — a dead
// representative severs its whole subtree from the query, the failure mode
// a leader-based hierarchy buys with its O(log n) probe bill.

package tiers

import (
	"sort"
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the Tiers wire protocol.
const (
	// MsgCluster asks a representative for the member list of the cluster
	// it leads at the requested level (clusterMsg/clusterOK).
	MsgCluster   = "t_cluster"
	MsgClusterOK = "t_cluster_ok"
)

type clusterMsg struct{ Level int }
type clusterOK struct {
	// OK is false when the asked node leads no cluster at that level.
	OK  bool
	IDs []int // sorted ascending
}

func init() {
	p2p.RegisterPayload(MsgCluster, clusterMsg{})
	p2p.RegisterPayload(MsgClusterOK, clusterOK{})
}

// Wire is a deployed message-level Tiers service. Member indices are
// runtime NodeIDs (the hierarchy is built over the runtime's latency
// matrix). The Wire owns its Hierarchy instance; build it with the same
// seed as a static leg's and the two descend identical trees.
type Wire struct {
	base *Hierarchy
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy.
	Retry p2p.Policy
	// repIdx[level][rep] is the cluster index the rep leads at that level.
	repIdx []map[int]int
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Hierarchy) *Wire {
	w := &Wire{base: base, rt: rt, repIdx: make([]map[int]int, len(base.levels))}
	for l, clusters := range base.levels {
		w.repIdx[l] = make(map[int]int, len(clusters))
		for ci, c := range clusters {
			w.repIdx[l][c.rep] = ci
		}
	}
	return w
}

// Join brings a member up on the runtime and installs its cluster handler
// (every member leads its own singleton view at level 0 or better; non-reps
// simply answer OK=false).
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	n.Handle(MsgCluster, func(n *p2p.Node, env p2p.Envelope) {
		cm := env.Payload.(clusterMsg)
		if cm.Level < 0 || cm.Level >= len(w.base.levels) {
			n.Reply(env, MsgClusterOK, clusterOK{})
			return
		}
		ci, ok := w.repIdx[cm.Level][int(n.ID)]
		if !ok {
			n.Reply(env, MsgClusterOK, clusterOK{})
			return
		}
		ids := append([]int(nil), w.base.levels[cm.Level][ci].members...)
		sort.Ints(ids)
		n.Reply(env, MsgClusterOK, clusterOK{OK: true, IDs: ids})
	})
}

// FindNearest descends the hierarchy over the wire from client: fetch the
// top cluster from the (well-known) top representative, ping its members,
// follow the closest into its own cluster one level down, repeat. done
// fires exactly once unless the client dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	level := len(w.base.levels) - 1
	rep := w.base.levels[level][0].rep

	var descend func(level, rep int)
	descend = func(level, rep int) {
		res.RPCs++
		n.RequestPolicy(p2p.NodeID(rep), MsgCluster, clusterMsg{Level: level}, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				co := env.Payload.(clusterOK)
				if !co.OK {
					done(res)
					return
				}
				ids := make([]p2p.NodeID, 0, len(co.IDs))
				for _, m := range co.IDs {
					if p2p.NodeID(m) != client {
						ids = append(ids, p2p.NodeID(m))
					}
				}
				n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
					res.Probes += s.Probes
					res.DeadProbes += s.Dead
					res.Hops++
					if s.Found && (!res.Found || s.BestRTT < res.RTTms) {
						res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
					}
					if level == 0 || !s.Found {
						done(res)
						return
					}
					descend(level-1, int(s.Best))
				})
			},
			func() {
				res.RPCFails++
				done(res) // the subtree is unreachable: report the best so far
			})
	}
	descend(level, rep)
}
