// Package latency provides latency matrices: the abstraction the
// nearest-peer algorithms consume, a dense implementation, an adaptor over
// the netmodel topology, and — centrally — the synthetic clustered matrix of
// the paper's Section 4 Meridian study.
package latency

import (
	"fmt"
	"math"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/rng"
)

// Matrix exposes pairwise latencies among n nodes. Latencies are RTTs in
// milliseconds, the paper's working unit.
type Matrix interface {
	N() int
	// LatencyMs returns the RTT between nodes i and j in milliseconds.
	// LatencyMs(i, i) is 0.
	LatencyMs(i, j int) float64
}

// Dense is an in-memory symmetric matrix.
type Dense struct {
	n    int
	data []float64
}

// NewDense allocates an n×n zero matrix.
func NewDense(n int) *Dense {
	return &Dense{n: n, data: make([]float64, n*n)}
}

// N returns the node count.
func (d *Dense) N() int { return d.n }

// LatencyMs returns the RTT between i and j.
func (d *Dense) LatencyMs(i, j int) float64 { return d.data[i*d.n+j] }

// Set assigns the symmetric pair (i, j).
func (d *Dense) Set(i, j int, ms float64) {
	if ms < 0 {
		panic(fmt.Sprintf("latency: negative latency %v", ms))
	}
	d.data[i*d.n+j] = ms
	d.data[j*d.n+i] = ms
}

// FullTopologyMatrix adapts an entire netmodel topology: node index i is
// host ID i. Latencies are computed on demand — nothing is materialised —
// so it scales to hundreds of thousands of hosts.
type FullTopologyMatrix struct {
	Top *netmodel.Topology

	cache *netmodel.RTTCache
}

// N returns the host count.
func (m *FullTopologyMatrix) N() int { return m.Top.NumHosts() }

// EnableRTTCache attaches a direct-mapped unordered-pair cache (slots <= 0
// selects the netmodel default) and returns m for chaining. Cached values
// are bit-identical to direct pricing, so figures cannot change; what
// changes is that protocol maintenance re-pricing the same pairs (chord
// stabilize, ring pings) stops re-walking the topology. The cache makes
// the matrix single-goroutine: callers that share one topology across
// engine trials must enable the cache on each trial's own matrix, never
// on a shared one.
func (m *FullTopologyMatrix) EnableRTTCache(slots int) *FullTopologyMatrix {
	m.cache = netmodel.NewRTTCache(m.Top, slots)
	return m
}

// LatencyMs returns the true RTT between hosts i and j.
func (m *FullTopologyMatrix) LatencyMs(i, j int) float64 {
	if m.cache != nil {
		return m.cache.RTTms(netmodel.HostID(i), netmodel.HostID(j))
	}
	if i == j {
		return 0
	}
	return m.Top.RTTms(netmodel.HostID(i), netmodel.HostID(j))
}

// TopologyMatrix adapts a netmodel topology restricted to a host subset.
type TopologyMatrix struct {
	Top   *netmodel.Topology
	Hosts []netmodel.HostID

	cache *netmodel.RTTCache
}

// N returns the host-subset size.
func (m *TopologyMatrix) N() int { return len(m.Hosts) }

// EnableRTTCache attaches a direct-mapped unordered-pair cache and returns
// m for chaining; see FullTopologyMatrix.EnableRTTCache for the contract.
func (m *TopologyMatrix) EnableRTTCache(slots int) *TopologyMatrix {
	m.cache = netmodel.NewRTTCache(m.Top, slots)
	return m
}

// LatencyMs returns the true RTT between the i-th and j-th selected hosts.
func (m *TopologyMatrix) LatencyMs(i, j int) float64 {
	if i == j {
		return 0
	}
	if m.cache != nil {
		return m.cache.RTTms(m.Hosts[i], m.Hosts[j])
	}
	return m.Top.RTTms(m.Hosts[i], m.Hosts[j])
}

// SyntheticMeridianDataset generates pairwise RTTs among n "DNS servers"
// with the gross statistics of the Meridian latency dataset the paper uses
// for cluster-hub spacing: a median pairwise RTT of about 65 ms. Nodes are
// embedded in a 5-dimensional Euclidean space (keeping the matrix roughly
// metric, as wide-area latencies are) and perturbed with mild multiplicative
// noise (triangle-inequality violations of the kind real measurements show).
func SyntheticMeridianDataset(n int, seed int64) *Dense {
	if n < 2 {
		// No pairs to rescale; a 0×0 or 1×1 matrix is all zeros anyway.
		return NewDense(n)
	}
	src := rng.New(seed)
	const dims = 5
	coords := make([][dims]float64, n)
	for i := range coords {
		for d := 0; d < dims; d++ {
			coords[i][d] = src.NormFloat64()
		}
	}
	m := NewDense(n)
	// One allocation for the pair list: growing it by append doubling
	// re-copies O(n²) floats and was measurable churn when parallel trials
	// each build their own clustered matrix.
	all := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var ss float64
			for d := 0; d < dims; d++ {
				diff := coords[i][d] - coords[j][d]
				ss += diff * diff
			}
			lat := math.Sqrt(ss) * (1 + 0.15*src.NormFloat64())
			if lat < 0.05 {
				lat = 0.05
			}
			m.Set(i, j, lat)
			all = append(all, lat)
		}
	}
	// Rescale so the median lands at 65 ms, the figure the paper quotes
	// for DNS-server pairs in the Meridian dataset.
	med := medianOf(all)
	scale := 65.0 / med
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, m.LatencyMs(i, j)*scale)
		}
	}
	return m
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// Insertion into a partial sort is overkill; use a simple quickselect.
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		p := partition(cp, lo, hi)
		switch {
		case p == k:
			lo, hi = k, k
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return cp[k]
}

func partition(xs []float64, lo, hi int) int {
	pivot := xs[(lo+hi)/2]
	xs[(lo+hi)/2], xs[hi] = xs[hi], xs[(lo+hi)/2]
	store := lo
	for i := lo; i < hi; i++ {
		if xs[i] < pivot {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[hi] = xs[hi], xs[store]
	return store
}
