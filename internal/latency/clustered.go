package latency

import (
	"fmt"

	"nearestpeer/internal/rng"
)

// ClusteredConfig parameterises the Section 4 synthetic latency matrix.
// Defaults (via DefaultClusteredConfig) match the paper's setup exactly:
// ~2,500 peers, two peers per end-network, per-cluster mean hub latency
// uniform in [4, 6] ms, intra-end-network latency 100 µs, cluster-hub
// spacing drawn from a Meridian-like dataset with 65 ms median.
type ClusteredConfig struct {
	// ENsPerCluster is the average number of end-networks in a cluster —
	// the x-axis of Figure 8.
	ENsPerCluster int
	// ENSpread is the +- fractional variation of per-cluster end-network
	// counts around ENsPerCluster.
	ENSpread float64
	// PeersPerEN is the number of peers in each end-network (2 in the
	// paper: one overlay peer and, with luck, its same-LAN partner).
	PeersPerEN int
	// TotalPeers is the approximate total population (~2,500).
	TotalPeers int
	// HubMeanMinMs / HubMeanMaxMs bound the per-cluster mean latency
	// between the cluster-hub and its end-networks (4–6 ms).
	HubMeanMinMs float64
	HubMeanMaxMs float64
	// Delta is the paper's δ: each end-network's hub latency is uniform in
	// [(1-δ), (1+δ)] times the cluster mean. δ→0 is the clustering
	// condition at its sharpest.
	Delta float64
	// IntraENMs is the latency between two peers of one end-network
	// (100 µs = 0.1 ms).
	IntraENMs float64
}

// DefaultClusteredConfig returns the paper's Section 4 parameters.
func DefaultClusteredConfig() ClusteredConfig {
	return ClusteredConfig{
		ENsPerCluster: 125,
		ENSpread:      0.2,
		PeersPerEN:    2,
		TotalPeers:    2500,
		HubMeanMinMs:  4,
		HubMeanMaxMs:  6,
		Delta:         0.2,
		IntraENMs:     0.1,
	}
}

// GroundTruth records, for every peer of a clustered matrix, which
// end-network and cluster it belongs to — the information no latency-only
// algorithm has, and exactly what the simulator needs to score results.
type GroundTruth struct {
	// ENOf[i] is the end-network index of peer i.
	ENOf []int
	// ClusterOf[i] is the cluster index of peer i.
	ClusterOf []int
	// HubLatMs[i] is the latency from peer i to its cluster-hub.
	HubLatMs []float64
	// PeersInEN maps an end-network index to its peers.
	PeersInEN map[int][]int
	// NumClusters is the number of clusters generated.
	NumClusters int
	// NumENs is the number of end-networks generated.
	NumENs int
}

// SameEN reports whether peers i and j share an end-network.
func (g *GroundTruth) SameEN(i, j int) bool { return g.ENOf[i] == g.ENOf[j] }

// SameCluster reports whether peers i and j share a cluster.
func (g *GroundTruth) SameCluster(i, j int) bool { return g.ClusterOf[i] == g.ClusterOf[j] }

// ClosestPeer returns the peer among candidates with the smallest latency to
// target (excluding target itself), together with that latency. It is the
// oracle answer a perfect nearest-peer search would produce.
func (g *GroundTruth) ClosestPeer(m Matrix, target int, candidates []int) (int, float64) {
	best, bestLat := -1, 0.0
	for _, c := range candidates {
		if c == target {
			continue
		}
		l := m.LatencyMs(target, c)
		if best < 0 || l < bestLat {
			best, bestLat = c, l
		}
	}
	return best, bestLat
}

// BuildClustered constructs the Section 4 latency matrix: clusters of
// end-networks around hubs, hub-to-hub distances from a synthetic
// Meridian-like dataset, two peers per end-network.
//
// Latency rules (paper, Section 4):
//   - peers in one end-network: IntraENMs (100 µs), and identical latencies
//     to everyone else;
//   - peers in different end-networks of one cluster: hub(i) + hub(j);
//   - peers in different clusters: hub(i) + hubDist(ci, cj) + hub(j).
func BuildClustered(cfg ClusteredConfig, seed int64) (*Dense, *GroundTruth) {
	if cfg.PeersPerEN < 1 || cfg.ENsPerCluster < 1 || cfg.TotalPeers < cfg.PeersPerEN {
		panic(fmt.Sprintf("latency: invalid clustered config %+v", cfg))
	}
	src := rng.New(seed)

	peersPerCluster := cfg.ENsPerCluster * cfg.PeersPerEN
	nClusters := cfg.TotalPeers / peersPerCluster
	if nClusters < 1 {
		nClusters = 1
	}

	hubs := SyntheticMeridianDataset(nClusters, src.Split("hubs").Seed())

	gt := &GroundTruth{PeersInEN: make(map[int][]int), NumClusters: nClusters}
	type peerInfo struct {
		en, cluster int
		hubLat      float64
	}
	var peers []peerInfo
	enIndex := 0
	for c := 0; c < nClusters; c++ {
		csrc := src.SplitN("cluster", c)
		mean := csrc.Uniform(cfg.HubMeanMinMs, cfg.HubMeanMaxMs)
		nENs := cfg.ENsPerCluster
		if cfg.ENSpread > 0 {
			lo := int(float64(cfg.ENsPerCluster) * (1 - cfg.ENSpread))
			hi := int(float64(cfg.ENsPerCluster) * (1 + cfg.ENSpread))
			if hi > lo {
				nENs = lo + csrc.Intn(hi-lo+1)
			}
		}
		if nENs < 1 {
			nENs = 1
		}
		for e := 0; e < nENs; e++ {
			// δ: the end-network's hub latency within the cluster.
			hubLat := mean * csrc.Uniform(1-cfg.Delta, 1+cfg.Delta)
			if hubLat < 0.05 {
				hubLat = 0.05
			}
			for p := 0; p < cfg.PeersPerEN; p++ {
				peers = append(peers, peerInfo{en: enIndex, cluster: c, hubLat: hubLat})
			}
			enIndex++
		}
	}
	gt.NumENs = enIndex

	n := len(peers)
	m := NewDense(n)
	gt.ENOf = make([]int, n)
	gt.ClusterOf = make([]int, n)
	gt.HubLatMs = make([]float64, n)
	for i, p := range peers {
		gt.ENOf[i] = p.en
		gt.ClusterOf[i] = p.cluster
		gt.HubLatMs[i] = p.hubLat
		gt.PeersInEN[p.en] = append(gt.PeersInEN[p.en], i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi, pj := peers[i], peers[j]
			var lat float64
			switch {
			case pi.en == pj.en:
				lat = cfg.IntraENMs
			case pi.cluster == pj.cluster:
				lat = pi.hubLat + pj.hubLat
			default:
				lat = pi.hubLat + hubs.LatencyMs(pi.cluster, pj.cluster) + pj.hubLat
			}
			m.Set(i, j, lat)
		}
	}
	return m, gt
}
