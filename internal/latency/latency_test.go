package latency

import (
	"math"
	"sort"
	"testing"

	"nearestpeer/internal/netmodel"
)

func TestDenseSymmetric(t *testing.T) {
	d := NewDense(4)
	d.Set(1, 2, 7.5)
	if d.LatencyMs(1, 2) != 7.5 || d.LatencyMs(2, 1) != 7.5 {
		t.Fatal("Set not symmetric")
	}
	if d.LatencyMs(0, 0) != 0 {
		t.Fatal("diagonal not zero")
	}
	if d.N() != 4 {
		t.Fatal("N wrong")
	}
}

func TestDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2).Set(0, 1, -1)
}

func TestSyntheticMeridianDataset(t *testing.T) {
	m := SyntheticMeridianDataset(200, 3)
	var all []float64
	for i := 0; i < m.N(); i++ {
		for j := i + 1; j < m.N(); j++ {
			l := m.LatencyMs(i, j)
			if l <= 0 {
				t.Fatalf("non-positive latency %v", l)
			}
			if l != m.LatencyMs(j, i) {
				t.Fatal("asymmetric")
			}
			all = append(all, l)
		}
	}
	sort.Float64s(all)
	med := all[len(all)/2]
	if math.Abs(med-65) > 1.5 {
		t.Fatalf("median = %v, want ~65 ms", med)
	}
}

func TestSyntheticMeridianDeterministic(t *testing.T) {
	a := SyntheticMeridianDataset(50, 7)
	b := SyntheticMeridianDataset(50, 7)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.LatencyMs(i, j) != b.LatencyMs(i, j) {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestBuildClusteredStructure(t *testing.T) {
	cfg := DefaultClusteredConfig()
	cfg.ENsPerCluster = 25
	m, gt := BuildClustered(cfg, 11)

	if m.N() < 2000 || m.N() > 3000 {
		t.Fatalf("population %d, want ~2500", m.N())
	}
	if gt.NumClusters != cfg.TotalPeers/(cfg.ENsPerCluster*cfg.PeersPerEN) {
		t.Fatalf("clusters = %d", gt.NumClusters)
	}

	// Every end-network holds exactly PeersPerEN peers.
	for en, ps := range gt.PeersInEN {
		if len(ps) != cfg.PeersPerEN {
			t.Fatalf("EN %d has %d peers", en, len(ps))
		}
		// Intra-EN latency is exactly 100 µs.
		if l := m.LatencyMs(ps[0], ps[1]); l != cfg.IntraENMs {
			t.Fatalf("intra-EN latency %v", l)
		}
	}

	// Same-cluster, different-EN latency = hub(i)+hub(j).
	found := false
	for i := 0; i < m.N() && !found; i++ {
		for j := i + 1; j < m.N(); j++ {
			if gt.SameCluster(i, j) && !gt.SameEN(i, j) {
				want := gt.HubLatMs[i] + gt.HubLatMs[j]
				if math.Abs(m.LatencyMs(i, j)-want) > 1e-9 {
					t.Fatalf("intra-cluster latency %v, want %v", m.LatencyMs(i, j), want)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no intra-cluster pair found")
	}

	// Cross-cluster latencies exceed intra-cluster ones on median: hubs
	// are ~65 ms apart while intra-cluster is ~8-12 ms.
	var intra, cross []float64
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			switch {
			case gt.SameEN(i, j):
			case gt.SameCluster(i, j):
				intra = append(intra, m.LatencyMs(i, j))
			default:
				cross = append(cross, m.LatencyMs(i, j))
			}
		}
	}
	if len(intra) == 0 || len(cross) == 0 {
		t.Skip("sample too small for gradation check")
	}
	sort.Float64s(intra)
	sort.Float64s(cross)
	if intra[len(intra)/2] >= cross[len(cross)/2] {
		t.Fatalf("intra-cluster median %v >= cross median %v",
			intra[len(intra)/2], cross[len(cross)/2])
	}
}

func TestBuildClusteredHubLatencyRange(t *testing.T) {
	cfg := DefaultClusteredConfig()
	cfg.Delta = 0.2
	_, gt := BuildClustered(cfg, 5)
	for i, h := range gt.HubLatMs {
		// mean in [4,6], δ=0.2 → hub latency in [4*0.8, 6*1.2].
		if h < 4*0.8-1e-9 || h > 6*1.2+1e-9 {
			t.Fatalf("peer %d hub latency %v outside [3.2, 7.2]", i, h)
		}
	}
}

func TestBuildClusteredDeltaZero(t *testing.T) {
	cfg := DefaultClusteredConfig()
	cfg.Delta = 0
	cfg.ENsPerCluster = 10
	cfg.TotalPeers = 400
	m, gt := BuildClustered(cfg, 2)
	// With δ=0 every end-network of a cluster sits at exactly the cluster
	// mean, so all cross-EN intra-cluster latencies within a cluster are
	// equal — the clustering condition in its purest form.
	for c := 0; c < gt.NumClusters; c++ {
		var lats []float64
		for i := 0; i < m.N(); i++ {
			if gt.ClusterOf[i] != c {
				continue
			}
			for j := i + 1; j < m.N(); j++ {
				if gt.ClusterOf[j] == c && !gt.SameEN(i, j) {
					lats = append(lats, m.LatencyMs(i, j))
				}
			}
		}
		for _, l := range lats {
			if math.Abs(l-lats[0]) > 1e-9 {
				t.Fatalf("δ=0 cluster %d has unequal latencies %v vs %v", c, l, lats[0])
			}
		}
	}
}

func TestClosestPeerOracle(t *testing.T) {
	cfg := DefaultClusteredConfig()
	cfg.ENsPerCluster = 10
	cfg.TotalPeers = 200
	m, gt := BuildClustered(cfg, 8)
	candidates := make([]int, m.N())
	for i := range candidates {
		candidates[i] = i
	}
	// For any peer, the oracle closest peer is its same-EN partner.
	for i := 0; i < m.N(); i++ {
		best, lat := gt.ClosestPeer(m, i, candidates)
		if !gt.SameEN(i, best) {
			t.Fatalf("oracle closest of %d is %d (different EN)", i, best)
		}
		if lat != cfg.IntraENMs {
			t.Fatalf("oracle latency %v", lat)
		}
	}
}

func TestTopologyMatrix(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 1)
	hosts := []netmodel.HostID{0, 5, 10, 15}
	m := &TopologyMatrix{Top: top, Hosts: hosts}
	if m.N() != 4 {
		t.Fatal("N wrong")
	}
	if m.LatencyMs(2, 2) != 0 {
		t.Fatal("diagonal not zero")
	}
	if m.LatencyMs(0, 1) != top.RTTms(0, 5) {
		t.Fatal("adaptor disagrees with topology")
	}
}

// TestRTTCacheTransparent: a cache-enabled topology matrix must be
// indistinguishable, value for value, from the uncached one.
func TestRTTCacheTransparent(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 4)
	full := &FullTopologyMatrix{Top: top}
	cachedFull := (&FullTopologyMatrix{Top: top}).EnableRTTCache(1 << 8)
	hosts := make([]netmodel.HostID, 0, 50)
	for i := 0; i < 50; i++ {
		hosts = append(hosts, netmodel.HostID(i*7%top.NumHosts()))
	}
	sub := &TopologyMatrix{Top: top, Hosts: hosts}
	cachedSub := (&TopologyMatrix{Top: top, Hosts: hosts}).EnableRTTCache(1 << 8)
	for round := 0; round < 2; round++ { // second round exercises hits
		for i := 0; i < len(hosts); i++ {
			for j := 0; j < len(hosts); j++ {
				a, b := int(hosts[i]), int(hosts[j])
				if got, want := cachedFull.LatencyMs(a, b), full.LatencyMs(a, b); got != want {
					t.Fatalf("cached full matrix (%d,%d) = %v, direct %v", a, b, got, want)
				}
				if got, want := cachedSub.LatencyMs(i, j), sub.LatencyMs(i, j); got != want {
					t.Fatalf("cached sub matrix (%d,%d) = %v, direct %v", i, j, got, want)
				}
			}
		}
	}
}
