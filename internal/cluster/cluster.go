// Package cluster implements the Section 3.2 measurement pipeline over
// Azureus-style peers: find each peer's closest upstream router from every
// vantage point, keep peers whose upstream router is unique across vantage
// points, group peers by that router into clusters with the router as the
// cluster-hub, estimate hub-to-peer latencies by subtracting the traceroute
// latency to the hub from the latency to the peer, and finally prune every
// cluster so its hub-to-peer latencies lie within a configurable factor of
// one another (1.5 in the paper).
package cluster

import (
	"sort"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// Config tunes the pipeline.
type Config struct {
	// PruneFactor is the maximum allowed ratio between the largest and
	// smallest hub-to-peer latency within a pruned cluster (paper: 1.5).
	PruneFactor float64
	// MinClusterSize drops clusters smaller than this (paper plots
	// clusters of size >= 2).
	MinClusterSize int
}

// DefaultConfig matches the paper.
func DefaultConfig() Config {
	return Config{PruneFactor: 1.5, MinClusterSize: 2}
}

// Peer is a pipeline survivor: a responsive peer with a unique upstream
// router and an estimated latency to its cluster-hub.
type Peer struct {
	Host     netmodel.HostID
	Upstream netmodel.RouterID
	// HubLatMs is the estimated RTT between the cluster-hub and the peer
	// in milliseconds (median across vantage points).
	HubLatMs float64
}

// Cluster is a set of peers sharing a closest upstream router.
type Cluster struct {
	Hub   netmodel.RouterID
	Peers []Peer
}

// Size returns the number of peers in the cluster.
func (c *Cluster) Size() int { return len(c.Peers) }

// Result carries the pipeline output and its attrition accounting.
type Result struct {
	// Candidates is the number of input addresses.
	Candidates int
	// Responsive peers answered a TCP ping or traceroute with a latency.
	Responsive int
	// UniqueUpstream peers additionally showed one and the same upstream
	// router from every vantage point.
	UniqueUpstream int
	// Clusters of size >= MinClusterSize, unpruned.
	Clusters []Cluster
	// Pruned clusters: each is the largest subset of the corresponding
	// cluster whose hub latencies fit within PruneFactor.
	Pruned []Cluster
}

// PeersIn returns the total number of peers across the given clusters.
func PeersIn(cs []Cluster) int {
	n := 0
	for i := range cs {
		n += len(cs[i].Peers)
	}
	return n
}

// Run executes the pipeline.
func Run(tools *measure.Tools, vantages []measure.Vantage, candidates []netmodel.HostID, cfg Config) *Result {
	res := &Result{Candidates: len(candidates)}

	byHub := make(map[netmodel.RouterID][]Peer)
	for _, cand := range candidates {
		// Step 1: the peer must yield a latency at all.
		lat0, err := tools.LatencyTo(vantages[0].Host, cand)
		if err != nil {
			continue
		}
		res.Responsive++

		// Step 2: a unique, valid upstream router across all vantages.
		hub := tools.UpstreamRouter(vantages[0].Host, cand)
		if hub == netmodel.NoRouter {
			continue
		}
		unique := true
		for _, v := range vantages[1:] {
			if tools.UpstreamRouter(v.Host, cand) != hub {
				unique = false
				break
			}
		}
		if !unique {
			continue
		}
		res.UniqueUpstream++

		// Step 3: hub-to-peer latency = latency(vantage→peer) minus the
		// traceroute entry for the hub, per vantage; take the median of
		// the non-negative estimates.
		var ests []float64
		for _, v := range vantages {
			var peerMs float64
			if v.Host == vantages[0].Host {
				peerMs = netmodel.Ms(lat0)
			} else {
				d, err := tools.LatencyTo(v.Host, cand)
				if err != nil {
					continue
				}
				peerMs = netmodel.Ms(d)
			}
			hubMs, ok := hubRTTOnTrace(tools, v.Host, cand, hub)
			if !ok {
				continue
			}
			if est := peerMs - hubMs; est > 0 {
				ests = append(ests, est)
			}
		}
		if len(ests) == 0 {
			continue
		}
		sort.Float64s(ests)
		byHub[hub] = append(byHub[hub], Peer{
			Host:     cand,
			Upstream: hub,
			HubLatMs: ests[len(ests)/2],
		})
	}

	// Step 4: clusters, deterministically ordered by hub.
	hubs := make([]netmodel.RouterID, 0, len(byHub))
	for hub := range byHub {
		hubs = append(hubs, hub)
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	for _, hub := range hubs {
		peers := byHub[hub]
		if len(peers) < cfg.MinClusterSize {
			continue
		}
		res.Clusters = append(res.Clusters, Cluster{Hub: hub, Peers: peers})
		if pruned := PruneCluster(peers, cfg.PruneFactor); len(pruned) >= cfg.MinClusterSize {
			res.Pruned = append(res.Pruned, Cluster{Hub: hub, Peers: pruned})
		}
	}
	return res
}

// hubRTTOnTrace finds the measured RTT to the hub router on the traceroute
// from `from` to `to`.
func hubRTTOnTrace(tools *measure.Tools, from, to netmodel.HostID, hub netmodel.RouterID) (float64, bool) {
	for _, hop := range tools.Traceroute(from, to) {
		if hop.Router == hub {
			return netmodel.Ms(hop.RTT), true
		}
	}
	return 0, false
}

// PruneCluster returns the largest subset of peers whose hub latencies are
// all within factor of one another — the paper's "pare down the clusters,
// ensuring that within each cluster, the hub-to-peer latencies are all
// within a factor of 1.5 from one another". With latencies sorted, the
// optimal subset is a contiguous window, found by a linear sweep.
func PruneCluster(peers []Peer, factor float64) []Peer {
	if len(peers) == 0 {
		return nil
	}
	sorted := append([]Peer(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].HubLatMs < sorted[j].HubLatMs })

	bestLo, bestHi := 0, 0 // best window [lo, hi)
	lo := 0
	for hi := 1; hi <= len(sorted); hi++ {
		for sorted[hi-1].HubLatMs > sorted[lo].HubLatMs*factor {
			lo++
		}
		if hi-lo > bestHi-bestLo {
			bestLo, bestHi = lo, hi
		}
	}
	return sorted[bestLo:bestHi]
}

// SizeDistribution returns cluster sizes sorted descending.
func SizeDistribution(cs []Cluster) []int {
	sizes := make([]int, len(cs))
	for i := range cs {
		sizes[i] = len(cs[i].Peers)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// FractionInClustersOfAtLeast returns the fraction of pipeline-surviving
// peers that sit in clusters of at least k peers — the paper's "about 16%
// of the peers are in (pruned) clusters of size 25 or larger".
func FractionInClustersOfAtLeast(cs []Cluster, totalPeers, k int) float64 {
	if totalPeers == 0 {
		return 0
	}
	n := 0
	for i := range cs {
		if len(cs[i].Peers) >= k {
			n += len(cs[i].Peers)
		}
	}
	return float64(n) / float64(totalPeers)
}
