package cluster

import (
	"testing"

	"nearestpeer/internal/azureus"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func TestPruneClusterWindow(t *testing.T) {
	peers := mkPeers(1, 1.2, 1.4, 5, 5.5, 6, 7, 30)
	pruned := PruneCluster(peers, 1.5)
	// The largest factor-1.5 window is {5, 5.5, 6, 7}.
	if len(pruned) != 4 {
		t.Fatalf("pruned size = %d, want 4", len(pruned))
	}
	for _, p := range pruned {
		if p.HubLatMs < 5 || p.HubLatMs > 7 {
			t.Fatalf("wrong window member %v", p.HubLatMs)
		}
	}
}

func TestPruneClusterAllWithinFactor(t *testing.T) {
	peers := mkPeers(2, 2.5, 2.9)
	if got := PruneCluster(peers, 1.5); len(got) != 3 {
		t.Fatalf("pruned %d of homogeneous cluster", len(got))
	}
}

func TestPruneClusterSingleton(t *testing.T) {
	if got := PruneCluster(mkPeers(4), 1.5); len(got) != 1 {
		t.Fatal("singleton mishandled")
	}
	if got := PruneCluster(nil, 1.5); got != nil {
		t.Fatal("empty input mishandled")
	}
}

func TestPruneFactorInvariant(t *testing.T) {
	// Property: output window always satisfies max <= factor*min.
	for seed := 0; seed < 50; seed++ {
		peers := mkPeers()
		x := 1.0
		for i := 0; i < 20; i++ {
			x *= 1 + float64((seed*i)%7)/10
			peers = append(peers, Peer{HubLatMs: x})
		}
		out := PruneCluster(peers, 1.5)
		if len(out) == 0 {
			t.Fatal("empty output for non-empty input")
		}
		lo, hi := out[0].HubLatMs, out[0].HubLatMs
		for _, p := range out {
			if p.HubLatMs < lo {
				lo = p.HubLatMs
			}
			if p.HubLatMs > hi {
				hi = p.HubLatMs
			}
		}
		if hi > lo*1.5+1e-9 {
			t.Fatalf("window violates factor: [%v, %v]", lo, hi)
		}
	}
}

func mkPeers(lats ...float64) []Peer {
	out := make([]Peer, len(lats))
	for i, l := range lats {
		out[i] = Peer{Host: netmodel.HostID(i), HubLatMs: l}
	}
	return out
}

func TestPipelineEndToEnd(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 3)
	tools := measure.NewTools(top, measure.DefaultConfig(), 7)
	vs, err := measure.SelectVantages(top, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop := azureus.Sample(top, 3000, 0.5, 11)
	res := Run(tools, vs, pop.Hosts, DefaultConfig())

	if res.Candidates != len(pop.Hosts) {
		t.Fatal("candidate accounting wrong")
	}
	if res.Responsive == 0 || res.Responsive > res.Candidates {
		t.Fatalf("responsive = %d", res.Responsive)
	}
	if res.UniqueUpstream > res.Responsive {
		t.Fatal("unique-upstream exceeds responsive")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}

	survivors := 0
	for _, c := range res.Clusters {
		if len(c.Peers) < DefaultConfig().MinClusterSize {
			t.Fatal("undersized cluster emitted")
		}
		survivors += len(c.Peers)
		// All cluster peers share the hub.
		for _, p := range c.Peers {
			if p.Upstream != c.Hub {
				t.Fatal("peer in wrong cluster")
			}
			if p.HubLatMs <= 0 {
				t.Fatalf("non-positive hub latency %v", p.HubLatMs)
			}
		}
	}
	if survivors > res.UniqueUpstream {
		t.Fatal("cluster peers exceed unique-upstream survivors")
	}

	// Pruned clusters respect the factor and never outgrow the original.
	if len(res.Pruned) == 0 {
		t.Fatal("no pruned clusters")
	}
	for _, c := range res.Pruned {
		lo, hi := c.Peers[0].HubLatMs, c.Peers[0].HubLatMs
		for _, p := range c.Peers {
			if p.HubLatMs < lo {
				lo = p.HubLatMs
			}
			if p.HubLatMs > hi {
				hi = p.HubLatMs
			}
		}
		if hi > lo*1.5+1e-9 {
			t.Fatalf("pruned cluster spreads [%v, %v]", lo, hi)
		}
	}
	if PeersIn(res.Pruned) > PeersIn(res.Clusters) {
		t.Fatal("pruning added peers")
	}
}

func TestPipelineGroundTruth(t *testing.T) {
	// Home peers behind one BRAS must land in one cluster: the pipeline's
	// inferred hub is the true edge router for well-behaved peers.
	top := netmodel.Generate(netmodel.DefaultConfig(), 3)
	tools := measure.NewTools(top, measure.DefaultConfig(), 7)
	vs, err := measure.SelectVantages(top, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-pick well-behaved home peers sharing an edge router.
	byEdge := make(map[netmodel.RouterID][]netmodel.HostID)
	for i := range top.Hosts {
		h := &top.Hosts[i]
		en := top.EN(h.EN)
		if !en.IsHome || h.Multihomed || !h.RespondsTCP {
			continue
		}
		edge := en.EdgeRouter()
		if edge == netmodel.NoRouter || top.Router(edge).Anonymous {
			continue
		}
		byEdge[edge] = append(byEdge[edge], netmodel.HostID(i))
	}
	var candidates []netmodel.HostID
	var wantHub netmodel.RouterID
	for edge, hosts := range byEdge {
		if len(hosts) >= 3 {
			candidates = hosts
			wantHub = edge
			break
		}
	}
	if candidates == nil {
		t.Skip("no BRAS with 3+ responsive homes in fixture")
	}
	res := Run(tools, vs, candidates, DefaultConfig())
	if len(res.Clusters) != 1 {
		t.Fatalf("got %d clusters, want 1", len(res.Clusters))
	}
	if res.Clusters[0].Hub != wantHub {
		t.Fatalf("hub = %d, want %d", res.Clusters[0].Hub, wantHub)
	}
	if len(res.Clusters[0].Peers) != len(candidates) {
		t.Fatalf("cluster holds %d of %d peers", len(res.Clusters[0].Peers), len(candidates))
	}
}

func TestSizeDistributionAndFractions(t *testing.T) {
	cs := []Cluster{
		{Peers: make([]Peer, 30)},
		{Peers: make([]Peer, 10)},
		{Peers: make([]Peer, 25)},
	}
	sizes := SizeDistribution(cs)
	if sizes[0] != 30 || sizes[1] != 25 || sizes[2] != 10 {
		t.Fatalf("sizes = %v", sizes)
	}
	frac := FractionInClustersOfAtLeast(cs, 65, 25)
	if frac != 55.0/65.0 {
		t.Fatalf("fraction = %v", frac)
	}
	if FractionInClustersOfAtLeast(nil, 0, 25) != 0 {
		t.Fatal("empty fraction")
	}
}
