// Package benchhot holds the shared bodies of the hot-path smoke
// benchmarks. Two consumers run the exact same code: the per-package
// `go test -bench` benchmarks (external _test files delegating here) and
// cmd/benchscale, which writes the CI-tracked BENCH_scale.json. Sharing
// the bodies is the point — if the workloads could drift apart, the CI
// perf trajectory would silently stop being comparable to local bench
// runs of the same name.
//
// It is a non-test package only because test packages cannot be imported;
// nothing here should run in production code paths.
package benchhot

import (
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/vivaldi"
)

// LineMatrix builds a dense matrix with rtt(i,j) = 10*|i-j| ms — the
// shape every transport benchmark prices against.
func LineMatrix(n int) *latency.Dense {
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 10*float64(j-i))
		}
	}
	return m
}

// SendDeliver is the wire hot path: one one-way message from send through
// delivery. Steady state is 0 allocs/op — the envelope parks by value in
// the runtime slab and delivery rides a typed kernel event.
func SendDeliver(b *testing.B) {
	kernel := sim.New()
	rt := p2p.New(kernel, LineMatrix(4), p2p.Config{RPCTimeout: time.Second}, 1)
	a := rt.AddNode(0)
	rt.AddNode(1).Handle("noop", func(*p2p.Node, p2p.Envelope) {})
	a.Send(1, "noop", nil)
	kernel.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(1, "noop", nil)
		kernel.Run()
	}
}

// ObsSendDeliver is SendDeliver with the full observability layer in the
// way: metrics registry and flight recorder attached to the runtime, plus
// one recorder write and one histogram observe per op — the instrumented
// cost of the same wire hot path. The delta against the send_deliver row
// is the price of observability; steady state must stay 0 allocs/op (the
// claim TestObsZeroAlloc enforces, tracked here as a perf trajectory).
func ObsSendDeliver(b *testing.B) {
	kernel := sim.New()
	rt := p2p.New(kernel, LineMatrix(4), p2p.Config{RPCTimeout: time.Second}, 1)
	reg := obs.NewRegistry(4)
	rt.EnableObs(reg)
	rec := obs.NewRecorder(64)
	rt.AttachRecorder(rec)
	a := rt.AddNode(0)
	rt.AddNode(1).Handle("noop", func(*p2p.Node, p2p.Envelope) {})
	// Warm past one full recorder wrap so ring reuse, not growth, is
	// what gets measured.
	for i := 0; i < 128; i++ {
		a.Send(1, "noop", nil)
		rec.Record(obs.Hop{Scheme: "bench", Type: "noop", To: 1, RTTms: 1})
	}
	kernel.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(1, "noop", nil)
		rec.Record(obs.Hop{Scheme: "bench", Type: "noop", To: 1, RTTms: 1})
		reg.ObserveLookupMs(10)
		kernel.Run()
	}
}

// RequestReply prices the correlated round trip (request, reply, inflight
// bookkeeping, timeout event) — the Ping building block.
func RequestReply(b *testing.B) {
	kernel := sim.New()
	rt := p2p.New(kernel, LineMatrix(4), p2p.Config{RPCTimeout: time.Second}, 1)
	a := rt.AddNode(0)
	rt.AddNode(1).Handle("echo", func(n *p2p.Node, env p2p.Envelope) { n.Reply(env, "echo_ok", nil) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Request(1, "echo", nil, time.Second, func(p2p.Envelope) {}, nil)
		kernel.Run()
	}
}

// MulticastRound is one expanding-ring round from a warm sender index
// over a 1024-member group: a binary-searched RTT prefix (radius 160 ms
// covers the 16 nearest members of the line matrix), not an O(members)
// rescan.
func MulticastRound(b *testing.B) {
	const members = 1024
	kernel := sim.New()
	rt := p2p.New(kernel, LineMatrix(members+1), p2p.Config{RPCTimeout: time.Second}, 1)
	for i := 1; i <= members; i++ {
		rt.AddNode(p2p.NodeID(i))
		rt.JoinGroup("g", p2p.NodeID(i))
		rt.Node(p2p.NodeID(i)).Handle("mc", func(*p2p.Node, p2p.Envelope) {})
	}
	rt.AddNode(0)
	rt.Multicast(0, "g", "mc", nil, 160)
	kernel.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Multicast(0, "g", "mc", nil, 160)
		kernel.Run()
	}
}

// TreeOneWayMs is the raw pricing hot path over a prebuilt topology:
// flat-table loads plus the hub lookup, no shortcut hash.
func TreeOneWayMs(b *testing.B, top *netmodel.Topology) {
	n := top.NumHosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = top.TreeOneWayMs(netmodel.HostID(i%n), netmodel.HostID((i*7+3)%n))
	}
}

// RTTCacheHit prices one pair repeatedly through the pair cache — the
// chord-stabilize access pattern.
func RTTCacheHit(b *testing.B, top *netmodel.Topology) {
	c := netmodel.NewRTTCache(top, 0)
	n := top.NumHosts()
	c.RTTms(0, netmodel.HostID(n/2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.RTTms(0, netmodel.HostID(n/2))
	}
}

// VivaldiGossipRound advances a warm 64-member coordinate overlay through
// one full gossip period: every member issues a gossip, every answer
// applies a spring update, snapshot slots recycle through their typed
// reclaim events. Steady state is 0 allocs/op — the wire Vivaldi claim the
// zero-alloc test enforces, tracked here as a perf trajectory.
func VivaldiGossipRound(b *testing.B) {
	const members = 64
	kernel := sim.New()
	rt := p2p.New(kernel, LineMatrix(members), p2p.Config{RPCTimeout: time.Second}, 1)
	w := vivaldi.NewWire(rt, vivaldi.DefaultWireConfig(), 1)
	for i := 0; i < members; i++ {
		w.Join(p2p.NodeID(i))
	}
	period := vivaldi.DefaultWireConfig().GossipEvery
	period += period / 4
	kernel.RunUntil(2 * time.Minute) // warm slabs, queues and neighbor sets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel.RunUntil(kernel.Now() + period)
	}
}

// KernelHandlerCascade drives a 1000-event cascade through a registered
// typed handler: the kernel's allocation-free scheduling loop.
func KernelHandlerCascade(b *testing.B) {
	s := sim.New()
	cnt := 0
	var h sim.HandlerID
	h = s.RegisterHandler(func(arg uint64) {
		cnt++
		if cnt < 1000 {
			s.AfterHandler(time.Duration(cnt%7)*time.Millisecond, h, arg+1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt = 0
		s.AfterHandler(0, h, 0)
		s.Run()
	}
}
