package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleRun is the kernel's hot loop: schedule a cascade of
// events and drain it. Before the value-heap queue this cost one *event
// allocation plus a container/heap interface boxing per event; now the only
// steady-state allocation is the callback closure.
func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 1000 {
				s.After(time.Duration(n%7)*time.Millisecond, tick)
			}
		}
		s.After(0, tick)
		s.Run()
	}
}

// BenchmarkDeepQueue pushes a wide pending set before draining, the shape a
// large fan-out (multicast round, chord join ramp) produces.
func BenchmarkDeepQueue(b *testing.B) {
	b.ReportAllocs()
	fn := func() {}
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 4096; j++ {
			s.At(time.Duration(j%101)*time.Millisecond, fn)
		}
		s.Run()
	}
}

// BenchmarkHandlerScheduleRun — the typed-payload twin of
// BenchmarkScheduleRun (same cascade, no closure, allocation-free steady
// state) — lives in benchhot_test.go, delegating to internal/benchhot so
// cmd/benchscale measures the same workload.
