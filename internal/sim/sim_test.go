package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired bool
	s.After(time.Millisecond, func() {
		s.After(time.Millisecond, func() { fired = true })
	})
	s.Run()
	if !fired {
		t.Fatal("nested event did not run")
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.After(2*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on past scheduling")
			}
		}()
		s.At(time.Millisecond, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-time.Millisecond, func() {})
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.After(time.Millisecond, func() { count++; s.Stop() })
	s.After(2*time.Millisecond, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("ran %d events after Stop", count)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(5 * time.Millisecond)
	if count != 5 {
		t.Fatalf("ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
	s.RunUntil(20 * time.Millisecond)
	if count != 10 {
		t.Fatalf("ran %d events, want 10", count)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock advanced to %v, want deadline", s.Now())
	}
}

func TestExecutedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	s.Run()
	if s.Executed != 7 {
		t.Fatalf("Executed = %d", s.Executed)
	}
}

func TestStopMidRunThenResume(t *testing.T) {
	s := New()
	var got []int
	s.After(1*time.Millisecond, func() { got = append(got, 1); s.Stop() })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.Run()
	if len(got) != 1 {
		t.Fatalf("first Run executed %v", got)
	}
	// A second Run clears the stop flag and drains the remainder in order,
	// with the clock continuing from where it halted.
	if end := s.Run(); end != 3*time.Millisecond {
		t.Fatalf("resumed Run ended at %v", end)
	}
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("resume order = %v", got)
	}
}

func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	s := New()
	var fired []string
	s.After(5*time.Millisecond, func() { fired = append(fired, "at") })
	s.After(5*time.Millisecond+time.Nanosecond, func() { fired = append(fired, "after") })
	s.RunUntil(5 * time.Millisecond)
	// The deadline is inclusive: an event at exactly the deadline runs,
	// one a nanosecond later does not.
	if len(fired) != 1 || fired[0] != "at" {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestAfterZeroFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		s.After(0, func() { got = append(got, i) })
	}
	// Zero-delay events scheduled from inside an event keep FIFO order
	// too: they run after their siblings at the same timestamp.
	s.After(0, func() { got = append(got, 8) })
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("After(0) FIFO violated: %v", got)
		}
	}
	if len(got) != 9 {
		t.Fatalf("ran %d events", len(got))
	}
}

func TestHandlerEventsRun(t *testing.T) {
	s := New()
	var got []uint64
	h := s.RegisterHandler(func(arg uint64) { got = append(got, arg) })
	s.AtHandler(2*time.Millisecond, h, 7)
	s.AfterHandler(time.Millisecond, h, 3)
	s.Run()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("handler args = %v, want [3 7]", got)
	}
	if s.Executed != 2 {
		t.Fatalf("executed %d events", s.Executed)
	}
}

func TestHandlerAndClosureEventsInterleaveFIFO(t *testing.T) {
	// Typed events obey the same (at, seq) order as closures: at one
	// timestamp, scheduling order is execution order regardless of kind.
	s := New()
	var got []int
	h := s.RegisterHandler(func(arg uint64) { got = append(got, int(arg)) })
	s.AtHandler(time.Millisecond, h, 0)
	s.At(time.Millisecond, func() { got = append(got, 1) })
	s.AtHandler(time.Millisecond, h, 2)
	s.At(time.Millisecond, func() { got = append(got, 3) })
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("interleaved order violated: %v", got)
		}
	}
	if len(got) != 4 {
		t.Fatalf("ran %d events", len(got))
	}
}

func TestHandlerEventsRunUntil(t *testing.T) {
	s := New()
	var got []uint64
	h := s.RegisterHandler(func(arg uint64) { got = append(got, arg) })
	s.AtHandler(time.Millisecond, h, 1)
	s.AtHandler(3*time.Millisecond, h, 2)
	s.RunUntil(2 * time.Millisecond)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v, want [1]", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRegisterHandlerValidation(t *testing.T) {
	s := New()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("RegisterHandler(nil)", func() { s.RegisterHandler(nil) })
	mustPanic("unregistered handler", func() { s.AtHandler(0, 5, 0) })
	h := s.RegisterHandler(func(uint64) {})
	s.now = time.Second
	mustPanic("scheduling in the past", func() { s.AtHandler(0, h, 0) })
	mustPanic("negative delay", func() { s.AfterHandler(-time.Millisecond, h, 0) })
}

// TestHandlerScheduleZeroAlloc is the point of the typed representation:
// steady-state scheduling plus dispatch of a handler event allocates
// nothing (the queue's capacity is retained across drains).
func TestHandlerScheduleZeroAlloc(t *testing.T) {
	s := New()
	h := s.RegisterHandler(func(uint64) {})
	// Warm the queue capacity.
	for i := 0; i < 64; i++ {
		s.AfterHandler(time.Duration(i)*time.Microsecond, h, uint64(i))
	}
	s.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		s.AfterHandler(time.Microsecond, h, 1)
		s.Run()
	}); avg != 0 {
		t.Fatalf("handler schedule+run allocates %v per event, want 0", avg)
	}
}

func TestAtNilPanics(t *testing.T) {
	// nil fn is the typed-event discriminator: letting it into the queue
	// would silently dispatch handler 0 with arg 0 instead of failing at
	// the buggy call site.
	s := New()
	for name, fn := range map[string]func(){
		"At":    func() { s.At(0, nil) },
		"After": func() { s.After(0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s(nil) did not panic", name)
				}
			}()
			fn()
		}()
	}
}
