package sim

import (
	"fmt"
	"testing"
	"time"
)

// The sharded kernel's contract has three legs: windowed execution respects
// the lookahead (no shard ever sees an event another shard is still about
// to create), cross-shard events drain in (virtual time, source shard,
// per-source sequence) order regardless of goroutine scheduling, and the
// executed event set is a pure function of the event set and the window —
// never of the shard count. The tests below pin each leg; the stress test
// exists to run under -race, where the barrier and mailbox handoffs must
// show a clean happens-before story.

// shardedHostModel runs a fixed message-passing model over H logical hosts
// partitioned contiguously across k shards, and returns each host's event
// log. Every send — same-shard or cross — is delayed by at least the window
// plus a per-edge epsilon that makes all arrival times at a host distinct,
// so the log contents and order are independent of heap insertion order and
// therefore must be byte-identical at every k.
func shardedHostModel(t *testing.T, k int) [][]string {
	t.Helper()
	const (
		hosts  = 12
		window = time.Millisecond
		ttl0   = 40
	)
	p := NewSharded(k, window)
	shardOf := func(h int) int { return h * k / hosts }
	logs := make([][]string, hosts)

	var arrive func(h, from, ttl int)
	send := func(src, h, from, ttl int, at time.Duration) {
		dst := shardOf(h)
		fn := func() { arrive(h, from, ttl) }
		if dst == src {
			p.Shard(dst).At(at, fn)
		} else {
			p.Defer(src, dst, at, fn)
		}
	}
	arrive = func(h, from, ttl int) {
		now := p.Shard(shardOf(h)).Now()
		logs[h] = append(logs[h], fmt.Sprintf("%v from %d", now, from))
		if ttl <= 0 {
			return
		}
		next := (h + 1) % hosts
		if ttl%2 == 0 {
			next = (h*5 + 3) % hosts
		}
		// Delay >= window for every pair keeps any partition legal; the
		// sender-dependent epsilon makes arrival times at a host unique.
		d := window + time.Duration(ttl%5)*window/4 + time.Duration(h+1)*time.Nanosecond
		send(shardOf(h), next, h, ttl-1, now+d)
	}
	for h := 0; h < hosts; h++ {
		h := h
		p.Shard(shardOf(h)).At(time.Duration(h+1)*time.Microsecond, func() { arrive(h, h, ttl0) })
	}
	p.Run()
	return logs
}

// TestShardedDeterministicAcrossK pins the headline contract: the same
// model produces identical per-host event logs at k = 1, 2, 3, 4.
func TestShardedDeterministicAcrossK(t *testing.T) {
	base := shardedHostModel(t, 1)
	for _, k := range []int{2, 3, 4} {
		got := shardedHostModel(t, k)
		for h := range base {
			if len(got[h]) != len(base[h]) {
				t.Fatalf("k=%d host %d saw %d events, k=1 saw %d", k, h, len(got[h]), len(base[h]))
			}
			for i := range base[h] {
				if got[h][i] != base[h][i] {
					t.Fatalf("k=%d host %d event %d = %q, k=1 = %q", k, h, i, got[h][i], base[h][i])
				}
			}
		}
	}
}

// TestShardedExecutedInvariantAcrossK checks the aggregate cost metric the
// figures print is k-invariant too.
func TestShardedExecutedInvariantAcrossK(t *testing.T) {
	run := func(k int) uint64 {
		p := NewSharded(k, time.Millisecond)
		for s := 0; s < k; s++ {
			s := s
			var chain func()
			chain = func() {
				if p.Shard(s).Now() < 20*time.Millisecond {
					p.Shard(s).After(100*time.Microsecond, chain)
				}
			}
			p.Shard(s).At(0, chain)
		}
		p.Run()
		return p.Executed()
	}
	// Executed scales with the number of chains (one per shard), so compare
	// per-chain counts.
	if a, b := run(1), run(4); a*4 != b {
		t.Fatalf("per-chain executed differs: k=1 ran %d, k=4 ran %d (want 4x)", a, b)
	}
}

// TestShardedStopAtCutsInVirtualTime checks StopAt stops the run at a
// virtual-time coordinate: events in windows past the cut never execute.
func TestShardedStopAtCutsInVirtualTime(t *testing.T) {
	p := NewSharded(2, time.Millisecond)
	var ran []time.Duration
	for i := 0; i <= 10; i++ {
		at := time.Duration(i) * time.Millisecond
		p.Shard(0).At(at, func() {
			ran = append(ran, at)
			if at == 3*time.Millisecond {
				p.StopAt(at)
			}
		})
	}
	end := p.Run()
	// The final window [3ms, 4ms) runs to its bound; the cut stops windows
	// after it from starting, so the run ends inside that window.
	if end < 3*time.Millisecond || end >= 4*time.Millisecond {
		t.Fatalf("run ended at %v, want inside the StopAt window [3ms, 4ms)", end)
	}
	if len(ran) != 4 || ran[len(ran)-1] != 3*time.Millisecond {
		t.Fatalf("executed %v, want exactly the events at 0..3ms", ran)
	}
	if p.Pending() != 7 {
		t.Fatalf("%d events pending after the cut, want 7", p.Pending())
	}
}

// TestShardedDeferLookaheadPanics checks the window invariant is enforced:
// a cross-shard event scheduled inside the executing window is a model bug
// and must panic rather than silently corrupt determinism.
func TestShardedDeferLookaheadPanics(t *testing.T) {
	p := NewSharded(2, 5*time.Millisecond)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Defer inside the lookahead window did not panic")
		}
	}()
	p.Shard(0).At(0, func() {
		p.Defer(0, 1, 2*time.Millisecond, func() {}) // window end is 5ms
	})
	p.Run()
}

// TestShardedRunUntilClipsLikeSim checks the horizon semantics match the
// serial kernel's: events past the deadline stay queued, clocks land on it.
func TestShardedRunUntilClipsLikeSim(t *testing.T) {
	p := NewSharded(2, time.Millisecond)
	ran := 0
	p.Shard(0).At(2*time.Millisecond, func() { ran++ })
	p.Shard(1).At(7*time.Millisecond, func() { ran++ })
	if end := p.RunUntil(5 * time.Millisecond); end != 5*time.Millisecond {
		t.Fatalf("clock ended at %v, want the 5ms deadline", end)
	}
	if ran != 1 || p.Pending() != 1 {
		t.Fatalf("ran %d pending %d, want 1 and 1", ran, p.Pending())
	}
	if now := p.Shard(1).Now(); now != 5*time.Millisecond {
		t.Fatalf("idle shard clock %v, want the deadline", now)
	}
}

// TestShardedBarrierStress keeps every shard active in every window with
// dense cross-shard traffic, so the worker barrier and the mailbox handoff
// run thousands of times. Its real assertions are made by -race (the CI
// shard smoke runs this package with the detector on); the in-test checks
// just confirm the model actually exercised the concurrent path.
func TestShardedBarrierStress(t *testing.T) {
	const (
		k      = 4
		window = 100 * time.Microsecond
		horiz  = 50 * time.Millisecond
	)
	p := NewSharded(k, window)
	crossed := make([]int, k)
	for s := 0; s < k; s++ {
		s := s
		n := 0
		var chain func()
		chain = func() {
			now := p.Shard(s).Now()
			if now >= horiz {
				return
			}
			n++
			if n%3 == 0 {
				dst := (s + 1 + n%(k-1)) % k
				p.Defer(s, dst, now+window+time.Duration(s)*time.Nanosecond, func() { crossed[dst]++ })
			}
			// Half the window keeps every shard's heap non-empty at every
			// boundary: all k shards are active in every window.
			p.Shard(s).After(window/2, chain)
		}
		p.Shard(s).At(0, chain)
	}
	p.Run()
	for s, c := range crossed {
		if c == 0 {
			t.Fatalf("shard %d received no cross-shard events; stress model broken", s)
		}
	}
	if p.Executed() < uint64(k)*uint64(horiz/(window/2))/2 {
		t.Fatalf("only %d events executed; stress model broken", p.Executed())
	}
}
