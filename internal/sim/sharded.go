package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the sharded kernel: K independent Sim instances (one event
// heap, clock and handler table each) executed in time-windowed lock-step.
//
// The correctness argument is conservative parallel discrete-event
// simulation with a global lookahead: callers partition their model state
// (hosts, in the p2p runtime) across shards and guarantee that any event
// one shard schedules onto another is at least `window` of virtual time in
// the future — in the p2p runtime the window is the topology's minimum
// cross-partition one-way latency, so a message sent at time t inside the
// window [T, T+W) is delivered at t+oneWay >= T+W, never inside the window
// being executed. Shards can therefore run a window concurrently without
// ever seeing an event another shard is still about to create.
//
// Determinism contract (the same one internal/engine makes for -workers):
// results are byte-identical at any shard count. Cross-shard events are
// never applied in goroutine-arrival order; they park in per-(source,
// destination) mailboxes during the window and are drained between windows
// by the coordinator alone, ordered by (virtual time, source shard,
// per-source sequence). Window boundaries themselves are a pure function
// of the event set (next window starts at the globally earliest pending
// event), so the boundary sequence — and with it the executed-event set —
// does not depend on K.
type Sharded struct {
	shards []*Sim
	window time.Duration

	// mail[src*K+dst] is the closure mailbox src fills during a window for
	// dst; only src's worker writes it, only the coordinator (between
	// windows) reads it. Higher layers with typed payloads (the p2p
	// runtime's envelope handoff) keep their own mailboxes and drain them
	// from the onDrain hook under the same ordering rules.
	mail    [][]crossEntry
	onDrain func()

	// windowEnd is the exclusive end of the window being executed, 0 when
	// no window is in flight. Defer validates lookahead against it.
	windowEnd atomic.Int64
	// stopAt is the dynamic deadline: no new window starts after it.
	// Events lower it via StopAt (the wire studies stop when their last
	// operation completes, a virtual time no one knows in advance).
	stopAt atomic.Int64

	// workers are lazily started on the first multi-shard window and joined
	// when the run returns, so an idle sharded kernel holds no goroutines.
	cmd  []chan time.Duration
	done chan shardDone
}

type crossEntry struct {
	at time.Duration
	fn func()
}

type shardDone struct {
	shard int
	panic any
}

// maxDeadline is the Run() deadline: effectively "drain everything".
const maxDeadline = time.Duration(1) << 62

// NewSharded builds a sharded kernel with k shards and the given lookahead
// window. The window must be positive: it is the amount of virtual time a
// cross-shard event must at minimum be scheduled into the future, and the
// caller derives it from its model (netmodel.Topology.MinCrossPoPOneWayMs
// for the p2p runtime). k == 1 is valid and runs the same windowed loop
// with no worker goroutines — the determinism baseline the multi-shard
// counts are compared against.
func NewSharded(k int, window time.Duration) *Sharded {
	if k < 1 {
		panic(fmt.Sprintf("sim: NewSharded with %d shards", k))
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: NewSharded with non-positive window %v", window))
	}
	p := &Sharded{
		shards: make([]*Sim, k),
		window: window,
		mail:   make([][]crossEntry, k*k),
	}
	for i := range p.shards {
		p.shards[i] = New()
	}
	return p
}

// K returns the shard count.
func (p *Sharded) K() int { return len(p.shards) }

// Window returns the lookahead window.
func (p *Sharded) Window() time.Duration { return p.window }

// Shard returns shard i's kernel. Before the run starts the caller may
// schedule setup events on any shard directly; during the run a shard's
// kernel must only be touched by events executing on that shard.
func (p *Sharded) Shard(i int) *Sim { return p.shards[i] }

// OnDrain registers a hook the coordinator calls between windows, after
// the built-in closure mailboxes are drained. The p2p runtime drains its
// envelope mailboxes here. The hook runs with no window in flight, so it
// may schedule onto any shard (at or after the next window's events).
func (p *Sharded) OnDrain(fn func()) { p.onDrain = fn }

// Defer parks a closure event for another shard: it is applied to dst's
// queue at the next window boundary, ordered by (at, src, call order
// within src). at must respect the lookahead window — at or after the end
// of the window currently executing — which holds by construction when at
// is the current event's time plus at least Window.
func (p *Sharded) Defer(src, dst int, at time.Duration, fn func()) {
	if fn == nil {
		panic("sim: Defer(nil)")
	}
	if end := time.Duration(p.windowEnd.Load()); end > 0 && at < end {
		panic(fmt.Sprintf("sim: Defer at %v violates lookahead window ending %v", at, end))
	}
	k := len(p.shards)
	p.mail[src*k+dst] = append(p.mail[src*k+dst], crossEntry{at: at, fn: fn})
}

// WindowEnd returns the exclusive end of the window currently executing,
// or 0 between windows. Layered mailboxes (the p2p runtime) use it for
// the same lookahead validation Defer performs.
func (p *Sharded) WindowEnd() time.Duration {
	return time.Duration(p.windowEnd.Load())
}

// StopAt lowers the run's dynamic deadline to t: windows that would start
// after t do not start, and the run returns once no pending event is at or
// before t. Unlike Sim.Stop, the cut is expressed in virtual time — the
// only coordinate that is identical at every shard count — so the executed
// event set stays byte-deterministic. Events already inside the final
// windows still execute (a window, once begun, always runs to its end);
// callers that must not observe those events gate on their own state, the
// way the sequential-op drivers check their `fired` flags.
func (p *Sharded) StopAt(t time.Duration) {
	for {
		cur := p.stopAt.Load()
		if int64(t) >= cur {
			return
		}
		if p.stopAt.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Run executes windows until every shard's queue drains (or StopAt cuts
// the run). It returns the largest shard clock reached.
func (p *Sharded) Run() time.Duration {
	return p.RunUntil(maxDeadline)
}

// RunUntil executes events with time <= deadline, exactly as Sim.RunUntil
// does on a single kernel: events beyond the deadline stay queued, and
// every shard's clock ends at the deadline (or at the StopAt cut) even if
// its queue drained earlier. The executed set is {events with at <=
// deadline} plus — when StopAt fires — the tail of the final windows; both
// are pure functions of virtual time and the event set, never of K.
func (p *Sharded) RunUntil(deadline time.Duration) time.Duration {
	p.stopAt.Store(int64(maxDeadline))
	defer p.stopWorkers()
	for {
		p.drainAll()
		t0, ok := p.head()
		if !ok || t0 > deadline || int64(t0) > p.stopAt.Load() {
			break
		}
		end := t0 + p.window
		bound := end - 1
		if bound > deadline {
			// The horizon clips what the window executes, never the
			// window's extent: lookahead validation still uses `end`.
			bound = deadline
		}
		p.runWindow(end, bound)
	}
	// Final clock advance, mirroring Sim.RunUntil's idle-drain semantics.
	final := deadline
	if s := time.Duration(p.stopAt.Load()); s < final {
		final = s
	}
	var maxNow time.Duration
	for _, s := range p.shards {
		if s.now < final {
			s.now = final
		}
		if s.now > maxNow {
			maxNow = s.now
		}
	}
	return maxNow
}

// head returns the earliest pending event time across shards.
func (p *Sharded) head() (time.Duration, bool) {
	var t0 time.Duration
	ok := false
	for _, s := range p.shards {
		if h, has := s.Head(); has && (!ok || h < t0) {
			t0, ok = h, true
		}
	}
	return t0, ok
}

// runWindow executes one window: every shard with a pending event before
// `end` runs RunUntil(bound) — concurrently when more than one shard is
// active, inline on the coordinator when one is (the common case during
// driver-sequential phases, where a barrier would buy nothing).
func (p *Sharded) runWindow(end, bound time.Duration) {
	p.windowEnd.Store(int64(end))
	active := 0
	var only *Sim
	for _, s := range p.shards {
		if h, has := s.Head(); has && h < end {
			active++
			only = s
		}
	}
	if active <= 1 {
		if only != nil {
			only.RunUntil(bound)
		}
		p.windowEnd.Store(0)
		return
	}
	p.startWorkers()
	launched := 0
	for i, s := range p.shards {
		if h, has := s.Head(); has && h < end {
			p.cmd[i] <- bound
			launched++
		}
	}
	var firstPanic any
	firstShard := -1
	for n := 0; n < launched; n++ {
		d := <-p.done
		if d.panic != nil && (firstShard < 0 || d.shard < firstShard) {
			firstPanic, firstShard = d.panic, d.shard
		}
	}
	p.windowEnd.Store(0)
	if firstPanic != nil {
		// Re-raise the lowest shard's panic on the coordinator, so a
		// failing event cannot die silently on a worker goroutine.
		panic(firstPanic)
	}
}

// startWorkers launches the per-shard worker goroutines on first use.
func (p *Sharded) startWorkers() {
	if p.cmd != nil {
		return
	}
	p.cmd = make([]chan time.Duration, len(p.shards))
	p.done = make(chan shardDone, len(p.shards))
	for i := range p.shards {
		p.cmd[i] = make(chan time.Duration)
		go func(i int, s *Sim) {
			for bound := range p.cmd[i] {
				func() {
					defer func() {
						p.done <- shardDone{shard: i, panic: recover()}
					}()
					s.RunUntil(bound)
				}()
			}
		}(i, p.shards[i])
	}
}

// stopWorkers joins the worker goroutines (if any were started) so a
// finished run holds no goroutines — engine trials build thousands of
// kernels per process.
func (p *Sharded) stopWorkers() {
	if p.cmd == nil {
		return
	}
	for _, c := range p.cmd {
		close(c)
	}
	p.cmd, p.done = nil, nil
}

// drainAll moves every parked cross-shard event into its destination
// queue: first the built-in closure mailboxes, then the layered hook.
// Runs on the coordinator only, between windows — the single-threaded
// moment that turns goroutine-arrival nondeterminism back into the
// deterministic (at, source shard, per-source seq) order. No sorting is
// needed to get it: each destination's event heap already orders by
// (at, insertion seq), so inserting mailbox entries in (src, call order)
// sequence makes the heap's tie-break exactly the source order.
func (p *Sharded) drainAll() {
	k := len(p.shards)
	for dst := 0; dst < k; dst++ {
		for src := 0; src < k; src++ {
			box := p.mail[src*k+dst]
			for i := range box {
				p.shards[dst].At(box[i].at, box[i].fn)
				box[i].fn = nil // release for GC; capacity is reused
			}
			p.mail[src*k+dst] = box[:0]
		}
	}
	if p.onDrain != nil {
		p.onDrain()
	}
}

// Executed sums executed events across shards — the figure-visible cost
// metric; a pure function of the executed set, so identical at any K.
func (p *Sharded) Executed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.Executed
	}
	return n
}

// Pending sums queued events across shards.
func (p *Sharded) Pending() int {
	n := 0
	for _, s := range p.shards {
		n += s.Pending()
	}
	return n
}

// QueueHighWater sums the per-shard queue high-water marks: an upper bound
// on the global peak (shards rarely peak in the same window), reported as
// the aggregate kernel-health stat where a single kernel would report its
// own mark.
func (p *Sharded) QueueHighWater() int {
	n := 0
	for _, s := range p.shards {
		n += s.QueueHighWater()
	}
	return n
}
