// Package sim is a small discrete-event simulation kernel: a virtual clock
// and an ordered event queue. The measurement tools and the example
// applications run on it so that concurrent activity (probes in flight,
// expanding multicast searches, swarm churn) interleaves deterministically —
// two runs with the same seed schedule the same events in the same order.
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback. Events are stored by value in the queue
// slice: the kernel is the hot path of every message-level experiment
// (each wire message is at least one event), and a pointer-based
// container/heap costs one allocation plus an interface boxing per event.
// The value heap's only steady-state allocation is slice growth.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// before is the queue order: time, then FIFO among simultaneous events.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events by (at, seq), stored by value.
type eventQueue []event

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback for GC
	h = h[:n]
	*q = h
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h[r].before(&h[l]) {
			child = r
		}
		if !h[child].before(&h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// Sim is a discrete-event simulator. It is not safe for concurrent use: all
// scheduling happens from event callbacks or from the driving goroutine.
// Concurrent experiments give every trial its own kernel (see
// internal/engine) instead of sharing one.
type Sim struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	// Executed counts events run, a cheap progress/cost metric.
	Executed uint64
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after delay d.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time of the last executed event.
func (s *Sim) Run() time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue.pop()
		s.now = e.at
		s.Executed++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with time <= deadline; the clock ends at
// deadline even if the queue drained earlier.
func (s *Sim) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > deadline {
			break
		}
		e := s.queue.pop()
		s.now = e.at
		s.Executed++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
