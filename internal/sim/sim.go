// Package sim is a small discrete-event simulation kernel: a virtual clock
// and an ordered event queue. The measurement tools and the example
// applications run on it so that concurrent activity (probes in flight,
// expanding multicast searches, swarm churn) interleaves deterministically —
// two runs with the same seed schedule the same events in the same order.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. It is not safe for concurrent use: all
// scheduling happens from event callbacks or from the driving goroutine.
type Sim struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	// Executed counts events run, a cheap progress/cost metric.
	Executed uint64
}

// New returns an empty simulator at time zero.
func New() *Sim {
	s := &Sim{}
	heap.Init(&s.queue)
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after delay d.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time of the last executed event.
func (s *Sim) Run() time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.Executed++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with time <= deadline; the clock ends at
// deadline even if the queue drained earlier.
func (s *Sim) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > deadline {
			break
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.Executed++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }
