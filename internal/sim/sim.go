// Package sim is a small discrete-event simulation kernel: a virtual clock
// and an ordered event queue. The measurement tools and the example
// applications run on it so that concurrent activity (probes in flight,
// expanding multicast searches, swarm churn) interleaves deterministically —
// two runs with the same seed schedule the same events in the same order.
package sim

import (
	"fmt"
	"time"
)

// event is a scheduled callback. Events are stored by value in the queue
// slice: the kernel is the hot path of every message-level experiment
// (each wire message is at least one event), and a pointer-based
// container/heap costs one allocation plus an interface boxing per event.
// The value heap's only steady-state allocation is slice growth.
//
// An event is either a closure (fn != nil) or a typed-payload event: a
// handler registered once with RegisterHandler plus a by-value argument.
// The typed form is what makes the wire send path allocation-free —
// scheduling it copies the (handler, arg) pair into the queue instead of
// allocating a closure per message (see AtHandler). The pair is packed
// into one word (handler ID in the top 16 bits, arg below) to keep the
// event at 32 bytes: one field more and the compiler stops copying events
// with inline loads, and every heap sift pays a memmove — measured 3.7x
// on the kernel's schedule/run hot loop.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	hw  uint64
}

// before is the queue order: time, then FIFO among simultaneous events.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a binary min-heap of events by (at, seq), stored by value.
type eventQueue []event

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	// Sift up, hole-style: shift parents down into the hole and place the
	// new event once — one copy per level instead of a three-move swap.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the callback for GC
	h = h[:n]
	*q = h
	// Sift down, hole-style: bubble the hole to where `last` belongs,
	// copying each winning child up once.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h[r].before(&h[l]) {
			child = r
		}
		if !h[child].before(&last) {
			break
		}
		h[i] = h[child]
		i = child
	}
	if n > 0 {
		h[i] = last
	}
	return top
}

// Sim is a discrete-event simulator. It is not safe for concurrent use: all
// scheduling happens from event callbacks or from the driving goroutine.
// Concurrent experiments give every trial its own kernel (see
// internal/engine) instead of sharing one.
type Sim struct {
	now      time.Duration
	seq      uint64
	queue    eventQueue
	queueHW  int
	stopped  bool
	handlers []func(arg uint64)
	// Executed counts events run, a cheap progress/cost metric.
	Executed uint64
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model. So does a nil fn —
// a nil closure would otherwise masquerade as a typed event (fn == nil is
// the discriminator) and silently dispatch handler 0 with arg 0.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: At(nil)")
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
	if len(s.queue) > s.queueHW {
		s.queueHW = len(s.queue)
	}
}

// After schedules fn after delay d.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// MaxHandlerArg is the largest argument a typed event can carry: the
// handler ID shares the event's payload word (top 16 bits), so arg is
// limited to 48 bits. Args are indexes into handler-owned state in every
// intended use, nowhere near the limit.
const MaxHandlerArg = 1<<48 - 1

// maxHandlers mirrors the packing: handler IDs occupy the top 16 bits.
const maxHandlers = 1 << 16

// HandlerID names a callback registered with RegisterHandler. The zero
// value is a valid ID (the first registered handler); only events
// scheduled through AtHandler/AfterHandler carry one.
type HandlerID int32

// RegisterHandler registers a typed-event handler and returns its ID.
// Registration is meant to happen once per subsystem at construction time
// (a runtime's deliver routine, a protocol's tick), after which AtHandler
// schedules invocations without allocating: the (HandlerID, arg) pair is
// stored by value in the event queue, and arg is typically an index into
// state the handler owns. Handlers cannot be unregistered — the kernel
// lives exactly as long as the experiment that built it.
func (s *Sim) RegisterHandler(fn func(arg uint64)) HandlerID {
	if fn == nil {
		panic("sim: RegisterHandler(nil)")
	}
	if len(s.handlers) >= maxHandlers {
		panic("sim: too many registered handlers")
	}
	s.handlers = append(s.handlers, fn)
	return HandlerID(len(s.handlers) - 1)
}

// AtHandler schedules handler h with arg at absolute virtual time t. It is
// the allocation-free twin of At: same (at, seq) ordering — a typed event
// and a closure scheduled at the same instant run in scheduling order —
// same past-scheduling panic, no per-event allocation beyond amortised
// queue growth. arg must not exceed MaxHandlerArg.
func (s *Sim) AtHandler(t time.Duration, h HandlerID, arg uint64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if int(h) < 0 || int(h) >= len(s.handlers) {
		panic(fmt.Sprintf("sim: unregistered handler %d", h))
	}
	if arg > MaxHandlerArg {
		panic(fmt.Sprintf("sim: handler arg %d exceeds %d", arg, uint64(MaxHandlerArg)))
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, hw: uint64(h)<<48 | arg})
	if len(s.queue) > s.queueHW {
		s.queueHW = len(s.queue)
	}
}

// AfterHandler schedules handler h with arg after delay d.
func (s *Sim) AfterHandler(d time.Duration, h HandlerID, arg uint64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.AtHandler(s.now+d, h, arg)
}

// Stop makes Run return after the current event completes.
func (s *Sim) Stop() { s.stopped = true }

// step pops the queue head, advances the clock to it and dispatches it —
// the one event-dispatch body Run and RunUntil share. Kept trivially
// inlinable: the closure/typed-event discriminator and the handler unpack
// live here and nowhere else.
func (s *Sim) step() {
	e := s.queue.pop()
	s.now = e.at
	s.Executed++
	if e.fn != nil {
		e.fn()
	} else {
		s.handlers[e.hw>>48](e.hw & MaxHandlerArg)
	}
}

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time of the last executed event.
func (s *Sim) Run() time.Duration {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		s.step()
	}
	return s.now
}

// RunUntil executes events with time <= deadline; the clock ends at
// deadline even if the queue drained earlier.
func (s *Sim) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		if s.queue[0].at > deadline {
			break
		}
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Head returns the virtual time of the earliest pending event, or ok=false
// when the queue is empty. The sharded coordinator reads it between windows
// to pick the next window start; single-kernel callers never need it.
func (s *Sim) Head() (time.Duration, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// QueueHighWater returns the largest number of events that have ever been
// queued at once — the kernel-side health stat the observability sampler
// reads alongside Pending. Tracking it is one compare per push; the event
// struct itself is untouched.
func (s *Sim) QueueHighWater() int { return s.queueHW }
