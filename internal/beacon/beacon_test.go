package beacon

import (
	"testing"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
)

func TestInfrastructure(t *testing.T) {
	m := testmat.Euclidean(200, 1)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(200, 20, 2)
	inf := New(net, members, DefaultConfig(), 3)
	if len(inf.Beacons()) != DefaultConfig().NumBeacons {
		t.Fatalf("beacons = %d", len(inf.Beacons()))
	}
	// Standing measurements exist for all members.
	for i := range inf.beacons {
		if len(inf.lat[i]) != len(members)-1 {
			t.Fatalf("beacon %d measured %d members", i, len(inf.lat[i]))
		}
	}
	if net.MaintProbes() == 0 {
		t.Fatal("no maintenance probes recorded")
	}
}

func TestGuytonSchwartzEuclidean(t *testing.T) {
	const n = 300
	m := testmat.Euclidean(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 30, 5)
	inf := New(net, members, DefaultConfig(), 9)
	f := &GuytonSchwartz{Inf: inf}

	good := 0
	for _, tgt := range targets {
		res := f.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.LatencyMs <= 3*oracle.LatencyMs+2 {
			good++
		}
		wantProbes := int64(DefaultConfig().NumBeacons + 1)
		if res.Probes != wantProbes {
			t.Fatalf("probes = %d, want %d", res.Probes, wantProbes)
		}
	}
	if good < len(targets)/2 {
		t.Fatalf("only %d/%d triangulations near-optimal", good, len(targets))
	}
}

func TestBeaconingEuclidean(t *testing.T) {
	const n = 300
	m := testmat.Euclidean(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 30, 5)
	inf := New(net, members, DefaultConfig(), 9)
	f := &Beaconing{Inf: inf}

	good := 0
	for _, tgt := range targets {
		res := f.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.LatencyMs <= 3*oracle.LatencyMs+2 {
			good++
		}
		if res.Probes <= int64(DefaultConfig().NumBeacons) {
			t.Fatalf("probes = %d, expected beacon probes plus candidates", res.Probes)
		}
	}
	if good < len(targets)/2 {
		t.Fatalf("only %d/%d beaconing queries near-optimal", good, len(targets))
	}
}

func TestClusteringMakesPeersIndistinguishable(t *testing.T) {
	// Under the clustering condition all cluster peers have nearly equal
	// latencies to every beacon. With realistic measurement jitter those
	// sub-millisecond differences are unreadable, so neither scheme should
	// reliably find the same-EN partner. (Noiseless, the simulator would
	// let triangulation exploit infinite precision — exactly the
	// reliability the paper's clustering condition rules out.)
	m, gt := testmat.Clustered(100, 1000, 11)
	net := overlay.NewNetwork(m)
	net.SetNoise(0.05, 0.5, 77)
	members, targets := overlay.Split(m.N(), 80, 3)
	inf := New(net, members, DefaultConfig(), 5)
	// The two schemes share the network's single noise stream, so they
	// must run in a fixed order: ranging over a map here made the draw
	// sequence — and with it the exact rate — depend on Go's randomised
	// map iteration, failing one order in two.
	finders := []struct {
		name string
		f    overlay.Finder
	}{
		{"guyton-schwartz", &GuytonSchwartz{Inf: inf}},
		{"beaconing", &Beaconing{Inf: inf}},
	}
	for _, fd := range finders {
		name, f := fd.name, fd.f
		exact := 0
		for _, tgt := range targets {
			res := f.FindNearest(tgt)
			if res.Peer >= 0 && gt.SameEN(res.Peer, tgt) {
				exact++
			}
		}
		if frac := float64(exact) / float64(len(targets)); frac > 0.45 {
			t.Fatalf("%s exact rate %v under clustering; expected failure", name, frac)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.NumBeacons = 0
	New(overlay.NewNetwork(testmat.Euclidean(10, 1)), []int{0, 1}, cfg, 1)
}
