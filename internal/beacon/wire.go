// Wire deployment of the beacon schemes: the same beacon infrastructure as
// the static finders — servers holding standing latency rows to every
// member — but the querier's measurements are real pings over the runtime
// and the servers' answers are RPCs that can be lost, delayed, or time out
// when a beacon churns away. The estimation math stays on the servers
// (gsBest, bandMembers — the same helpers the static finders call), so at
// 0% loss the wire query probes the identical candidate list and returns
// the identical peer; under faults the cost of centralisation becomes
// visible: a dead beacon takes its whole latency row out of the estimate.

package beacon

import (
	"math"
	"sort"
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the beacon wire protocols.
const (
	// MsgGSBest carries the querier's measured beacon latencies to the
	// estimation server (beacon 0), which owns every beacon's standing row
	// and answers with the least-Hotz-estimate member (gsBestMsg/gsBestOK).
	MsgGSBest   = "b_gsbest"
	MsgGSBestOK = "b_gsbest_ok"
	// MsgBand asks one beacon for the members inside the tolerance band
	// around the querier's measured latency (bandMsg/bandOK).
	MsgBand   = "b_band"
	MsgBandOK = "b_band_ok"
	// MsgEst asks one beacon for its standing latency to each listed
	// candidate, the inputs of the triangulation bound (estMsg/estOK).
	MsgEst   = "b_est"
	MsgEstOK = "b_est_ok"
)

type gsBestMsg struct{ ToBeacon []float64 }
type gsBestOK struct{ Best int }
type bandMsg struct{ ToBeacon float64 }
type bandOK struct{ IDs []int }
type estMsg struct{ IDs []int }
type estOK struct{ Lats []float64 } // aligned with estMsg.IDs; NaN = unknown

func init() {
	p2p.RegisterPayload(MsgGSBest, gsBestMsg{})
	p2p.RegisterPayload(MsgGSBestOK, gsBestOK{})
	p2p.RegisterPayload(MsgBand, bandMsg{})
	p2p.RegisterPayload(MsgBandOK, bandOK{})
	p2p.RegisterPayload(MsgEst, estMsg{})
	p2p.RegisterPayload(MsgEstOK, estOK{})
}

// Wire is a deployed message-level beacon service. Member indices are
// runtime NodeIDs (the infrastructure is built over the runtime's latency
// matrix). The Wire owns its Infrastructure instance: handlers installed on
// beacon nodes serve from its rows, the degenerate-fallback draw consumes
// its stream — build it with the same seed as a static leg's and the two
// stay in lock-step.
type Wire struct {
	inf *Infrastructure
	rt  p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy (pings stay single-shot, as in the
	// other wire schemes).
	Retry p2p.Policy
	// beaconIdx maps a beacon node to its index in inf.beacons.
	beaconIdx map[p2p.NodeID]int
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, inf *Infrastructure) *Wire {
	w := &Wire{inf: inf, rt: rt, beaconIdx: make(map[p2p.NodeID]int, len(inf.beacons))}
	for i, b := range inf.beacons {
		w.beaconIdx[p2p.NodeID(b)] = i
	}
	return w
}

// Join brings a member up on the runtime; beacon members get the server
// handlers installed.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	bi, isBeacon := w.beaconIdx[id]
	if !isBeacon {
		return
	}
	n.Handle(MsgBand, func(n *p2p.Node, env p2p.Envelope) {
		bm := env.Payload.(bandMsg)
		n.Reply(env, MsgBandOK, bandOK{IDs: w.inf.bandMembers(bi, bm.ToBeacon, int(env.From))})
	})
	n.Handle(MsgEst, func(n *p2p.Node, env p2p.Envelope) {
		em := env.Payload.(estMsg)
		lats := make([]float64, len(em.IDs))
		for i, id := range em.IDs {
			if l, ok := w.inf.lat[bi][id]; ok {
				lats[i] = l
			} else {
				lats[i] = math.NaN()
			}
		}
		n.Reply(env, MsgEstOK, estOK{Lats: lats})
	})
	if bi == 0 {
		n.Handle(MsgGSBest, func(n *p2p.Node, env p2p.Envelope) {
			gm := env.Payload.(gsBestMsg)
			n.Reply(env, MsgGSBestOK, gsBestOK{Best: w.inf.gsBest(gm.ToBeacon, int(env.From))})
		})
	}
}

// pingBeacons measures the querier's latency to every beacon sequentially
// (NaN marks a beacon that never answered), then hands the vector on.
func (w *Wire) pingBeacons(n *p2p.Node, res *p2p.FindResult, done func(toBeacon []float64)) {
	toBeacon := make([]float64, len(w.inf.beacons))
	var step func(i int)
	step = func(i int) {
		if i >= len(toBeacon) {
			done(toBeacon)
			return
		}
		res.Probes++
		n.Ping(p2p.NodeID(w.inf.beacons[i]), w.Timeout, false, func(rtt float64, ok bool) {
			if !n.Alive() {
				return
			}
			if !ok {
				res.DeadProbes++
				toBeacon[i] = math.NaN()
			} else {
				toBeacon[i] = rtt
			}
			step(i + 1)
		})
	}
	step(0)
}

// FindNearestGS runs the Guyton–Schwartz query over the wire: ping every
// beacon, send the vector to the estimation server, verify its answer with
// one probe. done fires exactly once unless the client dies mid-query.
func (w *Wire) FindNearestGS(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	w.pingBeacons(n, &res, func(toBeacon []float64) {
		res.RPCs++
		n.RequestPolicy(p2p.NodeID(w.inf.beacons[0]), MsgGSBest, gsBestMsg{ToBeacon: toBeacon}, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				best := env.Payload.(gsBestOK).Best
				if best < 0 {
					done(res)
					return
				}
				res.Probes++
				n.Ping(p2p.NodeID(best), w.Timeout, false, func(rtt float64, ok bool) {
					if !n.Alive() {
						return
					}
					if !ok {
						res.DeadProbes++
					} else {
						res.Peer, res.RTTms, res.Found = p2p.NodeID(best), rtt, true
					}
					done(res)
				})
			},
			func() {
				res.RPCFails++
				done(res)
			})
	})
}

// FindNearestBeaconing runs the ICNP 2001 query over the wire: ping every
// beacon, collect each live beacon's band (votes), fetch the triangulation
// inputs for the union, rank exactly as the static finder does, and sweep-
// ping the top candidates. done fires exactly once unless the client dies
// mid-query.
func (w *Wire) FindNearestBeaconing(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	w.pingBeacons(n, &res, func(toBeacon []float64) {
		votes := make(map[int]int)
		var bands func(i int)
		bands = func(i int) {
			if i >= len(w.inf.beacons) {
				w.estimate(n, &res, toBeacon, votes, done)
				return
			}
			if math.IsNaN(toBeacon[i]) {
				bands(i + 1) // beacon unreachable: no band, no est row either
				return
			}
			res.RPCs++
			n.RequestPolicy(p2p.NodeID(w.inf.beacons[i]), MsgBand, bandMsg{ToBeacon: toBeacon[i]}, w.Timeout, w.Retry,
				func(env p2p.Envelope) {
					for _, m := range env.Payload.(bandOK).IDs {
						votes[m]++
					}
					bands(i + 1)
				},
				func() {
					res.RPCFails++
					bands(i + 1)
				})
		}
		bands(0)
	})
}

// estimate is the second phase of the Beaconing query: fetch each beacon's
// standing latency to the vote union, compute the triangulation lower
// bounds, rank, and probe.
func (w *Wire) estimate(n *p2p.Node, res *p2p.FindResult, toBeacon []float64, votes map[int]int, done func(p2p.FindResult)) {
	if len(votes) == 0 {
		// Degenerate: fall back to probing a random member — the same draw
		// the static finder makes from the shared structure stream.
		m := w.inf.members[w.inf.src.Intn(len(w.inf.members))]
		res.Probes++
		n.Ping(p2p.NodeID(m), w.Timeout, false, func(rtt float64, ok bool) {
			if !n.Alive() {
				return
			}
			if !ok {
				res.DeadProbes++
			} else {
				res.Peer, res.RTTms, res.Found = p2p.NodeID(m), rtt, true
			}
			done(*res)
		})
		return
	}
	cands := make([]int, 0, len(votes))
	for m := range votes {
		cands = append(cands, m)
	}
	sort.Ints(cands)
	// lats[i][j] is beacon i's standing latency to cands[j] (NaN unknown,
	// whole row NaN when the beacon was unreachable).
	lats := make([][]float64, len(w.inf.beacons))
	var fetch func(i int)
	fetch = func(i int) {
		if i >= len(w.inf.beacons) {
			lower := func(m int) float64 {
				var lo float64
				j := sort.SearchInts(cands, m)
				for i := range lats {
					if lats[i] == nil || math.IsNaN(lats[i][j]) {
						continue
					}
					if d := math.Abs(lats[i][j] - toBeacon[i]); d > lo {
						lo = d
					}
				}
				return lo
			}
			ranked := rankBand(votes, lower, w.inf.cfg.MaxCandidates)
			ids := make([]p2p.NodeID, len(ranked))
			for i, m := range ranked {
				ids[i] = p2p.NodeID(m)
			}
			n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
				res.Probes += s.Probes
				res.DeadProbes += s.Dead
				if s.Found {
					res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
				}
				done(*res)
			})
			return
		}
		if math.IsNaN(toBeacon[i]) {
			fetch(i + 1)
			return
		}
		res.RPCs++
		n.RequestPolicy(p2p.NodeID(w.inf.beacons[i]), MsgEst, estMsg{IDs: cands}, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				lats[i] = env.Payload.(estOK).Lats
				fetch(i + 1)
			},
			func() {
				res.RPCFails++
				fetch(i + 1)
			})
	}
	fetch(0)
}
