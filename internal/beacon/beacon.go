// Package beacon implements the two centralised beacon-server approaches
// of the paper's Section 6: Guyton–Schwartz triangulation (SIGCOMM 1995),
// which estimates client-server distances from beacon measurements with
// Hotz's metric, and Beaconing (Kommareddy, Shankar, Bhattacharjee — ICNP
// 2001), where each beacon returns the set of peers at about the same
// latency from itself as the querier and the querier probes that set.
//
// Both degrade identically under the clustering condition: most
// end-networks host no beacon, so all peers of a cluster sit at nearly the
// same latency from every beacon and become indistinguishable.
package beacon

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// Config parameterises the beacon infrastructure.
type Config struct {
	// NumBeacons is the number of beacon servers (drawn from members).
	NumBeacons int
	// Tolerance is Beaconing's "about the same latency" band: a member
	// qualifies if its beacon latency is within (1±Tolerance)× the
	// querier's.
	Tolerance float64
	// MaxCandidates caps how many returned peers the querier probes
	// (closest-estimate first); 0 means no cap.
	MaxCandidates int
}

// DefaultConfig uses 12 beacons and a ±15% band.
func DefaultConfig() Config {
	return Config{NumBeacons: 12, Tolerance: 0.15, MaxCandidates: 64}
}

// Infrastructure holds the beacon deployment: each beacon has measured its
// latency to every member (maintenance, as these are standing measurements
// the servers keep fresh).
type Infrastructure struct {
	cfg     Config
	net     *overlay.Network
	members []int
	beacons []int
	// lat[b][m] is the latency from beacon index b to member m.
	lat []map[int]float64
	src *rng.Source
}

// New deploys beacons on a random subset of members and takes the standing
// measurements.
func New(net *overlay.Network, members []int, cfg Config, seed int64) *Infrastructure {
	if cfg.NumBeacons <= 0 || cfg.NumBeacons > len(members) {
		panic(fmt.Sprintf("beacon: invalid beacon count %d for %d members", cfg.NumBeacons, len(members)))
	}
	src := rng.New(seed)
	perm := src.Perm(len(members))
	inf := &Infrastructure{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		src:     src,
	}
	for i := 0; i < cfg.NumBeacons; i++ {
		inf.beacons = append(inf.beacons, members[perm[i]])
	}
	for _, b := range inf.beacons {
		row := make(map[int]float64, len(members))
		for _, m := range members {
			if m != b {
				row[m] = net.MaintProbe(b, m)
			}
		}
		inf.lat = append(inf.lat, row)
	}
	return inf
}

// Beacons returns the beacon hosts.
func (inf *Infrastructure) Beacons() []int { return inf.beacons }

// GuytonSchwartz is the triangulation finder: the target measures its
// latency to every beacon (query probes); each member's distance is then
// estimated with Hotz's metric — the midpoint of the triangulation bounds
// max_b |d(b,m) − d(b,t)| ≤ d(m,t) ≤ min_b (d(b,m) + d(b,t)) — and the
// member with the least estimate is returned (verified with one probe).
type GuytonSchwartz struct {
	Inf *Infrastructure
}

// FindNearest implements overlay.Finder.
func (g *GuytonSchwartz) FindNearest(target int) overlay.Result {
	inf := g.Inf
	var probes int64
	toBeacon := make([]float64, len(inf.beacons))
	for i, b := range inf.beacons {
		toBeacon[i] = inf.net.Probe(target, b)
		probes++
	}
	best := inf.gsBest(toBeacon, target)
	lat := inf.net.Probe(target, best)
	probes++
	return overlay.Result{Peer: best, LatencyMs: lat, Probes: probes, Hops: 0}
}

// gsBest is the Guyton–Schwartz estimation step: given the querier's
// measured beacon latencies, return the member with the least Hotz midpoint
// estimate (the querier itself excluded). NaN entries mark beacons the
// querier could not measure (a wire probe lost) and contribute no bound.
// Shared by the static finder and the wire deployment's estimation server.
func (inf *Infrastructure) gsBest(toBeacon []float64, exclude int) int {
	best, bestEst := -1, math.Inf(1)
	for _, m := range inf.members {
		if m == exclude {
			continue
		}
		lower, upper := 0.0, math.Inf(1)
		for i := range inf.beacons {
			if math.IsNaN(toBeacon[i]) {
				continue
			}
			bm, ok := inf.lat[i][m]
			if !ok { // m is this beacon
				bm = 0
			}
			if l := math.Abs(bm - toBeacon[i]); l > lower {
				lower = l
			}
			if u := bm + toBeacon[i]; u < upper {
				upper = u
			}
		}
		est := (lower + upper) / 2
		if est < bestEst {
			best, bestEst = m, est
		}
	}
	return best
}

// Beaconing is the ICNP 2001 finder: each beacon returns the members whose
// latency to it falls within the tolerance band around the target's; the
// target probes the intersection (falling back to the union when the
// intersection is empty), closest Hotz estimate first, and returns the best
// probed peer.
type Beaconing struct {
	Inf *Infrastructure
}

// FindNearest implements overlay.Finder.
func (b *Beaconing) FindNearest(target int) overlay.Result {
	inf := b.Inf
	var probes int64
	toBeacon := make([]float64, len(inf.beacons))
	for i, bc := range inf.beacons {
		toBeacon[i] = inf.net.Probe(target, bc)
		probes++
	}
	// Count, per member, how many beacons place it in the band.
	votes := make(map[int]int)
	for i := range inf.beacons {
		for _, m := range inf.bandMembers(i, toBeacon[i], target) {
			votes[m]++
		}
	}
	if len(votes) == 0 {
		// Degenerate: fall back to probing a random member.
		m := inf.members[inf.src.Intn(len(inf.members))]
		l := inf.net.Probe(target, m)
		probes++
		return overlay.Result{Peer: m, LatencyMs: l, Probes: probes, Hops: 0}
	}
	// Prefer members every beacon agrees on; rank by vote count then by
	// the triangulation lower bound.
	lower := func(m int) float64 {
		var lo float64
		for i := range inf.beacons {
			if l, ok := inf.lat[i][m]; ok {
				if d := math.Abs(l - toBeacon[i]); d > lo {
					lo = d
				}
			}
		}
		return lo
	}
	ranked := rankBand(votes, lower, inf.cfg.MaxCandidates)
	best, bestLat := -1, math.Inf(1)
	for _, m := range ranked {
		l := inf.net.Probe(target, m)
		probes++
		if l < bestLat {
			best, bestLat = m, l
		}
	}
	return overlay.Result{Peer: best, LatencyMs: bestLat, Probes: probes, Hops: 0}
}

// bandMembers returns the members whose standing latency to beacon index b
// falls inside the tolerance band around the querier's own measurement
// (the querier itself excluded) — one beacon's answer in the Beaconing
// scheme. Shared by the static finder and the wire deployment's per-beacon
// band handler.
func (inf *Infrastructure) bandMembers(b int, toBeacon float64, exclude int) []int {
	lo := toBeacon * (1 - inf.cfg.Tolerance)
	hi := toBeacon * (1 + inf.cfg.Tolerance)
	var out []int
	for _, m := range inf.members {
		if m == exclude {
			continue
		}
		if l, ok := inf.lat[b][m]; ok && l >= lo && l <= hi {
			out = append(out, m)
		}
	}
	return out
}

// rankBand orders Beaconing's band candidates: most beacon votes first,
// then smallest triangulation lower bound, then id, capped at max (≤ 0
// means no cap). Shared by the static finder and the wire deployment so
// both legs probe the identical candidate list.
func rankBand(votes map[int]int, lower func(m int) float64, max int) []int {
	type cand struct {
		id    int
		votes int
		est   float64
	}
	cands := make([]cand, 0, len(votes))
	for m, v := range votes {
		cands = append(cands, cand{id: m, votes: v, est: lower(m)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		if cands[i].est != cands[j].est {
			return cands[i].est < cands[j].est
		}
		return cands[i].id < cands[j].id
	})
	if max <= 0 || max > len(cands) {
		max = len(cands)
	}
	out := make([]int, max)
	for i := 0; i < max; i++ {
		out[i] = cands[i].id
	}
	return out
}
