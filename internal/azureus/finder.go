// The tracker-sample baseline: what a BitTorrent-style client can actually
// do with the peer lists its tracker hands out. The tracker knows nothing
// about the network, so each announce returns a uniform sample of the
// swarm and the client measures the lot — the paper's Section 3 population
// is exactly this kind of swarm, and random sampling is the baseline every
// structured scheme in the grand table is trying to beat.

package azureus

import (
	"math"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// FinderConfig parameterises the tracker-sample baseline.
type FinderConfig struct {
	// SampleSize is how many peers one tracker announce returns.
	SampleSize int
	// Rounds is how many announces a searching client issues.
	Rounds int
}

// DefaultFinderConfig uses the classic announce size of 30 peers, twice.
func DefaultFinderConfig() FinderConfig {
	return FinderConfig{SampleSize: 30, Rounds: 2}
}

// Finder probes tracker samples: each round draws SampleSize distinct
// members uniformly (the requester excluded) and probes them all; the
// closest responder over all rounds wins. The draw stream lives with the
// tracker, so a Wire built from the same seed serves identical samples.
type Finder struct {
	cfg     FinderConfig
	net     *overlay.Network
	members []int
	src     *rng.Source
}

// NewFinder creates the baseline over a member set.
func NewFinder(net *overlay.Network, members []int, cfg FinderConfig, seed int64) *Finder {
	if cfg.SampleSize <= 0 || cfg.Rounds <= 0 {
		panic("azureus: invalid finder config")
	}
	return &Finder{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		src:     rng.New(seed).Split("azureus"),
	}
}

// sample draws one announce's peer list: SampleSize distinct members,
// exclude left out, by partial Fisher–Yates over the eligible pool.
func (f *Finder) sample(exclude int) []int {
	pool := make([]int, 0, len(f.members))
	for _, m := range f.members {
		if m != exclude {
			pool = append(pool, m)
		}
	}
	k := f.cfg.SampleSize
	if k > len(pool) {
		k = len(pool)
	}
	for i := 0; i < k; i++ {
		j := i + f.src.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

// FindNearest implements overlay.Finder.
func (f *Finder) FindNearest(target int) overlay.Result {
	best, bestLat := -1, math.Inf(1)
	var probes int64
	for r := 0; r < f.cfg.Rounds; r++ {
		for _, m := range f.sample(target) {
			l := f.net.Probe(m, target)
			probes++
			if l < bestLat {
				best, bestLat = m, l
			}
		}
	}
	return overlay.Result{Peer: best, LatencyMs: bestLat, Probes: probes, Hops: f.cfg.Rounds}
}
