// Wire deployment of the tracker-sample baseline: the tracker is a real
// node (the first member) serving announce RPCs, and the client's probing
// of each returned peer list is a ping sweep over the runtime. The tracker
// is the scheme's single point of failure — when it churns away every
// announce times out and the client finds nothing, which is the honest
// version of what the static baseline can never show.

package azureus

import (
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the tracker wire protocol.
const (
	// MsgAnnounce asks the tracker for one peer-list sample
	// (no request payload / announceOK).
	MsgAnnounce   = "az_announce"
	MsgAnnounceOK = "az_announce_ok"
)

type announceOK struct{ IDs []int }

func init() {
	p2p.RegisterPayload(MsgAnnounceOK, announceOK{})
}

// Wire is a deployed message-level tracker service. Member indices are
// runtime NodeIDs. The Wire owns its Finder instance — the sample stream
// lives with the tracker, so a Wire built with the same seed as a static
// leg's Finder serves the identical samples in the identical order.
type Wire struct {
	base *Finder
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy (announces).
	Retry p2p.Policy
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Finder) *Wire {
	return &Wire{base: base, rt: rt}
}

// Tracker returns the tracker's node id (the first member).
func (w *Wire) Tracker() p2p.NodeID { return p2p.NodeID(w.base.members[0]) }

// Join brings a member up on the runtime; the tracker member gets the
// announce handler installed.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	if id != w.Tracker() {
		return
	}
	n.Handle(MsgAnnounce, func(n *p2p.Node, env p2p.Envelope) {
		n.Reply(env, MsgAnnounceOK, announceOK{IDs: w.base.sample(int(env.From))})
	})
}

// FindNearest runs the baseline over the wire from client: announce to the
// tracker, sweep-ping the returned sample, repeat for the configured number
// of rounds. done fires exactly once unless the client dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	var round func(r int)
	round = func(r int) {
		if r >= w.base.cfg.Rounds {
			done(res)
			return
		}
		res.RPCs++
		n.RequestPolicy(w.Tracker(), MsgAnnounce, nil, w.Timeout, w.Retry,
			func(env p2p.Envelope) {
				sample := env.Payload.(announceOK).IDs
				ids := make([]p2p.NodeID, len(sample))
				for i, m := range sample {
					ids[i] = p2p.NodeID(m)
				}
				n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
					res.Probes += s.Probes
					res.DeadProbes += s.Dead
					res.Hops++
					if s.Found && (!res.Found || s.BestRTT < res.RTTms) {
						res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
					}
					round(r + 1)
				})
			},
			func() {
				// The tracker is down: this round finds nobody.
				res.RPCFails++
				round(r + 1)
			})
	}
	round(0)
}
