// Package azureus synthesises the peer population of the paper's Section
// 3.2 study: a list of Azureus client IP addresses (156,658 in the paper,
// collected by Ledlie et al.) drawn mostly from residential broadband hosts
// with a minority of campus/corporate hosts. The real trace is not
// available; the pipeline that consumes the population (internal/cluster)
// is identical to the paper's, so only the population itself is synthetic —
// see the substitution notes in internal/experiments.
package azureus

import (
	"fmt"

	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/rng"
)

// PaperPopulationSize is the number of Azureus IP addresses in the study.
const PaperPopulationSize = 156658

// Population is a set of candidate peer addresses with their hosts.
type Population struct {
	Hosts []netmodel.HostID
}

// Addresses returns the IP addresses of the population, the form the
// original dataset takes.
func (p *Population) Addresses(top *netmodel.Topology) []netmodel.IPv4 {
	out := make([]netmodel.IPv4, len(p.Hosts))
	for i, h := range p.Hosts {
		out[i] = top.Host(h).IP
	}
	return out
}

// Sample draws a population of n peers, homeFrac of them home-broadband
// hosts and the rest corporate/campus hosts (DNS servers are excluded:
// they are infrastructure, not Azureus clients). If the topology holds
// fewer eligible hosts than requested, Sample returns what exists.
func Sample(top *netmodel.Topology, n int, homeFrac float64, seed int64) Population {
	if homeFrac < 0 || homeFrac > 1 {
		panic(fmt.Sprintf("azureus: homeFrac %v out of range", homeFrac))
	}
	var home, corp []netmodel.HostID
	for i := range top.Hosts {
		h := &top.Hosts[i]
		if h.DNS != nil {
			continue
		}
		if top.EN(h.EN).IsHome {
			home = append(home, netmodel.HostID(i))
		} else {
			corp = append(corp, netmodel.HostID(i))
		}
	}
	src := rng.New(seed)
	shuffle(src, home)
	shuffle(src, corp)

	nHome := int(float64(n) * homeFrac)
	if nHome > len(home) {
		nHome = len(home)
	}
	nCorp := n - nHome
	if nCorp > len(corp) {
		nCorp = len(corp)
	}
	out := make([]netmodel.HostID, 0, nHome+nCorp)
	out = append(out, home[:nHome]...)
	out = append(out, corp[:nCorp]...)
	shuffle(src, out)
	return Population{Hosts: out}
}

func shuffle(src *rng.Source, xs []netmodel.HostID) {
	src.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
