package azureus

import (
	"testing"

	"nearestpeer/internal/netmodel"
)

func TestSampleComposition(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 2)
	pop := Sample(top, 1000, 0.7, 5)
	if len(pop.Hosts) == 0 {
		t.Fatal("empty population")
	}
	nHome := 0
	seen := make(map[netmodel.HostID]bool)
	for _, h := range pop.Hosts {
		if seen[h] {
			t.Fatal("duplicate host sampled")
		}
		seen[h] = true
		if top.Host(h).DNS != nil {
			t.Fatal("DNS server sampled as Azureus peer")
		}
		if top.EN(top.Host(h).EN).IsHome {
			nHome++
		}
	}
	frac := float64(nHome) / float64(len(pop.Hosts))
	// Exact fraction only when both pools are large enough; allow slack.
	if len(pop.Hosts) == 1000 && (frac < 0.6 || frac > 0.8) {
		t.Fatalf("home fraction = %v, want ~0.7", frac)
	}
}

func TestSampleDeterministic(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 2)
	a := Sample(top, 500, 0.5, 9)
	b := Sample(top, 500, 0.5, 9)
	if len(a.Hosts) != len(b.Hosts) {
		t.Fatal("sizes differ")
	}
	for i := range a.Hosts {
		if a.Hosts[i] != b.Hosts[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSampleClampsToAvailable(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 2)
	pop := Sample(top, 10_000_000, 0.85, 1)
	if len(pop.Hosts) >= 10_000_000 {
		t.Fatal("sampled more hosts than exist")
	}
	if len(pop.Hosts) == 0 {
		t.Fatal("empty population")
	}
}

func TestAddresses(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 2)
	pop := Sample(top, 100, 0.5, 3)
	addrs := pop.Addresses(top)
	if len(addrs) != len(pop.Hosts) {
		t.Fatal("address count mismatch")
	}
	for i, a := range addrs {
		if id, ok := top.HostByIP(a); !ok || id != pop.Hosts[i] {
			t.Fatal("address does not round-trip")
		}
	}
}

func TestSampleBadFractionPanics(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sample(top, 10, 1.5, 1)
}
