// Wire deployment of the Tapestry nearest-neighbour walk: each member
// serves its own per-level neighbour lists as RPCs, and the searcher's
// probes become real pings memoised client-side, exactly as the static
// walk memoises them. At 0% loss the descent visits the identical contact
// sets and returns the identical peer (the wire owns a same-seed Overlay,
// so the gateway draw comes from the same stream); under faults a dead
// contact contributes no neighbours and the walk narrows around it.

package tapestry

import (
	"math"
	"sort"
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the Tapestry wire protocol.
const (
	// MsgLevels asks a member for its neighbour list at one routing level
	// (levelsMsg/levelsOK).
	MsgLevels   = "tap_levels"
	MsgLevelsOK = "tap_levels_ok"
)

type levelsMsg struct{ Level int }
type levelsOK struct{ IDs []int }

func init() {
	p2p.RegisterPayload(MsgLevels, levelsMsg{})
	p2p.RegisterPayload(MsgLevelsOK, levelsOK{})
}

// Wire is a deployed message-level Tapestry service. Member indices are
// runtime NodeIDs (the overlay is built over the runtime's latency
// matrix). The Wire owns its Overlay instance; build it with the same seed
// as a static leg's and the two walk identical descents at 0% loss.
type Wire struct {
	base *Overlay
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy.
	Retry p2p.Policy
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Overlay) *Wire {
	return &Wire{base: base, rt: rt}
}

// Join brings a member up on the runtime and installs its level handler.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	n.Handle(MsgLevels, func(n *p2p.Node, env p2p.Envelope) {
		lm := env.Payload.(levelsMsg)
		var ids []int
		if lm.Level >= 0 && lm.Level < len(w.base.nodes[int(n.ID)].levels) {
			ids = w.base.nodes[int(n.ID)].levels[lm.Level]
		}
		n.Reply(env, MsgLevelsOK, levelsOK{IDs: ids})
	})
}

// wireQuery carries one in-flight query's client-side state.
type wireQuery struct {
	w      *Wire
	n      *p2p.Node
	res    p2p.FindResult
	probed map[int]float64
	done   func(p2p.FindResult)
}

// probe memoises a wire ping the way the static walk memoises a Probe call
// (the searcher itself is never pinged and scores +Inf; a dead candidate
// scores +Inf too, so it can never be returned).
func (q *wireQuery) probe(id int, then func(float64)) {
	if l, ok := q.probed[id]; ok {
		then(l)
		return
	}
	if id == int(q.n.ID) {
		q.probed[id] = math.Inf(1)
		then(math.Inf(1))
		return
	}
	q.res.Probes++
	q.n.Ping(p2p.NodeID(id), q.w.Timeout, false, func(rtt float64, ok bool) {
		if !q.n.Alive() {
			return
		}
		if !ok {
			q.res.DeadProbes++
			rtt = math.Inf(1)
		}
		q.probed[id] = rtt
		then(rtt)
	})
}

// probeAll probes a sorted candidate list sequentially through the memo.
func (q *wireQuery) probeAll(ids []int, then func()) {
	var step func(i int)
	step = func(i int) {
		if i >= len(ids) {
			then()
			return
		}
		q.probe(ids[i], func(float64) { step(i + 1) })
	}
	step(0)
}

// fetchLevels collects the union of the contacts' neighbour lists at one
// level, one RPC per contact (a dead contact contributes nothing).
func (q *wireQuery) fetchLevels(contacts []int, level int, then func(union []int)) {
	seen := map[int]bool{}
	var union []int
	var step func(i int)
	step = func(i int) {
		if i >= len(contacts) {
			then(union)
			return
		}
		q.res.RPCs++
		q.n.RequestPolicy(p2p.NodeID(contacts[i]), MsgLevels, levelsMsg{Level: level}, q.w.Timeout, q.w.Retry,
			func(env p2p.Envelope) {
				for _, nb := range env.Payload.(levelsOK).IDs {
					if !seen[nb] {
						seen[nb] = true
						union = append(union, nb)
					}
				}
				step(i + 1)
			},
			func() {
				q.res.RPCFails++
				step(i + 1)
			})
	}
	step(0)
}

// FindNearest runs the Tapestry walk over the wire from client. done fires
// exactly once unless the client dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	q := &wireQuery{
		w:      w,
		n:      w.rt.AddNode(client),
		res:    p2p.FindResult{Peer: p2p.NoNode},
		probed: map[int]float64{},
		done:   done,
	}
	gateway := w.base.members[w.base.src.Intn(len(w.base.members))]
	q.probe(gateway, func(float64) {
		q.descend([]int{gateway}, w.base.cfg.Digits)
	})
}

// descend runs one level of the walk, keeping the closest few probed
// candidates as the next contact set — the static FindNearest loop with
// probes and neighbour reads on the wire.
func (q *wireQuery) descend(contacts []int, lvl int) {
	if lvl < 0 || q.res.Hops >= q.w.base.cfg.MaxHops {
		q.refine(contacts)
		return
	}
	q.fetchLevels(contacts, lvl, func(cands []int) {
		if len(cands) == 0 {
			q.descend(contacts, lvl-1) // sparse high level
			return
		}
		sort.Ints(cands)
		q.probeAll(cands, func() {
			// The same input order and comparator as the static walk's
			// (unstable) sort, so ties keep the identical contact set.
			type scored struct {
				id int
				l  float64
			}
			scoredCands := make([]scored, 0, len(cands))
			for _, c := range cands {
				scoredCands = append(scoredCands, scored{id: c, l: q.probed[c]})
			}
			sort.Slice(scoredCands, func(i, j int) bool { return scoredCands[i].l < scoredCands[j].l })
			k := 3
			if k > len(scoredCands) {
				k = len(scoredCands)
			}
			next := make([]int, k)
			for i := 0; i < k; i++ {
				next[i] = scoredCands[i].id
			}
			q.res.Hops++
			q.descend(next, lvl-1)
		})
	})
}

// refine is the level-0 expansion loop of the static walk.
func (q *wireQuery) refine(contacts []int) {
	if q.res.Hops >= q.w.base.cfg.MaxHops {
		q.finish()
		return
	}
	improvedFrom := bestOf(q.probed)
	q.fetchLevels(contacts, 0, func(union []int) {
		var cands []int
		for _, nb := range union {
			if _, done := q.probed[nb]; !done {
				cands = append(cands, nb)
			}
		}
		if len(cands) == 0 {
			q.finish()
			return
		}
		sort.Ints(cands)
		q.probeAll(cands, func() {
			q.res.Hops++
			nowBest := bestOf(q.probed)
			// Same comparison as the static walk, missing-key zeros and all:
			// with nothing responsive probed yet, both sides stop here.
			if q.probed[nowBest] >= q.probed[improvedFrom] {
				q.finish()
				return
			}
			q.refine([]int{nowBest})
		})
	})
}

// finish reports the closest probed candidate.
func (q *wireQuery) finish() {
	best := bestOf(q.probed)
	if best >= 0 && !math.IsInf(q.probed[best], 1) {
		q.res.Peer, q.res.RTTms, q.res.Found = p2p.NodeID(best), q.probed[best], true
	}
	q.done(q.res)
}
