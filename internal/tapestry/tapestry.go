// Package tapestry implements Tapestry-style identifier-based sampling for
// nearest-neighbour discovery (Hildrum, Kubiatowicz, Rao, Zhao — SPAA
// 2002): nodes carry random hex identifiers and keep, per identifier-prefix
// level, the closest (by latency) nodes among those sharing that prefix.
// Levels are built iteratively: level-i neighbours are found among the
// level-(i+1) neighbours of level-(i+1) contacts — correct in
// growth-restricted metrics, and exactly the construction that loses its
// guarantee under the paper's clustering condition.
package tapestry

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/rng"
)

// Config parameterises the Tapestry overlay.
type Config struct {
	// Digits is the identifier length in hex digits.
	Digits int
	// NeighborsPerLevel is the per-level routing-table width.
	NeighborsPerLevel int
	// MaxHops bounds the search descent.
	MaxHops int
}

// DefaultConfig mirrors common Tapestry deployments (shortened IDs —
// population sizes here never exceed a few thousand).
func DefaultConfig() Config {
	return Config{Digits: 8, NeighborsPerLevel: 8, MaxHops: 64}
}

type node struct {
	id    int
	hexID uint32
	// levels[l] holds the NeighborsPerLevel members closest to this node
	// among those sharing an l-digit prefix (level 0 = everyone).
	levels [][]int
	lat    map[int]float64
}

// Overlay is a Tapestry-like overlay.
type Overlay struct {
	cfg     Config
	net     *overlay.Network
	members []int
	nodes   map[int]*node
	src     *rng.Source
}

// sharedPrefixDigits counts leading shared hex digits of two 8-digit ids.
func sharedPrefixDigits(a, b uint32, digits int) int {
	for d := 0; d < digits; d++ {
		shift := uint(4 * (digits - 1 - d))
		if (a>>shift)&0xF != (b>>shift)&0xF {
			return d
		}
	}
	return digits
}

// New builds the overlay: identifiers are random, and each node's levels
// are filled with its latency-closest members among prefix-sharers. (The
// iterative top-down construction of the Tapestry paper converges to this
// closest-per-level table in a growth-restricted space; building it
// directly keeps construction cost bounded while preserving the query-time
// behaviour the paper analyses.)
func New(net *overlay.Network, members []int, cfg Config, seed int64) *Overlay {
	if cfg.Digits <= 0 || cfg.Digits > 8 || cfg.NeighborsPerLevel <= 0 {
		panic(fmt.Sprintf("tapestry: invalid config %+v", cfg))
	}
	o := &Overlay{
		cfg:     cfg,
		net:     net,
		members: append([]int(nil), members...),
		nodes:   make(map[int]*node, len(members)),
		src:     rng.New(seed),
	}
	for _, m := range members {
		o.nodes[m] = &node{
			id:     m,
			hexID:  uint32(o.src.Int63()) & idMask(cfg.Digits),
			levels: make([][]int, cfg.Digits+1),
			lat:    make(map[int]float64),
		}
	}
	for _, m := range members {
		o.fill(o.nodes[m])
	}
	return o
}

func idMask(digits int) uint32 {
	if digits >= 8 {
		return math.MaxUint32
	}
	return 1<<(4*digits) - 1
}

func (o *Overlay) fill(n *node) {
	type cand struct {
		id  int
		lat float64
	}
	// Bucket members by shared-prefix length, measuring latency once.
	byLevel := make([][]cand, o.cfg.Digits+1)
	for _, m := range o.members {
		if m == n.id {
			continue
		}
		d := sharedPrefixDigits(n.hexID, o.nodes[m].hexID, o.cfg.Digits)
		l := o.net.MaintProbe(n.id, m)
		n.lat[m] = l
		// A member sharing a d-digit prefix is eligible for every level
		// <= d.
		for lvl := 0; lvl <= d; lvl++ {
			byLevel[lvl] = append(byLevel[lvl], cand{id: m, lat: l})
		}
	}
	for lvl, cands := range byLevel {
		sort.Slice(cands, func(i, j int) bool { return cands[i].lat < cands[j].lat })
		k := o.cfg.NeighborsPerLevel
		if k > len(cands) {
			k = len(cands)
		}
		out := make([]int, k)
		for i := 0; i < k; i++ {
			out[i] = cands[i].id
		}
		n.levels[lvl] = out
	}
}

// FindNearest implements overlay.Finder: the searching target walks the
// levels downward from a random gateway — the Hildrum et al. construction
// in reverse, which is how a joining node locates its nearest neighbour. At
// each level the target probes the union of the current contact set's
// level-l neighbour lists and keeps the closest contacts; the level-0 lists
// of the final contacts are each node's overall-closest neighbours, so the
// closest node probed overall is returned — the "closest neighbour in the
// lowest level" rule.
func (o *Overlay) FindNearest(target int) overlay.Result {
	gateway := o.members[o.src.Intn(len(o.members))]
	contacts := []int{gateway}
	probed := map[int]float64{}
	var probes int64
	hops := 0

	probe := func(id int) float64 {
		if l, ok := probed[id]; ok {
			return l
		}
		if id == target {
			// The searcher itself can be a member (even the gateway): its
			// routing tables still steer the walk, but it is not a candidate
			// and costs no probe.
			probed[id] = math.Inf(1)
			return math.Inf(1)
		}
		l := o.net.Probe(id, target)
		probes++
		probed[id] = l
		return l
	}
	probe(gateway)

	for lvl := o.cfg.Digits; lvl >= 0 && hops < o.cfg.MaxHops; lvl-- {
		// Union of the contact set's neighbours at this level.
		seen := map[int]bool{}
		var cands []int
		for _, c := range contacts {
			for _, nb := range o.nodes[c].levels[lvl] {
				if !seen[nb] {
					seen[nb] = true
					cands = append(cands, nb)
				}
			}
		}
		if len(cands) == 0 {
			continue // sparse high level: nobody shares this prefix
		}
		sort.Ints(cands)
		type scored struct {
			id int
			l  float64
		}
		scoredCands := make([]scored, 0, len(cands))
		for _, c := range cands {
			scoredCands = append(scoredCands, scored{id: c, l: probe(c)})
		}
		sort.Slice(scoredCands, func(i, j int) bool { return scoredCands[i].l < scoredCands[j].l })
		// Keep the closest few as the next contact set.
		k := 3
		if k > len(scoredCands) {
			k = len(scoredCands)
		}
		contacts = contacts[:0]
		for i := 0; i < k; i++ {
			contacts = append(contacts, scoredCands[i].id)
		}
		hops++
	}

	// Refine at level 0: repeatedly expand the closest contacts' nearest-
	// neighbour lists while progress continues — the iterative step of the
	// Hildrum et al. construction.
	for hops < o.cfg.MaxHops {
		improvedFrom := bestOf(probed)
		seen := map[int]bool{}
		var cands []int
		for _, c := range contacts {
			for _, nb := range o.nodes[c].levels[0] {
				if _, done := probed[nb]; !done && !seen[nb] {
					seen[nb] = true
					cands = append(cands, nb)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Ints(cands)
		for _, c := range cands {
			probe(c)
		}
		hops++
		nowBest := bestOf(probed)
		if probed[nowBest] >= probed[improvedFrom] {
			break
		}
		contacts = []int{nowBest}
	}

	best := bestOf(probed)
	return overlay.Result{Peer: best, LatencyMs: probed[best], Probes: probes, Hops: hops}
}

// bestOf returns the probed node with the smallest latency (ties broken by
// id for determinism).
func bestOf(probed map[int]float64) int {
	best, bestLat := -1, math.Inf(1)
	for id, l := range probed {
		if l < bestLat || (l == bestLat && id < best) {
			best, bestLat = id, l
		}
	}
	return best
}

// Members returns the membership.
func (o *Overlay) Members() []int { return o.members }

// HexID exposes a member's identifier (tests).
func (o *Overlay) HexID(id int) uint32 { return o.nodes[id].hexID }

// LevelsOf exposes a member's level table (tests).
func (o *Overlay) LevelsOf(id int) [][]int { return o.nodes[id].levels }
