package tapestry

import (
	"testing"

	"nearestpeer/internal/overlay"
	"nearestpeer/internal/testmat"
)

func TestSharedPrefixDigits(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int
	}{
		{0x12345678, 0x12345678, 8},
		{0x12345678, 0x12345679, 7},
		{0x12345678, 0x22345678, 0},
		{0xABCD0000, 0xABCE0000, 3},
	}
	for _, c := range cases {
		if got := sharedPrefixDigits(c.a, c.b, 8); got != c.want {
			t.Errorf("sharedPrefixDigits(%x, %x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevelTablesWellFormed(t *testing.T) {
	m := testmat.Euclidean(200, 1)
	net := overlay.NewNetwork(m)
	members, _ := overlay.Split(200, 20, 2)
	cfg := DefaultConfig()
	o := New(net, members, cfg, 3)

	for _, id := range members {
		levels := o.LevelsOf(id)
		if len(levels) != cfg.Digits+1 {
			t.Fatalf("node %d has %d levels", id, len(levels))
		}
		selfID := o.HexID(id)
		for lvl, tbl := range levels {
			if len(tbl) > cfg.NeighborsPerLevel {
				t.Fatalf("level %d holds %d > %d", lvl, len(tbl), cfg.NeighborsPerLevel)
			}
			for _, nb := range tbl {
				if nb == id {
					t.Fatal("self in level table")
				}
				if got := sharedPrefixDigits(selfID, o.HexID(nb), cfg.Digits); got < lvl {
					t.Fatalf("level %d member shares only %d digits", lvl, got)
				}
			}
		}
		// Level 0 must hold the latency-closest members overall.
		if len(levels[0]) > 0 {
			first := levels[0][0]
			l0, _ := latOf(o, id, first)
			for _, other := range members {
				if other == id {
					continue
				}
				if l, ok := latOf(o, id, other); ok && l < l0-1e-9 {
					// other is closer than the table's closest entry —
					// allowed only if other is also in the table.
					found := false
					for _, nb := range levels[0] {
						if nb == other {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("node %d level-0 misses closer member %d (%v < %v)", id, other, l, l0)
					}
				}
			}
		}
	}
}

func latOf(o *Overlay, a, b int) (float64, bool) {
	l, ok := o.nodes[a].lat[b]
	return l, ok
}

func TestFindNearestEuclidean(t *testing.T) {
	const n = 300
	m := testmat.Euclidean(n, 7)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(n, 30, 5)
	o := New(net, members, DefaultConfig(), 9)

	good := 0
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		oracle := overlay.TrueNearest(m, tgt, members)
		if res.Peer == oracle.Peer || res.LatencyMs <= 2*oracle.LatencyMs+0.5 {
			good++
		}
	}
	if good < len(targets)*6/10 {
		t.Fatalf("only %d/%d queries near-optimal", good, len(targets))
	}
}

func TestClusteringDefeatsSearch(t *testing.T) {
	m, gt := testmat.Clustered(100, 1000, 11)
	net := overlay.NewNetwork(m)
	members, targets := overlay.Split(m.N(), 80, 3)
	o := New(net, members, DefaultConfig(), 5)
	exact := 0
	for _, tgt := range targets {
		res := o.FindNearest(tgt)
		if res.Peer >= 0 && gt.SameEN(res.Peer, tgt) {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(targets)); frac > 0.4 {
		t.Fatalf("Tapestry exact rate %v under clustering; expected failure", frac)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Digits = 0
	New(overlay.NewNetwork(testmat.Euclidean(10, 1)), []int{0, 1}, cfg, 1)
}
