// Package ipprefix implements the paper's IP-prefix mitigation (Section
// 5): peers publish themselves in the DHT under a fixed-length prefix of
// their IP address; a joining peer retrieves everyone sharing its prefix
// and probes them. The scheme is simpler than the UCL but suffers the
// false-positive/false-negative trade-off of Figure 11: short prefixes
// return swaths of far-away peers to probe, long prefixes miss close-by
// peers in neighbouring blocks.
package ipprefix

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/dht"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// Config tunes the prefix scheme.
type Config struct {
	// PrefixBits is the fixed prefix length used as the DHT key (the
	// paper sweeps 8–24; /24 is the running example).
	PrefixBits int
	// MaxProbes caps how many retrieved candidates the querier probes.
	MaxProbes int
}

// DefaultConfig uses /24 keys.
func DefaultConfig() Config { return Config{PrefixBits: 24, MaxProbes: 64} }

func prefixKey(ip netmodel.IPv4, bits int) string {
	return fmt.Sprintf("prefix/%d/%08x", bits, uint32(ip.Prefix(bits)))
}

// System is a deployed IP-prefix service.
type System struct {
	cfg   Config
	tools *measure.Tools
	ring  *dht.Ring
}

// New creates the system over the given DHT hosting nodes.
func New(tools *measure.Tools, dhtNodes []string, cfg Config) *System {
	if cfg.PrefixBits < 1 || cfg.PrefixBits > 32 {
		panic(fmt.Sprintf("ipprefix: invalid prefix length %d", cfg.PrefixBits))
	}
	return &System{cfg: cfg, tools: tools, ring: dht.New(dhtNodes)}
}

func encodePeer(p netmodel.HostID) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, uint32(p))
	return buf
}

// Join publishes a peer under its prefix key.
func (s *System) Join(peer netmodel.HostID) {
	ip := s.tools.Top.Host(peer).IP
	s.ring.Put(prefixKey(ip, s.cfg.PrefixBits), encodePeer(peer))
}

// Leave withdraws a peer's mapping.
func (s *System) Leave(peer netmodel.HostID) {
	ip := s.tools.Top.Host(peer).IP
	s.ring.Remove(prefixKey(ip, s.cfg.PrefixBits), encodePeer(peer))
}

// Result reports a prefix query's outcome and cost.
type Result struct {
	Peer       netmodel.HostID
	RTTms      float64
	Candidates int
	Probes     int
	Lookups    int
}

// FindNearest retrieves the querier's prefix bucket and probes it.
func (s *System) FindNearest(peer netmodel.HostID) Result {
	ip := s.tools.Top.Host(peer).IP
	vals := s.ring.Get(prefixKey(ip, s.cfg.PrefixBits))
	res := Result{Peer: -1, RTTms: math.Inf(1), Lookups: 1}

	var cands []netmodel.HostID
	for _, v := range vals {
		if len(v) != 4 {
			continue
		}
		p := netmodel.HostID(binary.BigEndian.Uint32(v))
		if p != peer {
			cands = append(cands, p)
		}
	}
	res.Candidates = len(cands)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	limit := s.cfg.MaxProbes
	if limit <= 0 || limit > len(cands) {
		limit = len(cands)
	}
	for _, c := range cands[:limit] {
		d, err := s.tools.LatencyTo(peer, c)
		res.Probes++
		if err != nil {
			continue
		}
		if ms := netmodel.Ms(d); ms < res.RTTms {
			res.Peer = c
			res.RTTms = ms
		}
	}
	return res
}

// Ring exposes the underlying DHT.
func (s *System) Ring() *dht.Ring { return s.ring }

// ErrorRates computes the paper's Figure 11 statistics over a peer set:
// for each peer, the false-positive rate is the fraction of peers sharing
// its prefix among all peers farther than thresholdMs, and the
// false-negative rate is the fraction of peers with a different prefix
// among all peers within thresholdMs. Distances come from the supplied
// oracle (the paper uses shortest paths over the traceroute graph).
// Returned values are the medians across peers that have at least one peer
// within the threshold (for FN) or beyond it (for FP).
func ErrorRates(top *netmodel.Topology, peers []netmodel.HostID, bits int, thresholdMs float64, dist func(a, b netmodel.HostID) float64) (fp, fn float64) {
	var fps, fns []float64
	for _, a := range peers {
		var nearSame, nearDiff, farSame, farDiff int
		ipA := top.Host(a).IP
		for _, b := range peers {
			if a == b {
				continue
			}
			d := dist(a, b)
			same := ipA.SharesPrefix(top.Host(b).IP, bits)
			if d <= thresholdMs {
				if same {
					nearSame++
				} else {
					nearDiff++
				}
			} else {
				if same {
					farSame++
				} else {
					farDiff++
				}
			}
		}
		if farSame+farDiff > 0 {
			fps = append(fps, float64(farSame)/float64(farSame+farDiff))
		}
		if nearSame+nearDiff > 0 {
			fns = append(fns, float64(nearDiff)/float64(nearSame+nearDiff))
		}
	}
	return medianOf(fps), medianOf(fns)
}

func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
