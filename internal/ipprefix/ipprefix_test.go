package ipprefix

import (
	"math"
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func newFixture(t *testing.T, cfg Config) (*netmodel.Topology, *System, []netmodel.HostID) {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 4)
	tools := measure.NewTools(top, measure.DefaultConfig(), 9)
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	nodes := make([]string, len(peers))
	for i, p := range peers {
		nodes[i] = top.Host(p).IP.String()
	}
	sys := New(tools, nodes, cfg)
	for _, p := range peers {
		sys.Join(p)
	}
	return top, sys, peers
}

func TestPrefixKeyGrouping(t *testing.T) {
	top, sys, peers := newFixture(t, DefaultConfig())
	// A query returns exactly the other peers sharing the /24.
	p := peers[0]
	res := sys.FindNearest(p)
	want := 0
	for _, q := range peers {
		if q != p && top.Host(q).IP.SharesPrefix(top.Host(p).IP, 24) {
			want++
		}
	}
	if res.Candidates != want {
		t.Fatalf("candidates = %d, want %d", res.Candidates, want)
	}
}

func TestSameENPeersFound(t *testing.T) {
	top, sys, peers := newFixture(t, DefaultConfig())
	attempts, hits := 0, 0
	for _, p := range peers {
		hasPartner := false
		for _, q := range peers {
			if q != p && top.SameEN(p, q) {
				hasPartner = true
				break
			}
		}
		if !hasPartner {
			continue
		}
		attempts++
		res := sys.FindNearest(p)
		if res.Peer >= 0 && top.SameEN(p, res.Peer) {
			hits++
		}
		if attempts >= 40 {
			break
		}
	}
	if attempts < 5 {
		t.Skip("insufficient eligible peers")
	}
	// Same-EN peers share a /24 by construction, so the prefix scheme
	// should find them reliably (they are also the closest candidates).
	if frac := float64(hits) / float64(attempts); frac < 0.6 {
		t.Fatalf("prefix scheme hit rate %.2f (%d/%d)", frac, hits, attempts)
	}
}

func TestLeaveShrinksBucket(t *testing.T) {
	top, sys, peers := newFixture(t, DefaultConfig())
	// Find two peers sharing a /24.
	var p, q netmodel.HostID = -1, -1
	for i, a := range peers {
		for _, b := range peers[i+1:] {
			if top.Host(a).IP.SharesPrefix(top.Host(b).IP, 24) {
				p, q = a, b
				break
			}
		}
		if p >= 0 {
			break
		}
	}
	if p < 0 {
		t.Skip("no prefix-sharing pair")
	}
	before := sys.FindNearest(p).Candidates
	sys.Leave(q)
	after := sys.FindNearest(p).Candidates
	if after != before-1 {
		t.Fatalf("candidates %d -> %d after leave, want -1", before, after)
	}
}

func TestErrorRatesMonotoneTrend(t *testing.T) {
	top, _, peers := newFixture(t, DefaultConfig())
	if len(peers) > 400 {
		peers = peers[:400]
	}
	dist := func(a, b netmodel.HostID) float64 { return top.RTTms(a, b) }
	fp8, fn8 := ErrorRates(top, peers, 8, 10, dist)
	fp24, fn24 := ErrorRates(top, peers, 24, 10, dist)
	if math.IsNaN(fp8) || math.IsNaN(fp24) {
		t.Skip("insufficient pair coverage")
	}
	// Figure 11's shape: FP falls and FN rises with prefix length.
	if fp24 > fp8 {
		t.Fatalf("false-positive rate rose with longer prefix: /8=%v /24=%v", fp8, fp24)
	}
	if !math.IsNaN(fn8) && !math.IsNaN(fn24) && fn24 < fn8-1e-9 {
		t.Fatalf("false-negative rate fell with longer prefix: /8=%v /24=%v", fn8, fn24)
	}
	if fp8 < 0 || fp8 > 1 || fn24 < 0 || fn24 > 1 {
		t.Fatal("rates out of [0,1]")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, []string{"a"}, Config{PrefixBits: 0})
}
