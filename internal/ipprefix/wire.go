// Wire deployment of the IP-prefix mitigation: the same prefix-bucket
// hint scheme as System, but publishing and lookup run as wire operations
// against the message-level Chord DHT (internal/p2p), and candidate
// probing is pings over the runtime — the scheme's Figure 11
// false-positive cost now additionally pays per-probe timeouts for stale
// entries whose publisher churned out.

package ipprefix

import (
	"encoding/binary"
	"sort"
	"time"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/p2p"
)

// Wire is a deployed message-level IP-prefix service. hosts fixes the
// HostID ↔ runtime NodeID mapping: node i of the runtime's latency matrix
// is hosts[i].
type Wire struct {
	cfg   Config
	tools *measure.Tools
	chord *p2p.Chord
	hosts []netmodel.HostID
	index map[netmodel.HostID]p2p.NodeID
	// PingTimeout bounds each candidate probe; 0 uses the runtime default.
	PingTimeout time.Duration
}

// NewWire creates the wire deployment over an existing Chord instance.
func NewWire(tools *measure.Tools, chord *p2p.Chord, hosts []netmodel.HostID, cfg Config) *Wire {
	index := make(map[netmodel.HostID]p2p.NodeID, len(hosts))
	for i, h := range hosts {
		index[h] = p2p.NodeID(i)
	}
	return &Wire{cfg: cfg, tools: tools, chord: chord, hosts: hosts, index: index}
}

// NodeOf maps a host to its runtime node id.
func (w *Wire) NodeOf(peer netmodel.HostID) p2p.NodeID { return w.index[peer] }

// Publish stores the peer under its prefix key as a wire Put. done
// receives whether the store was acknowledged.
func (w *Wire) Publish(peer netmodel.HostID, done func(ok bool)) {
	ip := w.tools.Top.Host(peer).IP
	w.chord.Put(w.NodeOf(peer), prefixKey(ip, w.cfg.PrefixBits), encodePeer(peer), func(r p2p.OpResult) {
		if done != nil {
			done(r.OK)
		}
	})
}

// WireResult reports a message-level prefix query's outcome and cost.
type WireResult struct {
	Peer       netmodel.HostID
	RTTms      float64
	Candidates int
	// Probes counts candidate pings issued; DeadProbes those that timed
	// out (stale hints or probe loss).
	Probes     int
	DeadProbes int
	// Lookups counts DHT Gets; LookupFails those that failed; Hops and
	// Retries aggregate their routing cost.
	Lookups     int
	LookupFails int
	Hops        int
	Retries     int
	Found       bool
}

// FindNearest retrieves the querier's prefix bucket over the wire and
// probes it, closest candidate id first (the static scheme's order). done
// fires exactly once (the issuing node is assumed to stay up).
func (w *Wire) FindNearest(peer netmodel.HostID, done func(WireResult)) {
	ip := w.tools.Top.Host(peer).IP
	node := w.NodeOf(peer)
	res := WireResult{Peer: -1, Lookups: 1}
	w.chord.Get(node, prefixKey(ip, w.cfg.PrefixBits), func(r p2p.OpResult) {
		res.Hops += r.Hops
		res.Retries += r.Retries
		res.LookupFails += r.LookupFails
		seen := make(map[netmodel.HostID]bool)
		var cands []netmodel.HostID
		if r.OK {
			for _, v := range r.Vals {
				if len(v) != 4 {
					continue
				}
				p := netmodel.HostID(binary.BigEndian.Uint32(v))
				if p == peer || seen[p] {
					continue // republished duplicates collapse to one candidate
				}
				if _, known := w.index[p]; !known {
					continue
				}
				seen[p] = true
				cands = append(cands, p)
			}
		}
		res.Candidates = len(cands)
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		if w.cfg.MaxProbes > 0 && len(cands) > w.cfg.MaxProbes {
			cands = cands[:w.cfg.MaxProbes]
		}
		ids := make([]p2p.NodeID, len(cands))
		for i, c := range cands {
			ids[i] = w.index[c]
		}
		w.chord.Transport().Node(node).SweepPing(ids, w.PingTimeout, func(s p2p.PingSweep) {
			res.Probes, res.DeadProbes, res.Found = s.Probes, s.Dead, s.Found
			if s.Found {
				res.Peer, res.RTTms = w.hosts[int(s.Best)], s.BestRTT
			}
			done(res)
		})
	})
}
