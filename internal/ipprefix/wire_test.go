package ipprefix

import (
	"math"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
)

// The wire deployment must agree with the static one in a lossless world:
// same prefix buckets, same candidate sets, and pings that measure the
// matrix RTT exactly.
func TestWirePrefixMatchesStaticLossless(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 4)
	tools := measure.NewTools(top, measure.Config{}, 9)

	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
		if len(peers) == 64 {
			break
		}
	}
	if len(peers) < 40 {
		t.Fatalf("fixture has only %d responsive peers", len(peers))
	}
	cfg := Config{PrefixBits: 16, MaxProbes: 64} // wide buckets so candidates exist

	addrs := make([]string, len(peers))
	for i, p := range peers {
		addrs[i] = top.Host(p).IP.String()
	}
	sys := New(tools, addrs, cfg)
	for _, p := range peers {
		sys.Join(p)
	}

	kernel := sim.New()
	rt := p2p.New(kernel, &latency.TopologyMatrix{Top: top, Hosts: peers}, p2p.Config{RPCTimeout: time.Second}, 1)
	ccfg := p2p.DefaultChordConfig()
	ccfg.StabilizeEvery = 500 * time.Millisecond
	ccfg.Horizon = 25 * time.Second
	chord := p2p.NewChord(rt, ccfg, 7)
	for i := range peers {
		id := p2p.NodeID(i)
		kernel.After(time.Duration(i)*10*time.Millisecond, func() { chord.Join(id) })
	}
	kernel.Run()
	wire := NewWire(tools, chord, peers, cfg)
	var publish func(i int)
	publish = func(i int) {
		if i >= len(peers) {
			return
		}
		wire.Publish(peers[i], func(bool) { publish(i + 1) })
	}
	publish(0)
	kernel.Run()

	withCandidates := 0
	for _, p := range peers[:16] {
		static := sys.FindNearest(p)
		var got WireResult
		wire.FindNearest(p, func(r WireResult) { got = r })
		kernel.Run()
		if got.Candidates != static.Candidates {
			t.Errorf("peer %d: wire bucket has %d candidates, static %d", p, got.Candidates, static.Candidates)
		}
		if got.Found != (static.Peer >= 0) {
			t.Errorf("peer %d: wire found=%v, static peer=%d", p, got.Found, static.Peer)
		}
		if got.Found {
			withCandidates++
			// Wire pings measure the matrix RTT at nanosecond resolution.
			if want := top.RTTms(p, got.Peer); math.Abs(got.RTTms-want) > 1e-6 {
				t.Errorf("peer %d: wire RTT %v to %d, matrix says %v", p, got.RTTms, got.Peer, want)
			}
		}
	}
	if withCandidates == 0 {
		t.Fatal("no prefix bucket produced candidates — fixture degenerate")
	}

	// Republish must not inflate candidate counts: duplicates collapse.
	target := peers[0]
	var before WireResult
	wire.FindNearest(target, func(r WireResult) { before = r })
	kernel.Run()
	wire.Publish(target, nil)
	kernel.Run()
	var after WireResult
	wire.FindNearest(target, func(r WireResult) { after = r })
	kernel.Run()
	if after.Candidates != before.Candidates {
		t.Fatalf("republish changed candidate count: %d -> %d", before.Candidates, after.Candidates)
	}
}
