package p2p

import (
	"math"
	"reflect"
	"testing"
)

// fuzzSeedEnvelopes is the set of well-formed envelopes seeding the fuzz
// corpus: one per protocol payload family, plus the payload-less pings.
func fuzzSeedEnvelopes() []Envelope {
	return []Envelope{
		{Type: MsgPing, From: 1, To: 2, MsgID: 7},
		{Type: MsgPong, From: 2, To: 1, MsgID: 7, Resp: true},
		{Type: MsgChordFind, From: 3, To: 4, MsgID: 99, Payload: cFindMsg{Key: 0xDEADBEEF}},
		{Type: MsgChordFindOK, From: 4, To: 3, MsgID: 99, Resp: true,
			Payload: cFindOKMsg{Done: true, Owner: 5, Reps: []NodeID{6, 7}, Next: NoNode, Alts: []NodeID{8}}},
		{Type: MsgChordStore, From: 0, To: 5, MsgID: 12,
			Payload: cStoreMsg{Key: "k", Val: []byte{0, 1, 2, 0xFF}, Rep: 3}},
		{Type: MsgChordFetchOK, From: 5, To: 0, MsgID: 13, Resp: true,
			Payload: cFetchOKMsg{Vals: [][]byte{[]byte("a"), nil, []byte("b")}}},
		{Type: MsgChordHandoff, From: 1, To: 2, MsgID: 14,
			Payload: cHandoffMsg{Data: map[string][][]byte{"x": {[]byte("y")}}}},
		{Type: MsgQuery, From: 9, To: 10, MsgID: 15,
			Payload: queryMsg{QID: 1, Origin: 9, Target: 11, D: 12.5, BestID: 10, BestLat: 3.25, Hops: 2, Visited: []NodeID{9, 10}}},
		{Type: MsgProbeOK, From: 10, To: 9, MsgID: 16, Resp: true, Payload: probeOKMsg{RTTms: 1.5, OK: true}},
		{Type: MsgFind, From: 0, To: 1, MsgID: 17, Payload: findMsg{SID: 4, From: 0, Round: 2}},
	}
}

// TestEnvelopeCodecRoundTrip pins the codec's happy path: every seed
// envelope encodes, decodes back DeepEqual, and reports the right frame
// length prefix.
func TestEnvelopeCodecRoundTrip(t *testing.T) {
	for _, env := range fuzzSeedEnvelopes() {
		b, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("encode %+v: %v", env, err)
		}
		got, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", env, err)
		}
		if !reflect.DeepEqual(normalizeEnvelope(env), normalizeEnvelope(got)) {
			t.Fatalf("round trip\n sent %+v\n got  %+v", env, got)
		}
	}
}

// normalizeEnvelope maps nil and empty slices/maps to a canonical form:
// JSON does not distinguish them, and the protocols do not either.
func normalizeEnvelope(env Envelope) Envelope {
	switch p := env.Payload.(type) {
	case cFindOKMsg:
		if len(p.Reps) == 0 {
			p.Reps = nil
		}
		if len(p.Alts) == 0 {
			p.Alts = nil
		}
		env.Payload = p
	case cFetchOKMsg:
		for i, v := range p.Vals {
			if len(v) == 0 {
				p.Vals[i] = nil
			}
		}
		env.Payload = p
	}
	return env
}

// TestEnvelopeCodecRejects pins the codec's error paths: malformed frames
// return errors (and never panic, which the fuzz target enforces at
// scale).
func TestEnvelopeCodecRejects(t *testing.T) {
	valid, err := EncodeEnvelope(Envelope{Type: MsgChordFind, From: 1, To: 2, MsgID: 3, Payload: cFindMsg{Key: 9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"short prefix":    valid[:3],
		"truncated body":  valid[:len(valid)-4],
		"length mismatch": append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, valid[4:]...),
		"bad version":     append([]byte{valid[0], valid[1], valid[2], valid[3], 99}, valid[5:]...),
		"trailing bytes": func() []byte {
			b := append(append([]byte(nil), valid...), 0xAA)
			return b
		}(),
		"garbage":  {0, 0, 0, 6, 1, 0, 0, 0, 0, 0},
		"all ones": {255, 255, 255, 255, 255, 255, 255, 255},
	}
	for name, b := range cases {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("%s: decode accepted a malformed frame", name)
		}
	}

	if _, err := EncodeEnvelope(Envelope{Type: "x", Payload: struct{ X int }{1}}); err == nil {
		t.Error("encode accepted an unregistered payload type")
	}
	if _, err := EncodeEnvelope(Envelope{Type: "x", Payload: probeOKMsg{RTTms: math.Inf(1)}}); err == nil {
		t.Error("encode accepted a non-JSON-encodable payload")
	}
	big := cStoreMsg{Key: "k", Val: make([]byte, MaxFrame)}
	if _, err := EncodeEnvelope(Envelope{Type: MsgChordStore, Payload: big}); err == nil {
		t.Error("encode accepted a frame over MaxFrame")
	}
	oversized := make([]byte, MaxFrame+1)
	if _, err := DecodeEnvelope(oversized); err == nil {
		t.Error("decode accepted a frame over MaxFrame")
	}
}

// FuzzEnvelopeCodec is the robustness gate the CI fuzz-replay step runs:
// DecodeEnvelope must never panic, and any frame it accepts must
// re-encode and decode back to the same envelope.
func FuzzEnvelopeCodec(f *testing.F) {
	for _, env := range fuzzSeedEnvelopes() {
		if b, err := EncodeEnvelope(env); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeEnvelope(data)
		if err != nil {
			return // malformed input rejected: the contract held
		}
		b, err := EncodeEnvelope(env)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v (env %+v)", err, env)
		}
		again, err := DecodeEnvelope(b)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if env.Type != again.Type || env.From != again.From || env.To != again.To ||
			env.MsgID != again.MsgID || env.Resp != again.Resp {
			t.Fatalf("header round trip\n first  %+v\n second %+v", env, again)
		}
		if !reflect.DeepEqual(env.Payload, again.Payload) {
			t.Fatalf("payload round trip\n first  %#v\n second %#v", env.Payload, again.Payload)
		}
	})
}
