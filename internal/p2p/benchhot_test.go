package p2p_test

import (
	"testing"

	"nearestpeer/internal/benchhot"
)

// These delegate to internal/benchhot so `go test -bench` and
// cmd/benchscale (which writes CI's BENCH_scale.json) measure the exact
// same workloads — the numbers stay comparable by construction.

func BenchmarkSendDeliver(b *testing.B)    { benchhot.SendDeliver(b) }
func BenchmarkObsSendDeliver(b *testing.B) { benchhot.ObsSendDeliver(b) }
func BenchmarkRequestReply(b *testing.B)   { benchhot.RequestReply(b) }
func BenchmarkMulticastRound(b *testing.B) { benchhot.MulticastRound(b) }
