package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/sim"
)

func TestExpandingFindsNearestRegistered(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(6), DefaultConfig(), 1)
	e := NewExpanding(rt, ExpandConfig{
		InitialRadiusMs: 5,
		RadiusMult:      3,
		Rounds:          4,
		RoundTimeout:    300 * time.Millisecond,
	})
	// Members at 20, 30, 50 ms from searcher 0; node 1 (10 ms) not a member.
	for _, id := range []NodeID{2, 3, 5} {
		e.Register(id)
	}
	var res ExpandResult
	e.Search(0, func(r ExpandResult) { res = r })
	kernel.Run()
	if !res.Found || res.Peer != 2 {
		t.Fatalf("found %v peer %d, want member 2", res.Found, res.Peer)
	}
	if res.RTTms != 20 {
		t.Fatalf("measured %v ms, want 20", res.RTTms)
	}
	// Scopes 5, 15, 45: node 2 first reachable in round 3.
	if res.Rounds != 3 {
		t.Fatalf("resolved in round %d, want 3", res.Rounds)
	}
	if res.Messages == 0 {
		t.Fatal("no multicast copies counted")
	}
}

func TestExpandingUnfoundAfterAllRounds(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(6), DefaultConfig(), 1)
	cfg := DefaultExpandConfig()
	cfg.Rounds = 2
	cfg.InitialRadiusMs = 1 // scopes 1, 4 ms: nobody is that close
	e := NewExpanding(rt, cfg)
	e.Register(5)
	var res ExpandResult
	called := 0
	e.Search(0, func(r ExpandResult) { res = r; called++ })
	kernel.Run()
	if called != 1 {
		t.Fatalf("done fired %d times", called)
	}
	if res.Found || res.Peer != -1 || res.Rounds != 2 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// A member answers a round whose timeout already expired (documented as
// allowed: "they still count"). The measured RTT must be taken against the
// round that sent the find, not against whatever round is open when the
// answer lands — the bug measured now-roundStart with roundStart advancing
// every round, under-reporting the RTT of every late answer.
func TestExpandingLateAnswerMeasuredAgainstItsRound(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(6), DefaultConfig(), 1)
	e := NewExpanding(rt, ExpandConfig{
		InitialRadiusMs: 100, // round 0 already reaches the only member
		RadiusMult:      2,
		Rounds:          6,
		RoundTimeout:    10 * time.Millisecond, // rounds close long before the answer returns
	})
	e.Register(5) // 50 ms from searcher 0: the answer lands in round 5
	var res ExpandResult
	e.Search(0, func(r ExpandResult) { res = r })
	kernel.Run()
	if !res.Found || res.Peer != 5 {
		t.Fatalf("found=%v peer=%d, want member 5", res.Found, res.Peer)
	}
	// Round 0 sent the find at t=0; the answer arrives at t=50 ms. With the
	// bug the RTT was measured against round 5's start (t=40 ms) as 10 ms.
	if res.RTTms != 50 {
		t.Fatalf("late answer measured as %v ms, want 50 (its own round's send time)", res.RTTms)
	}
	if res.Rounds != 5 {
		t.Fatalf("resolved after %d rounds, want 5", res.Rounds)
	}
}

func TestExpandingSkipsCrashedAndDeregistered(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(6), DefaultConfig(), 1)
	e := NewExpanding(rt, ExpandConfig{
		InitialRadiusMs: 100,
		RadiusMult:      2,
		Rounds:          1,
		RoundTimeout:    500 * time.Millisecond,
	})
	for _, id := range []NodeID{1, 2, 3} {
		e.Register(id)
	}
	rt.Node(1).Stop() // crashed: silent
	e.Deregister(2)   // graceful: no longer subscribed
	var res ExpandResult
	e.Search(0, func(r ExpandResult) { res = r })
	kernel.Run()
	if res.Peer != 3 {
		t.Fatalf("peer %d, want 3", res.Peer)
	}
}
