// Race soak for the UDP transport's readLoop/inflight path: concurrent
// requesters, duplicate and late replies, timeouts racing deliveries, and
// a close racing in-flight sends. The assertions are the waiter contract —
// every request resolves exactly once — and the race detector's silence;
// CI runs the whole test suite under -race.

package p2p

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// udpEchoType is a request the responder answers once, normally.
const udpEchoType = "t_echo"

// udpDupType is a request the responder answers twice — the duplicate
// must be dropped by the requester's inflight correlation.
const udpDupType = "t_dup"

// udpSlowType is a request the responder answers only after the
// requester's timeout has fired — the late reply must find no waiter.
const udpSlowType = "t_slow"

// udpSoakPayload exercises the codec on every soak datagram.
type udpSoakPayload struct {
	Seq  uint64
	Blob []byte
}

func init() { RegisterPayload("t_soak", udpSoakPayload{}) }

// newUDPCluster brings up n local nodes with soak handlers installed.
func newUDPCluster(t *testing.T, n int, cfg Config, seed int64) *UDP {
	t.Helper()
	u := NewUDP(n+1, cfg, seed) // +1: one ID stays unbound as the dead peer
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if _, err := u.Listen(id, ""); err != nil {
			u.Close()
			t.Fatalf("listen %d: %v", id, err)
		}
		// Handlers install on the loop: the socket is live, so a datagram
		// could already be in delivery.
		u.Do(func() {
			node := u.Node(id)
			node.Handle(udpEchoType, func(n *Node, env Envelope) {
				n.Reply(env, udpEchoType, env.Payload)
			})
			node.Handle(udpDupType, func(n *Node, env Envelope) {
				n.Reply(env, udpDupType, env.Payload)
				n.Reply(env, udpDupType, env.Payload)
			})
			node.Handle(udpSlowType, func(n *Node, env Envelope) {
				// Answer well after any requester timeout in the soak.
				u.After(n.ID, 300*time.Millisecond, func() {
					if n.Alive() {
						n.Reply(env, udpSlowType, env.Payload)
					}
				})
			})
		})
	}
	return u
}

// TestUDPPingPong is the smoke: one request-reply round over real
// datagrams, exercising Listen, the codec, the read loop, and inflight
// correlation end to end.
func TestUDPPingPong(t *testing.T) {
	u := newUDPCluster(t, 2, Config{RPCTimeout: 2 * time.Second}, 1)
	defer u.Close()
	got := make(chan float64, 1)
	u.Do(func() {
		u.Node(0).Ping(1, 2*time.Second, false, func(rtt float64, ok bool) {
			if !ok {
				t.Error("ping over UDP timed out")
			}
			got <- rtt
		})
	})
	select {
	case rtt := <-got:
		if rtt < 0 {
			t.Fatalf("negative rtt %v", rtt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping never resolved")
	}
}

// TestUDPArtificialDelay checks the matrix-priced receive delay: with a
// delay matrix installed, a ping measures approximately the matrix RTT
// even though the datagrams cross the loopback interface — the hook the
// live smoke uses to cross-check `nearest` against the static oracle.
func TestUDPArtificialDelay(t *testing.T) {
	u := newUDPCluster(t, 2, Config{RPCTimeout: 2 * time.Second}, 1)
	defer u.Close()
	u.SetDelayMatrix(lineMatrix(2)) // RTT(0,1) = 10 ms
	got := make(chan float64, 1)
	u.Do(func() {
		u.Node(0).Ping(1, 2*time.Second, false, func(rtt float64, ok bool) {
			if !ok {
				t.Error("delayed ping timed out")
			}
			got <- rtt
		})
	})
	select {
	case rtt := <-got:
		if rtt < 10 || rtt > 60 {
			t.Fatalf("rtt %.2f ms, want ≈10 ms (plus scheduling overhead)", rtt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping never resolved")
	}
}

// TestUDPSoakInflight is the soak proper: several goroutines hammer the
// cluster with echo, duplicate-reply, late-reply, and dead-peer requests
// under packet loss, and every request must resolve exactly once.
func TestUDPSoakInflight(t *testing.T) {
	const (
		nodes      = 8
		goroutines = 4
		opsPerG    = 120
	)
	u := newUDPCluster(t, nodes, Config{RPCTimeout: time.Second, LossProb: 0.05}, 42)
	defer u.Close()

	dead := NodeID(nodes) // registered ID space, but never bound: always times out
	types := []string{udpEchoType, udpDupType, udpSlowType, udpEchoType}

	total := goroutines * opsPerG
	resolved := make([]atomic.Int32, total)
	var replies, timeouts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				op := g*opsPerG + i
				from := NodeID((g + i) % nodes)
				to := NodeID((g + i + 1 + i%3) % nodes)
				typ := types[i%len(types)]
				if i%7 == 0 {
					to = dead
				}
				timeout := 150 * time.Millisecond
				if typ == udpEchoType {
					timeout = time.Second
				}
				u.Do(func() {
					u.Node(from).Request(to, typ, udpSoakPayload{Seq: uint64(op), Blob: []byte{byte(op)}}, timeout,
						func(env Envelope) {
							if env.Payload.(udpSoakPayload).Seq != uint64(op) {
								t.Errorf("op %d: cross-correlated reply %+v", op, env.Payload)
							}
							resolved[op].Add(1)
							replies.Add(1)
						},
						func() {
							resolved[op].Add(1)
							timeouts.Add(1)
						})
				})
			}
		}()
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for replies.Load()+timeouts.Load() < int64(total) && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	// Let straggler duplicates and late replies land before the counts are
	// read: they must all be dropped, not double-resolve.
	time.Sleep(500 * time.Millisecond)

	for op := range resolved {
		if n := resolved[op].Load(); n != 1 {
			t.Errorf("op %d resolved %d times", op, n)
		}
	}
	if replies.Load()+timeouts.Load() != int64(total) {
		t.Errorf("%d replies + %d timeouts != %d requests", replies.Load(), timeouts.Load(), total)
	}
	if replies.Load() == 0 || timeouts.Load() == 0 {
		t.Errorf("degenerate soak: %d replies, %d timeouts — both paths must fire", replies.Load(), timeouts.Load())
	}
	u.Do(func() {
		m := u.SerialMetrics()
		if m.MsgsSent == 0 || m.MsgsDelivered == 0 {
			t.Errorf("metrics did not move: %+v", *m)
		}
	})
}

// TestUDPCloseDuringSend races Close against senders mid-burst: no panic,
// no deadlock, no race-detector report. Requests cut off by the close may
// resolve never — only requests that resolve must resolve once.
func TestUDPCloseDuringSend(t *testing.T) {
	u := newUDPCluster(t, 4, Config{RPCTimeout: 200 * time.Millisecond}, 3)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				done := make(chan struct{}, 2)
				u.Do(func() {
					u.Node(NodeID(g)).Request(NodeID((g+1)%4), udpEchoType,
						udpSoakPayload{Seq: uint64(i)}, 100*time.Millisecond,
						func(Envelope) { done <- struct{}{} },
						func() { done <- struct{}{} })
				})
				select {
				case <-done:
				case <-time.After(300 * time.Millisecond):
					return // transport closed under us: requests stop resolving
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	if err := u.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	wg.Wait()
	if err := u.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestUDPCrossProcessStyle exercises the peer-table path used between
// real processes: two separate UDP transports (separate sockets, separate
// event loops) that only know each other by address, including an
// ephemeral client whose address the server learns from its datagram.
func TestUDPCrossProcessStyle(t *testing.T) {
	server := NewUDP(1024, Config{RPCTimeout: 2 * time.Second}, 1)
	defer server.Close()
	saddr, err := server.Listen(0, "")
	if err != nil {
		t.Fatal(err)
	}
	server.Do(func() {
		server.Node(0).Handle(udpEchoType, func(n *Node, env Envelope) {
			n.Reply(env, udpEchoType, env.Payload)
		})
	})

	client := NewUDP(1024, Config{RPCTimeout: 2 * time.Second}, 2)
	defer client.Close()
	const clientID = NodeID(1000) // ephemeral: not in any peer table
	if _, err := client.Listen(clientID, ""); err != nil {
		t.Fatal(err)
	}
	if err := client.AddPeer(0, saddr); err != nil {
		t.Fatal(err)
	}

	got := make(chan struct{})
	client.Do(func() {
		client.Node(clientID).Request(0, udpEchoType, udpSoakPayload{Seq: 77}, 2*time.Second,
			func(env Envelope) {
				if env.Payload.(udpSoakPayload).Seq != 77 {
					t.Errorf("wrong payload %+v", env.Payload)
				}
				close(got)
			},
			func() { t.Error("cross-transport request timed out"); close(got) })
	})
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-transport request never resolved")
	}
	if fmt.Sprintf("%v", server.LocalAddr(0)) == "" {
		t.Fatal("server lost its bound address")
	}
}

// TestUDPCloseNodeRelearn: a node migrating to another process is
// unreachable from its old host until that host forgets the node's
// socket. Phase 1 pins the failure mode CloseNode exists to fix: while
// the stale local socket lingers, learnPeer refuses the migrated node's
// new address (the ID still looks local) and replies are routed to the
// dead socket, so the migrated node's requests time out. Phase 2: after
// CloseNode, the very next datagram re-learns the address like any
// remote peer's and the round trip completes.
func TestUDPCloseNodeRelearn(t *testing.T) {
	cfg := Config{RPCTimeout: 500 * time.Millisecond}
	a := NewUDP(2, cfg, 1)
	defer a.Close()
	addr0, err := a.Listen(0, "")
	if err != nil {
		t.Fatalf("listen 0: %v", err)
	}
	if _, err := a.Listen(1, ""); err != nil { // node 1 starts life in "process" A
		t.Fatalf("listen 1: %v", err)
	}

	// Node 1 migrates: a second transport (a second process, in spirit)
	// binds it at a fresh address and names A's node 0 in its peer table.
	b := NewUDP(2, cfg, 2)
	defer b.Close()
	if _, err := b.Listen(1, ""); err != nil {
		t.Fatalf("listen migrated 1: %v", err)
	}
	if err := b.AddPeer(0, addr0); err != nil {
		t.Fatalf("addpeer: %v", err)
	}

	ping := func() bool {
		done := make(chan bool, 1)
		b.Do(func() {
			b.Node(1).Ping(0, 400*time.Millisecond, false, func(_ float64, ok bool) { done <- ok })
		})
		select {
		case ok := <-done:
			return ok
		case <-time.After(5 * time.Second):
			t.Fatal("ping never resolved")
			return false
		}
	}
	if ping() {
		t.Fatal("migrated node reachable past a stale local socket — the failure mode this test pins is gone; re-point the test")
	}
	a.CloseNode(1)
	if !ping() {
		t.Fatal("after CloseNode the migrated node's address was not re-learned")
	}
}

// TestUDPCloseNodeRebind: CloseNode releases the ID for a later Listen on
// the same transport — the rebound socket answers traffic and the node
// comes back alive.
func TestUDPCloseNodeRebind(t *testing.T) {
	u := newUDPCluster(t, 2, Config{RPCTimeout: time.Second}, 3)
	defer u.Close()
	u.CloseNode(1)
	if u.Alive(1) {
		t.Fatal("node 1 alive after CloseNode")
	}
	if _, err := u.Listen(1, ""); err != nil {
		t.Fatalf("re-listen after CloseNode: %v", err)
	}
	if !u.Alive(1) {
		t.Fatal("node 1 not revived by re-Listen")
	}
	done := make(chan bool, 1)
	u.Do(func() {
		u.Node(0).Ping(1, time.Second, false, func(_ float64, ok bool) { done <- ok })
	})
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("ping to the rebound node timed out")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ping never resolved")
	}
}
