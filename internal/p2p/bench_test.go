package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/sim"
)

// The send/deliver, request/reply and warm multicast-round benchmarks
// live in internal/benchhot (shared with cmd/benchscale, delegated from
// benchhot_test.go); only the cold-index variant stays here because it
// reaches into the unexported sender cache to evict.

// BenchmarkMulticastRoundCold prices the first round from a fresh sender
// (index build + sort) amortised over the group size, the cost the lazy
// index pays once per (sender, group).
func BenchmarkMulticastRoundCold(b *testing.B) {
	const members = 1024
	kernel := sim.New()
	rt := New(kernel, lineMatrix(members+2), Config{RPCTimeout: time.Second}, 1)
	for i := 2; i < members+2; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
		rt.Node(NodeID(i)).Handle("mc", func(*Node, Envelope) {})
	}
	rt.AddNode(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := rt.groups["g"]
		delete(g.senders, 0) // evict so every iteration rebuilds
		b.StartTimer()
		rt.Multicast(0, "g", "mc", nil, 160)
		kernel.Run()
	}
}
