// FindResult — the scheme-independent outcome of a wire nearest-peer
// query. The per-scheme Wire types under internal/{beacon,tiers,pic,
// tapestry,azureus,kargerruhl,rendezvous} all report through it, which is
// what lets the experiments' scheme registry score every scheme with one
// code path.

package p2p

// FindResult reports a wire nearest-peer query's outcome and cost. Counters
// follow the overlay package's methodology: Probes is the cost the paper
// bounds (query-time RTT measurements), RPCs the scheme's own control
// messages (hint fetches, walk handoffs, directory reads), each a
// request/response pair the runtime prices and can lose.
type FindResult struct {
	// Peer is the closest responsive candidate found (NoNode if none).
	Peer NodeID
	// RTTms is the wire-measured RTT to Peer.
	RTTms float64
	// Probes counts candidate pings issued (paid whether or not answered);
	// DeadProbes the ones that timed out — stale candidates, loss, death.
	Probes     int
	DeadProbes int
	// RPCs counts scheme control requests issued; RPCFails the ones whose
	// every attempt expired unanswered.
	RPCs     int
	RPCFails int
	// Hops counts the scheme's descent/walk steps (same meaning as the
	// static overlay.Result's Hops).
	Hops int
	// Found reports whether any candidate answered.
	Found bool
}
