package p2p

import (
	"fmt"
	"slices"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// lineMatrix builds a small dense matrix with rtt(i,j) = 10*|i-j| ms.
func lineMatrix(n int) *latency.Dense {
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 10*float64(j-i))
		}
	}
	return m
}

func newTestRuntime(t *testing.T, n int, loss float64) (*sim.Sim, *Runtime) {
	t.Helper()
	kernel := sim.New()
	return kernel, New(kernel, lineMatrix(n), Config{LossProb: loss, RPCTimeout: time.Second}, 1)
}

func TestRequestReplyCorrelation(t *testing.T) {
	kernel, rt := newTestRuntime(t, 4, 0)
	a, b := rt.AddNode(0), rt.AddNode(2)
	b.Handle("echo", func(n *Node, env Envelope) {
		n.Reply(env, "echo_ok", env.Payload)
	})
	var got any
	var at time.Duration
	a.Request(b.ID, "echo", "hello", 0, func(env Envelope) {
		got = env.Payload
		at = kernel.Now()
	}, func() { t.Error("unexpected timeout") })
	kernel.Run()
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	// One-way is rtt/2 each direction: the round trip is the matrix RTT.
	if want := durOf(20); at != want {
		t.Fatalf("reply at %v, want %v", at, want)
	}
	if rt.Metrics.MsgsSent != 2 || rt.Metrics.MsgsDelivered != 2 {
		t.Fatalf("metrics %+v", rt.Metrics)
	}
}

func TestPingMeasuresMatrixRTT(t *testing.T) {
	kernel, rt := newTestRuntime(t, 4, 0)
	a := rt.AddNode(0)
	rt.AddNode(3)
	var rtt float64
	ok := false
	a.Ping(3, 0, false, func(ms float64, o bool) { rtt, ok = ms, o })
	kernel.Run()
	if !ok || rtt != 30 {
		t.Fatalf("ping = (%v, %v), want (30, true)", rtt, ok)
	}
	if rt.Metrics.QueryProbes != 1 || rt.Metrics.MaintProbes != 0 {
		t.Fatalf("probe accounting %+v", rt.Metrics)
	}
}

// The documented transport invariant: a ping measured over messages equals
// the matrix entry exactly, for every latency representable at nanosecond
// resolution — including odd-valued ones, where pricing each leg as
// durOf(rtt/2) truncated half a nanosecond per leg and came back short.
func TestPingRTTEqualsMatrixEntryExactly(t *testing.T) {
	odd := []float64{3, 5.000001, 7.777777, 0.000003, 86.400001, 249.999999}
	m := latency.NewDense(len(odd) + 1)
	for i, ms := range odd {
		m.Set(0, i+1, ms)
	}
	kernel := sim.New()
	rt := New(kernel, m, Config{RPCTimeout: time.Second}, 1)
	a := rt.AddNode(0)
	for i := range odd {
		rt.AddNode(NodeID(i + 1))
	}
	got := make([]float64, len(odd))
	for i := range odd {
		i := i
		a.Ping(NodeID(i+1), 0, false, func(ms float64, ok bool) {
			if !ok {
				t.Errorf("ping %d timed out", i)
			}
			got[i] = ms
		})
	}
	kernel.Run()
	for i, ms := range odd {
		if got[i] != m.LatencyMs(0, i+1) {
			t.Errorf("latency %v ms measured as %v over the wire", ms, got[i])
		}
	}
}

// Property form of the invariant: any whole-nanosecond RTT survives the
// float64 ms round trip through the transport bit-exactly.
func TestPingRTTInvariantProperty(t *testing.T) {
	src := rng.New(77)
	const pairs = 200
	m := latency.NewDense(pairs + 1)
	want := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		ns := src.Int63n(400_000_000) + 1 // up to 400 ms, odd and even alike
		want[i] = float64(ns) / 1e6
		m.Set(0, i+1, want[i])
	}
	kernel := sim.New()
	rt := New(kernel, m, Config{RPCTimeout: time.Second}, 1)
	a := rt.AddNode(0)
	got := make([]float64, pairs)
	for i := 0; i < pairs; i++ {
		i := i
		rt.AddNode(NodeID(i + 1))
		a.Ping(NodeID(i+1), 0, false, func(ms float64, ok bool) { got[i] = ms })
	}
	kernel.Run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rtt %v measured as %v (Δ %g ns)", want[i], got[i], (got[i]-want[i])*1e6)
		}
	}
}

func TestTimeoutUnderTotalLoss(t *testing.T) {
	kernel, rt := newTestRuntime(t, 2, 1)
	a := rt.AddNode(0)
	rt.AddNode(1)
	timedOut := false
	a.Request(1, MsgPing, nil, 500*time.Millisecond,
		func(Envelope) { t.Error("reply through 100% loss") },
		func() { timedOut = true })
	kernel.Run()
	if !timedOut || rt.Metrics.Timeouts != 1 || rt.Metrics.MsgsLost != 1 {
		t.Fatalf("timedOut=%v metrics %+v", timedOut, rt.Metrics)
	}
}

func TestCrashedNodeIsSilent(t *testing.T) {
	kernel, rt := newTestRuntime(t, 2, 0)
	a, b := rt.AddNode(0), rt.AddNode(1)
	b.Stop()
	timedOut := false
	a.Ping(1, 200*time.Millisecond, false, func(_ float64, ok bool) { timedOut = !ok })
	kernel.Run()
	if !timedOut {
		t.Fatal("ping to a crashed node did not time out")
	}
	if rt.Metrics.MsgsDead != 1 {
		t.Fatalf("metrics %+v", rt.Metrics)
	}

	// Restart: the node answers again with handlers intact.
	b.Restart()
	answered := false
	a.Ping(1, 200*time.Millisecond, false, func(_ float64, ok bool) { answered = ok })
	kernel.Run()
	if !answered {
		t.Fatal("restarted node did not answer")
	}
}

func TestLossRateIsHonoured(t *testing.T) {
	kernel, rt := newTestRuntime(t, 2, 0.3)
	a := rt.AddNode(0)
	rt.AddNode(1)
	const sends = 4000
	for i := 0; i < sends; i++ {
		a.Send(1, "noop", nil)
	}
	kernel.Run()
	frac := float64(rt.Metrics.MsgsLost) / float64(sends)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("loss fraction %v, want ~0.3", frac)
	}
}

func TestStopClearsInflight(t *testing.T) {
	kernel, rt := newTestRuntime(t, 2, 0)
	a, b := rt.AddNode(0), rt.AddNode(1)
	// b never answers "mute" requests.
	b.Handle("mute", func(*Node, Envelope) {})
	fired := false
	a.Request(1, "mute", nil, time.Second, func(Envelope) { fired = true }, func() { fired = true })
	a.Stop()
	kernel.Run()
	if fired {
		t.Fatal("callback fired on a crashed requester")
	}
}

func TestMulticastScopesAndCounts(t *testing.T) {
	kernel, rt := newTestRuntime(t, 5, 0)
	for i := 0; i < 5; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
	}
	rt.Node(2).Stop() // dead members receive nothing and cost nothing
	var got []NodeID
	for i := 1; i < 5; i++ {
		id := NodeID(i)
		rt.Node(id).Handle("hello", func(n *Node, env Envelope) { got = append(got, n.ID) })
	}
	// Radius 25 ms from node 0 covers nodes 1 and 2 (10, 20 ms); 2 is dead.
	sent := rt.Multicast(0, "g", "hello", nil, 25)
	kernel.Run()
	if sent != 1 {
		t.Fatalf("sent %d copies, want 1", sent)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("delivered to %v, want [1]", got)
	}
}

func TestGroupMembershipSortedAndIdempotent(t *testing.T) {
	_, rt := newTestRuntime(t, 8, 0)
	for _, id := range []NodeID{5, 1, 7, 3, 1, 5, 0} { // duplicates on purpose
		rt.AddNode(id)
		rt.JoinGroup("g", id)
	}
	want := []NodeID{0, 1, 3, 5, 7}
	if got := rt.groups["g"].members; !slices.Equal(got, want) {
		t.Fatalf("members %v, want sorted %v", got, want)
	}
	rt.LeaveGroup("g", 3)
	rt.LeaveGroup("g", 3) // absent: no-op
	rt.LeaveGroup("g", 6) // never joined: no-op
	want = []NodeID{0, 1, 5, 7}
	if got := rt.groups["g"].members; !slices.Equal(got, want) {
		t.Fatalf("after leaves %v, want %v", got, want)
	}
	rt.JoinGroup("g", 3) // re-join lands back in order
	if got := rt.groups["g"].members; !slices.Equal(got, []NodeID{0, 1, 3, 5, 7}) {
		t.Fatalf("after re-join %v", got)
	}
}

// TestLeaveGroupReleasesEmptyGroups is the churn-leak regression test:
// before the group rewrite, the last member's leave left an empty slice
// (and would now leave dead sender indexes) in the groups map forever.
func TestLeaveGroupReleasesEmptyGroups(t *testing.T) {
	_, rt := newTestRuntime(t, 8, 0)
	for i := 0; i < 1000; i++ {
		gname := fmt.Sprintf("g%d", i)
		rt.JoinGroup(gname, 1)
		rt.JoinGroup(gname, 2)
		rt.Multicast(1, gname, "hello", nil, 1000) // force a sender index
		rt.LeaveGroup(gname, 1)
		rt.LeaveGroup(gname, 2)
	}
	if n := len(rt.groups); n != 0 {
		t.Fatalf("%d empty groups retained in the map, want 0", n)
	}
	// Leaving a group that never existed stays a no-op.
	rt.LeaveGroup("never", 1)
	if len(rt.groups) != 0 {
		t.Fatal("LeaveGroup on an unknown group materialised it")
	}
}

// TestLeaveGroupDropsLeaverSenderIndex: a member that multicast and then
// left must not pin its sender index (two O(members) slices and one of
// the capped sender slots) in the group forever.
func TestLeaveGroupDropsLeaverSenderIndex(t *testing.T) {
	kernel, rt := newTestRuntime(t, 8, 0)
	for i := 0; i < 4; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
	}
	rt.Multicast(1, "g", "hello", nil, 1000)
	kernel.Run()
	if _, ok := rt.groups["g"].senders[1]; !ok {
		t.Fatal("multicast did not build a sender index")
	}
	rt.LeaveGroup("g", 1)
	if _, ok := rt.groups["g"].senders[1]; ok {
		t.Fatal("leaver's sender index retained after LeaveGroup")
	}
	// Rejoin + multicast rebuilds it with the same recipients.
	rt.JoinGroup("g", 1)
	sent := rt.Multicast(1, "g", "hello", nil, 1000)
	kernel.Run()
	if sent != 3 {
		t.Fatalf("rebuilt index sent %d copies, want 3", sent)
	}
}

// TestMulticastIndexMatchesLinearScan cross-checks the binary-searched
// sender index against the plain scan it replaced: same recipients, same
// ascending-NodeID send order, across radii, membership changes and
// aliveness flips.
func TestMulticastIndexMatchesLinearScan(t *testing.T) {
	kernel := sim.New()
	m := latency.NewDense(64)
	src := rng.New(5)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			m.Set(i, j, 1+src.Float64()*99)
		}
	}
	rt := New(kernel, m, Config{RPCTimeout: time.Second}, 1)
	for i := 0; i < 64; i++ {
		rt.AddNode(NodeID(i))
		if i%3 != 0 {
			rt.JoinGroup("g", NodeID(i))
		}
	}
	scan := func(from NodeID, radius float64) []NodeID {
		var out []NodeID
		for _, mm := range rt.groups["g"].members {
			if mm == from || !rt.Alive(mm) || rt.RTTms(from, mm) > radius {
				continue
			}
			out = append(out, mm)
		}
		return out
	}
	type rcpt struct {
		id    NodeID
		msgID uint64
	}
	check := func(stage string) {
		t.Helper()
		for _, from := range []NodeID{0, 1, 31} {
			for _, radius := range []float64{0, 10, 37.5, 80, 1000} {
				want := scan(from, radius)
				var got []rcpt
				for _, mm := range rt.groups["g"].members {
					rt.Node(mm).Handle("mc", func(n *Node, env Envelope) {
						got = append(got, rcpt{n.ID, env.MsgID})
					})
				}
				sent := rt.Multicast(from, "g", "mc", nil, radius)
				kernel.Run()
				if sent != len(want) {
					t.Fatalf("%s: from=%d radius=%v sent %d, scan wants %d", stage, from, radius, sent, len(want))
				}
				// Deliveries land in arrival-time order; the invariant the
				// loss model (and the figures) depend on is the SEND order,
				// recovered by sorting on the monotonic MsgID.
				slices.SortFunc(got, func(a, b rcpt) int { return int(a.msgID) - int(b.msgID) })
				ids := make([]NodeID, len(got))
				for i, g := range got {
					ids[i] = g.id
				}
				if !slices.Equal(ids, want) {
					t.Fatalf("%s: from=%d radius=%v sent to %v, scan wants %v", stage, from, radius, ids, want)
				}
			}
		}
	}
	check("initial")
	// Membership churn patches the already-built sender indexes.
	rt.JoinGroup("g", 0)
	rt.JoinGroup("g", 33)
	rt.LeaveGroup("g", 13)
	rt.LeaveGroup("g", 44)
	check("after join/leave")
	// Aliveness is a send-time check, invisible to the index.
	rt.Node(7).Stop()
	rt.Node(22).Stop()
	check("after crashes")
	rt.Node(7).Restart()
	check("after restart")
}

// TestMulticastFallbackBeyondSenderCap: senders past the index cap take
// the linear path and must behave identically.
func TestMulticastFallbackBeyondSenderCap(t *testing.T) {
	kernel, rt := newTestRuntime(t, 600, 0)
	for i := 0; i < 300; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
	}
	for i := 0; i < maxSenderIndexes+10; i++ {
		rt.Multicast(NodeID(i%300), "g", "warm", nil, 5)
	}
	kernel.Run()
	if n := len(rt.groups["g"].senders); n != maxSenderIndexes {
		t.Fatalf("sender cache grew to %d, cap is %d", n, maxSenderIndexes)
	}
	// A capped-out sender still reaches the right recipients in the right
	// send order. Node 599 is not in the cache (it never multicast before
	// the cap filled); lineMatrix rtt(599, i) = 10*(599-i), so radius 5990
	// covers every member.
	rt.AddNode(599)
	type rcpt struct {
		id    NodeID
		msgID uint64
	}
	var got []rcpt
	for i := 0; i < 300; i++ {
		rt.Node(NodeID(i)).Handle("mc2", func(n *Node, env Envelope) {
			got = append(got, rcpt{n.ID, env.MsgID})
		})
	}
	sent := rt.Multicast(599, "g", "mc2", nil, 5990)
	kernel.Run()
	if sent != 300 || len(got) != 300 {
		t.Fatalf("capped sender sent %d, delivered %d, want 300/300", sent, len(got))
	}
	slices.SortFunc(got, func(a, b rcpt) int { return int(a.msgID) - int(b.msgID) })
	for i := 1; i < len(got); i++ {
		if got[i-1].id >= got[i].id {
			t.Fatal("capped sender send order not ascending NodeID")
		}
	}
}

// TestSendDeliverZeroAlloc is the tentpole's enforcement: a one-way send
// through delivery must not allocate in steady state. A failing test, not
// a bench note — the claim cannot silently regress.
func TestSendDeliverZeroAlloc(t *testing.T) {
	kernel, rt := newTestRuntime(t, 4, 0)
	a := rt.AddNode(0)
	b := rt.AddNode(1)
	b.Handle("noop", func(*Node, Envelope) {})
	// Warm the slab and the kernel queue.
	for i := 0; i < 64; i++ {
		a.Send(1, "noop", nil)
	}
	kernel.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		a.Send(1, "noop", nil)
		kernel.Run()
	}); avg != 0 {
		t.Fatalf("send→deliver allocates %v per message, want 0", avg)
	}
}

// TestMulticastRoundZeroAlloc: an expanding-ring round from a warm sender
// index is allocation-free end to end (scratch buffer, slab and queue all
// reuse their capacity).
func TestMulticastRoundZeroAlloc(t *testing.T) {
	kernel, rt := newTestRuntime(t, 128, 0)
	for i := 1; i < 128; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
		rt.Node(NodeID(i)).Handle("mc", func(*Node, Envelope) {})
	}
	rt.AddNode(0)
	rt.Multicast(0, "g", "mc", nil, 300) // builds the index, warms buffers
	kernel.Run()
	if avg := testing.AllocsPerRun(200, func() {
		rt.Multicast(0, "g", "mc", nil, 300)
		kernel.Run()
	}); avg != 0 {
		t.Fatalf("multicast round allocates %v, want 0", avg)
	}
}

func TestMulticastDeliveryOrderStable(t *testing.T) {
	// Delivery order must be ascending NodeID regardless of join order:
	// the wire studies rely on it for deterministic replay.
	join := [][]NodeID{{4, 1, 3, 2}, {1, 2, 3, 4}, {2, 4, 1, 3}}
	var orders [][]NodeID
	for _, ids := range join {
		kernel, rt := newTestRuntime(t, 6, 0)
		rt.AddNode(0)
		for _, id := range ids {
			rt.AddNode(id)
			rt.JoinGroup("g", id)
		}
		var got []NodeID
		for _, id := range ids {
			rt.Node(id).Handle("hello", func(n *Node, env Envelope) { got = append(got, n.ID) })
		}
		rt.Multicast(0, "g", "hello", nil, 1000)
		kernel.Run()
		orders = append(orders, got)
	}
	for _, got := range orders[1:] {
		if !slices.Equal(got, orders[0]) {
			t.Fatalf("delivery order depends on join order: %v vs %v", orders[0], got)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Metrics {
		kernel, rt := newTestRuntime(t, 8, 0.2)
		for i := 0; i < 8; i++ {
			rt.AddNode(NodeID(i))
		}
		for i := 1; i < 8; i++ {
			rt.Node(0).Ping(NodeID(i), 300*time.Millisecond, false, func(float64, bool) {})
		}
		kernel.Run()
		return rt.Metrics
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSelfRequestReachesHandler(t *testing.T) {
	kernel, rt := newTestRuntime(t, 2, 0)
	a := rt.AddNode(0)
	handled := false
	a.Handle("echo", func(n *Node, env Envelope) {
		handled = true
		n.Reply(env, "echo_ok", env.Payload)
	})
	var got any
	a.Request(0, "echo", "self", 0, func(env Envelope) { got = env.Payload },
		func() { t.Error("self-request timed out") })
	kernel.Run()
	if !handled {
		t.Fatal("self-addressed request never reached the handler")
	}
	if got != "self" {
		t.Fatalf("reply payload = %v", got)
	}
}
