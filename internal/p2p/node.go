package p2p

import "time"

// Handler processes an incoming request or one-way message at a node.
// Handlers run as kernel events: they may send, request, and schedule, but
// must not block (there is nothing to block on — the runtime is
// callback-driven).
type Handler func(n *Node, env Envelope)

// call is one outstanding request parked in the inflight map. The timeout
// event does not cancel; it checks whether the MsgID is still inflight, so
// a response that arrived first wins the race by deleting the entry.
// Stored by value — two function words — so parking a request costs no
// allocation beyond the caller's own callbacks.
type call struct {
	onReply   func(Envelope)
	onTimeout func()
}

// Node is one runtime endpoint: an inbox dispatching by message type, an
// inflight map correlating responses to requests, and an up/down flag the
// churn generator toggles.
type Node struct {
	// ID is the node's matrix index.
	ID NodeID

	rt       Transport
	alive    bool
	handlers map[string]Handler
	inflight map[uint64]call

	// retrySeq numbers RequestPolicy calls for deterministic jitter; gen
	// counts Stop/Restart transitions so parked retry timers from a
	// previous life abort instead of resurrecting stale request chains.
	// suspicion tallies consecutive exhausted retry calls per peer (see
	// policy.go); nil until the retry layer first needs it.
	retrySeq  uint64
	gen       uint64
	suspicion map[NodeID]int
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive }

// Transport returns the transport the node lives on.
func (n *Node) Transport() Transport { return n.rt }

// Handle installs the handler for a message type (replacing any previous
// one). Messages with no handler and no inflight correlation are dropped,
// as an unknown UDP datagram would be.
func (n *Node) Handle(typ string, h Handler) { n.handlers[typ] = h }

// Stop crashes the node: it stops receiving, and every outstanding request
// it made is forgotten — their timeout events will find nothing to fire.
func (n *Node) Stop() {
	if n.alive {
		n.rt.noteLive(-1)
	}
	n.alive = false
	n.inflight = make(map[uint64]call)
	n.gen++
	n.suspicion = nil
}

// Restart brings a stopped node back up with its handlers intact and no
// inflight state, as a process restart would.
func (n *Node) Restart() {
	if !n.alive {
		n.rt.noteLive(1)
	}
	n.alive = true
	n.inflight = make(map[uint64]call)
	n.gen++
	n.suspicion = nil
}

// Send transmits a one-way message (no correlation, no timeout) and
// returns the envelope's MsgID. The ID lets a protocol correlate a one-way
// exchange itself — a responder can echo it in its own one-way answer —
// without parking anything in the inflight map (the Vivaldi gossip protocol
// does exactly this to keep its hot path free of per-request closures).
func (n *Node) Send(to NodeID, typ string, payload any) uint64 {
	id := n.rt.allocMsgIDFor(n.ID)
	n.rt.send(Envelope{Type: typ, From: n.ID, To: to, MsgID: id, Payload: payload})
	return id
}

// Request transmits a request and parks a waiter in the inflight map.
// Exactly one of onReply/onTimeout fires (neither, if this node dies
// first). A non-positive timeout uses the runtime default. The MsgID is
// returned for tests and tracing.
//
// The timeout is a typed kernel event carrying a slab slot (see
// Runtime.timeoutAt), not a closure: protocol-heavy runs park millions of
// requests, and the expiry bookkeeping itself must not allocate.
func (n *Node) Request(to NodeID, typ string, payload any, timeout time.Duration, onReply func(Envelope), onTimeout func()) uint64 {
	if timeout <= 0 {
		timeout = n.rt.defaultRPCTimeout()
	}
	id := n.rt.allocMsgIDFor(n.ID)
	n.inflight[id] = call{onReply: onReply, onTimeout: onTimeout}
	n.rt.send(Envelope{Type: typ, From: n.ID, To: to, MsgID: id, Payload: payload})
	n.rt.timeoutAt(timeout, n.ID, id)
	return id
}

// Reply responds to a request, echoing its MsgID so the requester's
// inflight lookup correlates it.
func (n *Node) Reply(req Envelope, typ string, payload any) {
	n.rt.send(Envelope{Type: typ, From: n.ID, To: req.From, MsgID: req.MsgID, Resp: true, Payload: payload})
}

// deliver dispatches an arrived envelope: responses with a MsgID this node
// has inflight go to their waiter, everything else to the type handler.
func (n *Node) deliver(env Envelope) {
	if env.Resp {
		if c, ok := n.inflight[env.MsgID]; ok {
			delete(n.inflight, env.MsgID)
			if c.onReply != nil {
				c.onReply(env)
			}
		}
		return
	}
	if h, ok := n.handlers[env.Type]; ok {
		h(n, env)
	}
}

// expire fires a request timeout at this node: the mirror of the response
// path in deliver, reached through the runtime's typed timeout event.
func (n *Node) expire(msgID uint64) {
	c, ok := n.inflight[msgID]
	if !ok || !n.alive {
		return // answered, or we restarted meanwhile
	}
	delete(n.inflight, msgID)
	n.rt.metricsAt(n.ID).Timeouts++
	if c.onTimeout != nil {
		c.onTimeout()
	}
}

// PingSweep is the outcome of sequentially probing a candidate list: the
// nearest responder and the probe bill — the shared candidate-probing step
// of the wire hint schemes (internal/ucl, internal/ipprefix).
type PingSweep struct {
	// Best is the nearest responder (NoNode when nobody answered).
	Best NodeID
	// BestRTT is the measured RTT to Best.
	BestRTT float64
	// Probes counts pings issued; Dead the ones that timed out (stale
	// candidates, loss) — cost paid without an answer.
	Probes int
	Dead   int
	// Found reports whether any candidate answered.
	Found bool
}

// SweepPing pings the targets one after another (query probes) and calls
// done with the nearest responder and the accounting. done fires exactly
// once unless this node dies mid-sweep.
func (n *Node) SweepPing(targets []NodeID, timeout time.Duration, done func(PingSweep)) {
	res := PingSweep{Best: NoNode}
	var step func(i int)
	step = func(i int) {
		if i >= len(targets) {
			done(res)
			return
		}
		res.Probes++
		n.Ping(targets[i], timeout, false, func(rtt float64, ok bool) {
			if !ok {
				res.Dead++
			} else if !res.Found || rtt < res.BestRTT {
				res.Found = true
				res.Best, res.BestRTT = targets[i], rtt
			}
			step(i + 1)
		})
	}
	step(0)
}

// Ping measures the RTT to a peer over the wire: a ping request whose
// round-trip virtual time is the measurement. maint selects the probe
// account (construction/repair vs query cost); the counter increments at
// issue time — cost is paid whether or not the pong comes back, matching
// the static Network's accounting, which has no way to fail. done receives
// (rtt, true) on a pong or (0, false) on timeout.
func (n *Node) Ping(to NodeID, timeout time.Duration, maint bool, done func(rttMs float64, ok bool)) {
	met := n.rt.metricsAt(n.ID)
	if maint {
		met.MaintProbes++
	} else {
		met.QueryProbes++
	}
	start := n.rt.Now(n.ID)
	n.Request(to, MsgPing, nil, timeout,
		func(Envelope) { done(msOf(n.rt.Now(n.ID)-start), true) },
		func() { done(0, false) })
}
