package p2p

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nearestpeer/internal/obs"
	"nearestpeer/internal/rng"
)

// This file ports the Meridian closest-node search (internal/meridian) from
// a synchronous function over a latency matrix to a protocol over messages.
// The walk is the same — measure distance to the target, ask ring members
// at about that distance to probe it, hand the query to the best reporter
// when it improves by β — but every step is now an RPC that can be lost,
// time out, or land on a node that has since crashed, and ring membership
// is maintained incrementally as nodes join and leave.

// Meridian wire message types.
const (
	// MsgQuery hands a closest-node query to a member; the member acks
	// with MsgQueryAck, so a dead next hop is detected by timeout.
	MsgQuery    = "m_query"
	MsgQueryAck = "m_query_ack"
	// MsgProbe asks a ring member to measure its RTT to the target;
	// MsgProbeOK carries the measurement back.
	MsgProbe   = "m_probe"
	MsgProbeOK = "m_probe_ok"
	// MsgDone reports a finished query to its origin (one-way; the
	// origin's query deadline covers a lost report).
	MsgDone = "m_done"
	// MsgBye is a graceful leaver's goodbye to its ring members.
	MsgBye = "m_bye"
)

// MeridianConfig parameterises the protocol. Ring geometry and β follow
// the static implementation's paper defaults.
type MeridianConfig struct {
	// RingBase, RingMult, NumRings, RingSize define the concentric
	// latency rings, as in the static implementation.
	RingBase float64
	RingMult float64
	NumRings int
	RingSize int
	// Beta is the query reduction threshold β.
	Beta float64
	// CandidatesPerNode is how many live members a joining node pings to
	// fill its rings (its gossip budget).
	CandidatesPerNode int
	// RPCTimeout bounds each individual RPC (ping, probe, handoff).
	RPCTimeout time.Duration
	// QueryDeadline bounds a whole query at the origin; a query that has
	// not reported back by then fails.
	QueryDeadline time.Duration
	// MaxHops caps query forwarding, a loop backstop.
	MaxHops int
	// Retry is the per-RPC retry policy applied to query handoffs and
	// ring-member probes. The zero value (the default) disables retries,
	// reproducing the historical behavior bit for bit.
	Retry Policy
}

// DefaultMeridianConfig mirrors the static paper parameters plus runtime
// bounds.
func DefaultMeridianConfig() MeridianConfig {
	return MeridianConfig{
		RingBase:          1,
		RingMult:          2,
		NumRings:          9,
		RingSize:          16,
		Beta:              0.5,
		CandidatesPerNode: 192,
		RPCTimeout:        2 * time.Second,
		QueryDeadline:     30 * time.Second,
		MaxHops:           64,
	}
}

// meridianState is one member's protocol state. Ring membership is a
// uniform reservoir sample of the candidates the node has measured —
// the static implementation's SelectRandom baseline, which is the honest
// choice here: under churn there is no stable candidate pool to run the
// hypervolume selection over, and under the clustering condition the
// diversity machinery is blind anyway (the static ablation shows it).
type meridianState struct {
	rings    [][]NodeID
	ringSeen []int // candidates ever offered to each ring, for reservoir sampling
	ringLat  map[NodeID]float64
	src      *rng.Source
}

// queryMsg is the state a walking query carries.
type queryMsg struct {
	QID     uint64
	Origin  NodeID
	Target  NodeID
	D       float64 // current node's measured distance to target; <0 = unmeasured
	BestID  NodeID
	BestLat float64
	Hops    int
	Visited []NodeID
}

// probeMsg asks the receiver to measure its RTT to Target.
type probeMsg struct{ Target NodeID }

// probeOKMsg reports the measurement (OK=false: the target ping timed out).
type probeOKMsg struct {
	RTTms float64
	OK    bool
}

// doneMsg reports a finished query to its origin.
type doneMsg struct {
	QID     uint64
	BestID  NodeID
	BestLat float64
	Hops    int
}

// QueryResult is the outcome of one message-level closest-node query.
type QueryResult struct {
	// Peer is the returned member (-1 when the query failed or timed out).
	Peer int
	// LatencyMs is the measured RTT between target and Peer.
	LatencyMs float64
	// Probes is the number of query-time pings the query cost. It is
	// measured as the runtime counter's delta, so it is exact only while
	// queries do not overlap in virtual time.
	Probes int64
	// Hops is the number of members that carried the query.
	Hops int
	// Elapsed is the virtual time from issue to report.
	Elapsed time.Duration
	// Completed is false when the query deadline expired first.
	Completed bool
}

// pendingQuery is origin-side bookkeeping for one outstanding query.
type pendingQuery struct {
	started       time.Duration
	probesAtStart int64
	done          func(QueryResult)
}

// Meridian runs the protocol over a Runtime: it tracks live membership,
// installs handlers on joining nodes, and originates queries.
type Meridian struct {
	rt      Transport
	cfg     MeridianConfig
	src     *rng.Source
	states  map[NodeID]*meridianState
	order   []NodeID // sorted live member list, for deterministic sampling
	queries map[uint64]*pendingQuery
	nextQID uint64
}

// NewMeridian creates the protocol instance (with no members yet).
func NewMeridian(rt Transport, cfg MeridianConfig, seed int64) *Meridian {
	if cfg.RingSize <= 0 || cfg.NumRings <= 0 || cfg.RingBase <= 0 || cfg.RingMult <= 1 || cfg.Beta <= 0 {
		panic(fmt.Sprintf("p2p: invalid meridian config %+v", cfg))
	}
	if err := cfg.Retry.Validate(); err != nil {
		panic(err)
	}
	return &Meridian{
		rt:      rt,
		cfg:     cfg,
		src:     rng.New(seed).Split("meridian"),
		states:  make(map[NodeID]*meridianState),
		queries: make(map[uint64]*pendingQuery),
	}
}

// LiveMembers returns the current membership (sorted, a copy).
func (m *Meridian) LiveMembers() []int {
	out := make([]int, len(m.order))
	for i, id := range m.order {
		out[i] = int(id)
	}
	return out
}

// NumMembers returns the live member count.
func (m *Meridian) NumMembers() int { return len(m.order) }

// isLiveMember reports whether id is currently in the overlay.
func (m *Meridian) isLiveMember(id NodeID) bool { return m.states[id] != nil }

// RingsOf exposes a member's rings (tests).
func (m *Meridian) RingsOf(id NodeID) [][]NodeID {
	if st := m.states[id]; st != nil {
		return st.rings
	}
	return nil
}

// Join brings a node up as an overlay member: it registers handlers,
// enters the membership, and pings a gossip sample of existing members to
// fill its rings (maintenance probes; pongs install ring entries as they
// arrive, so a freshly joined node's rings are thin until the wire answers).
func (m *Meridian) Join(id NodeID) {
	if _, ok := m.states[id]; ok {
		return
	}
	n := m.rt.AddNode(id)
	if !n.Alive() {
		n.Restart() // explicit protocol (re)entry brings the node back up
	}
	st := &meridianState{
		rings:    make([][]NodeID, m.cfg.NumRings),
		ringSeen: make([]int, m.cfg.NumRings),
		ringLat:  make(map[NodeID]float64),
		src:      m.src.SplitN("member", int(id)),
	}
	sample := m.gossipSample(id)
	m.states[id] = st
	m.insertMember(id)
	n.Handle(MsgQuery, m.handleQuery)
	n.Handle(MsgProbe, m.handleProbe)
	n.Handle(MsgBye, m.handleBye)
	for _, c := range sample {
		c := c
		n.Ping(c, m.cfg.RPCTimeout, true, func(rtt float64, ok bool) {
			if ok && m.states[id] != nil {
				m.install(st, c, rtt)
			}
		})
	}
}

// Leave takes a member down. A graceful leaver says goodbye to its ring
// members first (the messages survive it on the wire); a crash just goes
// silent and its peers discover the death by timeout.
func (m *Meridian) Leave(id NodeID, graceful bool) {
	st := m.states[id]
	if st == nil {
		return
	}
	n := m.rt.Node(id)
	if graceful && n != nil && n.Alive() {
		for _, peer := range st.ringPeers() {
			n.Send(peer, MsgBye, nil)
		}
	}
	delete(m.states, id)
	m.removeMember(id)
	if n != nil {
		n.Stop()
	}
}

// insertMember keeps order sorted.
func (m *Meridian) insertMember(id NodeID) {
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
	if i < len(m.order) && m.order[i] == id {
		return
	}
	m.order = append(m.order, 0)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = id
}

func (m *Meridian) removeMember(id NodeID) {
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
	if i < len(m.order) && m.order[i] == id {
		m.order = append(m.order[:i:i], m.order[i+1:]...)
	}
}

// gossipSample picks the members a joiner measures, uniformly without
// replacement from the live membership.
func (m *Meridian) gossipSample(self NodeID) []NodeID {
	budget := m.cfg.CandidatesPerNode
	pool := make([]NodeID, 0, len(m.order))
	for _, c := range m.order {
		if c != self {
			pool = append(pool, c)
		}
	}
	if len(pool) <= budget {
		return pool
	}
	perm := m.src.Perm(len(pool))
	out := make([]NodeID, budget)
	for i := range out {
		out[i] = pool[perm[i]]
	}
	return out
}

// ringIndex maps a latency to its ring, as in the static implementation.
func (m *Meridian) ringIndex(ms float64) int {
	if ms < m.cfg.RingBase {
		return 0
	}
	i := 1 + int(math.Log(ms/m.cfg.RingBase)/math.Log(m.cfg.RingMult))
	if i >= m.cfg.NumRings {
		i = m.cfg.NumRings - 1
	}
	return i
}

// install offers a measured candidate to its ring, reservoir-sampling when
// the ring is full so membership stays a uniform sample of everything the
// node has seen.
func (m *Meridian) install(st *meridianState, c NodeID, rtt float64) {
	if _, ok := st.ringLat[c]; ok {
		st.ringLat[c] = rtt
		return
	}
	r := m.ringIndex(rtt)
	st.ringSeen[r]++
	if len(st.rings[r]) < m.cfg.RingSize {
		st.ringLat[c] = rtt
		st.rings[r] = append(st.rings[r], c)
		return
	}
	if k := st.src.Intn(st.ringSeen[r]); k < m.cfg.RingSize {
		delete(st.ringLat, st.rings[r][k])
		st.ringLat[c] = rtt
		st.rings[r][k] = c
	}
}

// evict drops a peer (found dead) from a member's rings.
func (st *meridianState) evict(peer NodeID) {
	if _, ok := st.ringLat[peer]; !ok {
		return
	}
	delete(st.ringLat, peer)
	for r, ring := range st.rings {
		for i, id := range ring {
			if id == peer {
				st.rings[r] = append(ring[:i:i], ring[i+1:]...)
				break
			}
		}
	}
}

// ringPeers returns all current ring members, sorted.
func (st *meridianState) ringPeers() []NodeID {
	out := make([]NodeID, 0, len(st.ringLat))
	for id := range st.ringLat {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// handleBye evicts a graceful leaver.
func (m *Meridian) handleBye(n *Node, env Envelope) {
	if st := m.states[n.ID]; st != nil {
		st.evict(env.From)
	}
}

// handleProbe measures the RTT to the requested target and reports it.
// The ping is a query-time probe: it exists only because some query asked.
func (m *Meridian) handleProbe(n *Node, env Envelope) {
	pm := env.Payload.(probeMsg)
	n.Ping(pm.Target, m.cfg.RPCTimeout, false, func(rtt float64, ok bool) {
		if n.Alive() {
			n.Reply(env, MsgProbeOK, probeOKMsg{RTTms: rtt, OK: ok})
		}
	})
}

// FindNearest originates a closest-node query for target from the client
// node (typically the target itself: "find the member closest to me").
// done fires exactly once, on report or deadline.
func (m *Meridian) FindNearest(client, target NodeID, done func(QueryResult)) {
	n := m.rt.AddNode(client)
	n.Handle(MsgDone, m.handleDone)
	m.nextQID++
	qid := m.nextQID
	m.queries[qid] = &pendingQuery{
		started:       m.rt.Now(client),
		probesAtStart: m.rt.SerialMetrics().QueryProbes,
		done:          done,
	}
	m.rt.After(client, m.cfg.QueryDeadline, func() {
		pq, ok := m.queries[qid]
		if !ok {
			return
		}
		delete(m.queries, qid)
		pq.done(QueryResult{
			Peer:      -1,
			Probes:    m.rt.SerialMetrics().QueryProbes - pq.probesAtStart,
			Elapsed:   m.rt.Now(client) - pq.started,
			Completed: false,
		})
	})
	q := queryMsg{QID: qid, Origin: client, Target: target, D: -1, BestID: -1, BestLat: math.Inf(1)}
	m.startQuery(n, q, 3)
}

// startQuery hands the query to a random live member, retrying a few
// times if the chosen entry point does not ack.
func (m *Meridian) startQuery(n *Node, q queryMsg, attempts int) {
	if _, ok := m.queries[q.QID]; !ok {
		return // deadline already fired
	}
	if attempts <= 0 || len(m.order) == 0 {
		m.reportDone(q.QID, doneMsg{QID: q.QID, BestID: q.BestID, BestLat: q.BestLat}, m.rt.Now(n.ID))
		return
	}
	start := m.order[m.src.Intn(len(m.order))]
	n.RequestPolicy(start, MsgQuery, q, m.cfg.RPCTimeout, m.cfg.Retry,
		func(Envelope) {},
		func() { m.startQuery(n, q, attempts-1) })
}

// handleDone resolves the origin-side pending query.
func (m *Meridian) handleDone(n *Node, env Envelope) {
	m.reportDone(env.Payload.(doneMsg).QID, env.Payload.(doneMsg), m.rt.Now(n.ID))
}

func (m *Meridian) reportDone(qid uint64, dm doneMsg, now time.Duration) {
	pq, ok := m.queries[qid]
	if !ok {
		return // deadline fired, or a duplicate report from a split walk
	}
	delete(m.queries, qid)
	res := QueryResult{
		Peer:      int(dm.BestID),
		LatencyMs: dm.BestLat,
		Probes:    m.rt.SerialMetrics().QueryProbes - pq.probesAtStart,
		Hops:      dm.Hops,
		Elapsed:   now - pq.started,
		Completed: true,
	}
	if dm.BestID < 0 {
		res.LatencyMs = 0
	}
	pq.done(res)
}

// handleQuery runs one hop of the walk at a member.
func (m *Meridian) handleQuery(n *Node, env Envelope) {
	st := m.states[n.ID]
	if st == nil {
		return // no longer a member: no ack, the forwarder will time out
	}
	n.Reply(env, MsgQueryAck, nil)
	q := env.Payload.(queryMsg)
	q.Visited = append(append([]NodeID(nil), q.Visited...), n.ID)
	if q.D >= 0 {
		// Forwarded to us with our distance already measured by the
		// probe phase that chose us, as in the static walk.
		m.probePhase(n, st, q)
		return
	}
	if q.Target == n.ID {
		// The entry point is the searcher itself (the searcher can be a
		// member): it is not a candidate for its own query and has no
		// distance estimate yet, so every ring member is a first-hop
		// candidate.
		q.D = math.Inf(1)
		m.probePhase(n, st, q)
		return
	}
	pingAt := m.rt.Now(n.ID)
	n.Ping(q.Target, m.cfg.RPCTimeout, false, func(rtt float64, ok bool) {
		if rec := m.rt.FlightRecorder(); rec != nil {
			out := obs.HopOK
			if !ok {
				out = obs.HopTimeout
			}
			rec.Record(obs.Hop{Lookup: q.QID, Scheme: "meridian", Type: MsgPing,
				From: int(n.ID), To: int(q.Target), At: pingAt, RTTms: rtt, Outcome: out})
		}
		if !n.Alive() || m.states[n.ID] == nil {
			return
		}
		if !ok {
			m.finish(n, q)
			return
		}
		q.D = rtt
		if rtt < q.BestLat {
			q.BestID, q.BestLat = n.ID, rtt
		}
		m.probePhase(n, st, q)
	})
}

// probeReport is one candidate's answer in a probe phase.
type probeReport struct {
	id  NodeID
	rtt float64
}

// probePhase asks ring members at about the target's distance to probe it,
// then advances the walk on the best report.
func (m *Meridian) probePhase(n *Node, st *meridianState, q queryMsg) {
	lo, hi := (1-m.cfg.Beta)*q.D, (1+m.cfg.Beta)*q.D
	visited := make(map[NodeID]bool, len(q.Visited))
	for _, v := range q.Visited {
		visited[v] = true
	}
	var cands []NodeID
	for _, c := range st.ringPeers() {
		// Suspect peers (repeated exhausted retries) are demoted out of the
		// probe set, and the searcher is never a candidate for its own
		// query; with no distance estimate yet (q.D infinite) every ring
		// member is in band.
		if c == q.Target {
			continue
		}
		if l := st.ringLat[c]; (math.IsInf(q.D, 1) || (l >= lo && l <= hi)) && !visited[c] && !n.Suspect(c, m.cfg.Retry) {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		m.finish(n, q)
		return
	}

	pending := len(cands)
	var reports []probeReport
	qq := q // shared across the per-candidate closures of this phase
	settle := func() {
		pending--
		if pending > 0 {
			return
		}
		if !n.Alive() || m.states[n.ID] == nil {
			return
		}
		sort.Slice(reports, func(i, j int) bool {
			if reports[i].rtt != reports[j].rtt {
				return reports[i].rtt < reports[j].rtt
			}
			return reports[i].id < reports[j].id
		})
		m.advance(n, qq, reports)
	}
	for _, c := range cands {
		c := c
		n.RequestPolicy(c, MsgProbe, probeMsg{Target: q.Target}, m.cfg.RPCTimeout, m.cfg.Retry,
			func(rep Envelope) {
				pm := rep.Payload.(probeOKMsg)
				if pm.OK {
					reports = append(reports, probeReport{id: c, rtt: pm.RTTms})
					if pm.RTTms < qq.BestLat {
						qq.BestID, qq.BestLat = c, pm.RTTms
					}
				}
				settle()
			},
			func() {
				st.evict(c) // dead or unreachable: drop from rings
				settle()
			})
	}
}

// advance forwards the query to the best reporter when it improves the
// distance by β, falling back through the sorted reports when a handoff
// times out; with no acceptable hop left the walk ends here.
func (m *Meridian) advance(n *Node, q queryMsg, reports []probeReport) {
	m.advanceFrom(n, q, reports, false)
}

// advanceFrom is advance with the fallback state threaded through:
// alternate marks a handoff attempted only because the preferred next hop
// timed out, which the flight recorder tags HopAlternate on success.
func (m *Meridian) advanceFrom(n *Node, q queryMsg, reports []probeReport, alternate bool) {
	if q.Hops >= m.cfg.MaxHops || len(reports) == 0 || reports[0].rtt > m.cfg.Beta*q.D {
		m.finish(n, q)
		return
	}
	next := reports[0]
	rest := reports[1:]
	fwd := q
	fwd.D = next.rtt
	fwd.Hops++
	hopStart := m.rt.Now(n.ID)
	n.RequestPolicy(next.id, MsgQuery, fwd, m.cfg.RPCTimeout, m.cfg.Retry,
		func(Envelope) {
			if rec := m.rt.FlightRecorder(); rec != nil {
				out := obs.HopOK
				if alternate {
					out = obs.HopAlternate
				}
				rec.Record(obs.Hop{Lookup: q.QID, Scheme: "meridian", Type: MsgQuery,
					From: int(n.ID), To: int(next.id), At: hopStart,
					RTTms: msOf(m.rt.Now(n.ID) - hopStart), Outcome: out})
			}
		},
		func() {
			if rec := m.rt.FlightRecorder(); rec != nil {
				rec.Record(obs.Hop{Lookup: q.QID, Scheme: "meridian", Type: MsgQuery,
					From: int(n.ID), To: int(next.id), At: hopStart, Outcome: obs.HopTimeout})
			}
			if st := m.states[n.ID]; st != nil {
				st.evict(next.id)
			}
			if !n.Alive() {
				return
			}
			m.advanceFrom(n, q, rest, true)
		})
}

// finish reports the walk's best to the origin (one-way; the origin's
// deadline covers a lost report). A member reporting about itself still
// goes over the wire — the origin is in general another host.
func (m *Meridian) finish(n *Node, q queryMsg) {
	n.Send(q.Origin, MsgDone, doneMsg{QID: q.QID, BestID: q.BestID, BestLat: q.BestLat, Hops: q.Hops})
}
