package p2p

import (
	"fmt"
	"time"
)

// This file ports the Section 5 expanding multicast search to the message
// runtime: peers subscribe to a well-known group, a searcher multicasts
// find-requests with a latency scope that grows per round (standing in for
// TTL scope), and subscribed peers answer with a one-way found-report. The
// earliest report of the first answered round wins — over a real wire that
// is exactly the closest responsive peer, unless loss ate its report.

// Expanding-search wire message types.
const (
	// MsgFind is the scoped multicast query.
	MsgFind = "x_find"
	// MsgFound is a responder's one-way answer.
	MsgFound = "x_found"
)

// ExpandGroup is the well-known multicast group the search uses.
const ExpandGroup = "nearest-peer"

// ExpandConfig tunes the expanding search.
type ExpandConfig struct {
	// InitialRadiusMs is round 0's latency scope.
	InitialRadiusMs float64
	// RadiusMult grows the scope per round.
	RadiusMult float64
	// Rounds bounds the expansion.
	Rounds int
	// RoundTimeout is how long the searcher waits out each round; it must
	// exceed the largest scope or answers arrive after the round closed
	// (they still count — a late answer resolves the search when it lands).
	RoundTimeout time.Duration
	// Retry re-runs the whole expansion (all rounds, after backoff) when
	// the last round closes unanswered, up to the policy's attempt budget —
	// the recovery for a burst that ate every found-report. The zero value
	// (the default) disables it, reproducing the historical behavior.
	Retry Policy
}

// DefaultExpandConfig starts at 1 ms and quadruples for five rounds
// (1, 4, 16, 64, 256 ms scopes), waiting 400 ms per round.
func DefaultExpandConfig() ExpandConfig {
	return ExpandConfig{InitialRadiusMs: 1, RadiusMult: 4, Rounds: 5, RoundTimeout: 400 * time.Millisecond}
}

// findMsg is the multicast query payload. Round identifies the expansion
// round that sent this copy; responders echo it so the searcher can
// measure a late answer against the round that actually asked, not
// whatever round happens to be open when the answer lands.
type findMsg struct {
	SID   uint64
	From  NodeID
	Round int
}

// foundMsg is the answer payload, echoing the round it answers.
type foundMsg struct {
	SID   uint64
	Round int
}

// ExpandResult reports one search's outcome.
type ExpandResult struct {
	// Peer is the earliest responder (-1 when no round answered).
	Peer int
	// RTTms is the measured RTT to Peer (request plus report travel).
	RTTms float64
	// Rounds is how many rounds ran before the answer arrived.
	Rounds int
	// Messages is the number of multicast copies sent.
	Messages int
	// Elapsed is the virtual time from search start to resolution.
	Elapsed time.Duration
	// Found reports whether any peer answered.
	Found bool
}

// expandSearch is one in-flight search at its searcher.
type expandSearch struct {
	sid      uint64
	client   NodeID
	round    int
	attempt  int // completed full sweeps (retry policy)
	started  time.Duration
	sentAt   []time.Duration // sentAt[tag] = virtual time the tagged multicast went out
	messages int
	done     func(ExpandResult)
}

// expandSlot is a client's search state: the active search (nil when idle —
// a client runs at most one search at a time) and the client-local SID
// counter. Keeping both per client is what lets searches on different
// kernel shards proceed with no shared map or counter: every touch happens
// in an event at the client, on the client's home shard.
type expandSlot struct {
	active  *expandSearch
	nextSID uint64
}

// Expanding runs expanding-ring searches over a Runtime. Members must
// Register; the searcher itself need not be a member.
type Expanding struct {
	rt       Transport
	cfg      ExpandConfig
	byClient []expandSlot // indexed by NodeID
}

// NewExpanding creates the protocol instance.
func NewExpanding(rt Transport, cfg ExpandConfig) *Expanding {
	if cfg.Rounds <= 0 || cfg.RoundTimeout <= 0 || cfg.InitialRadiusMs <= 0 || cfg.RadiusMult <= 1 {
		panic(fmt.Sprintf("p2p: invalid expand config %+v", cfg))
	}
	if err := cfg.Retry.Validate(); err != nil {
		panic(err)
	}
	return &Expanding{rt: rt, cfg: cfg, byClient: make([]expandSlot, rt.Population())}
}

// Register subscribes a node to the search group and installs the
// responder handler.
func (e *Expanding) Register(id NodeID) {
	n := e.rt.AddNode(id)
	e.rt.JoinGroup(ExpandGroup, id)
	n.Handle(MsgFind, func(n *Node, env Envelope) {
		fm := env.Payload.(findMsg)
		n.Send(env.From, MsgFound, foundMsg{SID: fm.SID, Round: fm.Round})
	})
}

// Deregister unsubscribes a node (graceful leave; a crashed node is simply
// never delivered to, but still counts as a sent copy, like a dead host
// in a real multicast group).
func (e *Expanding) Deregister(id NodeID) { e.rt.LeaveGroup(ExpandGroup, id) }

// Search runs the expanding search from client. done fires exactly once:
// with the earliest responder, or unfound after the last round times out.
// Must run as an event at the client (or setup code): a client's slot is
// home-shard state.
func (e *Expanding) Search(client NodeID, done func(ExpandResult)) {
	n := e.rt.AddNode(client)
	slot := &e.byClient[client]
	slot.nextSID++
	s := &expandSearch{sid: slot.nextSID, client: client, started: e.rt.Now(client), done: done}
	slot.active = s
	n.Handle(MsgFound, func(n *Node, env Envelope) {
		fm := env.Payload.(foundMsg)
		sr := e.byClient[n.ID].active
		if sr == nil || sr.sid != fm.SID {
			return // already resolved; later (= farther) answers lose
		}
		e.byClient[n.ID].active = nil
		now := e.rt.Now(n.ID)
		// Measure against the round that sent the find this answers — a
		// late answer (allowed: "they still count") must not be timed
		// against a newer round's start, which would under-report the RTT.
		sr.done(ExpandResult{
			Peer:     int(env.From),
			RTTms:    msOf(now - sr.sentAt[fm.Round]),
			Rounds:   sr.round, // round counts multicasts already sent
			Messages: sr.messages,
			Elapsed:  now - sr.started,
			Found:    true,
		})
	})
	e.runRound(s)
}

// runRound multicasts one round's scope and schedules the next.
func (e *Expanding) runRound(s *expandSearch) {
	if e.byClient[s.client].active != s {
		return
	}
	if s.round >= e.cfg.Rounds {
		if s.attempt+1 < e.cfg.Retry.Attempts {
			// Every round of this sweep closed unanswered: back off and
			// re-run the expansion from the smallest scope.
			s.attempt++
			s.round = 0
			e.rt.metricsAt(s.client).Retries++
			e.rt.After(s.client, e.cfg.Retry.backoff(s.client, s.sid, s.attempt), func() { e.runRound(s) })
			return
		}
		e.byClient[s.client].active = nil
		s.done(ExpandResult{Peer: -1, Rounds: e.cfg.Rounds, Messages: s.messages, Elapsed: e.rt.Now(s.client) - s.started, Found: false})
		return
	}
	radius := e.cfg.InitialRadiusMs
	for i := 0; i < s.round; i++ {
		radius *= e.cfg.RadiusMult
	}
	// The answer echoes this tag to index sentAt; it is sweep-global (not
	// the per-sweep round) so a retried sweep's rounds get fresh slots.
	tag := len(s.sentAt)
	s.sentAt = append(s.sentAt, e.rt.Now(s.client))
	s.messages += e.rt.Multicast(s.client, ExpandGroup, MsgFind, findMsg{SID: s.sid, From: s.client, Round: tag}, radius)
	s.round++
	e.rt.After(s.client, e.cfg.RoundTimeout, func() { e.runRound(s) })
}
