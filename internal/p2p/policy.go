// The retry policy layer: per-RPC retry-with-backoff on top of Node's
// single-attempt Request. The zero Policy disables everything — a call
// through RequestPolicy with a zero policy is bit-for-bit a plain Request,
// which is what keeps the unfaulted goldens byte-identical — and an
// enabled policy re-issues the request after deterministic backoff when an
// attempt times out, so a loss burst costs one backoff instead of a failed
// operation.
//
// Determinism: the jitter draw is a stateless hash of (node, call
// sequence, attempt) — no shared RNG stream — so retry timing is
// identical at any shard count and across runs, and the simulator's
// virtual-time behavior matches the live transports given the same call
// sequence.

package p2p

import (
	"fmt"
	"time"
)

// Policy configures per-RPC retries. The zero value disables retries
// (one attempt, caller's timeout), so embedding a Policy in a protocol
// config never changes behavior until a caller opts in.
type Policy struct {
	// Attempts is the total number of tries; values below 2 mean a single
	// attempt (retries disabled).
	Attempts int
	// BaseBackoff is the wait before the second attempt (default 50 ms
	// when enabled with none set).
	BaseBackoff time.Duration
	// Multiplier grows the backoff per attempt (default 2 when < 1).
	Multiplier float64
	// JitterFrac spreads each backoff by ±JitterFrac of itself, drawn
	// deterministically from (node, call, attempt).
	JitterFrac float64
	// PerTryTimeout bounds each attempt; 0 uses the caller's timeout
	// (and, through it, the transport default).
	PerTryTimeout time.Duration
	// DemoteAfter is how many consecutive exhausted calls mark a peer
	// suspect (Node.Suspicion); 0 means the default of 2.
	DemoteAfter int
}

// Enabled reports whether the policy actually retries.
func (p Policy) Enabled() bool { return p.Attempts > 1 }

// Validate checks the policy's knobs. JitterFrac must be a fraction in
// [0,1]: the jitter draw multiplies the backoff by 1 + JitterFrac*(2u-1)
// with u in [0,1), so any larger fraction can price a negative delay —
// a retry scheduled in the past. Durations must not be negative and a
// set Multiplier must be at least 1 (zero means "use the default").
// Protocol constructors reject an invalid embedded policy up front, so a
// typo'd knob fails at construction instead of surfacing as a kernel
// assert deep in a retry chain.
func (p Policy) Validate() error {
	if p.JitterFrac < 0 || p.JitterFrac > 1 {
		return fmt.Errorf("p2p: retry jitter fraction %v out of [0,1]", p.JitterFrac)
	}
	if p.BaseBackoff < 0 {
		return fmt.Errorf("p2p: negative retry base backoff %v", p.BaseBackoff)
	}
	if p.PerTryTimeout < 0 {
		return fmt.Errorf("p2p: negative retry per-try timeout %v", p.PerTryTimeout)
	}
	if p.Multiplier != 0 && p.Multiplier < 1 {
		return fmt.Errorf("p2p: retry backoff multiplier %v below 1", p.Multiplier)
	}
	return nil
}

// demoteAfter is the suspicion threshold with the default applied.
func (p Policy) demoteAfter() int {
	if p.DemoteAfter > 0 {
		return p.DemoteAfter
	}
	return 2
}

// retryMix hashes (node, call sequence, attempt) to [0, 1) — the same
// splitmix-style finalizer the fault plane uses, so jitter needs no
// stateful RNG and is identical on every transport and shard count.
func retryMix(vals ...uint64) float64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= (v + 1) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 30)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}

// backoff prices the wait before attempt+1 (attempt counts completed
// tries, so the first backoff is attempt 1).
func (p Policy) backoff(id NodeID, seq uint64, attempt int) time.Duration {
	b := p.BaseBackoff
	if b <= 0 {
		b = 50 * time.Millisecond
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(b)
	for i := 1; i < attempt; i++ {
		d *= mult
	}
	if p.JitterFrac > 0 {
		u := retryMix(uint64(id), seq, uint64(attempt))
		d *= 1 + p.JitterFrac*(2*u-1)
	}
	if d < 0 {
		// Defense in depth: Validate rejects JitterFrac > 1, but a policy
		// that skipped validation must still never schedule in the past.
		d = 0
	}
	return time.Duration(d)
}

// RequestPolicy is Request with a retry policy: a disabled policy issues
// exactly one attempt with the given timeout (or the policy's per-try
// timeout when set); an enabled one re-issues the request after backoff
// each time an attempt times out, up to the attempt budget. onReply fires
// on the first response; onTimeout fires once, after the last attempt
// expires. A reply clears the peer's suspicion tally, a fully exhausted
// call increments it (Suspicion). Retry timers die across Stop/Restart —
// a node that crashed mid-backoff does not resurrect old request chains.
// The returned MsgID is the first attempt's.
func (n *Node) RequestPolicy(to NodeID, typ string, payload any, timeout time.Duration, pol Policy, onReply func(Envelope), onTimeout func()) uint64 {
	perTry := timeout
	if pol.PerTryTimeout > 0 {
		perTry = pol.PerTryTimeout
	}
	if !pol.Enabled() {
		return n.Request(to, typ, payload, perTry, onReply, onTimeout)
	}
	n.retrySeq++
	seq := n.retrySeq
	gen := n.gen
	wrapReply := func(env Envelope) {
		n.clearSuspicion(to)
		if onReply != nil {
			onReply(env)
		}
	}
	var attempt func(k int) uint64
	attempt = func(k int) uint64 {
		return n.Request(to, typ, payload, perTry, wrapReply, func() {
			if k+1 >= pol.Attempts {
				n.noteSuspicion(to)
				if onTimeout != nil {
					onTimeout()
				}
				return
			}
			n.rt.After(n.ID, pol.backoff(n.ID, seq, k+1), func() {
				if n.gen != gen || !n.alive {
					return // crashed or restarted since: the chain dies here
				}
				n.rt.metricsAt(n.ID).Retries++
				if r, ok := n.rt.(*Runtime); ok && r.obsReg != nil {
					r.obsReg.NoteRetry()
				}
				attempt(k + 1)
			})
		})
	}
	return attempt(0)
}

// noteSuspicion tallies one fully exhausted call against a peer.
func (n *Node) noteSuspicion(peer NodeID) {
	if n.suspicion == nil {
		n.suspicion = make(map[NodeID]int)
	}
	n.suspicion[peer]++
}

// clearSuspicion resets a peer's tally (it answered).
func (n *Node) clearSuspicion(peer NodeID) {
	if n.suspicion != nil {
		delete(n.suspicion, peer)
	}
}

// Suspicion returns how many consecutive RequestPolicy calls to peer
// exhausted every attempt without an answer. Protocols use it to demote
// repeatedly failing peers (try them last, or not at all).
func (n *Node) Suspicion(peer NodeID) int { return n.suspicion[peer] }

// Suspect reports whether peer has crossed the policy's demotion
// threshold.
func (n *Node) Suspect(peer NodeID, pol Policy) bool {
	return pol.Enabled() && n.Suspicion(peer) >= pol.demoteAfter()
}
