package p2p

// Fuzz target for the chord hot path's scratch-buffer closestPreceding:
// candidate collection, dedup and the insertion sort on precomputed ring
// distances replaced a sort.Slice over a map-deduped slice in the PR-4
// de-mapping, and this target pins the two against each other over
// arbitrary finger/successor contents. The seed corpus under testdata/fuzz
// replays as ordinary tests in every `go test` run.

import (
	"sort"
	"sync"
	"testing"

	"nearestpeer/internal/dht"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/sim"
)

// fuzzChordPop is the fuzz ring's matrix population: node ids decoded from
// fuzz bytes land in [0, fuzzChordPop).
const fuzzChordPop = 32

var (
	fuzzChordOnce sync.Once
	fuzzChord     *Chord
)

// fuzzChordInstance returns a process-wide Chord whose only use is
// closestPreceding (pure over its arguments plus the cached ring hashes).
func fuzzChordInstance() *Chord {
	fuzzChordOnce.Do(func() {
		kernel := sim.New()
		rt := New(kernel, latency.NewDense(fuzzChordPop), Config{}, 1)
		fuzzChord = NewChord(rt, DefaultChordConfig(), 1)
	})
	return fuzzChord
}

// refClosestPreceding is the naive reference: collect candidates strictly
// between self and the key from fingers then successors, dedup with a map,
// sort with sort.Slice by (distance-to-key, id) — the exact pre-PR-4
// semantics the scratch-buffer version must reproduce.
func refClosestPreceding(c *Chord, st *chordState, self NodeID, key uint64) []NodeID {
	var out []NodeID
	seen := make(map[NodeID]bool)
	for _, list := range [][]NodeID{st.fingers, st.succs} {
		for _, id := range list {
			if id == NoNode || id == self || seen[id] {
				continue
			}
			seen[id] = true
			if dht.Between(c.RingIDOf(id), c.RingIDOf(self), key) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di := dht.RingDist(c.RingIDOf(out[i]), key)
		dj := dht.RingDist(c.RingIDOf(out[j]), key)
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// decodeNodes maps fuzz bytes onto a node list: each byte yields either
// NoNode (so sparse finger tables are explored) or an id in the matrix
// population, duplicates very much included.
func decodeNodes(data []byte, n int) []NodeID {
	out := make([]NodeID, 0, n)
	for i := 0; i < n && i < len(data); i++ {
		v := int(data[i]) % (fuzzChordPop + 1)
		if v == fuzzChordPop {
			out = append(out, NoNode)
		} else {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// FuzzClosestPreceding drives the scratch-buffer routine against the naive
// reference over fuzz-shaped routing state.
func FuzzClosestPreceding(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 32, 32, 0, 0, 31}, uint64(1<<63), uint8(0))
	f.Add([]byte{}, uint64(0), uint8(3))
	f.Add([]byte{32, 32, 32, 32}, uint64(^uint64(0)), uint8(31))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 9}, uint64(12345), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, key uint64, selfRaw uint8) {
		c := fuzzChordInstance()
		self := NodeID(int(selfRaw) % fuzzChordPop)
		split := len(data) / 2
		st := &chordState{
			ringID:  c.RingIDOf(self),
			fingers: decodeNodes(data[:split], 64),
			succs:   decodeNodes(data[split:], 8),
		}
		got := c.closestPreceding(st, self, key)
		want := refClosestPreceding(c, st, self, key)
		if len(got) != len(want) {
			t.Fatalf("closestPreceding returned %v, reference %v (fingers %v, succs %v, key %d, self %d)",
				got, want, st.fingers, st.succs, key, self)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("closestPreceding[%d] = %d, reference %d (full: %v vs %v)", i, got[i], want[i], got, want)
			}
		}
	})
}
