package p2p

import (
	"fmt"
	"math"
	"time"

	"nearestpeer/internal/rng"
)

// ChurnConfig parameterises the membership process. Each driven node
// alternates online sessions and offline gaps; with exponential gaps the
// rejoin stream is a Poisson process, the standard churn model.
type ChurnConfig struct {
	// MeanSession is the mean online session length.
	MeanSession time.Duration
	// SessionSigma, when > 0, draws sessions from a log-normal with this
	// sigma (heavy-tailed session times, as measured p2p systems show)
	// with the mean matched to MeanSession; 0 keeps sessions exponential.
	SessionSigma float64
	// MeanOffline is the mean downtime before a node rejoins.
	MeanOffline time.Duration
	// GracefulProb is the probability a departure is graceful (the node
	// tells its neighbours) rather than a crash (it just goes silent).
	GracefulProb float64
	// Horizon, when > 0, stops scheduling churn events past this virtual
	// time, letting the kernel's event queue drain. 0 churns forever —
	// drive the kernel with RunUntil or Stop in that case.
	Horizon time.Duration
}

// DefaultChurnConfig returns a moderately harsh process: 2-minute mean
// sessions (log-normal, sigma 1 — most sessions short, a heavy tail long),
// 30 s mean downtime, and half of all departures are crashes.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		MeanSession:  2 * time.Minute,
		SessionSigma: 1,
		MeanOffline:  30 * time.Second,
		GracefulProb: 0.5,
	}
}

// Churn drives nodes up and down over virtual time. The protocol layered
// on the runtime observes membership through the two hooks; the generator
// itself only toggles node liveness.
type Churn struct {
	// OnLeave fires just before a node goes down. graceful reports
	// whether the node gets to say goodbye; on a crash the protocol hook
	// must not send anything on the node's behalf.
	OnLeave func(id NodeID, graceful bool)
	// OnJoin fires just after a node comes back up.
	OnJoin func(id NodeID)

	// Joins, Leaves and Crashes count membership events (Crashes ⊆ Leaves).
	Joins, Leaves, Crashes int

	rt  *Runtime
	cfg ChurnConfig
	src *rng.Source
}

// NewChurn creates a generator with its own random stream. Serial-only:
// churn toggles liveness and live-count state every shard reads, and its
// single random stream has no K-invariant draw order.
func NewChurn(rt *Runtime, cfg ChurnConfig, seed int64) *Churn {
	if cfg.MeanSession <= 0 || cfg.MeanOffline <= 0 {
		panic(fmt.Sprintf("p2p: invalid churn config %+v", cfg))
	}
	if rt.Sharded() {
		panic("p2p: churn is serial-only")
	}
	return &Churn{rt: rt, cfg: cfg, src: rng.New(seed).Split("churn")}
}

// session draws one online session length.
func (c *Churn) session() time.Duration {
	mean := float64(c.cfg.MeanSession)
	if s := c.cfg.SessionSigma; s > 0 {
		// Match the log-normal mean exp(mu + s²/2) to MeanSession.
		mu := math.Log(mean) - s*s/2
		return time.Duration(c.src.LogNormal(mu, s))
	}
	return time.Duration(c.src.Exponential(mean))
}

// Drive starts the churn process for the given (currently live) nodes:
// each gets a session clock now, and alternates leave/rejoin from then on.
func (c *Churn) Drive(ids []NodeID) {
	for _, id := range ids {
		c.scheduleLeave(id)
	}
}

// after schedules fn unless the horizon cuts the chain.
func (c *Churn) after(d time.Duration, fn func()) bool {
	if h := c.cfg.Horizon; h > 0 && c.rt.Kernel.Now()+d > h {
		return false
	}
	c.rt.Kernel.After(d, fn)
	return true
}

func (c *Churn) scheduleLeave(id NodeID) {
	c.after(c.session(), func() {
		n := c.rt.Node(id)
		if n == nil {
			return
		}
		if !n.alive {
			// Something else already took the node down (an experiment
			// calling Stop or a protocol Leave mid-session): not a churn
			// leave — nothing to count, no OnLeave — but the churn process
			// keeps driving the node, or it would silently drop out of the
			// membership process forever (the mirror of the rejoin case
			// below).
			c.scheduleJoin(id)
			return
		}
		graceful := c.src.Bool(c.cfg.GracefulProb)
		c.Leaves++
		if !graceful {
			c.Crashes++
		}
		if c.OnLeave != nil {
			c.OnLeave(id, graceful)
		}
		n.Stop()
		c.scheduleJoin(id)
	})
}

func (c *Churn) scheduleJoin(id NodeID) {
	c.after(time.Duration(c.src.Exponential(float64(c.cfg.MeanOffline))), func() {
		n := c.rt.Node(id)
		if n == nil {
			return
		}
		// If something else already brought the node back up (an experiment
		// Restart()ing it mid-gap), this is not a churn join — nothing to
		// count, no OnJoin (whoever restarted it owns the protocol re-entry)
		// — but the churn process keeps driving the node either way: the
		// next leave must be scheduled, or the node would silently drop out
		// of the membership process forever.
		if !n.alive {
			n.Restart()
			c.Joins++
			if c.OnJoin != nil {
				c.OnJoin(id)
			}
		}
		c.scheduleLeave(id)
	})
}
