// Package p2p is a message-level node runtime on the discrete-event kernel:
// the repository's algorithms, which elsewhere run as synchronous function
// calls against a probe-counting latency matrix, here run as protocols —
// typed wire envelopes between per-node inboxes, request/response
// correlation through an inflight map, per-RPC timeouts, configurable
// packet loss, and a churn generator that drives membership over virtual
// time. The point is to re-measure the paper's cost claims under the
// dynamics real p2p systems have: under the clustering condition a search
// already degenerates into brute-force probing, and loss, timeouts and
// churn only raise the price of every probe.
//
// Three protocols run on the runtime:
//
//   - Meridian closest-node search (meridian.go): the Section 4 walk as
//     RPCs, with incremental ring maintenance under churn.
//   - The Section 5 expanding multicast search (expand.go): latency-scoped
//     multicast rounds standing in for TTL-scoped IP multicast.
//   - A Chord DHT (chord.go): the key-value substrate the Section 5 hint
//     mitigations assume the peers can host themselves — iterative
//     find-successor with per-hop timeouts and retry through alternate
//     candidates, successor-list repair, stabilize/notify rounds with
//     periodic cross-region self-lookups, passive finger learning,
//     replicated stores, and key migration on join. The UCL and IP-prefix
//     hint schemes (internal/ucl, internal/ipprefix) publish and resolve
//     their mappings over it as wire messages.
//
// Transport invariant: a request leg travels ⌊durOf(RTT)/2⌋ and a response
// leg the remainder, so a ping measured over messages equals the matrix
// entry exactly at nanosecond resolution — message-level and static
// experiments price a probe identically.
//
// The runtime is deliberately single-goroutine: all sends, deliveries,
// timeouts and handler executions are events on one sim.Sim kernel, so a
// fixed seed replays the exact event order (and `go test -race` has nothing
// to find by construction).
package p2p
