package p2p

import (
	"math"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/overlay"
	"nearestpeer/internal/sim"
)

// buildOverlay stands up a clustered matrix with a full Meridian
// membership and returns everything a query test needs.
func buildOverlay(t *testing.T, peers int, loss float64, seed int64) (*sim.Sim, *Runtime, *Meridian, latency.Matrix, []int, []int) {
	t.Helper()
	cfg := latency.DefaultClusteredConfig()
	cfg.TotalPeers = peers
	cfg.ENsPerCluster = 25
	m, _ := latency.BuildClustered(cfg, seed)
	kernel := sim.New()
	rt := New(kernel, m, Config{LossProb: loss}, seed)
	mer := NewMeridian(rt, DefaultMeridianConfig(), seed+1)
	members, targets := overlay.Split(m.N(), 20, seed+2)
	for _, id := range members {
		mer.Join(NodeID(id))
	}
	for _, id := range targets {
		rt.AddNode(NodeID(id))
	}
	kernel.Run() // drain the join pings so rings are built
	return kernel, rt, mer, m, members, targets
}

// runQueries issues queries sequentially in virtual time.
func runQueries(kernel *sim.Sim, mer *Meridian, targets []int, n int) []QueryResult {
	var out []QueryResult
	i := 0
	var step func()
	step = func() {
		if i >= n {
			return
		}
		tgt := NodeID(targets[i%len(targets)])
		i++
		mer.FindNearest(tgt, tgt, func(res QueryResult) {
			out = append(out, res)
			kernel.After(10*time.Millisecond, step)
		})
	}
	kernel.After(0, step)
	kernel.Run()
	return out
}

func TestMeridianRingsBuilt(t *testing.T) {
	_, rt, mer, _, members, _ := buildOverlay(t, 300, 0, 7)
	if mer.NumMembers() != len(members) {
		t.Fatalf("members %d, want %d", mer.NumMembers(), len(members))
	}
	if rt.Metrics.MaintProbes == 0 {
		t.Fatal("no maintenance probes issued during join")
	}
	filled := 0
	for _, id := range members {
		for _, ring := range mer.RingsOf(NodeID(id)) {
			filled += len(ring)
		}
	}
	if filled == 0 {
		t.Fatal("no ring entries installed")
	}
}

func TestMeridianQueryLossless(t *testing.T) {
	kernel, rt, mer, m, members, targets := buildOverlay(t, 300, 0, 7)
	results := runQueries(kernel, mer, targets, 25)
	if len(results) != 25 {
		t.Fatalf("%d results, want 25", len(results))
	}
	exact := 0
	for i, res := range results {
		if !res.Completed {
			t.Fatalf("query %d did not complete in a lossless network", i)
		}
		if res.Peer < 0 {
			t.Fatalf("query %d found no peer", i)
		}
		if res.Probes <= 0 {
			t.Fatalf("query %d reports %d probes", i, res.Probes)
		}
		tgt := targets[i%len(targets)]
		if res.Peer == overlay.TrueNearest(m, tgt, members).Peer {
			exact++
		}
		// The reported latency is the true RTT measured on the virtual
		// clock, which truncates to nanoseconds.
		if got, want := res.LatencyMs, m.LatencyMs(tgt, res.Peer); math.Abs(got-want) > 1e-3 {
			t.Fatalf("query %d latency %v, want %v", i, got, want)
		}
	}
	if exact == 0 {
		t.Fatal("no query found the exact nearest peer")
	}
	if rt.Metrics.Timeouts != 0 {
		t.Fatalf("%d timeouts in a lossless static network", rt.Metrics.Timeouts)
	}
}

func TestMeridianQueryUnderLoss(t *testing.T) {
	kernel, rt, mer, _, _, targets := buildOverlay(t, 300, 0.05, 7)
	results := runQueries(kernel, mer, targets, 25)
	completed := 0
	for _, res := range results {
		if res.Completed && res.Peer >= 0 {
			completed++
		}
	}
	if completed < 20 {
		t.Fatalf("only %d/25 queries completed under 5%% loss", completed)
	}
	if rt.Metrics.Timeouts == 0 {
		t.Fatal("5% loss produced no timeouts")
	}
}

func TestMeridianDeterministicReplay(t *testing.T) {
	run := func() (Metrics, []QueryResult) {
		kernel, rt, mer, _, _, targets := buildOverlay(t, 200, 0.1, 11)
		return rt.Metrics, runQueries(kernel, mer, targets, 10)
	}
	m1, r1 := run()
	m2, r2 := run()
	if m1 != m2 || len(r1) != len(r2) {
		t.Fatalf("same seed diverged: %+v vs %+v", m1, m2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("query %d diverged: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestMeridianLeaveEvictsAndQueriesSurvive(t *testing.T) {
	kernel, _, mer, _, members, targets := buildOverlay(t, 300, 0, 7)
	// Kill a third of the membership: half crashes, half graceful.
	for i, id := range members {
		if i%3 != 0 {
			continue
		}
		mer.Leave(NodeID(id), i%6 == 0)
	}
	kernel.Run() // drain goodbyes
	alive := mer.NumMembers()
	if alive >= len(members) {
		t.Fatal("membership did not shrink")
	}
	results := runQueries(kernel, mer, targets, 15)
	completed := 0
	for _, res := range results {
		if res.Completed && res.Peer >= 0 {
			completed++
			if !mer.isLiveMember(NodeID(res.Peer)) {
				t.Fatalf("query returned dead peer %d", res.Peer)
			}
		}
	}
	if completed < 12 {
		t.Fatalf("only %d/15 queries completed after mass departure", completed)
	}
}

func TestMeridianUnderChurn(t *testing.T) {
	kernel, rt, mer, _, members, targets := buildOverlay(t, 200, 0.02, 13)
	ccfg := ChurnConfig{
		MeanSession:  20 * time.Second,
		MeanOffline:  5 * time.Second,
		GracefulProb: 0.5,
		Horizon:      2 * time.Minute,
	}
	churn := NewChurn(rt, ccfg, 99)
	churn.OnLeave = func(id NodeID, graceful bool) { mer.Leave(id, graceful) }
	churn.OnJoin = func(id NodeID) { mer.Join(id) }
	ids := make([]NodeID, len(members))
	for i, id := range members {
		ids[i] = NodeID(id)
	}
	churn.Drive(ids)
	results := runQueries(kernel, mer, targets, 20)
	if churn.Leaves == 0 || churn.Joins == 0 {
		t.Fatalf("churn did not move: %d leaves, %d joins", churn.Leaves, churn.Joins)
	}
	completed := 0
	for _, res := range results {
		if res.Completed && res.Peer >= 0 {
			completed++
		}
	}
	if completed < 10 {
		t.Fatalf("only %d/20 queries completed under churn", completed)
	}
}
