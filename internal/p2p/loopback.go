package p2p

import (
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
)

// Loopback is the in-process live transport: real goroutines and
// wall-clock timers, with link delays priced from the same latency matrix
// the simulator uses. Envelopes never touch a socket — each send arms a
// wall-clock timer for the one-way delay and posts delivery to the event
// loop — so the protocol stack runs exactly as deployed (concurrent
// timers, real races between timeouts and replies) while links still obey
// the matrix. The differential conformance tests run seeded workloads here
// and check the results against the simulated oracle.
type Loopback struct {
	liveBase
	m    latency.Matrix
	loss *rng.Source
}

// NewLoopback creates a loopback transport over a latency matrix. seed
// drives the loss model draws (unused when cfg.LossProb is 0).
func NewLoopback(m latency.Matrix, cfg Config, seed int64) *Loopback {
	lb := &Loopback{m: m, loss: rng.New(seed).Split("loss")}
	lb.init(lb, m.N(), cfg)
	return lb
}

// Close stops the event loop. Timers and sends still in flight are
// discarded; Close does not wait for protocol quiescence.
func (lb *Loopback) Close() { lb.loop.close() }

// send prices the envelope's one-way delay from the matrix, applies the
// loss model, and arms a wall-clock timer that posts delivery to the
// event loop. Runs on the loop (all sends originate in Node methods).
func (lb *Loopback) send(env Envelope) {
	lb.metrics.MsgsSent++
	if lb.cfg.LossProb > 0 && lb.loss.Float64() < lb.cfg.LossProb {
		lb.metrics.MsgsLost++
		return
	}
	var fd faults.Decision
	if lb.flt != nil {
		fd = lb.flt.Decide(int(env.From), int(env.To), lb.faultNow())
		if fd.Drop {
			lb.metrics.MsgsLost++
			lb.metrics.FaultDropped++
			return
		}
	}
	d := oneWayDelay(lb.m.LatencyMs(int(env.From), int(env.To)), env.Resp)
	if fd.ExtraMs > 0 {
		d += durOf(fd.ExtraMs)
		lb.metrics.FaultDelayed++
	}
	deliver := func() {
		lb.loop.post(func() {
			n := lb.Node(env.To)
			if n == nil || !n.alive {
				lb.metrics.MsgsDead++
				return
			}
			lb.metrics.MsgsDelivered++
			n.deliver(env)
		})
	}
	copies := 1
	if fd.Dup {
		copies = 2
		lb.metrics.MsgsSent++
		lb.metrics.FaultDuplicated++
	}
	for c := 0; c < copies; c++ {
		if d <= 0 {
			deliver()
			continue
		}
		time.AfterFunc(d, func() { deliver() })
	}
}

// Multicast sends one-way copies of a message to every live group member
// within radiusMs of the sender (per the matrix), returning the copy
// count — the same latency-scoped semantics as the simulator's.
func (lb *Loopback) Multicast(from NodeID, gname, typ string, payload any, radiusMs float64) int {
	sent := 0
	for _, id := range lb.groupMembers(gname) {
		if id == from || lb.m.LatencyMs(int(from), int(id)) > radiusMs {
			continue
		}
		lb.metrics.MsgsMulticast++
		lb.send(Envelope{Type: typ, From: from, To: id, MsgID: lb.allocMsgIDFor(from), Payload: payload})
		sent++
	}
	return sent
}
