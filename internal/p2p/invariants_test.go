package p2p

// Property-based invariant layer for the runtime: a randomized op sequence
// (join/leave/crash/send/request/multicast/group churn, interleaved with
// partial kernel drains so envelopes and expiries are genuinely in flight
// at check time) with the runtime's structural invariants re-verified after
// every step:
//
//   - envelope-slab free list: in bounds, duplicate-free, every free slot
//     zeroed (deliverSlot releases payloads for GC before freeing);
//   - timeout slab: free list in bounds and duplicate-free, live records
//     unique per (node, msgID);
//   - inflight/expiry agreement: every parked request at a live node has
//     exactly one live expiry record (the reverse need not hold — an
//     answered request deletes its inflight entry and lets the expiry fire
//     into nothing; a crashed node's map is inert junk until Restart
//     replaces it, so only live nodes are held to the invariant);
//   - multicast sender indexes: (RTT, NodeID)-sorted and exactly equal to
//     a from-scratch rebuild over the current membership;
//   - dense node registry: slot i holds node i or nil.
//
// At full drain the slabs must be completely free and every inflight map
// empty — nothing leaks across a quiescent point.

import (
	"fmt"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// checkRuntimeInvariants verifies every structural invariant of the
// runtime's hot-path bookkeeping.
func checkRuntimeInvariants(t *testing.T, rt *Runtime, stage string) {
	t.Helper()

	// Per-shard envelope and timeout slabs (one shard on a serial runtime).
	live := make(map[timeoutRec]int)
	for si := range rt.sh {
		sc := &rt.sh[si]
		freeEnv := make(map[uint32]bool, len(sc.slabFree))
		for _, slot := range sc.slabFree {
			if int(slot) >= len(sc.slab) {
				t.Fatalf("%s: shard %d slab free slot %d out of bounds (slab len %d)", stage, si, slot, len(sc.slab))
			}
			if freeEnv[slot] {
				t.Fatalf("%s: shard %d slab free list holds slot %d twice", stage, si, slot)
			}
			freeEnv[slot] = true
			if sc.slab[slot] != (Envelope{}) {
				t.Fatalf("%s: shard %d freed slab slot %d not zeroed: %+v", stage, si, slot, sc.slab[slot])
			}
		}

		freeT := make(map[uint32]bool, len(sc.tFree))
		for _, slot := range sc.tFree {
			if int(slot) >= len(sc.tSlab) {
				t.Fatalf("%s: shard %d timeout free slot %d out of bounds (slab len %d)", stage, si, slot, len(sc.tSlab))
			}
			if freeT[slot] {
				t.Fatalf("%s: shard %d timeout free list holds slot %d twice", stage, si, slot)
			}
			freeT[slot] = true
		}
		for slot := range sc.tSlab {
			if !freeT[uint32(slot)] {
				live[sc.tSlab[slot]]++
			}
		}
	}
	for rec, n := range live {
		if n != 1 {
			t.Fatalf("%s: %d live expiry records for %+v, want 1 (msg IDs are unique)", stage, n, rec)
		}
	}

	// Inflight ⊆ live expiry records, and the node registry is dense.
	for i, n := range rt.nodes {
		if n == nil {
			continue
		}
		if n.ID != NodeID(i) {
			t.Fatalf("%s: registry slot %d holds node %d", stage, i, n.ID)
		}
		if !n.alive {
			// A crashed node's inflight map is inert: the op sequence may
			// have parked requests on it after the crash (their expiries
			// fire into the !alive guard), and Restart replaces the map
			// wholesale. Only live nodes carry the agreement invariant.
			continue
		}
		for msgID := range n.inflight {
			if live[timeoutRec{node: n.ID, msgID: msgID}] != 1 {
				t.Fatalf("%s: node %d has request %d inflight with no live expiry record", stage, n.ID, msgID)
			}
		}
	}

	// Message accounting identity: every envelope ever handed to the
	// transport is delivered, lost, dead, or still parked in the slab —
	// and the expiry ledger balances the same way.
	inflightEnv := int64(rt.InflightEnvelopes())
	if rt.Metrics.MsgsSent != rt.Metrics.MsgsDelivered+rt.Metrics.MsgsLost+rt.Metrics.MsgsDead+inflightEnv {
		t.Fatalf("%s: accounting identity broken: sent=%d != delivered=%d + lost=%d + dead=%d + inflight=%d",
			stage, rt.Metrics.MsgsSent, rt.Metrics.MsgsDelivered, rt.Metrics.MsgsLost, rt.Metrics.MsgsDead, inflightEnv)
	}
	if pend := int64(rt.PendingExpiries()); rt.Metrics.ExpiriesScheduled != rt.Metrics.ExpiriesFired+pend {
		t.Fatalf("%s: expiry ledger broken: scheduled=%d != fired=%d + pending=%d",
			stage, rt.Metrics.ExpiriesScheduled, rt.Metrics.ExpiriesFired, pend)
	}
	if rt.Metrics.Timeouts > rt.Metrics.ExpiriesFired {
		t.Fatalf("%s: %d timeouts exceed %d fired expiries", stage, rt.Metrics.Timeouts, rt.Metrics.ExpiriesFired)
	}
	if rt.Metrics.MsgsMulticast > rt.Metrics.MsgsSent {
		t.Fatalf("%s: %d multicast sends exceed %d total sends", stage, rt.Metrics.MsgsMulticast, rt.Metrics.MsgsSent)
	}

	// The live counter agrees with a registry scan.
	liveScan := 0
	for _, n := range rt.nodes {
		if n != nil && n.alive {
			liveScan++
		}
	}
	if rt.LiveNodes() != liveScan {
		t.Fatalf("%s: LiveNodes()=%d but %d nodes are alive", stage, rt.LiveNodes(), liveScan)
	}

	// Multicast groups: sorted duplicate-free membership, and every sender
	// index equal to a from-scratch rebuild.
	for gname, g := range rt.groups {
		for i := 1; i < len(g.members); i++ {
			if g.members[i-1] >= g.members[i] {
				t.Fatalf("%s: group %q membership not strictly ascending at %d: %v", stage, gname, i, g.members)
			}
		}
		for from, idx := range g.senders {
			if len(idx.ids) != len(g.members) || len(idx.rtts) != len(g.members) {
				t.Fatalf("%s: group %q sender %d index covers %d of %d members", stage, gname, from, len(idx.ids), len(g.members))
			}
			fresh := &senderIndex{
				rtts: make([]float64, len(g.members)),
				ids:  make([]NodeID, len(g.members)),
			}
			for i, m := range g.members {
				fresh.rtts[i] = rt.RTTms(from, m)
				fresh.ids[i] = m
			}
			// The incremental index must match the rebuild exactly —
			// sortedness by (RTT, NodeID) follows from equality.
			sortSenderIndex(fresh)
			for i := range fresh.ids {
				if idx.ids[i] != fresh.ids[i] || idx.rtts[i] != fresh.rtts[i] {
					t.Fatalf("%s: group %q sender %d index diverges from rebuild at %d: (%v,%v) vs (%v,%v)",
						stage, gname, from, i, idx.rtts[i], idx.ids[i], fresh.rtts[i], fresh.ids[i])
				}
			}
		}
	}
}

// sortSenderIndex sorts an index by (RTT, NodeID) ascending — the reference
// ordering the incremental maintenance must preserve.
func sortSenderIndex(x *senderIndex) {
	for i := 1; i < len(x.ids); i++ {
		r, id := x.rtts[i], x.ids[i]
		j := i - 1
		for j >= 0 && (x.rtts[j] > r || (x.rtts[j] == r && x.ids[j] > id)) {
			x.rtts[j+1], x.ids[j+1] = x.rtts[j], x.ids[j]
			j--
		}
		x.rtts[j+1], x.ids[j+1] = r, id
	}
}

// TestRuntimeInvariantsUnderRandomOps drives the randomized op sequence.
func TestRuntimeInvariantsUnderRandomOps(t *testing.T) {
	const (
		nNodes = 24
		steps  = 800
	)
	src := rng.New(13)
	m := latency.NewDense(nNodes)
	for i := 0; i < nNodes; i++ {
		for j := i + 1; j < nNodes; j++ {
			m.Set(i, j, 1+99*src.Float64())
		}
	}
	kernel := sim.New()
	rt := New(kernel, m, Config{LossProb: 0.15, RPCTimeout: 250 * time.Millisecond}, 3)
	for i := 0; i < nNodes; i++ {
		n := rt.AddNode(NodeID(i))
		n.Handle("mute", func(*Node, Envelope) {}) // never replies: requests always expire
		n.Handle("mc", func(*Node, Envelope) {})
	}
	groups := []string{"g0", "g1", "g2"}
	randNode := func() NodeID { return NodeID(src.Intn(nNodes)) }

	for step := 0; step < steps; step++ {
		switch src.Intn(9) {
		case 0: // crash
			rt.Node(randNode()).Stop()
		case 1: // restart
			rt.Node(randNode()).Restart()
		case 2: // one-way send (possibly to or from a dead node)
			rt.Node(randNode()).Send(randNode(), "mute", nil)
		case 3: // request that can only resolve by timeout
			rt.Node(randNode()).Request(randNode(), "mute", nil,
				time.Duration(1+src.Intn(300))*time.Millisecond, func(Envelope) {}, func() {})
		case 4: // ping (replies race their expiries)
			rt.Node(randNode()).Ping(randNode(), time.Duration(1+src.Intn(300))*time.Millisecond,
				src.Bool(0.5), func(float64, bool) {})
		case 5:
			rt.JoinGroup(groups[src.Intn(len(groups))], randNode())
		case 6:
			rt.LeaveGroup(groups[src.Intn(len(groups))], randNode())
		case 7:
			rt.Multicast(randNode(), groups[src.Intn(len(groups))], "mc", nil, 150*src.Float64())
		case 8: // partial drain: leave envelopes and expiries in flight
			kernel.RunUntil(kernel.Now() + time.Duration(src.Intn(120))*time.Millisecond)
		}
		checkRuntimeInvariants(t, rt, fmt.Sprintf("step %d", step))
	}

	// Full drain: every parked envelope delivered or dead, every expiry
	// fired, every slab slot back on its free list, no inflight leftovers.
	kernel.Run()
	checkRuntimeInvariants(t, rt, "drained")
	if rt.InflightEnvelopes() != 0 {
		t.Fatalf("drained: %d envelope slots still parked", rt.InflightEnvelopes())
	}
	if rt.PendingExpiries() != 0 {
		t.Fatalf("drained: %d expiry slots still parked", rt.PendingExpiries())
	}
	for _, n := range rt.nodes {
		if n != nil && n.alive && len(n.inflight) != 0 {
			t.Fatalf("drained: live node %d still has %d inflight requests", n.ID, len(n.inflight))
		}
	}
}

// TestMetricsAccountingUnderLossAndChurn runs a scripted loss+churn
// sequence with the observability registry attached and reconciles every
// counter at the end: the wire counters against the accounting identity,
// the registry's per-node and per-type counters against the runtime's
// global ones, and the expiry ledger against the timeout count.
func TestMetricsAccountingUnderLossAndChurn(t *testing.T) {
	const nNodes = 16
	src := rng.New(71)
	m := latency.NewDense(nNodes)
	for i := 0; i < nNodes; i++ {
		for j := i + 1; j < nNodes; j++ {
			m.Set(i, j, 5+45*src.Float64())
		}
	}
	kernel := sim.New()
	rt := New(kernel, m, Config{LossProb: 0.25, RPCTimeout: 200 * time.Millisecond}, 9)
	reg := obs.NewRegistry(nNodes)
	rt.EnableObs(reg)
	for i := 0; i < nNodes; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
	}
	checkRuntimeInvariants(t, rt, "setup")

	randNode := func() NodeID { return NodeID(src.Intn(nNodes)) }
	mcReturned := 0
	pings, pongs, expires := 0, 0, 0
	for round := 0; round < 60; round++ {
		// Churn phase: crash a node mid-round so requests in flight to it
		// die, restart another so stale expiries fire into the alive guard.
		rt.Node(randNode()).Stop()
		rt.Node(randNode()).Restart()
		for i := 0; i < 6; i++ {
			pings++
			rt.Node(randNode()).Ping(randNode(), 150*time.Millisecond, false, func(_ float64, ok bool) {
				if ok {
					pongs++
				} else {
					expires++
				}
			})
		}
		mcReturned += rt.Multicast(randNode(), "g", MsgPing, nil, 30)
		kernel.RunUntil(kernel.Now() + time.Duration(40+src.Intn(200))*time.Millisecond)
		checkRuntimeInvariants(t, rt, fmt.Sprintf("round %d", round))
	}
	kernel.Run()
	checkRuntimeInvariants(t, rt, "drained")

	mt := rt.Metrics
	if mt.MsgsLost == 0 {
		t.Fatal("25% loss produced no lost messages")
	}
	if mt.Timeouts == 0 {
		t.Fatal("loss+churn produced no timeouts")
	}
	if mt.MsgsDead == 0 {
		t.Fatal("crashing receivers produced no dead deliveries")
	}
	// Drained: the identity collapses to sent == delivered+lost+dead and
	// the expiry ledger to scheduled == fired.
	if mt.MsgsSent != mt.MsgsDelivered+mt.MsgsLost+mt.MsgsDead {
		t.Fatalf("drained identity: sent=%d delivered=%d lost=%d dead=%d", mt.MsgsSent, mt.MsgsDelivered, mt.MsgsLost, mt.MsgsDead)
	}
	if mt.ExpiriesScheduled != mt.ExpiriesFired {
		t.Fatalf("drained expiry ledger: scheduled=%d fired=%d", mt.ExpiriesScheduled, mt.ExpiriesFired)
	}
	if int64(mcReturned) != mt.MsgsMulticast {
		t.Fatalf("Multicast returned %d sends total, counter says %d", mcReturned, mt.MsgsMulticast)
	}
	// Every ping issued either answered or expired (the issuer stayed
	// decided even when the responder died: Ping's callback runs exactly
	// once unless the issuer itself crashes — crashed issuers' callbacks
	// are the remainder).
	if pongs+expires > pings {
		t.Fatalf("pings=%d resolved=%d", pings, pongs+expires)
	}
	if mt.Timeouts < int64(expires) {
		t.Fatalf("runtime counted %d timeouts, callbacks saw %d", mt.Timeouts, expires)
	}

	// Registry reconciliation: the per-node counters partition the global
	// ones exactly — the registry saw every send and every delivery.
	var regSent, regRecv int64
	for _, c := range reg.SentByNode() {
		regSent += c
	}
	for _, c := range reg.RecvByNode() {
		regRecv += c
	}
	if regSent != mt.MsgsSent {
		t.Fatalf("registry saw %d sends, runtime %d", regSent, mt.MsgsSent)
	}
	if regRecv != mt.MsgsDelivered {
		t.Fatalf("registry saw %d deliveries, runtime %d", regRecv, mt.MsgsDelivered)
	}
	var regTyped int64
	for _, tt := range reg.TopTypes(0) {
		regTyped += tt.Count
	}
	if regTyped != mt.MsgsSent {
		t.Fatalf("per-type counters sum to %d, runtime sent %d", regTyped, mt.MsgsSent)
	}
	// This workload is all pings and pongs.
	if got := reg.TypeCount(MsgPing) + reg.TypeCount(MsgPong); got != mt.MsgsSent {
		t.Fatalf("ping+pong counts %d != sent %d", got, mt.MsgsSent)
	}
}
