package p2p

// Property-based invariant layer for the runtime: a randomized op sequence
// (join/leave/crash/send/request/multicast/group churn, interleaved with
// partial kernel drains so envelopes and expiries are genuinely in flight
// at check time) with the runtime's structural invariants re-verified after
// every step:
//
//   - envelope-slab free list: in bounds, duplicate-free, every free slot
//     zeroed (deliverSlot releases payloads for GC before freeing);
//   - timeout slab: free list in bounds and duplicate-free, live records
//     unique per (node, msgID);
//   - inflight/expiry agreement: every parked request at a live node has
//     exactly one live expiry record (the reverse need not hold — an
//     answered request deletes its inflight entry and lets the expiry fire
//     into nothing; a crashed node's map is inert junk until Restart
//     replaces it, so only live nodes are held to the invariant);
//   - multicast sender indexes: (RTT, NodeID)-sorted and exactly equal to
//     a from-scratch rebuild over the current membership;
//   - dense node registry: slot i holds node i or nil.
//
// At full drain the slabs must be completely free and every inflight map
// empty — nothing leaks across a quiescent point.

import (
	"fmt"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// checkRuntimeInvariants verifies every structural invariant of the
// runtime's hot-path bookkeeping.
func checkRuntimeInvariants(t *testing.T, rt *Runtime, stage string) {
	t.Helper()

	// Envelope slab.
	freeEnv := make(map[uint32]bool, len(rt.slabFree))
	for _, slot := range rt.slabFree {
		if int(slot) >= len(rt.slab) {
			t.Fatalf("%s: slab free slot %d out of bounds (slab len %d)", stage, slot, len(rt.slab))
		}
		if freeEnv[slot] {
			t.Fatalf("%s: slab free list holds slot %d twice", stage, slot)
		}
		freeEnv[slot] = true
		if rt.slab[slot] != (Envelope{}) {
			t.Fatalf("%s: freed slab slot %d not zeroed: %+v", stage, slot, rt.slab[slot])
		}
	}

	// Timeout slab and its live records.
	freeT := make(map[uint32]bool, len(rt.tFree))
	for _, slot := range rt.tFree {
		if int(slot) >= len(rt.tSlab) {
			t.Fatalf("%s: timeout free slot %d out of bounds (slab len %d)", stage, slot, len(rt.tSlab))
		}
		if freeT[slot] {
			t.Fatalf("%s: timeout free list holds slot %d twice", stage, slot)
		}
		freeT[slot] = true
	}
	live := make(map[timeoutRec]int)
	for slot := range rt.tSlab {
		if !freeT[uint32(slot)] {
			live[rt.tSlab[slot]]++
		}
	}
	for rec, n := range live {
		if n != 1 {
			t.Fatalf("%s: %d live expiry records for %+v, want 1 (msg IDs are unique)", stage, n, rec)
		}
	}

	// Inflight ⊆ live expiry records, and the node registry is dense.
	for i, n := range rt.nodes {
		if n == nil {
			continue
		}
		if n.ID != NodeID(i) {
			t.Fatalf("%s: registry slot %d holds node %d", stage, i, n.ID)
		}
		if !n.alive {
			// A crashed node's inflight map is inert: the op sequence may
			// have parked requests on it after the crash (their expiries
			// fire into the !alive guard), and Restart replaces the map
			// wholesale. Only live nodes carry the agreement invariant.
			continue
		}
		for msgID := range n.inflight {
			if live[timeoutRec{node: n.ID, msgID: msgID}] != 1 {
				t.Fatalf("%s: node %d has request %d inflight with no live expiry record", stage, n.ID, msgID)
			}
		}
	}

	// Multicast groups: sorted duplicate-free membership, and every sender
	// index equal to a from-scratch rebuild.
	for gname, g := range rt.groups {
		for i := 1; i < len(g.members); i++ {
			if g.members[i-1] >= g.members[i] {
				t.Fatalf("%s: group %q membership not strictly ascending at %d: %v", stage, gname, i, g.members)
			}
		}
		for from, idx := range g.senders {
			if len(idx.ids) != len(g.members) || len(idx.rtts) != len(g.members) {
				t.Fatalf("%s: group %q sender %d index covers %d of %d members", stage, gname, from, len(idx.ids), len(g.members))
			}
			fresh := &senderIndex{
				rtts: make([]float64, len(g.members)),
				ids:  make([]NodeID, len(g.members)),
			}
			for i, m := range g.members {
				fresh.rtts[i] = rt.RTTms(from, m)
				fresh.ids[i] = m
			}
			// The incremental index must match the rebuild exactly —
			// sortedness by (RTT, NodeID) follows from equality.
			sortSenderIndex(fresh)
			for i := range fresh.ids {
				if idx.ids[i] != fresh.ids[i] || idx.rtts[i] != fresh.rtts[i] {
					t.Fatalf("%s: group %q sender %d index diverges from rebuild at %d: (%v,%v) vs (%v,%v)",
						stage, gname, from, i, idx.rtts[i], idx.ids[i], fresh.rtts[i], fresh.ids[i])
				}
			}
		}
	}
}

// sortSenderIndex sorts an index by (RTT, NodeID) ascending — the reference
// ordering the incremental maintenance must preserve.
func sortSenderIndex(x *senderIndex) {
	for i := 1; i < len(x.ids); i++ {
		r, id := x.rtts[i], x.ids[i]
		j := i - 1
		for j >= 0 && (x.rtts[j] > r || (x.rtts[j] == r && x.ids[j] > id)) {
			x.rtts[j+1], x.ids[j+1] = x.rtts[j], x.ids[j]
			j--
		}
		x.rtts[j+1], x.ids[j+1] = r, id
	}
}

// TestRuntimeInvariantsUnderRandomOps drives the randomized op sequence.
func TestRuntimeInvariantsUnderRandomOps(t *testing.T) {
	const (
		nNodes = 24
		steps  = 800
	)
	src := rng.New(13)
	m := latency.NewDense(nNodes)
	for i := 0; i < nNodes; i++ {
		for j := i + 1; j < nNodes; j++ {
			m.Set(i, j, 1+99*src.Float64())
		}
	}
	kernel := sim.New()
	rt := New(kernel, m, Config{LossProb: 0.15, RPCTimeout: 250 * time.Millisecond}, 3)
	for i := 0; i < nNodes; i++ {
		n := rt.AddNode(NodeID(i))
		n.Handle("mute", func(*Node, Envelope) {}) // never replies: requests always expire
		n.Handle("mc", func(*Node, Envelope) {})
	}
	groups := []string{"g0", "g1", "g2"}
	randNode := func() NodeID { return NodeID(src.Intn(nNodes)) }

	for step := 0; step < steps; step++ {
		switch src.Intn(9) {
		case 0: // crash
			rt.Node(randNode()).Stop()
		case 1: // restart
			rt.Node(randNode()).Restart()
		case 2: // one-way send (possibly to or from a dead node)
			rt.Node(randNode()).Send(randNode(), "mute", nil)
		case 3: // request that can only resolve by timeout
			rt.Node(randNode()).Request(randNode(), "mute", nil,
				time.Duration(1+src.Intn(300))*time.Millisecond, func(Envelope) {}, func() {})
		case 4: // ping (replies race their expiries)
			rt.Node(randNode()).Ping(randNode(), time.Duration(1+src.Intn(300))*time.Millisecond,
				src.Bool(0.5), func(float64, bool) {})
		case 5:
			rt.JoinGroup(groups[src.Intn(len(groups))], randNode())
		case 6:
			rt.LeaveGroup(groups[src.Intn(len(groups))], randNode())
		case 7:
			rt.Multicast(randNode(), groups[src.Intn(len(groups))], "mc", nil, 150*src.Float64())
		case 8: // partial drain: leave envelopes and expiries in flight
			kernel.RunUntil(kernel.Now() + time.Duration(src.Intn(120))*time.Millisecond)
		}
		checkRuntimeInvariants(t, rt, fmt.Sprintf("step %d", step))
	}

	// Full drain: every parked envelope delivered or dead, every expiry
	// fired, every slab slot back on its free list, no inflight leftovers.
	kernel.Run()
	checkRuntimeInvariants(t, rt, "drained")
	if len(rt.slabFree) != len(rt.slab) {
		t.Fatalf("drained: %d of %d envelope slots still parked", len(rt.slab)-len(rt.slabFree), len(rt.slab))
	}
	if len(rt.tFree) != len(rt.tSlab) {
		t.Fatalf("drained: %d of %d expiry slots still parked", len(rt.tSlab)-len(rt.tFree), len(rt.tSlab))
	}
	for _, n := range rt.nodes {
		if n != nil && n.alive && len(n.inflight) != 0 {
			t.Fatalf("drained: live node %d still has %d inflight requests", n.ID, len(n.inflight))
		}
	}
}
