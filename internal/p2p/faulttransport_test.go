package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/sim"
)

// faultTestMatrix is a tiny symmetric matrix with distinct RTTs.
func faultTestMatrix(n int) latency.Matrix {
	m := latency.NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d := i - j
				if d < 0 {
					d = -d
				}
				m.Set(i, j, 10*float64(d))
			}
		}
	}
	return m
}

// TestFaultTransportSim: drop, delay and duplicate rules fire on the sim
// runtime at the planned windows, the fault counters attribute them, and
// the drained accounting identity still holds.
func TestFaultTransportSim(t *testing.T) {
	plan := &faults.Plan{Seed: 11, Rules: []faults.Rule{
		{Kind: faults.Blackhole, At: 1 * time.Second, For: 1 * time.Second, Src: faults.List(0), Dst: faults.List(1)},
		{Kind: faults.DelaySpike, At: 3 * time.Second, For: 1 * time.Second, ExtraMs: 500, Src: faults.Everyone(), Dst: faults.Everyone()},
		{Kind: faults.Duplicate, At: 5 * time.Second, For: 1 * time.Second, Src: faults.Everyone(), Dst: faults.Everyone()},
	}}
	k := sim.New()
	r := New(k, faultTestMatrix(4), DefaultConfig(), 1)
	ft := NewFaultTransport(r, plan)
	if ft.Plan() != plan {
		t.Fatal("Plan accessor lost the plan")
	}
	n0 := r.AddNode(0)
	r.AddNode(1)

	type probe struct {
		rtt float64
		ok  bool
	}
	got := map[string]probe{}
	ping := func(name string, at, timeout time.Duration) {
		k.At(at, func() {
			n0.Ping(1, timeout, false, func(rtt float64, ok bool) {
				got[name] = probe{rtt, ok}
			})
		})
	}
	ping("quiet", 500*time.Millisecond, 300*time.Millisecond) // before any rule
	ping("blackhole", 1200*time.Millisecond, 300*time.Millisecond)
	ping("spike", 3200*time.Millisecond, 2*time.Second) // must outlive the added delay
	ping("dup", 5200*time.Millisecond, 300*time.Millisecond)
	k.Run()

	if p := got["quiet"]; !p.ok || p.rtt != 10 {
		t.Errorf("quiet ping = %+v, want ok at 10 ms", p)
	}
	if p := got["blackhole"]; p.ok {
		t.Errorf("blackhole ping succeeded: %+v", p)
	}
	if p := got["spike"]; !p.ok || p.rtt != 10+2*500 {
		// Both legs fall in the spike window: 500 ms extra each way.
		t.Errorf("spike ping = %+v, want ok at 1010 ms", p)
	}
	if p := got["dup"]; !p.ok || p.rtt != 10 {
		t.Errorf("dup ping = %+v, want ok at 10 ms (duplicates are dropped by correlation)", p)
	}

	m := r.TotalMetrics()
	if m.FaultDropped == 0 || m.FaultDelayed == 0 || m.FaultDuplicated == 0 {
		t.Errorf("fault counters missing attribution: %+v", m)
	}
	if m.MsgsSent != m.MsgsDelivered+m.MsgsLost+m.MsgsDead {
		t.Errorf("drained accounting identity broken: sent %d != delivered %d + lost %d + dead %d",
			m.MsgsSent, m.MsgsDelivered, m.MsgsLost, m.MsgsDead)
	}
	if m.FaultDropped > m.MsgsLost {
		t.Errorf("FaultDropped %d exceeds MsgsLost %d (must be a subset)", m.FaultDropped, m.MsgsLost)
	}
}

// TestFaultTransportSimCrash: a crash rule downs the node for its window
// and the restart brings it back.
func TestFaultTransportSimCrash(t *testing.T) {
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.Crash, At: 1 * time.Second, For: 2 * time.Second, Nodes: faults.List(1)},
	}}
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	NewFaultTransport(r, plan)
	n0 := r.AddNode(0)
	r.AddNode(1)

	oks := map[string]bool{}
	ping := func(name string, at time.Duration) {
		k.At(at, func() {
			n0.Ping(1, 300*time.Millisecond, false, func(_ float64, ok bool) { oks[name] = ok })
		})
	}
	ping("before", 500*time.Millisecond)
	ping("down", 2*time.Second)
	ping("after", 4*time.Second)
	k.Run()

	if !oks["before"] || oks["down"] || !oks["after"] {
		t.Errorf("crash window pings = %+v, want before/after up, down dead", oks)
	}
}

// TestFaultTransportShardedCrashPanics: crash rules are serial-only.
func TestFaultTransportShardedCrashPanics(t *testing.T) {
	withCrash := &faults.Plan{Rules: []faults.Rule{
		{Kind: faults.Crash, At: time.Second, For: time.Second, Nodes: faults.List(0)},
	}}
	shk := sim.NewSharded(2, 5*time.Millisecond)
	ms := []latency.Matrix{faultTestMatrix(4), faultTestMatrix(4)}
	r := NewSharded(shk, ms, DefaultConfig(), 1, []int32{0, 0, 1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("sharded runtime accepted a crash rule")
		}
	}()
	NewFaultTransport(r, withCrash)
}

// TestFaultTransportLoopback: the same plan semantics hold on the
// wall-clock loopback transport — a black-holed link times out while an
// unaffected link still answers.
func TestFaultTransportLoopback(t *testing.T) {
	plan := &faults.Plan{Seed: 5, Rules: []faults.Rule{
		{Kind: faults.Blackhole, At: 0, For: time.Hour, Src: faults.List(0), Dst: faults.List(1)},
	}}
	lb := NewLoopback(faultTestMatrix(3), DefaultConfig(), 1)
	defer lb.Close()
	NewFaultTransport(lb, plan)
	var n0 *Node
	lb.Do(func() {
		n0 = lb.AddNode(0)
		lb.AddNode(1)
		lb.AddNode(2)
	})

	res := make(chan bool, 1)
	lb.Do(func() {
		n0.Ping(1, 200*time.Millisecond, false, func(_ float64, ok bool) { res <- ok })
	})
	if <-res {
		t.Error("black-holed loopback ping succeeded")
	}
	lb.Do(func() {
		n0.Ping(2, 2*time.Second, false, func(_ float64, ok bool) { res <- ok })
	})
	if !<-res {
		t.Error("unaffected loopback ping failed")
	}
	lb.Do(func() {
		m := lb.SerialMetrics()
		if m.FaultDropped == 0 {
			t.Error("loopback FaultDropped not charged")
		}
	})
}

// TestFaultTransportNilPlanNoOp: wrapping with a nil plan changes nothing.
func TestFaultTransportNilPlanNoOp(t *testing.T) {
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	NewFaultTransport(r, nil)
	if r.flt != nil {
		t.Fatal("nil plan installed a fault hook")
	}
	n0 := r.AddNode(0)
	r.AddNode(1)
	var rtt float64
	k.At(0, func() {
		n0.Ping(1, 0, false, func(ms float64, ok bool) {
			if ok {
				rtt = ms
			}
		})
	})
	k.Run()
	if rtt != 10 {
		t.Errorf("ping under nil plan = %v ms, want 10", rtt)
	}
}
