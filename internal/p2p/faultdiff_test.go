// Fault-plane differential conformance: one seeded fault plan, one probe
// schedule, two transports. The plan's decisions are a pure function of
// (seed, src, dst, window), and both transports price the plan clock from
// their own zero — virtual time on the simulator, wall time since start on
// loopback — so a probe fired at the midpoint of each decision window must
// see the identical fault fate on both: same probes answered, same probes
// black-holed, same drop/delay/duplicate counts. This is the gate that
// keeps "debug a live fault in the simulator" honest.

package p2p_test

import (
	"sync"
	"testing"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
)

// fdProbes pings fire from node 0 to node 1, one at the midpoint of each
// 250 ms decision window, spanning every rule of fdPlan plus healthy time
// on both flanks. rtt(0,1) is 10 ms and the per-probe timeout 100 ms, so
// each probe resolves well inside its own window.
const (
	fdProbes  = 28
	fdEvery   = 250 * time.Millisecond // == faults.DefaultWindow
	fdTimeout = 100 * time.Millisecond
)

// fdPlan exercises every link-fault kind plus a crash/restart cycle, each
// window-aligned with 125 ms of margin to the probe times so wall-clock
// timer jitter cannot move a probe across a decision boundary.
func fdPlan() *faults.Plan {
	return &faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Kind: faults.LossBurst, At: 500 * time.Millisecond, For: 1500 * time.Millisecond, Prob: 0.5,
			Src: faults.List(0), Dst: faults.List(1)},
		{Kind: faults.DelaySpike, At: 2500 * time.Millisecond, For: time.Second, ExtraMs: 30,
			Src: faults.Everyone(), Dst: faults.Everyone()},
		{Kind: faults.Duplicate, At: 4 * time.Second, For: time.Second,
			Src: faults.Everyone(), Dst: faults.Everyone()},
		{Kind: faults.Crash, At: 5500 * time.Millisecond, For: time.Second, Nodes: faults.List(1)},
	}}
}

// fdResult is the transport-independent outcome: per-probe fate plus the
// fault plane's own accounting.
type fdResult struct {
	ok                           [fdProbes]bool
	dropped, delayed, duplicated int64
}

func fdProbeAt(i int) time.Duration { return time.Duration(i)*fdEvery + fdEvery/2 }

func fdRunSim() fdResult {
	kernel := sim.New()
	rt := p2p.New(kernel, diffMatrix(), p2p.Config{RPCTimeout: time.Second}, 1)
	p2p.NewFaultTransport(rt, fdPlan())
	n0 := rt.AddNode(0)
	rt.AddNode(1)
	var res fdResult
	for i := 0; i < fdProbes; i++ {
		i := i
		kernel.At(fdProbeAt(i), func() {
			n0.Request(1, p2p.MsgPing, nil, fdTimeout,
				func(p2p.Envelope) { res.ok[i] = true }, func() {})
		})
	}
	kernel.Run()
	m := rt.TotalMetrics()
	res.dropped, res.delayed, res.duplicated = m.FaultDropped, m.FaultDelayed, m.FaultDuplicated
	return res
}

func fdRunLoopback() fdResult {
	lb := p2p.NewLoopback(diffMatrix(), p2p.Config{RPCTimeout: time.Second}, 1)
	defer lb.Close()
	p2p.NewFaultTransport(lb, fdPlan())
	var n0 *p2p.Node
	lb.Do(func() { n0 = lb.AddNode(0); lb.AddNode(1) })
	var res fdResult
	var wg sync.WaitGroup
	wg.Add(fdProbes)
	for i := 0; i < fdProbes; i++ {
		i := i
		lb.After(0, fdProbeAt(i), func() {
			n0.Request(1, p2p.MsgPing, nil, fdTimeout,
				func(p2p.Envelope) { res.ok[i] = true; wg.Done() }, wg.Done)
		})
	}
	wg.Wait() // every probe resolves exactly once: reply or expiry
	lb.Do(func() {
		m := lb.SerialMetrics()
		res.dropped, res.delayed, res.duplicated = m.FaultDropped, m.FaultDelayed, m.FaultDuplicated
	})
	return res
}

// TestFaultDifferentialSimVsLoopback: same plan seed, same probe times,
// same fates — on virtual time and on the wall clock.
func TestFaultDifferentialSimVsLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential run (~7 s)")
	}
	simRes := fdRunSim()
	liveRes := fdRunLoopback()

	for i := 0; i < fdProbes; i++ {
		if simRes.ok[i] != liveRes.ok[i] {
			t.Errorf("probe %d at %v: sim ok=%v live ok=%v",
				i, fdProbeAt(i), simRes.ok[i], liveRes.ok[i])
		}
	}
	if simRes.dropped != liveRes.dropped {
		t.Errorf("FaultDropped: sim %d live %d", simRes.dropped, liveRes.dropped)
	}
	if simRes.delayed != liveRes.delayed {
		t.Errorf("FaultDelayed: sim %d live %d", simRes.delayed, liveRes.delayed)
	}
	if simRes.duplicated != liveRes.duplicated {
		t.Errorf("FaultDuplicated: sim %d live %d", simRes.duplicated, liveRes.duplicated)
	}

	// The plan was no no-op: the burst dropped something, the spike priced
	// something, the duplicate window injected something, and the crash
	// black-holed the probes inside it — yet healthy flanks answered.
	if simRes.dropped == 0 || simRes.delayed == 0 || simRes.duplicated == 0 {
		t.Errorf("plan under-exercised: dropped=%d delayed=%d duplicated=%d",
			simRes.dropped, simRes.delayed, simRes.duplicated)
	}
	if !simRes.ok[0] || !simRes.ok[fdProbes-1] {
		t.Error("healthy flank probes failed")
	}
	crashProbe := int((5500*time.Millisecond + fdEvery) / fdEvery) // first midpoint inside the crash
	if simRes.ok[crashProbe] {
		t.Errorf("probe %d inside the crash window was answered", crashProbe)
	}
}
