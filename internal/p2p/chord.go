package p2p

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"nearestpeer/internal/dht"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/rng"
)

// This file ports the Chord DHT (internal/dht) from a synchronous ring over
// a node map to a protocol over messages: the key-value substrate the
// paper's Section 5 hint mitigations (UCLs, IP-prefix publishing) assume
// the peers can host themselves. The structure is the same — a 64-bit
// identifier ring (reusing internal/dht's hashing and interval arithmetic),
// successor lists, finger-style long-range routing, iterative lookups — but
// every step is now an RPC with a per-hop timeout that can be lost or land
// on a crashed node, joins discover their successor by looking their own
// identifier up over the wire, and the ring is maintained by periodic
// stabilize/notify rounds instead of a global rebuild. A failed hop retries
// through the next-best known candidate (alternate fingers, then the
// successor list), which is what keeps lookups resolving under churn.
//
// Knowledge discipline: nodes learn about each other only through
// messages (lookup replies, state exchanges, notifies). The single
// out-of-band channel is bootstrap choice — a joining node is handed one
// random live member to start from, standing in for the rendezvous every
// deployed DHT needs. Predecessor liveness is inferred from notify
// freshness, not from global state.

// Chord wire message types.
const (
	// MsgChordFind is one iterative routing step: "who owns this key, or
	// who should I ask next?" MsgChordFindOK carries the answer.
	MsgChordFind   = "c_find"
	MsgChordFindOK = "c_find_ok"
	// MsgChordState asks a node for its predecessor and successor list
	// (the stabilize exchange); MsgChordStateOK answers.
	MsgChordState   = "c_state"
	MsgChordStateOK = "c_state_ok"
	// MsgChordNotify is a one-way "I believe I am your predecessor".
	MsgChordNotify = "c_notify"
	// MsgChordStore stores a value at the receiver, which replicates it to
	// its successors with one-way MsgChordStoreRep copies and acks with
	// MsgChordStoreOK.
	MsgChordStore    = "c_store"
	MsgChordStoreOK  = "c_store_ok"
	MsgChordStoreRep = "c_store_rep"
	// MsgChordFetch retrieves a key's values; MsgChordFetchOK answers.
	MsgChordFetch   = "c_fetch"
	MsgChordFetchOK = "c_fetch_ok"
	// MsgChordHandoff is a graceful leaver's one-way key transfer to its
	// successor.
	MsgChordHandoff = "c_handoff"
	// MsgChordMigrate is a joiner's pull of the keys it now owns from its
	// successor; MsgChordMigrateOK carries them over.
	MsgChordMigrate   = "c_migrate"
	MsgChordMigrateOK = "c_migrate_ok"
)

// NoNode is the nil NodeID (unknown predecessor, empty finger slot).
const NoNode NodeID = -1

// ChordConfig parameterises the protocol.
type ChordConfig struct {
	// SuccListLen bounds the successor list (Chord's r; resilience to r-1
	// simultaneous failures).
	SuccListLen int
	// StabilizeEvery is the stabilize period; each node adds up to 25%
	// per-node jitter so rounds do not run in lockstep.
	StabilizeEvery time.Duration
	// FingerEvery fixes one finger (a full iterative lookup) every
	// FingerEvery stabilize rounds; 0 disables active finger repair,
	// leaving only passive learning from replies.
	FingerEvery int
	// Replicas is how many nodes hold each key: the owner plus
	// Replicas-1 of its successors.
	Replicas int
	// RPCTimeout bounds each individual hop/store/fetch RPC.
	RPCTimeout time.Duration
	// MaxHops caps one iterative lookup, a routing-loop backstop.
	MaxHops int
	// MaxLookupTimeouts fails a lookup after this many hop timeouts:
	// under churn a frontier full of stale fingers would otherwise burn
	// MaxHops sequential timeouts before giving up, and a fast failure
	// (retried by the operation layer, or reported) prices the outage
	// honestly instead of stalling the caller for a virtual minute.
	MaxLookupTimeouts int
	// Horizon, when > 0, stops scheduling stabilize rounds past this
	// virtual time so a test kernel's queue can drain. 0 stabilizes
	// forever — drive the kernel with RunUntil or Stop in that case.
	Horizon time.Duration
	// Retry is the per-RPC retry policy applied to lookup hops and
	// store/fetch operations. The zero value (the default) disables
	// retries, reproducing the historical behavior bit for bit.
	Retry Policy
}

// DefaultChordConfig returns the protocol defaults.
func DefaultChordConfig() ChordConfig {
	return ChordConfig{
		SuccListLen:       8,
		StabilizeEvery:    time.Second,
		FingerEvery:       2,
		Replicas:          2,
		RPCTimeout:        500 * time.Millisecond,
		MaxHops:           64,
		MaxLookupTimeouts: 6,
	}
}

// chordState is one member's protocol state.
type chordState struct {
	ringID   uint64
	succs    []NodeID // clockwise successor list; never contains self
	pred     NodeID
	predSeen time.Duration // when pred last notified us
	fingers  []NodeID      // fingers[i] ≈ successor(ringID + 2^i); NoNode unknown
	nextFin  int
	round    int
	suspect  map[NodeID]int // consecutive RPC timeouts per peer
	data     map[string][][]byte
	src      *rng.Source
}

// Chord runs the protocol over a Runtime.
//
// Node IDs are dense matrix indices, so the per-node protocol state and
// the ring-hash cache live in slices, not maps: RingIDOf and the state
// lookup run on every routed message, and at scale-study event counts the
// map hashing alone dominated whole cells (28% of the s1 smoke).
type Chord struct {
	rt      Transport
	cfg     ChordConfig
	src     *rng.Source
	states  []*chordState // states[id]; nil = not a member
	order   []NodeID      // sorted live member list (bootstrap handout)
	rings   []uint64      // rings[id]; valid iff ringSet[id]
	ringSet []bool

	// cp holds closestPreceding's reusable scratch buffers, one set per
	// kernel shard (one on a serial runtime) so routing steps on different
	// shards never share a buffer.
	cp []chordScratch
}

// chordScratch is one shard's closestPreceding scratch.
type chordScratch struct {
	out  []NodeID
	dist []uint64
}

// NewChord creates the protocol instance (with no members yet). On a
// sharded runtime the ring-hash cache is pre-warmed for the whole
// population — the hash is pure, so warming changes nothing except that
// the lazy first-touch write (a data race once shards run concurrently)
// never happens.
func NewChord(rt Transport, cfg ChordConfig, seed int64) *Chord {
	if cfg.SuccListLen <= 0 || cfg.StabilizeEvery <= 0 || cfg.Replicas <= 0 || cfg.RPCTimeout <= 0 || cfg.MaxHops <= 0 {
		panic(fmt.Sprintf("p2p: invalid chord config %+v", cfg))
	}
	if err := cfg.Retry.Validate(); err != nil {
		panic(err)
	}
	n := rt.Population()
	c := &Chord{
		rt:      rt,
		cfg:     cfg,
		src:     rng.New(seed).Split("chord"),
		states:  make([]*chordState, n),
		rings:   make([]uint64, n),
		ringSet: make([]bool, n),
		cp:      make([]chordScratch, rt.Shards()),
	}
	if rt.Sharded() {
		for id := 0; id < n; id++ {
			c.ringIDSlow(NodeID(id))
		}
	}
	return c
}

// Transport returns the transport the protocol runs on.
func (c *Chord) Transport() Transport { return c.rt }

// Bootstrap seeds the membership handout with node IDs known out of band
// — the rendezvous a deployed ring needs. The IDs enter the bootstrap
// pool (randomMember draws from it) without protocol state: a live
// deployment (cmd/npnode) names its configured peers here so a joining
// node's own-identifier lookup has somewhere to start, exactly as the
// simulator's join ramp hands out a random live member.
func (c *Chord) Bootstrap(ids ...NodeID) {
	for _, id := range ids {
		if c.state(id) == nil {
			c.insertMember(id)
		}
	}
}

// RingIDOf maps a node onto the identifier ring, reusing the DHT package's
// consistent hashing (cached — the hash is pure). The hit path is small
// enough to inline at every routing-step call site; the first-touch hash
// lives in ringIDSlow to keep it that way.
func (c *Chord) RingIDOf(id NodeID) uint64 {
	if c.ringSet[id] {
		return c.rings[id]
	}
	return c.ringIDSlow(id)
}

func (c *Chord) ringIDSlow(id NodeID) uint64 {
	v := dht.HashKey(fmt.Sprintf("chord/%d", int(id)))
	c.rings[id] = v
	c.ringSet[id] = true
	return v
}

// state returns the member state for id, or nil. Bounds-checked so that
// protocol messages from nodes outside the matrix population (impossible
// today — the runtime rejects them at AddNode) stay nil rather than
// panicking.
func (c *Chord) state(id NodeID) *chordState {
	if int(id) < 0 || int(id) >= len(c.states) {
		return nil
	}
	return c.states[id]
}

// NumMembers returns the live member count.
func (c *Chord) NumMembers() int { return len(c.order) }

// LiveMembers returns the current membership (sorted, a copy).
func (c *Chord) LiveMembers() []int {
	out := make([]int, len(c.order))
	for i, id := range c.order {
		out[i] = int(id)
	}
	return out
}

// SuccessorOf exposes a member's current successor pointer (tests).
func (c *Chord) SuccessorOf(id NodeID) (NodeID, bool) {
	st := c.state(id)
	if st == nil || len(st.succs) == 0 {
		return NoNode, false
	}
	return st.succs[0], true
}

// PredecessorOf exposes a member's current predecessor pointer (tests).
func (c *Chord) PredecessorOf(id NodeID) (NodeID, bool) {
	st := c.state(id)
	if st == nil || st.pred == NoNode {
		return NoNode, false
	}
	return st.pred, true
}

// StoredAt reports how many values a member holds under key (tests).
func (c *Chord) StoredAt(id NodeID, key string) int {
	if st := c.state(id); st != nil {
		return len(st.data[key])
	}
	return 0
}

// Join brings a node up as a ring member: it installs handlers, enters the
// membership, and looks its own identifier up through a bootstrap member to
// find its successor. The ring position is wrong until that lookup lands
// and stabilize rounds rectify predecessor pointers — a freshly joined
// node answers queries with whatever it knows so far, as a real node would.
func (c *Chord) Join(id NodeID) {
	if c.state(id) != nil {
		return
	}
	n := c.rt.AddNode(id)
	if !n.Alive() {
		// Join is an explicit protocol (re)entry: a previously stopped
		// node comes back up. (AddNode itself never resurrects — that is
		// Restart's job, and doing it implicitly would corrupt the churn
		// process's bookkeeping.)
		n.Restart()
	}
	st := &chordState{
		ringID:  c.RingIDOf(id),
		pred:    NoNode,
		fingers: make([]NodeID, 64),
		suspect: make(map[NodeID]int),
		data:    make(map[string][][]byte),
		src:     c.src.SplitN("member", int(id)),
	}
	for i := range st.fingers {
		st.fingers[i] = NoNode
	}
	boot := c.randomMember(id)
	c.states[id] = st
	c.insertMember(id)
	n.Handle(MsgChordFind, c.handleFind)
	n.Handle(MsgChordState, c.handleState)
	n.Handle(MsgChordNotify, c.handleNotify)
	n.Handle(MsgChordStore, c.handleStore)
	n.Handle(MsgChordStoreRep, c.handleStoreRep)
	n.Handle(MsgChordFetch, c.handleFetch)
	n.Handle(MsgChordHandoff, c.handleHandoff)
	n.Handle(MsgChordMigrate, c.handleMigrate)
	if !c.rt.Sharded() {
		if boot != NoNode {
			c.bootstrap(n, st, boot)
		}
		c.scheduleStabilize(id, st)
		return
	}
	// Sharded, Join runs on the driver shard (the join ramp is a driver
	// chain): the membership bookkeeping above is driver-side state, but
	// the bootstrap lookup and the stabilize chain are events at the node,
	// so they hop to its home shard. The handoff delay is a topology
	// constant, identical at every shard count.
	c.rt.Handoff(DriverShard, id, c.rt.HandoffDelay(), func() {
		if c.state(id) != st {
			return
		}
		if boot != NoNode {
			c.bootstrap(n, st, boot)
		}
		c.scheduleStabilize(id, st)
	})
}

// Leave takes a member down. A graceful leaver hands its keys to its
// successor first (the message survives it on the wire); a crash just goes
// silent and the ring discovers the death by timeout.
func (c *Chord) Leave(id NodeID, graceful bool) {
	st := c.state(id)
	if st == nil {
		return
	}
	n := c.rt.Node(id)
	if graceful && n != nil && n.Alive() && len(st.succs) > 0 && len(st.data) > 0 {
		cp := make(map[string][][]byte, len(st.data))
		for k, vs := range st.data {
			cvs := make([][]byte, len(vs))
			for i, v := range vs {
				cvs[i] = append([]byte(nil), v...)
			}
			cp[k] = cvs
		}
		n.Send(st.succs[0], MsgChordHandoff, cHandoffMsg{Data: cp})
	}
	c.states[id] = nil
	c.removeMember(id)
	if n != nil {
		n.Stop()
	}
}

// bootstrap looks the node's own identifier up via boot to find its
// successor: the join entry step, and — re-run periodically from a random
// member — the cross-region repair that dissolves wedges the local
// successor chain cannot see (a region whose pointers skip it never learns
// about it through stabilize alone). A node with no successor adopts the
// answer outright; otherwise the answer and its replica set go through
// learn(), which only ever tightens the pointer. On failure (loss, dead
// bootstrap) the stabilize loop retries off another member.
func (c *Chord) bootstrap(n *Node, st *chordState, boot NodeID) {
	res := &LookupResult{Owner: NoNode}
	c.drive(n, nil, []NodeID{boot}, st.ringID, res, func(r LookupResult) {
		if c.state(n.ID) != st {
			return
		}
		if !r.OK || r.Owner == NoNode || r.Owner == n.ID {
			return
		}
		var prevHead NodeID = NoNode
		if len(st.succs) > 0 {
			prevHead = st.succs[0]
		}
		if prevHead == NoNode {
			c.adoptSuccessors(st, n.ID, r.Owner, r.Reps)
		}
		c.learn(st, r.Owner)
		for _, s := range r.Reps {
			c.learn(st, s)
		}
		if len(st.succs) == 0 {
			return
		}
		head := st.succs[0]
		n.Send(head, MsgChordNotify, nil)
		if head == prevHead {
			return
		}
		// New successor: pull the keys this node now owns from it. A lost
		// request or reply just leaves them where replica fallback and the
		// next republish can still find them.
		n.Request(head, MsgChordMigrate, nil, c.cfg.RPCTimeout,
			func(env Envelope) {
				if c.state(n.ID) != st || !n.Alive() {
					return
				}
				mergeValues(st.data, env.Payload.(cHandoffMsg).Data)
			}, nil)
	})
}

// adoptSuccessors rebuilds the successor list as [head] + tail, deduped,
// self-free, truncated.
func (c *Chord) adoptSuccessors(st *chordState, self, head NodeID, tail []NodeID) {
	merged := []NodeID{head}
	for _, s := range tail {
		if s != NoNode && s != self && !containsNode(merged, s) {
			merged = append(merged, s)
		}
	}
	if len(merged) > c.cfg.SuccListLen {
		merged = merged[:c.cfg.SuccListLen]
	}
	st.succs = merged
}

// pickBootstrap selects a re-bootstrap entry point for a member. Serial,
// that is a uniform draw from the global membership. Sharded, events at a
// node must not read the shared member list (the driver mutates it during
// the join ramp), so the draw comes from the member's own routing state —
// successors then fingers, via its private stream — which keeps the choice
// a pure function of node-local state, identical at every shard count.
func (c *Chord) pickBootstrap(id NodeID, st *chordState) NodeID {
	if !c.rt.Sharded() {
		return c.randomMember(id)
	}
	var buf [80]NodeID
	cand := buf[:0]
	for _, s := range st.succs {
		if s != NoNode && s != id && !containsNode(cand, s) {
			cand = append(cand, s)
		}
	}
	for _, f := range st.fingers {
		if f != NoNode && f != id && !containsNode(cand, f) {
			cand = append(cand, f)
		}
	}
	if len(cand) == 0 {
		return NoNode
	}
	return cand[st.src.Intn(len(cand))]
}

// randomMember picks a live member other than exclude, or NoNode. Reads
// the shared member list: driver-side only on a sharded runtime.
func (c *Chord) randomMember(exclude NodeID) NodeID {
	if len(c.order) == 0 {
		return NoNode
	}
	for tries := 0; tries < 4; tries++ {
		if m := c.order[c.src.Intn(len(c.order))]; m != exclude {
			return m
		}
	}
	for _, m := range c.order {
		if m != exclude {
			return m
		}
	}
	return NoNode
}

func (c *Chord) insertMember(id NodeID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	if i < len(c.order) && c.order[i] == id {
		return
	}
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
}

func (c *Chord) removeMember(id NodeID) {
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	if i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i:i], c.order[i+1:]...)
	}
}

func containsNode(list []NodeID, id NodeID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}

// ---- maintenance: stabilize, notify, finger repair ----

// scheduleStabilize runs the periodic maintenance chain for one member
// incarnation. The chain dies when the state pointer changes (the node
// left, or left and rejoined as a fresh incarnation) and pauses while the
// node is down without having left (a crash the protocol has not seen).
func (c *Chord) scheduleStabilize(id NodeID, st *chordState) {
	d := c.cfg.StabilizeEvery + time.Duration(st.src.Int63n(int64(c.cfg.StabilizeEvery)/4+1))
	if h := c.cfg.Horizon; h > 0 && c.rt.Now(id)+d > h {
		return
	}
	c.rt.After(id, d, func() {
		if c.state(id) != st {
			return
		}
		if c.rt.Alive(id) {
			c.stabilizeOnce(id, st)
		}
		c.scheduleStabilize(id, st)
	})
}

// stabilizeOnce runs one maintenance round: verify the successor, notify
// it, and periodically fix one finger with a full lookup.
func (c *Chord) stabilizeOnce(id NodeID, st *chordState) {
	n := c.rt.Node(id)
	st.round++
	if len(st.succs) == 0 {
		// Alone, or the join lookup failed: retry off another member.
		if boot := c.pickBootstrap(id, st); boot != NoNode {
			c.bootstrap(n, st, boot)
		}
		return
	}
	c.stabilizeSucc(id, st, stabilizeBudget)
	if c.cfg.FingerEvery > 0 && st.round%c.cfg.FingerEvery == 0 {
		c.fixFinger(n, st)
	}
	if st.round%selfLookupEvery == 0 {
		// Periodic cross-region repair: re-resolve our own successor from
		// a random entry point (see bootstrap).
		if boot := c.pickBootstrap(id, st); boot != NoNode {
			c.bootstrap(n, st, boot)
		}
	}
}

// selfLookupEvery re-runs the own-identifier lookup every this many
// stabilize rounds.
const selfLookupEvery = 8

// stabilizeBudget bounds one round's cascade: deep enough to walk a
// freshly joined region back several positions and to skip a dead
// successor-list prefix, small enough that a churn-degraded ring cannot
// burn unbounded maintenance traffic in a single round (the next round
// continues where this one stopped).
const stabilizeBudget = 16

// stabilizeSucc asks the current successor for its predecessor and
// successor list, adopts a closer successor if one slotted in, refreshes
// the list tail, and notifies. When a closer successor is adopted the walk
// CASCADES — it immediately re-runs against the new successor instead of
// waiting a full period, because the predecessor walk heals one ring
// position per exchange and a freshly joined region would otherwise take
// O(ring) periods to converge. budget bounds the cascade (each step
// strictly shrinks the (self, successor) arc).
func (c *Chord) stabilizeSucc(id NodeID, st *chordState, budget int) {
	if budget <= 0 || len(st.succs) == 0 {
		return
	}
	n := c.rt.Node(id)
	succ := st.succs[0]
	n.Request(succ, MsgChordState, nil, c.cfg.RPCTimeout,
		func(env Envelope) {
			if c.state(id) != st || !n.Alive() {
				return
			}
			sm := env.Payload.(cStateOKMsg)
			delete(st.suspect, succ)
			// learn() adopts whichever of these lands closest between us
			// and the current successor — the successor's predecessor (the
			// classic stabilize rectification) and its successor list.
			c.learn(st, succ)
			if sm.Pred != NoNode && sm.Pred != id {
				c.learn(st, sm.Pred)
			}
			for _, s := range sm.Succs {
				c.learn(st, s)
			}
			if len(st.succs) > 0 && st.succs[0] != succ {
				// A closer successor surfaced: notify it and keep walking
				// toward our true successor within this round.
				n.Send(st.succs[0], MsgChordNotify, nil)
				c.stabilizeSucc(id, st, budget-1)
				return
			}
			c.adoptSuccessors(st, id, succ, sm.Succs)
			n.Send(st.succs[0], MsgChordNotify, nil)
		},
		func() {
			if c.state(id) != st || !n.Alive() {
				return
			}
			// Possibly dead, possibly one lost exchange: evict only on the
			// second consecutive timeout, then retry against the next list
			// entry right away (successor-list repair).
			if c.suspectPeer(st, succ) {
				c.stabilizeSucc(id, st, budget-1)
			}
		})
}

// fixFinger repairs one finger slot with a full iterative lookup of its
// ring target; learn() slots the result in. Slots whose target falls
// within the successor arc are answered by the successor pointer for free
// and skipped, so the lookup budget cycles over the O(log n) long-range
// fingers that actually route — a 64-slot round-robin would leave them
// stale for longer than a churn session.
func (c *Chord) fixFinger(n *Node, st *chordState) {
	if len(st.succs) == 0 {
		return
	}
	succRing := c.RingIDOf(st.succs[0])
	i := st.nextFin
	for skipped := 0; skipped < len(st.fingers); skipped++ {
		if !dht.BetweenRightIncl(st.ringID+1<<uint(i), st.ringID, succRing) {
			break
		}
		st.fingers[i] = st.succs[0]
		i = (i + 1) % len(st.fingers)
	}
	st.nextFin = (i + 1) % len(st.fingers)
	target := st.ringID + 1<<uint(i)
	res := &LookupResult{Owner: NoNode}
	c.drive(n, st, nil, target, res, func(r LookupResult) {
		if c.state(n.ID) != st {
			return
		}
		if r.OK && r.Owner != NoNode && r.Owner != n.ID {
			// The freshly resolved owner replaces whatever the slot held —
			// a stale entry would otherwise survive as long as it looked
			// "closer" than anything passively learned.
			if dht.RingDist(st.ringID+1<<uint(i), c.RingIDOf(r.Owner)) < dht.RingDist(st.ringID+1<<uint(i), st.ringID) {
				st.fingers[i] = r.Owner
			}
			c.learn(st, r.Owner)
		}
	})
}

// learn folds an observed peer into the routing state: it repairs the
// successor pointer when the peer falls between self and the current
// successor (without this, a mass join can freeze into a stable wrong
// ring — stabilize alone only ever inspects the successor's predecessor,
// which on a garbage pointer graph may never name anything closer), and it
// offers the peer to every finger slot it improves (finger[i] wants the
// first known node at or after ringID + 2^i, not wrapping past self).
func (c *Chord) learn(st *chordState, peer NodeID) {
	if peer == NoNode {
		return
	}
	pr := c.RingIDOf(peer)
	if pr == st.ringID {
		return
	}
	if len(st.succs) > 0 && peer != st.succs[0] && dht.Between(pr, st.ringID, c.RingIDOf(st.succs[0])) {
		// A closer successor, learned from any reply or notify. It is
		// unverified — if it is stale and dead, stabilize will suspect and
		// evict it within two rounds.
		c.adoptSuccessors(st, NoNode, peer, st.succs)
	}
	// Slot i covers peers at clockwise distance >= 2^i from self, so the
	// in-range slots are exactly 0..Len64(D)-1 for D = dist(self, peer).
	// Within a slot, every stored finger is itself in range (the only
	// assignments are here and in the lookup-repair path, both gated on
	// the range check), so "peer closer to 2^i than cur" reduces to
	// comparing plain clockwise distances from self: D < dist(self, cur).
	// This is the per-message hot loop — called for every reply and
	// notify — and the reduced form does one load and one compare per
	// slot instead of three ring-distance computations.
	// Consecutive slots usually hold the same finger (a sparse ring fills
	// many slots with one node), and the replace decision depends only on
	// the occupant — memoise it across a run of equal occupants. Stored
	// fingers always have their ring hash cached (they were RingIDOf'ed
	// when learned), so c.rings is read directly.
	D := dht.RingDist(st.ringID, pr)
	maxI := bits.Len64(D)
	rings := c.rings
	prev := NodeID(-2) // never a valid finger value
	replace := false
	for i := 0; i < maxI; i++ {
		cur := st.fingers[i]
		if cur != prev {
			prev = cur
			replace = cur == NoNode || D < rings[cur]-st.ringID
		}
		if replace {
			st.fingers[i] = peer
		}
	}
}

// suspectPeer records an RPC timeout against a peer and evicts it after
// two consecutive ones. A single timeout must not evict: under packet loss
// ~2·loss of all RPCs time out against perfectly live peers, and evicting
// the successor on one lost exchange makes the node claim its successor's
// keys until the next stabilize heals it — enough ring incoherence to make
// puts and gets resolve different owners. Two consecutive timeouts are
// overwhelmingly a dead peer. Reports whether the peer was evicted.
func (c *Chord) suspectPeer(st *chordState, peer NodeID) bool {
	st.suspect[peer]++
	if st.suspect[peer] < 2 {
		return false
	}
	delete(st.suspect, peer)
	c.evictPeer(st, peer)
	return true
}

// evictPeer drops a dead peer from a member's routing state.
func (c *Chord) evictPeer(st *chordState, peer NodeID) {
	for i, s := range st.succs {
		if s == peer {
			st.succs = append(st.succs[:i:i], st.succs[i+1:]...)
			break
		}
	}
	for i, f := range st.fingers {
		if f == peer {
			st.fingers[i] = NoNode
		}
	}
	if st.pred == peer {
		st.pred = NoNode
	}
}

// ---- wire payloads ----

// cFindMsg asks one routing step toward Key's owner.
type cFindMsg struct{ Key uint64 }

// cFindOKMsg answers a routing step: either the owner (with its likely
// replica set), or the next hop plus fallback candidates for when the next
// hop turns out dead.
type cFindOKMsg struct {
	Done  bool
	Owner NodeID
	Reps  []NodeID
	Next  NodeID
	Alts  []NodeID
}

// cStateOKMsg is the stabilize answer.
type cStateOKMsg struct {
	Pred  NodeID
	Succs []NodeID
}

// cStoreMsg stores Val under Key; Rep is how many successor replicas the
// receiver should fan out.
type cStoreMsg struct {
	Key string
	Val []byte
	Rep int
}

// cFetchMsg retrieves Key's values.
type cFetchMsg struct{ Key string }

// cFetchOKMsg carries them back.
type cFetchOKMsg struct{ Vals [][]byte }

// cHandoffMsg transfers a graceful leaver's keys.
type cHandoffMsg struct{ Data map[string][][]byte }

// ---- handlers ----

// routeStep decides one routing step at a member: ownership if the key
// falls in (pred, self] or (self, successor], otherwise the closest
// preceding known candidate with fallbacks.
func (c *Chord) routeStep(self NodeID, st *chordState, key uint64) cFindOKMsg {
	if len(st.succs) == 0 {
		return cFindOKMsg{Done: true, Owner: self, Next: NoNode}
	}
	if st.pred != NoNode && dht.BetweenRightIncl(key, c.RingIDOf(st.pred), st.ringID) {
		return cFindOKMsg{Done: true, Owner: self, Reps: append([]NodeID(nil), st.succs...), Next: NoNode}
	}
	succ := st.succs[0]
	if dht.BetweenRightIncl(key, st.ringID, c.RingIDOf(succ)) {
		return cFindOKMsg{Done: true, Owner: succ, Reps: append([]NodeID(nil), st.succs[1:]...), Next: NoNode}
	}
	cands := c.closestPreceding(st, self, key)
	if len(cands) == 0 {
		return cFindOKMsg{Next: succ, Alts: append([]NodeID(nil), st.succs[1:]...)}
	}
	alts := cands[1:]
	if len(alts) > 3 {
		alts = alts[:3]
	}
	return cFindOKMsg{Next: cands[0], Alts: append([]NodeID(nil), alts...)}
}

// closestPreceding returns the known candidates strictly between self and
// the key, closest-to-the-key first. The returned slice is the Chord
// instance's scratch buffer, valid until the next call — the one caller
// (routeStep) copies what it keeps. Candidate sets are small (≤ fingers +
// successors, with heavy duplication), so dedup is a linear scan over the
// accepted list and the ordering is an insertion sort on precomputed
// distances — no map, no sort.Slice closure, no per-call allocation.
func (c *Chord) closestPreceding(st *chordState, self NodeID, key uint64) []NodeID {
	cp := &c.cp[c.rt.ShardOf(self)]
	out := cp.out[:0]
	dist := cp.dist[:0]
	for pass := 0; pass < 2; pass++ {
		list := st.fingers
		if pass == 1 {
			list = st.succs
		}
	next:
		for _, id := range list {
			if id == NoNode || id == self {
				continue
			}
			for _, x := range out {
				if x == id {
					continue next
				}
			}
			r := c.RingIDOf(id)
			if dht.Between(r, st.ringID, key) {
				out = append(out, id)
				dist = append(dist, dht.RingDist(r, key))
			}
		}
	}
	// Insertion sort by (distance-to-key, id): the same strict total order
	// the previous sort.Slice used, so the result is identical.
	for i := 1; i < len(out); i++ {
		d, id := dist[i], out[i]
		j := i - 1
		for j >= 0 && (dist[j] > d || (dist[j] == d && out[j] > id)) {
			dist[j+1], out[j+1] = dist[j], out[j]
			j--
		}
		dist[j+1], out[j+1] = d, id
	}
	cp.out, cp.dist = out, dist // retain grown capacity
	return out
}

// handleFind answers one routing step. A node that is no longer a member
// stays silent, so the asker's per-hop timeout fires and it retries via its
// fallback candidates.
func (c *Chord) handleFind(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	n.Reply(env, MsgChordFindOK, c.routeStep(n.ID, st, env.Payload.(cFindMsg).Key))
}

func (c *Chord) handleState(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	n.Reply(env, MsgChordStateOK, cStateOKMsg{Pred: st.pred, Succs: append([]NodeID(nil), st.succs...)})
}

// handleNotify rectifies the predecessor pointer. Liveness of the old
// predecessor is inferred from notify freshness (a live predecessor
// re-notifies every stabilize round), keeping the protocol free of global
// aliveness peeks.
func (c *Chord) handleNotify(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil || env.From == n.ID {
		return
	}
	p := env.From
	now := c.rt.Now(n.ID)
	stale := st.pred == NoNode || now-st.predSeen > 3*c.cfg.StabilizeEvery
	if st.pred == p || stale || dht.Between(c.RingIDOf(p), c.RingIDOf(st.pred), st.ringID) {
		st.pred = p
		st.predSeen = now
	}
	if len(st.succs) == 0 {
		// Two-node bootstrap: the first node hears of the second only by
		// this notify, which makes the notifier its successor too.
		st.succs = []NodeID{p}
	}
	c.learn(st, p)
}

func (c *Chord) handleStore(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	sm := env.Payload.(cStoreMsg)
	storeValue(st.data, sm.Key, sm.Val)
	reps := sm.Rep
	for _, s := range st.succs {
		if reps <= 0 {
			break
		}
		n.Send(s, MsgChordStoreRep, cStoreMsg{Key: sm.Key, Val: sm.Val})
		reps--
	}
	n.Reply(env, MsgChordStoreOK, nil)
}

func (c *Chord) handleStoreRep(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	sm := env.Payload.(cStoreMsg)
	storeValue(st.data, sm.Key, sm.Val)
}

// storeValue appends a value under key unless an identical value is
// already there: hints are soft state refreshed by republish, and without
// the duplicate check every rejoin's republish would grow the key's value
// set (and every fetch reply) forever.
func storeValue(data map[string][][]byte, key string, val []byte) {
	for _, v := range data[key] {
		if string(v) == string(val) {
			return
		}
	}
	data[key] = append(data[key], append([]byte(nil), val...))
}

func (c *Chord) handleFetch(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	vals := st.data[env.Payload.(cFetchMsg).Key]
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = append([]byte(nil), v...)
	}
	n.Reply(env, MsgChordFetchOK, cFetchOKMsg{Vals: out})
}

func (c *Chord) handleHandoff(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	mergeValues(st.data, env.Payload.(cHandoffMsg).Data)
}

// handleMigrate hands a new predecessor the keys it now owns: everything
// this node holds whose hash no longer falls in its own ownership range
// (joiner, self]. Without this, every join would strand previously stored
// keys at the old owner while lookups resolve to the new one. The copies
// stay here too — deleting before the (lossy) reply is confirmed would
// orphan the keys, and keeping them just demotes this node to a replica
// for them; duplicate-skipping merges keep repeated migrations from
// inflating anything.
func (c *Chord) handleMigrate(n *Node, env Envelope) {
	st := c.state(n.ID)
	if st == nil {
		return
	}
	joiner := c.RingIDOf(env.From)
	moved := make(map[string][][]byte)
	for k, vs := range st.data {
		if !dht.BetweenRightIncl(dht.HashKey(k), joiner, st.ringID) {
			cvs := make([][]byte, len(vs))
			for i, v := range vs {
				cvs[i] = append([]byte(nil), v...)
			}
			moved[k] = cvs
		}
	}
	n.Reply(env, MsgChordMigrateOK, cHandoffMsg{Data: moved})
}

// mergeValues folds src into the data map, skipping values already present
// under their key, so repeated migrations and handoffs stay idempotent.
func mergeValues(data map[string][][]byte, src map[string][][]byte) {
	for k, vs := range src {
		for _, v := range vs {
			storeValue(data, k, v)
		}
	}
}

// ---- client operations: iterative lookup, put, get ----

// LookupResult reports one iterative lookup.
type LookupResult struct {
	// Owner is the resolved key owner (NoNode on failure).
	Owner NodeID
	// Reps are the owner's likely successors — where replicas live.
	Reps []NodeID
	// Hops counts routing RPCs issued (including retried ones).
	Hops int
	// Retries counts hops that timed out and were re-routed.
	Retries int
	// OK reports whether the lookup resolved.
	OK bool
}

// OpResult reports one Put or Get.
type OpResult struct {
	OK bool
	// Vals carries the fetched values (Get only).
	Vals [][]byte
	// Hops, Retries and LookupFails aggregate over every lookup attempt
	// the operation made.
	Hops        int
	Retries     int
	LookupFails int
}

// Lookup resolves a key's owner iteratively from the given node. A member
// starts from its own routing state (free); a non-member starts from a
// random live member (the bootstrap handout). done fires exactly once
// unless the issuing node dies mid-lookup.
func (c *Chord) Lookup(from NodeID, key string, done func(LookupResult)) {
	n := c.rt.AddNode(from)
	res := &LookupResult{Owner: NoNode}
	c.drive(n, c.state(from), nil, dht.HashKey(key), res, done)
}

// drive runs one iterative lookup from n: a best-first frontier of
// candidates ordered by remaining ring distance, asking one at a time,
// folding each answer's alternates in, and retrying through the frontier
// when a hop times out. st is n's member state (nil: seed from starts, or
// a random member).
func (c *Chord) drive(n *Node, st *chordState, starts []NodeID, key uint64, res *LookupResult, done func(LookupResult)) {
	visited := map[NodeID]bool{n.ID: true}
	var frontier []NodeID
	push := func(ids ...NodeID) {
		for _, id := range ids {
			if id != NoNode && !visited[id] {
				visited[id] = true
				frontier = append(frontier, id)
			}
		}
	}
	ost := st
	if st != nil && len(st.succs) == 0 && (c.rt.Sharded() || len(c.order) > 1) {
		// A member that has not (re)discovered its successor yet would
		// answer every key with itself — route via the membership instead,
		// like a non-member, until stabilize re-anchors it. (Sharded, the
		// shared member list is driver-side state; the own-state bootstrap
		// pick below covers the same repair, and a genuinely alone member
		// simply fails the lookup.)
		st = nil
	}
	if st != nil {
		step := c.routeStep(n.ID, st, key)
		if step.Done {
			res.OK, res.Owner, res.Reps = true, step.Owner, step.Reps
			done(*res)
			return
		}
		push(step.Next)
		push(step.Alts...)
	} else {
		if len(starts) == 0 {
			if c.rt.Sharded() {
				if ost != nil {
					if b := c.pickBootstrap(n.ID, ost); b != NoNode {
						starts = []NodeID{b}
					}
				}
			} else if b := c.randomMember(n.ID); b != NoNode {
				starts = []NodeID{b}
			}
		}
		push(starts...)
	}
	memberState := func() *chordState {
		if st != nil && c.state(n.ID) == st {
			return st
		}
		return nil
	}
	maxTimeouts := c.cfg.MaxLookupTimeouts
	if maxTimeouts <= 0 {
		maxTimeouts = c.cfg.MaxHops
	}
	// Flight recorder: one trace record per hop request, tagged with a
	// recorder-unique lookup ID. afterTimeout distinguishes a first-choice
	// hop (HopOK) from one re-routed after a timeout (HopRetry).
	rec := c.rt.FlightRecorder()
	var lseq uint64
	if rec != nil {
		lseq = rec.Begin()
	}
	afterTimeout := false
	var next func()
	next = func() {
		if len(frontier) == 0 || res.Hops >= c.cfg.MaxHops || res.Retries >= maxTimeouts {
			done(*res)
			return
		}
		best := 0
		for i := 1; i < len(frontier); i++ {
			if dht.RingDist(c.RingIDOf(frontier[i]), key) < dht.RingDist(c.RingIDOf(frontier[best]), key) {
				best = i
			}
		}
		cur := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		res.Hops++
		hopStart := c.rt.Now(n.ID)
		wasRetry := afterTimeout
		afterTimeout = false
		n.RequestPolicy(cur, MsgChordFind, cFindMsg{Key: key}, c.cfg.RPCTimeout, c.cfg.Retry,
			func(env Envelope) {
				if !n.Alive() {
					return
				}
				if rec != nil {
					out := obs.HopOK
					if wasRetry {
						out = obs.HopRetry
					}
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "chord", Type: MsgChordFind,
						From: int(n.ID), To: int(cur), At: hopStart,
						RTTms: msOf(c.rt.Now(n.ID) - hopStart), Outcome: out})
				}
				ok := env.Payload.(cFindOKMsg)
				if ms := memberState(); ms != nil {
					delete(ms.suspect, cur)
					c.learn(ms, cur)
					c.learn(ms, ok.Owner)
					c.learn(ms, ok.Next)
				}
				if ok.Done {
					res.OK, res.Owner, res.Reps = true, ok.Owner, ok.Reps
					done(*res)
					return
				}
				push(ok.Next)
				push(ok.Alts...)
				next()
			},
			func() {
				if !n.Alive() {
					return
				}
				if rec != nil {
					rec.Record(obs.Hop{Lookup: lseq, Scheme: "chord", Type: MsgChordFind,
						From: int(n.ID), To: int(cur), At: hopStart, Outcome: obs.HopTimeout})
				}
				res.Retries++
				afterTimeout = true
				if ms := memberState(); ms != nil {
					c.suspectPeer(ms, cur)
				}
				next()
			})
	}
	next()
}

// Put stores value under key from the given node: an iterative lookup,
// then a store RPC to the owner (which replicates server-side), falling
// back through the owner's successors and finally a fresh lookup when
// stores time out. Stores are idempotent — an identical value already
// present is not duplicated — so hint schemes can republish freely.
func (c *Chord) Put(from NodeID, key string, val []byte, done func(OpResult)) {
	res := &OpResult{}
	c.opAttempt(c.rt.AddNode(from), key, res, 2,
		MsgChordStore, cStoreMsg{Key: key, Val: val, Rep: c.cfg.Replicas - 1},
		func(Envelope) { res.OK = true },
		done)
}

// Get retrieves a key's values from the given node: an iterative lookup,
// a fetch from the owner, and fallback fetches from its replicas when the
// owner has gone dark.
func (c *Chord) Get(from NodeID, key string, done func(OpResult)) {
	res := &OpResult{}
	c.opAttempt(c.rt.AddNode(from), key, res, 2,
		MsgChordFetch, cFetchMsg{Key: key},
		func(env Envelope) {
			res.OK = true
			res.Vals = env.Payload.(cFetchOKMsg).Vals
		},
		done)
}

// opAttempt is the shared skeleton of Put and Get: resolve the key's
// owner, issue the operation RPC against the owner and then each replica
// in turn when targets time out, and re-run the whole attempt (fresh
// lookup included) when every target is exhausted, up to the attempt
// budget. onOK consumes the first successful reply before done fires.
func (c *Chord) opAttempt(n *Node, key string, res *OpResult, attempts int, typ string, payload any, onOK func(Envelope), done func(OpResult)) {
	if attempts <= 0 {
		done(*res)
		return
	}
	lr := &LookupResult{Owner: NoNode}
	c.drive(n, c.state(n.ID), nil, dht.HashKey(key), lr, func(r LookupResult) {
		res.Hops += r.Hops
		res.Retries += r.Retries
		if !r.OK {
			res.LookupFails++
			c.opAttempt(n, key, res, attempts-1, typ, payload, onOK, done)
			return
		}
		targets := append([]NodeID{r.Owner}, r.Reps...)
		var tryNext func(ts []NodeID)
		tryNext = func(ts []NodeID) {
			for len(ts) > 0 && ts[0] == NoNode {
				ts = ts[1:]
			}
			if len(ts) == 0 {
				c.opAttempt(n, key, res, attempts-1, typ, payload, onOK, done)
				return
			}
			n.RequestPolicy(ts[0], typ, payload, c.cfg.RPCTimeout, c.cfg.Retry,
				func(env Envelope) {
					onOK(env)
					done(*res)
				},
				func() {
					res.Retries++
					tryNext(ts[1:])
				})
		}
		tryNext(targets)
	})
}
