// Wire format and runtime-wide configuration (the package doc lives in
// doc.go).

package p2p

import (
	"fmt"
	"math"
	"time"
)

// NodeID identifies a runtime node. IDs are indices into the underlying
// latency.Matrix, so any matrix row can be brought up as a node.
type NodeID int

// Envelope is the wire format every message shares: a type tag, the
// endpoints, a correlation ID and a protocol-specific payload. MsgID is
// allocated from a runtime-global counter, so a request's ID can never
// collide with an ID the receiver itself allocated; Resp marks responses,
// so a node that requests something of itself still dispatches the request
// to its handler rather than mistaking it for the reply.
type Envelope struct {
	Type    string
	From    NodeID
	To      NodeID
	MsgID   uint64
	Resp    bool
	Payload any
}

// Built-in message types. Protocol packages on top (Meridian, expanding
// ring) define their own type tags; only ping/pong is wired into every
// node, because RTT measurement is the primitive all of them share.
const (
	MsgPing = "ping"
	MsgPong = "pong"
)

// Metrics aggregates runtime-wide cost counters. Probe counters follow the
// overlay package's methodology: QueryProbes is the cost the paper bounds
// (RTT measurements issued while answering a query), MaintProbes is
// overlay construction and repair. Message counters are the wire-level
// view the static simulator cannot provide.
type Metrics struct {
	// MsgsSent counts every envelope handed to the transport.
	MsgsSent int64
	// MsgsDelivered counts envelopes that reached a live inbox.
	MsgsDelivered int64
	// MsgsLost counts envelopes dropped by the loss model.
	MsgsLost int64
	// MsgsDead counts envelopes that arrived at a crashed or absent node.
	MsgsDead int64
	// MsgsMulticast counts the envelopes sent on behalf of Multicast calls
	// (each copy is also counted in MsgsSent).
	MsgsMulticast int64
	// QueryProbes counts query-time RTT measurements (pings) issued.
	QueryProbes int64
	// MaintProbes counts maintenance RTT measurements issued.
	MaintProbes int64
	// ExpiriesScheduled counts request-expiry events parked in the timeout
	// slab; ExpiriesFired counts those that ran. The difference is the
	// number of expiry records still pending — the accounting identity the
	// invariants tests assert.
	ExpiriesScheduled int64
	ExpiriesFired     int64
	// Timeouts counts RPCs that expired without a response (the subset of
	// ExpiriesFired whose request was still outstanding at a live node).
	Timeouts int64
	// FaultDropped counts envelopes discarded by the fault plane (bursts,
	// black-holes, partitions). Each is also counted in MsgsLost, so the
	// sent = delivered + lost + dead (+ inflight) accounting identity holds
	// with faults injected.
	FaultDropped int64
	// FaultDelayed counts envelopes whose one-way delay the fault plane
	// stretched (delay spikes, reordering holds).
	FaultDelayed int64
	// FaultDuplicated counts the extra copies the fault plane injected
	// (each copy is also counted in MsgsSent).
	FaultDuplicated int64
	// Retries counts the extra request attempts issued by the retry policy
	// layer (attempt 2 and onward of a Node.RequestPolicy call).
	Retries int64
}

// Config parameterises a Runtime.
type Config struct {
	// LossProb is the independent drop probability of each one-way
	// message. 0 reproduces the static simulator's lossless world.
	LossProb float64
	// RPCTimeout is the default request expiry used when a caller passes
	// a non-positive timeout.
	RPCTimeout time.Duration
}

// Validate checks the configuration's knobs: the loss probability must be
// a probability and the RPC timeout must not be negative (zero means "use
// the default"). Every transport constructor rejects an invalid Config up
// front, so a typo'd knob fails at construction instead of surfacing as a
// nonsense loss draw or an RPC that expires before it is sent.
func (c Config) Validate() error {
	if math.IsNaN(c.LossProb) || c.LossProb < 0 || c.LossProb > 1 {
		return fmt.Errorf("p2p: loss probability %v out of [0,1]", c.LossProb)
	}
	if c.RPCTimeout < 0 {
		return fmt.Errorf("p2p: negative RPC timeout %v", c.RPCTimeout)
	}
	return nil
}

// DefaultConfig returns a lossless runtime with a 2 s RPC timeout —
// generous against the ≤ ~400 ms RTTs the latency models produce, so a
// timeout always means loss or death, never a slow link.
func DefaultConfig() Config {
	return Config{LossProb: 0, RPCTimeout: 2 * time.Second}
}

// durOf converts float64 milliseconds to a virtual-time duration, rounding
// to the nearest nanosecond: truncation would shave a nanosecond off
// latencies whose float image lands just under an integer, breaking the
// round-trip-equals-matrix-entry invariant for values that ARE exactly
// representable in nanoseconds.
func durOf(ms float64) time.Duration {
	return time.Duration(math.Round(ms * float64(time.Millisecond)))
}

// msOf converts a virtual-time duration to float64 milliseconds.
func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
