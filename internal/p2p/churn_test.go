package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/sim"
)

func TestChurnTogglesLiveness(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(20), DefaultConfig(), 1)
	ids := make([]NodeID, 20)
	for i := range ids {
		ids[i] = NodeID(i)
		rt.AddNode(ids[i])
	}
	cfg := ChurnConfig{
		MeanSession:  10 * time.Second,
		MeanOffline:  5 * time.Second,
		GracefulProb: 0.5,
		Horizon:      5 * time.Minute,
	}
	churn := NewChurn(rt, cfg, 42)
	var joins, leaves, graceful int
	churn.OnLeave = func(id NodeID, g bool) {
		leaves++
		if g {
			graceful++
		}
		if !rt.Alive(id) {
			t.Error("OnLeave fired for a node already down")
		}
	}
	churn.OnJoin = func(id NodeID) {
		joins++
		if !rt.Alive(id) {
			t.Error("OnJoin fired before the node came up")
		}
	}
	churn.Drive(ids)
	kernel.Run() // horizon bounds the chain, so the queue drains

	if leaves == 0 || joins == 0 {
		t.Fatalf("no churn: %d leaves, %d joins", leaves, joins)
	}
	if leaves != churn.Leaves || joins != churn.Joins {
		t.Fatalf("hook/counter mismatch: %d/%d vs %d/%d", leaves, joins, churn.Leaves, churn.Joins)
	}
	if graceful == 0 || graceful == leaves {
		t.Fatalf("graceful split degenerate: %d of %d", graceful, leaves)
	}
	if churn.Crashes != leaves-graceful {
		t.Fatalf("crashes %d, want %d", churn.Crashes, leaves-graceful)
	}
	// With a 5-minute horizon, ~15 s cycles and 20 nodes, dozens of
	// sessions must have ended.
	if leaves < 20 {
		t.Fatalf("suspiciously little churn: %d leaves", leaves)
	}
}

func TestChurnHorizonDrainsQueue(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(4), DefaultConfig(), 1)
	ids := []NodeID{0, 1, 2, 3}
	for _, id := range ids {
		rt.AddNode(id)
	}
	cfg := DefaultChurnConfig()
	cfg.Horizon = 10 * time.Minute
	churn := NewChurn(rt, cfg, 7)
	churn.Drive(ids)
	end := kernel.Run()
	if end > cfg.Horizon {
		t.Fatalf("event beyond horizon: %v", end)
	}
	if kernel.Pending() != 0 {
		t.Fatalf("%d events still queued", kernel.Pending())
	}
}

// AddNode during a churn downtime must not resurrect the node: the churn
// generator's pending rejoin would then see it alive and (before the fix)
// return without rescheduling a leave, silently removing the node from the
// churn process forever. After the fix AddNode leaves the node down, the
// rejoin counts one join, and the session/leave cycle keeps running.
func TestAddNodeDuringChurnKeepsNodeInChurnProcess(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(2), DefaultConfig(), 1)
	id := NodeID(0)
	rt.AddNode(id)
	cfg := ChurnConfig{
		MeanSession:  10 * time.Second,
		MeanOffline:  10 * time.Second,
		GracefulProb: 0.5,
		Horizon:      10 * time.Minute,
	}
	churn := NewChurn(rt, cfg, 9)
	churn.OnLeave = func(NodeID, bool) {
		// OnLeave fires just before the node goes down; re-add it right
		// after (what Expanding.Register or an experiment re-registering a
		// target does mid-churn) — that must not revive it.
		kernel.After(0, func() {
			n := rt.AddNode(id)
			if n.Alive() {
				t.Error("AddNode resurrected a churn-downed node")
			}
		})
	}
	churn.Drive([]NodeID{id})
	kernel.Run()
	if churn.Leaves < 2 {
		t.Fatalf("churn stalled after the AddNode: %d leaves, want the cycle to continue", churn.Leaves)
	}
	if churn.Joins == 0 || churn.Joins > churn.Leaves {
		t.Fatalf("join accounting off: %d joins, %d leaves", churn.Joins, churn.Leaves)
	}
}

// An externally-Restart()ed node mid-gap is not a churn join: the rejoin
// must not count it or fire OnJoin, but must still schedule the next leave
// so the node keeps churning.
func TestExternalRestartDuringGapRestartsChurnCycle(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(2), DefaultConfig(), 1)
	id := NodeID(0)
	rt.AddNode(id)
	cfg := ChurnConfig{
		MeanSession:  10 * time.Second,
		MeanOffline:  20 * time.Second,
		GracefulProb: 1,
		Horizon:      10 * time.Minute,
	}
	churn := NewChurn(rt, cfg, 3)
	joins := 0
	churn.OnJoin = func(NodeID) { joins++ }
	churn.OnLeave = func(NodeID, bool) {
		// Revive immediately after the leave event, well inside the gap.
		kernel.After(time.Millisecond, func() {
			if n := rt.Node(id); !n.Alive() {
				n.Restart()
			}
		})
	}
	churn.Drive([]NodeID{id})
	kernel.Run()
	if churn.Leaves < 2 {
		t.Fatalf("churn stalled after external restart: %d leaves", churn.Leaves)
	}
	if churn.Joins != joins {
		t.Fatalf("OnJoin fired %d times but %d joins counted", joins, churn.Joins)
	}
	if churn.Joins != 0 {
		t.Fatalf("external restarts were counted as churn joins: %d", churn.Joins)
	}
}

// An externally-Stop()ed node mid-session is not a churn leave: the
// pending leave must not count it or fire OnLeave, but must still schedule
// the rejoin so the node keeps churning (the mirror of the AddNode case).
func TestExternalStopMidSessionKeepsNodeInChurnProcess(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(2), DefaultConfig(), 1)
	id := NodeID(0)
	rt.AddNode(id)
	cfg := ChurnConfig{
		MeanSession:  10 * time.Second,
		MeanOffline:  10 * time.Second,
		GracefulProb: 1,
		Horizon:      10 * time.Minute,
	}
	churn := NewChurn(rt, cfg, 3)
	churn.Drive([]NodeID{id})
	// Crash the node well before its first scheduled churn leave.
	kernel.After(time.Millisecond, func() { rt.Node(id).Stop() })
	kernel.Run()
	if churn.Joins == 0 {
		t.Fatal("churn never rejoined the externally stopped node")
	}
	if churn.Leaves == 0 {
		t.Fatal("churn stalled after the external stop: no later leaves")
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		kernel := sim.New()
		rt := New(kernel, lineMatrix(10), DefaultConfig(), 3)
		ids := make([]NodeID, 10)
		for i := range ids {
			ids[i] = NodeID(i)
			rt.AddNode(ids[i])
		}
		cfg := DefaultChurnConfig()
		cfg.Horizon = 20 * time.Minute
		churn := NewChurn(rt, cfg, 5)
		churn.Drive(ids)
		kernel.Run()
		return churn.Joins, churn.Leaves, churn.Crashes
	}
	j1, l1, c1 := run()
	j2, l2, c2 := run()
	if j1 != j2 || l1 != l2 || c1 != c2 {
		t.Fatalf("same seed diverged: %d/%d/%d vs %d/%d/%d", j1, l1, c1, j2, l2, c2)
	}
}
