package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/sim"
)

func TestChurnTogglesLiveness(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(20), DefaultConfig(), 1)
	ids := make([]NodeID, 20)
	for i := range ids {
		ids[i] = NodeID(i)
		rt.AddNode(ids[i])
	}
	cfg := ChurnConfig{
		MeanSession:  10 * time.Second,
		MeanOffline:  5 * time.Second,
		GracefulProb: 0.5,
		Horizon:      5 * time.Minute,
	}
	churn := NewChurn(rt, cfg, 42)
	var joins, leaves, graceful int
	churn.OnLeave = func(id NodeID, g bool) {
		leaves++
		if g {
			graceful++
		}
		if !rt.Alive(id) {
			t.Error("OnLeave fired for a node already down")
		}
	}
	churn.OnJoin = func(id NodeID) {
		joins++
		if !rt.Alive(id) {
			t.Error("OnJoin fired before the node came up")
		}
	}
	churn.Drive(ids)
	kernel.Run() // horizon bounds the chain, so the queue drains

	if leaves == 0 || joins == 0 {
		t.Fatalf("no churn: %d leaves, %d joins", leaves, joins)
	}
	if leaves != churn.Leaves || joins != churn.Joins {
		t.Fatalf("hook/counter mismatch: %d/%d vs %d/%d", leaves, joins, churn.Leaves, churn.Joins)
	}
	if graceful == 0 || graceful == leaves {
		t.Fatalf("graceful split degenerate: %d of %d", graceful, leaves)
	}
	if churn.Crashes != leaves-graceful {
		t.Fatalf("crashes %d, want %d", churn.Crashes, leaves-graceful)
	}
	// With a 5-minute horizon, ~15 s cycles and 20 nodes, dozens of
	// sessions must have ended.
	if leaves < 20 {
		t.Fatalf("suspiciously little churn: %d leaves", leaves)
	}
}

func TestChurnHorizonDrainsQueue(t *testing.T) {
	kernel := sim.New()
	rt := New(kernel, lineMatrix(4), DefaultConfig(), 1)
	ids := []NodeID{0, 1, 2, 3}
	for _, id := range ids {
		rt.AddNode(id)
	}
	cfg := DefaultChurnConfig()
	cfg.Horizon = 10 * time.Minute
	churn := NewChurn(rt, cfg, 7)
	churn.Drive(ids)
	end := kernel.Run()
	if end > cfg.Horizon {
		t.Fatalf("event beyond horizon: %v", end)
	}
	if kernel.Pending() != 0 {
		t.Fatalf("%d events still queued", kernel.Pending())
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		kernel := sim.New()
		rt := New(kernel, lineMatrix(10), DefaultConfig(), 3)
		ids := make([]NodeID, 10)
		for i := range ids {
			ids[i] = NodeID(i)
			rt.AddNode(ids[i])
		}
		cfg := DefaultChurnConfig()
		cfg.Horizon = 20 * time.Minute
		churn := NewChurn(rt, cfg, 5)
		churn.Drive(ids)
		kernel.Run()
		return churn.Joins, churn.Leaves, churn.Crashes
	}
	j1, l1, c1 := run()
	j2, l2, c2 := run()
	if j1 != j2 || l1 != l2 || c1 != c2 {
		t.Fatalf("same seed diverged: %d/%d/%d vs %d/%d/%d", j1, l1, c1, j2, l2, c2)
	}
}
