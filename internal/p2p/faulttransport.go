// FaultTransport: one seam that puts any Transport under a deterministic
// fault plan. The plan itself lives in internal/faults and is a pure
// function of (seed, src, dst, time window), so the simulator prices
// faults in virtual time and the live transports price the same plan in
// wall-clock time — same seed, same fault sequence, which is what the
// sim-vs-loopback differential test pins.
//
// The wrapper is deliberately thin: Node.rt binds to the inner transport
// at AddNode time and multicast copies flow through the inner send path,
// so interception by wrapping alone would miss most traffic. Instead the
// constructor installs the plan *inside* the inner transport (a
// nil-checked hook on each send path, exactly like the obs registry) and
// the wrapper just carries the plan for introspection while forwarding
// every Transport method to the inner value.

package p2p

import (
	"fmt"

	"nearestpeer/internal/faults"
)

// FaultTransport wraps a Transport with a fault plan installed. All
// Transport methods forward to the inner transport; the fault decisions
// themselves fire inside the inner send paths.
type FaultTransport struct {
	Transport
	plan *faults.Plan
}

var _ Transport = (*FaultTransport)(nil)

// NewFaultTransport installs plan into inner and returns the wrapped
// transport. A nil plan is a no-op wrap: the inner transport behaves bit
// for bit as if never wrapped (the goldens-preservation contract). The
// plan must validate, must be installed before traffic flows, and a
// transport can carry at most one plan.
func NewFaultTransport(inner Transport, plan *faults.Plan) *FaultTransport {
	switch t := inner.(type) {
	case *Runtime:
		t.installFaults(plan)
	case *Loopback:
		t.installFaults(plan)
	case *UDP:
		t.installFaults(plan)
	case *FaultTransport:
		panic("p2p: transport already carries a fault plan")
	default:
		panic(fmt.Sprintf("p2p: no fault seam for transport %T", inner))
	}
	return &FaultTransport{Transport: inner, plan: plan}
}

// Plan returns the installed fault plan (nil for a no-op wrap).
func (f *FaultTransport) Plan() *faults.Plan { return f.plan }

// Inner returns the wrapped transport, for callers that need the
// concrete type (the npnode daemon reaches its *UDP this way).
func (f *FaultTransport) Inner() Transport { return f.Transport }
