package p2p

import (
	"fmt"
	"slices"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Runtime is the message transport: it owns the kernel, the latency matrix
// that prices every link, the loss model, the node registry and the global
// metrics. A request leg travels ⌊durOf(RTT)/2⌋ and a response leg the
// remaining durOf(RTT)-⌊durOf(RTT)/2⌋, so a request/response round trip
// measured in virtual time equals the matrix entry exactly (at nanosecond
// resolution) — which is what makes ping-over-messages interchangeable
// with the static simulator's Probe.
type Runtime struct {
	// Kernel is the discrete-event clock all activity runs on.
	Kernel *sim.Sim
	// Metrics aggregates wire- and probe-level costs.
	Metrics Metrics

	cfg       Config
	m         latency.Matrix
	lossSrc   *rng.Source
	nodes     map[NodeID]*Node
	groups    map[string][]NodeID
	nextMsgID uint64
}

// New creates a runtime over a latency matrix. The seed drives only the
// loss model; protocol randomness comes from the protocols' own streams.
func New(kernel *sim.Sim, m latency.Matrix, cfg Config, seed int64) *Runtime {
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("p2p: loss probability %v out of [0,1]", cfg.LossProb))
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = DefaultConfig().RPCTimeout
	}
	return &Runtime{
		Kernel:  kernel,
		cfg:     cfg,
		m:       m,
		lossSrc: rng.New(seed).Split("loss"),
		nodes:   make(map[NodeID]*Node),
		groups:  make(map[string][]NodeID),
	}
}

// RTTms returns the true link RTT between two nodes in milliseconds.
func (r *Runtime) RTTms(a, b NodeID) float64 { return r.m.LatencyMs(int(a), int(b)) }

// AddNode registers the node for a matrix index, bringing a NEW node up
// alive. An already-registered node is returned as-is: in particular a
// stopped node stays stopped. Resurrection is Restart's job — AddNode
// silently reviving a churn-downed node would remove it from the churn
// process (the pending rejoin would find it alive and stop driving it).
// Every node answers pings.
func (r *Runtime) AddNode(id NodeID) *Node {
	if int(id) < 0 || int(id) >= r.m.N() {
		panic(fmt.Sprintf("p2p: node %d outside matrix population %d", id, r.m.N()))
	}
	if n, ok := r.nodes[id]; ok {
		return n
	}
	n := &Node{
		ID:       id,
		rt:       r,
		alive:    true,
		handlers: make(map[string]Handler),
		inflight: make(map[uint64]*call),
	}
	n.Handle(MsgPing, func(n *Node, env Envelope) {
		n.Reply(env, MsgPong, nil)
	})
	r.nodes[id] = n
	return n
}

// Node returns the registered node for id, or nil.
func (r *Runtime) Node(id NodeID) *Node { return r.nodes[id] }

// Alive reports whether id is registered and up.
func (r *Runtime) Alive(id NodeID) bool {
	n := r.nodes[id]
	return n != nil && n.alive
}

// JoinGroup subscribes a node to a named multicast group (the well-known
// group of the Section 5 expanding search). Idempotent. Membership is kept
// sorted by NodeID with a binary-search insert — O(log n) lookup, O(n)
// insert — so registering a 100k-host population no longer re-sorts the
// whole slice per join, and Multicast's delivery order stays stable
// (ascending NodeID) no matter the join order.
func (r *Runtime) JoinGroup(group string, id NodeID) {
	ms := r.groups[group]
	i, ok := slices.BinarySearch(ms, id)
	if ok {
		return
	}
	r.groups[group] = slices.Insert(ms, i, id)
}

// LeaveGroup removes a node from a multicast group.
func (r *Runtime) LeaveGroup(group string, id NodeID) {
	ms := r.groups[group]
	if i, ok := slices.BinarySearch(ms, id); ok {
		// The kernel is single-threaded and Multicast never runs user code
		// mid-iteration, so deleting in place cannot disturb a delivery.
		r.groups[group] = slices.Delete(ms, i, i+1)
	}
}

// Multicast sends one-way copies of a message to every live group member
// within radiusMs of the sender (a latency-scoped delivery standing in for
// TTL-scoped IP multicast). Each copy is priced and lossy like a unicast.
// It returns the number of copies handed to the transport.
func (r *Runtime) Multicast(from NodeID, group, typ string, payload any, radiusMs float64) int {
	sent := 0
	for _, m := range r.groups[group] {
		if m == from || !r.Alive(m) || r.RTTms(from, m) > radiusMs {
			continue
		}
		r.send(Envelope{Type: typ, From: from, To: m, MsgID: r.allocMsgID(), Payload: payload})
		sent++
	}
	return sent
}

// allocMsgID hands out runtime-unique correlation IDs.
func (r *Runtime) allocMsgID() uint64 {
	r.nextMsgID++
	return r.nextMsgID
}

// send prices, maybe drops, and schedules delivery of one envelope. The
// loss draw happens at send time; aliveness of the destination is checked
// at delivery time, so a message in flight to a node that crashes meanwhile
// is silently swallowed — exactly the failure a timeout exists to cover.
//
// One-way delay splits the link RTT so the two legs of a request/response
// pair sum to durOf(RTT) exactly: requests (and plain one-way sends)
// travel the floor half, responses the remainder. Computing either leg as
// durOf(rtt/2) would truncate each leg independently and make a measured
// round trip fall short of the matrix entry by a nanosecond on odd-valued
// latencies.
func (r *Runtime) send(env Envelope) {
	r.Metrics.MsgsSent++
	if r.cfg.LossProb > 0 && r.lossSrc.Bool(r.cfg.LossProb) {
		r.Metrics.MsgsLost++
		return
	}
	rtt := durOf(r.RTTms(env.From, env.To))
	oneWay := rtt / 2
	if env.Resp {
		oneWay = rtt - rtt/2
	}
	r.Kernel.After(oneWay, func() {
		dst := r.nodes[env.To]
		if dst == nil || !dst.alive {
			r.Metrics.MsgsDead++
			return
		}
		r.Metrics.MsgsDelivered++
		dst.deliver(env)
	})
}
