package p2p

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Runtime is the message transport: it owns the kernel, the latency matrix
// that prices every link, the loss model, the node registry and the global
// metrics. A request leg travels ⌊durOf(RTT)/2⌋ and a response leg the
// remaining durOf(RTT)-⌊durOf(RTT)/2⌋, so a request/response round trip
// measured in virtual time equals the matrix entry exactly (at nanosecond
// resolution) — which is what makes ping-over-messages interchangeable
// with the static simulator's Probe.
//
// The send path is allocation-free in steady state: an envelope in flight
// is parked by value in a free-list slab and delivery is scheduled as a
// typed kernel event (sim.AfterHandler) carrying the slot index — no
// closure, no boxing, no per-message allocation once the slab and the
// event queue have grown to the workload's high-water mark.
//
// A runtime is either serial (New: one kernel, one shard) or sharded
// (NewSharded: one sim.Sharded kernel, hosts partitioned across shards).
// All hot-path state — event clock, latency matrix + RTT cache, envelope
// and timeout slabs, metrics, multicast scratch, msg-id counter — lives
// per shard in a shardCtx, so the zero-alloc send discipline holds within
// each shard with no locks; a serial runtime is simply the one-shard case
// writing its metrics straight into the public Metrics field. Cross-shard
// sends park in per-(source, destination) mailboxes and are applied by the
// coordinator between windows in (virtual time, source shard, per-source
// order) — see send and drainCross.
type Runtime struct {
	// Kernel is the discrete-event clock all activity runs on — the only
	// kernel of a serial runtime, shard 0's kernel (the driver shard,
	// where setup and chain events run) of a sharded one.
	Kernel *sim.Sim
	// Metrics aggregates wire- and probe-level costs. On a serial runtime
	// the hot path writes here directly, as it always has; on a sharded
	// runtime each shard accumulates privately and this field stays zero —
	// read TotalMetrics instead.
	Metrics Metrics

	cfg     Config
	m       latency.Matrix // shard 0's matrix; population/bounds authority
	lossSrc *rng.Source
	nodes   []*Node // dense: node IDs are matrix indices; nil = unregistered
	groups  map[string]*group

	// sh is the per-shard hot-path state; length 1 for a serial runtime.
	sh []shardCtx
	// shardOf maps NodeID -> shard index; nil means everything on shard 0.
	shardOf []int32
	// shk/window are set iff the runtime is sharded.
	shk    *sim.Sharded
	window time.Duration
	// cross[src*K+dst] holds envelopes and routed closures crossing shards
	// this window; crossBuf note in drainCross.
	cross [][]crossMsg

	// obsReg/obsRec are the optional observability hooks. Both are nil by
	// default: a runtime without observability pays one nil compare per
	// message, and with them attached every hook is a preallocated counter
	// or ring write — the send path stays allocation-free either way.
	obsReg *obs.Registry
	obsRec *obs.Recorder

	// flt is the optional fault plan (NewFaultTransport). Like the obs
	// hooks it is nil by default and costs one nil compare per message, so
	// a runtime without faults reproduces the unfaulted figures bit for
	// bit. Decisions are stateless per (src, dst, window) hashes, so they
	// are identical at every shard count.
	flt *faults.Plan

	// liveCount tracks the live node population for the health sampler.
	liveCount int
}

// shardCtx is one shard's private hot-path state. Only events executing on
// the shard (and the coordinator, between windows) touch it.
type shardCtx struct {
	sim *sim.Sim
	// metrics points at Runtime.Metrics for a serial runtime and at a
	// shard-private struct for a sharded one, so legacy serial readers and
	// the lock-free sharded hot path share one increment site.
	metrics *Metrics
	// m is the shard's own matrix view. Matrices with an RTT cache are
	// single-goroutine; each shard pricing through its own cache is what
	// keeps the cache while shards run concurrently.
	m latency.Matrix

	// deliverH + the slab implement the zero-alloc send path.
	deliverH sim.HandlerID
	slab     []Envelope
	slabFree []uint32

	// timeoutH + tSlab do the same for request expiries.
	timeoutH sim.HandlerID
	tSlab    []timeoutRec
	tFree    []uint32

	// mcScratch is Multicast's reusable recipient buffer.
	mcScratch []NodeID

	// nextMsgID allocates correlation IDs; idBrand (shard index in the top
	// 16 bits, zero on shard 0) keeps them runtime-unique without a shared
	// counter.
	nextMsgID uint64
	idBrand   uint64
}

// crossMsg is one cross-shard handoff: an envelope to deliver (fn nil) or
// a routed closure (Handoff). at is absolute virtual time, already
// validated against the lookahead window.
type crossMsg struct {
	at  time.Duration
	env Envelope
	fn  func()
}

// timeoutRec is one pending request expiry parked in the timeout slab.
type timeoutRec struct {
	node  NodeID
	msgID uint64
}

// initShard wires one shardCtx to its kernel: per-shard handler IDs over
// per-shard slabs. Registration order is fixed (deliver, then timeout) on
// every shard.
func (r *Runtime) initShard(s int, kernel *sim.Sim, m latency.Matrix, met *Metrics) {
	sc := &r.sh[s]
	sc.sim = kernel
	sc.m = m
	sc.metrics = met
	sc.idBrand = uint64(s) << 48
	shard := s
	sc.deliverH = kernel.RegisterHandler(func(arg uint64) { r.deliverSlot(shard, arg) })
	sc.timeoutH = kernel.RegisterHandler(func(arg uint64) { r.expireSlot(shard, arg) })
}

// New creates a serial runtime over a latency matrix. The seed drives only
// the loss model; protocol randomness comes from the protocols' own
// streams.
func New(kernel *sim.Sim, m latency.Matrix, cfg Config, seed int64) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultConfig().RPCTimeout
	}
	r := &Runtime{
		Kernel:  kernel,
		cfg:     cfg,
		m:       m,
		lossSrc: rng.New(seed).Split("loss"),
		nodes:   make([]*Node, m.N()),
		groups:  make(map[string]*group),
		sh:      make([]shardCtx, 1),
	}
	r.initShard(0, kernel, m, &r.Metrics)
	return r
}

// NewSharded creates a runtime over a sharded kernel: hosts are
// partitioned across shk's shards by shardOf (a PoP-aligned assignment
// from netmodel.Topology.ShardByPoP), each shard prices through its own
// matrix view ms[s] (so per-shard RTT caches stay single-goroutine), and
// shk's window must be the matching cross-partition latency floor. The
// loss model is not supported sharded: a single loss stream cannot draw in
// a K-invariant order, and the scale trials this kernel exists for are
// lossless. Observability hooks (EnableObs, AttachRecorder,
// StartHealthSampler) are likewise serial-only.
func NewSharded(shk *sim.Sharded, ms []latency.Matrix, cfg Config, seed int64, shardOf []int32) *Runtime {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.LossProb != 0 {
		panic("p2p: sharded runtime does not support the loss model")
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultConfig().RPCTimeout
	}
	k := shk.K()
	if len(ms) != k {
		panic(fmt.Sprintf("p2p: %d shard matrices for %d shards", len(ms), k))
	}
	n := ms[0].N()
	for _, m := range ms {
		if m.N() != n {
			panic("p2p: shard matrices disagree on population")
		}
	}
	if len(shardOf) != n {
		panic(fmt.Sprintf("p2p: shard assignment covers %d of %d nodes", len(shardOf), n))
	}
	for id, s := range shardOf {
		if s < 0 || int(s) >= k {
			panic(fmt.Sprintf("p2p: node %d assigned to shard %d of %d", id, s, k))
		}
	}
	r := &Runtime{
		Kernel:  shk.Shard(0),
		cfg:     cfg,
		m:       ms[0],
		nodes:   make([]*Node, n),
		groups:  make(map[string]*group),
		sh:      make([]shardCtx, k),
		shardOf: shardOf,
		shk:     shk,
		window:  shk.Window(),
		cross:   make([][]crossMsg, k*k),
	}
	mets := make([]Metrics, k)
	for s := 0; s < k; s++ {
		r.initShard(s, shk.Shard(s), ms[s], &mets[s])
	}
	shk.OnDrain(r.drainCross)
	return r
}

// Sharded reports whether the runtime runs over a sharded kernel.
func (r *Runtime) Sharded() bool { return r.shk != nil }

// Shards returns the shard count (1 for a serial runtime).
func (r *Runtime) Shards() int { return len(r.sh) }

// ShardOf returns a node's home shard. Every event that touches a node's
// protocol state executes on its home shard; that is the sharding
// convention all protocols follow.
func (r *Runtime) ShardOf(id NodeID) int { return r.shardIdx(id) }

func (r *Runtime) shardIdx(id NodeID) int {
	if r.shardOf == nil {
		return 0
	}
	return int(r.shardOf[id])
}

// Now returns the virtual time at a node's home shard. Valid from events
// executing on that shard (where it equals the event's own time — exactly
// what Kernel.Now returns on a serial runtime) and from setup code before
// the run starts.
func (r *Runtime) Now(id NodeID) time.Duration { return r.sh[r.shardIdx(id)].sim.Now() }

// After schedules fn on a node's home shard after d of that shard's
// virtual time. It must be called from the node's home context (an event
// executing on the same shard — every protocol callback at the node is);
// for cross-shard routing use Handoff.
func (r *Runtime) After(id NodeID, d time.Duration, fn func()) {
	r.sh[r.shardIdx(id)].sim.After(d, fn)
}

// HandoffDelay is the minimum delay of a Handoff: the sharded kernel's
// lookahead window (0 for a serial runtime). Drivers add it wherever a
// sequential chain hops between nodes; because the delay is a topology
// constant — never a function of the shard count — the chain's virtual
// times are identical at every K, the determinism contract's keystone.
func (r *Runtime) HandoffDelay() time.Duration { return r.window }

// Handoff schedules fn on node to's home shard at the source shard's
// now+d, where from is the shard the caller is executing on (a node's
// home shard, or DriverShard for setup/chain events). On a serial runtime
// it is Kernel.After. Sharded, d must be at least HandoffDelay — that is
// what makes a cross-shard insert legal mid-window — and the entry joins
// the same deterministic mailbox order as cross-shard envelopes.
func (r *Runtime) Handoff(from int, to NodeID, d time.Duration, fn func()) {
	sc := &r.sh[from]
	if r.shk == nil {
		sc.sim.After(d, fn)
		return
	}
	if d < r.window {
		panic(fmt.Sprintf("p2p: Handoff delay %v below lookahead window %v", d, r.window))
	}
	at := sc.sim.Now() + d
	ds := r.shardIdx(to)
	if ds == from {
		sc.sim.At(at, fn)
		return
	}
	r.cross[from*len(r.sh)+ds] = append(r.cross[from*len(r.sh)+ds], crossMsg{at: at, fn: fn})
}

// DriverShard is where setup and sequential-driver chain events execute:
// shard 0. Join ramps, churn scripts and op sequencers schedule there and
// hop to a node's home shard via Handoff.
const DriverShard = 0

// timeoutAt schedules a request expiry as a typed kernel event: the
// (node, msgID) pair parks in the home shard's timeout slab and the slot
// index rides the event — no closure per request. Expiries are always
// shard-local: the request was issued by an event at the node.
func (r *Runtime) timeoutAt(d time.Duration, node NodeID, msgID uint64) {
	sc := &r.sh[r.shardIdx(node)]
	sc.metrics.ExpiriesScheduled++
	var slot uint32
	if n := len(sc.tFree); n > 0 {
		slot = sc.tFree[n-1]
		sc.tFree = sc.tFree[:n-1]
		sc.tSlab[slot] = timeoutRec{node: node, msgID: msgID}
	} else {
		sc.tSlab = append(sc.tSlab, timeoutRec{node: node, msgID: msgID})
		slot = uint32(len(sc.tSlab) - 1)
	}
	sc.sim.AfterHandler(d, sc.timeoutH, uint64(slot))
}

// expireSlot is the registered handler completing a timeout: the node
// decides whether the request is still outstanding (a response that
// arrived first deleted the inflight entry and wins the race).
func (r *Runtime) expireSlot(shard int, arg uint64) {
	sc := &r.sh[shard]
	sc.metrics.ExpiriesFired++
	rec := sc.tSlab[arg]
	sc.tFree = append(sc.tFree, uint32(arg))
	if n := r.node(rec.node); n != nil {
		n.expire(rec.msgID)
	}
}

// RTTms returns the true link RTT between two nodes in milliseconds,
// priced through the first node's home-shard matrix (all shard matrices
// price identically; the home cache is the one the calling event owns).
func (r *Runtime) RTTms(a, b NodeID) float64 {
	return r.sh[r.shardIdx(a)].m.LatencyMs(int(a), int(b))
}

// Population returns the matrix population: node IDs live in [0, Population).
// Protocol packages outside p2p size their dense per-node state with it.
func (r *Runtime) Population() int { return r.m.N() }

// AddNode registers the node for a matrix index, bringing a NEW node up
// alive. An already-registered node is returned as-is: in particular a
// stopped node stays stopped. Resurrection is Restart's job — AddNode
// silently reviving a churn-downed node would remove it from the churn
// process (the pending rejoin would find it alive and stop driving it).
// Every node answers pings.
func (r *Runtime) AddNode(id NodeID) *Node {
	if int(id) < 0 || int(id) >= r.m.N() {
		panic(fmt.Sprintf("p2p: node %d outside matrix population %d", id, r.m.N()))
	}
	if n := r.nodes[id]; n != nil {
		return n
	}
	n := &Node{
		ID:       id,
		rt:       r,
		alive:    true,
		handlers: make(map[string]Handler),
		inflight: make(map[uint64]call),
	}
	n.Handle(MsgPing, func(n *Node, env Envelope) {
		n.Reply(env, MsgPong, nil)
	})
	r.nodes[id] = n
	r.liveCount++
	return n
}

// node is the bounds-checked registry lookup: ids outside the matrix
// population are simply unregistered, as they were with the map registry.
func (r *Runtime) node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(r.nodes) {
		return nil
	}
	return r.nodes[id]
}

// Node returns the registered node for id, or nil.
func (r *Runtime) Node(id NodeID) *Node { return r.node(id) }

// Alive reports whether id is registered and up.
func (r *Runtime) Alive(id NodeID) bool {
	n := r.node(id)
	return n != nil && n.alive
}

// group is one multicast group: the membership, sorted ascending by
// NodeID (the stable delivery order the wire studies replay against), and
// per-sender latency indexes built lazily the first time a sender
// multicasts (see senderIndex).
type group struct {
	members []NodeID
	senders map[NodeID]*senderIndex
}

// senderIndex orders one sender's view of a group by (RTT, NodeID)
// ascending, so an expanding-ring round with radius r is a binary-searched
// prefix instead of an O(members) rescan pricing every link again. The
// index is maintained incrementally on join/leave; node aliveness is
// checked at send time, so churn that only toggles liveness never touches
// it.
type senderIndex struct {
	rtts []float64
	ids  []NodeID
}

// maxSenderIndexes bounds the per-group index cache. Each index is
// O(members) memory; every study multicasts from a bounded target set
// (≤ ~100), so the cap exists only to keep a pathological many-sender
// workload from holding senders × members floats. Senders beyond the cap
// fall back to the linear scan — same copies, same order, same figures.
const maxSenderIndexes = 256

// searchPair returns the insertion position of (rtt, id) in the index's
// (RTT, NodeID)-ascending order. Hand-rolled binary search: sort.Search
// would force the bounds into a closure on every call.
func (x *senderIndex) searchPair(rtt float64, id NodeID) int {
	lo, hi := 0, len(x.rtts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.rtts[mid] < rtt || (x.rtts[mid] == rtt && x.ids[mid] < id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// prefixLen returns how many leading index entries have RTT <= radius.
func (x *senderIndex) prefixLen(radius float64) int {
	lo, hi := 0, len(x.rtts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.rtts[mid] <= radius {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds (rtt, id) keeping the (RTT, NodeID) order.
func (x *senderIndex) insert(rtt float64, id NodeID) {
	i := x.searchPair(rtt, id)
	x.rtts = slices.Insert(x.rtts, i, rtt)
	x.ids = slices.Insert(x.ids, i, id)
}

// remove deletes (rtt, id) if present.
func (x *senderIndex) remove(rtt float64, id NodeID) {
	i := x.searchPair(rtt, id)
	if i < len(x.ids) && x.ids[i] == id && x.rtts[i] == rtt {
		x.rtts = slices.Delete(x.rtts, i, i+1)
		x.ids = slices.Delete(x.ids, i, i+1)
	}
}

// JoinGroup subscribes a node to a named multicast group (the well-known
// group of the Section 5 expanding search). Idempotent. Membership is kept
// sorted by NodeID with a binary-search insert — O(log n) lookup, O(n)
// insert — so registering a 100k-host population never re-sorts the whole
// slice per join, and Multicast's delivery order stays stable (ascending
// NodeID) no matter the join order. Existing sender indexes are patched
// incrementally rather than rebuilt.
func (r *Runtime) JoinGroup(gname string, id NodeID) {
	g := r.groups[gname]
	if g == nil {
		g = &group{}
		r.groups[gname] = g
	}
	i, ok := slices.BinarySearch(g.members, id)
	if ok {
		return
	}
	g.members = slices.Insert(g.members, i, id)
	for from, idx := range g.senders {
		idx.insert(r.RTTms(from, id), id)
	}
}

// LeaveGroup removes a node from a multicast group. The last member's
// leave deletes the group entry outright — under churn, groups come and
// go by name, and empty member slices (plus their sender indexes) would
// otherwise accumulate in the map forever.
func (r *Runtime) LeaveGroup(gname string, id NodeID) {
	g := r.groups[gname]
	if g == nil {
		return
	}
	i, ok := slices.BinarySearch(g.members, id)
	if !ok {
		return
	}
	// The kernel is single-threaded and Multicast never runs user code
	// mid-iteration, so deleting in place cannot disturb a delivery.
	g.members = slices.Delete(g.members, i, i+1)
	if len(g.members) == 0 {
		delete(r.groups, gname)
		return
	}
	// Drop the leaver's own sender index too: a churned-out member that
	// had multicast would otherwise pin two O(members) slices — and one
	// of the capped sender slots — forever. A rejoin rebuilds the index
	// with identical values on its next multicast.
	delete(g.senders, id)
	for from, idx := range g.senders {
		idx.remove(r.RTTms(from, id), id)
	}
}

// senderIdx returns the sender's latency index over the group, building
// it on first use. Returns nil when the sender cache is full — the caller
// falls back to the linear scan.
func (g *group) senderIdx(r *Runtime, from NodeID) *senderIndex {
	if idx, ok := g.senders[from]; ok {
		return idx
	}
	if len(g.senders) >= maxSenderIndexes {
		return nil
	}
	if g.senders == nil {
		g.senders = make(map[NodeID]*senderIndex)
	}
	idx := &senderIndex{
		rtts: make([]float64, len(g.members)),
		ids:  make([]NodeID, len(g.members)),
	}
	for i, m := range g.members {
		idx.rtts[i] = r.RTTms(from, m)
		idx.ids[i] = m
	}
	sort.Sort((*senderIndexSort)(idx))
	g.senders[from] = idx
	return idx
}

// senderIndexSort sorts a senderIndex by (RTT, NodeID) ascending.
type senderIndexSort senderIndex

func (s *senderIndexSort) Len() int { return len(s.ids) }
func (s *senderIndexSort) Less(i, j int) bool {
	if s.rtts[i] != s.rtts[j] {
		return s.rtts[i] < s.rtts[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *senderIndexSort) Swap(i, j int) {
	s.rtts[i], s.rtts[j] = s.rtts[j], s.rtts[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// Multicast sends one-way copies of a message to every live group member
// within radiusMs of the sender (a latency-scoped delivery standing in for
// TTL-scoped IP multicast). Each copy is priced and lossy like a unicast.
// It returns the number of copies handed to the transport.
//
// The recipient set comes from the sender's latency index: a binary-
// searched RTT prefix, re-sorted ascending by NodeID into a reusable
// scratch buffer. That recovers exactly the linear scan's recipient set
// AND its send order, so the loss model's draw sequence — and with it
// every figure byte — is unchanged; each expanding-ring round just stops
// pricing the 99% of a 100k-host population its radius can never reach.
func (r *Runtime) Multicast(from NodeID, gname, typ string, payload any, radiusMs float64) int {
	g := r.groups[gname]
	if g == nil {
		return 0
	}
	sc := &r.sh[r.shardIdx(from)]
	// Sharded, the lazy index build would write the shared senders map from
	// a worker goroutine; senders the driver pre-warmed (WarmSenderIndex)
	// are read-only lookups, anyone else takes the linear scan.
	var idx *senderIndex
	if r.shk == nil {
		idx = g.senderIdx(r, from)
	} else {
		idx = g.senders[from]
	}
	sc.mcScratch = sc.mcScratch[:0]
	if idx != nil {
		sc.mcScratch = append(sc.mcScratch, idx.ids[:idx.prefixLen(radiusMs)]...)
		slices.Sort(sc.mcScratch)
	} else {
		for _, m := range g.members {
			if r.RTTms(from, m) <= radiusMs {
				sc.mcScratch = append(sc.mcScratch, m)
			}
		}
	}
	sent := 0
	for _, m := range sc.mcScratch {
		if m == from || !r.Alive(m) {
			continue
		}
		r.send(Envelope{Type: typ, From: from, To: m, MsgID: r.allocMsgIDFor(from), Payload: payload})
		sent++
	}
	sc.metrics.MsgsMulticast += int64(sent)
	return sent
}

// WarmSenderIndex builds a sender's latency index over a group ahead of the
// run. Sharded drivers call it at setup for every node that will multicast:
// the build mutates shared group state, which only the single-threaded setup
// phase may do.
func (r *Runtime) WarmSenderIndex(gname string, from NodeID) {
	if g := r.groups[gname]; g != nil {
		g.senderIdx(r, from)
	}
}

// EnableObs attaches a metrics registry. Every send and delivery from now
// on is noted in it; pass nil to detach. Attaching a registry never
// perturbs the simulation — it draws no randomness and schedules no events.
// Serial-only: the registry's counters are not sharded.
func (r *Runtime) EnableObs(reg *obs.Registry) {
	if r.shk != nil && reg != nil {
		panic("p2p: observability registry is serial-only")
	}
	r.obsReg = reg
}

// Obs returns the attached metrics registry, or nil.
func (r *Runtime) Obs() *obs.Registry { return r.obsReg }

// AttachRecorder attaches a lookup flight recorder. The scheme wires
// (chord, Meridian, the Vivaldi wire) record per-hop traces into it; pass
// nil to detach. Like the registry, a recorder is purely passive.
// Serial-only: the recorder's ring is a single-writer structure.
func (r *Runtime) AttachRecorder(rec *obs.Recorder) {
	if r.shk != nil && rec != nil {
		panic("p2p: flight recorder is serial-only")
	}
	r.obsRec = rec
}

// FlightRecorder returns the attached flight recorder, or nil.
func (r *Runtime) FlightRecorder() *obs.Recorder { return r.obsRec }

// LiveNodes returns the number of registered nodes currently up.
func (r *Runtime) LiveNodes() int { return r.liveCount }

// InflightEnvelopes returns the number of envelopes currently in flight
// (occupied send-slab slots plus parked cross-shard envelopes) — the
// inflight term of the accounting identity
// MsgsSent == MsgsDelivered + MsgsLost + MsgsDead + inflight.
func (r *Runtime) InflightEnvelopes() int {
	n := 0
	for i := range r.sh {
		n += len(r.sh[i].slab) - len(r.sh[i].slabFree)
	}
	for _, box := range r.cross {
		for i := range box {
			if box[i].fn == nil {
				n++
			}
		}
	}
	return n
}

// PendingExpiries returns the number of request-expiry events still parked
// in the timeout slabs (ExpiriesScheduled - ExpiriesFired).
func (r *Runtime) PendingExpiries() int {
	n := 0
	for i := range r.sh {
		n += len(r.sh[i].tSlab) - len(r.sh[i].tFree)
	}
	return n
}

// SerialMetrics returns the runtime-wide metrics struct serial protocols
// charge directly — the Metrics field. On a sharded runtime the field
// stays zero (see Metrics); sharded protocols charge ShardMetrics instead.
func (r *Runtime) SerialMetrics() *Metrics { return &r.Metrics }

// RegisterHandler registers a typed-event handler on the driver kernel
// (the only kernel of a serial runtime) — the Transport seam's version of
// sim.Sim.RegisterHandler for serial protocols pacing typed tick chains.
func (r *Runtime) RegisterHandler(fn func(arg uint64)) sim.HandlerID {
	return r.Kernel.RegisterHandler(fn)
}

// AfterHandler schedules a registered typed handler after d of driver
// virtual time (see RegisterHandler).
func (r *Runtime) AfterHandler(d time.Duration, h sim.HandlerID, arg uint64) {
	r.Kernel.AfterHandler(d, h, arg)
}

// defaultRPCTimeout is the configured request expiry fallback.
func (r *Runtime) defaultRPCTimeout() time.Duration { return r.cfg.RPCTimeout }

// metricsAt returns the metrics struct charged for activity at a node:
// its home shard's.
func (r *Runtime) metricsAt(id NodeID) *Metrics { return r.sh[r.shardIdx(id)].metrics }

// noteLive adjusts the live-node count (Node.Stop/Restart bookkeeping).
func (r *Runtime) noteLive(delta int) { r.liveCount += delta }

// TotalMetrics sums the per-shard metrics. On a serial runtime it equals
// the Metrics field; figure code reads this so serial and sharded cells
// render through one accessor.
func (r *Runtime) TotalMetrics() Metrics {
	var t Metrics
	for i := range r.sh {
		m := r.sh[i].metrics
		t.MsgsSent += m.MsgsSent
		t.MsgsDelivered += m.MsgsDelivered
		t.MsgsLost += m.MsgsLost
		t.MsgsDead += m.MsgsDead
		t.MsgsMulticast += m.MsgsMulticast
		t.QueryProbes += m.QueryProbes
		t.MaintProbes += m.MaintProbes
		t.ExpiriesScheduled += m.ExpiriesScheduled
		t.ExpiriesFired += m.ExpiriesFired
		t.Timeouts += m.Timeouts
		t.FaultDropped += m.FaultDropped
		t.FaultDelayed += m.FaultDelayed
		t.FaultDuplicated += m.FaultDuplicated
		t.Retries += m.Retries
	}
	return t
}

// ShardMetrics returns shard s's private metrics — the increment target for
// protocol counters charged to a node (use with ShardOf).
func (r *Runtime) ShardMetrics(s int) *Metrics { return r.sh[s].metrics }

// StartHealthSampler starts a periodic obs.Sampler over this runtime's
// health: inflight envelope depth, kernel event-queue depth, and live
// population, every `every` of virtual time until horizon. The returned
// sampler is already started. Note the sampler's self-rescheduling tick
// keeps the kernel queue non-empty until horizon, so drain-style Run()
// loops only terminate once the horizon passes (or the kernel is stopped).
// Serial-only: the sampler ticks on one kernel and reads cross-shard state.
func (r *Runtime) StartHealthSampler(every, horizon time.Duration, capacity int) *obs.Sampler {
	if r.shk != nil {
		panic("p2p: health sampler is serial-only")
	}
	s := obs.NewSampler(r.Kernel, every, horizon, capacity, func() (int, int, int) {
		return r.InflightEnvelopes(), r.Kernel.Pending(), r.liveCount
	})
	s.Start()
	return s
}

// allocMsgIDFor hands out runtime-unique correlation IDs from the node's
// home-shard counter; the shard brand in the top bits keeps IDs unique
// without a shared counter (and leaves serial IDs — shard 0 — unchanged).
func (r *Runtime) allocMsgIDFor(id NodeID) uint64 {
	sc := &r.sh[r.shardIdx(id)]
	sc.nextMsgID++
	return sc.idBrand | sc.nextMsgID
}

// slabPut parks an in-flight envelope in a shard's slab and returns its slot.
func (r *Runtime) slabPut(shard int, env Envelope) uint32 {
	sc := &r.sh[shard]
	if n := len(sc.slabFree); n > 0 {
		slot := sc.slabFree[n-1]
		sc.slabFree = sc.slabFree[:n-1]
		sc.slab[slot] = env
		return slot
	}
	sc.slab = append(sc.slab, env)
	return uint32(len(sc.slab) - 1)
}

// deliverSlot is the registered kernel handler completing a send: it
// frees the slot first (handlers may send again, reusing it) and then
// dispatches to the destination's inbox. It runs on the destination's home
// shard — its slab parked the envelope, whether the send was local or
// crossed shards at a drain.
func (r *Runtime) deliverSlot(shard int, arg uint64) {
	sc := &r.sh[shard]
	slot := uint32(arg)
	env := sc.slab[slot]
	sc.slab[slot] = Envelope{} // release the payload for GC
	sc.slabFree = append(sc.slabFree, slot)
	dst := r.node(env.To)
	if dst == nil || !dst.alive {
		sc.metrics.MsgsDead++
		return
	}
	sc.metrics.MsgsDelivered++
	if r.obsReg != nil {
		r.obsReg.NoteRecv(int(env.To))
	}
	dst.deliver(env)
}

// send prices, maybe drops, and schedules delivery of one envelope. The
// loss draw happens at send time; aliveness of the destination is checked
// at delivery time, so a message in flight to a node that crashes meanwhile
// is silently swallowed — exactly the failure a timeout exists to cover.
//
// One-way delay splits the link RTT so the two legs of a request/response
// pair sum to durOf(RTT) exactly: requests (and plain one-way sends)
// travel the floor half, responses the remainder. Computing either leg as
// durOf(rtt/2) would truncate each leg independently and make a measured
// round trip fall short of the matrix entry by a nanosecond on odd-valued
// latencies.
//
// The sender's shard prices the link and pays for the send; a destination
// on the same shard gets its delivery scheduled directly into the shard
// kernel (the serial path, verbatim), a destination on another shard parks
// in the (src, dst) mailbox for the coordinator to apply between windows.
// Cross-shard pairs are cross-PoP by construction (ShardByPoP), so the
// one-way delay is at least the lookahead window — asserted here, the
// load-bearing inequality of the whole design.
func (r *Runtime) send(env Envelope) {
	ss := r.shardIdx(env.From)
	sc := &r.sh[ss]
	sc.metrics.MsgsSent++
	if r.obsReg != nil {
		r.obsReg.NoteSend(int(env.From), env.Type)
	}
	if r.cfg.LossProb > 0 && r.lossSrc.Bool(r.cfg.LossProb) {
		sc.metrics.MsgsLost++
		return
	}
	var fd faults.Decision
	if r.flt != nil {
		fd = r.flt.Decide(int(env.From), int(env.To), sc.sim.Now())
		if fd.Drop {
			sc.metrics.MsgsLost++
			sc.metrics.FaultDropped++
			if r.obsReg != nil {
				r.obsReg.NoteFaultDrop()
			}
			return
		}
	}
	rtt := durOf(sc.m.LatencyMs(int(env.From), int(env.To)))
	oneWay := rtt / 2
	if env.Resp {
		oneWay = rtt - rtt/2
	}
	if fd.ExtraMs > 0 {
		// Extra fault delay only ever lengthens the one-way time, so the
		// cross-shard lookahead inequality below cannot be violated by it.
		oneWay += durOf(fd.ExtraMs)
		sc.metrics.FaultDelayed++
		if r.obsReg != nil {
			r.obsReg.NoteFaultDelay()
		}
	}
	r.scheduleDelivery(ss, oneWay, env)
	if fd.Dup {
		sc.metrics.MsgsSent++
		sc.metrics.FaultDuplicated++
		if r.obsReg != nil {
			r.obsReg.NoteSend(int(env.From), env.Type)
			r.obsReg.NoteFaultDup()
		}
		r.scheduleDelivery(ss, oneWay, env)
	}
}

// scheduleDelivery prices nothing: it takes a final one-way delay and
// parks the envelope for delivery — directly into the sender's shard
// kernel when the destination is home, into the cross-shard mailbox
// otherwise. Split from send so the fault plane's duplicate copies go
// through the identical path as the original.
func (r *Runtime) scheduleDelivery(ss int, oneWay time.Duration, env Envelope) {
	sc := &r.sh[ss]
	ds := r.shardIdx(env.To)
	if ds == ss {
		sc.sim.AfterHandler(oneWay, sc.deliverH, uint64(r.slabPut(ss, env)))
		return
	}
	at := sc.sim.Now() + oneWay
	if end := r.shk.WindowEnd(); end > 0 && at < end {
		panic(fmt.Sprintf("p2p: cross-shard delivery at %v violates lookahead window ending %v (one-way %v < window %v)",
			at, end, oneWay, r.window))
	}
	r.cross[ss*len(r.sh)+ds] = append(r.cross[ss*len(r.sh)+ds], crossMsg{at: at, env: env})
}

// installFaults attaches a fault plan (see NewFaultTransport): link
// decisions hook the send path, and the plan's crash/restart schedule is
// compiled to kernel events up front. Crash rules are serial-only: the
// Stop/Restart bookkeeping touches the runtime-wide live count, which
// shard goroutines must not race on (link faults are per-shard pure and
// work at any shard count). Install before the run starts.
func (r *Runtime) installFaults(plan *faults.Plan) {
	if plan == nil {
		return
	}
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("p2p: fault plan: %v", err))
	}
	evs := plan.NodeEvents(r.m.N())
	if len(evs) > 0 && r.shk != nil {
		panic("p2p: fault-plan crash rules require a serial runtime")
	}
	r.flt = plan
	for _, ev := range evs {
		ev := ev
		d := ev.At - r.Kernel.Now()
		if d < 0 {
			d = 0
		}
		r.Kernel.After(d, func() {
			n := r.node(NodeID(ev.Node))
			if n == nil {
				return
			}
			if ev.Up {
				n.Restart()
			} else {
				n.Stop()
			}
		})
	}
}

// drainCross is the sharded kernel's between-windows hook: it moves every
// parked cross-shard message into its destination shard — envelopes into
// the destination slab with a typed delivery event, routed closures as
// plain events. Iterating destinations then sources in index order makes
// the destination heap's (at, insertion-seq) tie-break exactly the
// (virtual time, source shard, per-source order) sequence the determinism
// contract specifies, with no sorting.
func (r *Runtime) drainCross() {
	k := len(r.sh)
	for dst := 0; dst < k; dst++ {
		dsc := &r.sh[dst]
		for src := 0; src < k; src++ {
			box := r.cross[src*k+dst]
			for i := range box {
				if box[i].fn != nil {
					dsc.sim.At(box[i].at, box[i].fn)
					box[i].fn = nil
				} else {
					dsc.sim.AtHandler(box[i].at, dsc.deliverH, uint64(r.slabPut(dst, box[i].env)))
					box[i].env = Envelope{} // release for GC; capacity is reused
				}
			}
			r.cross[src*k+dst] = box[:0]
		}
	}
}
