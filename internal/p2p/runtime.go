package p2p

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/rng"
	"nearestpeer/internal/sim"
)

// Runtime is the message transport: it owns the kernel, the latency matrix
// that prices every link, the loss model, the node registry and the global
// metrics. A request leg travels ⌊durOf(RTT)/2⌋ and a response leg the
// remaining durOf(RTT)-⌊durOf(RTT)/2⌋, so a request/response round trip
// measured in virtual time equals the matrix entry exactly (at nanosecond
// resolution) — which is what makes ping-over-messages interchangeable
// with the static simulator's Probe.
//
// The send path is allocation-free in steady state: an envelope in flight
// is parked by value in a free-list slab and delivery is scheduled as a
// typed kernel event (sim.AfterHandler) carrying the slot index — no
// closure, no boxing, no per-message allocation once the slab and the
// event queue have grown to the workload's high-water mark.
type Runtime struct {
	// Kernel is the discrete-event clock all activity runs on.
	Kernel *sim.Sim
	// Metrics aggregates wire- and probe-level costs.
	Metrics Metrics

	cfg       Config
	m         latency.Matrix
	lossSrc   *rng.Source
	nodes     []*Node // dense: node IDs are matrix indices; nil = unregistered
	groups    map[string]*group
	nextMsgID uint64

	// deliverH + the slab implement the zero-alloc send path.
	deliverH sim.HandlerID
	slab     []Envelope
	slabFree []uint32

	// timeoutH + tSlab do the same for request expiries.
	timeoutH sim.HandlerID
	tSlab    []timeoutRec
	tFree    []uint32

	// mcScratch is Multicast's reusable recipient buffer.
	mcScratch []NodeID

	// obsReg/obsRec are the optional observability hooks. Both are nil by
	// default: a runtime without observability pays one nil compare per
	// message, and with them attached every hook is a preallocated counter
	// or ring write — the send path stays allocation-free either way.
	obsReg *obs.Registry
	obsRec *obs.Recorder

	// liveCount tracks the live node population for the health sampler.
	liveCount int
}

// timeoutRec is one pending request expiry parked in the timeout slab.
type timeoutRec struct {
	node  NodeID
	msgID uint64
}

// New creates a runtime over a latency matrix. The seed drives only the
// loss model; protocol randomness comes from the protocols' own streams.
func New(kernel *sim.Sim, m latency.Matrix, cfg Config, seed int64) *Runtime {
	if cfg.LossProb < 0 || cfg.LossProb > 1 {
		panic(fmt.Sprintf("p2p: loss probability %v out of [0,1]", cfg.LossProb))
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = DefaultConfig().RPCTimeout
	}
	r := &Runtime{
		Kernel:  kernel,
		cfg:     cfg,
		m:       m,
		lossSrc: rng.New(seed).Split("loss"),
		nodes:   make([]*Node, m.N()),
		groups:  make(map[string]*group),
	}
	r.deliverH = kernel.RegisterHandler(r.deliverSlot)
	r.timeoutH = kernel.RegisterHandler(r.expireSlot)
	return r
}

// timeoutAt schedules a request expiry as a typed kernel event: the
// (node, msgID) pair parks in the timeout slab and the slot index rides
// the event — no closure per request.
func (r *Runtime) timeoutAt(d time.Duration, node NodeID, msgID uint64) {
	r.Metrics.ExpiriesScheduled++
	var slot uint32
	if n := len(r.tFree); n > 0 {
		slot = r.tFree[n-1]
		r.tFree = r.tFree[:n-1]
		r.tSlab[slot] = timeoutRec{node: node, msgID: msgID}
	} else {
		r.tSlab = append(r.tSlab, timeoutRec{node: node, msgID: msgID})
		slot = uint32(len(r.tSlab) - 1)
	}
	r.Kernel.AfterHandler(d, r.timeoutH, uint64(slot))
}

// expireSlot is the registered handler completing a timeout: the node
// decides whether the request is still outstanding (a response that
// arrived first deleted the inflight entry and wins the race).
func (r *Runtime) expireSlot(arg uint64) {
	r.Metrics.ExpiriesFired++
	rec := r.tSlab[arg]
	r.tFree = append(r.tFree, uint32(arg))
	if n := r.node(rec.node); n != nil {
		n.expire(rec.msgID)
	}
}

// RTTms returns the true link RTT between two nodes in milliseconds.
func (r *Runtime) RTTms(a, b NodeID) float64 { return r.m.LatencyMs(int(a), int(b)) }

// Population returns the matrix population: node IDs live in [0, Population).
// Protocol packages outside p2p size their dense per-node state with it.
func (r *Runtime) Population() int { return r.m.N() }

// AddNode registers the node for a matrix index, bringing a NEW node up
// alive. An already-registered node is returned as-is: in particular a
// stopped node stays stopped. Resurrection is Restart's job — AddNode
// silently reviving a churn-downed node would remove it from the churn
// process (the pending rejoin would find it alive and stop driving it).
// Every node answers pings.
func (r *Runtime) AddNode(id NodeID) *Node {
	if int(id) < 0 || int(id) >= r.m.N() {
		panic(fmt.Sprintf("p2p: node %d outside matrix population %d", id, r.m.N()))
	}
	if n := r.nodes[id]; n != nil {
		return n
	}
	n := &Node{
		ID:       id,
		rt:       r,
		alive:    true,
		handlers: make(map[string]Handler),
		inflight: make(map[uint64]call),
	}
	n.Handle(MsgPing, func(n *Node, env Envelope) {
		n.Reply(env, MsgPong, nil)
	})
	r.nodes[id] = n
	r.liveCount++
	return n
}

// node is the bounds-checked registry lookup: ids outside the matrix
// population are simply unregistered, as they were with the map registry.
func (r *Runtime) node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(r.nodes) {
		return nil
	}
	return r.nodes[id]
}

// Node returns the registered node for id, or nil.
func (r *Runtime) Node(id NodeID) *Node { return r.node(id) }

// Alive reports whether id is registered and up.
func (r *Runtime) Alive(id NodeID) bool {
	n := r.node(id)
	return n != nil && n.alive
}

// group is one multicast group: the membership, sorted ascending by
// NodeID (the stable delivery order the wire studies replay against), and
// per-sender latency indexes built lazily the first time a sender
// multicasts (see senderIndex).
type group struct {
	members []NodeID
	senders map[NodeID]*senderIndex
}

// senderIndex orders one sender's view of a group by (RTT, NodeID)
// ascending, so an expanding-ring round with radius r is a binary-searched
// prefix instead of an O(members) rescan pricing every link again. The
// index is maintained incrementally on join/leave; node aliveness is
// checked at send time, so churn that only toggles liveness never touches
// it.
type senderIndex struct {
	rtts []float64
	ids  []NodeID
}

// maxSenderIndexes bounds the per-group index cache. Each index is
// O(members) memory; every study multicasts from a bounded target set
// (≤ ~100), so the cap exists only to keep a pathological many-sender
// workload from holding senders × members floats. Senders beyond the cap
// fall back to the linear scan — same copies, same order, same figures.
const maxSenderIndexes = 256

// searchPair returns the insertion position of (rtt, id) in the index's
// (RTT, NodeID)-ascending order. Hand-rolled binary search: sort.Search
// would force the bounds into a closure on every call.
func (x *senderIndex) searchPair(rtt float64, id NodeID) int {
	lo, hi := 0, len(x.rtts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.rtts[mid] < rtt || (x.rtts[mid] == rtt && x.ids[mid] < id) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// prefixLen returns how many leading index entries have RTT <= radius.
func (x *senderIndex) prefixLen(radius float64) int {
	lo, hi := 0, len(x.rtts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x.rtts[mid] <= radius {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert adds (rtt, id) keeping the (RTT, NodeID) order.
func (x *senderIndex) insert(rtt float64, id NodeID) {
	i := x.searchPair(rtt, id)
	x.rtts = slices.Insert(x.rtts, i, rtt)
	x.ids = slices.Insert(x.ids, i, id)
}

// remove deletes (rtt, id) if present.
func (x *senderIndex) remove(rtt float64, id NodeID) {
	i := x.searchPair(rtt, id)
	if i < len(x.ids) && x.ids[i] == id && x.rtts[i] == rtt {
		x.rtts = slices.Delete(x.rtts, i, i+1)
		x.ids = slices.Delete(x.ids, i, i+1)
	}
}

// JoinGroup subscribes a node to a named multicast group (the well-known
// group of the Section 5 expanding search). Idempotent. Membership is kept
// sorted by NodeID with a binary-search insert — O(log n) lookup, O(n)
// insert — so registering a 100k-host population never re-sorts the whole
// slice per join, and Multicast's delivery order stays stable (ascending
// NodeID) no matter the join order. Existing sender indexes are patched
// incrementally rather than rebuilt.
func (r *Runtime) JoinGroup(gname string, id NodeID) {
	g := r.groups[gname]
	if g == nil {
		g = &group{}
		r.groups[gname] = g
	}
	i, ok := slices.BinarySearch(g.members, id)
	if ok {
		return
	}
	g.members = slices.Insert(g.members, i, id)
	for from, idx := range g.senders {
		idx.insert(r.RTTms(from, id), id)
	}
}

// LeaveGroup removes a node from a multicast group. The last member's
// leave deletes the group entry outright — under churn, groups come and
// go by name, and empty member slices (plus their sender indexes) would
// otherwise accumulate in the map forever.
func (r *Runtime) LeaveGroup(gname string, id NodeID) {
	g := r.groups[gname]
	if g == nil {
		return
	}
	i, ok := slices.BinarySearch(g.members, id)
	if !ok {
		return
	}
	// The kernel is single-threaded and Multicast never runs user code
	// mid-iteration, so deleting in place cannot disturb a delivery.
	g.members = slices.Delete(g.members, i, i+1)
	if len(g.members) == 0 {
		delete(r.groups, gname)
		return
	}
	// Drop the leaver's own sender index too: a churned-out member that
	// had multicast would otherwise pin two O(members) slices — and one
	// of the capped sender slots — forever. A rejoin rebuilds the index
	// with identical values on its next multicast.
	delete(g.senders, id)
	for from, idx := range g.senders {
		idx.remove(r.RTTms(from, id), id)
	}
}

// senderIdx returns the sender's latency index over the group, building
// it on first use. Returns nil when the sender cache is full — the caller
// falls back to the linear scan.
func (g *group) senderIdx(r *Runtime, from NodeID) *senderIndex {
	if idx, ok := g.senders[from]; ok {
		return idx
	}
	if len(g.senders) >= maxSenderIndexes {
		return nil
	}
	if g.senders == nil {
		g.senders = make(map[NodeID]*senderIndex)
	}
	idx := &senderIndex{
		rtts: make([]float64, len(g.members)),
		ids:  make([]NodeID, len(g.members)),
	}
	for i, m := range g.members {
		idx.rtts[i] = r.RTTms(from, m)
		idx.ids[i] = m
	}
	sort.Sort((*senderIndexSort)(idx))
	g.senders[from] = idx
	return idx
}

// senderIndexSort sorts a senderIndex by (RTT, NodeID) ascending.
type senderIndexSort senderIndex

func (s *senderIndexSort) Len() int { return len(s.ids) }
func (s *senderIndexSort) Less(i, j int) bool {
	if s.rtts[i] != s.rtts[j] {
		return s.rtts[i] < s.rtts[j]
	}
	return s.ids[i] < s.ids[j]
}
func (s *senderIndexSort) Swap(i, j int) {
	s.rtts[i], s.rtts[j] = s.rtts[j], s.rtts[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// Multicast sends one-way copies of a message to every live group member
// within radiusMs of the sender (a latency-scoped delivery standing in for
// TTL-scoped IP multicast). Each copy is priced and lossy like a unicast.
// It returns the number of copies handed to the transport.
//
// The recipient set comes from the sender's latency index: a binary-
// searched RTT prefix, re-sorted ascending by NodeID into a reusable
// scratch buffer. That recovers exactly the linear scan's recipient set
// AND its send order, so the loss model's draw sequence — and with it
// every figure byte — is unchanged; each expanding-ring round just stops
// pricing the 99% of a 100k-host population its radius can never reach.
func (r *Runtime) Multicast(from NodeID, gname, typ string, payload any, radiusMs float64) int {
	g := r.groups[gname]
	if g == nil {
		return 0
	}
	r.mcScratch = r.mcScratch[:0]
	if idx := g.senderIdx(r, from); idx != nil {
		r.mcScratch = append(r.mcScratch, idx.ids[:idx.prefixLen(radiusMs)]...)
		slices.Sort(r.mcScratch)
	} else {
		for _, m := range g.members {
			if r.RTTms(from, m) <= radiusMs {
				r.mcScratch = append(r.mcScratch, m)
			}
		}
	}
	sent := 0
	for _, m := range r.mcScratch {
		if m == from || !r.Alive(m) {
			continue
		}
		r.send(Envelope{Type: typ, From: from, To: m, MsgID: r.allocMsgID(), Payload: payload})
		sent++
	}
	r.Metrics.MsgsMulticast += int64(sent)
	return sent
}

// EnableObs attaches a metrics registry. Every send and delivery from now
// on is noted in it; pass nil to detach. Attaching a registry never
// perturbs the simulation — it draws no randomness and schedules no events.
func (r *Runtime) EnableObs(reg *obs.Registry) { r.obsReg = reg }

// Obs returns the attached metrics registry, or nil.
func (r *Runtime) Obs() *obs.Registry { return r.obsReg }

// AttachRecorder attaches a lookup flight recorder. The scheme wires
// (chord, Meridian, the Vivaldi wire) record per-hop traces into it; pass
// nil to detach. Like the registry, a recorder is purely passive.
func (r *Runtime) AttachRecorder(rec *obs.Recorder) { r.obsRec = rec }

// FlightRecorder returns the attached flight recorder, or nil.
func (r *Runtime) FlightRecorder() *obs.Recorder { return r.obsRec }

// LiveNodes returns the number of registered nodes currently up.
func (r *Runtime) LiveNodes() int { return r.liveCount }

// InflightEnvelopes returns the number of envelopes currently in flight
// (occupied send-slab slots) — the inflight term of the accounting identity
// MsgsSent == MsgsDelivered + MsgsLost + MsgsDead + inflight.
func (r *Runtime) InflightEnvelopes() int { return len(r.slab) - len(r.slabFree) }

// PendingExpiries returns the number of request-expiry events still parked
// in the timeout slab (ExpiriesScheduled - ExpiriesFired).
func (r *Runtime) PendingExpiries() int { return len(r.tSlab) - len(r.tFree) }

// StartHealthSampler starts a periodic obs.Sampler over this runtime's
// health: inflight envelope depth, kernel event-queue depth, and live
// population, every `every` of virtual time until horizon. The returned
// sampler is already started. Note the sampler's self-rescheduling tick
// keeps the kernel queue non-empty until horizon, so drain-style Run()
// loops only terminate once the horizon passes (or the kernel is stopped).
func (r *Runtime) StartHealthSampler(every, horizon time.Duration, capacity int) *obs.Sampler {
	s := obs.NewSampler(r.Kernel, every, horizon, capacity, func() (int, int, int) {
		return r.InflightEnvelopes(), r.Kernel.Pending(), r.liveCount
	})
	s.Start()
	return s
}

// allocMsgID hands out runtime-unique correlation IDs.
func (r *Runtime) allocMsgID() uint64 {
	r.nextMsgID++
	return r.nextMsgID
}

// slabPut parks an in-flight envelope and returns its slot.
func (r *Runtime) slabPut(env Envelope) uint32 {
	if n := len(r.slabFree); n > 0 {
		slot := r.slabFree[n-1]
		r.slabFree = r.slabFree[:n-1]
		r.slab[slot] = env
		return slot
	}
	r.slab = append(r.slab, env)
	return uint32(len(r.slab) - 1)
}

// deliverSlot is the registered kernel handler completing a send: it
// frees the slot first (handlers may send again, reusing it) and then
// dispatches to the destination's inbox.
func (r *Runtime) deliverSlot(arg uint64) {
	slot := uint32(arg)
	env := r.slab[slot]
	r.slab[slot] = Envelope{} // release the payload for GC
	r.slabFree = append(r.slabFree, slot)
	dst := r.node(env.To)
	if dst == nil || !dst.alive {
		r.Metrics.MsgsDead++
		return
	}
	r.Metrics.MsgsDelivered++
	if r.obsReg != nil {
		r.obsReg.NoteRecv(int(env.To))
	}
	dst.deliver(env)
}

// send prices, maybe drops, and schedules delivery of one envelope. The
// loss draw happens at send time; aliveness of the destination is checked
// at delivery time, so a message in flight to a node that crashes meanwhile
// is silently swallowed — exactly the failure a timeout exists to cover.
//
// One-way delay splits the link RTT so the two legs of a request/response
// pair sum to durOf(RTT) exactly: requests (and plain one-way sends)
// travel the floor half, responses the remainder. Computing either leg as
// durOf(rtt/2) would truncate each leg independently and make a measured
// round trip fall short of the matrix entry by a nanosecond on odd-valued
// latencies.
func (r *Runtime) send(env Envelope) {
	r.Metrics.MsgsSent++
	if r.obsReg != nil {
		r.obsReg.NoteSend(int(env.From), env.Type)
	}
	if r.cfg.LossProb > 0 && r.lossSrc.Bool(r.cfg.LossProb) {
		r.Metrics.MsgsLost++
		return
	}
	rtt := durOf(r.RTTms(env.From, env.To))
	oneWay := rtt / 2
	if env.Resp {
		oneWay = rtt - rtt/2
	}
	r.Kernel.AfterHandler(oneWay, r.deliverH, uint64(r.slabPut(env)))
}
