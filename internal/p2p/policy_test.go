package p2p

import (
	"testing"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/sim"
)

// TestRequestPolicyZeroIsPlainRequest: a zero policy is one attempt with
// the caller's timeout — no retries charged, behavior identical to Request.
func TestRequestPolicyZeroIsPlainRequest(t *testing.T) {
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	n0 := r.AddNode(0)
	r.AddNode(1)
	replies := 0
	k.At(0, func() {
		n0.RequestPolicy(1, MsgPing, nil, 300*time.Millisecond, Policy{},
			func(Envelope) { replies++ }, func() { t.Error("timeout on a healthy link") })
	})
	k.Run()
	if replies != 1 {
		t.Fatalf("replies = %d, want 1", replies)
	}
	if m := r.TotalMetrics(); m.Retries != 0 {
		t.Errorf("zero policy charged %d retries", m.Retries)
	}
}

// TestRequestPolicyRetriesThroughBurst: a total black-hole that ends
// mid-call is survived by a policy whose backoff reaches past it, and the
// extra attempts are charged to Retries.
func TestRequestPolicyRetriesThroughBurst(t *testing.T) {
	plan := &faults.Plan{Seed: 2, Rules: []faults.Rule{
		{Kind: faults.Blackhole, At: 0, For: 1 * time.Second, Src: faults.List(0), Dst: faults.List(1)},
	}}
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	NewFaultTransport(r, plan)
	n0 := r.AddNode(0)
	r.AddNode(1)
	pol := Policy{Attempts: 4, BaseBackoff: 400 * time.Millisecond, Multiplier: 2}
	var ok, timedOut bool
	k.At(0, func() {
		n0.RequestPolicy(1, MsgPing, nil, 200*time.Millisecond, pol,
			func(Envelope) { ok = true }, func() { timedOut = true })
	})
	k.Run()
	if !ok || timedOut {
		t.Fatalf("ok=%v timedOut=%v, want the retry chain to outlive the black-hole", ok, timedOut)
	}
	m := r.TotalMetrics()
	if m.Retries == 0 {
		t.Error("no retries charged")
	}
	if m.Timeouts == 0 {
		t.Error("the black-holed attempts should have timed out")
	}
}

// TestRequestPolicyExhaustion: when every attempt dies, onTimeout fires
// exactly once and the peer's suspicion tally rises; an answered call
// clears it.
func TestRequestPolicyExhaustion(t *testing.T) {
	plan := &faults.Plan{Seed: 2, Rules: []faults.Rule{
		{Kind: faults.Blackhole, At: 0, For: 30 * time.Second, Src: faults.List(0), Dst: faults.List(1)},
	}}
	k := sim.New()
	r := New(k, faultTestMatrix(3), DefaultConfig(), 1)
	NewFaultTransport(r, plan)
	n0 := r.AddNode(0)
	r.AddNode(1)
	r.AddNode(2)
	pol := Policy{Attempts: 3, BaseBackoff: 100 * time.Millisecond}
	timeouts := 0
	k.At(0, func() {
		n0.RequestPolicy(1, MsgPing, nil, 100*time.Millisecond, pol,
			func(Envelope) { t.Error("reply through a black-hole") }, func() { timeouts++ })
	})
	k.Run()
	if timeouts != 1 {
		t.Fatalf("onTimeout fired %d times, want exactly 1", timeouts)
	}
	if got := n0.Suspicion(1); got != 1 {
		t.Errorf("Suspicion(1) = %d, want 1", got)
	}
	if n0.Suspect(1, pol) {
		t.Error("one exhausted call should not cross the default threshold of 2")
	}
	// A second exhausted call crosses it; an answered call to 2 clears 2.
	k.After(0, func() {
		n0.RequestPolicy(1, MsgPing, nil, 100*time.Millisecond, pol, nil, nil)
		n0.RequestPolicy(2, MsgPing, nil, 100*time.Millisecond, pol, nil, nil)
	})
	k.Run()
	if !n0.Suspect(1, pol) {
		t.Errorf("Suspicion(1) = %d after two exhausted calls, want suspect", n0.Suspicion(1))
	}
	if n0.Suspicion(2) != 0 {
		t.Errorf("Suspicion(2) = %d after an answered call, want 0", n0.Suspicion(2))
	}
	if n0.Suspect(1, Policy{}) {
		t.Error("a disabled policy must never report suspects")
	}
}

// TestRequestPolicyChainDiesAcrossRestart: a retry timer parked when the
// node crashes (or restarts) must not fire an attempt in the next life.
func TestRequestPolicyChainDiesAcrossRestart(t *testing.T) {
	plan := &faults.Plan{Seed: 2, Rules: []faults.Rule{
		{Kind: faults.Blackhole, At: 0, For: 30 * time.Second, Src: faults.List(0), Dst: faults.List(1)},
	}}
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	NewFaultTransport(r, plan)
	n0 := r.AddNode(0)
	r.AddNode(1)
	pol := Policy{Attempts: 5, BaseBackoff: 500 * time.Millisecond}
	k.At(0, func() {
		n0.RequestPolicy(1, MsgPing, nil, 200*time.Millisecond, pol, nil, nil)
	})
	// Restart lands inside the first backoff window (timeout 200 ms +
	// backoff 500 ms): the chain must not continue into the new life.
	k.At(400*time.Millisecond, func() { n0.Stop() })
	k.At(450*time.Millisecond, func() { n0.Restart() })
	k.Run()
	m := r.TotalMetrics()
	if m.Retries != 0 {
		t.Errorf("retry chain survived a restart: %d retries charged", m.Retries)
	}
}

// TestPolicyBackoffDeterminism: the backoff schedule is a pure function
// of (policy, node, sequence, attempt) — and jitter actually spreads it.
func TestPolicyBackoffDeterminism(t *testing.T) {
	pol := Policy{Attempts: 4, BaseBackoff: 100 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}
	for attempt := 1; attempt <= 3; attempt++ {
		a := pol.backoff(7, 42, attempt)
		b := pol.backoff(7, 42, attempt)
		if a != b {
			t.Fatalf("backoff(attempt=%d) not deterministic: %v vs %v", attempt, a, b)
		}
		base := float64(100*time.Millisecond) * float64(int(1)<<(attempt-1))
		lo, hi := time.Duration(0.8*base), time.Duration(1.2*base)
		if a < lo || a > hi {
			t.Errorf("backoff(attempt=%d) = %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	if pol.backoff(7, 42, 1) == pol.backoff(7, 43, 1) {
		t.Error("jitter identical across call sequences")
	}
}

// TestPolicyBackoffNeverNegative: regression for the unbounded-jitter bug.
// JitterFrac > 1 scales the backoff by 1 + JitterFrac*(2u-1), which goes
// negative whenever u < (JitterFrac-1)/(2*JitterFrac) — about a third of
// all draws at JitterFrac 3 — scheduling the retry in the past. The drawn
// delay must clamp at zero even for a policy that skipped Validate.
func TestPolicyBackoffNeverNegative(t *testing.T) {
	pol := Policy{Attempts: 4, BaseBackoff: 100 * time.Millisecond, JitterFrac: 3}
	hitZero := false
	for id := NodeID(0); id < 64; id++ {
		for seq := uint64(0); seq < 64; seq++ {
			for attempt := 1; attempt <= 3; attempt++ {
				d := pol.backoff(id, seq, attempt)
				if d < 0 {
					t.Fatalf("backoff(id=%d, seq=%d, attempt=%d) = %v, negative", id, seq, attempt, d)
				}
				if d == 0 {
					hitZero = true
				}
			}
		}
	}
	// The sweep must actually exercise draws the old code priced negative;
	// otherwise this test would pass vacuously.
	if !hitZero {
		t.Error("no draw clamped to zero: the sweep never hit the negative region")
	}
}

// TestPolicyValidate: the zero policy and every policy the studies use are
// valid; out-of-range knobs are rejected with a descriptive error.
func TestPolicyValidate(t *testing.T) {
	valid := []Policy{
		{},
		{Attempts: 3, BaseBackoff: 300 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2},
		{Attempts: 2, JitterFrac: 1, PerTryTimeout: time.Second},
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	invalid := []Policy{
		{JitterFrac: 1.5},
		{JitterFrac: -0.1},
		{BaseBackoff: -time.Millisecond},
		{PerTryTimeout: -time.Millisecond},
		{Multiplier: 0.5},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
}

// TestPolicyValidateAtConstruction: a protocol constructor rejects a config
// whose embedded retry policy is invalid — the policy is checked where it
// enters the runtime, not first used deep in a retry chain.
func TestPolicyValidateAtConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMeridian accepted a config with JitterFrac 2")
		}
	}()
	k := sim.New()
	r := New(k, faultTestMatrix(2), DefaultConfig(), 1)
	cfg := DefaultMeridianConfig()
	cfg.Retry = Policy{Attempts: 3, JitterFrac: 2}
	NewMeridian(r, cfg, 1)
}
