// Differential conformance: the same seeded chord+vivaldi workload runs
// over the simulation transport and over the loopback live transport, and
// the lookup results — which keys were found, and which node is
// responsible for each key — must be identical. Ring responsibility is a
// pure function of the members' ring IDs once the ring has converged, so
// it must not depend on whether time was virtual or wall-clock; the live
// stack is thereby checked against the simulated oracle.

package p2p_test

import (
	"fmt"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/p2p"
	"nearestpeer/internal/sim"
	"nearestpeer/internal/vivaldi"
)

// diffN is the cluster size of the differential workload.
const diffN = 10

// diffKeys is how many keys the workload puts, gets, and looks up.
const diffKeys = 12

// diffMatrix builds the workload's latency model: a line topology with
// distinct pairwise RTTs (10·|i−j| ms), small enough that the wall-clock
// run stays fast.
func diffMatrix() latency.Matrix {
	m := latency.NewDense(diffN)
	for i := 0; i < diffN; i++ {
		for j := i + 1; j < diffN; j++ {
			m.Set(i, j, 10*float64(j-i))
		}
	}
	return m
}

// diffChordConfig keeps maintenance fast so the live run converges within
// a couple of wall-clock seconds.
func diffChordConfig() p2p.ChordConfig {
	cfg := p2p.DefaultChordConfig()
	cfg.StabilizeEvery = 100 * time.Millisecond
	cfg.RPCTimeout = 500 * time.Millisecond
	cfg.Horizon = 60 * time.Second
	return cfg
}

func diffWireConfig() vivaldi.WireConfig {
	cfg := vivaldi.DefaultWireConfig()
	cfg.GossipEvery = 100 * time.Millisecond
	cfg.SnapshotTTL = 500 * time.Millisecond
	cfg.RPCTimeout = 500 * time.Millisecond
	cfg.Horizon = 60 * time.Second
	return cfg
}

// diffDriver abstracts how a transport's time passes: the sim advances the
// kernel, the loopback just lets the wall clock run. do serializes a
// closure with protocol callbacks; settle lets d of protocol time elapse.
type diffDriver struct {
	do     func(fn func())
	settle func(d time.Duration)
}

// diffOutcome is the transport-independent result of the workload: per
// key, whether the Get found it, the value it returned, and the owner the
// Lookup resolved.
type diffOutcome struct {
	found map[string]bool
	vals  map[string]string
	owner map[string]p2p.NodeID
}

// await settles in steps until check (run on the loop) reports true.
func await(t *testing.T, d diffDriver, what string, deadline time.Duration, check func() bool) {
	t.Helper()
	step := 100 * time.Millisecond
	for waited := time.Duration(0); waited < deadline; waited += step {
		ok := false
		d.do(func() { ok = check() })
		if ok {
			return
		}
		d.settle(step)
	}
	t.Fatalf("differential workload: %s did not complete in %v", what, deadline)
}

// diffWorkload stands up chord and the vivaldi wire on tr, waits for ring
// convergence, then puts/gets/looks up diffKeys keys and runs one
// coordinate-guided nearest query. Returns the chord outcome.
func diffWorkload(t *testing.T, tr p2p.Transport, d diffDriver) diffOutcome {
	t.Helper()
	ch := p2p.NewChord(tr, diffChordConfig(), 7)
	var w *vivaldi.Wire
	d.do(func() {
		w = vivaldi.NewWire(tr, diffWireConfig(), 11)
		for i := 0; i < diffN; i++ {
			ch.Join(p2p.NodeID(i))
			w.Join(p2p.NodeID(i))
		}
	})

	// Converged: every member agrees with the ring order of the full
	// membership (successor(i) per sorted ring IDs).
	await(t, d, "ring convergence", 30*time.Second, func() bool {
		members := ch.LiveMembers()
		if len(members) != diffN {
			return false
		}
		for _, id := range members {
			succ, ok := ch.SuccessorOf(p2p.NodeID(id))
			if !ok || succ != diffSuccessor(ch, members, p2p.NodeID(id)) {
				return false
			}
		}
		return true
	})

	out := diffOutcome{
		found: make(map[string]bool),
		vals:  make(map[string]string),
		owner: make(map[string]p2p.NodeID),
	}
	puts := 0
	d.do(func() {
		for i := 0; i < diffKeys; i++ {
			key := fmt.Sprintf("key-%d", i)
			val := []byte(fmt.Sprintf("val-%d", i))
			ch.Put(p2p.NodeID(i%diffN), key, val, func(res p2p.OpResult) {
				if !res.OK {
					t.Errorf("put %s failed", key)
				}
				puts++
			})
		}
	})
	await(t, d, "puts", 20*time.Second, func() bool { return puts == diffKeys })

	gets := 0
	d.do(func() {
		for i := 0; i < diffKeys; i++ {
			key := fmt.Sprintf("key-%d", i)
			ch.Get(p2p.NodeID((i*3+1)%diffN), key, func(res p2p.OpResult) {
				out.found[key] = res.OK && len(res.Vals) > 0
				if len(res.Vals) > 0 {
					out.vals[key] = string(res.Vals[0])
				}
				gets++
			})
			ch.Lookup(p2p.NodeID((i*5+2)%diffN), key, func(res p2p.LookupResult) {
				if res.OK {
					out.owner[key] = res.Owner
				} else {
					out.owner[key] = p2p.NoNode
				}
				gets++
			})
		}
	})
	await(t, d, "gets and lookups", 20*time.Second, func() bool { return gets == 2*diffKeys })

	// The vivaldi leg: the query must complete and return a live member
	// other than the client on both transports. The peer's identity is
	// coordinate- and timing-dependent, so it is asserted valid, not equal.
	vdone := false
	d.do(func() {
		w.FindNearest(0, func(res vivaldi.WireResult) {
			if !res.Found || res.Peer == 0 || !tr.Alive(res.Peer) {
				t.Errorf("vivaldi nearest from 0: found=%v peer=%d", res.Found, res.Peer)
			}
			vdone = true
		})
	})
	await(t, d, "vivaldi query", 20*time.Second, func() bool { return vdone })
	return out
}

// diffSuccessor computes successor(id) over the membership by ring IDs —
// the converged ground truth.
func diffSuccessor(ch *p2p.Chord, members []int, id p2p.NodeID) p2p.NodeID {
	self := ch.RingIDOf(id)
	best := p2p.NoNode
	var bestDist uint64
	for _, m := range members {
		if p2p.NodeID(m) == id {
			continue
		}
		d := ch.RingIDOf(p2p.NodeID(m)) - self // wrapping clockwise distance
		if best == p2p.NoNode || d < bestDist {
			best, bestDist = p2p.NodeID(m), d
		}
	}
	return best
}

// TestDifferentialSimVsLoopback is the conformance gate: identical keys
// found, identical values, identical responsible nodes on both transports.
func TestDifferentialSimVsLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock differential run")
	}

	kernel := sim.New()
	srt := p2p.New(kernel, diffMatrix(), p2p.Config{RPCTimeout: time.Second}, 1)
	simOut := diffWorkload(t, srt, diffDriver{
		do:     func(fn func()) { fn() },
		settle: func(d time.Duration) { kernel.RunUntil(kernel.Now() + d) },
	})

	lb := p2p.NewLoopback(diffMatrix(), p2p.Config{RPCTimeout: time.Second}, 1)
	defer lb.Close()
	liveOut := diffWorkload(t, lb, diffDriver{
		do:     lb.Do,
		settle: time.Sleep,
	})

	for i := 0; i < diffKeys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if simOut.found[key] != liveOut.found[key] {
			t.Errorf("%s: sim found=%v live found=%v", key, simOut.found[key], liveOut.found[key])
		}
		if simOut.vals[key] != liveOut.vals[key] {
			t.Errorf("%s: sim val=%q live val=%q", key, simOut.vals[key], liveOut.vals[key])
		}
		if simOut.owner[key] != liveOut.owner[key] {
			t.Errorf("%s: sim owner=%d live owner=%d", key, simOut.owner[key], liveOut.owner[key])
		}
		if !simOut.found[key] {
			t.Errorf("%s: not found even on the simulated oracle", key)
		}
	}
}
