// The UDP transport: real datagrams between real sockets, with the codec
// (codec.go) framing every envelope and a read loop per socket feeding
// the event loop. The inflight-waiter correlation lives in Node, exactly
// as on the other transports — a response datagram's MsgID finds its
// parked request, a late or duplicate reply finds nothing and is dropped,
// a timeout that fires first wins the race.
//
// One UDP value can host many local nodes (one socket each), so a whole
// cluster can live in one process over real datagrams — the CI smoke test
// does — or one node per process, as cmd/npnode deploys it. Remote peers
// are named by a peer table (NodeID → address) seeded from configuration;
// addresses of unknown senders are learned from their datagrams, which is
// what lets an ephemeral CLI client with a fresh NodeID query a daemon
// without being in anyone's table.

package p2p

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/latency"
	"nearestpeer/internal/rng"
)

// UDP is the datagram live transport. Create with NewUDP, bring local
// nodes up with Listen, name remote peers with AddPeer, and Close when
// done.
type UDP struct {
	liveBase
	loss *rng.Source

	pmu   sync.RWMutex
	conns map[NodeID]*net.UDPConn
	peers map[NodeID]*net.UDPAddr

	// delay, when set, prices an artificial receive-side delay from a
	// latency matrix (request leg rtt/2, response leg the remainder), so an
	// in-process cluster on the loopback interface exhibits the matrix's
	// RTTs and a ping measures ≈ the matrix entry — the hook the CI smoke
	// test uses to cross-check `nearest` against the static oracle.
	delay atomic.Pointer[latency.Matrix]

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewUDP creates a UDP transport with the given ID-space bound (NodeIDs
// live in [0, pop)). seed drives the loss-model draws (unused when
// cfg.LossProb is 0 — real networks bring their own loss).
func NewUDP(pop int, cfg Config, seed int64) *UDP {
	u := &UDP{
		loss:  rng.New(seed).Split("loss"),
		conns: make(map[NodeID]*net.UDPConn),
		peers: make(map[NodeID]*net.UDPAddr),
	}
	u.init(u, pop, cfg)
	return u
}

// SetDelayMatrix installs (or, with nil, removes) the artificial
// receive-side delay matrix. Call before traffic flows.
func (u *UDP) SetDelayMatrix(m latency.Matrix) {
	if m == nil {
		u.delay.Store(nil)
		return
	}
	u.delay.Store(&m)
}

// Listen binds a socket for a local node, registers the node, and starts
// its read loop. addr is a "host:port" UDP address; empty means
// "127.0.0.1:0" (an ephemeral loopback port). It returns the bound
// address — the one to hand other processes as this node's peer address.
func (u *UDP) Listen(id NodeID, addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", fmt.Errorf("p2p: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return "", fmt.Errorf("p2p: listen %q: %w", addr, err)
	}
	u.pmu.Lock()
	if _, dup := u.conns[id]; dup {
		u.pmu.Unlock()
		conn.Close()
		return "", fmt.Errorf("p2p: node %d already listening", id)
	}
	u.conns[id] = conn
	delete(u.peers, id) // local again: a stale learned address must not shadow the socket
	u.pmu.Unlock()
	n := u.AddNode(id)
	u.Do(func() {
		if !n.alive {
			n.Restart() // re-Listen after CloseNode revives the node
		}
	})
	u.wg.Add(1)
	go u.readLoop(id, conn)
	return conn.LocalAddr().String(), nil
}

// CloseNode releases a local node's socket and forgets the node was ever
// local, stopping it on the event loop. Without this, a node that migrates
// to another process is unreachable forever: addrOf keeps resolving it to
// the dead local socket, and learnPeer refuses to record the new address
// because the ID still looks local. After CloseNode the next datagram from
// the migrated node re-learns its address like any remote peer's, and a
// later Listen may re-bind the ID locally again.
func (u *UDP) CloseNode(id NodeID) {
	u.pmu.Lock()
	c := u.conns[id]
	delete(u.conns, id)
	delete(u.peers, id)
	u.pmu.Unlock()
	if c != nil {
		c.Close() // read loop exits on the closed socket
	}
	u.Do(func() {
		if n := u.Node(id); n != nil && n.alive {
			n.Stop()
		}
	})
}

// AddPeer names a remote node's address in the peer table.
func (u *UDP) AddPeer(id NodeID, addr string) error {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("p2p: resolve peer %d %q: %w", id, addr, err)
	}
	u.pmu.Lock()
	u.peers[id] = ua
	u.pmu.Unlock()
	return nil
}

// LocalAddr returns the bound address of a local node's socket, or "".
func (u *UDP) LocalAddr(id NodeID) string {
	u.pmu.RLock()
	defer u.pmu.RUnlock()
	if c := u.conns[id]; c != nil {
		return c.LocalAddr().String()
	}
	return ""
}

// Close shuts the transport down: sockets close, read loops drain, the
// event loop stops. Safe to call twice.
func (u *UDP) Close() error {
	if !u.closed.CompareAndSwap(false, true) {
		return nil
	}
	u.pmu.Lock()
	for _, c := range u.conns {
		c.Close()
	}
	u.pmu.Unlock()
	u.wg.Wait()
	u.loop.close()
	return nil
}

// addrOf resolves a destination: local nodes by their own socket's bound
// address (the datagram still crosses the stack — the codec and read loop
// are exercised even in-process), then the peer table.
func (u *UDP) addrOf(to NodeID) *net.UDPAddr {
	u.pmu.RLock()
	defer u.pmu.RUnlock()
	if c := u.conns[to]; c != nil {
		return c.LocalAddr().(*net.UDPAddr)
	}
	return u.peers[to]
}

// send encodes the envelope and writes one datagram from the sender's own
// socket. Unroutable destinations, encode failures, and write errors all
// count as dead letters — UDP promises nothing, and the request timeout
// is what surfaces the loss to the protocol.
func (u *UDP) send(env Envelope) {
	u.metrics.MsgsSent++
	if u.cfg.LossProb > 0 && u.loss.Float64() < u.cfg.LossProb {
		u.metrics.MsgsLost++
		return
	}
	var fd faults.Decision
	if u.flt != nil {
		fd = u.flt.Decide(int(env.From), int(env.To), u.faultNow())
		if fd.Drop {
			u.metrics.MsgsLost++
			u.metrics.FaultDropped++
			return
		}
	}
	u.pmu.RLock()
	src := u.conns[env.From]
	u.pmu.RUnlock()
	dst := u.addrOf(env.To)
	if src == nil || dst == nil {
		u.metrics.MsgsDead++
		return
	}
	frame, err := EncodeEnvelope(env)
	if err != nil {
		u.metrics.MsgsDead++
		return
	}
	copies := 1
	if fd.Dup {
		copies = 2
		u.metrics.MsgsSent++
		u.metrics.FaultDuplicated++
	}
	// write may run off-loop (the delayed path), so error accounting posts
	// back to the loop rather than touching loop-confined metrics directly.
	write := func() {
		for c := 0; c < copies; c++ {
			if _, err := src.WriteToUDP(frame, dst); err != nil {
				u.loop.post(func() { u.metrics.MsgsDead++ })
			}
		}
	}
	if fd.ExtraMs > 0 {
		u.metrics.FaultDelayed++
		time.AfterFunc(durOf(fd.ExtraMs), write)
		return
	}
	write()
}

// Multicast is unsupported on UDP: with no link oracle there is no
// latency scope to expand. It reports zero copies sent.
func (u *UDP) Multicast(NodeID, string, string, any, float64) int { return 0 }

// readLoop drains one local node's socket: decode, learn the sender's
// address, price the artificial delay if a matrix is installed, and post
// delivery to the event loop. It exits when the socket closes.
func (u *UDP) readLoop(self NodeID, conn *net.UDPConn) {
	defer u.wg.Done()
	buf := make([]byte, MaxFrame+1)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (or broken): this node is done receiving
		}
		env, err := DecodeEnvelope(append([]byte(nil), buf[:n]...))
		if err != nil {
			u.loop.post(func() { u.metrics.MsgsDead++ })
			continue
		}
		env.To = self // trust the socket, not the frame
		u.learnPeer(env.From, raddr)
		deliver := func() {
			u.loop.post(func() {
				node := u.Node(self)
				if node == nil || !node.alive {
					u.metrics.MsgsDead++
					return
				}
				u.metrics.MsgsDelivered++
				node.deliver(env)
			})
		}
		if d := u.artificialDelay(env); d > 0 {
			time.AfterFunc(d, func() { deliver() })
		} else {
			deliver()
		}
	}
}

// learnPeer records a sender's address, last-seen wins — the path that
// lets ephemeral clients be answered, including a client that re-binds a
// fresh port under a previously seen NodeID (successive CLI invocations).
func (u *UDP) learnPeer(from NodeID, raddr *net.UDPAddr) {
	u.pmu.RLock()
	_, isLocal := u.conns[from]
	known := u.peers[from]
	u.pmu.RUnlock()
	if isLocal || (known != nil && known.IP.Equal(raddr.IP) && known.Port == raddr.Port) {
		return
	}
	u.pmu.Lock()
	u.peers[from] = raddr
	u.pmu.Unlock()
}

// artificialDelay prices the receive-side delay for an envelope when a
// delay matrix is installed and both endpoints fall inside it.
func (u *UDP) artificialDelay(env Envelope) time.Duration {
	mp := u.delay.Load()
	if mp == nil {
		return 0
	}
	m := *mp
	if int(env.From) < 0 || int(env.From) >= m.N() || int(env.To) < 0 || int(env.To) >= m.N() {
		return 0
	}
	return oneWayDelay(m.LatencyMs(int(env.From), int(env.To)), env.Resp)
}
