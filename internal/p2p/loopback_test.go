// Shutdown-edge soaks for the loopback transport, run under -race in CI:
// Close racing a storm of in-flight requests (delivery timers, expiry
// timers, and requester goroutines all live at close time), and Stop with
// parked timers (a stopped node's pending deliveries, expiries, and retry
// backoffs must all land harmlessly, and must not leak into the node's
// next life after Restart).

package p2p

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoopbackCloseDuringInflight closes the transport while requests are
// mid-flight and callers keep issuing more from their own goroutines. The
// assertions are structural: no panic, no race, every pre-close request
// resolves at most once, and nothing resolves after Close returns.
func TestLoopbackCloseDuringInflight(t *testing.T) {
	lb := NewLoopback(lineMatrix(8), Config{RPCTimeout: 20 * time.Millisecond}, 1)
	var resolved atomic.Int64
	var closed atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200 && !closed.Load(); i++ {
				from, to := NodeID(g), NodeID(4+(g+i)%4)
				lb.Do(func() {
					n := lb.AddNode(from)
					lb.AddNode(to)
					n.Request(to, MsgPing, nil, 10*time.Millisecond,
						func(Envelope) {
							if closed.Load() {
								t.Error("reply resolved after Close returned")
							}
							resolved.Add(1)
						},
						func() { resolved.Add(1) })
				})
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let a storm of timers park
	lb.Close()
	closed.Store(true)
	wg.Wait()
	// Post-close posts are discarded, not deadlocked.
	ran := false
	lb.Do(func() { ran = true })
	if ran {
		t.Error("Do ran its closure on a closed transport")
	}
	if resolved.Load() == 0 {
		t.Error("no request resolved before Close — the soak raced nothing")
	}
}

// TestLoopbackStopWithParkedTimers stops a node while its request
// timeouts, inbound deliveries, and a retry chain's backoff timer are all
// parked. Every one of those timers fires into the stopped (then
// restarted) node; the generation guard must keep the old life's
// callbacks from resolving in the new one.
func TestLoopbackStopWithParkedTimers(t *testing.T) {
	lb := NewLoopback(lineMatrix(4), Config{RPCTimeout: time.Second}, 1)
	defer lb.Close()
	var n0 *Node
	lb.Do(func() {
		n0 = lb.AddNode(0)
		lb.AddNode(1)        // rtt(0,1) = 10 ms: replies park for 5 ms per leg
		lb.AddNode(3).Stop() // node 3 is a black hole: requests to it only expire
	})
	var oldLife atomic.Int64
	pol := Policy{Attempts: 3, BaseBackoff: 30 * time.Millisecond}
	lb.Do(func() {
		// A reply that will arrive ~10 ms from now, after Stop.
		n0.Request(1, MsgPing, nil, time.Second,
			func(Envelope) { oldLife.Add(1) }, func() { oldLife.Add(1) })
		// An expiry that will fire 25 ms from now, after Stop.
		n0.Request(3, MsgPing, nil, 25*time.Millisecond,
			func(Envelope) { oldLife.Add(1) }, func() { oldLife.Add(1) })
		// A retry chain whose backoff timer will be parked at Stop time.
		n0.RequestPolicy(3, MsgPing, nil, 5*time.Millisecond, pol,
			func(Envelope) { oldLife.Add(1) }, func() { oldLife.Add(1) })
	})
	time.Sleep(2 * time.Millisecond)
	lb.Do(func() { n0.Stop() })
	time.Sleep(50 * time.Millisecond) // all three parked timers fire into the stopped node
	lb.Do(func() { n0.Restart() })
	// The new life works: a fresh request to a live peer resolves.
	done := make(chan bool, 1)
	lb.Do(func() {
		n0.Request(1, MsgPing, nil, time.Second,
			func(Envelope) { done <- true }, func() { done <- false })
	})
	select {
	case ok := <-done:
		if !ok {
			t.Error("fresh request after Restart timed out")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fresh request never resolved")
	}
	time.Sleep(100 * time.Millisecond) // let any straggling old-life timer fire
	if got := oldLife.Load(); got != 0 {
		t.Errorf("%d old-life callbacks resolved across Stop/Restart, want 0", got)
	}
	var retries int64
	lb.Do(func() { retries = lb.SerialMetrics().Retries })
	if retries != 0 {
		t.Errorf("retry chain survived Stop: %d retries charged", retries)
	}
}
