// The Transport seam: the interface between protocol code (chord,
// Meridian, the expanding search, and the coordinate/hint wires layered in
// other packages) and the machinery that actually carries its messages.
//
// Three implementations exist:
//
//   - *Runtime (runtime.go): the virtual-time simulation transport — a
//     discrete-event kernel (serial or sharded), a latency matrix pricing
//     every link, a loss model, and the zero-alloc envelope slabs. All
//     figures run here; its behavior is pinned byte-for-byte by the golden
//     tests.
//   - *Loopback (loopback.go): an in-process live transport — real
//     goroutines, wall-clock timers, envelopes passed through a single
//     serializing event loop, link delays priced from the same latency
//     matrix. The differential conformance tests run the same protocol
//     code here and assert it agrees with the simulated oracle.
//   - *UDP (udp.go): a real datagram transport — one socket per local
//     node, a length-prefixed envelope codec, a read loop per socket, and
//     the same event loop serializing deliveries. cmd/npnode serves a node
//     over it.
//
// Protocol code written against Transport runs unchanged on all three:
// the inflight/MsgID correlation, timeout races, and handler dispatch live
// in Node and are shared, so a protocol debugged in virtual time is the
// protocol deployed on the wire.

package p2p

import (
	"time"

	"nearestpeer/internal/obs"
	"nearestpeer/internal/sim"
)

// Transport is what protocol code sees of the runtime carrying its
// messages: node lifecycle, per-node clocks and timers, the sharding
// contract, metrics accounting, and latency-scoped multicast. The
// unexported core (sending, timeout parking, msg-id allocation) keeps the
// set of implementations closed within this package — Node's hot path
// calls it, and its invariants (exactly-once timeout/reply races,
// allocation discipline) are only enforceable here.
//
// Implementations differ in what they can promise:
//
//   - *Runtime is single-threaded per shard and deterministic; every
//     method maps to kernel events in virtual time.
//   - The live transports (*Loopback, *UDP) run callbacks on one event
//     loop goroutine with wall-clock timers. They are not sharded
//     (Sharded() is false, Handoff degenerates to After) and not
//     deterministic; protocol entry points must be invoked on the loop
//     (see Loopback.Do).
type Transport interface {
	// AddNode registers (or returns) the node for an ID, bringing a new
	// node up alive. See Runtime.AddNode for resurrection semantics.
	AddNode(id NodeID) *Node
	// Node returns the registered node for id, or nil.
	Node(id NodeID) *Node
	// Alive reports whether id is registered and up.
	Alive(id NodeID) bool
	// Population returns the ID-space bound: node IDs live in
	// [0, Population). Protocol packages size dense per-node state with it.
	Population() int

	// Now returns the clock at a node's home context: virtual time on the
	// simulator, wall time since transport start on the live transports.
	Now(id NodeID) time.Duration
	// After schedules fn on a node's home context after d.
	After(id NodeID, d time.Duration, fn func())
	// RegisterHandler registers a typed-event handler: the zero-alloc
	// alternative to closure timers for protocols that schedule per-tick
	// (see sim.Sim.RegisterHandler). Live transports accept it too — the
	// handler runs on the event loop. Serial/driver context only.
	RegisterHandler(fn func(arg uint64)) sim.HandlerID
	// AfterHandler schedules a registered typed handler after d on the
	// driver context (shard 0 of a sharded runtime). Serial-only
	// protocols (the Vivaldi wire) pace their tick chains with it.
	AfterHandler(d time.Duration, h sim.HandlerID, arg uint64)

	// Sharded reports whether the transport runs over a sharded kernel;
	// live transports are never sharded.
	Sharded() bool
	// Shards returns the shard count (1 when not sharded).
	Shards() int
	// ShardOf returns a node's home shard (0 when not sharded).
	ShardOf(id NodeID) int
	// Handoff schedules fn at node to's home context at the caller's
	// now+d, from shard `from` (see Runtime.Handoff). On an unsharded
	// transport it is After.
	Handoff(from int, to NodeID, d time.Duration, fn func())
	// HandoffDelay is the minimum legal Handoff delay: the sharded
	// kernel's lookahead window, 0 otherwise.
	HandoffDelay() time.Duration

	// SerialMetrics returns the transport-wide metrics struct serial
	// protocols read and charge directly (Runtime.Metrics on the
	// simulator). Sharded protocols must use ShardMetrics instead.
	SerialMetrics() *Metrics
	// ShardMetrics returns shard s's private metrics — the increment
	// target for protocol counters charged to a node (use with ShardOf).
	ShardMetrics(s int) *Metrics
	// FlightRecorder returns the attached lookup flight recorder, or nil.
	FlightRecorder() *obs.Recorder

	// JoinGroup subscribes a node to a named multicast group.
	JoinGroup(gname string, id NodeID)
	// LeaveGroup removes a node from a multicast group.
	LeaveGroup(gname string, id NodeID)
	// Multicast sends one-way copies of a message to every live group
	// member within radiusMs of the sender, returning the copy count.
	// Requires a transport with a latency model (the simulator and the
	// loopback); the UDP transport has no link oracle and returns 0.
	Multicast(from NodeID, gname, typ string, payload any, radiusMs float64) int

	// send prices, maybe drops, and schedules delivery of one envelope.
	send(env Envelope)
	// allocMsgIDFor hands out transport-unique correlation IDs.
	allocMsgIDFor(id NodeID) uint64
	// timeoutAt schedules a request expiry for (node, msgID) after d.
	timeoutAt(d time.Duration, node NodeID, msgID uint64)
	// defaultRPCTimeout is the expiry used when a caller passes none.
	defaultRPCTimeout() time.Duration
	// metricsAt returns the metrics struct charged for activity at a node
	// (its home shard's on the simulator).
	metricsAt(id NodeID) *Metrics
	// noteLive adjusts the live-node count (Node.Stop/Restart bookkeeping).
	noteLive(delta int)
}

// Compile-time checks: all three transports implement the seam.
var (
	_ Transport = (*Runtime)(nil)
	_ Transport = (*Loopback)(nil)
	_ Transport = (*UDP)(nil)
)
