// The wire codec of the UDP transport: a length-prefixed binary frame
// around each Envelope, with the protocol-specific payload carried as a
// registered type name plus a JSON body. The simulator and the loopback
// transport pass Envelope values in memory and never touch this; the UDP
// transport encodes every send and decodes every datagram.
//
// Frames must survive a hostile network: every decode error is an error
// value, never a panic — the fuzz tests (codec_fuzz_test.go) hold that
// line over truncated, oversized, and garbage frames.

package p2p

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// MaxFrame is the largest encoded frame the codec accepts, on both ends:
// encoding a bigger envelope fails, and a claimed length beyond it is
// rejected before any allocation. It comfortably exceeds every protocol
// message (the largest, a chord handoff, carries a node's key slice) while
// staying under the conventional 64 KiB UDP datagram ceiling.
const MaxFrame = 60 << 10

// codecVersion is the frame format version; decoders reject others.
const codecVersion = 1

// Frame flag bits.
const (
	flagResp    = 1 << 0 // Envelope.Resp
	flagPayload = 1 << 1 // a payload block follows the type tag
)

// frameHeader is the fixed-width prefix after the length word: version,
// flags, MsgID, From, To.
const frameHeader = 1 + 1 + 8 + 8 + 8

// payloadRegistry maps wire names to payload types and back. Entries are
// registered at init time by the protocol packages; the maps are
// read-mostly and guarded for the rare late registration (tests).
var payloadRegistry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// RegisterPayload registers a payload type for the wire codec under a
// stable name. sample fixes the dynamic type: decode reproduces exactly
// it (a pointer sample decodes to a pointer, a value sample to a value),
// so handler type assertions behave identically on the simulated and the
// UDP transport. Registering two types under one name, or one type under
// two names, panics — payload identity must be unambiguous on the wire.
func RegisterPayload(name string, sample any) {
	if name == "" || sample == nil {
		panic("p2p: RegisterPayload with empty name or nil sample")
	}
	t := reflect.TypeOf(sample)
	payloadRegistry.Lock()
	defer payloadRegistry.Unlock()
	if prev, ok := payloadRegistry.byName[name]; ok && prev != t {
		panic(fmt.Sprintf("p2p: payload name %q registered for both %v and %v", name, prev, t))
	}
	if prev, ok := payloadRegistry.byType[t]; ok && prev != name {
		panic(fmt.Sprintf("p2p: payload type %v registered as both %q and %q", t, prev, name))
	}
	payloadRegistry.byName[name] = t
	payloadRegistry.byType[t] = name
}

// RegisteredPayloads returns the sorted wire names of all registered
// payload types (tests and diagnostics).
func RegisteredPayloads() []string {
	payloadRegistry.RLock()
	defer payloadRegistry.RUnlock()
	out := make([]string, 0, len(payloadRegistry.byName))
	for name := range payloadRegistry.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func init() {
	// The chord payloads (chord.go).
	RegisterPayload("c_find", cFindMsg{})
	RegisterPayload("c_find_ok", cFindOKMsg{})
	RegisterPayload("c_state_ok", cStateOKMsg{})
	RegisterPayload("c_store", cStoreMsg{})
	RegisterPayload("c_fetch", cFetchMsg{})
	RegisterPayload("c_fetch_ok", cFetchOKMsg{})
	RegisterPayload("c_handoff", cHandoffMsg{})
	// The Meridian payloads (meridian.go).
	RegisterPayload("m_query", queryMsg{})
	RegisterPayload("m_probe", probeMsg{})
	RegisterPayload("m_probe_ok", probeOKMsg{})
	RegisterPayload("m_done", doneMsg{})
	// The expanding-search payloads (expand.go).
	RegisterPayload("x_find", findMsg{})
	RegisterPayload("x_found", foundMsg{})
}

// appendU16 appends a big-endian uint16.
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }

// EncodeEnvelope encodes env as one wire frame: a u32 length prefix
// (counting everything after itself), the fixed header, the type tag, and
// — when env.Payload is non-nil — the payload's registered name and JSON
// body. It fails on unregistered payload types, unmarshalable payloads,
// and frames over MaxFrame.
func EncodeEnvelope(env Envelope) ([]byte, error) {
	if len(env.Type) > 0xFFFF {
		return nil, fmt.Errorf("p2p: message type %q too long", env.Type[:32])
	}
	var flags byte
	if env.Resp {
		flags |= flagResp
	}
	b := make([]byte, 4, 4+frameHeader+2+len(env.Type)+64)
	var name string
	var body []byte
	if env.Payload != nil {
		flags |= flagPayload
		payloadRegistry.RLock()
		name = payloadRegistry.byType[reflect.TypeOf(env.Payload)]
		payloadRegistry.RUnlock()
		if name == "" {
			return nil, fmt.Errorf("p2p: payload type %T not registered with RegisterPayload", env.Payload)
		}
		var err error
		if body, err = json.Marshal(env.Payload); err != nil {
			return nil, fmt.Errorf("p2p: encode %s payload: %w", name, err)
		}
	}
	b = append(b, codecVersion, flags)
	b = binary.BigEndian.AppendUint64(b, env.MsgID)
	b = binary.BigEndian.AppendUint64(b, uint64(int64(env.From)))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(env.To)))
	b = appendU16(b, uint16(len(env.Type)))
	b = append(b, env.Type...)
	if flags&flagPayload != 0 {
		b = appendU16(b, uint16(len(name)))
		b = append(b, name...)
		if len(body) > MaxFrame {
			return nil, fmt.Errorf("p2p: %s payload body %d bytes exceeds frame cap", name, len(body))
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(body)))
		b = append(b, body...)
	}
	if len(b) > MaxFrame {
		return nil, fmt.Errorf("p2p: frame %d bytes exceeds cap %d", len(b), MaxFrame)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	return b, nil
}

// frameReader walks a frame with bounds checks; any overrun sets err and
// further reads return zero values.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("p2p: "+format, args...)
	}
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("frame truncated at offset %d (want %d of %d bytes)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *frameReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *frameReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.BigEndian.Uint16(b)
	}
	return 0
}

func (r *frameReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *frameReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

// DecodeEnvelope decodes one wire frame produced by EncodeEnvelope. Every
// malformed input — truncated, oversized, version-skewed, unknown payload
// name, bad JSON, trailing garbage — returns an error; none panics.
func DecodeEnvelope(b []byte) (Envelope, error) {
	var env Envelope
	if len(b) > MaxFrame {
		return env, fmt.Errorf("p2p: frame %d bytes exceeds cap %d", len(b), MaxFrame)
	}
	r := &frameReader{b: b}
	if n := r.u32(); r.err == nil && int(n) != len(b)-4 {
		return env, fmt.Errorf("p2p: frame length %d does not match %d body bytes", n, len(b)-4)
	}
	if v := r.u8(); r.err == nil && v != codecVersion {
		return env, fmt.Errorf("p2p: frame version %d (want %d)", v, codecVersion)
	}
	flags := r.u8()
	if r.err == nil && flags&^(flagResp|flagPayload) != 0 {
		return env, fmt.Errorf("p2p: unknown frame flags %#x", flags)
	}
	env.Resp = flags&flagResp != 0
	env.MsgID = r.u64()
	env.From = NodeID(int64(r.u64()))
	env.To = NodeID(int64(r.u64()))
	env.Type = string(r.take(int(r.u16())))
	if flags&flagPayload != 0 {
		name := string(r.take(int(r.u16())))
		body := r.take(int(r.u32()))
		if r.err == nil {
			payloadRegistry.RLock()
			t, ok := payloadRegistry.byName[name]
			payloadRegistry.RUnlock()
			if !ok {
				return env, fmt.Errorf("p2p: unknown payload type %q", name)
			}
			ptr := t
			if ptr.Kind() == reflect.Pointer {
				ptr = ptr.Elem()
			}
			v := reflect.New(ptr)
			if err := json.Unmarshal(body, v.Interface()); err != nil {
				return env, fmt.Errorf("p2p: decode %s payload: %w", name, err)
			}
			if t.Kind() == reflect.Pointer {
				env.Payload = v.Interface()
			} else {
				env.Payload = v.Elem().Interface()
			}
		}
	}
	if r.err != nil {
		return Envelope{}, r.err
	}
	if r.off != len(b) {
		return Envelope{}, fmt.Errorf("p2p: %d trailing bytes after frame", len(b)-r.off)
	}
	return env, nil
}
