package p2p

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"nearestpeer/internal/dht"
	"nearestpeer/internal/sim"
)

// chordTestConfig keeps maintenance fast and lets the event queue drain.
func chordTestConfig(horizon time.Duration) ChordConfig {
	cfg := DefaultChordConfig()
	cfg.StabilizeEvery = 500 * time.Millisecond
	cfg.Horizon = horizon
	return cfg
}

// standUpRing joins n nodes staggered 10 ms apart and runs the kernel until
// the horizon drains maintenance.
func standUpRing(t *testing.T, n int, loss float64, horizon time.Duration) (*sim.Sim, *Runtime, *Chord) {
	t.Helper()
	kernel := sim.New()
	rt := New(kernel, lineMatrix(n), Config{LossProb: loss, RPCTimeout: time.Second}, 1)
	ch := NewChord(rt, chordTestConfig(horizon), 7)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		kernel.After(time.Duration(i)*10*time.Millisecond, func() { ch.Join(id) })
	}
	kernel.Run()
	return kernel, rt, ch
}

// ringOrder returns the member ids sorted by ring position starting at the
// smallest ring id.
func ringOrder(ch *Chord, ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return ch.RingIDOf(out[i]) < ch.RingIDOf(out[j]) })
	return out
}

// expectedOwner computes successor(key) over the given membership — the
// ground truth the protocol should converge to.
func expectedOwner(ch *Chord, ids []NodeID, key uint64) NodeID {
	best := NoNode
	var bestDist uint64
	for _, id := range ids {
		d := ch.RingIDOf(id) - key // wrapping: clockwise distance from key to id
		if best == NoNode || d < bestDist {
			best, bestDist = id, d
		}
	}
	return best
}

func TestChordRingConverges(t *testing.T) {
	const n = 32
	_, _, ch := standUpRing(t, n, 0, 30*time.Second)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	ring := ringOrder(ch, ids)
	for i, id := range ring {
		wantSucc := ring[(i+1)%n]
		wantPred := ring[(i+n-1)%n]
		succ, ok := ch.SuccessorOf(id)
		if !ok || succ != wantSucc {
			t.Errorf("node %d successor = %d (ok=%v), want %d", id, succ, ok, wantSucc)
		}
		pred, ok := ch.PredecessorOf(id)
		if !ok || pred != wantPred {
			t.Errorf("node %d predecessor = %d (ok=%v), want %d", id, pred, ok, wantPred)
		}
	}
}

func TestChordLookupResolvesOwner(t *testing.T) {
	const n = 24
	kernel, _, ch := standUpRing(t, n, 0, 20*time.Second)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	keys := []string{"ucl/router/17", "prefix/24/0a0b0c00", "alpha", "beta", "gamma", "delta"}
	for _, key := range keys {
		for _, from := range []NodeID{0, 11, 23} {
			var got LookupResult
			ch.Lookup(from, key, func(r LookupResult) { got = r })
			kernel.Run()
			want := expectedOwner(ch, ids, dht.HashKey(key))
			if !got.OK || got.Owner != want {
				t.Errorf("lookup %q from %d = %+v, want owner %d", key, from, got, want)
			}
			if got.Hops > ch.cfg.MaxHops {
				t.Errorf("lookup %q took %d hops", key, got.Hops)
			}
		}
	}
}

func TestChordPutGetRoundTrip(t *testing.T) {
	const n = 16
	kernel, _, ch := standUpRing(t, n, 0, 20*time.Second)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	val := []byte("entry-1")
	var put OpResult
	ch.Put(3, "shared/key", val, func(r OpResult) { put = r })
	kernel.Run()
	if !put.OK {
		t.Fatalf("put failed: %+v", put)
	}
	owner := expectedOwner(ch, ids, dht.HashKey("shared/key"))
	if got := ch.StoredAt(owner, "shared/key"); got != 1 {
		t.Fatalf("owner %d stores %d values, want 1", owner, got)
	}
	// Replicas: Replicas-1 successors hold a copy.
	replicated := 0
	for _, id := range ids {
		if id != owner && ch.StoredAt(id, "shared/key") > 0 {
			replicated++
		}
	}
	if replicated != ch.cfg.Replicas-1 {
		t.Fatalf("%d replicas besides the owner, want %d", replicated, ch.cfg.Replicas-1)
	}
	var get OpResult
	ch.Get(12, "shared/key", func(r OpResult) { get = r })
	kernel.Run()
	if !get.OK || len(get.Vals) != 1 || !bytes.Equal(get.Vals[0], val) {
		t.Fatalf("get = %+v, want the stored value back", get)
	}
}

func TestChordLookupUnderLoss(t *testing.T) {
	const n = 24
	kernel, rt, ch := standUpRing(t, n, 0.05, 30*time.Second)
	okCount, fails := 0, 0
	const lookups = 60
	for i := 0; i < lookups; i++ {
		key := "lossy/" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		ch.Lookup(NodeID(i%n), key, func(r LookupResult) {
			if r.OK {
				okCount++
			} else {
				fails++
			}
		})
		kernel.Run()
	}
	if okCount < lookups*9/10 {
		t.Fatalf("only %d/%d lookups resolved under 5%% loss", okCount, lookups)
	}
	if rt.Metrics.Timeouts == 0 {
		t.Fatal("no RPC timeouts under 5% loss — the loss model is not in the path")
	}
}

func TestChordGetFallsBackToReplicaAfterOwnerCrash(t *testing.T) {
	const n = 16
	kernel, rt, ch := standUpRing(t, n, 0, 20*time.Second)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	val := []byte("survives")
	ch.Put(0, "fragile/key", val, func(OpResult) {})
	kernel.Run()
	owner := expectedOwner(ch, ids, dht.HashKey("fragile/key"))
	rt.Node(owner).Stop() // crash, no goodbye: the ring has not noticed
	var from NodeID = 1
	if from == owner {
		from = 2
	}
	var get OpResult
	ch.Get(from, "fragile/key", func(r OpResult) { get = r })
	kernel.Run()
	if !get.OK || len(get.Vals) == 0 || !bytes.Equal(get.Vals[0], val) {
		t.Fatalf("get after owner crash = %+v, want the replica's copy", get)
	}
	if get.Retries == 0 {
		t.Fatal("get resolved without retrying — the dead owner answered?")
	}
}

func TestChordSurvivesChurn(t *testing.T) {
	const n = 40
	kernel := sim.New()
	rt := New(kernel, lineMatrix(n), Config{RPCTimeout: time.Second}, 1)
	cfg := chordTestConfig(4 * time.Minute)
	ch := NewChord(rt, cfg, 7)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
		id := ids[i]
		kernel.After(time.Duration(i)*10*time.Millisecond, func() { ch.Join(id) })
	}
	ccfg := ChurnConfig{
		MeanSession:  60 * time.Second,
		MeanOffline:  15 * time.Second,
		GracefulProb: 0.5,
		Horizon:      3 * time.Minute,
	}
	churn := NewChurn(rt, ccfg, 11)
	churn.OnLeave = func(id NodeID, graceful bool) { ch.Leave(id, graceful) }
	churn.OnJoin = func(id NodeID) { ch.Join(id) }
	churn.Drive(ids[1:]) // node 0 stays up to query from
	okCount, issued := 0, 0
	var step func()
	step = func() {
		if issued >= 25 {
			return
		}
		issued++
		key := "churny/" + string(rune('a'+issued))
		ch.Lookup(0, key, func(r LookupResult) {
			if r.OK && ch.states[r.Owner] != nil {
				okCount++
			}
			kernel.After(2*time.Second, step)
		})
	}
	kernel.At(time.Minute, step) // start querying mid-churn
	kernel.Run()
	if churn.Leaves == 0 || churn.Joins == 0 {
		t.Fatalf("no churn happened: %+v", churn)
	}
	if issued != 25 {
		t.Fatalf("only %d lookups issued", issued)
	}
	if okCount < issued*3/4 {
		t.Fatalf("only %d/%d lookups resolved to live members under churn", okCount, issued)
	}
}

func TestChordDeterministicReplay(t *testing.T) {
	run := func() (Metrics, int) {
		kernel, rt, ch := standUpRing(t, 16, 0.1, 15*time.Second)
		_ = kernel
		return rt.Metrics, ch.NumMembers()
	}
	m1, n1 := run()
	m2, n2 := run()
	if m1 != m2 || n1 != n2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", m1, n1, m2, n2)
	}
}
