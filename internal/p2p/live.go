// Shared machinery of the live transports (Loopback, UDP): a single
// serializing event loop standing in for the simulation kernel's
// single-threaded event dispatch, wall-clock timers posting into it, and
// the Transport bookkeeping (nodes, groups, metrics, typed handlers) that
// does not depend on how envelopes travel.
//
// The contract the loop preserves is the one every protocol in this
// package was written against: all protocol callbacks — handlers, reply
// and timeout closures, timers — run one at a time, in one goroutine, so
// protocol state needs no locks. Sockets and timers run on their own
// goroutines but only ever post closures into the loop; the loop is the
// only place Node maps and Metrics are touched once traffic flows.

package p2p

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nearestpeer/internal/faults"
	"nearestpeer/internal/obs"
	"nearestpeer/internal/sim"
)

// liveLoop is the serializing event loop: an unbounded FIFO of closures
// drained by one goroutine. Posting never blocks (the queue grows), so
// callbacks running on the loop can post freely without deadlock.
type liveLoop struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	done   chan struct{}
}

func newLiveLoop() *liveLoop {
	l := &liveLoop{done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// post enqueues fn for the loop goroutine. It reports false (dropping fn)
// after close — a timer or socket read landing during shutdown is simply
// discarded, as a datagram to a dead process would be.
func (l *liveLoop) post(fn func()) bool {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	l.queue = append(l.queue, fn)
	l.mu.Unlock()
	l.cond.Signal()
	return true
}

func (l *liveLoop) run() {
	l.mu.Lock()
	for {
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.queue) == 0 { // closed and drained
			l.mu.Unlock()
			close(l.done)
			return
		}
		fn := l.queue[0]
		l.queue[0] = nil
		l.queue = l.queue[1:]
		l.mu.Unlock()
		fn()
		l.mu.Lock()
	}
}

// close drains the already-queued closures, then stops the goroutine.
func (l *liveLoop) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.mu.Unlock()
	l.cond.Signal()
	<-l.done
}

// liveBase is the transport state shared by Loopback and UDP. It
// implements every Transport method except send and Multicast, which
// depend on the medium; the embedding type supplies those. self points
// back at the embedding transport so nodes created here dispatch sends to
// the right medium.
type liveBase struct {
	self  Transport
	loop  *liveLoop
	start time.Time
	cfg   Config
	pop   int

	// mu guards the registries (nodes, groups, typed handlers) so setup
	// calls may run off-loop; once traffic flows, node internals are
	// loop-confined.
	mu       sync.RWMutex
	nodes    []*Node
	groups   map[string]map[NodeID]struct{}
	handlers []func(arg uint64)

	msgID atomic.Uint64
	live  atomic.Int64

	// metrics is loop-confined: every increment happens on the loop, and
	// readers use Do (or read after Close) to avoid racing it.
	metrics Metrics

	obsRec *obs.Recorder

	// flt is the optional fault plan (NewFaultTransport), nil by default.
	// Decisions are priced against wall-clock time since the transport
	// started — the live zero matching the simulator's virtual zero — so
	// the same plan seed produces the same per-window fault sequence on
	// both. Loop-confined once traffic flows (send runs on the loop).
	flt *faults.Plan
}

func (b *liveBase) init(self Transport, pop int, cfg Config) {
	if pop <= 0 {
		panic(fmt.Sprintf("p2p: live transport population %d", pop))
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = DefaultConfig().RPCTimeout
	}
	b.self = self
	b.loop = newLiveLoop()
	b.start = time.Now()
	b.cfg = cfg
	b.pop = pop
	b.nodes = make([]*Node, pop)
	b.groups = make(map[string]map[NodeID]struct{})
}

// Do runs fn on the event loop and waits for it to finish: the way client
// code (tests, the npnode daemon) invokes protocol entry points, which
// must run serialized with handler callbacks. It must not be called from
// code already running on the loop — post there instead (callbacks never
// need Do: they are already serialized).
func (b *liveBase) Do(fn func()) {
	done := make(chan struct{})
	if !b.loop.post(func() { fn(); close(done) }) {
		return // transport closed; nothing to run against
	}
	<-done
}

// AddNode registers (or returns) the node for an ID, bringing it up
// alive, exactly as Runtime.AddNode does on the simulator.
func (b *liveBase) AddNode(id NodeID) *Node {
	if int(id) < 0 || int(id) >= b.pop {
		panic(fmt.Sprintf("p2p: node %d outside live population %d", id, b.pop))
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := b.nodes[id]; n != nil {
		return n
	}
	n := &Node{
		ID:       id,
		rt:       b.self,
		alive:    true,
		handlers: make(map[string]Handler),
		inflight: make(map[uint64]call),
	}
	n.Handle(MsgPing, func(n *Node, env Envelope) {
		n.Reply(env, MsgPong, nil)
	})
	b.nodes[id] = n
	b.live.Add(1)
	return n
}

// Node returns the registered node for id, or nil.
func (b *liveBase) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= b.pop {
		return nil
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.nodes[id]
}

// Alive reports whether id is registered and up.
func (b *liveBase) Alive(id NodeID) bool {
	n := b.Node(id)
	return n != nil && n.alive
}

// Population returns the ID-space bound the transport was created with.
func (b *liveBase) Population() int { return b.pop }

// LiveNodes returns the number of registered nodes currently up.
func (b *liveBase) LiveNodes() int { return int(b.live.Load()) }

// Now returns wall-clock time since the transport started. All nodes of a
// live transport share one clock; the id parameter exists for the sim's
// per-shard clocks.
func (b *liveBase) Now(NodeID) time.Duration { return time.Since(b.start) }

// After schedules fn on the event loop after d of wall-clock time.
func (b *liveBase) After(_ NodeID, d time.Duration, fn func()) {
	time.AfterFunc(d, func() { b.loop.post(fn) })
}

// RegisterHandler registers a typed-event handler, the live counterpart of
// sim.Sim.RegisterHandler. Handlers run on the event loop.
func (b *liveBase) RegisterHandler(fn func(arg uint64)) sim.HandlerID {
	if fn == nil {
		panic("p2p: RegisterHandler(nil)")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.handlers = append(b.handlers, fn)
	return sim.HandlerID(len(b.handlers) - 1)
}

// AfterHandler schedules a registered typed handler after d of wall-clock
// time, on the event loop.
func (b *liveBase) AfterHandler(d time.Duration, h sim.HandlerID, arg uint64) {
	b.mu.RLock()
	fn := b.handlers[h]
	b.mu.RUnlock()
	time.AfterFunc(d, func() { b.loop.post(func() { fn(arg) }) })
}

// Sharded reports false: live transports run one event loop.
func (b *liveBase) Sharded() bool { return false }

// Shards returns 1 on a live transport.
func (b *liveBase) Shards() int { return 1 }

// ShardOf returns 0 on a live transport.
func (b *liveBase) ShardOf(NodeID) int { return 0 }

// Handoff on a live transport is After: there is no cross-shard fence to
// respect.
func (b *liveBase) Handoff(_ int, to NodeID, d time.Duration, fn func()) {
	b.After(to, d, fn)
}

// HandoffDelay is 0 on a live transport (no lookahead window).
func (b *liveBase) HandoffDelay() time.Duration { return 0 }

// SerialMetrics returns the transport-wide metrics. Loop-confined: read
// it via Do, or after Close.
func (b *liveBase) SerialMetrics() *Metrics { return &b.metrics }

// ShardMetrics returns the transport-wide metrics (one shard's worth: the
// whole transport).
func (b *liveBase) ShardMetrics(int) *Metrics { return &b.metrics }

// AttachRecorder attaches a lookup flight recorder, as Runtime.
// AttachRecorder does on the simulator. Attach before traffic flows.
func (b *liveBase) AttachRecorder(rec *obs.Recorder) { b.obsRec = rec }

// FlightRecorder returns the attached flight recorder, or nil.
func (b *liveBase) FlightRecorder() *obs.Recorder { return b.obsRec }

// JoinGroup subscribes a node to a named multicast group.
func (b *liveBase) JoinGroup(gname string, id NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.groups[gname]
	if g == nil {
		g = make(map[NodeID]struct{})
		b.groups[gname] = g
	}
	g[id] = struct{}{}
}

// LeaveGroup removes a node from a multicast group.
func (b *liveBase) LeaveGroup(gname string, id NodeID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.groups[gname], id)
}

// groupMembers snapshots a group's membership, sorted for determinism.
func (b *liveBase) groupMembers(gname string) []NodeID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	g := b.groups[gname]
	out := make([]NodeID, 0, len(g))
	for id := range g {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// allocMsgIDFor hands out transport-unique correlation IDs.
func (b *liveBase) allocMsgIDFor(NodeID) uint64 { return b.msgID.Add(1) }

// timeoutAt schedules a request expiry for (node, msgID) after d.
func (b *liveBase) timeoutAt(d time.Duration, node NodeID, msgID uint64) {
	b.metrics.ExpiriesScheduled++ // on loop: Request runs there
	time.AfterFunc(d, func() {
		b.loop.post(func() {
			b.metrics.ExpiriesFired++
			if n := b.Node(node); n != nil {
				n.expire(msgID)
			}
		})
	})
}

// defaultRPCTimeout is the expiry used when a caller passes none.
func (b *liveBase) defaultRPCTimeout() time.Duration { return b.cfg.RPCTimeout }

// metricsAt returns the transport-wide metrics (live transports keep one
// account).
func (b *liveBase) metricsAt(NodeID) *Metrics { return &b.metrics }

// noteLive adjusts the live-node count (Node.Stop/Restart bookkeeping).
func (b *liveBase) noteLive(delta int) { b.live.Add(int64(delta)) }

// installFaults attaches a fault plan (see NewFaultTransport): the
// medium's send hook reads b.flt, and the plan's crash/restart schedule
// is armed as wall-clock timers measured from the transport's start.
// Install before traffic flows.
func (b *liveBase) installFaults(plan *faults.Plan) {
	if plan == nil {
		return
	}
	if err := plan.Validate(); err != nil {
		panic(fmt.Sprintf("p2p: fault plan: %v", err))
	}
	b.flt = plan
	now := time.Since(b.start)
	for _, ev := range plan.NodeEvents(b.pop) {
		ev := ev
		d := ev.At - now
		if d < 0 {
			d = 0
		}
		b.After(NodeID(ev.Node), d, func() {
			n := b.Node(NodeID(ev.Node))
			if n == nil {
				return
			}
			if ev.Up {
				n.Restart()
			} else {
				n.Stop()
			}
		})
	}
}

// faultNow is the plan clock of a live transport: wall time since start.
func (b *liveBase) faultNow() time.Duration { return time.Since(b.start) }

// oneWayDelay splits an RTT into the two legs the simulator uses: the
// request leg gets rtt/2 rounded down, the response leg the remainder, so
// a ping's round trip equals the matrix entry at nanosecond resolution.
func oneWayDelay(rttMs float64, resp bool) time.Duration {
	full := durOf(rttMs)
	half := full / 2
	if resp {
		return full - half
	}
	return half
}
