package p2p

import (
	"math"
	"strings"
	"testing"
	"time"

	"nearestpeer/internal/latency"
	"nearestpeer/internal/sim"
)

// TestConfigValidate: the validator rejects impossible knobs and accepts
// everything the constructors have historically defaulted.
func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},              // all-zero: loss off, timeout defaults
		DefaultConfig(), // the documented baseline
		{LossProb: 1, RPCTimeout: time.Nanosecond}, // extreme but legal
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
	bad := []struct {
		cfg  Config
		want string
	}{
		{Config{LossProb: -0.1}, "out of [0,1]"},
		{Config{LossProb: 1.1}, "out of [0,1]"},
		{Config{LossProb: math.NaN()}, "out of [0,1]"},
		{Config{RPCTimeout: -time.Second}, "negative RPC timeout"},
	}
	for _, tc := range bad {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", tc.cfg, err, tc.want)
		}
	}
}

// TestConfigConstructorsReject: every transport constructor — serial,
// sharded, and live — refuses an invalid Config at construction time. The
// live path used to accept any LossProb silently (the loss model is
// sim-only, so a typo'd knob just vanished); now it fails loudly too.
func TestConfigConstructorsReject(t *testing.T) {
	bad := Config{LossProb: 1.5}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted LossProb=1.5", name)
			}
		}()
		f()
	}
	m := faultTestMatrix(2)
	mustPanic("New", func() { New(sim.New(), m, bad, 1) })
	mustPanic("NewSharded", func() {
		shk := sim.NewSharded(2, 5*time.Millisecond)
		NewSharded(shk, []latency.Matrix{m, m}, bad, 1, []int32{0, 1})
	})
	mustPanic("NewLoopback", func() { NewLoopback(m, bad, 1) })

	mustPanic("New negative timeout", func() {
		New(sim.New(), m, Config{RPCTimeout: -time.Second}, 1)
	})

	// Zero timeout still means "default", not an error.
	r := New(sim.New(), m, Config{}, 1)
	if r.cfg.RPCTimeout != DefaultConfig().RPCTimeout {
		t.Errorf("zero RPCTimeout defaulted to %v, want %v", r.cfg.RPCTimeout, DefaultConfig().RPCTimeout)
	}
}
