package p2p

// Integration tests for the observability layer on the runtime: the
// zero-alloc contract with the full layer attached (registry + flight
// recorder + health sampler), and the flight-recorder hooks on the chord
// lookup driver.

import (
	"testing"
	"time"

	"nearestpeer/internal/obs"
)

// TestObsZeroAlloc is ISSUE 6's enforcement: with the metrics registry, the
// flight recorder AND the health sampler all enabled, the steady-state
// message path (send → deliver, request → expiry, multicast round, plus a
// recorder write and a histogram observe per op) must still allocate
// nothing. A failing test, not a bench note — the claim cannot regress
// silently.
func TestObsZeroAlloc(t *testing.T) {
	kernel, rt := newTestRuntime(t, 128, 0)
	reg := obs.NewRegistry(128)
	rt.EnableObs(reg)
	rec := obs.NewRecorder(64)
	rt.AttachRecorder(rec)

	a := rt.AddNode(0)
	b := rt.AddNode(1)
	b.Handle("noop", func(*Node, Envelope) {})
	for i := 2; i < 128; i++ {
		rt.AddNode(NodeID(i))
		rt.JoinGroup("g", NodeID(i))
		rt.Node(NodeID(i)).Handle("mc", func(*Node, Envelope) {})
	}
	// Sampler every 5ms with a far horizon; the test drives the kernel
	// with RunUntil, so the self-rescheduling tick cannot spin a drain
	// loop forever.
	rt.StartHealthSampler(5*time.Millisecond, time.Hour, 32)

	// Warm everything: slab, kernel queue, registry type table, multicast
	// sender index, recorder ring (past one full wrap), sampler ring.
	for i := 0; i < 64; i++ {
		a.Send(1, "noop", nil)
		rec.Record(obs.Hop{Lookup: uint64(i), Scheme: "chord", Type: MsgChordFind, From: 0, To: 1, RTTms: 10})
	}
	rt.Multicast(0, "g", "mc", nil, 300)
	a.Ping(1, 100*time.Millisecond, false, func(float64, bool) {})
	kernel.RunUntil(kernel.Now() + time.Second)

	if avg := testing.AllocsPerRun(500, func() {
		a.Send(1, "noop", nil)
		rt.Multicast(0, "g", "mc", nil, 300)
		rec.Record(obs.Hop{Lookup: 1, Scheme: "chord", Type: MsgChordFind, From: 0, To: 1, RTTms: 10})
		reg.ObserveLookupMs(42)
		reg.ObserveHopMs(10)
		kernel.RunUntil(kernel.Now() + 20*time.Millisecond)
	}); avg != 0 {
		t.Fatalf("obs-enabled steady state allocates %v per op, want 0", avg)
	}
}

// TestChordLookupFlightRecorder drives a small chord ring with a recorder
// attached and checks the trace: every lookup leaves per-hop records with
// measured RTTs, grouped by lookup ID.
func TestChordLookupFlightRecorder(t *testing.T) {
	kernel, rt := newTestRuntime(t, 32, 0)
	rec := obs.NewRecorder(4096)
	rt.AttachRecorder(rec)
	chord := NewChord(rt, DefaultChordConfig(), 5)
	for i := 0; i < 24; i++ {
		chord.Join(NodeID(i))
		kernel.RunUntil(kernel.Now() + 50*time.Millisecond)
	}
	kernel.RunUntil(kernel.Now() + 30*time.Second)

	lookups := 0
	for q := 0; q < 8; q++ {
		chord.Lookup(NodeID(q), "key", func(res LookupResult) {
			lookups++
			if !res.OK {
				t.Errorf("lookup %d failed", q)
			}
		})
		kernel.RunUntil(kernel.Now() + 5*time.Second)
	}
	if lookups != 8 {
		t.Fatalf("%d of 8 lookups completed", lookups)
	}
	hops := rec.Snapshot()
	if len(hops) == 0 {
		t.Fatal("no hops recorded")
	}
	// Background finger-repair lookups interleave with the queries, so
	// trace order is not grouped by lookup — but IDs must be present and
	// distinct per lookup (at least the 8 query lookups).
	ids := map[uint64]bool{}
	for _, h := range hops {
		if h.Scheme != "chord" || h.Type != MsgChordFind {
			t.Fatalf("unexpected hop %+v", h)
		}
		if h.Outcome == obs.HopOK && h.RTTms <= 0 {
			t.Fatalf("ok hop with no RTT: %+v", h)
		}
		if h.Lookup == 0 {
			t.Fatalf("hop without lookup ID: %+v", h)
		}
		ids[h.Lookup] = true
	}
	if len(ids) < 8 {
		t.Fatalf("trace holds %d distinct lookups, want >= 8", len(ids))
	}
	// Lossless, stable ring: every hop answers.
	for _, h := range hops {
		if h.Outcome != obs.HopOK {
			t.Fatalf("unexpected non-OK hop on a lossless stable ring: %+v", h)
		}
	}
}

// TestMeridianFlightRecorder checks that a Meridian walk leaves trace
// records for the target measurement and the query handoffs.
func TestMeridianFlightRecorder(t *testing.T) {
	kernel, rt := newTestRuntime(t, 48, 0)
	rec := obs.NewRecorder(4096)
	rt.AttachRecorder(rec)
	mer := NewMeridian(rt, DefaultMeridianConfig(), 7)
	for i := 0; i < 40; i++ {
		mer.Join(NodeID(i))
	}
	kernel.Run()
	completed := false
	mer.FindNearest(45, 45, func(res QueryResult) { completed = res.Completed })
	kernel.Run()
	if !completed {
		t.Fatal("query did not complete")
	}
	hops := rec.Snapshot()
	if len(hops) == 0 {
		t.Fatal("no hops recorded")
	}
	sawPing := false
	for _, h := range hops {
		if h.Scheme != "meridian" {
			t.Fatalf("unexpected scheme in %+v", h)
		}
		if h.Type == MsgPing {
			sawPing = true
		}
	}
	if !sawPing {
		t.Fatal("no target-measurement record in the trace")
	}
}
