package trace

import (
	"math"
	"math/rand"
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func TestHandBuiltGraph(t *testing.T) {
	// peer100 -- r0 -- r1 -- peer200, plus a shortcut r0 -- r2 -- r1 that
	// is longer. One-way weights.
	g := NewGraph(3)
	g.AddHostEdge(0, 100, 1)
	g.AddRouterEdge(0, 1, 2)
	g.AddHostEdge(1, 200, 1)
	g.AddRouterEdge(0, 2, 3)
	g.AddRouterEdge(2, 1, 3)

	peers := g.ClosestPeers(100, 100)
	if len(peers) != 1 {
		t.Fatalf("got %d peers", len(peers))
	}
	pd := peers[0]
	if pd.Peer != 200 {
		t.Fatalf("peer = %d", pd.Peer)
	}
	if want := 2 * (1.0 + 2 + 1); pd.RTTms != want {
		t.Fatalf("RTT = %v, want %v", pd.RTTms, want)
	}
	if pd.RouterHops != 2 {
		t.Fatalf("hops = %d, want 2", pd.RouterHops)
	}
}

func TestBoundedSearch(t *testing.T) {
	g := NewGraph(2)
	g.AddHostEdge(0, 100, 1)
	g.AddRouterEdge(0, 1, 50)
	g.AddHostEdge(1, 200, 1)
	if peers := g.ClosestPeers(100, 10); len(peers) != 0 {
		t.Fatalf("bound ignored: %v", peers)
	}
	if peers := g.ClosestPeers(100, 1000); len(peers) != 1 {
		t.Fatalf("bound too tight: %v", peers)
	}
}

func TestEdgeDedupKeepsMinimum(t *testing.T) {
	g := NewGraph(2)
	g.AddRouterEdge(0, 1, 5)
	g.AddRouterEdge(0, 1, 3)
	g.AddRouterEdge(1, 0, 7)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	g.AddHostEdge(0, 100, 0.5)
	g.AddHostEdge(1, 200, 0.5)
	want := 2 * (0.5 + 3 + 0.5)
	if got := g.ShortestRTT(100, 200, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RTT = %v, want %v", got, want)
	}
}

func TestWeightFloor(t *testing.T) {
	g := NewGraph(2)
	g.AddRouterEdge(0, 1, -5) // negative RTT subtraction artefact
	g.AddHostEdge(0, 100, 0.5)
	g.AddHostEdge(1, 200, 0.5)
	got := g.ShortestRTT(100, 200, 100)
	if got < 2*(0.5+0.01+0.5)-1e-9 {
		t.Fatalf("negative weight not floored: %v", got)
	}
}

// TestDijkstraAgainstFloydWarshall cross-checks the bounded Dijkstra against
// an exhaustive all-pairs computation on random graphs.
func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		const nr = 12 // routers
		const nh = 6  // hosts
		g := NewGraph(nr)
		n := nr + nh
		const inf = math.MaxFloat64 / 4
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
			for j := range dist[i] {
				if i != j {
					dist[i][j] = inf
				}
			}
		}
		addRef := func(a, b int, w float64) {
			if w < dist[a][b] {
				dist[a][b] = w
				dist[b][a] = w
			}
		}
		// Random router mesh.
		for e := 0; e < 30; e++ {
			a, b := r.Intn(nr), r.Intn(nr)
			if a == b {
				continue
			}
			w := 0.1 + r.Float64()*5
			g.AddRouterEdge(netmodel.RouterID(a), netmodel.RouterID(b), w)
			addRef(a, b, w)
		}
		// Hosts hang off random routers.
		for h := 0; h < nh; h++ {
			a := r.Intn(nr)
			w := 0.05 + r.Float64()
			g.AddHostEdge(netmodel.RouterID(a), netmodel.HostID(1000+h), w)
			addRef(a, nr+h, w)
		}
		// Floyd-Warshall.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if dist[i][k]+dist[k][j] < dist[i][j] {
						dist[i][j] = dist[i][k] + dist[k][j]
					}
				}
			}
		}
		for h := 0; h < nh; h++ {
			got := make(map[netmodel.HostID]float64)
			for _, pd := range g.ClosestPeers(netmodel.HostID(1000+h), 1e9) {
				got[pd.Peer] = pd.RTTms
			}
			for h2 := 0; h2 < nh; h2++ {
				if h2 == h {
					continue
				}
				want := dist[nr+h][nr+h2]
				gotRTT, ok := got[netmodel.HostID(1000+h2)]
				if want >= inf {
					if ok {
						t.Fatalf("trial %d: found unreachable host", trial)
					}
					continue
				}
				if !ok {
					t.Fatalf("trial %d: missed reachable host (want %v)", trial, 2*want)
				}
				if math.Abs(gotRTT-2*want) > 1e-6 {
					t.Fatalf("trial %d: RTT %v, want %v", trial, gotRTT, 2*want)
				}
			}
		}
	}
}

func TestBuildFromTopology(t *testing.T) {
	top := netmodel.Generate(netmodel.DefaultConfig(), 1)
	tools := measure.NewTools(top, measure.DefaultConfig(), 5)
	vs, err := measure.SelectVantages(top, 3)
	if err != nil {
		t.Fatal(err)
	}
	vhosts := []netmodel.HostID{vs[0].Host, vs[1].Host, vs[2].Host}

	// Use responsive peers only so they join the graph.
	var peers []netmodel.HostID
	for i := range top.Hosts {
		h := &top.Hosts[i]
		if (h.RespondsTCP || h.RespondsPing) && h.DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
		if len(peers) == 400 {
			break
		}
	}
	g := Build(tools, vhosts, peers)
	if g.NumHosts() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph from topology build")
	}

	// Shortest-path RTT between same-EN peers should be far below the
	// RTT between random cross-PoP peers.
	var sameEN, cross float64
	var nSame, nCross int
	for i, a := range peers {
		if !g.HasHost(a) {
			continue
		}
		for _, b := range peers[i+1:] {
			if !g.HasHost(b) {
				continue
			}
			rtt := g.ShortestRTT(a, b, 400)
			if math.IsInf(rtt, 1) {
				continue
			}
			if top.SameEN(a, b) {
				sameEN += rtt
				nSame++
			} else if !top.SamePoPCluster(a, b) && nCross < 50 {
				cross += rtt
				nCross++
			}
		}
		if nSame > 10 && nCross >= 50 {
			break
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skipf("insufficient pairs (same=%d cross=%d)", nSame, nCross)
	}
	if sameEN/float64(nSame) >= cross/float64(nCross) {
		t.Fatalf("graph does not reflect locality: sameEN %v >= cross %v",
			sameEN/float64(nSame), cross/float64(nCross))
	}
}
