package trace

import (
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func benchGraph(b *testing.B) (*Graph, []netmodel.HostID) {
	b.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 1)
	tools := measure.NewTools(top, measure.DefaultConfig(), 5)
	vs, err := measure.SelectVantages(top, 3)
	if err != nil {
		b.Fatal(err)
	}
	var peers []netmodel.HostID
	for i := range top.Hosts {
		h := &top.Hosts[i]
		if (h.RespondsTCP || h.RespondsPing) && h.DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
		if len(peers) == 500 {
			break
		}
	}
	return Build(tools, []netmodel.HostID{vs[0].Host, vs[1].Host, vs[2].Host}, peers), peers
}

func BenchmarkBoundedDijkstra(b *testing.B) {
	g, peers := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ClosestPeers(peers[i%len(peers)], 10)
	}
}

func BenchmarkAllPairsWithin(b *testing.B) {
	g, _ := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.AllPairsWithin(10)
	}
}
