// Package trace builds the traceroute-derived adjacency graph of Section 5's
// evaluation: the Azureus peers plus every router seen on traceroutes from
// the vantage points, with inter-node latencies estimated from consecutive
// hop RTT differences. Shortest paths over this graph (Dijkstra) provide the
// peer-to-peer latency and router-hop estimates behind Figures 10 and 11.
package trace

import (
	"container/heap"
	"math"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// nodeID indexes the graph: routers first, then hosts.
type nodeID int32

// Graph is an undirected weighted graph over routers and peer hosts.
// Weights are one-way latencies in milliseconds.
type Graph struct {
	nRouters  int
	hosts     []netmodel.HostID
	hostIndex map[netmodel.HostID]nodeID
	adj       map[nodeID][]edge
	// edgeSeen dedupes edges, keeping the smallest weight observed.
	edgeSeen map[[2]nodeID]float64
}

type edge struct {
	to nodeID
	w  float64
}

// NewGraph creates an empty graph over a topology's router space.
func NewGraph(nRouters int) *Graph {
	return &Graph{
		nRouters:  nRouters,
		hostIndex: make(map[netmodel.HostID]nodeID),
		adj:       make(map[nodeID][]edge),
		edgeSeen:  make(map[[2]nodeID]float64),
	}
}

func (g *Graph) routerNode(r netmodel.RouterID) nodeID { return nodeID(r) }

func (g *Graph) hostNode(h netmodel.HostID) nodeID {
	if id, ok := g.hostIndex[h]; ok {
		return id
	}
	id := nodeID(g.nRouters + len(g.hosts))
	g.hosts = append(g.hosts, h)
	g.hostIndex[h] = id
	return id
}

// HasHost reports whether the host ever appeared in the graph.
func (g *Graph) HasHost(h netmodel.HostID) bool {
	_, ok := g.hostIndex[h]
	return ok
}

// NumHosts returns the number of host nodes.
func (g *Graph) NumHosts() int { return len(g.hosts) }

// NumEdges returns the number of distinct undirected edges.
func (g *Graph) NumEdges() int { return len(g.edgeSeen) }

// addEdge inserts an undirected edge, keeping the minimum weight seen.
func (g *Graph) addEdge(a, b nodeID, w float64) {
	if a == b {
		return
	}
	if w < 0.01 {
		w = 0.01 // RTT subtraction noise floor
	}
	key := [2]nodeID{a, b}
	if b < a {
		key = [2]nodeID{b, a}
	}
	if old, ok := g.edgeSeen[key]; ok {
		if w >= old {
			return
		}
		// Rewrite both adjacency entries with the smaller weight.
		for i := range g.adj[a] {
			if g.adj[a][i].to == b {
				g.adj[a][i].w = w
			}
		}
		for i := range g.adj[b] {
			if g.adj[b][i].to == a {
				g.adj[b][i].w = w
			}
		}
		g.edgeSeen[key] = w
		return
	}
	g.edgeSeen[key] = w
	g.adj[a] = append(g.adj[a], edge{to: b, w: w})
	g.adj[b] = append(g.adj[b], edge{to: a, w: w})
}

// AddRouterEdge exposes edge insertion between routers (used by tests).
func (g *Graph) AddRouterEdge(a, b netmodel.RouterID, oneWayMs float64) {
	g.addEdge(g.routerNode(a), g.routerNode(b), oneWayMs)
}

// AddHostEdge exposes edge insertion between a router and a host.
func (g *Graph) AddHostEdge(r netmodel.RouterID, h netmodel.HostID, oneWayMs float64) {
	g.addEdge(g.routerNode(r), g.hostNode(h), oneWayMs)
}

// Build runs traceroutes from every vantage point to every peer and
// assembles the adjacency graph, exactly as Section 5 does: consecutive
// responding routers contribute an edge weighted by half their RTT
// difference; the peer itself is linked to its last responding router when
// the peer produced a valid latency (TCP ping or traceroute).
func Build(tools *measure.Tools, vantages []netmodel.HostID, peers []netmodel.HostID) *Graph {
	g := NewGraph(len(tools.Top.Routers))
	for _, v := range vantages {
		for _, p := range peers {
			trace := tools.Traceroute(v, p)
			prev := netmodel.NoRouter
			prevMs := 0.0
			for _, hop := range trace {
				if hop.Router == netmodel.NoRouter {
					continue // '*' hop or the destination entry
				}
				ms := netmodel.Ms(hop.RTT)
				if prev != netmodel.NoRouter {
					g.addEdge(g.routerNode(prev), g.routerNode(hop.Router), (ms-prevMs)/2)
				}
				prev, prevMs = hop.Router, ms
			}
			if prev == netmodel.NoRouter {
				continue
			}
			if d, err := tools.LatencyTo(v, p); err == nil {
				g.addEdge(g.routerNode(prev), g.hostNode(p), (netmodel.Ms(d)-prevMs)/2)
			}
		}
	}
	return g
}

// PeerDist is a peer reachable from a source, with the shortest-path RTT
// estimate and the number of routers on that path.
type PeerDist struct {
	Peer       netmodel.HostID
	RTTms      float64
	RouterHops int
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node nodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ClosestPeers runs a bounded Dijkstra from the given peer and returns all
// other peers within maxRTTms (shortest-path RTT), with router hop counts.
func (g *Graph) ClosestPeers(from netmodel.HostID, maxRTTms float64) []PeerDist {
	src, ok := g.hostIndex[from]
	if !ok {
		return nil
	}
	maxOneWay := maxRTTms / 2

	dist := make(map[nodeID]float64)
	hops := make(map[nodeID]int)
	done := make(map[nodeID]bool)
	q := &pq{{node: src, dist: 0}}
	dist[src] = 0

	var out []PeerDist
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] || it.dist > maxOneWay {
			continue
		}
		done[it.node] = true
		if int(it.node) >= g.nRouters && it.node != src {
			out = append(out, PeerDist{
				Peer:       g.hosts[int(it.node)-g.nRouters],
				RTTms:      2 * it.dist,
				RouterHops: hops[it.node],
			})
			// Hosts are leaves in the traceroute graph, but continue in
			// case a host accumulated multiple router links.
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.w
			if nd > maxOneWay {
				continue
			}
			if old, seen := dist[e.to]; !seen || nd < old-1e-12 {
				dist[e.to] = nd
				h := hops[it.node]
				if int(e.to) < g.nRouters {
					h++ // the next node is a router on the path
				}
				hops[e.to] = h
				heap.Push(q, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return out
}

// AllPairsWithin computes, for every peer in the graph, its neighbours
// within maxRTTms. Pairs are reported once (a < b by host ID).
func (g *Graph) AllPairsWithin(maxRTTms float64) map[[2]netmodel.HostID]PeerDist {
	out := make(map[[2]netmodel.HostID]PeerDist)
	for _, h := range g.hosts {
		for _, pd := range g.ClosestPeers(h, maxRTTms) {
			a, b := h, pd.Peer
			if b < a {
				a, b = b, a
			}
			key := [2]netmodel.HostID{a, b}
			if old, ok := out[key]; !ok || pd.RTTms < old.RTTms {
				rec := pd
				rec.Peer = b
				out[key] = rec
			}
		}
	}
	return out
}

// ShortestRTT returns the shortest-path RTT between two specific peers, or
// +Inf when disconnected within the bound.
func (g *Graph) ShortestRTT(a, b netmodel.HostID, maxRTTms float64) float64 {
	for _, pd := range g.ClosestPeers(a, maxRTTms) {
		if pd.Peer == b {
			return pd.RTTms
		}
	}
	return math.Inf(1)
}
