// Wire deployment of the rendezvous directory: each end network's server
// is a real node (the lowest-indexed member of the EN), registration is an
// RPC every member sends its own server during bring-up (and again on
// rejoin after churn), and a query is one directory read plus a ping sweep
// of the returned list. A dead server takes its whole end network's
// directory offline; a churned-out registrant lingers as a stale entry the
// sweep pays a dead probe for.

package rendezvous

import (
	"sort"
	"time"

	"nearestpeer/internal/p2p"
)

// Message types of the rendezvous wire protocol.
const (
	// MsgRegister records the sender in its end network's directory
	// (no payload / ack with no payload).
	MsgRegister   = "rv_register"
	MsgRegisterOK = "rv_register_ok"
	// MsgList fetches the sender's end-network registration list
	// (no payload / listOK).
	MsgList   = "rv_list"
	MsgListOK = "rv_list_ok"
)

type listOK struct{ IDs []int }

func init() {
	p2p.RegisterPayload(MsgListOK, listOK{})
}

// Wire is a deployed message-level rendezvous service. Member indices are
// runtime NodeIDs. The Wire derives the server placement from its
// Directory (well-known, like a DNS record per end network); the
// registration lists themselves live only on the servers and are filled by
// Register RPCs.
type Wire struct {
	base *Directory
	rt   p2p.Transport
	// Timeout bounds each probe and RPC; 0 uses the runtime default.
	Timeout time.Duration
	// Retry is the per-RPC retry policy.
	Retry p2p.Policy
	// serverOf maps an end-network id to its server member.
	serverOf map[int]int
	// registered[server] is the server's registration set.
	registered map[int]map[int]bool
}

// NewWire creates the wire deployment over an existing runtime.
func NewWire(rt p2p.Transport, base *Directory) *Wire {
	w := &Wire{base: base, rt: rt, serverOf: make(map[int]int, len(base.byEN)), registered: make(map[int]map[int]bool)}
	for en, list := range base.byEN {
		w.serverOf[en] = list[0] // sorted: the lowest-indexed member serves
	}
	return w
}

// ServerOf returns the directory server of a member's end network.
func (w *Wire) ServerOf(m p2p.NodeID) p2p.NodeID {
	return p2p.NodeID(w.serverOf[w.base.enOf[int(m)]])
}

// Join brings a member up on the runtime; servers get the directory
// handlers installed.
func (w *Wire) Join(id p2p.NodeID) {
	n := w.rt.AddNode(id)
	if w.ServerOf(id) != id {
		return
	}
	set := w.registered[int(id)]
	if set == nil {
		set = make(map[int]bool)
		w.registered[int(id)] = set
	}
	n.Handle(MsgRegister, func(n *p2p.Node, env p2p.Envelope) {
		set[int(env.From)] = true
		n.Reply(env, MsgRegisterOK, nil)
	})
	n.Handle(MsgList, func(n *p2p.Node, env p2p.Envelope) {
		ids := make([]int, 0, len(set))
		for m := range set {
			if m != int(env.From) {
				ids = append(ids, m)
			}
		}
		sort.Ints(ids)
		n.Reply(env, MsgListOK, listOK{IDs: ids})
	})
}

// Register records a member in its end network's directory. done (optional)
// reports whether the server acknowledged.
func (w *Wire) Register(id p2p.NodeID, done func(ok bool)) {
	n := w.rt.AddNode(id)
	n.RequestPolicy(w.ServerOf(id), MsgRegister, nil, w.Timeout, w.Retry,
		func(p2p.Envelope) {
			if done != nil {
				done(true)
			}
		},
		func() {
			if done != nil {
				done(false)
			}
		})
}

// FindNearest runs the rendezvous query over the wire from client: one
// directory read at the client's own server, then a ping sweep of the
// list. done fires exactly once unless the client dies mid-query.
func (w *Wire) FindNearest(client p2p.NodeID, done func(p2p.FindResult)) {
	n := w.rt.AddNode(client)
	res := p2p.FindResult{Peer: p2p.NoNode}
	res.RPCs++
	n.RequestPolicy(w.ServerOf(client), MsgList, nil, w.Timeout, w.Retry,
		func(env p2p.Envelope) {
			list := env.Payload.(listOK).IDs
			ids := make([]p2p.NodeID, len(list))
			for i, m := range list {
				ids[i] = p2p.NodeID(m)
			}
			n.SweepPing(ids, w.Timeout, func(s p2p.PingSweep) {
				res.Probes += s.Probes
				res.DeadProbes += s.Dead
				if s.Found {
					res.Peer, res.RTTms, res.Found = s.Best, s.BestRTT, true
				}
				done(res)
			})
		},
		func() {
			// The end network's server is down: its directory is offline.
			res.RPCFails++
			done(res)
		})
}
