package rendezvous

import (
	"testing"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

func fixture(t *testing.T) (*netmodel.Topology, *Service, []netmodel.HostID) {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 8)
	tools := measure.NewTools(top, measure.DefaultConfig(), 9)
	svc := New(top, tools)
	var peers []netmodel.HostID
	for i := range top.Hosts {
		if top.Hosts[i].RespondsTCP && top.Hosts[i].DNS == nil {
			peers = append(peers, netmodel.HostID(i))
		}
	}
	for _, p := range peers {
		svc.Register("swarm", p)
	}
	return top, svc, peers
}

func TestRegisterIdempotent(t *testing.T) {
	top, svc, peers := fixture(t)
	before := svc.Registrations
	svc.Register("swarm", peers[0])
	if svc.Registrations != before {
		t.Fatal("duplicate registration counted")
	}
	_ = top
}

func TestFindNearestStaysInEN(t *testing.T) {
	top, svc, peers := fixture(t)
	found := 0
	for _, p := range peers[:min(60, len(peers))] {
		res := svc.FindNearest("swarm", p)
		if res.Peer < 0 {
			continue
		}
		found++
		if !top.SameEN(p, res.Peer) {
			t.Fatal("rendezvous returned a peer outside the end-network")
		}
		if res.Probes != res.Candidates {
			t.Fatalf("probes %d != candidates %d", res.Probes, res.Candidates)
		}
	}
	if found == 0 {
		t.Skip("no EN with multiple registered peers among sample")
	}
}

func TestDeregister(t *testing.T) {
	top, svc, peers := fixture(t)
	// Find an EN with >= 2 peers.
	var p, q netmodel.HostID = -1, -1
	for i, a := range peers {
		for _, b := range peers[i+1:] {
			if top.SameEN(a, b) {
				p, q = a, b
				break
			}
		}
		if p >= 0 {
			break
		}
	}
	if p < 0 {
		t.Skip("no same-EN pair")
	}
	if res := svc.FindNearest("swarm", p); res.Peer < 0 {
		t.Fatal("pair not discoverable before deregister")
	}
	svc.Deregister("swarm", q)
	res := svc.FindNearest("swarm", p)
	if res.Peer == q {
		t.Fatal("deregistered peer still returned")
	}
}

func TestUnknownSystem(t *testing.T) {
	_, svc, peers := fixture(t)
	if res := svc.FindNearest("nope", peers[0]); res.Peer >= 0 {
		t.Fatal("unknown system returned a peer")
	}
}

func TestStats(t *testing.T) {
	_, svc, _ := fixture(t)
	st := svc.Stats("swarm")
	if st.ServersNeeded == 0 {
		t.Fatal("no servers counted")
	}
	if st.MaxPeers < st.MedianPeers {
		t.Fatal("max < median")
	}
	if st.MeanPeers <= 0 {
		t.Fatal("mean not positive")
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	// The paper's concern: most home-dominated deployments need lots of
	// singleton servers.
	if st.SingletonServers == 0 {
		t.Fatal("expected singleton servers in a home-heavy population")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
