// The matrix-index rendezvous legs used by the grand-table study: the same
// per-end-network directory idea as Service, but over a noiseless
// overlay.Network in matrix-index space (member i is row i of a latency
// matrix and a runtime NodeID), so the static leg is an exact oracle for
// the wire leg. Service stays as the Section-6 deployment-coverage study's
// noisy-measurement view; Directory is the probe-priced finder.

package rendezvous

import (
	"math"
	"sort"

	"nearestpeer/internal/overlay"
)

// Directory is the static rendezvous finder: every member registers with
// the directory of its own end network, and a searcher probes exactly its
// own end network's registration list. No probes leave the end network —
// the scheme's whole bet is that the nearest peer shares yours.
type Directory struct {
	net  *overlay.Network
	enOf map[int]int
	byEN map[int][]int // registration lists, sorted ascending
}

// NewDirectory builds the directory over a member set; enOf gives each
// member's end-network id (in any space, only equality matters).
func NewDirectory(net *overlay.Network, members []int, enOf func(m int) int) *Directory {
	d := &Directory{net: net, enOf: make(map[int]int, len(members)), byEN: make(map[int][]int)}
	for _, m := range members {
		en := enOf(m)
		d.enOf[m] = en
		d.byEN[en] = append(d.byEN[en], m)
	}
	for _, list := range d.byEN {
		sort.Ints(list)
	}
	return d
}

// Candidates returns the registration list a member's query would fetch:
// its own end network's members, itself excluded, sorted ascending.
func (d *Directory) Candidates(target int) []int {
	var out []int
	for _, m := range d.byEN[d.enOf[target]] {
		if m != target {
			out = append(out, m)
		}
	}
	return out
}

// FindNearest implements overlay.Finder. A member whose end network holds
// no other registration finds nothing (Peer −1) — the coverage failure the
// paper's Section 6 measures.
func (d *Directory) FindNearest(target int) overlay.Result {
	best, bestLat := -1, math.Inf(1)
	var probes int64
	for _, m := range d.Candidates(target) {
		l := d.net.Probe(m, target)
		probes++
		if l < bestLat {
			best, bestLat = m, l
		}
	}
	return overlay.Result{Peer: best, LatencyMs: bestLat, Probes: probes, Hops: 0}
}
