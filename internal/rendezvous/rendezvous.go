// Package rendezvous implements the paper's second mitigation (Section 5):
// a membership-tracking server inside each end-network. Peers register with
// their local server on joining a P2P system; a joining peer asks the
// server for the current members and probes them. The paper's stated
// concern — the server "needs a sufficiently large number of peers within
// each end-network to justify the setup" — is made measurable through
// deployment statistics.
package rendezvous

import (
	"fmt"
	"math"
	"sort"

	"nearestpeer/internal/measure"
	"nearestpeer/internal/netmodel"
)

// Service is the per-end-network membership infrastructure. It can track
// membership for multiple P2P systems, keyed by system name.
type Service struct {
	top   *netmodel.Topology
	tools *measure.Tools
	// members[system][en] lists registered peers.
	members map[string]map[netmodel.ENID][]netmodel.HostID
	// Queries and Registrations account load.
	Queries       int64
	Registrations int64
}

// New deploys the service (conceptually, one server per end-network).
func New(top *netmodel.Topology, tools *measure.Tools) *Service {
	return &Service{
		top:     top,
		tools:   tools,
		members: make(map[string]map[netmodel.ENID][]netmodel.HostID),
	}
}

// Register adds a peer to its end-network's membership for a system.
func (s *Service) Register(system string, peer netmodel.HostID) {
	byEN := s.members[system]
	if byEN == nil {
		byEN = make(map[netmodel.ENID][]netmodel.HostID)
		s.members[system] = byEN
	}
	en := s.top.Host(peer).EN
	for _, p := range byEN[en] {
		if p == peer {
			return // idempotent
		}
	}
	byEN[en] = append(byEN[en], peer)
	s.Registrations++
}

// Deregister removes a peer.
func (s *Service) Deregister(system string, peer netmodel.HostID) {
	byEN := s.members[system]
	if byEN == nil {
		return
	}
	en := s.top.Host(peer).EN
	list := byEN[en]
	for i, p := range list {
		if p == peer {
			byEN[en] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// Result reports a rendezvous lookup.
type Result struct {
	Peer       netmodel.HostID
	RTTms      float64
	Candidates int
	Probes     int
}

// FindNearest asks the local server for same-network members and probes
// them, returning the closest responsive one.
func (s *Service) FindNearest(system string, peer netmodel.HostID) Result {
	s.Queries++
	res := Result{Peer: -1, RTTms: math.Inf(1)}
	byEN := s.members[system]
	if byEN == nil {
		return res
	}
	en := s.top.Host(peer).EN
	cands := append([]netmodel.HostID(nil), byEN[en]...)
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, c := range cands {
		if c == peer {
			continue
		}
		res.Candidates++
		d, err := s.tools.LatencyTo(peer, c)
		res.Probes++
		if err != nil {
			continue
		}
		if ms := netmodel.Ms(d); ms < res.RTTms {
			res.Peer = c
			res.RTTms = ms
		}
	}
	return res
}

// DeploymentStats quantifies the paper's justification concern: how many
// end-network servers the deployment needs and how many registered peers
// each one serves.
type DeploymentStats struct {
	ServersNeeded int
	MeanPeers     float64
	MedianPeers   int
	MaxPeers      int
	// SingletonServers track end-networks whose server serves one peer —
	// pure overhead.
	SingletonServers int
}

// Stats summarises the deployment for a system.
func (s *Service) Stats(system string) DeploymentStats {
	byEN := s.members[system]
	var sizes []int
	for _, list := range byEN {
		if len(list) > 0 {
			sizes = append(sizes, len(list))
		}
	}
	st := DeploymentStats{ServersNeeded: len(sizes)}
	if len(sizes) == 0 {
		return st
	}
	sort.Ints(sizes)
	total := 0
	for _, n := range sizes {
		total += n
		if n == 1 {
			st.SingletonServers++
		}
	}
	st.MeanPeers = float64(total) / float64(len(sizes))
	st.MedianPeers = sizes[len(sizes)/2]
	st.MaxPeers = sizes[len(sizes)-1]
	return st
}

// String renders the stats compactly.
func (d DeploymentStats) String() string {
	return fmt.Sprintf("servers=%d mean=%.1f median=%d max=%d singletons=%d",
		d.ServersNeeded, d.MeanPeers, d.MedianPeers, d.MaxPeers, d.SingletonServers)
}
