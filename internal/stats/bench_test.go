package stats

import (
	"math/rand"
	"testing"
)

func benchData(n int) ([]float64, []float64) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()*100 + 0.1
		ys[i] = xs[i] * (0.5 + r.Float64())
	}
	return xs, ys
}

func BenchmarkBinnedPercentiles(b *testing.B) {
	xs, ys := benchData(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BinnedPercentiles(xs, ys, 12)
	}
}

func BenchmarkCDFBuild(b *testing.B) {
	xs, _ := benchData(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewCDF(xs)
	}
}

func BenchmarkCDFAt(b *testing.B) {
	xs, _ := benchData(10000)
	c := NewCDF(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.At(float64(i % 100))
	}
}
