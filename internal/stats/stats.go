// Package stats implements the statistical machinery every figure in the
// paper is built from: empirical CDFs, quantiles, histograms with log-spaced
// bins, and "binned scatter" series (median plus 5/25/75/95th percentiles per
// predicted-value bin, the presentation used by Figures 4, 7 and 10).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the quantile of an already-sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the smallest element of xs, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs (which it copies).
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of elements <= x, so search for the first element > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// CountAtMost returns the number of samples <= x (the "cumulative count"
// y-axis used by Figures 3, 6 and 7).
func (c *CDF) CountAtMost(x float64) int {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return i
}

// Quantile returns the q-th quantile of the sample.
func (c *CDF) Quantile(q float64) float64 { return quantileSorted(c.sorted, q) }

// FractionWithin returns the fraction of samples in [lo, hi].
func (c *CDF) FractionWithin(lo, hi float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	loIdx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= lo })
	hiIdx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > hi })
	return float64(hiIdx-loIdx) / float64(len(c.sorted))
}

// Points samples the CDF at n log-spaced x positions spanning the sample
// range, returning (x, fraction<=x) pairs suitable for plotting.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	if lo <= 0 {
		lo = math.SmallestNonzeroFloat64
	}
	if hi <= lo {
		return []Point{{X: hi, Y: 1}}
	}
	pts := make([]Point, 0, n)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i < n; i++ {
		x := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n-1))
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is an (x, y) pair in a plotted series.
type Point struct {
	X, Y float64
}

// PercentileBin is one bin of a binned scatter plot: the representative x
// value, the number of samples in the bin, and the 5/25/50/75/95th
// percentiles of the y values that fell in the bin.
type PercentileBin struct {
	X      float64 // representative x (geometric mean of bin edges)
	Count  int
	P5     float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
}

// BinnedPercentiles groups the (x, y) samples into nBins log-spaced bins by
// x and returns, for each non-empty bin, the percentile summary of the y
// values. This is the exact presentation of Figures 4 and 10 ("binned
// scatter-plot ... median and percentiles of the sample points that fall in
// the respective bin").
func BinnedPercentiles(xs, ys []float64, nBins int) []PercentileBin {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: BinnedPercentiles length mismatch %d != %d", len(xs), len(ys)))
	}
	if len(xs) == 0 || nBins <= 0 {
		return nil
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x <= 0 {
			continue // log bins need positive x
		}
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	if math.IsInf(minX, 1) || minX == maxX {
		// Degenerate: everything in one bin.
		b := summarizeBin(Mean(xs), ys)
		return []PercentileBin{b}
	}
	logMin, logMax := math.Log(minX), math.Log(maxX)
	width := (logMax - logMin) / float64(nBins)
	binned := make([][]float64, nBins)
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		idx := int((math.Log(x) - logMin) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nBins {
			idx = nBins - 1
		}
		binned[idx] = append(binned[idx], ys[i])
	}
	var out []PercentileBin
	for i, yvals := range binned {
		if len(yvals) == 0 {
			continue
		}
		center := math.Exp(logMin + width*(float64(i)+0.5))
		out = append(out, summarizeBin(center, yvals))
	}
	return out
}

func summarizeBin(x float64, ys []float64) PercentileBin {
	sorted := append([]float64(nil), ys...)
	sort.Float64s(sorted)
	return PercentileBin{
		X:      x,
		Count:  len(ys),
		P5:     quantileSorted(sorted, 0.05),
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		P75:    quantileSorted(sorted, 0.75),
		P95:    quantileSorted(sorted, 0.95),
	}
}

// Histogram counts samples into nBins log-spaced bins across [min, max].
// Build one with NewLogHistogram (batch) or NewEmptyLogHistogram (then feed
// it incrementally with Observe); the two produce byte-identical counts for
// the same samples because they share the binning arithmetic.
type Histogram struct {
	Edges  []float64 // len nBins+1
	Counts []int     // len nBins
	// logLo/width cache the binning transform so Observe recomputes
	// nothing; recomputing them from Edges would not be bit-exact
	// (Exp(Log(lo)) can be a ulp off lo), so they are set only by the
	// constructors.
	logLo float64
	width float64
}

// NewLogHistogram builds a log-spaced histogram of xs over [lo, hi].
// Samples outside the range are clamped into the first/last bin.
func NewLogHistogram(xs []float64, lo, hi float64, nBins int) *Histogram {
	h := NewEmptyLogHistogram(lo, hi, nBins)
	for _, x := range xs {
		h.Observe(x)
	}
	return h
}

// NewEmptyLogHistogram builds a zero-count log-spaced histogram over
// [lo, hi] with nBins bins, ready for incremental Observe calls. It is the
// streaming twin of NewLogHistogram: the observability registry feeds one
// sample per lookup instead of batching a slice.
func NewEmptyLogHistogram(lo, hi float64, nBins int) *Histogram {
	if lo <= 0 || hi <= lo || nBins <= 0 {
		panic("stats: NewLogHistogram requires 0 < lo < hi and nBins > 0")
	}
	h := &Histogram{
		Edges:  make([]float64, nBins+1),
		Counts: make([]int, nBins),
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := 0; i <= nBins; i++ {
		h.Edges[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(nBins))
	}
	h.logLo = logLo
	h.width = (logHi - logLo) / float64(nBins)
	return h
}

// Observe adds one sample, clamping out-of-range values into the first/last
// bin exactly like NewLogHistogram. It never allocates, so it is safe on
// simulation hot paths. Only histograms built by the constructors may be
// observed into: a hand-assembled Histogram lacks the cached binning
// transform.
func (h *Histogram) Observe(x float64) {
	if x <= 0 {
		h.Counts[0]++
		return
	}
	idx := int((math.Log(x) - h.logLo) / h.width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of samples observed into the histogram.
func (h *Histogram) Total() int {
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	return total
}

// Quantile estimates the q-th quantile from the binned counts, locating the
// bin where the cumulative count crosses q·total and interpolating
// geometrically (linearly in log space) inside it. Resolution is therefore
// one bin width; NaN for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			lo, hi := h.Edges[i], h.Edges[i+1]
			return lo * math.Pow(hi/lo, frac)
		}
		cum += float64(c)
	}
	return h.Edges[len(h.Edges)-1]
}

// Series is a named sequence of points, the unit the figure harness prints.
type Series struct {
	Name   string
	Points []Point
}

// FormatTable renders one or more series that share x values as an aligned
// text table. Series with differing x values are rendered by position.
func FormatTable(header string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", header)
	if len(series) == 0 {
		return b.String()
	}
	// Column headers.
	fmt.Fprintf(&b, "%14s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		var x float64 = math.NaN()
		for _, s := range series {
			if i < len(s.Points) {
				x = s.Points[i].X
				break
			}
		}
		fmt.Fprintf(&b, "%14.4g", x)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %20.6g", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
