package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestMeanMedianMinMax(t *testing.T) {
	xs := []float64{4, 1, 7, 2}
	if Mean(xs) != 3.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Min(xs) != 1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	got := StdDev(xs)
	want := 2.138 // sample stddev
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("StdDev = %v, want ~%v", got, want)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		a, b := r.NormFloat64()*100, r.NormFloat64()*100
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b) && c.At(a) >= 0 && c.At(b) <= 1
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	// For any sample, At(Quantile(q)) >= q (quantile is a generalised
	// inverse of the CDF).
	err := quick.Check(func(raw []float64, qraw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qraw) / 255
		c := NewCDF(xs)
		// Interpolating quantiles sit between sample points, so allow the
		// 1/n slack a closest-rank inverse would not need.
		return c.At(c.Quantile(q))+1/float64(len(xs))+1e-12 >= q
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFFractionWithin(t *testing.T) {
	c := NewCDF([]float64{0.4, 0.6, 1.0, 1.9, 2.5})
	if got := c.FractionWithin(0.5, 2); got != 0.6 {
		t.Fatalf("FractionWithin(0.5,2) = %v, want 0.6", got)
	}
}

func TestCDFCountAtMost(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.CountAtMost(2.5); got != 2 {
		t.Fatalf("CountAtMost = %d, want 2", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 10, 100})
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("CDF points not monotone")
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Fatalf("last point y = %v, want 1", pts[len(pts)-1].Y)
	}
}

func TestBinnedPercentiles(t *testing.T) {
	// y = x exactly; every bin's median must be close to its x.
	var xs, ys []float64
	for i := 1; i <= 1000; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, float64(i))
	}
	bins := BinnedPercentiles(xs, ys, 10)
	if len(bins) == 0 {
		t.Fatal("no bins")
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Median < b.X/3 || b.Median > b.X*3 {
			t.Errorf("bin at x=%v has median %v", b.X, b.Median)
		}
		if b.P5 > b.P25 || b.P25 > b.Median || b.Median > b.P75 || b.P75 > b.P95 {
			t.Errorf("bin percentiles out of order: %+v", b)
		}
	}
	if total != len(xs) {
		t.Fatalf("bins hold %d samples, want %d", total, len(xs))
	}
}

func TestBinnedPercentilesMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	BinnedPercentiles([]float64{1}, []float64{1, 2}, 4)
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
	h := NewLogHistogram(xs, 0.001, 1000, 6)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram holds %d, want %d", total, len(xs))
	}
	if len(h.Edges) != 7 {
		t.Fatalf("edges = %d, want 7", len(h.Edges))
	}
	if !sort.Float64sAreSorted(h.Edges) {
		t.Fatal("edges not sorted")
	}
}

func TestFormatTable(t *testing.T) {
	s := Series{Name: "acc", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 0.7}}}
	out := FormatTable("hdr", s)
	if out == "" || len(out) < 10 {
		t.Fatal("empty table")
	}
}
