package stats

import (
	"math"
	"testing"
)

// FuzzHistogramObserve pins the batch and incremental histogram paths to
// each other: NewLogHistogram over a slice must produce exactly the counts
// that NewEmptyLogHistogram + Observe produce one sample at a time. The
// seeds sit on and one ulp around the bin edges, where a drifted binning
// formula would first disagree.
func FuzzHistogramObserve(f *testing.F) {
	const lo, hi = 1.0, 1000.0
	const nBins = 7
	ref := NewEmptyLogHistogram(lo, hi, nBins)
	for _, e := range ref.Edges {
		f.Add(e)
		f.Add(math.Nextafter(e, 0))
		f.Add(math.Nextafter(e, math.Inf(1)))
	}
	f.Add(0.0)
	f.Add(-3.5)
	f.Add(lo / 10)
	f.Add(hi * 10)
	f.Add(math.Sqrt(lo * hi))
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Skip("binning of non-finite samples is unspecified")
		}
		batch := NewLogHistogram([]float64{x}, lo, hi, nBins)
		inc := NewEmptyLogHistogram(lo, hi, nBins)
		inc.Observe(x)
		if inc.Total() != 1 || batch.Total() != 1 {
			t.Fatalf("totals: batch=%d incremental=%d, want 1", batch.Total(), inc.Total())
		}
		bin := -1
		for i := range inc.Counts {
			if batch.Counts[i] != inc.Counts[i] {
				t.Fatalf("x=%v: bin %d batch=%d incremental=%d", x, i, batch.Counts[i], inc.Counts[i])
			}
			if inc.Counts[i] == 1 {
				bin = i
			}
		}
		if bin < 0 || bin >= nBins {
			t.Fatalf("x=%v landed in no bin", x)
		}
		// In-range samples must land in a bin whose edges bracket them,
		// up to one ulp of rounding in the log-domain index arithmetic.
		if x > lo && x < hi {
			const tol = 1e-9
			if x < inc.Edges[bin]*(1-tol) || x > inc.Edges[bin+1]*(1+tol) {
				t.Fatalf("x=%v binned into [%v, %v]", x, inc.Edges[bin], inc.Edges[bin+1])
			}
		}
		// Clamping: below-range (and non-positive) samples take the first
		// bin, above-range the last.
		if x <= lo && bin != 0 {
			t.Fatalf("x=%v below lo=%v landed in bin %d", x, lo, bin)
		}
		if x >= hi && bin != nBins-1 {
			t.Fatalf("x=%v above hi=%v landed in bin %d", x, hi, bin)
		}
		q := inc.Quantile(0.5)
		if q < inc.Edges[bin]*(1-1e-12) || q > inc.Edges[bin+1]*(1+1e-12) {
			t.Fatalf("x=%v: median %v outside its bin [%v, %v]", x, q, inc.Edges[bin], inc.Edges[bin+1])
		}
	})
}
