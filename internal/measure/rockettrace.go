package measure

import (
	"time"

	"nearestpeer/internal/netmodel"
)

// AnnotatedHop is one rockettrace hop: the traceroute data plus the (AS,
// city) annotation parsed from the router's DNS name. The annotation is what
// the router's *name* claims — for misconfigured routers it disagrees with
// the router's true location, an error source the paper acknowledges.
type AnnotatedHop struct {
	Router netmodel.RouterID
	RTT    time.Duration
	Name   string
	AS     netmodel.ASID
	City   netmodel.CityID
	// Valid means the router answered (not a '*' hop).
	Valid bool
	// Annotated means the DNS name yielded an (AS, city) pair. Customer
	// routers respond but are not annotated.
	Annotated bool
}

// PoPKey identifies a PoP the way rockettrace can: by the (AS, city) pair
// its router names advertise. "We assume that routers annotated with the
// same AS and city reside in the same ISP PoP."
type PoPKey struct {
	AS   netmodel.ASID
	City netmodel.CityID
}

// Rockettrace runs an annotated route trace.
func (t *Tools) Rockettrace(from, to netmodel.HostID) []AnnotatedHop {
	path := t.Top.Path(from, to)
	hops := make([]AnnotatedHop, 0, len(path))
	for _, h := range path {
		if !h.Valid {
			hops = append(hops, AnnotatedHop{Router: netmodel.NoRouter})
			continue
		}
		r := t.Top.Router(h.Router)
		ah := AnnotatedHop{
			Router: h.Router,
			RTT:    netmodel.Duration(t.noisy(h.RTTms)),
			Name:   r.Name,
			Valid:  true,
		}
		if !r.Customer {
			ah.Annotated = true
			ah.AS = r.AS
			ah.City = r.NameCity // what the name claims, not the truth
		}
		hops = append(hops, ah)
	}
	return hops
}

// ClosestUpstreamPoP maps a destination to its closest upstream PoP on the
// rockettrace from `from`: the (AS, city) key of the last annotated hop
// group, together with the index of the hop where that PoP starts and the
// number of hops between the PoP and the destination. The paper uses this
// to cluster DNS servers per PoP (Section 3.1).
func (t *Tools) ClosestUpstreamPoP(from, to netmodel.HostID) (key PoPKey, popHop int, hopsBeyond int, ok bool) {
	hops := t.Rockettrace(from, to)
	// The closest upstream PoP is the (AS, city) of the last annotated
	// hop; the hops beyond it (customer routers, '*' hops) measure how far
	// downstream the server sits from the PoP.
	last := -1
	for i, h := range hops {
		if h.Annotated {
			last = i
		}
	}
	if last < 0 {
		return PoPKey{}, 0, 0, false
	}
	key = PoPKey{AS: hops[last].AS, City: hops[last].City}
	return key, last, len(hops) - last, true
}

// DeepestCommonRouter compares the rockettrace paths from one measurement
// host to two destinations and returns the deepest router present on both —
// tree paths from one source share a prefix, so this is the last index at
// which the two hop lists agree on a responding router. The boolean
// belowPoP reports whether that router lies beyond the last annotated hop
// of either path (a "closer router than the PoP" in the paper's terms:
// a shared customer-side router).
func DeepestCommonRouter(a, b []AnnotatedHop) (r netmodel.RouterID, idxA, idxB int, belowPoP, ok bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	last := -1
	for i := 0; i < n; i++ {
		if a[i].Valid && b[i].Valid && a[i].Router == b[i].Router {
			last = i
		} else if a[i].Router != b[i].Router && a[i].Valid && b[i].Valid {
			break
		}
	}
	if last < 0 {
		return netmodel.NoRouter, 0, 0, false, false
	}
	return a[last].Router, last, last, !a[last].Annotated, true
}
