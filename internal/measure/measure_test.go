package measure

import (
	"math"
	"testing"

	"nearestpeer/internal/netmodel"
)

func newFixture(t *testing.T) (*netmodel.Topology, *Tools) {
	t.Helper()
	top := netmodel.Generate(netmodel.DefaultConfig(), 1)
	return top, NewTools(top, DefaultConfig(), 99)
}

func findHost(top *netmodel.Topology, pred func(*netmodel.Host) bool) netmodel.HostID {
	for i := range top.Hosts {
		if pred(&top.Hosts[i]) {
			return netmodel.HostID(i)
		}
	}
	return -1
}

func TestPingRespectsResponsiveness(t *testing.T) {
	top, tools := newFixture(t)
	up := findHost(top, func(h *netmodel.Host) bool { return h.RespondsPing })
	down := findHost(top, func(h *netmodel.Host) bool { return !h.RespondsPing })
	if up < 0 || down < 0 {
		t.Fatal("fixture lacks hosts")
	}
	src := netmodel.HostID(0)
	if _, err := tools.Ping(src, up); err != nil {
		t.Fatalf("ping to responsive host failed: %v", err)
	}
	if _, err := tools.Ping(src, down); err == nil {
		t.Fatal("ping to unresponsive host succeeded")
	}
}

func TestPingAccuracy(t *testing.T) {
	top, tools := newFixture(t)
	a := findHost(top, func(h *netmodel.Host) bool { return h.RespondsPing })
	b := findHost(top, func(h *netmodel.Host) bool {
		return h.RespondsPing && top.Hosts[a].EN != h.EN
	})
	truth := top.TreeRTTms(a, b)
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		d, err := tools.Ping(a, b)
		if err != nil {
			t.Fatal(err)
		}
		sum += netmodel.Ms(d)
	}
	mean := sum / n
	// Noise is ~2% multiplicative + tiny floor; the mean should track the
	// true tree RTT closely.
	if math.Abs(mean-truth) > truth*0.05+0.2 {
		t.Fatalf("ping mean %v vs truth %v", mean, truth)
	}
}

func TestTCPPing(t *testing.T) {
	top, tools := newFixture(t)
	peer := findHost(top, func(h *netmodel.Host) bool { return h.RespondsTCP })
	noTCP := findHost(top, func(h *netmodel.Host) bool { return !h.RespondsTCP })
	if _, err := tools.TCPPing(0, peer); err != nil {
		t.Fatalf("TCP ping failed: %v", err)
	}
	if _, err := tools.TCPPing(0, noTCP); err == nil {
		t.Fatal("TCP ping to closed port succeeded")
	}
	// TCP connect includes setup overhead: it should not undershoot the
	// tree RTT by much.
	d, _ := tools.TCPPing(0, peer)
	if netmodel.Ms(d) < top.TreeRTTms(0, peer)*0.9 {
		t.Fatalf("TCP ping %v below RTT %v", netmodel.Ms(d), top.TreeRTTms(0, peer))
	}
}

func TestLatencyToFallsBack(t *testing.T) {
	top, tools := newFixture(t)
	pingOnly := findHost(top, func(h *netmodel.Host) bool { return h.RespondsPing && !h.RespondsTCP })
	neither := findHost(top, func(h *netmodel.Host) bool { return !h.RespondsPing && !h.RespondsTCP })
	if pingOnly >= 0 {
		if _, err := tools.LatencyTo(0, pingOnly); err != nil {
			t.Fatalf("LatencyTo did not fall back to ping: %v", err)
		}
	}
	if neither >= 0 {
		if _, err := tools.LatencyTo(0, neither); err == nil {
			t.Fatal("LatencyTo succeeded on a dark host")
		}
	}
}

func TestTracerouteMatchesPath(t *testing.T) {
	top, tools := newFixture(t)
	from := netmodel.HostID(0)
	to := findHost(top, func(h *netmodel.Host) bool {
		return h.EN != top.Hosts[0].EN && !h.Multihomed
	})
	hops := tools.Traceroute(from, to)
	path := top.Path(from, to)
	want := len(path)
	if top.Host(to).RespondsPing {
		want++
	}
	if len(hops) != want {
		t.Fatalf("traceroute has %d hops, want %d", len(hops), want)
	}
	// RTTs along the trace are non-decreasing within noise.
	prev := 0.0
	for _, h := range hops {
		if h.Router == netmodel.NoRouter && h.RTT == 0 {
			continue // '*' hop
		}
		ms := netmodel.Ms(h.RTT)
		if ms < prev-1.0 {
			t.Fatalf("hop RTTs regressed: %v after %v", ms, prev)
		}
		prev = ms
	}
}

func TestUpstreamRouterIsENEdge(t *testing.T) {
	top, tools := newFixture(t)
	to := findHost(top, func(h *netmodel.Host) bool {
		en := top.EN(h.EN)
		return !h.Multihomed && len(en.Chain) > 0 && !top.Router(en.EdgeRouter()).Anonymous && h.EN != top.Hosts[0].EN
	})
	if to < 0 {
		t.Skip("no suitable destination")
	}
	got := tools.UpstreamRouter(0, to)
	if want := top.HostEN(to).EdgeRouter(); got != want {
		t.Fatalf("upstream router = %d, want %d", got, want)
	}
}

func TestRockettraceAnnotations(t *testing.T) {
	top, tools := newFixture(t)
	to := findHost(top, func(h *netmodel.Host) bool { return h.EN != top.Hosts[0].EN })
	hops := tools.Rockettrace(0, to)
	if len(hops) == 0 {
		t.Fatal("empty rockettrace")
	}
	sawAnnotated := false
	for _, h := range hops {
		if !h.Valid {
			continue
		}
		r := top.Router(h.Router)
		if r.Customer && h.Annotated {
			t.Fatal("customer router carries an annotation")
		}
		if !r.Customer {
			if !h.Annotated {
				t.Fatal("ISP router lacks annotation")
			}
			if h.AS != r.AS {
				t.Fatal("annotation AS mismatch")
			}
			if h.City != r.NameCity {
				t.Fatal("annotation should reflect the DNS name's city claim")
			}
			sawAnnotated = true
		}
	}
	if !sawAnnotated {
		t.Fatal("no annotated hops on path")
	}
}

func TestClosestUpstreamPoP(t *testing.T) {
	top, tools := newFixture(t)
	servers := top.DNSServers()
	if len(servers) == 0 {
		t.Fatal("no DNS servers")
	}
	found := 0
	for _, s := range servers[:min(len(servers), 50)] {
		key, _, beyond, ok := tools.ClosestUpstreamPoP(0, s)
		if !ok {
			continue
		}
		found++
		if beyond < 0 || beyond > 12 {
			t.Fatalf("hopsBeyond = %d", beyond)
		}
		// The inferred PoP AS must be the true PoP's AS (city may differ
		// due to name misconfiguration, AS never does in our model).
		if want := top.PoP(top.HostEN(s).PoP).AS; key.AS != want {
			t.Fatalf("PoP AS = %d, want %d", key.AS, want)
		}
	}
	if found == 0 {
		t.Fatal("no PoP mapping succeeded")
	}
}

func TestDeepestCommonRouter(t *testing.T) {
	top, tools := newFixture(t)
	// Two DNS servers in one PoP share at least the PoP core on traces
	// from a remote vantage.
	servers := top.DNSServers()
	var a, b netmodel.HostID = -1, -1
	for i := 0; i < len(servers) && a < 0; i++ {
		for j := i + 1; j < len(servers); j++ {
			if top.HostEN(servers[i]).PoP == top.HostEN(servers[j]).PoP &&
				top.Hosts[servers[i]].EN != top.Hosts[servers[j]].EN &&
				top.HostEN(servers[i]).PoP != top.HostEN(0).PoP {
				a, b = servers[i], servers[j]
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no same-PoP DNS pair")
	}
	ta := tools.Rockettrace(0, a)
	tb := tools.Rockettrace(0, b)
	r, _, _, _, ok := DeepestCommonRouter(ta, tb)
	if !ok {
		t.Fatal("no common router for same-PoP pair")
	}
	if top.Router(r).PoP != top.HostEN(a).PoP && top.Router(r).PoP != top.HostEN(0).PoP {
		// The deepest common router should be in the shared part of the
		// route — either the destination PoP or earlier.
		t.Logf("common router in PoP %d (src %d, dst %d)", top.Router(r).PoP, top.HostEN(0).PoP, top.HostEN(a).PoP)
	}
}

func TestKing(t *testing.T) {
	top, tools := newFixture(t)
	servers := top.DNSServers()
	var a, b netmodel.HostID = -1, -1
	for i := 0; i < len(servers) && a < 0; i++ {
		for j := i + 1; j < len(servers); j++ {
			if !tools.SameDomain(servers[i], servers[j]) {
				a, b = servers[i], servers[j]
				break
			}
		}
	}
	if a < 0 {
		t.Fatal("no cross-domain DNS pair")
	}
	d, err := tools.King(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	truth := top.RTTms(a, b)
	got := netmodel.Ms(d)
	// King includes lag: the estimate must be >= truth*(1-noise) and not
	// wildly above.
	if got < truth*0.9 {
		t.Fatalf("King %v below truth %v", got, truth)
	}
	if got > truth*1.5+10 {
		t.Fatalf("King %v far above truth %v", got, truth)
	}
}

func TestKingSameDomainFails(t *testing.T) {
	top, tools := newFixture(t)
	servers := top.DNSServers()
	var a, b netmodel.HostID = -1, -1
	for i := 0; i < len(servers) && a < 0; i++ {
		for j := i + 1; j < len(servers); j++ {
			if tools.SameDomain(servers[i], servers[j]) {
				a, b = servers[i], servers[j]
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no same-domain DNS pair in fixture")
	}
	if _, err := tools.King(0, a, b); err != ErrSameDomain {
		t.Fatalf("King on same-domain pair: err = %v", err)
	}
}

func TestKingRejectsNonDNS(t *testing.T) {
	top, tools := newFixture(t)
	plain := findHost(top, func(h *netmodel.Host) bool { return h.DNS == nil })
	servers := top.DNSServers()
	if _, err := tools.King(0, plain, servers[0]); err != ErrNotDNS {
		t.Fatalf("err = %v, want ErrNotDNS", err)
	}
}

func TestSelectVantages(t *testing.T) {
	top, _ := newFixture(t)
	vs, err := SelectVantages(top, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 7 {
		t.Fatalf("got %d vantages", len(vs))
	}
	cities := make(map[string]bool)
	for _, v := range vs {
		if cities[v.City] {
			t.Fatalf("duplicate vantage city %s", v.City)
		}
		cities[v.City] = true
		if v.Name == "" || v.Location == "" {
			t.Fatal("vantage missing names")
		}
	}
	if vs[0].Name != "planetlab02.cs.washington.edu" {
		t.Fatalf("first vantage name %q", vs[0].Name)
	}
	if _, err := SelectVantages(top, 0); err == nil {
		t.Fatal("accepted zero vantages")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
