package measure

import (
	"fmt"

	"nearestpeer/internal/netmodel"
)

// Vantage is one measurement vantage point: a host we control, placed in a
// distinct city. The paper used seven PlanetLab nodes (its Table 1); the
// simulation places seven observers in seven distinct generated cities and
// keeps the paper's node names for the Table 1 reproduction.
type Vantage struct {
	Host     netmodel.HostID
	Name     string // PlanetLab-style node name
	Location string // paper's stated location
	City     string // generated city standing in for it
}

// paperVantages lists the paper's Table 1 verbatim.
var paperVantages = []struct{ name, loc string }{
	{"planetlab02.cs.washington.edu", "Washington, USA"},
	{"planetlab3.ucsd.edu", "California, USA"},
	{"planetlab5.cs.cornell.edu", "New York, USA"},
	{"planetlab2.acis.ufl.edu", "Florida, USA"},
	{"neu1.6planetlab.edu.cn", "Shenyang, China"},
	{"planetlab2.iii.u-tokyo.ac.jp", "Tokyo, Japan"},
	{"planetlab2.xeno.cl.cam.ac.uk", "Cambridge, England"},
}

// SelectVantages picks n hosts in n distinct cities to act as measurement
// vantage points (n ≤ 7 reuses the paper's node names). Vantage hosts are
// corporate hosts — we "control" them, so their own responsiveness flags
// are irrelevant; they only source probes.
func SelectVantages(top *netmodel.Topology, n int) ([]Vantage, error) {
	if n <= 0 {
		return nil, fmt.Errorf("measure: need at least one vantage, got %d", n)
	}
	usedCity := make(map[netmodel.CityID]bool)
	var out []Vantage
	for i := range top.ENs {
		if len(out) == n {
			break
		}
		en := &top.ENs[i]
		if en.IsHome || len(en.Hosts) == 0 {
			continue
		}
		city := top.PoP(en.PoP).City
		if usedCity[city] {
			continue
		}
		usedCity[city] = true
		v := Vantage{
			Host: en.Hosts[0],
			City: top.City(city).Name,
		}
		if len(out) < len(paperVantages) {
			v.Name = paperVantages[len(out)].name
			v.Location = paperVantages[len(out)].loc
		} else {
			v.Name = fmt.Sprintf("vantage%02d.synthetic.example", len(out))
			v.Location = top.City(city).Name
		}
		out = append(out, v)
	}
	if len(out) < n {
		return nil, fmt.Errorf("measure: only %d distinct-city vantages available, need %d", len(out), n)
	}
	return out, nil
}
